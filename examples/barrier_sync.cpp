// Barrier synchronizer from repeated PIF cycles.
//
// The related-work section notes that self-stabilizing PIF protocols are the
// engine inside self-stabilizing synchronizers.  This example derives a
// barrier from the wave structure: every processor increments its local
// phase clock exactly once per PIF cycle (when it receives the broadcast).
// Because cycle k+1's broadcast cannot start before cycle k's feedback and
// cleaning finished, any two processors' clocks differ by at most 1 at all
// times — the classic synchronizer guarantee — and thanks to
// snap-stabilization this holds from the first root-initiated cycle even
// after a transient fault.
//
//   ./barrier_sync [--n=9] [--barriers=6] [--seed=11] [--corrupt]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "graph/generators.hpp"
#include "pif/faults.hpp"
#include "pif/instrument.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"

using namespace snappif;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto n = static_cast<graph::NodeId>(cli.get_int("n", 9));
  const std::uint64_t barriers = cli.get_u64("barriers", 6);
  const std::uint64_t seed = cli.get_u64("seed", 11);

  const graph::Graph g = graph::make_grid(3, std::max<graph::NodeId>(3, n / 3));
  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  sim::Simulator<pif::PifProtocol> sim(protocol, g, seed);
  pif::GhostTracker tracker(g, 0);

  std::vector<std::uint64_t> clock(g.n(), 0);
  std::uint64_t skew_violations = 0;
  std::uint64_t max_skew_seen = 0;

  sim.set_apply_hook([&](sim::ProcessorId p, sim::ActionId a,
                         const sim::Configuration<pif::State>& /*before*/,
                         const pif::State& after) {
    tracker.note_step(sim.steps());
    const bool was_active = tracker.cycle_active();
    tracker.on_apply(p, a, after);
    if (a == pif::kBAction && p == 0) {
      ++clock[0];  // the root enters the next phase as it broadcasts
      return;
    }
    if (a == pif::kBAction && was_active &&
        tracker.received_current(p)) {
      ++clock[p];  // receiving the broadcast = crossing the barrier
    }
  });

  util::Rng rng(seed ^ 0xfeed);
  if (cli.get_bool("corrupt", false)) {
    pif::adversarial_corruption(sim, rng);
    std::printf("starting from an adversarially corrupted configuration\n");
  }

  auto daemon = sim::make_daemon(sim::DaemonKind::kDistributedRandom);
  std::uint64_t last_report = 0;
  while (tracker.cycles_completed() < barriers && sim.steps() < 10'000'000) {
    if (!sim.step(*daemon)) {
      std::printf("unexpected terminal configuration\n");
      return 1;
    }
    // Synchronizer invariant: clocks never drift more than one phase apart
    // *among processors that completed their first barrier*.
    std::uint64_t lo = ~0ull, hi = 0;
    for (graph::NodeId p = 0; p < g.n(); ++p) {
      lo = std::min(lo, clock[p]);
      hi = std::max(hi, clock[p]);
    }
    if (lo != ~0ull && hi > 0) {
      const std::uint64_t skew = hi - (lo == ~0ull ? hi : lo);
      max_skew_seen = std::max(max_skew_seen, skew);
      if (skew > 1 && lo > 0) {
        ++skew_violations;
      }
    }
    if (tracker.cycles_completed() != last_report) {
      last_report = tracker.cycles_completed();
      std::printf("barrier %llu crossed: clocks = [",
                  static_cast<unsigned long long>(last_report));
      for (graph::NodeId p = 0; p < g.n(); ++p) {
        std::printf("%s%llu", p == 0 ? "" : " ",
                    static_cast<unsigned long long>(clock[p]));
      }
      std::printf("]  (PIF1=%s PIF2=%s)\n",
                  tracker.last_cycle().pif1 ? "ok" : "LOST",
                  tracker.last_cycle().pif2 ? "ok" : "LOST");
    }
  }

  std::printf("\n%llu barriers completed; max skew seen while in steady "
              "state: %llu; violations of the <=1 skew rule: %llu\n",
              static_cast<unsigned long long>(tracker.cycles_completed()),
              static_cast<unsigned long long>(max_skew_seen),
              static_cast<unsigned long long>(skew_violations));
  return skew_violations == 0 ? 0 : 1;
}
