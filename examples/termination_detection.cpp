// Termination detection via repeated PIF waves (distributed infimum
// computation over the feedback phase).
//
// The paper lists termination detection among the classic applications of
// broadcast-with-feedback.  Here a diffusing computation runs on the
// network: each processor holds a bag of work units and randomly ships units
// to neighbors (possibly spawning more).  The root runs back-to-back PIF
// cycles; each feedback aggregates the conjunction "my subtree was passive
// for the whole cycle".  Two consecutive all-passive waves announce
// termination (the standard double-wave rule, needed because work can move
// behind the wavefront).
//
//   ./termination_detection [--n=10] [--work=25] [--seed=3]
#include <cstdio>
#include <vector>

#include "graph/generators.hpp"
#include "pif/instrument.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"

using namespace snappif;

namespace {

/// The diffusing computation: work units hop around and occasionally spawn
/// children until a budget is exhausted; then the system drains.
struct Workload {
  Workload(const graph::Graph& g, std::uint32_t initial, std::uint64_t seed)
      : graph(&g), units(g.n(), 0), rng(seed) {
    units[0] = initial;
  }

  /// One scheduling quantum: move/execute a few units.  Returns true if any
  /// processor was active in this quantum.
  bool quantum() {
    bool active = false;
    for (graph::NodeId p = 0; p < graph->n(); ++p) {
      if (units[p] == 0) {
        continue;
      }
      active = true;
      // Finish a unit...
      --units[p];
      // ...which may spawn up to two more elsewhere (while budget lasts).
      if (budget > 0 && rng.chance(0.45)) {
        const auto nbrs = graph->neighbors(p);
        units[nbrs[rng.below(nbrs.size())]] += 1;
        --budget;
      }
      if (budget > 0 && rng.chance(0.25)) {
        units[p] += 1;
        --budget;
      }
    }
    return active;
  }

  [[nodiscard]] bool all_passive() const {
    for (std::uint32_t u : units) {
      if (u != 0) {
        return false;
      }
    }
    return true;
  }

  const graph::Graph* graph;
  std::vector<std::uint32_t> units;
  std::uint64_t budget = 200;
  util::Rng rng;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto n = static_cast<graph::NodeId>(cli.get_int("n", 10));
  const auto work = static_cast<std::uint32_t>(cli.get_int("work", 25));
  const std::uint64_t seed = cli.get_u64("seed", 3);

  const graph::Graph g = graph::make_random_connected(n, n / 2, seed);
  Workload workload(g, work, seed * 3 + 1);

  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  sim::Simulator<pif::PifProtocol> sim(protocol, g, seed);
  pif::GhostTracker tracker(g, 0);

  // Per-cycle instrumentation: "dirty[p]" records whether p was active at
  // any point since it joined the current wave; the feedback (F-action)
  // folds the subtree's dirtiness upward exactly like Count folds sizes.
  std::vector<bool> dirty(g.n(), false);
  std::vector<bool> subtree_dirty(g.n(), false);

  sim.set_apply_hook([&](sim::ProcessorId p, sim::ActionId a,
                         const sim::Configuration<pif::State>& before,
                         const pif::State& after) {
    tracker.note_step(sim.steps());
    tracker.on_apply(p, a, after);
    if (a == pif::kBAction) {
      dirty[p] = workload.units[p] != 0;
      subtree_dirty[p] = dirty[p];
    } else if (a == pif::kFAction && p != 0) {
      // Fold children's verdicts (children = neighbors that point at p and
      // already fed back; they are exactly the subtree built this cycle).
      bool acc = dirty[p] || subtree_dirty[p];
      for (sim::ProcessorId q : g.neighbors(p)) {
        if (before.state(q).parent == p &&
            before.state(q).pif == pif::Phase::kF) {
          acc = acc || subtree_dirty[q];
        }
      }
      subtree_dirty[p] = acc;
    }
  });

  auto daemon = sim::make_daemon(sim::DaemonKind::kDistributedRandom);
  util::Rng interleave(seed ^ 0x51ab);

  int consecutive_clean_waves = 0;
  std::uint64_t waves = 0;
  std::uint64_t detected_at_wave = 0;

  while (sim.steps() < 10'000'000) {
    // Interleave the diffusing computation with protocol steps.
    if (interleave.chance(0.5)) {
      if (workload.quantum()) {
        // Activity taints every processor that currently works.
        for (graph::NodeId p = 0; p < g.n(); ++p) {
          if (workload.units[p] != 0) {
            dirty[p] = true;
          }
        }
      }
    }
    const std::uint64_t before_cycles = tracker.cycles_completed();
    if (!sim.step(*daemon)) {
      break;
    }
    if (tracker.cycles_completed() > before_cycles) {
      ++waves;
      // Root folds its own neighborhood: the wave verdict.
      bool clean = !dirty[0] && workload.units[0] == 0;
      for (sim::ProcessorId q : g.neighbors(0)) {
        clean = clean && !subtree_dirty[q];
      }
      std::printf("wave %3llu: %s (remaining units: ",
                  static_cast<unsigned long long>(waves),
                  clean ? "all passive" : "activity seen");
      std::uint32_t total = 0;
      for (std::uint32_t u : workload.units) {
        total += u;
      }
      std::printf("%u)\n", total);
      consecutive_clean_waves = clean ? consecutive_clean_waves + 1 : 0;
      dirty.assign(g.n(), false);
      if (consecutive_clean_waves >= 2) {
        detected_at_wave = waves;
        break;
      }
    }
  }

  if (detected_at_wave == 0) {
    std::printf("termination not detected (step budget exhausted)\n");
    return 1;
  }
  std::printf("\ntermination announced after wave %llu\n",
              static_cast<unsigned long long>(detected_at_wave));
  if (!workload.all_passive()) {
    std::printf("FALSE DETECTION — work still pending!\n");
    return 1;
  }
  std::printf("verified: no work unit remains anywhere — detection is sound\n");
  return 0;
}
