// Side-by-side: the classic echo algorithm vs the snap-stabilizing PIF
// under faults — the repository's whole story in one run.
//
//   ./echo_vs_snap [--n=12] [--trials=10] [--loss=0.1] [--seed=5]
//
// Round 1: Chang's echo on reliable channels (works, 2|E| messages).
// Round 2: the same echo with message loss (deadlocks forever).
// Round 3: the snap PIF from adversarially corrupted state (first cycle
//          still delivers to all N and returns every acknowledgment).
#include <cstdio>

#include "analysis/runners.hpp"
#include "graph/generators.hpp"
#include "mp/echo.hpp"
#include "pif/faults.hpp"
#include "util/cli.hpp"

using namespace snappif;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto n = static_cast<graph::NodeId>(cli.get_int("n", 12));
  const std::uint64_t trials = cli.get_u64("trials", 10);
  const double loss = cli.get_double("loss", 0.1);
  const std::uint64_t seed = cli.get_u64("seed", 5);

  const graph::Graph g = graph::make_random_connected(n, n, seed);
  std::printf("network: %u processors, %zu links\n\n", g.n(), g.m());

  // Round 1: fault-free echo.
  {
    mp::EchoProtocol echo(g, 0, 0xCAFE);
    mp::Network net(g, echo, mp::Delivery::kRandomChannel, seed);
    (void)net.run();
    std::printf("1. classic echo, reliable channels:   completed=%s  "
                "messages=%llu (2|E|=%zu)\n",
                echo.completed() ? "yes" : "NO",
                static_cast<unsigned long long>(net.messages_sent()), 2 * g.m());
  }

  // Round 2: echo under loss.
  {
    std::uint64_t completed = 0;
    for (std::uint64_t t = 1; t <= trials; ++t) {
      mp::EchoProtocol echo(g, 0, 0xCAFE);
      mp::Network net(g, echo, mp::Delivery::kRandomChannel, seed + t);
      net.set_loss_rate(loss);
      (void)net.run();
      completed += echo.completed() ? 1 : 0;
    }
    std::printf("2. classic echo, %.0f%% message loss:   completed "
                "%llu/%llu waves — the rest deadlocked forever\n",
                loss * 100,
                static_cast<unsigned long long>(completed),
                static_cast<unsigned long long>(trials));
  }

  // Round 3: snap PIF from adversarial corruption.
  {
    std::uint64_t ok = 0;
    for (std::uint64_t t = 1; t <= trials; ++t) {
      analysis::RunConfig rc;
      rc.corruption = pif::CorruptionKind::kAdversarialMix;
      rc.seed = seed * 31 + t;
      const auto r = analysis::check_snap_first_cycle(g, rc);
      ok += r.ok() ? 1 : 0;
    }
    std::printf("3. snap PIF, adversarial corruption:  first cycle correct "
                "%llu/%llu — every processor reached, every ack returned\n",
                static_cast<unsigned long long>(ok),
                static_cast<unsigned long long>(trials));
    if (ok != trials) {
      std::printf("   UNEXPECTED: snap-stabilization violated!\n");
      return 1;
    }
  }
  std::printf("\nthat difference is the paper.\n");
  return 0;
}
