// Reset protocol on top of the snap-stabilizing PIF.
//
// The paper's introduction: "The most general method to repair the system is
// to reset the entire system after a transient fault is detected.  Reset
// protocols are also PIF-based algorithms."  This example builds exactly
// that: an application layer whose per-processor state (an epoch number and
// a config value) is scrambled by a fault; the root then broadcasts a reset
// command carrying a fresh epoch.  Snap-stabilization gives the crucial
// guarantee: the FIRST reset wave after the fault reaches every processor
// and its completion (feedback at the root) certifies that everyone
// installed the new epoch — no "maybe it worked" window.
//
//   ./network_reset [--n=12] [--faults=3] [--seed=7]
#include <cstdio>
#include <vector>

#include "graph/generators.hpp"
#include "pif/faults.hpp"
#include "pif/instrument.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"

using namespace snappif;

namespace {

/// The application layer riding the PIF wave.  `epoch[p]` is p's installed
/// configuration epoch; the payload `value[p]` is the configuration itself.
struct ResetLayer {
  explicit ResetLayer(graph::NodeId n) : epoch(n, 0), value(n, 0) {}

  // Called from the simulator's apply hook: receiving the broadcast (a
  // B-action) delivers the reset command of the processor's chosen parent.
  void deliver(sim::ProcessorId p, sim::ProcessorId parent) {
    epoch[p] = epoch[parent];
    value[p] = value[parent];
  }

  [[nodiscard]] bool consistent(std::uint64_t want_epoch,
                                std::uint64_t want_value) const {
    for (std::size_t p = 0; p < epoch.size(); ++p) {
      if (epoch[p] != want_epoch || value[p] != want_value) {
        return false;
      }
    }
    return true;
  }

  std::vector<std::uint64_t> epoch;
  std::vector<std::uint64_t> value;
};

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto n = static_cast<graph::NodeId>(cli.get_int("n", 12));
  const auto fault_rounds = static_cast<int>(cli.get_int("faults", 3));
  const std::uint64_t seed = cli.get_u64("seed", 7);

  const graph::Graph g = graph::make_random_connected(n, n, seed);
  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  sim::Simulator<pif::PifProtocol> sim(protocol, g, seed);
  pif::GhostTracker tracker(g, 0);
  ResetLayer app(g.n());
  util::Rng rng(seed ^ 0xabcdef);

  std::uint64_t next_epoch = 1;
  std::uint64_t current_config = 0;

  // Couple the app layer to the protocol: the root's B-action stamps the
  // reset command; every other B-action copies the parent's command.
  sim.set_apply_hook([&](sim::ProcessorId p, sim::ActionId a,
                         const sim::Configuration<pif::State>& /*before*/,
                         const pif::State& after) {
    tracker.note_step(sim.steps());
    tracker.on_apply(p, a, after);
    if (a == pif::kBAction) {
      if (p == 0) {
        app.epoch[0] = next_epoch;
        app.value[0] = current_config;
      } else {
        app.deliver(p, after.parent);
      }
    }
  });

  auto daemon = sim::make_daemon(sim::DaemonKind::kDistributedRandom);

  for (int fault = 0; fault < fault_rounds; ++fault) {
    // A transient fault scrambles the application AND protocol state.
    for (sim::ProcessorId p = 1; p < g.n(); ++p) {
      if (rng.chance(0.6)) {
        app.epoch[p] = rng.below(1000);
        app.value[p] = rng.below(1000);
      }
    }
    pif::adversarial_corruption(sim, rng);
    std::printf("fault %d injected: application state scrambled, protocol "
                "state corrupted\n", fault + 1);

    // The root picks the new configuration and epoch and fires a reset.
    current_config = 4200 + static_cast<std::uint64_t>(fault);
    const std::uint64_t epoch = next_epoch;

    const std::uint64_t cycles_before = tracker.cycles_completed();
    while (tracker.cycles_completed() == cycles_before &&
           sim.steps() < 10'000'000) {
      if (!sim.step(*daemon)) {
        std::printf("unexpected terminal configuration\n");
        return 1;
      }
    }
    const auto& verdict = tracker.last_cycle();
    const bool app_ok = app.consistent(epoch, current_config);
    std::printf(
        "  reset wave (epoch %llu, config %llu): PIF1=%s PIF2=%s  "
        "application consistent=%s\n",
        static_cast<unsigned long long>(epoch),
        static_cast<unsigned long long>(current_config),
        verdict.pif1 ? "yes" : "NO", verdict.pif2 ? "yes" : "NO",
        app_ok ? "yes" : "NO");
    if (!verdict.ok() || !app_ok) {
      std::printf("RESET FAILED — this should be impossible\n");
      return 1;
    }
    ++next_epoch;
  }
  std::printf("\nall %d resets certified by their first wave — "
              "snap-stabilization at work\n", fault_rounds);
  return 0;
}
