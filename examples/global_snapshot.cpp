// Global snapshot / distributed infimum computation in one wave.
//
// The paper's introduction lists "distributed infimum function computations"
// and "snapshot" among the classic PIF applications; its conclusion proposes
// the protocol as the engine of a universal transformer.  This example shows
// the WaveAggregator doing exactly that: each processor holds an application
// value (say, a sensor reading); the root collects SUM, MIN and MAX of all
// values in a single PIF cycle.  Because the protocol is snap-stabilizing,
// the very first wave after a transient fault already aggregates over the
// complete network — compare with a self-stabilizing PIF, whose early
// results may silently cover only a fragment of it.
//
//   ./global_snapshot [--n=12] [--rounds=3] [--seed=21]
#include <algorithm>
#include <cstdio>
#include <vector>

#include "graph/generators.hpp"
#include "pif/aggregate.hpp"
#include "pif/faults.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"

using namespace snappif;

namespace {

struct Stats {
  std::int64_t sum = 0;
  std::int64_t min = 0;
  std::int64_t max = 0;
  std::int64_t count = 0;
};

Stats fold(const Stats& a, const Stats& b) {
  Stats out;
  out.sum = a.sum + b.sum;
  out.min = std::min(a.min, b.min);
  out.max = std::max(a.max, b.max);
  out.count = a.count + b.count;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto n = static_cast<graph::NodeId>(cli.get_int("n", 12));
  const auto waves = static_cast<int>(cli.get_int("rounds", 3));
  const std::uint64_t seed = cli.get_u64("seed", 21);

  const graph::Graph g = graph::make_random_connected(n, n, seed);
  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  sim::Simulator<pif::PifProtocol> sim(protocol, g, seed);
  pif::GhostTracker tracker(g, 0);
  util::Rng rng(seed * 3 + 1);

  // The application values the snapshot collects.
  std::vector<std::int64_t> readings(g.n());
  for (auto& r : readings) {
    r = static_cast<std::int64_t>(rng.below(1000));
  }

  pif::WaveAggregator<Stats> aggregator(
      g, 0,
      [&](sim::ProcessorId p) {
        return Stats{readings[p], readings[p], readings[p], 1};
      },
      fold);
  pif::attach(sim, tracker, aggregator);

  auto daemon = sim::make_daemon(sim::DaemonKind::kDistributedRandom);
  for (int wave = 0; wave < waves; ++wave) {
    // Scramble the protocol between waves — a transient fault.
    pif::adversarial_corruption(sim, rng);
    // Also drift the readings so each wave sees fresh data.
    for (auto& r : readings) {
      r += static_cast<std::int64_t>(rng.below(21)) - 10;
    }
    // A wave already in flight when the fault struck carries no guarantee
    // (snap-stabilization speaks about cycles *initiated* from the faulty
    // configuration); wait for the first wave whose broadcast happened
    // after the corruption.
    const std::uint64_t msg_at_fault = tracker.current_message();
    while (sim.steps() < 10'000'000) {
      const std::uint64_t before = aggregator.results_computed();
      if (!sim.step(*daemon)) {
        std::printf("unexpected terminal configuration\n");
        return 1;
      }
      if (aggregator.results_computed() > before &&
          tracker.last_cycle().message > msg_at_fault) {
        break;
      }
    }
    const Stats& got = *aggregator.result();
    // Ground truth (possible only because we are the omniscient simulator).
    Stats want{readings[0], readings[0], readings[0], 1};
    for (graph::NodeId p = 1; p < g.n(); ++p) {
      want = fold(want, Stats{readings[p], readings[p], readings[p], 1});
    }
    std::printf(
        "wave %d: count=%lld sum=%lld min=%lld max=%lld  (truth: count=%lld "
        "sum=%lld min=%lld max=%lld)  %s\n",
        wave + 1, static_cast<long long>(got.count),
        static_cast<long long>(got.sum), static_cast<long long>(got.min),
        static_cast<long long>(got.max), static_cast<long long>(want.count),
        static_cast<long long>(want.sum), static_cast<long long>(want.min),
        static_cast<long long>(want.max),
        got.sum == want.sum && got.count == want.count && got.min == want.min &&
                got.max == want.max
            ? "EXACT"
            : "MISMATCH");
    if (got.count != want.count || got.sum != want.sum) {
      return 1;
    }
  }
  std::printf("\nall %d snapshots exact on their first post-fault wave\n", waves);
  return 0;
}
