// Quickstart: run one snap-stabilizing PIF cycle on a small network and
// watch the three phases sweep through it.
//
//   ./quickstart [--n=8] [--topology=ring|line|star|grid|random] [--seed=1]
//                [--corrupt] [--dot]
//
// With --corrupt the network starts from an adversarial configuration and
// you can watch the correction actions flush the debris before the root's
// first cycle — which still delivers to everyone (snap-stabilization).
// With --dot the constructed broadcast tree is printed in Graphviz format.
#include <cstdio>
#include <string>

#include "graph/dot.hpp"
#include "graph/generators.hpp"
#include "pif/checker.hpp"
#include "pif/faults.hpp"
#include "pif/instrument.hpp"
#include "sim/simulator.hpp"
#include "sim/timeline.hpp"
#include "util/cli.hpp"

using namespace snappif;

namespace {

graph::Graph make_topology(const std::string& name, graph::NodeId n) {
  if (name == "line") {
    return graph::make_path(n);
  }
  if (name == "star") {
    return graph::make_star(n);
  }
  if (name == "grid") {
    const graph::NodeId side = std::max<graph::NodeId>(2, n / 4);
    return graph::make_grid(side, std::max<graph::NodeId>(2, n / side));
  }
  if (name == "random") {
    return graph::make_random_connected(n, n, 12345);
  }
  return graph::make_cycle(std::max<graph::NodeId>(3, n));
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto n = static_cast<graph::NodeId>(cli.get_int("n", 8));
  const std::string topology = cli.get_string("topology", "ring");
  const std::uint64_t seed = cli.get_u64("seed", 1);

  const graph::Graph g = make_topology(topology, n);
  std::printf("network: %s with %u processors, %zu links; root = 0\n\n",
              topology.c_str(), g.n(), g.m());

  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  sim::Simulator<pif::PifProtocol> sim(protocol, g, seed);
  pif::Checker checker(sim.protocol());
  pif::GhostTracker tracker(g, 0);
  pif::attach(sim, tracker);

  util::Rng rng(seed);
  if (cli.get_bool("corrupt", false)) {
    pif::adversarial_corruption(sim, rng);
    std::printf("corrupted initial configuration:\n%s\n",
                checker.describe(sim.config()).c_str());
  }

  auto daemon = sim::make_daemon(sim::DaemonKind::kDistributedRandom);
  sim::Timeline timeline(200);
  timeline.snapshot(sim.steps(), sim.rounds(), checker.phase_strip(sim.config()));
  while (tracker.cycles_completed() == 0 && sim.steps() < 100000) {
    if (!sim.step(*daemon)) {
      std::printf("terminal configuration reached?!\n");
      return 1;
    }
    timeline.snapshot(sim.steps(), sim.rounds(),
                      checker.phase_strip(sim.config()));
  }
  std::fputs(timeline.render().c_str(), stdout);

  const auto& verdict = tracker.last_cycle();
  std::printf("\nfirst root-initiated cycle closed at step %llu:\n",
              static_cast<unsigned long long>(verdict.feedback_step));
  std::printf("  PIF1 (everyone received the message): %s\n",
              verdict.pif1 ? "yes" : "NO");
  std::printf("  PIF2 (every acknowledgment returned): %s\n",
              verdict.pif2 ? "yes" : "NO");
  std::printf("  constructed tree height h = %u (5h+5 = %u round bound)\n",
              verdict.tree_height, 5 * verdict.tree_height + 5);

  if (cli.get_bool("dot", false)) {
    std::vector<graph::NodeId> parents(g.n());
    std::vector<std::string> labels(g.n());
    for (sim::ProcessorId p = 0; p < g.n(); ++p) {
      const auto& s = sim.config().state(p);
      parents[p] = s.parent == pif::kNoParent ? p : s.parent;
      labels[p] = std::string(1, pif::phase_char(s.pif)) +
                  " L=" + std::to_string(s.level);
    }
    std::printf("\n%s", graph::to_dot(g, parents, labels).c_str());
  }
  return 0;
}
