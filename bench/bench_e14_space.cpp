// E14 — space complexity: bits of local state per processor.
//
// The tree-network PIF line of work ([8, 9]) emphasizes space optimality
// (constant-size state).  The arbitrary-network snap protocol pays
// O(log N) bits per processor — Count in [1, N'], L in [1, Lmax], Par among
// deg(p) neighbors — on top of the constant phase/flag bits.  We compute the
// exact per-processor state-space sizes from the protocols' own domain
// enumerations and report bits = ceil(log2 |states|).
#include "bench_common.hpp"

#include <bit>
#include <cmath>

#include "baselines/selfstab_pif.hpp"
#include "baselines/tree_pif.hpp"
#include "pif/protocol.hpp"
#include "util/stats.hpp"

namespace snappif {
namespace {

double bits_of(std::size_t states) {
  return std::log2(static_cast<double>(states));
}

void run() {
  bench::print_header(
      "E14  Local space per processor",
      "snap PIF in arbitrary networks uses O(log N) bits per processor "
      "(Count, L, Par); the tree-network PIF of [8,9] is O(1)");

  util::Table table({"N", "protocol", "min bits", "max bits", "mean bits",
                     "growth"});

  for (graph::NodeId n : {8u, 16u, 32u, 64u, 128u}) {
    const auto g = graph::make_random_connected(n, n, 14000 + n);

    {
      pif::PifProtocol protocol(g, pif::Params::for_graph(g));
      util::OnlineStats bits;
      for (sim::ProcessorId p = 0; p < g.n(); ++p) {
        bits.add(bits_of(protocol.all_states(p).size()));
      }
      table.add_row({util::fmt(n), "snap-PIF (paper)", util::fmt(bits.min(), 1),
                     util::fmt(bits.max(), 1), util::fmt(bits.mean(), 1),
                     "O(log N)"});
    }
    {
      const auto tree = graph::bfs_tree(g, 0);
      baselines::TreePifProtocol protocol(g, 0, tree.parent);
      util::OnlineStats bits;
      for (sim::ProcessorId p = 0; p < g.n(); ++p) {
        bits.add(bits_of(protocol.all_states(p).size()));
      }
      table.add_row({util::fmt(n), "tree-PIF [8,9]", util::fmt(bits.min(), 1),
                     util::fmt(bits.max(), 1), util::fmt(bits.mean(), 1),
                     "O(1)"});
    }
    {
      baselines::SelfStabPifProtocol protocol(g, 0);
      util::OnlineStats bits;
      for (sim::ProcessorId p = 0; p < g.n(); ++p) {
        bits.add(bits_of(protocol.all_states(p).size()));
      }
      table.add_row({util::fmt(n), "selfstab-PIF [12,23]",
                     util::fmt(bits.min(), 1), util::fmt(bits.max(), 1),
                     util::fmt(bits.mean(), 1), "O(log N)"});
    }
  }
  bench::print_table(table);
}

}  // namespace
}  // namespace snappif

int main(int argc, char** argv) {
  snappif::bench::init(argc, argv);
  snappif::run();
  return 0;
}
