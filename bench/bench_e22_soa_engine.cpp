// E22 — million-node engine throughput: the data-oriented SoA engine (CSR
// adjacency + struct-of-arrays state + batched branch-free guard kernel +
// incremental O(|selected|+|dirty|) bookkeeping) against the mask engine on
// identical workloads, extending E10's size sweep to n = 10^5 and 10^6.
//
// Three workloads, each reported per size:
//
//   * central: CentralRandomDaemon steps/s from a uniformly randomized
//     start.  One writer per step, so per-step cost is dominated by
//     bookkeeping — the mask engine pays an O(n) round-tracker scan every
//     step while the SoA engine's incremental accounting is O(degree).  This
//     is where the data-oriented refactor pays an order of magnitude
//     (metrics soa_steps_per_s / mask_steps_per_s / speedup).
//   * sync: SynchronousDaemon steps/s from a uniformly randomized start —
//     E10's methodology.  Every step evaluates live guards across most of
//     the network, so both engines are bound by the same guard-kernel work
//     and the honest gap is the kernel + layout gain only
//     (metrics soa_sync_steps_per_s / mask_sync_steps_per_s / sync_speedup).
//   * waves: synchronous rounds/s over clean PIF wave cycles from the
//     protocol's initial configuration (the root broadcasts, the wave
//     floods, feedback converges, cleaning resets — forever).  This is the
//     paper's own time unit on the intended workload
//     (metrics soa_sync_rounds_per_s / mask_sync_rounds_per_s).
//
// Two modes:
//   * --quick [--json=PATH]: trimmed timed-step counts, same metric names —
//     the CI gate compares like-for-like keys against the checked-in
//     BENCH_e22.json (scripts/check_bench_regression.py).
//   * --full  [--json=PATH]: the baseline producer.  Full mode additionally
//     HARD-FAILS (exit 1) if the tentpole acceptance floors are missed:
//     SoA >= 5x mask central steps/s at n = 1024, and >= 100 synchronous
//     rounds/s at n = 10^5.
//
// Graph: random_connected(n, 2n extra edges, seed 42) — 3n-1 edges, E10's
// exact topology family — so the E10 rows at n <= 16384 and these rows at
// n in {1024, 1e5, 1e6} are one continuous sweep.
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "pif/protocol.hpp"
#include "pif/soa_engine.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"

namespace snappif {
namespace {

using Clock = std::chrono::steady_clock;

struct Rates {
  double steps_per_s = 0.0;
  double rounds_per_s = 0.0;
};

/// Shared timed core: after warmup, runs `steps` steps split into 4 chunks
/// and keeps the fastest chunk's rates.  Best-of-chunks makes the report
/// robust against CPU-steal bursts on shared runners; both engines get the
/// identical treatment, so ratios stay honest.
template <typename Engine, typename Daemon>
Rates timed_chunks(Engine& eng, Daemon& daemon, std::uint64_t steps) {
  constexpr std::uint64_t kChunks = 4;
  const std::uint64_t chunk = steps / kChunks > 0 ? steps / kChunks : 1;
  Rates best;
  for (std::uint64_t c = 0; c < kChunks; ++c) {
    const std::uint64_t rounds_before = eng.rounds();
    const auto t0 = Clock::now();
    for (std::uint64_t i = 0; i < chunk; ++i) {
      (void)eng.step(daemon);
    }
    const auto t1 = Clock::now();
    const double seconds = std::chrono::duration<double>(t1 - t0).count();
    const double sps = static_cast<double>(chunk) / seconds;
    if (sps > best.steps_per_s) {
      best.steps_per_s = sps;
      best.rounds_per_s =
          static_cast<double>(eng.rounds() - rounds_before) / seconds;
    }
  }
  return best;
}

/// Times steps of `daemon` after `warmup` untimed ones, from a uniformly
/// randomized start (seed 7 for every engine, so both engines start from the
/// identical configuration).  Works for both engines — Simulator<P> and
/// SoaEngine share the stepping surface.
template <typename Engine, typename Daemon>
Rates measure_randomized(Engine& eng, std::uint64_t warmup,
                         std::uint64_t steps) {
  util::Rng rng(7);
  eng.randomize(rng);
  Daemon daemon;
  for (std::uint64_t i = 0; i < warmup; ++i) {
    (void)eng.step(daemon);
  }
  return timed_chunks(eng, daemon, steps);
}

/// Times synchronous rounds over clean PIF wave cycles: reset to the
/// protocol's initial configuration, let the first wave start during warmup,
/// then measure rounds completed per second.
template <typename Engine>
Rates measure_waves(Engine& eng, std::uint64_t warmup, std::uint64_t steps) {
  eng.reset_to_initial();
  sim::SynchronousDaemon daemon;
  for (std::uint64_t i = 0; i < warmup; ++i) {
    (void)eng.step(daemon);
  }
  return timed_chunks(eng, daemon, steps);
}

struct SizeSpec {
  graph::NodeId n;
  std::uint64_t central_warmup;
  std::uint64_t soa_central_steps;
  std::uint64_t mask_central_steps;  // mask central steps are O(n); fewer
  std::uint64_t sync_warmup;
  std::uint64_t soa_sync_steps;
  std::uint64_t mask_sync_steps;
  std::uint64_t wave_warmup;
  std::uint64_t wave_steps;
};

int run_report(const util::Cli& cli) {
  const bool quick = cli.get_bool("quick", false);
  std::string path = cli.get_string("json", "BENCH_e22.json");
  if (path.empty()) {
    path = "BENCH_e22.json";
  }

  // Quick trims timed steps, never sizes or metric names: the regression
  // gate needs every metric name present in both baseline and current.
  const SizeSpec specs[] = {
      quick ? SizeSpec{1024, 50, 4000, 1000, 20, 200, 100, 50, 1000}
            : SizeSpec{1024, 200, 100'000, 20'000, 50, 4000, 3000, 100, 20'000},
      quick ? SizeSpec{100'000, 20, 2000, 20, 2, 8, 4, 20, 200}
            : SizeSpec{100'000, 50, 20'000, 200, 5, 60, 40, 50, 2000},
      quick ? SizeSpec{1'000'000, 5, 500, 3, 1, 2, 1, 10, 30}
            : SizeSpec{1'000'000, 20, 5000, 30, 2, 8, 6, 20, 200},
  };

  bench::JsonReport report(
      "E22",
      "SoA engine throughput: CSR + batched branch-free guards vs mask engine");
  report.set_string("mode", quick ? "quick" : "full");
  report.set_string("graph", "random_connected(n, 2n extra edges, seed 42)");
  report.set_string("workloads",
                    "central=CentralRandomDaemon from randomized start; "
                    "sync=SynchronousDaemon from randomized start (E10); "
                    "waves=synchronous clean PIF wave cycles from initial");

  double central_speedup_1024 = 0.0;
  double soa_wave_rounds_1e5 = 0.0;

  std::printf("E22 %s report\n", quick ? "quick" : "full");
  std::printf("%9s | %12s %12s %8s | %12s %12s %8s | %12s %12s\n", "n",
              "soa cen/s", "mask cen/s", "speedup", "soa sync/s", "mask sync/s",
              "speedup", "soa rnds/s", "mask rnds/s");
  for (const SizeSpec& spec : specs) {
    const auto g = graph::make_random_connected(spec.n, 2 * spec.n, 42);
    pif::PifProtocol proto(g, pif::Params::for_graph(g));

    pif::SoaEngine soa(proto, g, /*seed=*/1);
    sim::Simulator<pif::PifProtocol> mask(proto, g, /*seed=*/1);

    const Rates soa_cen = measure_randomized<pif::SoaEngine,
                                             sim::CentralRandomDaemon>(
        soa, spec.central_warmup, spec.soa_central_steps);
    const Rates mask_cen =
        measure_randomized<sim::Simulator<pif::PifProtocol>,
                           sim::CentralRandomDaemon>(mask, spec.central_warmup,
                                                     spec.mask_central_steps);
    const Rates soa_sync =
        measure_randomized<pif::SoaEngine, sim::SynchronousDaemon>(
            soa, spec.sync_warmup, spec.soa_sync_steps);
    const Rates mask_sync =
        measure_randomized<sim::Simulator<pif::PifProtocol>,
                           sim::SynchronousDaemon>(mask, spec.sync_warmup,
                                                   spec.mask_sync_steps);
    const Rates soa_wave = measure_waves(soa, spec.wave_warmup, spec.wave_steps);
    const Rates mask_wave =
        measure_waves(mask, spec.wave_warmup, spec.wave_steps);

    const double central_speedup = soa_cen.steps_per_s / mask_cen.steps_per_s;
    const double sync_speedup = soa_sync.steps_per_s / mask_sync.steps_per_s;
    if (spec.n == 1024) {
      central_speedup_1024 = central_speedup;
    }
    if (spec.n == 100'000) {
      soa_wave_rounds_1e5 = soa_wave.rounds_per_s;
    }

    report.add_size(spec.n);
    const std::string suffix = "_n" + std::to_string(spec.n);
    report.set_metric("soa_steps_per_s" + suffix, soa_cen.steps_per_s);
    report.set_metric("mask_steps_per_s" + suffix, mask_cen.steps_per_s);
    report.set_metric("speedup" + suffix, central_speedup);
    report.set_metric("soa_sync_steps_per_s" + suffix, soa_sync.steps_per_s);
    report.set_metric("mask_sync_steps_per_s" + suffix, mask_sync.steps_per_s);
    report.set_metric("sync_speedup" + suffix, sync_speedup);
    report.set_metric("soa_sync_rounds_per_s" + suffix, soa_wave.rounds_per_s);
    report.set_metric("mask_sync_rounds_per_s" + suffix,
                      mask_wave.rounds_per_s);
    std::printf(
        "%9u | %12.0f %12.0f %7.2fx | %12.1f %12.1f %7.2fx | %12.1f %12.1f\n",
        spec.n, soa_cen.steps_per_s, mask_cen.steps_per_s, central_speedup,
        soa_sync.steps_per_s, mask_sync.steps_per_s, sync_speedup,
        soa_wave.rounds_per_s, mask_wave.rounds_per_s);
  }

  if (!report.write(path)) {
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());

  // Tentpole acceptance floors — enforced in full (baseline-producing) mode
  // only; quick mode's tiny step counts are too noisy for a hard gate and
  // are covered by the relative regression check instead.
  if (!quick) {
    bool ok = true;
    if (central_speedup_1024 < 5.0) {
      std::fprintf(
          stderr,
          "FAIL: SoA/mask central-daemon speedup at n=1024 is %.2fx "
          "(floor: 5x)\n",
          central_speedup_1024);
      ok = false;
    }
    if (soa_wave_rounds_1e5 < 100.0) {
      std::fprintf(stderr,
                   "FAIL: SoA synchronous rounds/s at n=1e5 is %.1f "
                   "(floor: 100)\n",
                   soa_wave_rounds_1e5);
      ok = false;
    }
    if (!ok) {
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace snappif

int main(int argc, char** argv) {
  const snappif::util::Cli cli(argc, argv);
  return snappif::run_report(cli);
}
