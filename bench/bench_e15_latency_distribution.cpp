// E15 — distributional view of recovery: E1/E2/E4 report worst cases; this
// bench shows the full distribution of (a) rounds until the root can start
// its first cycle after corruption and (b) rounds that first cycle takes,
// over many adversarial starts.  The shapes matter: recovery is typically
// far below the theorem bounds, with a thin tail produced by crafted fake
// trees.
#include "bench_common.hpp"

#include "analysis/runners.hpp"
#include "pif/faults.hpp"
#include "util/stats.hpp"

namespace snappif {
namespace {

void run() {
  bench::print_header(
      "E15  Recovery-latency distributions",
      "distribution of rounds-to-first-broadcast and first-cycle length "
      "over adversarial corrupted starts (bounds: 9Lmax+8 and 5h+5)");

  const auto g = graph::make_random_connected(24, 20, 15000);
  const std::uint32_t l_max = g.n() - 1;
  const std::uint64_t kTrials = 400;

  util::Histogram start_hist(24, 2.0);   // rounds to root's B-action
  util::Histogram close_hist(24, 2.0);   // rounds of the first cycle
  util::Samples start_samples, close_samples;

  for (std::uint64_t seed = 1; seed <= kTrials; ++seed) {
    analysis::RunConfig rc;
    rc.corruption = pif::CorruptionKind::kAdversarialMix;
    rc.daemon = sim::DaemonKind::kDistributedRandom;
    rc.seed = seed * 2654435761ull;
    const auto r = analysis::check_snap_first_cycle(g, rc);
    if (!r.cycle_completed) {
      continue;
    }
    start_hist.add(static_cast<double>(r.rounds_to_start));
    close_hist.add(static_cast<double>(r.rounds_to_close));
    start_samples.add(static_cast<double>(r.rounds_to_start));
    close_samples.add(static_cast<double>(r.rounds_to_close));
  }

  util::Table summary({"metric", "p50", "p90", "p99", "max", "bound"});
  summary.add_row({"rounds to first broadcast",
                   util::fmt(start_samples.quantile(0.5), 0),
                   util::fmt(start_samples.quantile(0.9), 0),
                   util::fmt(start_samples.quantile(0.99), 0),
                   util::fmt(start_samples.max(), 0),
                   util::fmt(9ull * l_max + 8)});
  summary.add_row({"rounds of the first cycle",
                   util::fmt(close_samples.quantile(0.5), 0),
                   util::fmt(close_samples.quantile(0.9), 0),
                   util::fmt(close_samples.quantile(0.99), 0),
                   util::fmt(close_samples.max(), 0), "5h+5 (h <= 23)"});
  bench::print_table(summary);

  std::printf("rounds to first broadcast (histogram over %llu trials):\n%s\n",
              static_cast<unsigned long long>(start_hist.total()),
              start_hist.render(48).c_str());
  std::printf("rounds of the first cycle:\n%s\n", close_hist.render(48).c_str());
}

}  // namespace
}  // namespace snappif

int main(int argc, char** argv) {
  snappif::bench::init(argc, argv);
  snappif::run();
  return 0;
}
