// E12 — the snap-stabilizing PIF vs the classic fault-free echo algorithm
// (Chang [10] / Segall [21]), PIF's message-passing ancestor.
//
// Echo assumes reliable channels and a correct initial state: it finishes in
// ~2*ecc(r) time with exactly 2|E| messages, and deadlocks forever after a
// single fault.  The paper's protocol tolerates ARBITRARY initial state at
// a constant-factor time overhead (~4h+4 vs ~2*ecc synchronous rounds) and
// O(N*h) work — the price of the counting and Fok waves that make the first
// cycle trustworthy.
#include "bench_common.hpp"

#include "analysis/runners.hpp"
#include "mp/echo.hpp"

namespace snappif {
namespace {

void run() {
  bench::print_header(
      "E12  Snap-stabilizing PIF vs classic echo (Chang/Segall)",
      "echo: 2|E| messages, ~2*ecc time, zero fault tolerance; snap PIF: "
      "~4h+4 rounds, O(N*h) actions, tolerates any initial state");

  util::Table table({"topology", "N", "|E|", "echo msgs", "echo rounds",
                     "echo survives 10% loss", "snap rounds", "snap steps",
                     "snap first-cycle ok after corruption"});

  for (graph::NodeId n : {16u, 32u}) {
    for (const auto& named : graph::standard_suite(n, 12000 + n)) {
      // Classic echo, synchronous time, fault-free.
      mp::EchoProtocol echo(named.graph, 0, 1);
      mp::Network net(named.graph, echo, mp::Delivery::kSynchronous, 1);
      const bool echo_ok = net.run() && echo.completed();

      // Echo under 10% loss: count survivals over 20 trials.
      int survived = 0;
      for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        mp::EchoProtocol lossy(named.graph, 0, 1);
        mp::Network lossy_net(named.graph, lossy,
                              mp::Delivery::kRandomChannel, seed);
        lossy_net.set_loss_rate(0.10);
        (void)lossy_net.run();
        survived += lossy.completed() ? 1 : 0;
      }

      // Snap PIF: steady-state cycle + corrupted-start first cycle.
      analysis::RunConfig rc;
      rc.daemon = sim::DaemonKind::kSynchronous;
      const auto cycle = analysis::run_cycle_from_sbn(named.graph, rc);
      std::uint64_t snap_ok = 0;
      const std::uint64_t kTrials = 20;
      for (std::uint64_t seed = 1; seed <= kTrials; ++seed) {
        analysis::RunConfig src;
        src.corruption = pif::CorruptionKind::kAdversarialMix;
        src.seed = seed;
        snap_ok += analysis::check_snap_first_cycle(named.graph, src).ok() ? 1 : 0;
      }

      table.add_row(
          {named.name, util::fmt(named.graph.n()), util::fmt(named.graph.m()),
           util::fmt(net.messages_sent()),
           echo_ok ? util::fmt(net.rounds()) : "-",
           util::fmt(survived) + "/20",
           cycle.ok ? util::fmt(cycle.rounds) : "-",
           cycle.ok ? util::fmt(cycle.steps) : "-",
           util::fmt(snap_ok) + "/" + util::fmt(kTrials)});
    }
  }
  bench::print_table(table);
}

}  // namespace
}  // namespace snappif

int main(int argc, char** argv) {
  snappif::bench::init(argc, argv);
  snappif::run();
  return 0;
}
