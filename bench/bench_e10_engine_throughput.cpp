// E10 — engineering numbers for the simulator itself: computation steps per
// second for the PIF protocol under the synchronous and central daemons,
// guard-evaluation cost, and cycle throughput.  These are the numbers that
// justify the experiment scales used in E1-E9.
//
// Two modes:
//   * default: the google-benchmark suite below (micro-benchmarks).
//   * --quick [--json=PATH]: a fixed-workload mask-vs-loop comparison that
//     writes a machine-readable BENCH_e10.json (commit hash, graph sizes,
//     steps/s for the one-pass mask engine vs the per-action fallback
//     adapter, and the speedup).  The checked-in BENCH_e10.json at the repo
//     root is the CI regression baseline (scripts/check_bench_regression.py).
#include <chrono>
#include <cstdio>

#include <benchmark/benchmark.h>

#include "analysis/runners.hpp"
#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pif/checker.hpp"
#include "pif/faults.hpp"
#include "pif/instrument.hpp"
#include "pif/protocol.hpp"
#include "pif/wave_trace.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"

namespace snappif {
namespace {

/// Adapter that hides the wrapped protocol's native `enabled_mask`, forcing
/// sim::enabled_mask back onto the per-action `enabled()` loop — i.e., the
/// exact cost a third-party protocol without a one-pass evaluator pays.
/// The E10 quick report measures Simulator<P> vs Simulator<LoopOnly<P>> on
/// identical workloads; the ratio is the guard-mask core's speedup.
template <typename P>
class LoopOnly {
 public:
  using State = typename P::State;

  explicit LoopOnly(P inner) : inner_(std::move(inner)) {}

  [[nodiscard]] State initial_state(sim::ProcessorId p) const {
    return inner_.initial_state(p);
  }
  [[nodiscard]] sim::ActionId num_actions() const {
    return inner_.num_actions();
  }
  [[nodiscard]] std::string_view action_name(sim::ActionId a) const {
    return inner_.action_name(a);
  }
  [[nodiscard]] bool enabled(const sim::Configuration<State>& c,
                             sim::ProcessorId p, sim::ActionId a) const {
    return inner_.enabled(c, p, a);
  }
  [[nodiscard]] State apply(const sim::Configuration<State>& c,
                            sim::ProcessorId p, sim::ActionId a) const {
    return inner_.apply(c, p, a);
  }
  [[nodiscard]] State random_state(sim::ProcessorId p, util::Rng& rng) const {
    return inner_.random_state(p, rng);
  }

 private:
  P inner_;
};

static_assert(!sim::MaskProtocol<LoopOnly<pif::PifProtocol>>,
              "LoopOnly must not expose a native mask");

/// Steps/s of `steps` synchronous-daemon steps from a corrupted start (all
/// guard classes live, including corrections), after a short warm-up.
template <typename P>
double measure_steps_per_sec(const P& proto, const graph::Graph& g,
                             std::uint64_t steps) {
  sim::Simulator<P> sim(proto, g, /*seed=*/1);
  util::Rng rng(7);
  sim.randomize(rng);
  sim::SynchronousDaemon daemon;
  for (int i = 0; i < 50; ++i) {
    (void)sim.step(daemon);
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < steps; ++i) {
    if (!sim.step(daemon)) {
      sim.randomize(rng);  // PIF never terminates; defensive only
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(steps) / seconds;
}

/// Same workload with the full causal tracer attached: a WaveTraceProbe
/// streaming wave/phase/correction spans into a bounded ring.  The ratio
/// against the bare run is the observability tax when tracing is ON; the
/// bare mask_steps_per_s numbers remain the tracing-OFF gate (one
/// probes_.empty() check per step).
double measure_traced_steps_per_sec(const pif::PifProtocol& proto,
                                    const graph::Graph& g,
                                    std::uint64_t steps) {
  sim::Simulator<pif::PifProtocol> sim(proto, g, /*seed=*/1);
  util::Rng rng(7);
  sim.randomize(rng);
  obs::SpanCollector spans(1 << 14);
  pif::WaveTraceProbe wave(0, spans);
  sim.add_probe(&wave);
  sim::SynchronousDaemon daemon;
  for (int i = 0; i < 50; ++i) {
    (void)sim.step(daemon);
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < steps; ++i) {
    if (!sim.step(daemon)) {
      sim.randomize(rng);  // PIF never terminates; defensive only
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(steps) / seconds;
}

int run_quick_report(const util::Cli& cli) {
  const bool quick = cli.get_bool("quick", false);
  std::string path = cli.get_string("json", "BENCH_e10.json");
  if (path.empty()) {
    path = "BENCH_e10.json";  // bare --json
  }
  // --quick trims the measured step count, not the sizes: the regression
  // gate compares like-for-like metric names across runs.
  const std::uint64_t steps = quick ? 2000 : 20000;

  bench::JsonReport report(
      "E10",
      "engine throughput: one-pass guard masks vs per-action fallback loop");
  report.set_string("mode", quick ? "quick" : "full");
  report.set_string("graph", "random_connected(n, 2n extra edges, seed 42)");
  report.set_string("daemon", "synchronous, corrupted start");

  std::printf("E10 quick report (%s, %llu timed steps per size)\n",
              quick ? "quick" : "full",
              static_cast<unsigned long long>(steps));
  std::printf("%8s %16s %16s %10s %16s %10s\n", "n", "mask steps/s",
              "loop steps/s", "speedup", "traced steps/s", "trace tax");
  for (const graph::NodeId n : {64, 256, 1024}) {
    const auto g = graph::make_random_connected(n, 2 * n, 42);
    pif::PifProtocol proto(g, pif::Params::for_graph(g));
    const double mask_rate = measure_steps_per_sec(proto, g, steps);
    const double loop_rate =
        measure_steps_per_sec(LoopOnly<pif::PifProtocol>(proto), g, steps);
    const double traced_rate = measure_traced_steps_per_sec(proto, g, steps);
    report.add_size(n);
    const std::string suffix = "_n" + std::to_string(n);
    report.set_metric("mask_steps_per_s" + suffix, mask_rate);
    report.set_metric("loop_steps_per_s" + suffix, loop_rate);
    report.set_metric("speedup" + suffix, mask_rate / loop_rate);
    report.set_metric("traced_steps_per_s" + suffix, traced_rate);
    report.set_metric("tracing_overhead" + suffix, mask_rate / traced_rate);
    std::printf("%8u %16.0f %16.0f %9.2fx %16.0f %9.2fx\n", n, mask_rate,
                loop_rate, mask_rate / loop_rate, traced_rate,
                mask_rate / traced_rate);
  }
  if (!report.write(path)) {
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

// BM_SynchronousStep is the no-probe baseline: with nothing attached the
// engine pays exactly one probes_.empty() check per step, so this number
// must not regress when observability code changes.  Compare against
// BM_SynchronousStepWithMetricsProbe below for the attached cost.
void BM_SynchronousStep(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto g = graph::make_random_connected(n, 2 * n, 42);
  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  sim::Simulator<pif::PifProtocol> sim(protocol, g, 1);
  sim::SynchronousDaemon daemon;
  std::uint64_t steps = 0;
  for (auto _ : state) {
    if (!sim.step(daemon)) {
      state.PauseTiming();
      sim.reset_to_initial();
      state.ResumeTiming();
    }
    ++steps;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps) * n);
  state.counters["steps/s"] =
      benchmark::Counter(static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SynchronousStep)->Arg(16)->Arg(64)->Arg(256);

// Same workload with the full telemetry stack (registry + PIF metrics
// probe) attached: the before/after pair quantifies observation overhead.
void BM_SynchronousStepWithMetricsProbe(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto g = graph::make_random_connected(n, 2 * n, 42);
  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  sim::Simulator<pif::PifProtocol> sim(protocol, g, 1);
  obs::Registry registry;
  pif::PifMetricsProbe probe(protocol, registry);
  sim.add_probe(&probe);
  sim::SynchronousDaemon daemon;
  std::uint64_t steps = 0;
  for (auto _ : state) {
    if (!sim.step(daemon)) {
      state.PauseTiming();
      sim.reset_to_initial();
      state.ResumeTiming();
    }
    ++steps;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps) * n);
  state.counters["steps/s"] =
      benchmark::Counter(static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SynchronousStepWithMetricsProbe)->Arg(16)->Arg(64)->Arg(256);

void BM_CentralStep(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto g = graph::make_random_connected(n, 2 * n, 43);
  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  sim::Simulator<pif::PifProtocol> sim(protocol, g, 2);
  sim::CentralRandomDaemon daemon;
  for (auto _ : state) {
    if (!sim.step(daemon)) {
      state.PauseTiming();
      sim.reset_to_initial();
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_CentralStep)->Arg(16)->Arg(64)->Arg(256);

void BM_FullCycle(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto g = graph::make_random_connected(n, 2 * n, 44);
  for (auto _ : state) {
    analysis::RunConfig rc;
    rc.daemon = sim::DaemonKind::kSynchronous;
    const auto r = analysis::run_cycle_from_sbn(g, rc);
    benchmark::DoNotOptimize(r.rounds);
  }
}
BENCHMARK(BM_FullCycle)->Arg(16)->Arg(64)->Arg(256);

// Per-processor guard evaluation: the reference per-action loop (one
// neighborhood walk per guard) vs the one-pass GuardEval mask.  The ratio is
// the per-evaluation payoff the engine banks on every dirty-mask refresh.
void BM_GuardEvaluation(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto g = graph::make_random_connected(n, 2 * n, 45);
  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  sim::Simulator<pif::PifProtocol> sim(protocol, g, 3);
  util::Rng rng(7);
  sim.randomize(rng);
  const auto& c = sim.config();
  sim::ProcessorId p = 0;
  for (auto _ : state) {
    for (sim::ActionId a = 0; a < protocol.num_actions(); ++a) {
      benchmark::DoNotOptimize(protocol.enabled(c, p, a));
    }
    p = (p + 1) % n;
  }
}
BENCHMARK(BM_GuardEvaluation)->Arg(16)->Arg(256);

void BM_GuardMaskEvaluation(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto g = graph::make_random_connected(n, 2 * n, 45);
  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  sim::Simulator<pif::PifProtocol> sim(protocol, g, 3);
  util::Rng rng(7);
  sim.randomize(rng);
  const auto& c = sim.config();
  sim::ProcessorId p = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(protocol.enabled_mask(c, p));
    p = (p + 1) % n;
  }
}
BENCHMARK(BM_GuardMaskEvaluation)->Arg(16)->Arg(256);

void BM_StabilizationRun(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto g = graph::make_random_connected(n, 2 * n, 46);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    analysis::RunConfig rc;
    rc.daemon = sim::DaemonKind::kDistributedRandom;
    rc.corruption = pif::CorruptionKind::kAdversarialMix;
    rc.seed = seed++;
    const auto r = analysis::measure_stabilization(g, rc);
    benchmark::DoNotOptimize(r.rounds_to_sbn);
  }
}
BENCHMARK(BM_StabilizationRun)->Arg(16)->Arg(64);

}  // namespace
}  // namespace snappif

int main(int argc, char** argv) {
  const snappif::util::Cli cli(argc, argv);
  if (cli.has("quick") || cli.has("json")) {
    return snappif::run_quick_report(cli);
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
