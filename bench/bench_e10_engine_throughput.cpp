// E10 — engineering numbers for the simulator itself (google-benchmark):
// computation steps per second for the PIF protocol under the synchronous
// and central daemons, guard-evaluation cost, and cycle throughput.  These
// are the numbers that justify the experiment scales used in E1-E9.
#include <benchmark/benchmark.h>

#include "analysis/runners.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "pif/checker.hpp"
#include "pif/faults.hpp"
#include "pif/instrument.hpp"
#include "pif/protocol.hpp"
#include "sim/simulator.hpp"

namespace snappif {
namespace {

// BM_SynchronousStep is the no-probe baseline: with nothing attached the
// engine pays exactly one probes_.empty() check per step, so this number
// must not regress when observability code changes.  Compare against
// BM_SynchronousStepWithMetricsProbe below for the attached cost.
void BM_SynchronousStep(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto g = graph::make_random_connected(n, 2 * n, 42);
  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  sim::Simulator<pif::PifProtocol> sim(protocol, g, 1);
  sim::SynchronousDaemon daemon;
  std::uint64_t steps = 0;
  for (auto _ : state) {
    if (!sim.step(daemon)) {
      state.PauseTiming();
      sim.reset_to_initial();
      state.ResumeTiming();
    }
    ++steps;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps) * n);
  state.counters["steps/s"] =
      benchmark::Counter(static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SynchronousStep)->Arg(16)->Arg(64)->Arg(256);

// Same workload with the full telemetry stack (registry + PIF metrics
// probe) attached: the before/after pair quantifies observation overhead.
void BM_SynchronousStepWithMetricsProbe(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto g = graph::make_random_connected(n, 2 * n, 42);
  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  sim::Simulator<pif::PifProtocol> sim(protocol, g, 1);
  obs::Registry registry;
  pif::PifMetricsProbe probe(protocol, registry);
  sim.add_probe(&probe);
  sim::SynchronousDaemon daemon;
  std::uint64_t steps = 0;
  for (auto _ : state) {
    if (!sim.step(daemon)) {
      state.PauseTiming();
      sim.reset_to_initial();
      state.ResumeTiming();
    }
    ++steps;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(steps) * n);
  state.counters["steps/s"] =
      benchmark::Counter(static_cast<double>(steps), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SynchronousStepWithMetricsProbe)->Arg(16)->Arg(64)->Arg(256);

void BM_CentralStep(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto g = graph::make_random_connected(n, 2 * n, 43);
  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  sim::Simulator<pif::PifProtocol> sim(protocol, g, 2);
  sim::CentralRandomDaemon daemon;
  for (auto _ : state) {
    if (!sim.step(daemon)) {
      state.PauseTiming();
      sim.reset_to_initial();
      state.ResumeTiming();
    }
  }
}
BENCHMARK(BM_CentralStep)->Arg(16)->Arg(64)->Arg(256);

void BM_FullCycle(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto g = graph::make_random_connected(n, 2 * n, 44);
  for (auto _ : state) {
    analysis::RunConfig rc;
    rc.daemon = sim::DaemonKind::kSynchronous;
    const auto r = analysis::run_cycle_from_sbn(g, rc);
    benchmark::DoNotOptimize(r.rounds);
  }
}
BENCHMARK(BM_FullCycle)->Arg(16)->Arg(64)->Arg(256);

void BM_GuardEvaluation(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto g = graph::make_random_connected(n, 2 * n, 45);
  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  sim::Simulator<pif::PifProtocol> sim(protocol, g, 3);
  util::Rng rng(7);
  sim.randomize(rng);
  const auto& c = sim.config();
  sim::ProcessorId p = 0;
  for (auto _ : state) {
    for (sim::ActionId a = 0; a < protocol.num_actions(); ++a) {
      benchmark::DoNotOptimize(protocol.enabled(c, p, a));
    }
    p = (p + 1) % n;
  }
}
BENCHMARK(BM_GuardEvaluation)->Arg(16)->Arg(256);

void BM_StabilizationRun(benchmark::State& state) {
  const auto n = static_cast<graph::NodeId>(state.range(0));
  const auto g = graph::make_random_connected(n, 2 * n, 46);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    analysis::RunConfig rc;
    rc.daemon = sim::DaemonKind::kDistributedRandom;
    rc.corruption = pif::CorruptionKind::kAdversarialMix;
    rc.seed = seed++;
    const auto r = analysis::measure_stabilization(g, rc);
    benchmark::DoNotOptimize(r.rounds_to_sbn);
  }
}
BENCHMARK(BM_StabilizationRun)->Arg(16)->Arg(64);

}  // namespace
}  // namespace snappif

BENCHMARK_MAIN();
