// E8 — cost of generality: the arbitrary-network snap PIF vs the
// fixed-spanning-tree snap PIF of [7, 9].  The tree protocol gets its
// spanning tree for free (pre-constructed input); the paper's protocol
// rebuilds one per cycle and pays the counting + Fok waves.  Compare
// steady-state rounds and steps per cycle on identical graphs.
#include "bench_common.hpp"

#include "analysis/runners.hpp"
#include "util/stats.hpp"

namespace snappif {
namespace {

void run() {
  bench::print_header(
      "E8  Arbitrary-network snap PIF vs tree-based snap PIF [7,9]",
      "the arbitrary-network protocol pays ~5h+5 rounds/cycle vs ~3h for "
      "the tree protocol, in exchange for not assuming a spanning tree");

  util::Table table({"topology", "N", "h(BFS)", "snap-PIF rounds",
                     "snap-PIF steps", "tree-PIF rounds", "tree-PIF steps",
                     "round ratio"});

  for (graph::NodeId n : bench::sweep_sizes()) {
    for (const auto& named : graph::standard_suite(n, 8000 + n)) {
      analysis::RunConfig rc;
      rc.daemon = sim::DaemonKind::kSynchronous;
      rc.seed = 5;
      const auto snap = analysis::run_cycles_from_sbn(named.graph, rc, 2);
      const auto tree = analysis::measure_tree_pif(named.graph, rc);
      if (snap.size() < 2 || !snap.back().ok || !tree.ok) {
        continue;
      }
      const auto& s = snap.back();
      const auto bfs_height = graph::bfs_tree(named.graph, 0).height;
      const double ratio =
          tree.rounds_per_cycle == 0
              ? 0.0
              : static_cast<double>(s.rounds) /
                    static_cast<double>(tree.rounds_per_cycle);
      table.add_row({named.name, util::fmt(named.graph.n()),
                     util::fmt(bfs_height), util::fmt(s.rounds),
                     util::fmt(s.steps), util::fmt(tree.rounds_per_cycle),
                     util::fmt(tree.steps_per_cycle), util::fmt(ratio, 2)});
    }
  }
  bench::print_table(table);
}

}  // namespace
}  // namespace snappif

int main(int argc, char** argv) {
  snappif::bench::init(argc, argv);
  snappif::run();
  return 0;
}
