// E23 — transport resilience: what PIF waves cost over a real transport,
// and what socket-level impairment does to that cost.
//
// The wave workload is mp::WaveService (serialized Chang-echo cycles over
// the snap-stabilizing link, with exactly-once in-order delivery asserted
// on every frame — see src/mp/serve.hpp), driven over four transport
// configurations:
//
//   * loopback        — deterministic in-process backend, clean wire;
//   * loopback+impair — same backend under the ImpairmentShim at 20% loss
//                       plus duplication/reordering (the simulated-fault
//                       unit cost: how much the shim + recovery machinery
//                       charges per wave);
//   * udp             — real non-blocking UDP sockets on localhost, clean;
//   * udp+impair      — real sockets with 20% injected datagram loss (the
//                       headline resilience configuration of Issue 9 and
//                       tools/snappif_serve.cpp).
//
// Two metrics per configuration: waves per second (throughput, the CI
// regression gate's target — prefix waves_per_s) and p99 wave-completion
// latency in microseconds (tail cost of loss-recovery: retransmission
// timers turn a lost frame into a multi-RTO stall for that wave).  The
// adaptive RTO estimator is on for all configurations, matching how the
// serve tool runs.
//
//   * default: table mode — the four configurations side by side, with
//     link/wire counters showing WHY impaired waves cost more;
//   * --quick [--json=PATH]: fixed-workload report that writes
//     BENCH_e23.json for scripts/check_bench_regression.py.
#include "bench_common.hpp"

#include <chrono>
#include <memory>

#include "mp/impairment.hpp"
#include "mp/link.hpp"
#include "mp/network.hpp"
#include "mp/serve.hpp"
#include "mp/udp_transport.hpp"
#include "util/stats.hpp"

namespace snappif {
namespace {

struct Impair {
  double loss = 0.0;
  double dup = 0.0;
  double reorder = 0.0;
};

struct WaveRun {
  double waves_per_s = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t steps = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t rtt_samples = 0;
  std::uint64_t wire_dropped = 0;
  bool completed = false;
};

/// Runs `waves` serialized PIF waves over the chosen backend and times each
/// wave completion.  The step budget bounds a (hypothetical) deadlock so a
/// bench run can't hang; `completed` reports whether every wave finished.
WaveRun measure_waves(const graph::Graph& g, bool use_udp,
                      const Impair& impair, std::uint32_t waves,
                      std::uint64_t seed) {
  mp::ServeConfig serve_cfg;
  serve_cfg.waves = waves;
  mp::WaveService service(g, serve_cfg);

  mp::LinkConfig link_cfg;
  link_cfg.rto_mode = mp::RtoMode::kAdaptive;
  mp::LinkProtocol link(g, service, link_cfg, seed ^ 0x9e3779b97f4a7c15ULL);

  mp::ImpairmentShim shim(link, g.n(), seed ^ 0xd1b54a32d192ed03ULL);
  shim.set_loss_rate(impair.loss);
  shim.set_duplication_rate(impair.dup);
  shim.set_reorder_rate(impair.reorder);

  std::unique_ptr<mp::Network> net;
  std::unique_ptr<mp::UdpTransport> udp;
  if (use_udp) {
    udp = std::make_unique<mp::UdpTransport>(g, shim, mp::UdpConfig{});
    shim.bind(*udp);
  } else {
    net = std::make_unique<mp::Network>(g, shim, mp::Delivery::kSynchronous,
                                        seed);
    shim.bind(*net);
  }

  // Step budget: generous per-wave allowance so even the impaired UDP runs
  // (whose step count is dominated by empty retransmission-timer polls)
  // always finish, while a regression to deadlock still terminates.
  const std::uint64_t max_steps =
      static_cast<std::uint64_t>(waves) * 4000 + 100000;

  WaveRun run;
  util::Samples wave_us;
  shim.start();
  std::uint64_t completed = 0;
  auto wave_t0 = std::chrono::steady_clock::now();
  const auto t0 = wave_t0;
  while (!service.done() && run.steps < max_steps) {
    shim.step();
    link.tick();
    ++run.steps;
    if (service.stats().waves_completed > completed) {
      completed = service.stats().waves_completed;
      const auto now = std::chrono::steady_clock::now();
      wave_us.add(
          std::chrono::duration<double, std::micro>(now - wave_t0).count());
      wave_t0 = now;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(t1 - t0).count();

  run.completed = service.done();
  run.waves_per_s = static_cast<double>(completed) / seconds;
  if (!wave_us.empty()) {
    run.p50_us = wave_us.quantile(0.5);
    run.p99_us = wave_us.quantile(0.99);
  }
  run.retransmits = link.stats().retransmits;
  run.rtt_samples = link.stats().rtt_samples;
  run.wire_dropped = shim.transport_stats().dropped;
  return run;
}

struct Config {
  const char* name;
  const char* key;  // metric suffix
  bool udp;
  Impair impair;
};

constexpr Impair kClean{};
constexpr Impair kImpaired{0.2, 0.05, 0.05};

const Config kConfigs[] = {
    {"loopback", "loopback", false, kClean},
    {"loopback+impair", "loopback_impaired", false, kImpaired},
    {"udp", "udp", true, kClean},
    {"udp+impair", "udp_impaired", true, kImpaired},
};

int run_quick_report(const util::Cli& cli) {
  const bool quick = cli.get_bool("quick", false);
  std::string path = cli.get_string("json", "BENCH_e23.json");
  if (path.empty()) {
    path = "BENCH_e23.json";  // bare --json
  }
  const std::uint32_t waves = quick ? 200 : 1000;
  const graph::NodeId n = 16;
  const auto g = graph::make_random_connected(n, 2 * n, 42);

  bench::JsonReport report(
      "E23",
      "transport resilience: PIF waves/s and p99 wave latency over loopback "
      "vs real UDP, clean vs 20% loss + dup/reorder impairment");
  report.set_string("mode", quick ? "quick" : "full");
  report.set_string("graph", "random_connected(16, 32 extra edges, seed 42)");
  report.set_string("impairment", "loss=0.2 dup=0.05 reorder=0.05");
  report.add_size(n);

  std::printf("E23 quick report (%s, %u waves per configuration, n=%u)\n",
              quick ? "quick" : "full", waves, n);
  std::printf("%18s %12s %12s %12s %12s\n", "transport", "waves/s", "p99 us",
              "retransmits", "dropped");
  for (const Config& c : kConfigs) {
    const WaveRun run = measure_waves(g, c.udp, c.impair, waves, 23000);
    if (!run.completed) {
      std::fprintf(stderr, "FAIL: %s did not complete %u waves in %llu steps\n",
                   c.name, waves,
                   static_cast<unsigned long long>(run.steps));
      return 1;
    }
    const std::string suffix = std::string("_") + c.key;
    report.set_metric("waves_per_s" + suffix, run.waves_per_s);
    report.set_metric("p50_wave_us" + suffix, run.p50_us);
    report.set_metric("p99_wave_us" + suffix, run.p99_us);
    report.set_metric("retransmits" + suffix,
                      static_cast<double>(run.retransmits));
    std::printf("%18s %12.0f %12.1f %12llu %12llu\n", c.name, run.waves_per_s,
                run.p99_us, static_cast<unsigned long long>(run.retransmits),
                static_cast<unsigned long long>(run.wire_dropped));
  }
  if (!report.write(path)) {
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

void run() {
  bench::print_header(
      "E23  Transport resilience",
      "PIF waves over a real UDP transport at 20% datagram loss still "
      "deliver exactly once, in order — and the adaptive-RTO link keeps the "
      "tail latency of loss recovery bounded");

  util::Table table({"transport", "N", "waves", "waves/s", "p50 us", "p99 us",
                     "retransmits", "rtt samples", "wire dropped"});
  const std::uint32_t kWaves = 300;
  for (const graph::NodeId n : {8, 16}) {
    const auto g = graph::make_random_connected(n, 2 * n, 42);
    for (const Config& c : kConfigs) {
      const WaveRun run = measure_waves(g, c.udp, c.impair, kWaves, 23000);
      table.add_row({c.name, util::fmt(n), util::fmt(kWaves),
                     util::fmt(run.waves_per_s), util::fmt(run.p50_us),
                     util::fmt(run.p99_us), util::fmt(run.retransmits),
                     util::fmt(run.rtt_samples), util::fmt(run.wire_dropped)});
    }
  }
  bench::print_table(table);
}

}  // namespace
}  // namespace snappif

int main(int argc, char** argv) {
  const snappif::util::Cli cli(argc, argv);
  if (cli.has("quick") || cli.has("json")) {
    return snappif::run_quick_report(cli);
  }
  snappif::bench::init(argc, argv);
  snappif::run();
  return 0;
}
