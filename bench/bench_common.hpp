// Shared helpers for the experiment binaries (E1-E10).  Every bench prints a
// paper-style table on stdout; the EXPERIMENTS.md rows are regenerated from
// these outputs.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "obs/metrics.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

namespace snappif::bench {

/// Set by init() from --csv: emit machine-readable CSV instead of the
/// aligned table (headers still go to the human).
inline bool g_csv = false;

inline void init(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  g_csv = cli.get_bool("csv", false);
}

inline void print_header(const char* experiment, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("  paper claim: %s\n", claim);
  std::printf("==============================================================\n");
}

inline void print_table(const util::Table& table) {
  std::fputs((g_csv ? table.render_csv() : table.render()).c_str(), stdout);
  std::printf("\n");
}

/// Default topology sweep sizes (kept modest so `for b in bench/*` finishes
/// in seconds; the tables still show the scaling shape).
inline std::vector<graph::NodeId> sweep_sizes() { return {8, 16, 32, 64}; }

/// Prints a metrics-registry snapshot under a one-line caption: the hook
/// benches use to surface per-phase/per-round telemetry next to their main
/// table.  Honors --csv like print_table.
inline void print_registry(const char* caption, const obs::Registry& registry) {
  std::printf("%s\n", caption);
  print_table(registry.summary_table());
}

}  // namespace snappif::bench
