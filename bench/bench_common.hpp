// Shared helpers for the experiment binaries (E1-E10).  Every bench prints a
// paper-style table on stdout; the EXPERIMENTS.md rows are regenerated from
// these outputs.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "obs/metrics.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

// Commit hash baked in at configure time (bench/CMakeLists.txt); "unknown"
// outside a git checkout.
#ifndef SNAPPIF_GIT_SHA
#define SNAPPIF_GIT_SHA "unknown"
#endif

namespace snappif::bench {

/// Set by init() from --csv: emit machine-readable CSV instead of the
/// aligned table (headers still go to the human).
inline bool g_csv = false;

inline void init(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  g_csv = cli.get_bool("csv", false);
}

inline void print_header(const char* experiment, const char* claim) {
  std::printf("==============================================================\n");
  std::printf("%s\n", experiment);
  std::printf("  paper claim: %s\n", claim);
  std::printf("==============================================================\n");
}

inline void print_table(const util::Table& table) {
  std::fputs((g_csv ? table.render_csv() : table.render()).c_str(), stdout);
  std::printf("\n");
}

/// Default topology sweep sizes (kept modest so `for b in bench/*` finishes
/// in seconds; the tables still show the scaling shape).
inline std::vector<graph::NodeId> sweep_sizes() { return {8, 16, 32, 64}; }

/// Prints a metrics-registry snapshot under a one-line caption: the hook
/// benches use to surface per-phase/per-round telemetry next to their main
/// table.  Honors --csv like print_table.
inline void print_registry(const char* caption, const obs::Registry& registry) {
  std::printf("%s\n", caption);
  print_table(registry.summary_table());
}

/// Machine-readable run report (BENCH_<name>.json): experiment id, the
/// commit the binary was built from, the graph sizes swept, and a flat
/// ordered map of named numeric metrics.  Written by benches that feed the
/// CI regression gate (scripts/check_bench_regression.py) or downstream
/// tooling; string values are restricted to what a JSON string can hold
/// verbatim (the writer escapes quotes/backslashes/control characters).
class JsonReport {
 public:
  JsonReport(std::string experiment, std::string description)
      : experiment_(std::move(experiment)),
        description_(std::move(description)) {}

  void set_string(std::string key, std::string value) {
    strings_.emplace_back(std::move(key), std::move(value));
  }
  void set_metric(std::string key, double value) {
    metrics_.emplace_back(std::move(key), value);
  }
  void add_size(graph::NodeId n) { sizes_.push_back(n); }

  [[nodiscard]] std::string render() const {
    std::string out = "{\n";
    out += "  \"experiment\": \"" + escape(experiment_) + "\",\n";
    out += "  \"description\": \"" + escape(description_) + "\",\n";
    out += "  \"commit\": \"" + escape(SNAPPIF_GIT_SHA) + "\",\n";
    for (const auto& [key, value] : strings_) {
      out += "  \"" + escape(key) + "\": \"" + escape(value) + "\",\n";
    }
    out += "  \"sizes\": [";
    for (std::size_t i = 0; i < sizes_.size(); ++i) {
      out += (i ? ", " : "") + std::to_string(sizes_[i]);
    }
    out += "],\n  \"metrics\": {";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", metrics_[i].second);
      out += (i ? ",\n    " : "\n    ");
      out += "\"" + escape(metrics_[i].first) + "\": " + buf;
    }
    out += metrics_.empty() ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
  }

  /// Writes render() to `path`; returns false (with a note on stderr) on
  /// I/O failure.
  [[nodiscard]] bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
      return false;
    }
    const std::string text = render();
    const bool ok = std::fwrite(text.data(), 1, text.size(), f) == text.size();
    std::fclose(f);
    return ok;
  }

 private:
  [[nodiscard]] static std::string escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char ch : s) {
      if (ch == '"' || ch == '\\') {
        out += '\\';
        out += ch;
      } else if (static_cast<unsigned char>(ch) < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
        out += buf;
      } else {
        out += ch;
      }
    }
    return out;
  }

  std::string experiment_;
  std::string description_;
  std::vector<std::pair<std::string, std::string>> strings_;
  std::vector<graph::NodeId> sizes_;
  std::vector<std::pair<std::string, double>> metrics_;
};

}  // namespace snappif::bench
