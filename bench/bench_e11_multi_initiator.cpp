// E11 — multi-initiator PIF (Section 1's general setting): several initiators
// run concurrent waves; each instance keeps its snap guarantee, and we
// measure the cost of concurrency — rounds per cycle as the number of
// simultaneous initiators grows (under the synchronous daemon the waves
// overlap almost freely; under central daemons they time-share the network).
#include "bench_common.hpp"

#include "pif/multi.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace snappif {
namespace {

struct Measurement {
  bool ok = false;
  double rounds_per_cycle = 0;
  double steps_per_cycle = 0;
};

Measurement measure(const graph::Graph& g, std::vector<sim::ProcessorId> roots,
                    sim::DaemonKind daemon_kind, std::uint64_t seed) {
  Measurement m;
  pif::MultiPifProtocol protocol(g, std::move(roots));
  sim::Simulator<pif::MultiPifProtocol> sim(protocol, g, seed);
  pif::MultiGhost ghost(g, sim.protocol());
  sim.set_apply_hook([&ghost](sim::ProcessorId p, sim::ActionId a,
                              const sim::Configuration<pif::MultiState>&,
                              const pif::MultiState& after) {
    ghost.on_apply(p, a, after);
  });
  auto daemon = sim::make_daemon(daemon_kind);
  const std::uint64_t kCycles = 4;
  auto r = sim.run_until(
      *daemon,
      [&](const auto&) { return ghost.min_cycles_completed() >= kCycles; },
      sim::RunLimits{.max_steps = 3'000'000});
  if (r.reason != sim::StopReason::kPredicate) {
    return m;
  }
  for (std::size_t i = 0; i < ghost.instances(); ++i) {
    for (const auto& verdict : ghost.tracker(i).verdicts()) {
      if (!verdict.ok()) {
        return m;  // any lost wave disqualifies the row
      }
    }
  }
  m.ok = true;
  m.rounds_per_cycle = static_cast<double>(r.rounds) / kCycles;
  m.steps_per_cycle = static_cast<double>(r.steps) / kCycles;
  return m;
}

void run() {
  bench::print_header(
      "E11  Concurrent multi-initiator PIF",
      "several initiators run simultaneous waves; every instance keeps its "
      "snap guarantee; cost grows with the number of initiators");

  util::Table table({"topology", "N", "initiators", "daemon",
                     "rounds/cycle (min inst.)", "steps/cycle", "all waves ok"});

  const graph::NodeId n = 16;
  for (const auto& named : graph::standard_suite(n, 11000)) {
    for (std::size_t k : {1u, 2u, 4u}) {
      std::vector<sim::ProcessorId> roots;
      for (std::size_t i = 0; i < k; ++i) {
        roots.push_back(static_cast<sim::ProcessorId>(
            i * named.graph.n() / k));  // spread the initiators out
      }
      for (sim::DaemonKind daemon : {sim::DaemonKind::kSynchronous,
                                     sim::DaemonKind::kCentralRandom}) {
        const auto m = measure(named.graph, roots, daemon, 77 + k);
        table.add_row({named.name, util::fmt(named.graph.n()), util::fmt(k),
                       std::string(sim::daemon_kind_name(daemon)),
                       m.ok ? util::fmt(m.rounds_per_cycle, 1) : "-",
                       m.ok ? util::fmt(m.steps_per_cycle, 0) : "-",
                       util::fmt_bool(m.ok)});
      }
    }
  }
  bench::print_table(table);
}

}  // namespace
}  // namespace snappif

int main(int argc, char** argv) {
  snappif::bench::init(argc, argv);
  snappif::run();
  return 0;
}
