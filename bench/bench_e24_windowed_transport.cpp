// E24 — pipelined waves: what the sliding-window link and concurrent wave
// streams buy over E23's stop-and-wait serialized baseline.
//
// E23 measured one wave at a time over a window-1 link: every frame waits a
// full RTT for its ack, and an impaired UDP wire turns each lost frame into
// a multi-RTO stall for the whole wave.  This experiment sweeps the two
// pipelining axes the Issue 10 link added:
//
//   * window  — LinkConfig::window in {1, 8}: how many frames a directed
//     edge keeps in flight before blocking on the cumulative ack (with
//     per-flush coalescing on, so a burst rides one datagram);
//   * streams — ServeConfig::streams in {1, 4}: how many independent PIF
//     waves, rooted at distinct processors, propagate concurrently over the
//     same links (stream-tagged tokens; exactly-once, in-order, and
//     all-joined asserted live per stream).
//
// over the four transport configurations of E23 (loopback / UDP, clean /
// 20% loss + dup/reorder).  window=1 × streams=1 IS the E23 configuration —
// the bit-exactness contract means its numbers carry over as the baseline —
// and window=8 × streams=4 is the headline: the CI gate requires it to hold
// a 2x waves/s advantage on impaired UDP, where pipelining pays the most
// (loss recovery overlaps useful traffic instead of serializing behind it).
//
//   * default: table mode — the {window} x {streams} grid per backend;
//   * --quick [--json=PATH]: fixed-workload report that writes
//     BENCH_e24.json for scripts/check_bench_regression.py.
#include "bench_common.hpp"

#include <chrono>
#include <memory>

#include "mp/impairment.hpp"
#include "mp/link.hpp"
#include "mp/network.hpp"
#include "mp/serve.hpp"
#include "mp/udp_transport.hpp"
#include "util/stats.hpp"

namespace snappif {
namespace {

struct Impair {
  double loss = 0.0;
  double dup = 0.0;
  double reorder = 0.0;
};

struct WaveRun {
  double waves_per_s = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  std::uint64_t steps = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t coalesced_frames = 0;
  std::uint64_t wire_dropped = 0;
  bool completed = false;
};

/// Runs `waves` PIF waves PER STREAM over the chosen backend with the given
/// window depth and stream count, timing each wave completion (any stream).
/// The step budget bounds a (hypothetical) deadlock so a bench run can't
/// hang; `completed` reports whether every stream finished its quota.
WaveRun measure_waves(const graph::Graph& g, bool use_udp,
                      const Impair& impair, std::uint32_t waves,
                      std::size_t window, std::uint32_t streams,
                      std::uint64_t seed) {
  mp::ServeConfig serve_cfg;
  serve_cfg.waves = waves;
  serve_cfg.streams = streams;
  mp::WaveService service(g, serve_cfg);

  mp::LinkConfig link_cfg;
  link_cfg.rto_mode = mp::RtoMode::kAdaptive;
  link_cfg.window = window;
  link_cfg.queue_capacity = window < 8 ? std::size_t{8} : 2 * window;
  link_cfg.coalesce = window > 1;
  // Tight RTO for the bench topology: steps are sub-millisecond here, so a
  // lost frame parked behind a 16-step cap stalls its whole stream while the
  // wire sits idle.  cap=4/min=1 cuts total steps ~3x under 20% loss and lets
  // concurrent streams keep per-edge batches full.
  link_cfg.rto_cap = 4;
  link_cfg.rto_min = 1;
  mp::LinkProtocol link(g, service, link_cfg, seed ^ 0x9e3779b97f4a7c15ULL);

  mp::ImpairmentShim shim(link, g.n(), seed ^ 0xd1b54a32d192ed03ULL);
  shim.set_loss_rate(impair.loss);
  shim.set_duplication_rate(impair.dup);
  shim.set_reorder_rate(impair.reorder);

  std::unique_ptr<mp::Network> net;
  std::unique_ptr<mp::UdpTransport> udp;
  if (use_udp) {
    udp = std::make_unique<mp::UdpTransport>(g, shim, mp::UdpConfig{});
    shim.bind(*udp);
  } else {
    net = std::make_unique<mp::Network>(g, shim, mp::Delivery::kSynchronous,
                                        seed);
    shim.bind(*net);
  }

  const std::uint64_t total_waves =
      static_cast<std::uint64_t>(waves) * streams;
  const std::uint64_t max_steps = total_waves * 4000 + 100000;

  WaveRun run;
  util::Samples wave_us;
  shim.start();
  std::uint64_t completed = 0;
  auto wave_t0 = std::chrono::steady_clock::now();
  const auto t0 = wave_t0;
  while (!service.done() && run.steps < max_steps) {
    shim.step();
    link.tick();
    service.pump(link);
    link.flush();
    ++run.steps;
    while (service.stats().waves_completed > completed) {
      ++completed;
      const auto now = std::chrono::steady_clock::now();
      wave_us.add(
          std::chrono::duration<double, std::micro>(now - wave_t0).count());
      wave_t0 = now;
    }
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(t1 - t0).count();

  run.completed = service.done();
  run.waves_per_s = static_cast<double>(completed) / seconds;
  if (!wave_us.empty()) {
    run.p50_us = wave_us.quantile(0.5);
    run.p99_us = wave_us.quantile(0.99);
  }
  run.retransmits = link.stats().retransmits;
  run.coalesced_frames = link.stats().coalesced_frames;
  run.wire_dropped = shim.transport_stats().dropped;
  return run;
}

struct Backend {
  const char* name;
  const char* key;  // metric suffix
  bool udp;
  Impair impair;
};

constexpr Impair kClean{};
constexpr Impair kImpaired{0.2, 0.05, 0.05};

const Backend kBackends[] = {
    {"loopback", "loopback", false, kClean},
    {"loopback+impair", "loopback_impaired", false, kImpaired},
    {"udp", "udp", true, kClean},
    {"udp+impair", "udp_impaired", true, kImpaired},
};

struct Shape {
  std::size_t window;
  std::uint32_t streams;
};

const Shape kShapes[] = {{1, 1}, {8, 1}, {1, 4}, {8, 4}, {8, 16}};

int run_quick_report(const util::Cli& cli) {
  const bool quick = cli.get_bool("quick", false);
  std::string path = cli.get_string("json", "BENCH_e24.json");
  if (path.empty()) {
    path = "BENCH_e24.json";  // bare --json
  }
  // Per-stream quota: the w1/s1 corner then runs the same total workload as
  // E23 quick mode, so waves_per_s_w1_s1_* is directly comparable to E23's
  // waves_per_s_*.
  const std::uint32_t waves = quick ? 200 : 1000;
  const graph::NodeId n = 16;
  const auto g = graph::make_random_connected(n, 2 * n, 42);

  bench::JsonReport report(
      "E24",
      "pipelined waves: waves/s and p99 wave latency for window {1,8} x "
      "streams {1,4} over loopback vs real UDP, clean vs 20% loss + "
      "dup/reorder impairment");
  report.set_string("mode", quick ? "quick" : "full");
  report.set_string("graph", "random_connected(16, 32 extra edges, seed 42)");
  report.set_string("impairment", "loss=0.2 dup=0.05 reorder=0.05");
  report.add_size(n);

  std::printf("E24 quick report (%s, %u waves/stream, n=%u)\n",
              quick ? "quick" : "full", waves, n);
  std::printf("%18s %10s %12s %12s %12s\n", "transport", "shape", "waves/s",
              "p99 us", "retransmits");
  for (const Backend& b : kBackends) {
    for (const Shape& s : kShapes) {
      const WaveRun run =
          measure_waves(g, b.udp, b.impair, waves, s.window, s.streams, 24000);
      if (!run.completed) {
        std::fprintf(stderr,
                     "FAIL: %s w%zu s%u did not complete %u waves/stream "
                     "in %llu steps\n",
                     b.name, s.window, s.streams, waves,
                     static_cast<unsigned long long>(run.steps));
        return 1;
      }
      char shape[32];
      std::snprintf(shape, sizeof shape, "w%zu s%u", s.window, s.streams);
      char suffix[48];
      std::snprintf(suffix, sizeof suffix, "_w%zu_s%u_%s", s.window,
                    s.streams, b.key);
      report.set_metric(std::string("waves_per_s") + suffix, run.waves_per_s);
      report.set_metric(std::string("p99_wave_us") + suffix, run.p99_us);
      std::printf("%18s %10s %12.0f %12.1f %12llu\n", b.name, shape,
                  run.waves_per_s, run.p99_us,
                  static_cast<unsigned long long>(run.retransmits));
    }
  }
  if (!report.write(path)) {
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

void run() {
  bench::print_header(
      "E24  Pipelined waves",
      "a sliding-window link plus concurrent stream-tagged waves overlaps "
      "loss recovery with useful traffic — impaired UDP throughput scales "
      "with window x streams while exactly-once per stream stays asserted");

  util::Table table({"transport", "window", "streams", "waves/s", "p50 us",
                     "p99 us", "retransmits", "coalesced", "wire dropped"});
  const std::uint32_t kWaves = 150;
  const auto g = graph::make_random_connected(16, 32, 42);
  for (const Backend& b : kBackends) {
    for (const Shape& s : kShapes) {
      const WaveRun run =
          measure_waves(g, b.udp, b.impair, kWaves, s.window, s.streams, 24000);
      table.add_row({b.name, util::fmt(s.window), util::fmt(s.streams),
                     util::fmt(run.waves_per_s), util::fmt(run.p50_us),
                     util::fmt(run.p99_us), util::fmt(run.retransmits),
                     util::fmt(run.coalesced_frames),
                     util::fmt(run.wire_dropped)});
    }
  }
  bench::print_table(table);
}

}  // namespace
}  // namespace snappif

int main(int argc, char** argv) {
  const snappif::util::Cli cli(argc, argv);
  if (cli.has("quick") || cli.has("json")) {
    return snappif::run_quick_report(cli);
  }
  snappif::bench::init(argc, argv);
  snappif::run();
  return 0;
}
