// E1 — Theorem 1: starting from any configuration, every processor becomes
// normal within 3*Lmax + 3 rounds.
//
// For each topology x corruption recipe we run many corrupted starts under
// the distributed random daemon (plus the synchronous daemon, the canonical
// round-greedy schedule) and report the worst observed rounds-to-all-normal
// against the bound.
#include "bench_common.hpp"

#include "analysis/runners.hpp"
#include "pif/faults.hpp"
#include "util/stats.hpp"

namespace snappif {
namespace {

void run() {
  bench::print_header(
      "E1  Error correction (Theorem 1)",
      "every processor becomes Normal within 3*Lmax + 3 rounds");

  util::Table table({"topology", "N", "Lmax", "corruption", "trials",
                     "max rounds", "mean", "bound 3Lmax+3", "within"});
  const std::uint64_t kTrials = 40;

  for (graph::NodeId n : {16u, 32u}) {
    for (const auto& named : graph::standard_suite(n, 1000 + n)) {
      for (pif::CorruptionKind kind :
           {pif::CorruptionKind::kUniformRandom,
            pif::CorruptionKind::kFakeTree,
            pif::CorruptionKind::kAdversarialMix}) {
        util::OnlineStats rounds;
        std::uint32_t l_max = 0;
        bool all_ok = true;
        for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
          analysis::RunConfig rc;
          rc.daemon = trial % 4 == 0 ? sim::DaemonKind::kSynchronous
                                     : sim::DaemonKind::kDistributedRandom;
          rc.corruption = kind;
          rc.seed = trial * 7919 + n;
          const auto result = analysis::measure_stabilization(named.graph, rc);
          all_ok = all_ok && result.ok;
          if (result.ok) {
            rounds.add(static_cast<double>(result.rounds_to_all_normal));
            l_max = result.l_max;
          }
        }
        const std::uint64_t bound = 3ull * l_max + 3;
        table.add_row({named.name, util::fmt(named.graph.n()), util::fmt(l_max),
                       std::string(pif::corruption_name(kind)),
                       util::fmt(kTrials), util::fmt(rounds.max(), 0),
                       util::fmt(rounds.mean(), 1), util::fmt(bound),
                       util::fmt_bool(all_ok && rounds.max() <= static_cast<double>(bound))});
      }
    }
  }
  bench::print_table(table);
}

}  // namespace
}  // namespace snappif

int main(int argc, char** argv) {
  snappif::bench::init(argc, argv);
  snappif::run();
  return 0;
}
