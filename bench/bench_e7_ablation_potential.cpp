// E7 — ablation of the Potential macro's minimum-level restriction.
//
// Theorem 4's proof hinges on B-action joining a *minimum-level* member of
// Pre_Potential, which makes every parent path chordless and so bounds the
// constructed height h by the longest chordless path.  Removing the
// restriction (join any broadcasting neighbor) loses the chordless
// guarantee; under adversarial schedules the tree can be much deeper, and
// the cycle cost grows with it.
#include "bench_common.hpp"

#include "analysis/runners.hpp"
#include "util/stats.hpp"

namespace snappif {
namespace {

struct Variant {
  const char* name;
  bool min_level;
};

void run() {
  bench::print_header(
      "E7  Ablation: minimum-level parent choice in Potential",
      "with the paper's rule parent paths are chordless and h stays small; "
      "without it chords appear and h (and the cycle cost) grow");

  util::Table table({"topology", "N", "variant", "daemon", "max h",
                     "max rounds", "chordless paths"});

  const Variant variants[] = {{"paper (min-level)", true},
                              {"ablated (any B-neighbor)", false}};

  for (graph::NodeId n : {16u, 32u}) {
    // Chord-rich graphs show the effect; trees are unaffected by design.
    std::vector<graph::NamedGraph> graphs;
    graphs.push_back({"complete", graph::make_complete(n)});
    graphs.push_back({"lollipop", graph::make_lollipop(n / 2, n - n / 2)});
    graphs.push_back({"random", graph::make_random_connected(n, 3 * n, 7000 + n)});
    graphs.push_back({"wheel", graph::make_wheel(n)});
    for (const auto& named : graphs) {
      for (const Variant& variant : variants) {
        for (sim::DaemonKind daemon : {sim::DaemonKind::kCentralRandom,
                                       sim::DaemonKind::kAdversarialMaxLevel}) {
          std::uint32_t max_h = 0;
          std::uint64_t max_rounds = 0;
          bool chordless = true;
          for (std::uint64_t seed = 1; seed <= 10; ++seed) {
            analysis::RunConfig rc;
            rc.daemon = daemon;
            rc.seed = seed * 101;
            rc.min_level_potential = variant.min_level;
            const auto r = analysis::run_cycle_from_sbn(named.graph, rc);
            if (!r.ok) {
              continue;
            }
            max_h = std::max(max_h, r.height);
            max_rounds = std::max(max_rounds, r.rounds);
            chordless = chordless && r.chordless;
          }
          table.add_row({named.name, util::fmt(named.graph.n()), variant.name,
                         std::string(sim::daemon_kind_name(daemon)),
                         util::fmt(max_h), util::fmt(max_rounds),
                         util::fmt_bool(chordless)});
        }
      }
    }
  }
  bench::print_table(table);
}

}  // namespace
}  // namespace snappif

int main(int argc, char** argv) {
  snappif::bench::init(argc, argv);
  snappif::run();
  return 0;
}
