// E4 — the headline claim (Definition 1, Specification 1): from ANY initial
// configuration, the first PIF cycle the root initiates delivers the message
// to every processor ([PIF1]) and returns every acknowledgment ([PIF2]).
// The success rate must be exactly 100%.
#include "bench_common.hpp"

#include "analysis/runners.hpp"
#include "pif/faults.hpp"
#include "util/stats.hpp"

namespace snappif {
namespace {

void run() {
  bench::print_header(
      "E4  Snap-stabilization of the first cycle",
      "for every initial configuration and daemon, the first root-initiated "
      "cycle satisfies PIF1 and PIF2 (100% success, zero aborts)");

  util::Table table({"topology", "N", "corruption", "trials", "completed",
                     "PIF1+PIF2 ok", "aborted", "success %"});
  const std::uint64_t kTrials = 60;

  for (graph::NodeId n : {16u, 32u}) {
    for (const auto& named : graph::standard_suite(n, 4000 + n)) {
      for (pif::CorruptionKind kind : pif::all_corruption_kinds()) {
        std::uint64_t completed = 0, ok = 0, aborted = 0;
        for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
          analysis::RunConfig rc;
          switch (trial % 3) {
            case 0:
              rc.daemon = sim::DaemonKind::kDistributedRandom;
              break;
            case 1:
              rc.daemon = sim::DaemonKind::kCentralRandom;
              break;
            default:
              rc.daemon = sim::DaemonKind::kSynchronous;
              break;
          }
          rc.policy = trial % 2 == 0 ? sim::ActionPolicy::kFirstEnabled
                                     : sim::ActionPolicy::kRandomEnabled;
          rc.corruption = kind;
          rc.seed = trial * 65537 + n * 17;
          const auto result = analysis::check_snap_first_cycle(named.graph, rc);
          completed += result.cycle_completed ? 1 : 0;
          ok += result.ok() ? 1 : 0;
          aborted += result.aborted ? 1 : 0;
        }
        table.add_row(
            {named.name, util::fmt(named.graph.n()),
             std::string(pif::corruption_name(kind)), util::fmt(kTrials),
             util::fmt(completed), util::fmt(ok), util::fmt(aborted),
             util::fmt(100.0 * static_cast<double>(ok) /
                           static_cast<double>(kTrials),
                       1)});
      }
    }
  }
  bench::print_table(table);
}

}  // namespace
}  // namespace snappif

int main(int argc, char** argv) {
  snappif::bench::init(argc, argv);
  snappif::run();
  return 0;
}
