// E17 — fault containment: how does recovery scale with the SIZE of the
// fault?  Theorem 1's 3·Lmax+3 bound is fault-size-oblivious; in practice
// the correction cascade is local — k corrupted processors are digested in
// rounds that grow with the damage's depth footprint, not with Lmax.  This
// is the fault-locality dimension the containment literature (a follow-up
// line to this paper) studies.
#include "bench_common.hpp"

#include "pif/checker.hpp"
#include "pif/instrument.hpp"
#include "sim/faults.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace snappif {
namespace {

void run() {
  bench::print_header(
      "E17  Fault containment",
      "rounds to re-normalize after corrupting k processors mid-cycle; the "
      "cascade is local — far below the fault-size-oblivious 3*Lmax+3");

  util::Table table({"topology", "N", "k corrupted", "trials",
                     "mean rounds to normal", "max", "bound 3Lmax+3",
                     "next cycle ok"});
  const std::uint64_t kTrials = 30;

  for (const auto& named : graph::standard_suite(32, 17000)) {
    if (named.name == "lollipop" || named.name == "star") {
      continue;  // keep the table compact
    }
    for (std::uint32_t k : {1u, 2u, 4u, 8u, 16u}) {
      util::OnlineStats rounds;
      std::uint64_t next_ok = 0;
      for (std::uint64_t seed = 1; seed <= kTrials; ++seed) {
        pif::PifProtocol protocol(named.graph,
                                  pif::Params::for_graph(named.graph));
        sim::Simulator<pif::PifProtocol> sim(protocol, named.graph, seed);
        pif::Checker checker(sim.protocol());
        pif::GhostTracker tracker(named.graph, 0);
        pif::attach(sim, tracker);
        auto daemon = sim::make_daemon(sim::DaemonKind::kDistributedRandom);
        util::Rng rng(seed * 29);

        // Run into the middle of a broadcast, then strike.
        auto warm = sim.run_until(
            *daemon,
            [&](const sim::Configuration<pif::State>& c) {
              return c.state(0).pif == pif::Phase::kB;
            },
            sim::RunLimits{.max_steps = 100000});
        if (warm.reason != sim::StopReason::kPredicate) {
          continue;
        }
        sim::inject_burst(sim, k, rng);

        auto heal = sim.run_until(
            *daemon,
            [&](const sim::Configuration<pif::State>& c) {
              return checker.all_normal(c);
            },
            sim::RunLimits{.max_steps = 500000});
        if (heal.reason != sim::StopReason::kPredicate) {
          continue;
        }
        rounds.add(static_cast<double>(heal.rounds));

        // And the next root-initiated cycle must be flawless.
        const std::uint64_t msg = tracker.current_message();
        auto next = sim.run_until(
            *daemon,
            [&](const auto&) {
              return !tracker.verdicts().empty() &&
                     tracker.verdicts().back().message > msg &&
                     !tracker.cycle_active();
            },
            sim::RunLimits{.max_steps = 500000});
        if (next.reason == sim::StopReason::kPredicate &&
            tracker.verdicts().back().ok()) {
          ++next_ok;
        }
      }
      table.add_row({named.name, util::fmt(named.graph.n()), util::fmt(k),
                     util::fmt(kTrials), util::fmt(rounds.mean(), 1),
                     util::fmt(rounds.max(), 0),
                     util::fmt(3ull * (named.graph.n() - 1) + 3),
                     util::fmt(next_ok) + "/" + util::fmt(kTrials)});
    }
  }
  bench::print_table(table);
}

}  // namespace
}  // namespace snappif

int main(int argc, char** argv) {
  snappif::bench::init(argc, argv);
  snappif::run();
  return 0;
}
