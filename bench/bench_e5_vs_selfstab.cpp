// E5 — the introduction's motivating comparison: a merely self-stabilizing
// PIF may complete early waves that delivered nothing (or the wrong value);
// the snap-stabilizing protocol never does.  Same corrupted starts for both;
// we count first-cycle failures and waves lost before the first correct one.
#include "bench_common.hpp"

#include "analysis/runners.hpp"
#include "pif/faults.hpp"
#include "util/stats.hpp"

namespace snappif {
namespace {

void run() {
  bench::print_header(
      "E5  Snap-stabilizing PIF vs self-stabilizing PIF baseline",
      "self-stabilizing PIF loses early waves from corrupted starts; the "
      "snap-stabilizing protocol never loses the first cycle");

  util::Table table({"topology", "N", "trials", "snap: first-cycle fails",
                     "selfstab: runs w/ lost waves", "selfstab: mean lost",
                     "selfstab: max lost"});
  const std::uint64_t kTrials = 50;

  for (graph::NodeId n : {16u, 32u}) {
    for (const auto& named : graph::standard_suite(n, 5000 + n)) {
      std::uint64_t snap_failures = 0;
      std::uint64_t selfstab_lossy_runs = 0;
      util::OnlineStats lost;
      for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
        analysis::RunConfig rc;
        rc.daemon = sim::DaemonKind::kDistributedRandom;
        rc.corruption = pif::CorruptionKind::kUniformRandom;
        rc.seed = trial * 31337 + n;
        const auto snap = analysis::check_snap_first_cycle(named.graph, rc);
        snap_failures += snap.ok() ? 0 : 1;
        const auto self = analysis::check_selfstab_first_cycles(named.graph, rc);
        if (self.ok) {
          lost.add(static_cast<double>(self.failed_waves));
          selfstab_lossy_runs += self.failed_waves > 0 ? 1 : 0;
        }
      }
      table.add_row({named.name, util::fmt(named.graph.n()), util::fmt(kTrials),
                     util::fmt(snap_failures), util::fmt(selfstab_lossy_runs),
                     util::fmt(lost.mean(), 2), util::fmt(lost.max(), 0)});
    }
  }
  bench::print_table(table);
}

}  // namespace
}  // namespace snappif

int main(int argc, char** argv) {
  snappif::bench::init(argc, argv);
  snappif::run();
  return 0;
}
