// E3 — Theorem 4: a full PIF cycle from the normal starting configuration
// takes at most 5h + 5 rounds, where h is the height of the tree the
// broadcast constructs; all parent paths are chordless, so h is bounded by
// the longest elementary chordless path from the root.
#include "bench_common.hpp"

#include "analysis/runners.hpp"
#include "obs/metrics.hpp"
#include "pif/instrument.hpp"
#include "sim/simulator.hpp"
#include "util/stats.hpp"

namespace snappif {
namespace {

void run() {
  bench::print_header(
      "E3  PIF cycle cost (Theorem 4)",
      "cycle completes in <= 5h + 5 rounds; parent paths chordless");

  util::Table table({"topology", "N", "diam", "daemon", "cycles", "max h",
                     "max rounds", "max 5h+5", "chordless", "within"});

  for (graph::NodeId n : {16u, 32u}) {
    for (const auto& named : graph::standard_suite(n, 3000 + n)) {
      for (sim::DaemonKind daemon :
           {sim::DaemonKind::kSynchronous, sim::DaemonKind::kCentralRandom,
            sim::DaemonKind::kDistributedRandom,
            sim::DaemonKind::kAdversarialMaxLevel}) {
        analysis::RunConfig rc;
        rc.daemon = daemon;
        rc.seed = 11 * n + 3;
        const auto results = analysis::run_cycles_from_sbn(named.graph, rc, 8);
        bool chordless = true;
        bool within = true;
        std::uint32_t max_h = 0;
        std::uint64_t max_rounds = 0;
        std::uint64_t max_bound = 0;
        bool all_ok = results.size() == 8;
        for (const auto& r : results) {
          all_ok = all_ok && r.ok;
          chordless = chordless && r.chordless;
          within = within && r.rounds <= 5ull * r.height + 5;
          max_h = std::max(max_h, r.height);
          max_rounds = std::max(max_rounds, r.rounds);
          max_bound = std::max<std::uint64_t>(max_bound, 5ull * r.height + 5);
        }
        table.add_row({named.name, util::fmt(named.graph.n()),
                       util::fmt(graph::diameter(named.graph)),
                       std::string(sim::daemon_kind_name(daemon)),
                       util::fmt(results.size()), util::fmt(max_h),
                       util::fmt(max_rounds), util::fmt(max_bound),
                       util::fmt_bool(chordless),
                       util::fmt_bool(all_ok && within)});
      }
    }
  }
  bench::print_table(table);

  // Second table: the h <= longest-chordless-path remark, exact on small
  // graphs where the exponential search is feasible.
  util::Table remark({"topology", "N", "max h over daemons",
                      "longest chordless path from r", "h <= bound"});
  for (const auto& named : graph::tiny_suite()) {
    if (named.graph.n() < 2) {
      continue;
    }
    std::uint32_t max_h = 0;
    for (sim::DaemonKind daemon : sim::standard_daemon_kinds()) {
      for (std::uint64_t seed = 1; seed <= 10; ++seed) {
        analysis::RunConfig rc;
        rc.daemon = daemon;
        rc.seed = seed;
        const auto r = analysis::run_cycle_from_sbn(named.graph, rc);
        if (r.ok) {
          max_h = std::max(max_h, r.height);
        }
      }
    }
    const auto bound = graph::longest_chordless_path_from(named.graph, 0);
    remark.add_row({named.name, util::fmt(named.graph.n()), util::fmt(max_h),
                    util::fmt(bound), util::fmt_bool(max_h <= bound)});
  }
  bench::print_table(remark);

  // Third table: per-phase-round telemetry from the metrics registry
  // (obs::Registry + pif::PifMetricsProbe) over 4 cycles per family — where
  // the 5h + 5 budget is actually spent, phase by phase.
  util::Table phases({"topology", "N", "cycles", "rounds root=B",
                      "rounds root=F", "rounds root=C", "mean #B", "mean #F",
                      "mean #C", "fok wave rnds", "par changes"});
  for (const auto& named : graph::standard_suite(16, 3016)) {
    pif::PifProtocol protocol(named.graph,
                              pif::Params::for_graph(named.graph));
    sim::Simulator<pif::PifProtocol> sim(protocol, named.graph, 29);
    obs::Registry registry;
    pif::PifMetricsProbe probe(protocol, registry);
    sim.add_probe(&probe);
    sim::SynchronousDaemon daemon;
    while (probe.cycles_closed() < 4 && sim.step(daemon)) {
    }
    const auto& fok = registry.stats("pif.fok_wave_rounds");
    phases.add_row(
        {named.name, util::fmt(named.graph.n()),
         util::fmt(probe.cycles_closed()),
         util::fmt(registry.counter("pif.rounds_root_b").value()),
         util::fmt(registry.counter("pif.rounds_root_f").value()),
         util::fmt(registry.counter("pif.rounds_root_c").value()),
         util::fmt(registry.stats("pif.round.occupancy_b").mean()),
         util::fmt(registry.stats("pif.round.occupancy_f").mean()),
         util::fmt(registry.stats("pif.round.occupancy_c").mean()),
         fok.empty() ? std::string("-") : util::fmt(fok.mean()),
         util::fmt(registry.counter("pif.par_changes").value())});
  }
  bench::print_table(phases);
}

}  // namespace
}  // namespace snappif

int main(int argc, char** argv) {
  snappif::bench::init(argc, argv);
  snappif::run();
  return 0;
}
