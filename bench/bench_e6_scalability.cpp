// E6 — scalability shape: per Theorem 4 the cycle cost scales with the
// constructed tree height h (~ diameter), NOT with N directly.  We sweep N
// per topology family and report rounds and total work (steps) per cycle.
// Expected shape: line/ring grow linearly in N (h ~ N), star/complete stay
// flat (h = 1), grid grows ~ sqrt(N).
#include "bench_common.hpp"

#include "analysis/runners.hpp"
#include "util/stats.hpp"

namespace snappif {
namespace {

void run(const util::Cli& cli) {
  bench::print_header(
      "E6  Cycle cost vs network size (scaling shape of Theorem 4)",
      "rounds per cycle track the constructed-tree height h, not N");

  util::Table table({"topology", "N", "diam", "h", "rounds/cycle",
                     "steps/cycle", "bound 5h+5"});

  for (graph::NodeId n : bench::sweep_sizes()) {
    for (const auto& named : graph::standard_suite(n, 6000 + n)) {
      analysis::RunConfig rc;
      rc.daemon = sim::DaemonKind::kSynchronous;  // deterministic, worst-ish
      rc.seed = 1;
      const auto results = analysis::run_cycles_from_sbn(named.graph, rc, 3);
      if (results.empty() || !results.back().ok) {
        continue;
      }
      const auto& r = results.back();
      table.add_row({named.name, util::fmt(named.graph.n()),
                     util::fmt(graph::diameter(named.graph)),
                     util::fmt(r.height), util::fmt(r.rounds),
                     util::fmt(r.steps), util::fmt(5ull * r.height + 5)});
    }
  }
  bench::print_table(table);

  std::printf("series: rounds-per-cycle by N (synchronous daemon)\n");
  util::Table series({"topology", "N=8", "N=16", "N=32", "N=64"});
  bench::JsonReport report("E6",
                           "rounds per cycle vs N across topology families");
  for (graph::NodeId n : bench::sweep_sizes()) {
    report.add_size(n);
  }
  for (const char* family : {"line", "ring", "star", "complete", "grid",
                             "bintree", "lollipop", "random"}) {
    std::vector<std::string> row{family};
    for (graph::NodeId n : bench::sweep_sizes()) {
      for (const auto& named : graph::standard_suite(n, 6000 + n)) {
        if (named.name != family) {
          continue;
        }
        analysis::RunConfig rc;
        rc.daemon = sim::DaemonKind::kSynchronous;
        const auto results = analysis::run_cycles_from_sbn(named.graph, rc, 1);
        row.push_back(results.empty() || !results[0].ok
                          ? "-"
                          : util::fmt(results[0].rounds));
        if (!results.empty() && results[0].ok) {
          report.set_metric(std::string("rounds_per_cycle_") + family + "_n" +
                                std::to_string(n),
                            static_cast<double>(results[0].rounds));
        }
      }
    }
    series.add_row(row);
  }
  bench::print_table(series);

  if (cli.has("json")) {
    std::string path = cli.get_string("json", "BENCH_e6.json");
    if (path.empty()) {
      path = "BENCH_e6.json";  // bare --json
    }
    if (report.write(path)) {
      std::printf("wrote %s\n", path.c_str());
    }
  }
}

}  // namespace
}  // namespace snappif

int main(int argc, char** argv) {
  snappif::bench::init(argc, argv);
  const snappif::util::Cli cli(argc, argv);
  snappif::run(cli);
  return 0;
}
