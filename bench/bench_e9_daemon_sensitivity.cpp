// E9 — daemon sensitivity: the paper's bounds quantify over the weakly fair
// distributed daemon, i.e. every schedule.  We run the E1 (correction) and
// E3 (cycle) measurements under each daemon strategy and confirm the bounds
// hold for all of them, while absolute numbers differ (the synchronous
// daemon is fastest per round; central daemons serialize).
#include "bench_common.hpp"

#include "analysis/runners.hpp"
#include "analysis/worstcase.hpp"
#include "pif/faults.hpp"
#include "util/stats.hpp"

namespace snappif {
namespace {

void run() {
  bench::print_header(
      "E9  Daemon sensitivity",
      "Theorem 1 and Theorem 4 bounds hold under every daemon strategy");

  util::Table table({"daemon", "topology", "max rounds to normal",
                     "bound 3Lmax+3", "max cycle rounds", "bound 5h+5",
                     "steps/cycle", "all within"});

  const graph::NodeId n = 24;
  for (sim::DaemonKind daemon : sim::standard_daemon_kinds()) {
    for (const auto& named : graph::standard_suite(n, 9000)) {
      // Correction side.
      util::OnlineStats rounds_normal;
      std::uint32_t l_max = 0;
      bool ok = true;
      for (std::uint64_t seed = 1; seed <= 15; ++seed) {
        analysis::RunConfig rc;
        rc.daemon = daemon;
        rc.corruption = pif::CorruptionKind::kAdversarialMix;
        rc.seed = seed * 997;
        const auto r = analysis::measure_stabilization(named.graph, rc);
        ok = ok && r.ok;
        if (r.ok) {
          rounds_normal.add(static_cast<double>(r.rounds_to_all_normal));
          l_max = r.l_max;
        }
      }
      // Cycle side.
      std::uint64_t max_cycle_rounds = 0, cycle_bound = 0, steps = 0;
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        analysis::RunConfig rc;
        rc.daemon = daemon;
        rc.seed = seed * 13;
        const auto r = analysis::run_cycle_from_sbn(named.graph, rc);
        ok = ok && r.ok;
        if (r.ok) {
          max_cycle_rounds = std::max(max_cycle_rounds, r.rounds);
          cycle_bound = std::max<std::uint64_t>(cycle_bound, 5ull * r.height + 5);
          steps = std::max(steps, r.steps);
          ok = ok && r.rounds <= 5ull * r.height + 5;
        }
      }
      ok = ok && rounds_normal.max() <= static_cast<double>(3 * l_max + 3);
      table.add_row({std::string(sim::daemon_kind_name(daemon)), named.name,
                     util::fmt(rounds_normal.max(), 0),
                     util::fmt(3ull * l_max + 3), util::fmt(max_cycle_rounds),
                     util::fmt(cycle_bound), util::fmt(steps),
                     util::fmt_bool(ok)});
    }
  }
  bench::print_table(table);

  // Beyond the fixed strategies: two independent worst-case probes.  The
  // randomized search (all daemons, policies, corruptions) dominates; the
  // greedy central adversary keeps the network abnormal for many STEPS but
  // few ROUNDS — the round measure charges a serializing adversary for its
  // stalling.  Both must respect Theorem 1.
  util::Table greedy({"topology", "N", "Lmax", "greedy-central max rounds",
                      "random-search max", "bound 3Lmax+3"});
  for (const auto& named : graph::standard_suite(n, 9100)) {
    std::uint64_t greedy_worst = 0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      greedy_worst = std::max(
          greedy_worst, analysis::greedy_delay_rounds_to_normal(
                            named.graph, pif::CorruptionKind::kAdversarialMix,
                            seed * 17));
    }
    const auto random_search = analysis::find_worst_case(
        named.graph, analysis::WorstCaseMetric::kRoundsToNormal, 48, 5);
    greedy.add_row({named.name, util::fmt(named.graph.n()),
                    util::fmt(named.graph.n() - 1), util::fmt(greedy_worst),
                    util::fmt(random_search.worst),
                    util::fmt(3ull * (named.graph.n() - 1) + 3)});
  }
  bench::print_table(greedy);
}

}  // namespace
}  // namespace snappif

int main(int argc, char** argv) {
  snappif::bench::init(argc, argv);
  snappif::run();
  return 0;
}
