// E2 — Theorems 2/3: recovery of the ready state.  We measure rounds from a
// corrupted configuration until the first SBN configuration (every processor
// clean, root about to start a fresh cycle).  Composing Theorem 2's cases
// bounds this by 9*Lmax + 8 from any start (Theorem 3's 8*Lmax + 7 bounds
// the GLT formation, an earlier milestone).
#include "bench_common.hpp"

#include "analysis/runners.hpp"
#include "pif/faults.hpp"
#include "util/stats.hpp"

namespace snappif {
namespace {

void run() {
  bench::print_header(
      "E2  Ready-state recovery (Theorems 2 and 3)",
      "the system reaches the normal starting configuration within "
      "9*Lmax + 8 rounds from any configuration");

  util::Table table({"topology", "N", "Lmax", "corruption", "trials",
                     "max rounds to SBN", "mean", "bound 9Lmax+8", "within"});
  const std::uint64_t kTrials = 40;

  for (graph::NodeId n : {16u, 32u}) {
    for (const auto& named : graph::standard_suite(n, 2000 + n)) {
      for (pif::CorruptionKind kind :
           {pif::CorruptionKind::kUniformRandom,
            pif::CorruptionKind::kStrayFok,
            pif::CorruptionKind::kAdversarialMix}) {
        util::OnlineStats rounds;
        std::uint32_t l_max = 0;
        bool all_ok = true;
        for (std::uint64_t trial = 0; trial < kTrials; ++trial) {
          analysis::RunConfig rc;
          rc.daemon = trial % 4 == 0 ? sim::DaemonKind::kSynchronous
                                     : sim::DaemonKind::kDistributedRandom;
          rc.corruption = kind;
          rc.seed = trial * 104729 + n;
          const auto result = analysis::measure_stabilization(named.graph, rc);
          all_ok = all_ok && result.ok;
          if (result.ok) {
            rounds.add(static_cast<double>(result.rounds_to_sbn));
            l_max = result.l_max;
          }
        }
        const std::uint64_t bound = 9ull * l_max + 8;
        table.add_row({named.name, util::fmt(named.graph.n()), util::fmt(l_max),
                       std::string(pif::corruption_name(kind)),
                       util::fmt(kTrials), util::fmt(rounds.max(), 0),
                       util::fmt(rounds.mean(), 1), util::fmt(bound),
                       util::fmt_bool(all_ok && rounds.max() <= static_cast<double>(bound))});
      }
    }
  }
  bench::print_table(table);
}

}  // namespace
}  // namespace snappif

int main(int argc, char** argv) {
  snappif::bench::init(argc, argv);
  snappif::run();
  return 0;
}
