// E16 — robustness to the atomicity assumption.
//
// The paper's guarantees are stated for composite atomicity (guard +
// statement atomic).  We emulate a weaker model by letting writes commit
// 1-3 scheduler steps late with a given probability (consistent-snapshot
// staleness).  Finding: the snap property SURVIVES at every delay level —
// the cycle's phase separation (joins strictly before Fok_r, which requires
// Count_r = N) leaves no window for stale writes to contradict the
// commitments other processors already acted on.  Full read/write
// atomicity (interleaved per-variable reads) is a strictly weaker model and
// remains uncovered; see tests/analysis/test_atomicity.cpp.
#include "bench_common.hpp"

#include "analysis/atomicity.hpp"
#include "pif/faults.hpp"

namespace snappif {
namespace {

void run() {
  bench::print_header(
      "E16  Sensitivity to the composite-atomicity assumption",
      "first-cycle success under emulated read/write atomicity "
      "(delayed commits); the paper's model is delay = 0");

  util::Table table({"topology", "N", "delay prob", "trials", "completed",
                     "first-cycle ok", "success %"});
  const std::uint64_t kTrials = 40;

  for (const auto& named : graph::standard_suite(16, 16000)) {
    if (named.name == "lollipop" || named.name == "bintree") {
      continue;  // keep the table compact; shapes match the others
    }
    for (double delay : {0.0, 0.1, 0.3, 0.6}) {
      std::uint64_t completed = 0, ok = 0;
      for (std::uint64_t seed = 1; seed <= kTrials; ++seed) {
        const auto r = analysis::check_snap_with_delayed_commits(
            named.graph, pif::CorruptionKind::kAdversarialMix, delay,
            seed * 7 + 3);
        completed += r.cycle_completed ? 1 : 0;
        ok += r.ok() ? 1 : 0;
      }
      table.add_row({named.name, util::fmt(named.graph.n()),
                     util::fmt(delay, 1), util::fmt(kTrials),
                     util::fmt(completed), util::fmt(ok),
                     util::fmt(100.0 * static_cast<double>(ok) /
                                   static_cast<double>(kTrials),
                               1)});
    }
  }
  bench::print_table(table);
}

}  // namespace
}  // namespace snappif

int main(int argc, char** argv) {
  snappif::bench::init(argc, argv);
  snappif::run();
  return 0;
}
