// E18 — chaos campaigns: recovery time from *sustained, mixed* fault
// timelines.  E1/E15 measure recovery from a single corruption burst; the
// snap-stabilization claim is about the quiet point after ANY transient
// fault pattern, so here the adversary is a whole scheduled campaign —
// bursts, structured corruptions, daemon swaps, connectivity-preserving
// link churn — and the chaos oracle measures rounds from the quiet point to
// (a) all-Normal closure and (b) the first clean cycle's close, asserting
// the snap property on that cycle.  Worst observed recovery sits far below
// the composed theorem budget (20*Lmax + 50).
//
// Campaign i's schedule and seed are pure functions of (suite seed, i), so
// --jobs=N runs campaigns on a worker pool with bit-identical tables and
// telemetry (deltas folded in campaign order; see src/par/README.md).
#include "bench_common.hpp"

#include <memory>

#include "chaos/campaign.hpp"
#include "chaos/schedule.hpp"
#include "par/shard.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace snappif {
namespace {

void run(par::ThreadPool* pool) {
  bench::print_header(
      "E18  Chaos campaign recovery",
      "after the last scheduled fault of a mixed campaign, every processor "
      "re-normalizes and the first root cycle is a correct PIF (snap)");

  util::Table table({"topology", "N", "events", "campaigns", "recovered",
                     "snap ok", "mean to-normal", "mean to-cycle", "worst",
                     "budget 20Lmax+50"});
  const std::uint64_t kCampaigns = 12;
  obs::Registry registry;

  for (const auto& named : graph::standard_suite(24, 18000)) {
    if (named.name == "complete" || named.name == "lollipop") {
      continue;  // keep the table compact
    }
    for (std::uint32_t events : {4u, 8u}) {
      chaos::CampaignShape shape;
      shape.events = events;
      shape.horizon_rounds = 40;
      shape.max_magnitude = 4;
      const std::uint64_t master_seed = 18000 + events;

      struct ShardOut {
        chaos::CampaignResult result;
        obs::Registry metrics;
      };
      auto shards = par::run_shards(
          master_seed, kCampaigns,
          [&](par::ShardContext& ctx) {
            ShardOut out;
            // Schedule then seed from the shard's own stream — campaign i
            // is the same job no matter which worker runs it.
            const chaos::FaultSchedule schedule =
                chaos::random_schedule(shape, ctx.rng);
            chaos::CampaignOptions opts;
            opts.seed = ctx.rng();
            opts.registry = &out.metrics;
            out.result = chaos::run_campaign(named.graph, schedule, opts);
            return out;
          },
          pool);

      util::OnlineStats to_normal;
      util::OnlineStats to_cycle;
      std::uint64_t recovered = 0;
      std::uint64_t snap_ok = 0;
      std::uint64_t worst = 0;
      const std::uint32_t l_max =
          named.graph.n() > 1 ? named.graph.n() - 1 : 1;
      for (const ShardOut& out : shards) {  // campaign order
        registry.merge(out.metrics);
        const chaos::CampaignResult& r = out.result;
        if (r.recovered) {
          ++recovered;
          to_normal.add(static_cast<double>(r.rounds_to_normal));
          to_cycle.add(static_cast<double>(r.rounds_to_cycle_close));
          worst = std::max(worst, r.rounds_to_cycle_close);
        }
        snap_ok += r.snap_ok ? 1 : 0;
      }
      table.add_row({named.name, util::fmt(named.graph.n()), util::fmt(events),
                     util::fmt(kCampaigns), util::fmt(recovered),
                     util::fmt(snap_ok), util::fmt(to_normal.mean()),
                     util::fmt(to_cycle.mean()), util::fmt(worst),
                     util::fmt(20u * l_max + 50u)});
    }
  }
  bench::print_table(table);
  bench::print_registry("chaos telemetry (all campaigns above):", registry);
}

}  // namespace
}  // namespace snappif

int main(int argc, char** argv) {
  snappif::bench::init(argc, argv);
  const snappif::util::Cli cli(argc, argv);
  const auto jobs = static_cast<unsigned>(cli.get_int("jobs", 1));
  std::unique_ptr<snappif::par::ThreadPool> pool;
  if (jobs != 1) {
    pool = std::make_unique<snappif::par::ThreadPool>(jobs);
  }
  snappif::run(pool.get());
  return 0;
}
