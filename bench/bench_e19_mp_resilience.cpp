// E19 — message-passing resilience: cost and recovery latency of running
// the paper's protocol over lossy, crashing channels via the resilience
// layer (mp::LinkProtocol + mp::GuardedEmulation).
//
// Two questions: (1) what does the emulation cost in wall-clock terms —
// emulated rounds per second across sizes, the metric the CI regression
// gate watches; (2) how fast does the emulated protocol come back after
// combined channel faults and crash-recover processor faults — rounds from
// the quiet point to quiescence and from release to the first clean cycle,
// measured by the chaos emulation campaign's settle-then-release oracle.
//
//   * default: table mode — per-topology campaign sweep plus link telemetry;
//   * --quick [--json=PATH]: fixed-workload throughput + recovery report
//     that writes BENCH_e19.json for scripts/check_bench_regression.py
//     (gate prefix: emulation_rounds_per_s).
#include "bench_common.hpp"

#include <chrono>
#include <memory>

#include "chaos/emulation_campaign.hpp"
#include "chaos/schedule.hpp"
#include "mp/guarded_emulation.hpp"
#include "par/shard.hpp"
#include "pif/codec.hpp"
#include "pif/protocol.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace snappif {
namespace {

using Emulation = mp::GuardedEmulation<pif::PifProtocol, pif::StateCodec>;

/// Emulated rounds per second on a perfect channel: every round pays the
/// full stack (delivery batch, link timers, guard masks over cached views,
/// snapshot publishes), so this is the emulation's steady-state unit cost.
double measure_emulation_rounds_per_sec(const graph::Graph& g,
                                        std::uint64_t rounds) {
  const pif::Params params = pif::Params::for_graph(g);
  const pif::PifProtocol proto(g, params);
  sim::Configuration<pif::State> initial(g, proto.initial_state(0));
  for (sim::ProcessorId p = 0; p < g.n(); ++p) {
    initial.state(p) = proto.initial_state(p);
  }
  Emulation emu(g, proto, pif::StateCodec(g, params), initial, 1);
  emu.start();
  for (std::uint64_t i = 0; i < rounds / 10; ++i) {
    emu.round();  // warm-up
  }
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < rounds; ++i) {
    emu.round();
  }
  const auto t1 = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  return static_cast<double>(rounds) / seconds;
}

struct RecoverySample {
  util::OnlineStats settle;
  util::OnlineStats recover;
  std::uint64_t recovered = 0;
  std::uint64_t campaigns = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t spurious_acks = 0;
};

/// Runs `campaigns` random crash-bearing fault campaigns and accumulates
/// the oracle's latency numbers.  Campaign i's schedule and seed derive
/// from (seed, i), so a pool changes nothing but wall-clock: results and
/// telemetry fold in campaign order (see src/par/README.md).
RecoverySample measure_recovery(const graph::Graph& g, std::uint64_t campaigns,
                                std::uint64_t seed,
                                obs::Registry* registry = nullptr,
                                par::ThreadPool* pool = nullptr) {
  chaos::CampaignShape shape;
  shape.events = 6;
  shape.horizon_rounds = 30;
  shape.message_passing = true;
  shape.crash = true;
  shape.crash_processors = g.n();

  struct ShardOut {
    chaos::EmulationCampaignResult result;
    obs::Registry metrics;
  };
  auto shards = par::run_shards(
      seed, static_cast<std::size_t>(campaigns),
      [&](par::ShardContext& ctx) {
        ShardOut out;
        const chaos::FaultSchedule schedule =
            chaos::random_schedule(shape, ctx.rng);
        chaos::EmulationCampaignOptions opts;
        opts.seed = ctx.rng();
        opts.arbitrary_init = true;
        opts.registry = registry != nullptr ? &out.metrics : nullptr;
        out.result = chaos::run_emulation_campaign(g, schedule, opts);
        return out;
      },
      pool);

  RecoverySample sample;
  for (const ShardOut& out : shards) {  // campaign order
    if (registry != nullptr) {
      registry->merge(out.metrics);
    }
    const chaos::EmulationCampaignResult& r = out.result;
    ++sample.campaigns;
    sample.retransmits += r.link_retransmits;
    sample.spurious_acks += r.link_spurious_acks;
    if (r.ok()) {
      ++sample.recovered;
      sample.settle.add(static_cast<double>(r.rounds_to_settle));
      sample.recover.add(static_cast<double>(r.rounds_to_recover));
    }
  }
  return sample;
}

int run_quick_report(const util::Cli& cli, par::ThreadPool* pool) {
  const bool quick = cli.get_bool("quick", false);
  std::string path = cli.get_string("json", "BENCH_e19.json");
  if (path.empty()) {
    path = "BENCH_e19.json";  // bare --json
  }
  const std::uint64_t rounds = quick ? 2000 : 20000;
  const std::uint64_t campaigns = quick ? 8 : 32;

  bench::JsonReport report(
      "E19",
      "mp resilience: emulation throughput and crash-recovery latency over "
      "lossy channels");
  report.set_string("mode", quick ? "quick" : "full");
  report.set_string("graph", "random_connected(n, 2n extra edges, seed 42)");
  report.set_string("faults",
                    "random loss/dup/reorder windows + crash(p,dur,mode), "
                    "arbitrary initial configuration");

  std::printf("E19 quick report (%s, %llu timed rounds per size)\n",
              quick ? "quick" : "full",
              static_cast<unsigned long long>(rounds));
  std::printf("%8s %18s %12s %14s %14s\n", "n", "emu rounds/s", "recovered",
              "settle mean", "recover mean");
  for (const graph::NodeId n : {16, 32, 64}) {
    const auto g = graph::make_random_connected(n, 2 * n, 42);
    // Throughput timing stays on one thread (it IS the unit-cost metric);
    // only the recovery campaigns fan out.
    const double rate = measure_emulation_rounds_per_sec(g, rounds);
    const RecoverySample sample =
        measure_recovery(g, campaigns, 19000 + n, nullptr, pool);
    report.add_size(n);
    const std::string suffix = "_n" + std::to_string(n);
    report.set_metric("emulation_rounds_per_s" + suffix, rate);
    report.set_metric("recovered" + suffix,
                      static_cast<double>(sample.recovered));
    report.set_metric("campaigns" + suffix,
                      static_cast<double>(sample.campaigns));
    report.set_metric("settle_rounds_mean" + suffix, sample.settle.mean());
    report.set_metric("recover_rounds_mean" + suffix, sample.recover.mean());
    std::printf("%8u %18.0f %9llu/%llu %14.1f %14.1f\n", n, rate,
                static_cast<unsigned long long>(sample.recovered),
                static_cast<unsigned long long>(sample.campaigns),
                sample.settle.mean(), sample.recover.mean());
  }
  if (!report.write(path)) {
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

void run(par::ThreadPool* pool) {
  bench::print_header(
      "E19  Message-passing resilience",
      "the paper's protocol, emulated over channels that lose, duplicate, "
      "and reorder frames on processors that crash and reboot corrupted, "
      "still completes a verified-clean PIF cycle after the last fault");

  util::Table table({"topology", "N", "campaigns", "recovered", "mean settle",
                     "mean recover", "retransmits", "spurious acks"});
  const std::uint64_t kCampaigns = 10;
  obs::Registry registry;
  for (const auto& named : graph::standard_suite(16, 19000)) {
    if (named.name == "complete" || named.name == "lollipop") {
      continue;  // keep the table compact
    }
    const RecoverySample sample =
        measure_recovery(named.graph, kCampaigns, 19000, &registry, pool);
    table.add_row({named.name, util::fmt(named.graph.n()),
                   util::fmt(sample.campaigns), util::fmt(sample.recovered),
                   util::fmt(sample.settle.mean()),
                   util::fmt(sample.recover.mean()),
                   util::fmt(sample.retransmits),
                   util::fmt(sample.spurious_acks)});
  }
  bench::print_table(table);
  bench::print_registry("resilience telemetry (all campaigns above):",
                        registry);
}

}  // namespace
}  // namespace snappif

int main(int argc, char** argv) {
  const snappif::util::Cli cli(argc, argv);
  const auto jobs = static_cast<unsigned>(cli.get_int("jobs", 1));
  std::unique_ptr<snappif::par::ThreadPool> pool;
  if (jobs != 1) {
    pool = std::make_unique<snappif::par::ThreadPool>(jobs);
  }
  if (cli.has("quick") || cli.has("json")) {
    return snappif::run_quick_report(cli, pool.get());
  }
  snappif::bench::init(argc, argv);
  snappif::run(pool.get());
  return 0;
}
