// E21 — guided coverage: unique registry fingerprints per campaign budget,
// coverage-guided fuzzing (chaos/guided.hpp) vs. the random soak baseline.
//
// The claim measured here: at an EQUAL campaign budget, keying outcomes by
// obs::fingerprint and mutating schedules that produced never-seen
// fingerprints reaches strictly more unique recovery behaviors than i.i.d.
// random schedule draws.  The workload runs in a deliberately tight regime
// (small graphs, few events, short horizons) where random draws collide on
// behavior — with a huge behavior space both approaches trivially score
// budget-many uniques and the comparison is vacuous.
//
// Also verified, as everywhere in the harness: the guided run is
// bit-identical across worker counts — corpus file bytes, unique-coverage
// count, and first-failure index at 1, 2, and hardware workers.  A guided
// loss to random on any topology, or any determinism divergence, fails the
// bench with a nonzero exit code.
//
// The regression gate (scripts/check_bench_regression.py) watches the
// unique_fp_guided_* metrics.
//
//   * default: table mode — guided vs random across topology families;
//   * --quick [--json=PATH]: fixed workload, writes BENCH_e21.json.
#include "bench_common.hpp"

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "chaos/guided.hpp"
#include "chaos/soak.hpp"
#include "obs/fingerprint.hpp"
#include "par/pool.hpp"

namespace snappif {
namespace {

/// The tight schedule envelope both searches draw from.
chaos::CampaignShape tight_shape() {
  chaos::CampaignShape shape;
  shape.events = 1;
  shape.horizon_rounds = 6;
  shape.max_magnitude = 1;
  return shape;
}

/// Random baseline: `budget` i.i.d. soak campaigns, each fingerprinted on
/// its own registry — exactly the coverage key the guided engine uses.
std::size_t random_unique_fingerprints(const graph::Graph& g,
                                       std::uint64_t master_seed,
                                       std::uint64_t budget) {
  chaos::SoakOptions soak;
  soak.master_seed = master_seed;
  soak.shape = tight_shape();
  std::set<std::uint64_t> seen;
  for (std::uint64_t i = 0; i < budget; ++i) {
    obs::Registry registry;
    const chaos::SoakOutcome outcome = chaos::run_soak_campaign(
        g, soak, chaos::soak_job(soak, i), i, &registry);
    (void)outcome;
    seen.insert(obs::fingerprint(registry));
  }
  return seen.size();
}

chaos::GuidedOptions guided_options(std::uint64_t master_seed,
                                    std::uint64_t generations,
                                    std::uint32_t population) {
  chaos::GuidedOptions opts;
  opts.master_seed = master_seed;
  opts.generations = generations;
  opts.population = population;
  opts.shape = tight_shape();
  return opts;
}

struct GuidedRun {
  std::size_t unique = 0;
  std::uint64_t campaigns = 0;
  std::string corpus_text;
  std::string first_failure;  // "gen/slot" or "-"
};

GuidedRun guided_run(const graph::Graph& g, const chaos::GuidedOptions& opts,
                     unsigned workers) {
  std::unique_ptr<par::ThreadPool> pool;
  if (workers != 1) {
    pool = std::make_unique<par::ThreadPool>(workers);
  }
  const chaos::GuidedReport report = chaos::run_guided(g, opts, pool.get());
  GuidedRun run;
  run.unique = report.unique_fingerprints;
  run.campaigns = report.campaigns_run;
  run.corpus_text = chaos::corpus_to_text(report.corpus);
  run.first_failure =
      report.first_failure.has_value()
          ? std::to_string(report.first_failure->generation) + "/" +
                std::to_string(report.first_failure->slot)
          : "-";
  return run;
}

struct Comparison {
  std::size_t guided_unique = 0;
  std::size_t random_unique = 0;
  std::uint64_t budget = 0;
  bool deterministic = true;
};

Comparison compare_on(const graph::Graph& g, std::uint64_t master_seed,
                      std::uint64_t generations, std::uint32_t population) {
  const chaos::GuidedOptions opts =
      guided_options(master_seed, generations, population);
  const GuidedRun base = guided_run(g, opts, 1);

  Comparison cmp;
  cmp.guided_unique = base.unique;
  cmp.budget = base.campaigns;  // equal budget for the random baseline
  cmp.random_unique = random_unique_fingerprints(g, master_seed, cmp.budget);

  const unsigned hw = par::ThreadPool::hardware_workers();
  for (const unsigned workers : {2u, hw}) {
    if (workers <= 1) {
      continue;
    }
    const GuidedRun run = guided_run(g, opts, workers);
    if (run.corpus_text != base.corpus_text || run.unique != base.unique ||
        run.first_failure != base.first_failure) {
      cmp.deterministic = false;
      std::fprintf(stderr,
                   "DETERMINISM FAILURE: %u-worker guided run diverged from "
                   "the single-worker run\n",
                   workers);
    }
    if (workers == hw) {
      break;  // hw may equal 2; don't measure it twice
    }
  }
  return cmp;
}

int run_quick_report(const util::Cli& cli) {
  const bool quick = cli.get_bool("quick", false);
  std::string path = cli.get_string("json", "BENCH_e21.json");
  if (path.empty()) {
    path = "BENCH_e21.json";  // bare --json
  }
  const std::uint64_t generations = quick ? 8 : 16;
  const std::uint32_t population = 8;

  bench::JsonReport report(
      "E21",
      "guided coverage: unique registry fingerprints per campaign budget, "
      "coverage-guided fuzzing vs random soak, bit-identical across worker "
      "counts");
  report.set_string("mode", quick ? "quick" : "full");
  report.set_string("workload",
                    "events=1, horizon=6, max_magnitude=1, population=8, " +
                        std::to_string(generations) +
                        " generations, master seed 21000");

  std::printf("E21 quick report (%s)\n", quick ? "quick" : "full");
  std::printf("%10s %8s %8s %8s %14s\n", "topology", "budget", "guided",
              "random", "deterministic");

  bool all_ok = true;
  struct Family {
    const char* name;
    graph::Graph g;
  };
  const Family families[] = {
      {"path", graph::make_path(5)},
      {"torus", graph::make_torus(3, 3)},
  };
  for (const Family& family : families) {
    const Comparison cmp = compare_on(family.g, 21000, generations,
                                      population);
    report.add_size(family.g.n());
    report.set_metric("unique_fp_guided_" + std::string(family.name),
                      static_cast<double>(cmp.guided_unique));
    report.set_metric("unique_fp_random_" + std::string(family.name),
                      static_cast<double>(cmp.random_unique));
    std::printf("%10s %8llu %8zu %8zu %14s\n", family.name,
                static_cast<unsigned long long>(cmp.budget),
                cmp.guided_unique, cmp.random_unique,
                cmp.deterministic ? "ok" : "FAILED");
    if (cmp.guided_unique <= cmp.random_unique) {
      all_ok = false;
      std::fprintf(stderr,
                   "COVERAGE FAILURE: guided (%zu) did not beat random "
                   "(%zu) on %s at budget %llu\n",
                   cmp.guided_unique, cmp.random_unique, family.name,
                   static_cast<unsigned long long>(cmp.budget));
    }
    if (!cmp.deterministic) {
      all_ok = false;
    }
  }
  report.set_metric("determinism_ok", all_ok ? 1.0 : 0.0);

  if (!report.write(path)) {
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return all_ok ? 0 : 1;
}

void run() {
  bench::print_header(
      "E21  Guided coverage vs random soak",
      "mutating fault schedules toward never-seen registry fingerprints "
      "reaches more unique recovery behaviors than random draws at the same "
      "campaign budget");

  util::Table table({"topology", "N", "budget", "guided unique",
                     "random unique", "advantage", "deterministic"});
  struct Family {
    const char* name;
    graph::Graph g;
  };
  const Family families[] = {
      {"path", graph::make_path(5)},
      {"torus", graph::make_torus(3, 3)},
      {"random", graph::make_random_connected(9, 4, 7)},
  };
  for (const Family& family : families) {
    const Comparison cmp = compare_on(family.g, 21000, 16, 8);
    table.add_row(
        {family.name, util::fmt(family.g.n()), util::fmt(cmp.budget),
         util::fmt(cmp.guided_unique), util::fmt(cmp.random_unique),
         util::fmt(static_cast<double>(cmp.guided_unique) -
                   static_cast<double>(cmp.random_unique)),
         cmp.deterministic ? "yes" : "NO"});
  }
  bench::print_table(table);
}

}  // namespace
}  // namespace snappif

int main(int argc, char** argv) {
  const snappif::util::Cli cli(argc, argv);
  if (cli.has("quick") || cli.has("json")) {
    return snappif::run_quick_report(cli);
  }
  snappif::bench::init(argc, argv);
  snappif::run();
  return 0;
}
