// E20 — parallel harness scaling: throughput and bit-exact determinism of
// the seeded-sharding layer (src/par) driving the chaos soak engine.
//
// Two claims measured here:
//   (1) scaling — campaigns/second of the identical soak workload at 1, 2,
//       and hardware_workers() worker threads.  Speedups are reported as
//       informational metrics (they depend on the host's core count; the
//       CI runners have several cores, a laptop may have one);
//   (2) determinism — the runs at every worker count must produce the SAME
//       verdict list and the SAME merged telemetry snapshot, byte for byte.
//       A mismatch fails the bench with a nonzero exit code.
//
// The regression gate (scripts/check_bench_regression.py) watches only the
// single-worker throughput (prefix campaigns_per_s_j1) — that is the
// machine-independent unit cost; speedup_* metrics print as informational.
//
//   * default: table mode — worker-count sweep over two topologies;
//   * --quick [--json=PATH]: fixed workload, writes BENCH_e20.json.
#include "bench_common.hpp"

#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "chaos/soak.hpp"
#include "par/pool.hpp"

namespace snappif {
namespace {

chaos::SoakOptions workload(std::uint64_t campaigns) {
  chaos::SoakOptions soak;
  soak.master_seed = 20000;
  soak.campaigns = campaigns;
  soak.shape.events = 6;
  soak.shape.horizon_rounds = 40;
  soak.shape.max_magnitude = 4;
  return soak;
}

struct TimedRun {
  double campaigns_per_s = 0.0;
  std::string fingerprint;  // verdicts + merged telemetry, byte-exact
  bool ok = true;
};

TimedRun timed_soak(const graph::Graph& g, const chaos::SoakOptions& soak,
                    unsigned workers) {
  std::unique_ptr<par::ThreadPool> pool;
  if (workers != 1) {
    pool = std::make_unique<par::ThreadPool>(workers);
  }
  const auto t0 = std::chrono::steady_clock::now();
  const chaos::SoakReport report = chaos::run_soak(g, soak, pool.get());
  const auto t1 = std::chrono::steady_clock::now();

  TimedRun run;
  const double seconds = std::chrono::duration<double>(t1 - t0).count();
  run.campaigns_per_s =
      seconds > 0.0 ? static_cast<double>(soak.campaigns) / seconds : 0.0;
  run.ok = report.ok();
  for (const chaos::SoakOutcome& o : report.outcomes) {
    run.fingerprint += o.ok() ? '+' : '-';
    run.fingerprint += std::to_string(o.shared.rounds_to_cycle_close);
    run.fingerprint += ';';
  }
  run.fingerprint += report.metrics.json();
  return run;
}

int run_quick_report(const util::Cli& cli) {
  const bool quick = cli.get_bool("quick", false);
  std::string path = cli.get_string("json", "BENCH_e20.json");
  if (path.empty()) {
    path = "BENCH_e20.json";  // bare --json
  }
  const std::uint64_t campaigns = quick ? 16 : 64;
  const unsigned hw = par::ThreadPool::hardware_workers();

  bench::JsonReport report(
      "E20",
      "parallel harness scaling: chaos-soak throughput per worker count, "
      "with bit-exact cross-worker determinism verified");
  report.set_string("mode", quick ? "quick" : "full");
  report.set_string("graph", "random_connected(16, 32 extra edges, seed 42)");
  report.set_string("workload",
                    std::to_string(campaigns) + " campaigns, events=6, "
                    "horizon=40, master seed 20000");
  report.set_string("hardware_workers", std::to_string(hw));

  const auto g = graph::make_random_connected(16, 32, 42);
  const chaos::SoakOptions soak = workload(campaigns);

  std::printf("E20 quick report (%s, %llu campaigns per run)\n",
              quick ? "quick" : "full",
              static_cast<unsigned long long>(campaigns));
  std::printf("%8s %16s %10s\n", "workers", "campaigns/s", "speedup");

  const TimedRun base = timed_soak(g, soak, 1);
  report.add_size(16);
  report.set_metric("campaigns_per_s_j1", base.campaigns_per_s);
  std::printf("%8u %16.2f %10.2f\n", 1u, base.campaigns_per_s, 1.0);

  bool deterministic = true;
  for (const unsigned workers : {2u, hw}) {
    if (workers <= 1) {
      continue;  // single-core host: nothing beyond j1 to measure
    }
    const TimedRun run = timed_soak(g, soak, workers);
    const std::string tag =
        workers == hw ? "hw" : "j" + std::to_string(workers);
    report.set_metric("campaigns_per_s_" + tag, run.campaigns_per_s);
    report.set_metric("speedup_" + tag,
                      base.campaigns_per_s > 0.0
                          ? run.campaigns_per_s / base.campaigns_per_s
                          : 0.0);
    std::printf("%8u %16.2f %10.2f\n", workers, run.campaigns_per_s,
                base.campaigns_per_s > 0.0
                    ? run.campaigns_per_s / base.campaigns_per_s
                    : 0.0);
    if (run.fingerprint != base.fingerprint) {
      deterministic = false;
      std::fprintf(stderr,
                   "DETERMINISM FAILURE: %u-worker run diverged from the "
                   "single-worker run\n",
                   workers);
    }
    if (workers == hw) {
      break;  // hw may equal 2; don't measure it twice
    }
  }
  report.set_metric("workers_hw", static_cast<double>(hw));
  report.set_metric("determinism_ok", deterministic ? 1.0 : 0.0);
  std::printf("determinism across worker counts: %s\n",
              deterministic ? "ok (bit-identical)" : "FAILED");

  if (!report.write(path)) {
    return 1;
  }
  std::printf("wrote %s\n", path.c_str());
  return deterministic ? 0 : 1;
}

void run() {
  bench::print_header(
      "E20  Parallel harness scaling",
      "the seeded-sharding runner turns worker threads into wall-clock "
      "speedup while every verdict and metric stays bit-identical to the "
      "sequential run");

  util::Table table({"topology", "N", "campaigns", "workers", "campaigns/s",
                     "speedup", "deterministic"});
  const std::uint64_t kCampaigns = 24;
  const unsigned hw = par::ThreadPool::hardware_workers();
  for (const char* topology : {"random", "torus"}) {
    const auto g = graph::make_by_name(topology, 16, 42);
    if (!g.has_value()) {
      continue;
    }
    const chaos::SoakOptions soak = workload(kCampaigns);
    std::vector<unsigned> counts = {1, 2, 4};
    if (hw > 4) {
      counts.push_back(hw);
    }
    TimedRun base;
    for (const unsigned workers : counts) {
      const TimedRun run = timed_soak(*g, soak, workers);
      if (workers == 1) {
        base = run;
      }
      table.add_row(
          {topology, util::fmt(g->n()), util::fmt(kCampaigns),
           util::fmt(workers), util::fmt(run.campaigns_per_s),
           util::fmt(base.campaigns_per_s > 0.0
                         ? run.campaigns_per_s / base.campaigns_per_s
                         : 0.0),
           run.fingerprint == base.fingerprint ? "yes" : "NO"});
    }
  }
  bench::print_table(table);
}

}  // namespace
}  // namespace snappif

int main(int argc, char** argv) {
  const snappif::util::Cli cli(argc, argv);
  if (cli.has("quick") || cli.has("json")) {
    return snappif::run_quick_report(cli);
  }
  snappif::bench::init(argc, argv);
  snappif::run();
  return 0;
}
