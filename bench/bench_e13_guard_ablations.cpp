// E13 — guard ablation study: every safety guard of the algorithm is
// load-bearing.  For each variant we run (a) the exhaustive model checker on
// tiny instances — the paper's rule must verify clean, each ablation must
// produce concrete specification violations — and (b) a randomized
// first-cycle failure-rate measurement at N = 16.
#include "bench_common.hpp"

#include "analysis/modelcheck.hpp"
#include "analysis/runners.hpp"
#include "pif/faults.hpp"

namespace snappif {
namespace {

struct Variant {
  const char* name;
  const char* removes;
  void (*configure)(pif::Params&);
};

const Variant kVariants[] = {
    {"paper", "(nothing)", [](pif::Params&) {}},
    {"no-Leaf-in-Broadcast", "Leaf(p) from Broadcast(p)",
     [](pif::Params& params) { params.ablate_broadcast_leaf = true; }},
    {"no-BLeaf-in-Feedback", "BLeaf(p) from Feedback(p)",
     [](pif::Params& params) { params.ablate_feedback_bleaf = true; }},
    {"no-Count-wait", "the Count_r = N requirement before Fok",
     [](pif::Params& params) { params.ablate_count_wait = true; }},
};

void run() {
  bench::print_header(
      "E13  Guard ablations",
      "removing any one guard breaks snap-stabilization; the model checker "
      "produces concrete violations and randomized runs lose first cycles");

  util::Table exhaustive({"variant", "removes", "instance", "states",
                          "cycle closures", "violations", "aborts"});
  for (const Variant& variant : kVariants) {
    for (const auto& named :
         {graph::NamedGraph{"path3", graph::make_path(3)},
          graph::NamedGraph{"triangle", graph::make_cycle(3)}}) {
      pif::Params params = pif::Params::for_graph(named.graph);
      variant.configure(params);
      pif::PifProtocol protocol(named.graph, params);
      const auto report = analysis::exhaustive_snap_check(named.graph, protocol);
      exhaustive.add_row({variant.name, variant.removes, named.name,
                          util::fmt(report.states),
                          util::fmt(report.cycle_closures),
                          util::fmt(report.violations),
                          util::fmt(report.aborts)});
    }
  }
  bench::print_table(exhaustive);

  util::Table randomized({"variant", "topology", "N", "trials",
                          "first-cycle failures"});
  const std::uint64_t kTrials = 40;
  for (const Variant& variant : kVariants) {
    for (const auto& named : graph::standard_suite(16, 13000)) {
      if (named.name != "ring" && named.name != "random" &&
          named.name != "grid") {
        continue;  // three representative families keep the table readable
      }
      std::uint64_t failures = 0;
      for (std::uint64_t seed = 1; seed <= kTrials; ++seed) {
        analysis::RunConfig rc;
        rc.corruption = pif::CorruptionKind::kAdversarialMix;
        rc.seed = seed * 311;
        rc.max_steps = 400000;
        // Route the variant through a bespoke run (params_for has no
        // ablation hooks beyond E7): construct manually.
        pif::Params params = pif::Params::for_graph(named.graph);
        variant.configure(params);
        pif::PifProtocol protocol(named.graph, params);
        sim::Simulator<pif::PifProtocol> sim(protocol, named.graph, rc.seed);
        pif::GhostTracker tracker(named.graph, 0);
        sim.set_apply_hook([&](sim::ProcessorId p, sim::ActionId a,
                               const sim::Configuration<pif::State>&,
                               const pif::State& after) {
          tracker.note_step(sim.steps());
          tracker.on_apply(p, a, after);
        });
        util::Rng rng(rc.seed);
        pif::apply_corruption(sim, rc.corruption, rng);
        auto daemon = sim::make_daemon(sim::DaemonKind::kDistributedRandom);
        auto r = sim.run_until(
            *daemon,
            [&](const auto&) { return tracker.cycles_completed() >= 1; },
            sim::RunLimits{.max_steps = rc.max_steps});
        if (r.reason != sim::StopReason::kPredicate ||
            !tracker.last_cycle().ok()) {
          ++failures;
        }
      }
      randomized.add_row({variant.name, named.name, util::fmt(named.graph.n()),
                          util::fmt(kTrials), util::fmt(failures)});
    }
  }
  bench::print_table(randomized);
}

}  // namespace
}  // namespace snappif

int main(int argc, char** argv) {
  snappif::bench::init(argc, argv);
  snappif::run();
  return 0;
}
