#!/usr/bin/env python3
"""Throughput regression gate for the JSON-reporting benches.

Compares a freshly produced BENCH_*.json against the checked-in baseline
and fails when any compared metric fell by more than the tolerance factor:

    current < baseline / factor   ->  regression

Only throughput metrics are gated — ratios and counts are recorded for
humans but depend on more than one code path, so they are reported without
gating.  The factor defaults to 2.0: generous enough to absorb CI-runner
hardware variance, tight enough to catch a structural slowdown (the engine
falling back to per-action loops, the link layer allocating per frame).

--prefix selects the gated metrics and accepts a comma-separated list:

    E10 (engine):        --prefix mask_steps_per_s          (the default)
    E19 (mp resilience): --prefix emulation_rounds_per_s
    E22 (SoA engine):    --prefix soa_steps_per_s,mask_steps_per_s

Gated names are the UNION of the matching baseline and current keys, so a
metric that disappears from either side fails loudly instead of silently
dropping out of the comparison (renaming a metric requires regenerating the
checked-in baseline in the same change).  --require names specific metrics
that must be present in both reports whatever the prefixes match — use it to
pin the metrics an experiment's acceptance floors are stated over.

Usage:
    check_bench_regression.py BASELINE CURRENT [--factor 2.0]
                              [--prefix mask_steps_per_s[,another_prefix]]
                              [--require metric_a,metric_b]
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="checked-in BENCH_*.json")
    parser.add_argument("current", help="freshly measured BENCH_*.json")
    parser.add_argument("--factor", type=float, default=2.0,
                        help="allowed slowdown factor (default: 2.0)")
    parser.add_argument("--prefix", default="mask_steps_per_s",
                        help="metric-name prefix(es) to gate on, "
                             "comma-separated")
    parser.add_argument("--require", default="",
                        help="comma-separated metric names that must exist "
                             "in both reports")
    args = parser.parse_args()

    with open(args.baseline, encoding="utf-8") as f:
        baseline = json.load(f)
    with open(args.current, encoding="utf-8") as f:
        current = json.load(f)

    base_metrics = baseline.get("metrics", {})
    cur_metrics = current.get("metrics", {})
    print(f"baseline commit: {baseline.get('commit', '?')}  "
          f"current commit: {current.get('commit', '?')}")

    prefixes = tuple(p for p in args.prefix.split(",") if p)
    gated = sorted(k for k in set(base_metrics) | set(cur_metrics)
                   if k.startswith(prefixes))
    if not gated:
        print(f"error: neither report has metrics with prefix "
              f"'{args.prefix}'", file=sys.stderr)
        return 2

    failures = []
    required = [name for name in args.require.split(",") if name]
    for name in required:
        for side, metrics in (("baseline", base_metrics),
                              ("current", cur_metrics)):
            if name not in metrics:
                failures.append(f"{name}: required metric missing from "
                                f"{side} report")

    for key in gated:
        base = base_metrics.get(key)
        cur = cur_metrics.get(key)
        if base is None:
            failures.append(f"{key}: missing from baseline report "
                            f"(regenerate the checked-in baseline)")
            continue
        if cur is None:
            failures.append(f"{key}: missing from current report")
            continue
        floor = base / args.factor
        verdict = "OK" if cur >= floor else "REGRESSION"
        print(f"  {key}: baseline={base:.0f} current={cur:.0f} "
              f"floor={floor:.0f} [{verdict}]")
        if cur < floor:
            failures.append(
                f"{key}: {cur:.0f} < {floor:.0f} "
                f"(baseline {base:.0f} / factor {args.factor})")

    for key in sorted(k for k in cur_metrics if k.startswith("speedup")):
        print(f"  {key}: {cur_metrics[key]:.2f}x (informational)")

    if failures:
        print("throughput regression detected:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("no throughput regression.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
