#!/usr/bin/env bash
# Regenerate machine-readable CSVs for every experiment (plots, notebooks).
#   scripts/regen_csv.sh [build-dir] [out-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"
OUT="${2:-csv}"
mkdir -p "$OUT"
for b in "$BUILD"/bench/bench_e*; do
  name="$(basename "$b")"
  case "$name" in
    bench_e10_engine_throughput)
      "$b" --benchmark_format=csv > "$OUT/$name.csv" ;;
    *)
      "$b" --csv > "$OUT/$name.csv" ;;
  esac
  echo "wrote $OUT/$name.csv"
done
