#!/usr/bin/env bash
# Build, test, and regenerate every experiment table.
#   scripts/run_all.sh [build-dir]
set -euo pipefail
cd "$(dirname "$0")/.."
BUILD="${1:-build}"

cmake -B "$BUILD" -G Ninja
cmake --build "$BUILD"
ctest --test-dir "$BUILD" --output-on-failure 2>&1 | tee test_output.txt
for b in "$BUILD"/bench/*; do
  echo "### $(basename "$b")"
  "$b"
  echo
done 2>&1 | tee bench_output.txt
