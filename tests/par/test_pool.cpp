// Torture tests for the work-stealing pool and the seeded-sharding layer:
// every task runs exactly once, batches are reusable, exceptions propagate
// from the lowest-index task without poisoning the pool, and shard seeds
// match the sequential SplitMix64 stream.  Run under TSan/ASan in CI.
#include "par/pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <vector>

#include "par/shard.hpp"
#include "util/rng.hpp"

namespace snappif::par {
namespace {

TEST(ThreadPool, RunsEveryTinyTaskExactlyOnce) {
  ThreadPool pool(8);
  EXPECT_EQ(pool.worker_count(), 8u);
  constexpr std::size_t kTasks = 20'000;
  std::atomic<std::uint64_t> sum{0};
  std::vector<std::atomic<int>> hits(kTasks);
  std::vector<std::function<void()>> tasks;
  tasks.reserve(kTasks);
  for (std::size_t i = 0; i < kTasks; ++i) {
    tasks.emplace_back([&, i] {
      hits[i].fetch_add(1, std::memory_order_relaxed);
      sum.fetch_add(i, std::memory_order_relaxed);
    });
  }
  pool.run_all(std::move(tasks));
  EXPECT_EQ(sum.load(), kTasks * (kTasks - 1) / 2);
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(ThreadPool, ReusableAcrossBatches) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 5; ++batch) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 100; ++i) {
      tasks.emplace_back([&] { count.fetch_add(1); });
    }
    pool.run_all(std::move(tasks));
  }
  EXPECT_EQ(count.load(), 500);
}

TEST(ThreadPool, EmptyBatchReturnsImmediately) {
  ThreadPool pool(2);
  pool.run_all({});
  std::atomic<int> count{0};
  pool.run_all({[&] { count.fetch_add(1); }});
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPool, LowestIndexExceptionWins) {
  ThreadPool pool(4);
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 64; ++i) {
    tasks.emplace_back([i] {
      if (i == 7 || i == 41) {
        throw std::runtime_error(std::to_string(i));
      }
    });
  }
  try {
    pool.run_all(std::move(tasks));
    FAIL() << "expected an exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "7");
  }
}

TEST(ThreadPool, ExceptionDoesNotPoisonThePool) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.run_all({[] { throw std::runtime_error("boom"); }}),
               std::runtime_error);
  std::atomic<int> count{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 200; ++i) {
    tasks.emplace_back([&] { count.fetch_add(1); });
  }
  pool.run_all(std::move(tasks));
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, ZeroWorkersMeansHardware) {
  ThreadPool pool(0);
  EXPECT_GE(pool.worker_count(), 1u);
  EXPECT_EQ(pool.worker_count(), ThreadPool::hardware_workers());
}

TEST(Shard, SeedIsTheSequentialSplitmixStream) {
  const std::uint64_t master = 0xfeedfacecafebeefULL;
  std::uint64_t state = master;
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(shard_seed(master, i), util::splitmix64(state)) << "shard " << i;
  }
}

TEST(Shard, SeedsAreDistinctAcrossIndicesAndMasters) {
  EXPECT_NE(shard_seed(1, 0), shard_seed(1, 1));
  EXPECT_NE(shard_seed(1, 0), shard_seed(2, 0));
  EXPECT_EQ(shard_seed(42, 7), shard_seed(42, 7));
}

TEST(Shard, RunShardsPoolMatchesInline) {
  auto body = [](ShardContext& ctx) {
    // A result that depends on index, count, and the shard RNG stream.
    return ctx.rng() ^ (ctx.index * 1000 + ctx.shard_count);
  };
  const auto inline_results = run_shards(99, 37, body, nullptr);
  ThreadPool pool(5);
  const auto pool_results = run_shards(99, 37, body, &pool);
  EXPECT_EQ(inline_results, pool_results);
}

TEST(Shard, ExceptionsSurfaceFromLowestShard) {
  ThreadPool pool(4);
  EXPECT_THROW((void)run_shards(
                   1, 16,
                   [](ShardContext& ctx) -> int {
                     if (ctx.index >= 10) {
                       throw std::runtime_error("shard " +
                                                std::to_string(ctx.index));
                     }
                     return static_cast<int>(ctx.index);
                   },
                   &pool),
               std::runtime_error);
}

}  // namespace
}  // namespace snappif::par
