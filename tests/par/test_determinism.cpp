// The determinism suite: the same master seed must produce bit-identical
// results with 1, 2, and 8 workers — fuzz failure lists, chaos campaign
// verdicts and merged telemetry, and model-check reports.  This is the
// contract src/par/shard.hpp promises; these tests are the enforcement.
#include <gtest/gtest.h>

#include <string>

#include "analysis/fuzz.hpp"
#include "analysis/modelcheck.hpp"
#include "chaos/soak.hpp"
#include "graph/generators.hpp"
#include "par/pool.hpp"
#include "pif/params.hpp"
#include "pif/protocol.hpp"

namespace snappif {
namespace {

void expect_same_fuzz_report(const analysis::FuzzReport& a,
                             const analysis::FuzzReport& b,
                             const char* label) {
  EXPECT_EQ(a.iterations_run, b.iterations_run) << label;
  ASSERT_EQ(a.failures.size(), b.failures.size()) << label;
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    const analysis::FuzzFailure& fa = a.failures[i];
    const analysis::FuzzFailure& fb = b.failures[i];
    EXPECT_EQ(fa.index, fb.index) << label;
    EXPECT_EQ(fa.instance.n, fb.instance.n) << label;
    EXPECT_EQ(fa.instance.extra_edges, fb.instance.extra_edges) << label;
    EXPECT_EQ(fa.instance.graph_seed, fb.instance.graph_seed) << label;
    EXPECT_EQ(fa.instance.daemon, fb.instance.daemon) << label;
    EXPECT_EQ(fa.instance.corruption, fb.instance.corruption) << label;
    EXPECT_EQ(fa.instance.policy, fb.instance.policy) << label;
    EXPECT_EQ(fa.instance.root, fb.instance.root) << label;
    EXPECT_EQ(fa.instance.run_seed, fb.instance.run_seed) << label;
    EXPECT_EQ(fa.result.cycle_completed, fb.result.cycle_completed) << label;
    EXPECT_EQ(fa.result.pif1, fb.result.pif1) << label;
    EXPECT_EQ(fa.result.pif2, fb.result.pif2) << label;
    EXPECT_EQ(fa.result.aborted, fb.result.aborted) << label;
    EXPECT_EQ(fa.result.steps, fb.result.steps) << label;
  }
}

TEST(Determinism, FuzzFailureListsMatchAcrossWorkerCounts) {
  // The count-wait ablation breaks the snap linchpin, so violations are
  // reachable; every worker count must report the same failing wave.
  analysis::FuzzOptions opts;
  opts.master_seed = 2026;
  opts.max_n = 8;
  opts.tweak_params = [](pif::Params& p) { p.ablate_count_wait = true; };

  const analysis::FuzzReport base = analysis::run_fuzz(opts, 512);
  EXPECT_FALSE(base.failures.empty())
      << "ablated protocol produced no violations in 512 runs; the "
         "failure-list comparison below is vacuous";
  par::ThreadPool two(2);
  par::ThreadPool eight(8);
  expect_same_fuzz_report(base, analysis::run_fuzz(opts, 512, &two),
                          "2 workers");
  expect_same_fuzz_report(base, analysis::run_fuzz(opts, 512, &eight),
                          "8 workers");
}

TEST(Determinism, FuzzFailureListsMatchAcrossEngines) {
  // FuzzOptions::engine must be invisible in the verdicts: the SoA engine's
  // trajectories are bit-for-bit the mask engine's, so the failing wave —
  // indices, instances, and per-failure step counts — is identical.
  analysis::FuzzOptions opts;
  opts.master_seed = 2026;
  opts.max_n = 8;
  opts.tweak_params = [](pif::Params& p) { p.ablate_count_wait = true; };

  const analysis::FuzzReport mask = analysis::run_fuzz(opts, 512);
  EXPECT_FALSE(mask.failures.empty());
  opts.engine = sim::EngineKind::kSoa;
  expect_same_fuzz_report(mask, analysis::run_fuzz(opts, 512), "soa engine");
}

TEST(Determinism, CleanFuzzRunMatchesAcrossWorkerCounts) {
  analysis::FuzzOptions opts;
  opts.master_seed = 7;
  opts.max_n = 8;
  const analysis::FuzzReport base = analysis::run_fuzz(opts, 64);
  EXPECT_TRUE(base.failures.empty());
  par::ThreadPool eight(8);
  expect_same_fuzz_report(base, analysis::run_fuzz(opts, 64, &eight),
                          "8 workers");
}

TEST(Determinism, SoakVerdictsAndMergedMetricsMatchAcrossWorkerCounts) {
  const auto g = graph::make_random_connected(10, 8, 3);
  chaos::SoakOptions soak;
  soak.master_seed = 11;
  soak.campaigns = 6;
  soak.shape.events = 4;
  soak.shape.horizon_rounds = 30;
  soak.shape.max_magnitude = 3;

  const chaos::SoakReport base = chaos::run_soak(g, soak);
  ASSERT_EQ(base.outcomes.size(), 6u);
  par::ThreadPool two(2);
  par::ThreadPool eight(8);
  for (auto* pool : {&two, &eight}) {
    const chaos::SoakReport run = chaos::run_soak(g, soak, pool);
    ASSERT_EQ(run.outcomes.size(), base.outcomes.size());
    EXPECT_EQ(run.first_failure, base.first_failure);
    for (std::size_t i = 0; i < base.outcomes.size(); ++i) {
      const chaos::SoakOutcome& a = base.outcomes[i];
      const chaos::SoakOutcome& b = run.outcomes[i];
      EXPECT_EQ(a.index, b.index);
      EXPECT_EQ(a.seed, b.seed);
      EXPECT_EQ(a.schedule.to_string(), b.schedule.to_string());
      EXPECT_EQ(a.ok(), b.ok());
      EXPECT_EQ(a.shared.quiet_round, b.shared.quiet_round);
      EXPECT_EQ(a.shared.rounds_to_normal, b.shared.rounds_to_normal);
      EXPECT_EQ(a.shared.rounds_to_cycle_close,
                b.shared.rounds_to_cycle_close);
      EXPECT_EQ(a.shared.steps, b.shared.steps);
    }
    // Merged chaos.* totals must be BIT-identical (same Welford merge tree
    // at the join, whatever the interleaving was).
    EXPECT_EQ(run.metrics.json(), base.metrics.json());
  }
}

TEST(Determinism, SoakJobIsAPureFunctionOfSeedAndIndex) {
  chaos::SoakOptions soak;
  soak.master_seed = 5;
  soak.shape.events = 5;
  const chaos::SoakJob a = chaos::soak_job(soak, 3);
  const chaos::SoakJob b = chaos::soak_job(soak, 3);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.schedule.to_string(), b.schedule.to_string());
  const chaos::SoakJob c = chaos::soak_job(soak, 4);
  EXPECT_NE(a.seed, c.seed);
}

TEST(Determinism, DeadlockCensusMatchesSequentialIncludingWitness) {
  const auto g = graph::make_path(3);
  // The literal pre-potential variant is known to deadlock, so the witness
  // comparison is non-vacuous.
  pif::Params params = pif::Params::for_graph(g);
  params.literal_prepotential_fok = true;
  const pif::PifProtocol protocol(g, params);

  const analysis::DeadlockReport seq = analysis::check_no_deadlock(g, protocol);
  EXPECT_GT(seq.deadlocks, 0u);
  par::ThreadPool pool(8);
  const analysis::DeadlockReport par_r =
      analysis::check_no_deadlock(g, protocol, &pool);
  EXPECT_EQ(par_r.configurations, seq.configurations);
  EXPECT_EQ(par_r.deadlocks, seq.deadlocks);
  EXPECT_EQ(par_r.witness, seq.witness);
}

TEST(Determinism, ExhaustiveSnapCheckMatchesSequential) {
  const auto g = graph::make_path(2);
  const pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  const analysis::SnapCheckReport seq =
      analysis::exhaustive_snap_check(g, protocol);
  ASSERT_TRUE(seq.complete);
  par::ThreadPool pool(8);
  const analysis::SnapCheckReport par_r =
      analysis::exhaustive_snap_check(g, protocol, 200'000'000, false, &pool);
  EXPECT_EQ(par_r.complete, seq.complete);
  EXPECT_EQ(par_r.states, seq.states);
  EXPECT_EQ(par_r.transitions, seq.transitions);
  EXPECT_EQ(par_r.cycle_closures, seq.cycle_closures);
  EXPECT_EQ(par_r.violations, seq.violations);
  EXPECT_EQ(par_r.aborts, seq.aborts);
  EXPECT_EQ(par_r.deadlocks, seq.deadlocks);
}

TEST(Determinism, CappedSnapCheckMatchesSequential) {
  const auto g = graph::make_path(3);
  const pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  const analysis::SnapCheckReport seq =
      analysis::exhaustive_snap_check(g, protocol, /*max_states=*/100);
  EXPECT_FALSE(seq.complete);
  par::ThreadPool pool(4);
  const analysis::SnapCheckReport par_r =
      analysis::exhaustive_snap_check(g, protocol, 100, false, &pool);
  EXPECT_EQ(par_r.complete, seq.complete);
  EXPECT_EQ(par_r.states, seq.states);
}

}  // namespace
}  // namespace snappif
