// Mutation operators: shape-validity and grammar round-trip invariants,
// per-operator semantics, determinism in (base, mate, shape, rng), and the
// empty-base bootstrap.
#include "chaos/mutate.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace snappif::chaos {
namespace {

[[nodiscard]] CampaignShape mixed_shape() {
  CampaignShape shape;
  shape.events = 6;
  shape.horizon_rounds = 40;
  shape.max_magnitude = 3;
  shape.message_passing = true;
  shape.crash = true;
  shape.crash_processors = 12;
  return shape;
}

TEST(Mutate, OperatorNamesAreDistinct) {
  std::set<std::string_view> names;
  for (MutationOp op : all_mutation_ops()) {
    names.insert(mutation_op_name(op));
  }
  EXPECT_EQ(names.size(), all_mutation_ops().size());
  EXPECT_EQ(names.count("?"), 0u);
}

TEST(Mutate, MutantsStayShapeValidAndRoundTripTheGrammar) {
  const CampaignShape shape = mixed_shape();
  util::Rng rng(2024);
  FaultSchedule base = random_schedule(shape, rng);
  FaultSchedule mate = random_schedule(shape, rng);
  for (int i = 0; i < 200; ++i) {
    const FaultSchedule mutant = mutate(base, mate, shape, rng);
    ASSERT_FALSE(mutant.empty());
    ASSERT_LE(mutant.events.size(), max_events(shape));
    for (const FaultEvent& ev : mutant.events) {
      switch (ev.kind) {
        case EventKind::kBurst:
        case EventKind::kLinkKill:
        case EventKind::kLinkRestore:
          EXPECT_GE(ev.magnitude, 1u);
          EXPECT_LE(ev.magnitude, shape.max_magnitude);
          break;
        case EventKind::kCrash:
          EXPECT_LT(ev.magnitude, shape.crash_processors);
          break;
        case EventKind::kMpLoss:
        case EventKind::kMpDuplicate:
        case EventKind::kMpReorder: {
          // Rates stay snapped to hundredths so %g/strtod replays exactly.
          const double hundredths = ev.rate * 100.0;
          EXPECT_NEAR(hundredths, std::round(hundredths), 1e-9);
          break;
        }
        default:
          break;
      }
    }
    // The one-line form replays to the identical schedule.
    const auto replay = FaultSchedule::parse(mutant.to_string());
    ASSERT_TRUE(replay.has_value()) << mutant.to_string();
    EXPECT_EQ(*replay, mutant);
    // Evolve: mutants feed the next iteration, as the corpus would.
    mate = base;
    base = mutant;
  }
}

TEST(Mutate, IsAPureFunctionOfInputsAndSeed) {
  const CampaignShape shape = mixed_shape();
  util::Rng setup(7);
  const FaultSchedule base = random_schedule(shape, setup);
  const FaultSchedule mate = random_schedule(shape, setup);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    util::Rng a(seed);
    util::Rng b(seed);
    EXPECT_EQ(mutate(base, mate, shape, a), mutate(base, mate, shape, b));
  }
  for (MutationOp op : all_mutation_ops()) {
    util::Rng a(99);
    util::Rng b(99);
    EXPECT_EQ(apply_mutation(base, mate, op, shape, a),
              apply_mutation(base, mate, op, shape, b))
        << mutation_op_name(op);
  }
}

TEST(Mutate, DropRefusesToEmptyTheSchedule) {
  const CampaignShape shape = mixed_shape();
  const auto single = FaultSchedule::parse("5:burst*2");
  ASSERT_TRUE(single.has_value());
  util::Rng rng(1);
  EXPECT_FALSE(apply_mutation(*single, {}, MutationOp::kDropEvent, shape, rng)
                   .has_value());
  const auto pair = FaultSchedule::parse("5:burst*2;9:kill*1");
  ASSERT_TRUE(pair.has_value());
  const auto dropped =
      apply_mutation(*pair, {}, MutationOp::kDropEvent, shape, rng);
  ASSERT_TRUE(dropped.has_value());
  EXPECT_EQ(dropped->events.size(), 1u);
}

TEST(Mutate, DuplicateRefusesOverTheLengthCap) {
  const CampaignShape shape = mixed_shape();
  FaultSchedule fat;
  for (std::size_t i = 0; i < max_events(shape); ++i) {
    fat.events.push_back({.round = i % shape.horizon_rounds,
                          .kind = EventKind::kBurst,
                          .magnitude = 1});
  }
  util::Rng rng(3);
  EXPECT_FALSE(apply_mutation(fat, {}, MutationOp::kDuplicateEvent, shape, rng)
                   .has_value());
}

TEST(Mutate, WindowOpsApplyOnlyToWindowedEvents) {
  const CampaignShape shape = mixed_shape();
  util::Rng rng(4);
  const auto windowless = FaultSchedule::parse("5:burst*2;9:kill*1");
  ASSERT_TRUE(windowless.has_value());
  EXPECT_FALSE(
      apply_mutation(*windowless, {}, MutationOp::kWidenWindow, shape, rng)
          .has_value());
  EXPECT_FALSE(
      apply_mutation(*windowless, {}, MutationOp::kNarrowWindow, shape, rng)
          .has_value());
  EXPECT_FALSE(apply_mutation(*windowless, {}, MutationOp::kBumpRate, shape,
                              rng)
                   .has_value());

  const auto windowed = FaultSchedule::parse("5:loss@0.25/8");
  ASSERT_TRUE(windowed.has_value());
  const auto narrowed =
      apply_mutation(*windowed, {}, MutationOp::kNarrowWindow, shape, rng);
  ASSERT_TRUE(narrowed.has_value());
  EXPECT_EQ(narrowed->events[0].duration, 4u);
  for (int i = 0; i < 50; ++i) {
    const auto widened =
        apply_mutation(*windowed, {}, MutationOp::kWidenWindow, shape, rng);
    ASSERT_TRUE(widened.has_value());
    EXPECT_GT(widened->events[0].duration, 8u);
    EXPECT_LE(widened->events[0].duration, shape.horizon_rounds);
  }
}

TEST(Mutate, BumpRateStaysInsideTheShapeBandSnappedToHundredths) {
  CampaignShape shape = mixed_shape();
  shape.mp_rate_min = 0.05;
  shape.mp_rate_max = 0.5;
  const auto base = FaultSchedule::parse("5:loss@0.33/8");
  ASSERT_TRUE(base.has_value());
  util::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const auto bumped =
        apply_mutation(*base, {}, MutationOp::kBumpRate, shape, rng);
    ASSERT_TRUE(bumped.has_value());
    const double rate = bumped->events[0].rate;
    EXPECT_GE(rate, shape.mp_rate_min - 1e-9);
    EXPECT_LE(rate, shape.mp_rate_max + 1e-9);
    EXPECT_NEAR(rate * 100.0, std::round(rate * 100.0), 1e-9);
  }
}

TEST(Mutate, SpliceTakesBasePrefixAndMateSuffix) {
  const CampaignShape shape = mixed_shape();
  const auto base = FaultSchedule::parse("2:burst*1;30:kill*1");
  const auto mate = FaultSchedule::parse("3:corrupt=uniform;35:restore*1");
  ASSERT_TRUE(base.has_value());
  ASSERT_TRUE(mate.has_value());
  util::Rng rng(6);
  for (int i = 0; i < 50; ++i) {
    const auto spliced =
        apply_mutation(*base, *mate, MutationOp::kSplice, shape, rng);
    if (!spliced.has_value()) {
      continue;  // cut round left the result empty — legal refusal
    }
    for (const FaultEvent& ev : spliced->events) {
      const bool from_base =
          std::find(base->events.begin(), base->events.end(), ev) !=
          base->events.end();
      const bool from_mate =
          std::find(mate->events.begin(), mate->events.end(), ev) !=
          mate->events.end();
      EXPECT_TRUE(from_base || from_mate) << ev.to_string();
    }
  }
}

TEST(Mutate, EmptyBaseBootstrapsToARandomSchedule) {
  const CampaignShape shape = mixed_shape();
  util::Rng rng(8);
  const FaultSchedule mutant = mutate({}, {}, shape, rng);
  EXPECT_FALSE(mutant.empty());
  const auto replay = FaultSchedule::parse(mutant.to_string());
  ASSERT_TRUE(replay.has_value());
  EXPECT_EQ(*replay, mutant);
}

TEST(MutateDeathTest, RejectsDegenerateShapes) {
  CampaignShape shape;
  shape.events = 0;
  util::Rng rng(1);
  const auto base = FaultSchedule::parse("5:burst*2");
  ASSERT_TRUE(base.has_value());
  EXPECT_DEATH(
      (void)apply_mutation(*base, {}, MutationOp::kShiftEvent, shape, rng),
      "zero events");
}

}  // namespace
}  // namespace snappif::chaos
