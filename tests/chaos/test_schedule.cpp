// FaultSchedule grammar: print/parse roundtrips, malformed-input rejection,
// normalization, quiet-round computation, and random generation shape.
#include "chaos/schedule.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace snappif::chaos {
namespace {

TEST(Schedule, EventToStringForms) {
  FaultEvent burst{.round = 12, .kind = EventKind::kBurst, .magnitude = 3};
  EXPECT_EQ(burst.to_string(), "12:burst*3");

  FaultEvent corrupt{.round = 20,
                     .kind = EventKind::kCorrupt,
                     .corruption = pif::CorruptionKind::kFakeTree};
  EXPECT_EQ(corrupt.to_string(), "20:corrupt=fake-tree");

  FaultEvent daemon{.round = 5,
                    .kind = EventKind::kDaemonSwap,
                    .daemon = sim::DaemonKind::kSynchronous};
  EXPECT_EQ(daemon.to_string(),
            "5:daemon=" + std::string(sim::daemon_kind_name(
                              sim::DaemonKind::kSynchronous)));

  FaultEvent kill{.round = 8, .kind = EventKind::kLinkKill, .magnitude = 2};
  EXPECT_EQ(kill.to_string(), "8:kill*2");

  FaultEvent loss{.round = 5,
                  .kind = EventKind::kMpLoss,
                  .rate = 0.25,
                  .duration = 10};
  EXPECT_EQ(loss.to_string(), "5:loss@0.25/10");
}

TEST(Schedule, EventParseRoundtripsEveryKind) {
  const char* samples[] = {
      "12:burst*3",          "0:burst*1",
      "20:corrupt=uniform",  "20:corrupt=fake-tree",
      "20:corrupt=stray-F",  "20:corrupt=stray-Fok",
      "20:corrupt=inflated", "20:corrupt=adversarial",
      "8:kill*2",            "30:restore*2",
      "5:loss@0.25/10",      "5:dup@0.5/1",
      "5:reorder@1/3",
  };
  for (const char* text : samples) {
    const auto ev = FaultEvent::parse(text);
    ASSERT_TRUE(ev.has_value()) << text;
    EXPECT_EQ(ev->to_string(), text) << text;
    // to_string/parse is a proper roundtrip on the value, too.
    const auto again = FaultEvent::parse(ev->to_string());
    ASSERT_TRUE(again.has_value()) << text;
    EXPECT_EQ(*again, *ev) << text;
  }
}

TEST(Schedule, MalformedEventsAreRejected) {
  const char* bad[] = {
      "",                    // empty
      "burst*3",             // missing round
      "x:burst*3",           // non-numeric round
      "12:boom*3",           // unknown kind
      "12:burst*0",          // zero magnitude
      "12:burst*-1",         // negative magnitude
      "12:corrupt",          // corrupt needs a recipe
      "12:corrupt=nonsense", // unknown recipe
      "12:daemon=nonsense",  // unknown daemon
      "12:loss@0.25",        // window needs a duration
      "12:loss@1.5/3",       // rate out of range
      "12:loss@-0.5/3",      // rate out of range
      "12:loss@nan/3",       // NaN rate
      "12:burst=3",          // wrong separator for the kind
      "12:loss*3",           // wrong separator for the kind
  };
  for (const char* text : bad) {
    EXPECT_FALSE(FaultEvent::parse(text).has_value()) << text;
  }
}

TEST(Schedule, ParseNormalizesAndToStringJoins) {
  const auto schedule = FaultSchedule::parse(
      "20:corrupt=fake-tree;3:burst*2;;9:kill*1;");  // unsorted, extra ';'
  ASSERT_TRUE(schedule.has_value());
  ASSERT_EQ(schedule->events.size(), 3u);
  EXPECT_EQ(schedule->events[0].round, 3u);
  EXPECT_EQ(schedule->events[1].round, 9u);
  EXPECT_EQ(schedule->events[2].round, 20u);
  EXPECT_EQ(schedule->to_string(), "3:burst*2;9:kill*1;20:corrupt=fake-tree");

  const auto again = FaultSchedule::parse(schedule->to_string());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, *schedule);
}

TEST(Schedule, ParseRejectsAnyMalformedPiece) {
  EXPECT_FALSE(FaultSchedule::parse("3:burst*2;bogus").has_value());
}

TEST(Schedule, EmptyScheduleRoundtrips) {
  const auto schedule = FaultSchedule::parse("");
  ASSERT_TRUE(schedule.has_value());
  EXPECT_TRUE(schedule->empty());
  EXPECT_EQ(schedule->to_string(), "");
  EXPECT_EQ(schedule->quiet_round(), 0u);
}

TEST(Schedule, QuietRoundCoversWindowDurations) {
  const auto schedule = FaultSchedule::parse("3:burst*2;5:loss@0.5/20");
  ASSERT_TRUE(schedule.has_value());
  // The loss window is active through round 24; quiet starts at 25's clock.
  EXPECT_EQ(schedule->quiet_round(), 25u);
}

TEST(Schedule, NormalizeIsStableWithinARound) {
  FaultSchedule schedule;
  schedule.events.push_back({.round = 7, .kind = EventKind::kLinkKill});
  schedule.events.push_back({.round = 7, .kind = EventKind::kLinkRestore});
  schedule.events.push_back({.round = 2, .kind = EventKind::kBurst});
  schedule.normalize();
  EXPECT_EQ(schedule.events[0].kind, EventKind::kBurst);
  EXPECT_EQ(schedule.events[1].kind, EventKind::kLinkKill);
  EXPECT_EQ(schedule.events[2].kind, EventKind::kLinkRestore);
}

TEST(Schedule, RandomSchedulesAreWellFormedAndReplayable) {
  util::Rng rng(1234);
  CampaignShape shape;
  shape.events = 8;
  shape.horizon_rounds = 50;
  shape.max_magnitude = 3;
  shape.message_passing = true;
  for (int i = 0; i < 20; ++i) {
    const FaultSchedule schedule = random_schedule(shape, rng);
    EXPECT_GE(schedule.events.size(), shape.events);  // kills add restores
    std::size_t kills = 0;
    std::size_t restores = 0;
    for (const FaultEvent& ev : schedule.events) {
      if (ev.kind == EventKind::kBurst || ev.kind == EventKind::kLinkKill) {
        EXPECT_GE(ev.magnitude, 1u);
        EXPECT_LE(ev.magnitude, shape.max_magnitude);
      }
      kills += ev.kind == EventKind::kLinkKill ? 1 : 0;
      restores += ev.kind == EventKind::kLinkRestore ? 1 : 0;
    }
    EXPECT_EQ(kills, restores);  // every kill is paired with a heal
    // The one-line form replays to the identical schedule.
    const auto replay = FaultSchedule::parse(schedule.to_string());
    ASSERT_TRUE(replay.has_value());
    EXPECT_EQ(*replay, schedule);
  }
}

TEST(Schedule, CrashEventRoundtrips) {
  FaultEvent crash{.round = 9,
                   .kind = EventKind::kCrash,
                   .magnitude = 2,
                   .duration = 6,
                   .crash_corrupt = true};
  EXPECT_EQ(crash.to_string(), "9:crash(2,6,corrupt)");

  for (const char* text : {"9:crash(2,6,corrupt)", "0:crash(0,0,reset)",
                           "31:crash(15,3,reset)"}) {
    const auto ev = FaultEvent::parse(text);
    ASSERT_TRUE(ev.has_value()) << text;
    EXPECT_EQ(ev->kind, EventKind::kCrash) << text;
    EXPECT_EQ(ev->to_string(), text) << text;
    const auto again = FaultEvent::parse(ev->to_string());
    ASSERT_TRUE(again.has_value()) << text;
    EXPECT_EQ(*again, *ev) << text;
  }
}

TEST(Schedule, MalformedCrashEventsAreRejected) {
  const char* bad[] = {
      "9:crash",                    // no argument list
      "9:crash(2,6)",               // missing recovery mode
      "9:crash(2,6,corrupt",        // unterminated
      "9:crash(2,6,zeroed)",        // unknown recovery mode
      "9:crash(,6,reset)",          // missing processor
      "9:crash(2,,reset)",          // missing duration
      "9:crash(x,6,reset)",         // non-numeric processor
      "9:crash(5000000000,6,reset)" // processor overflows 32 bits
  };
  for (const char* text : bad) {
    EXPECT_FALSE(FaultEvent::parse(text).has_value()) << text;
  }
}

TEST(Schedule, ContainsReportsEventKinds) {
  const auto schedule = FaultSchedule::parse("3:loss@0.5/4;9:crash(2,6,reset)");
  ASSERT_TRUE(schedule.has_value());
  EXPECT_TRUE(schedule->contains(EventKind::kMpLoss));
  EXPECT_TRUE(schedule->contains(EventKind::kCrash));
  EXPECT_FALSE(schedule->contains(EventKind::kBurst));
  EXPECT_FALSE(schedule->contains(EventKind::kMpDuplicate));
}

TEST(Schedule, RandomSchedulesEmitCrashesOnlyWhenAsked) {
  util::Rng rng(77);
  CampaignShape shape;
  shape.events = 10;
  shape.horizon_rounds = 60;
  shape.message_passing = true;
  shape.crash = false;
  for (int i = 0; i < 20; ++i) {
    for (const FaultEvent& ev : random_schedule(shape, rng).events) {
      EXPECT_NE(ev.kind, EventKind::kCrash);
    }
  }
  shape.crash = true;
  shape.crash_processors = 16;
  bool saw_crash = false;
  for (int i = 0; i < 40; ++i) {
    const FaultSchedule schedule = random_schedule(shape, rng);
    for (const FaultEvent& ev : schedule.events) {
      if (ev.kind != EventKind::kCrash) {
        continue;
      }
      saw_crash = true;
      EXPECT_LT(ev.magnitude, shape.crash_processors);
      // A replay must mean the same campaign: the roundtrip is exact.
      const auto again = FaultEvent::parse(ev.to_string());
      ASSERT_TRUE(again.has_value());
      EXPECT_EQ(*again, ev);
    }
  }
  EXPECT_TRUE(saw_crash);
}

TEST(ScheduleParseError, ReportsTokenAndPositionPerMalformedClass) {
  struct Case {
    const char* text;
    std::size_t position;   // byte offset of the offending token
    const char* token;      // "" for "missing X" diagnoses
    const char* message;    // substring of the diagnosis
  };
  const Case cases[] = {
      {"", 0, "", "empty event"},
      {"burst*3", 0, "burst*3", "missing ':'"},
      {"x:burst*3", 0, "x", "bad round"},
      {"12:boom*3", 3, "boom", "unknown event kind"},
      {"12:burst*0", 9, "0", "bad magnitude"},
      {"12:burst*-1", 9, "-1", "bad magnitude"},
      {"12:corrupt", 10, "", "corrupt needs '=recipe'"},
      {"12:corrupt=nonsense", 11, "nonsense", "unknown corruption recipe"},
      {"12:daemon=nonsense", 10, "nonsense", "unknown daemon kind"},
      {"12:loss*3", 7, "", "window needs '@rate/duration'"},
      {"12:loss@0.25", 8, "0.25", "window needs '/duration'"},
      {"12:loss@1.5/3", 8, "1.5", "bad rate"},
      {"12:loss@nan/3", 8, "nan", "bad rate"},
      {"12:loss@0.25/x", 13, "x", "bad window duration"},
      {"9:crash", 7, "", "crash needs '(processor,duration,"},
      {"9:crash(2,6)", 8, "2,6", "three ','-separated arguments"},
      {"9:crash(x,6,reset)", 8, "x", "bad crash processor"},
      {"9:crash(2,y,reset)", 10, "y", "bad crash duration"},
      {"9:crash(2,6,zeroed)", 12, "zeroed", "reset|corrupt"},
  };
  for (const Case& c : cases) {
    ParseError error;
    EXPECT_FALSE(FaultEvent::parse(c.text, &error).has_value()) << c.text;
    EXPECT_EQ(error.position, c.position) << c.text;
    EXPECT_EQ(error.token, c.token) << c.text;
    EXPECT_NE(error.message.find(c.message), std::string::npos)
        << c.text << " -> " << error.message;
  }
}

TEST(ScheduleParseError, SchedulePositionIsRebasedOntoTheFullLine) {
  // The bad token sits after two good events; the reported offset must
  // localize it within the whole line, not within its piece.
  const std::string_view line = "3:burst*2;9:kill*1;12:boom*3";
  ParseError error;
  EXPECT_FALSE(FaultSchedule::parse(line, &error).has_value());
  EXPECT_EQ(error.token, "boom");
  EXPECT_EQ(error.position, line.find("boom"));
  EXPECT_EQ(error.to_string(),
            "offset " + std::to_string(line.find("boom")) +
                ": unknown event kind 'boom'");
}

TEST(ScheduleParseError, ToStringOmitsQuotesForMissingTokens) {
  ParseError error;
  EXPECT_FALSE(FaultEvent::parse("12:corrupt", &error).has_value());
  EXPECT_EQ(error.to_string(), "offset 10: corrupt needs '=recipe'");
}

TEST(ShapeValidation, AcceptsTheDefaultAndCommonShapes) {
  EXPECT_FALSE(validate(CampaignShape{}).has_value());
  CampaignShape mp;
  mp.message_passing = true;
  mp.crash = true;
  EXPECT_FALSE(validate(mp).has_value());
}

TEST(ShapeValidation, NamesTheDegenerateKnob) {
  struct Case {
    const char* expect;  // substring of the objection
    void (*tweak)(CampaignShape&);
  };
  const Case cases[] = {
      {"zero events", [](CampaignShape& s) { s.events = 0; }},
      {"zero-round horizon", [](CampaignShape& s) { s.horizon_rounds = 0; }},
      {"magnitudes at zero", [](CampaignShape& s) { s.max_magnitude = 0; }},
      {"no event kinds",
       [](CampaignShape& s) {
         s.shared_memory = false;
         s.message_passing = false;
       }},
      {"mp_rate_min",
       [](CampaignShape& s) {
         s.mp_rate_min = std::numeric_limits<double>::quiet_NaN();
       }},
      {"mp_rate_min", [](CampaignShape& s) { s.mp_rate_min = -0.5; }},
      {"mp_rate_max",
       [](CampaignShape& s) {
         s.mp_rate_max = std::numeric_limits<double>::quiet_NaN();
       }},
      {"mp_rate_max",
       [](CampaignShape& s) {
         s.mp_rate_min = 0.6;
         s.mp_rate_max = 0.2;
       }},
      {"mp_rate_max", [](CampaignShape& s) { s.mp_rate_max = 1.5; }},
      {"zero crash_processors",
       [](CampaignShape& s) {
         s.message_passing = true;
         s.crash = true;
         s.crash_processors = 0;
       }},
  };
  for (const Case& c : cases) {
    CampaignShape shape;
    c.tweak(shape);
    const auto objection = validate(shape);
    ASSERT_TRUE(objection.has_value()) << c.expect;
    EXPECT_NE(objection->find(c.expect), std::string::npos)
        << c.expect << " -> " << *objection;
  }
}

TEST(Schedule, TransportEventToStringForms) {
  FaultEvent tloss{.round = 5,
                   .kind = EventKind::kTransportLoss,
                   .rate = 0.25,
                   .duration = 10};
  EXPECT_EQ(tloss.to_string(), "5:tloss@0.25/10");

  FaultEvent tdelay{.round = 5,
                    .kind = EventKind::kTransportDelay,
                    .magnitude = 2,
                    .rate = 0.3,
                    .duration = 10};
  EXPECT_EQ(tdelay.to_string(), "5:tdelay@0.3/10*2");

  FaultEvent tpart{.round = 8,
                   .kind = EventKind::kTransportPartition,
                   .magnitude = 3,
                   .duration = 6};
  EXPECT_EQ(tpart.to_string(), "8:tpart(3,6)");
}

TEST(Schedule, TransportEventsRoundtrip) {
  const char* samples[] = {
      "5:tloss@0.25/10", "5:tdup@0.5/1",    "5:treorder@1/3",
      "5:tdelay@0.3/10*2", "5:tdelay@0/1*1", "8:tpart(3,6)",
      "0:tpart(0,1)",
  };
  for (const char* text : samples) {
    const auto ev = FaultEvent::parse(text);
    ASSERT_TRUE(ev.has_value()) << text;
    EXPECT_EQ(ev->to_string(), text) << text;
    const auto again = FaultEvent::parse(ev->to_string());
    ASSERT_TRUE(again.has_value()) << text;
    EXPECT_EQ(*again, *ev) << text;
  }
}

TEST(Schedule, MalformedTransportEventsAreRejected) {
  const char* bad[] = {
      "5:tloss*3",          // wrong separator for a window kind
      "5:tloss@0.25",       // window needs a duration
      "5:tloss@1.5/3",      // rate out of range
      "5:tloss@nan/3",      // NaN rate
      "5:tdelay@0.3/10",    // tdelay needs '*steps'
      "5:tdelay@0.3/10*0",  // zero hold is no delay
      "5:tdelay@0.3/10*-2", // negative hold
      "5:tdelay@0.3/10*x",  // non-numeric hold
      "5:tdelay@nan/3*2",   // NaN rate with valid steps
      "8:tpart",            // no argument list
      "8:tpart(3)",         // missing duration
      "8:tpart(3,6",        // unterminated
      "8:tpart(x,6)",       // non-numeric processor
      "8:tpart(3,y)",       // non-numeric duration
      "8:tpart(5000000000,6)",  // processor overflows 32 bits
  };
  for (const char* text : bad) {
    EXPECT_FALSE(FaultEvent::parse(text).has_value()) << text;
  }
}

TEST(ScheduleParseError, TransportDiagnosesArePositional) {
  struct Case {
    const char* text;
    std::size_t position;
    const char* token;
    const char* message;
  };
  const Case cases[] = {
      {"5:tloss*3", 7, "", "window needs '@rate/duration'"},
      {"5:tdelay*3", 8, "", "window needs '@rate/duration*steps'"},
      {"5:tdelay@0.3/10", 9, "0.3/10", "tdelay needs '*steps'"},
      {"5:tdelay@0.3/10*-2", 16, "-2", "bad delay steps"},
      {"5:tdelay@0.3/10*0", 16, "0", "bad delay steps"},
      {"5:tdelay@nan/3*2", 9, "nan", "bad rate"},
      {"8:tpart(3)", 8, "3", "two ','-separated arguments"},
      {"8:tpart(x,6)", 8, "x", "bad partition processor"},
      {"8:tpart(3,y)", 10, "y", "bad partition duration"},
  };
  for (const Case& c : cases) {
    ParseError error;
    EXPECT_FALSE(FaultEvent::parse(c.text, &error).has_value()) << c.text;
    EXPECT_EQ(error.position, c.position) << c.text;
    EXPECT_EQ(error.token, c.token) << c.text;
    EXPECT_NE(error.message.find(c.message), std::string::npos)
        << c.text << " -> " << error.message;
  }
}

TEST(Schedule, ContainsTransportSpotsEveryImpairmentKind) {
  const char* transport[] = {"5:tloss@0.25/10", "5:tdup@0.5/1",
                             "5:treorder@1/3", "5:tdelay@0.3/10*2",
                             "8:tpart(3,6)"};
  for (const char* text : transport) {
    const auto schedule = FaultSchedule::parse(text);
    ASSERT_TRUE(schedule.has_value()) << text;
    EXPECT_TRUE(schedule->contains_transport()) << text;
  }
  // mp-level channel faults are NOT transport impairments: they live in the
  // simulated network, not under the link.
  const auto mp_only = FaultSchedule::parse("3:loss@0.5/4;9:crash(2,6,reset)");
  ASSERT_TRUE(mp_only.has_value());
  EXPECT_FALSE(mp_only->contains_transport());
}

TEST(Schedule, RandomSchedulesEmitTransportEventsOnlyWhenAsked) {
  util::Rng rng(88);
  CampaignShape shape;
  shape.events = 10;
  shape.horizon_rounds = 60;
  shape.message_passing = true;
  shape.crash = true;
  shape.crash_processors = 16;
  for (int i = 0; i < 20; ++i) {
    EXPECT_FALSE(random_schedule(shape, rng).contains_transport());
  }
  shape.transport = true;
  shape.max_delay_steps = 4;
  bool saw_delay = false;
  bool saw_partition = false;
  for (int i = 0; i < 60; ++i) {
    const FaultSchedule schedule = random_schedule(shape, rng);
    for (const FaultEvent& ev : schedule.events) {
      if (ev.kind == EventKind::kTransportDelay) {
        saw_delay = true;
        EXPECT_GE(ev.magnitude, 1u);
        EXPECT_LE(ev.magnitude, shape.max_delay_steps);
      }
      if (ev.kind == EventKind::kTransportPartition) {
        saw_partition = true;
        EXPECT_LT(ev.magnitude, shape.crash_processors);
      }
    }
    // The one-line form replays to the identical schedule.
    const auto replay = FaultSchedule::parse(schedule.to_string());
    ASSERT_TRUE(replay.has_value());
    EXPECT_EQ(*replay, schedule);
  }
  EXPECT_TRUE(saw_delay);
  EXPECT_TRUE(saw_partition);
}

TEST(ShapeValidation, NamesTheDegenerateTransportKnob) {
  struct Case {
    const char* expect;
    void (*tweak)(CampaignShape&);
  };
  const Case cases[] = {
      {"need message_passing",
       [](CampaignShape& s) {
         s.transport = true;
         s.message_passing = false;
       }},
      {"zero max_delay_steps",
       [](CampaignShape& s) {
         s.message_passing = true;
         s.transport = true;
         s.crash_processors = 8;
         s.max_delay_steps = 0;
       }},
      {"zero crash_processors",
       [](CampaignShape& s) {
         s.message_passing = true;
         s.transport = true;
         s.crash_processors = 0;
       }},
  };
  for (const Case& c : cases) {
    CampaignShape shape;
    c.tweak(shape);
    const auto objection = validate(shape);
    ASSERT_TRUE(objection.has_value()) << c.expect;
    EXPECT_NE(objection->find(c.expect), std::string::npos)
        << c.expect << " -> " << *objection;
  }
}

TEST(ShapeValidationDeathTest, RandomScheduleRejectsDegenerateShapes) {
  util::Rng rng(1);
  CampaignShape zero_events;
  zero_events.events = 0;
  EXPECT_DEATH((void)random_schedule(zero_events, rng), "zero events");

  CampaignShape zero_horizon;
  zero_horizon.horizon_rounds = 0;
  EXPECT_DEATH((void)random_schedule(zero_horizon, rng), "zero-round horizon");

  CampaignShape no_menu;
  no_menu.shared_memory = false;
  no_menu.message_passing = false;
  EXPECT_DEATH((void)random_schedule(no_menu, rng), "no event kinds");

  CampaignShape nan_rate;
  nan_rate.message_passing = true;
  nan_rate.mp_rate_min = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DEATH((void)random_schedule(nan_rate, rng), "mp_rate_min");
}

}  // namespace
}  // namespace snappif::chaos
