// FaultSchedule grammar: print/parse roundtrips, malformed-input rejection,
// normalization, quiet-round computation, and random generation shape.
#include "chaos/schedule.hpp"

#include <gtest/gtest.h>

namespace snappif::chaos {
namespace {

TEST(Schedule, EventToStringForms) {
  FaultEvent burst{.round = 12, .kind = EventKind::kBurst, .magnitude = 3};
  EXPECT_EQ(burst.to_string(), "12:burst*3");

  FaultEvent corrupt{.round = 20,
                     .kind = EventKind::kCorrupt,
                     .corruption = pif::CorruptionKind::kFakeTree};
  EXPECT_EQ(corrupt.to_string(), "20:corrupt=fake-tree");

  FaultEvent daemon{.round = 5,
                    .kind = EventKind::kDaemonSwap,
                    .daemon = sim::DaemonKind::kSynchronous};
  EXPECT_EQ(daemon.to_string(),
            "5:daemon=" + std::string(sim::daemon_kind_name(
                              sim::DaemonKind::kSynchronous)));

  FaultEvent kill{.round = 8, .kind = EventKind::kLinkKill, .magnitude = 2};
  EXPECT_EQ(kill.to_string(), "8:kill*2");

  FaultEvent loss{.round = 5,
                  .kind = EventKind::kMpLoss,
                  .rate = 0.25,
                  .duration = 10};
  EXPECT_EQ(loss.to_string(), "5:loss@0.25/10");
}

TEST(Schedule, EventParseRoundtripsEveryKind) {
  const char* samples[] = {
      "12:burst*3",          "0:burst*1",
      "20:corrupt=uniform",  "20:corrupt=fake-tree",
      "20:corrupt=stray-F",  "20:corrupt=stray-Fok",
      "20:corrupt=inflated", "20:corrupt=adversarial",
      "8:kill*2",            "30:restore*2",
      "5:loss@0.25/10",      "5:dup@0.5/1",
      "5:reorder@1/3",
  };
  for (const char* text : samples) {
    const auto ev = FaultEvent::parse(text);
    ASSERT_TRUE(ev.has_value()) << text;
    EXPECT_EQ(ev->to_string(), text) << text;
    // to_string/parse is a proper roundtrip on the value, too.
    const auto again = FaultEvent::parse(ev->to_string());
    ASSERT_TRUE(again.has_value()) << text;
    EXPECT_EQ(*again, *ev) << text;
  }
}

TEST(Schedule, MalformedEventsAreRejected) {
  const char* bad[] = {
      "",                    // empty
      "burst*3",             // missing round
      "x:burst*3",           // non-numeric round
      "12:boom*3",           // unknown kind
      "12:burst*0",          // zero magnitude
      "12:burst*-1",         // negative magnitude
      "12:corrupt",          // corrupt needs a recipe
      "12:corrupt=nonsense", // unknown recipe
      "12:daemon=nonsense",  // unknown daemon
      "12:loss@0.25",        // window needs a duration
      "12:loss@1.5/3",       // rate out of range
      "12:loss@-0.5/3",      // rate out of range
      "12:loss@nan/3",       // NaN rate
      "12:burst=3",          // wrong separator for the kind
      "12:loss*3",           // wrong separator for the kind
  };
  for (const char* text : bad) {
    EXPECT_FALSE(FaultEvent::parse(text).has_value()) << text;
  }
}

TEST(Schedule, ParseNormalizesAndToStringJoins) {
  const auto schedule = FaultSchedule::parse(
      "20:corrupt=fake-tree;3:burst*2;;9:kill*1;");  // unsorted, extra ';'
  ASSERT_TRUE(schedule.has_value());
  ASSERT_EQ(schedule->events.size(), 3u);
  EXPECT_EQ(schedule->events[0].round, 3u);
  EXPECT_EQ(schedule->events[1].round, 9u);
  EXPECT_EQ(schedule->events[2].round, 20u);
  EXPECT_EQ(schedule->to_string(), "3:burst*2;9:kill*1;20:corrupt=fake-tree");

  const auto again = FaultSchedule::parse(schedule->to_string());
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, *schedule);
}

TEST(Schedule, ParseRejectsAnyMalformedPiece) {
  EXPECT_FALSE(FaultSchedule::parse("3:burst*2;bogus").has_value());
}

TEST(Schedule, EmptyScheduleRoundtrips) {
  const auto schedule = FaultSchedule::parse("");
  ASSERT_TRUE(schedule.has_value());
  EXPECT_TRUE(schedule->empty());
  EXPECT_EQ(schedule->to_string(), "");
  EXPECT_EQ(schedule->quiet_round(), 0u);
}

TEST(Schedule, QuietRoundCoversWindowDurations) {
  const auto schedule = FaultSchedule::parse("3:burst*2;5:loss@0.5/20");
  ASSERT_TRUE(schedule.has_value());
  // The loss window is active through round 24; quiet starts at 25's clock.
  EXPECT_EQ(schedule->quiet_round(), 25u);
}

TEST(Schedule, NormalizeIsStableWithinARound) {
  FaultSchedule schedule;
  schedule.events.push_back({.round = 7, .kind = EventKind::kLinkKill});
  schedule.events.push_back({.round = 7, .kind = EventKind::kLinkRestore});
  schedule.events.push_back({.round = 2, .kind = EventKind::kBurst});
  schedule.normalize();
  EXPECT_EQ(schedule.events[0].kind, EventKind::kBurst);
  EXPECT_EQ(schedule.events[1].kind, EventKind::kLinkKill);
  EXPECT_EQ(schedule.events[2].kind, EventKind::kLinkRestore);
}

TEST(Schedule, RandomSchedulesAreWellFormedAndReplayable) {
  util::Rng rng(1234);
  CampaignShape shape;
  shape.events = 8;
  shape.horizon_rounds = 50;
  shape.max_magnitude = 3;
  shape.message_passing = true;
  for (int i = 0; i < 20; ++i) {
    const FaultSchedule schedule = random_schedule(shape, rng);
    EXPECT_GE(schedule.events.size(), shape.events);  // kills add restores
    std::size_t kills = 0;
    std::size_t restores = 0;
    for (const FaultEvent& ev : schedule.events) {
      if (ev.kind == EventKind::kBurst || ev.kind == EventKind::kLinkKill) {
        EXPECT_GE(ev.magnitude, 1u);
        EXPECT_LE(ev.magnitude, shape.max_magnitude);
      }
      kills += ev.kind == EventKind::kLinkKill ? 1 : 0;
      restores += ev.kind == EventKind::kLinkRestore ? 1 : 0;
    }
    EXPECT_EQ(kills, restores);  // every kill is paired with a heal
    // The one-line form replays to the identical schedule.
    const auto replay = FaultSchedule::parse(schedule.to_string());
    ASSERT_TRUE(replay.has_value());
    EXPECT_EQ(*replay, schedule);
  }
}

TEST(Schedule, CrashEventRoundtrips) {
  FaultEvent crash{.round = 9,
                   .kind = EventKind::kCrash,
                   .magnitude = 2,
                   .duration = 6,
                   .crash_corrupt = true};
  EXPECT_EQ(crash.to_string(), "9:crash(2,6,corrupt)");

  for (const char* text : {"9:crash(2,6,corrupt)", "0:crash(0,0,reset)",
                           "31:crash(15,3,reset)"}) {
    const auto ev = FaultEvent::parse(text);
    ASSERT_TRUE(ev.has_value()) << text;
    EXPECT_EQ(ev->kind, EventKind::kCrash) << text;
    EXPECT_EQ(ev->to_string(), text) << text;
    const auto again = FaultEvent::parse(ev->to_string());
    ASSERT_TRUE(again.has_value()) << text;
    EXPECT_EQ(*again, *ev) << text;
  }
}

TEST(Schedule, MalformedCrashEventsAreRejected) {
  const char* bad[] = {
      "9:crash",                    // no argument list
      "9:crash(2,6)",               // missing recovery mode
      "9:crash(2,6,corrupt",        // unterminated
      "9:crash(2,6,zeroed)",        // unknown recovery mode
      "9:crash(,6,reset)",          // missing processor
      "9:crash(2,,reset)",          // missing duration
      "9:crash(x,6,reset)",         // non-numeric processor
      "9:crash(5000000000,6,reset)" // processor overflows 32 bits
  };
  for (const char* text : bad) {
    EXPECT_FALSE(FaultEvent::parse(text).has_value()) << text;
  }
}

TEST(Schedule, ContainsReportsEventKinds) {
  const auto schedule = FaultSchedule::parse("3:loss@0.5/4;9:crash(2,6,reset)");
  ASSERT_TRUE(schedule.has_value());
  EXPECT_TRUE(schedule->contains(EventKind::kMpLoss));
  EXPECT_TRUE(schedule->contains(EventKind::kCrash));
  EXPECT_FALSE(schedule->contains(EventKind::kBurst));
  EXPECT_FALSE(schedule->contains(EventKind::kMpDuplicate));
}

TEST(Schedule, RandomSchedulesEmitCrashesOnlyWhenAsked) {
  util::Rng rng(77);
  CampaignShape shape;
  shape.events = 10;
  shape.horizon_rounds = 60;
  shape.message_passing = true;
  shape.crash = false;
  for (int i = 0; i < 20; ++i) {
    for (const FaultEvent& ev : random_schedule(shape, rng).events) {
      EXPECT_NE(ev.kind, EventKind::kCrash);
    }
  }
  shape.crash = true;
  shape.crash_processors = 16;
  bool saw_crash = false;
  for (int i = 0; i < 40; ++i) {
    const FaultSchedule schedule = random_schedule(shape, rng);
    for (const FaultEvent& ev : schedule.events) {
      if (ev.kind != EventKind::kCrash) {
        continue;
      }
      saw_crash = true;
      EXPECT_LT(ev.magnitude, shape.crash_processors);
      // A replay must mean the same campaign: the roundtrip is exact.
      const auto again = FaultEvent::parse(ev.to_string());
      ASSERT_TRUE(again.has_value());
      EXPECT_EQ(*again, ev);
    }
  }
  EXPECT_TRUE(saw_crash);
}

}  // namespace
}  // namespace snappif::chaos
