// Coverage-guided engine: corpus growth keyed by registry fingerprints,
// byte-identical corpus / coverage / first-failure across worker counts,
// corpus text round-trips, and failure replayability.
#include "chaos/guided.hpp"

#include <gtest/gtest.h>

#include <string>

#include "graph/generators.hpp"
#include "par/pool.hpp"
#include "pif/params.hpp"

namespace snappif::chaos {
namespace {

[[nodiscard]] GuidedOptions small_options() {
  GuidedOptions opts;
  opts.master_seed = 2026;
  opts.generations = 3;
  opts.population = 6;
  opts.shape.events = 4;
  opts.shape.horizon_rounds = 30;
  opts.shape.max_magnitude = 3;
  return opts;
}

TEST(Guided, TrivialCorpusBootstrapsAndGrowsByNovelFingerprints) {
  const auto g = graph::make_random_connected(10, 8, 3);
  const GuidedOptions opts = small_options();
  const GuidedReport report = run_guided(g, opts);

  // Generation 0 evaluates the trivial corpus: one empty schedule.
  ASSERT_FALSE(report.generations.empty());
  EXPECT_EQ(report.generations[0].campaigns, 1u);
  EXPECT_EQ(report.campaigns_run,
            1u + opts.generations * opts.population);
  // Coverage accounting: every fingerprint was seen at least once, the
  // corpus holds exactly the novel ones, discovery order is recorded.
  EXPECT_LE(report.unique_fingerprints, report.campaigns_run);
  EXPECT_EQ(report.corpus.size() + report.corpus_overflow,
            report.unique_fingerprints);
  ASSERT_FALSE(report.corpus.empty());
  EXPECT_EQ(report.corpus[0].generation, 0u);
  EXPECT_TRUE(report.corpus[0].schedule.empty());
  std::uint64_t novel_total = 0;
  for (const GenerationStats& gen : report.generations) {
    novel_total += gen.novel;
  }
  EXPECT_EQ(novel_total, report.unique_fingerprints);
  // Mutation actually explores: later generations find novel behavior.
  EXPECT_GT(report.unique_fingerprints, 1u);
}

TEST(Guided, SeedCorpusIsEvaluatedVerbatimInGenerationZero) {
  const auto g = graph::make_random_connected(10, 8, 3);
  GuidedOptions opts = small_options();
  const auto seed_schedule = FaultSchedule::parse("3:burst*2;9:kill*1");
  ASSERT_TRUE(seed_schedule.has_value());
  opts.corpus_in = {*seed_schedule};
  const GuidedReport report = run_guided(g, opts);
  ASSERT_FALSE(report.corpus.empty());
  EXPECT_EQ(report.corpus[0].generation, 0u);
  EXPECT_EQ(report.corpus[0].schedule, *seed_schedule);
}

TEST(Guided, CorpusCoverageAndFirstFailureMatchAcrossWorkerCounts) {
  const auto g = graph::make_random_connected(10, 8, 3);
  // The count-wait ablation breaks the snap linchpin, so failures are
  // reachable and the first-failure comparison below is non-vacuous.
  GuidedOptions opts = small_options();
  opts.generations = 6;
  opts.population = 8;
  opts.campaign.tweak_params = [](pif::Params& p) {
    p.ablate_count_wait = true;
  };

  const GuidedReport base = run_guided(g, opts);
  EXPECT_TRUE(base.first_failure.has_value())
      << "ablated protocol produced no guided failure in the budget; the "
         "first-failure comparison below is vacuous";

  par::ThreadPool two(2);
  par::ThreadPool eight(8);
  for (auto* pool : {&two, &eight}) {
    const GuidedReport run = run_guided(g, opts, pool);
    // Byte-identical corpus file, coverage map, and merged telemetry.
    EXPECT_EQ(corpus_to_text(run.corpus), corpus_to_text(base.corpus));
    EXPECT_EQ(run.unique_fingerprints, base.unique_fingerprints);
    EXPECT_EQ(run.campaigns_run, base.campaigns_run);
    EXPECT_EQ(run.metrics.json(), base.metrics.json());
    ASSERT_EQ(run.first_failure.has_value(), base.first_failure.has_value());
    if (base.first_failure.has_value()) {
      EXPECT_EQ(run.first_failure->generation,
                base.first_failure->generation);
      EXPECT_EQ(run.first_failure->slot, base.first_failure->slot);
      EXPECT_EQ(run.first_failure->outcome.seed,
                base.first_failure->outcome.seed);
      EXPECT_EQ(run.first_failure->outcome.schedule.to_string(),
                base.first_failure->outcome.schedule.to_string());
    }
    ASSERT_EQ(run.generations.size(), base.generations.size());
    for (std::size_t i = 0; i < base.generations.size(); ++i) {
      EXPECT_EQ(run.generations[i].novel, base.generations[i].novel);
      EXPECT_EQ(run.generations[i].failures, base.generations[i].failures);
    }
  }
}

TEST(Guided, StopsAfterTheGenerationContainingTheFirstFailure) {
  const auto g = graph::make_random_connected(10, 8, 3);
  GuidedOptions opts = small_options();
  opts.generations = 50;  // far more than needed once failures are reachable
  opts.population = 8;
  opts.campaign.tweak_params = [](pif::Params& p) {
    p.ablate_count_wait = true;
  };
  const GuidedReport report = run_guided(g, opts);
  ASSERT_TRUE(report.first_failure.has_value());
  // The failing generation is the last one run.
  EXPECT_EQ(report.generations.back().generation,
            report.first_failure->generation);
  EXPECT_GT(report.generations.back().failures, 0u);
  // The failure carries its retained flight recorder and the failing
  // (schedule, seed) replays to the same verdict.
  EXPECT_NE(report.first_failure->outcome.flight, nullptr);
  EXPECT_TRUE(report.flight.failed());
  SoakOptions soak;
  soak.shape = opts.shape;
  soak.campaign = opts.campaign;
  SoakJob job;
  job.schedule = report.first_failure->outcome.schedule;
  job.seed = report.first_failure->outcome.seed;
  const SoakOutcome replay = run_soak_campaign(
      g, soak, job, report.first_failure->slot, /*registry=*/nullptr);
  EXPECT_FALSE(replay.ok());
}

TEST(GuidedCorpus, TextRoundTripsSchedulesCommentsAndEmptyMarker) {
  std::vector<CorpusEntry> corpus(3);
  corpus[0].schedule = FaultSchedule{};  // serializes as '-'
  corpus[1].schedule = *FaultSchedule::parse("3:burst*2;9:kill*1");
  corpus[1].fingerprint = 0xdeadbeefULL;
  corpus[1].generation = 2;
  corpus[1].slot = 5;
  corpus[2].schedule = *FaultSchedule::parse("5:loss@0.25/10");

  const std::string text = corpus_to_text(corpus);
  EXPECT_NE(text.find("# fp=00000000deadbeef gen=2 slot=5"),
            std::string::npos);
  const auto parsed = corpus_from_text(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_TRUE((*parsed)[0].empty());
  EXPECT_EQ((*parsed)[1], corpus[1].schedule);
  EXPECT_EQ((*parsed)[2], corpus[2].schedule);
}

TEST(GuidedCorpus, FromTextSkipsBlanksAndTrimsWhitespace) {
  const auto parsed = corpus_from_text(
      "# header comment\n"
      "\n"
      "  3:burst*2  \r\n"
      "  -\n"
      "\t5:kill*1\n");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->size(), 3u);
  EXPECT_EQ((*parsed)[0].to_string(), "3:burst*2");
  EXPECT_TRUE((*parsed)[1].empty());
  EXPECT_EQ((*parsed)[2].to_string(), "5:kill*1");
}

TEST(GuidedCorpus, FromTextNamesTheLineAndTokenOfAMalformedEntry) {
  std::string error;
  const auto parsed = corpus_from_text(
      "# ok\n"
      "3:burst*2\n"
      "12:boom*3\n",
      &error);
  EXPECT_FALSE(parsed.has_value());
  EXPECT_EQ(error, "line 3: offset 3: unknown event kind 'boom'");
}

}  // namespace
}  // namespace snappif::chaos
