// Schedule shrinker: minimal reproducers from noisy failing campaigns.
#include "chaos/shrink.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace snappif::chaos {
namespace {

[[nodiscard]] FaultSchedule noisy_schedule() {
  const auto schedule = FaultSchedule::parse(
      "2:burst*4;5:corrupt=fake-tree;8:kill*2;11:daemon=synchronous;"
      "14:restore*2;17:burst*8;20:corrupt=adversarial");
  EXPECT_TRUE(schedule.has_value());
  return *schedule;
}

TEST(Shrink, PassingScheduleIsLeftAlone) {
  const FaultSchedule schedule = noisy_schedule();
  const auto never_fails = [](const FaultSchedule&) { return false; };
  const ShrinkResult r = shrink(schedule, never_fails);
  EXPECT_FALSE(r.input_failed);
  EXPECT_FALSE(r.reduced);
  EXPECT_EQ(r.campaigns_run, 1u);  // one probe of the input, nothing more
  EXPECT_EQ(r.minimal, schedule);
}

TEST(Shrink, DropsEveryIrrelevantEventAndHalvesMagnitude) {
  // Failure reproduces iff some burst at round >= 10 has magnitude >= 2:
  // the minimal reproducer is the single 17:burst halved down to *2.
  const auto fails = [](const FaultSchedule& s) {
    for (const FaultEvent& ev : s.events) {
      if (ev.kind == EventKind::kBurst && ev.round >= 10 && ev.magnitude >= 2) {
        return true;
      }
    }
    return false;
  };
  const ShrinkResult r = shrink(noisy_schedule(), fails);
  EXPECT_TRUE(r.input_failed);
  EXPECT_TRUE(r.reduced);
  ASSERT_EQ(r.minimal.events.size(), 1u);
  EXPECT_EQ(r.minimal.events[0].round, 17u);
  EXPECT_EQ(r.minimal.events[0].kind, EventKind::kBurst);
  EXPECT_EQ(r.minimal.events[0].magnitude, 2u);
  EXPECT_EQ(r.reproducer, "17:burst*2");
}

TEST(Shrink, HalvesRatesAndDurations) {
  const auto schedule = FaultSchedule::parse("3:loss@0.8/16;7:dup@0.5/4");
  ASSERT_TRUE(schedule.has_value());
  // Failure needs only a loss window with rate >= 0.1.
  const auto fails = [](const FaultSchedule& s) {
    for (const FaultEvent& ev : s.events) {
      if (ev.kind == EventKind::kMpLoss && ev.rate >= 0.1) {
        return true;
      }
    }
    return false;
  };
  const ShrinkResult r = shrink(*schedule, fails);
  EXPECT_TRUE(r.input_failed);
  ASSERT_EQ(r.minimal.events.size(), 1u);
  EXPECT_EQ(r.minimal.events[0].kind, EventKind::kMpLoss);
  EXPECT_DOUBLE_EQ(r.minimal.events[0].rate, 0.1);
  EXPECT_EQ(r.minimal.events[0].duration, 0u);  // halved 16->8->4->2->1->0
}

TEST(Shrink, EvaluationBudgetBounds) {
  const auto always_fails = [](const FaultSchedule&) { return true; };
  ShrinkOptions options;
  options.max_campaigns = 5;
  const ShrinkResult r = shrink(noisy_schedule(), always_fails, options);
  EXPECT_LE(r.campaigns_run, 5u);
}

TEST(Shrink, BrokenProtocolVariantYieldsAMinimalFailingSchedule) {
  // The acceptance scenario: ablate the Count=N wait so the protocol is no
  // longer snap-stabilizing, find a noisy campaign the oracle rejects
  // (min-level adversarial daemon; the ablation needs scheduling pressure
  // to bite), and hand it to the shrinker.  The minimal reproducer must be
  // a strictly smaller schedule that still fails on replay.
  const auto g = graph::make_random_connected(10, 10, 5);
  CampaignOptions opts;
  opts.tweak_params = [](pif::Params& p) { p.ablate_count_wait = true; };
  // Same noisy timeline as above but opening with a swap to the min-level
  // adversarial daemon — the scheduling pressure the ablation needs — so
  // the swap event itself is part of the failing combination.
  const auto parsed = FaultSchedule::parse(
      "0:daemon=adversarial-min;2:burst*4;5:corrupt=fake-tree;8:kill*2;"
      "14:restore*2;17:burst*8;20:corrupt=adversarial");
  ASSERT_TRUE(parsed.has_value());
  const FaultSchedule noisy = *parsed;
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 10 && !found; ++seed) {
    opts.seed = seed;
    found = !run_campaign(g, noisy, opts).ok();
  }
  ASSERT_TRUE(found) << "no failing noisy campaign within the seed budget";

  const ShrinkResult r = shrink_campaign(g, noisy, opts);
  EXPECT_TRUE(r.input_failed);
  EXPECT_TRUE(r.reduced);
  ASSERT_LT(r.minimal.events.size(), noisy.events.size());
  // The reproducer replays (via the grammar) to a failing campaign.
  const auto replay = FaultSchedule::parse(r.reproducer);
  ASSERT_TRUE(replay.has_value());
  EXPECT_FALSE(run_campaign(g, *replay, opts).ok());
  // ...and it is minimal: dropping any surviving event makes it pass.
  for (std::size_t i = 0; i < r.minimal.events.size(); ++i) {
    FaultSchedule smaller = r.minimal;
    smaller.events.erase(smaller.events.begin() +
                         static_cast<std::ptrdiff_t>(i));
    EXPECT_TRUE(run_campaign(g, smaller, opts).ok())
        << "dropping event " << i << " of '" << r.reproducer
        << "' still fails - not minimal";
  }
}

TEST(Shrink, RealCampaignMinimalReproducerStillFails) {
  // Shrinking against the real oracle with a *correct* protocol and a
  // passing schedule: nothing to do.
  const auto g = graph::make_cycle(7);
  const auto schedule = FaultSchedule::parse("2:burst*2");
  ASSERT_TRUE(schedule.has_value());
  CampaignOptions opts;
  opts.seed = 37;
  const ShrinkResult r = shrink_campaign(g, *schedule, opts);
  EXPECT_FALSE(r.input_failed);
  EXPECT_EQ(r.minimal, *schedule);
}

TEST(Shrink, HalvesCrashDurationButNeverTheProcessorId) {
  // magnitude names WHICH processor crashed -- halving it would change the
  // campaign, not weaken it.  Only the silence window shrinks.
  const auto schedule = FaultSchedule::parse("4:crash(7,16,corrupt)");
  ASSERT_TRUE(schedule.has_value());
  const auto fails = [](const FaultSchedule& s) {
    for (const FaultEvent& ev : s.events) {
      if (ev.kind == EventKind::kCrash && ev.magnitude == 7 &&
          ev.duration >= 2) {
        return true;
      }
    }
    return false;
  };
  const ShrinkResult r = shrink(*schedule, fails);
  EXPECT_TRUE(r.input_failed);
  ASSERT_EQ(r.minimal.events.size(), 1u);
  EXPECT_EQ(r.minimal.events[0].kind, EventKind::kCrash);
  EXPECT_EQ(r.minimal.events[0].magnitude, 7u);  // untouched
  EXPECT_EQ(r.minimal.events[0].duration, 2u);   // halved 16->8->4->2
  EXPECT_TRUE(r.minimal.events[0].crash_corrupt);
}

}  // namespace
}  // namespace snappif::chaos
