// Campaign engine + recovery oracle.  The headline test is the acceptance
// scenario: a seeded campaign mixing three event kinds (burst, structured
// corruption, link churn) must reach its quiet point, recover to all-Normal
// within a finite measured round count, and pass the Checker/GhostTracker
// snap assertion on the first post-quiet cycle.
#include "chaos/campaign.hpp"

#include <gtest/gtest.h>

#include "chaos/mp_campaign.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"

namespace snappif::chaos {
namespace {

TEST(Campaign, SeededMixedCampaignRecoversWithSnapProperty) {
  const auto g = graph::make_random_connected(14, 12, 77);
  const auto schedule = FaultSchedule::parse(
      "4:burst*3;8:corrupt=fake-tree;12:kill*2;16:corrupt=adversarial;"
      "20:restore*2;24:burst*2");
  ASSERT_TRUE(schedule.has_value());

  CampaignOptions opts;
  opts.seed = 2024;
  const CampaignResult r = run_campaign(g, *schedule, opts);

  EXPECT_TRUE(r.completed) << r.failure;
  EXPECT_GE(r.events_applied, 5u);  // kills may skip if only bridges remain
  EXPECT_GE(r.faults_injected, 3u + 14u + 14u + 2u);
  EXPECT_GE(r.quiet_round, 24u);

  // Finite, measured recovery...
  ASSERT_TRUE(r.recovered) << r.failure;
  EXPECT_GT(r.rounds_to_cycle_close, 0u);
  EXPECT_LE(r.rounds_to_normal, r.rounds_to_cycle_close);
  // ...within the default budget 20*Lmax + 50.
  EXPECT_LE(r.rounds_to_cycle_close, 20u * 13u + 50u);

  // The snap property on the first post-quiet root cycle.
  EXPECT_TRUE(r.snap_ok) << r.failure;
  EXPECT_TRUE(r.pif1);
  EXPECT_TRUE(r.pif2);
  EXPECT_FALSE(r.aborted);
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.failure.empty()) << r.failure;
}

TEST(Campaign, EmptyScheduleIsAFaultFreeRun) {
  const auto g = graph::make_cycle(8);
  CampaignOptions opts;
  opts.seed = 5;
  const CampaignResult r = run_campaign(g, FaultSchedule{}, opts);
  EXPECT_TRUE(r.ok()) << r.failure;
  EXPECT_EQ(r.quiet_round, 0u);
  EXPECT_EQ(r.events_applied, 0u);
  EXPECT_EQ(r.faults_injected, 0u);
}

TEST(Campaign, DeterministicInSeed) {
  const auto g = graph::make_random_connected(10, 8, 3);
  const auto schedule = FaultSchedule::parse("3:burst*2;7:corrupt=stray-F");
  ASSERT_TRUE(schedule.has_value());
  CampaignOptions opts;
  opts.seed = 99;
  const CampaignResult a = run_campaign(g, *schedule, opts);
  const CampaignResult b = run_campaign(g, *schedule, opts);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.rounds_to_normal, b.rounds_to_normal);
  EXPECT_EQ(a.rounds_to_cycle_close, b.rounds_to_cycle_close);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.ok(), b.ok());
}

TEST(Campaign, BridgeOnlyTopologySkipsKills) {
  // Every edge of a tree is a bridge: kills must be skipped (graph stays
  // connected, N fixed), and the campaign still recovers.
  const auto g = graph::make_binary_tree(9);
  const auto schedule = FaultSchedule::parse("2:kill*3;5:burst*2");
  ASSERT_TRUE(schedule.has_value());
  CampaignOptions opts;
  opts.seed = 7;
  const CampaignResult r = run_campaign(g, *schedule, opts);
  EXPECT_EQ(r.links_killed, 0u);
  EXPECT_EQ(r.events_skipped, 1u);
  EXPECT_TRUE(r.ok()) << r.failure;
}

TEST(Campaign, ChurnOnChordedGraphKillsAndRestores) {
  // A cycle has no bridges, so one kill must succeed; the paired restore
  // brings the edge back before the quiet point.
  const auto g = graph::make_cycle(9);
  const auto schedule = FaultSchedule::parse("2:kill*1;8:restore*1");
  ASSERT_TRUE(schedule.has_value());
  CampaignOptions opts;
  opts.seed = 11;
  const CampaignResult r = run_campaign(g, *schedule, opts);
  EXPECT_EQ(r.links_killed, 1u);
  EXPECT_EQ(r.links_restored, 1u);
  EXPECT_TRUE(r.ok()) << r.failure;
}

TEST(Campaign, RestoreWithNothingRemovedIsSkipped) {
  const auto g = graph::make_cycle(6);
  const auto schedule = FaultSchedule::parse("2:restore*1");
  ASSERT_TRUE(schedule.has_value());
  CampaignOptions opts;
  opts.seed = 3;
  const CampaignResult r = run_campaign(g, *schedule, opts);
  EXPECT_EQ(r.links_restored, 0u);
  EXPECT_EQ(r.events_skipped, 1u);
  EXPECT_TRUE(r.ok()) << r.failure;
}

TEST(Campaign, DaemonSwapMidRunStillRecovers) {
  const auto g = graph::make_wheel(8);
  const auto schedule = FaultSchedule::parse(
      "2:corrupt=inflated;4:daemon=synchronous;9:burst*2");
  ASSERT_TRUE(schedule.has_value());
  CampaignOptions opts;
  opts.seed = 21;
  const CampaignResult r = run_campaign(g, *schedule, opts);
  EXPECT_EQ(r.events_applied, 3u);
  EXPECT_TRUE(r.ok()) << r.failure;
}

TEST(Campaign, MpWindowKindsAreSkippedByTheSharedMemoryRunner) {
  const auto g = graph::make_cycle(6);
  const auto schedule = FaultSchedule::parse("1:burst*1;3:loss@0.5/4");
  ASSERT_TRUE(schedule.has_value());
  CampaignOptions opts;
  opts.seed = 13;
  const CampaignResult r = run_campaign(g, *schedule, opts);
  EXPECT_EQ(r.events_applied, 1u);
  EXPECT_EQ(r.events_skipped, 1u);
  EXPECT_TRUE(r.ok()) << r.failure;
}

TEST(Campaign, BrokenVariantFailsTheOracle) {
  // Ablating the Count=N wait (the snap linchpin) must surface as a snap
  // violation — the oracle is not a rubber stamp.  The ablation needs an
  // unlucky schedule to bite (from a clean configuration the broadcast
  // usually outruns the premature Fok), so pair it with the min-level
  // adversarial daemon and sample a handful of seeds: a correct protocol
  // passes all of them (see the tests above); the broken one must not.
  const auto g = graph::make_random_connected(10, 6, 5);
  const auto schedule = FaultSchedule::parse("3:corrupt=adversarial");
  ASSERT_TRUE(schedule.has_value());
  CampaignOptions opts;
  opts.daemon = sim::DaemonKind::kAdversarialMinLevel;
  opts.tweak_params = [](pif::Params& p) { p.ablate_count_wait = true; };
  bool caught = false;
  for (std::uint64_t seed = 1; seed <= 10 && !caught; ++seed) {
    opts.seed = seed;
    const CampaignResult r = run_campaign(g, *schedule, opts);
    if (!r.ok()) {
      caught = true;
      EXPECT_FALSE(r.failure.empty());
    }
  }
  EXPECT_TRUE(caught) << "count-wait ablation never failed the oracle";
}

TEST(Campaign, TelemetryFlowsThroughTheRegistry) {
  const auto g = graph::make_cycle(8);
  const auto schedule = FaultSchedule::parse("2:burst*2;5:corrupt=stray-Fok");
  ASSERT_TRUE(schedule.has_value());
  obs::Registry registry;
  CampaignOptions opts;
  opts.seed = 29;
  opts.registry = &registry;
  const CampaignResult r = run_campaign(g, *schedule, opts);
  ASSERT_TRUE(r.ok()) << r.failure;
  EXPECT_EQ(registry.counter("chaos.campaigns").value(), 1u);
  EXPECT_EQ(registry.counter("chaos.campaigns_failed").value(), 0u);
  EXPECT_EQ(registry.counter("chaos.events_applied").value(), 2u);
  EXPECT_GE(registry.counter("chaos.faults_injected").value(), 2u);
  EXPECT_EQ(registry.histogram("chaos.recovery_rounds").total(), 1u);
  EXPECT_DOUBLE_EQ(registry.gauge("chaos.worst_recovery_rounds").value(),
                   static_cast<double>(r.rounds_to_cycle_close));
}

TEST(MpCampaign, RecoversFromLossDupAndReorderWindows) {
  const auto g = graph::make_random_connected(12, 8, 9);
  const auto schedule = FaultSchedule::parse(
      "0:loss@0.3/8;4:dup@0.4/8;8:reorder@0.8/8");
  ASSERT_TRUE(schedule.has_value());
  MpCampaignOptions opts;
  opts.seed = 41;
  const MpCampaignResult r = run_mp_campaign(g, *schedule, opts);
  EXPECT_TRUE(r.completed) << r.failure;
  EXPECT_EQ(r.windows_applied, 3u);
  EXPECT_EQ(r.quiet_round, 16u);
  ASSERT_TRUE(r.recovered) << r.failure;
  EXPECT_GT(r.waves_started, 0u);
  EXPECT_GT(r.waves_ok, 0u);
  EXPECT_TRUE(r.ok());
}

TEST(MpCampaign, TotalLossWindowStallsWavesUntilQuiet) {
  // loss@1/6: every message of every wave in the window drops; the root
  // keeps superseding with fresh sequence numbers, and once the window
  // closes a clean wave completes — the repro of the "echo deadlocks after
  // one loss, repeated-PIF recovers by numbering" story.
  const auto g = graph::make_path(6);
  const auto schedule = FaultSchedule::parse("0:loss@1/6");
  ASSERT_TRUE(schedule.has_value());
  MpCampaignOptions opts;
  opts.seed = 43;
  const MpCampaignResult r = run_mp_campaign(g, *schedule, opts);
  ASSERT_TRUE(r.ok()) << r.failure;
  EXPECT_GT(r.messages_dropped, 0u);
  EXPECT_GE(r.waves_started, 2u);  // at least the stalled ones + the clean one
  EXPECT_EQ(r.waves_to_recover, 1u);
}

TEST(MpCampaign, SharedMemoryKindsAreSkippedByTheMpRunner) {
  const auto g = graph::make_cycle(5);
  const auto schedule = FaultSchedule::parse("1:burst*2;2:loss@0.2/3");
  ASSERT_TRUE(schedule.has_value());
  MpCampaignOptions opts;
  opts.seed = 47;
  const MpCampaignResult r = run_mp_campaign(g, *schedule, opts);
  EXPECT_EQ(r.events_skipped, 1u);
  EXPECT_EQ(r.windows_applied, 1u);
  EXPECT_TRUE(r.ok()) << r.failure;
}

TEST(Campaign, EngineKnobPreservesCampaignOutcome) {
  // CampaignOptions::engine is applied at every build/rebuild point
  // (including link-churn rebuilds); the SoA engine must reproduce the mask
  // campaign's entire outcome, counters included.
  const auto g = graph::make_random_connected(14, 12, 77);
  const auto schedule = FaultSchedule::parse(
      "4:burst*3;8:corrupt=fake-tree;12:kill*2;16:corrupt=adversarial;"
      "20:restore*2;24:burst*2");
  ASSERT_TRUE(schedule.has_value());

  CampaignOptions mask_opts;
  mask_opts.seed = 2024;
  CampaignOptions soa_opts = mask_opts;
  soa_opts.engine = sim::EngineKind::kSoa;
  const CampaignResult a = run_campaign(g, *schedule, mask_opts);
  const CampaignResult b = run_campaign(g, *schedule, soa_opts);

  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.events_applied, b.events_applied);
  EXPECT_EQ(a.events_skipped, b.events_skipped);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.links_killed, b.links_killed);
  EXPECT_EQ(a.links_restored, b.links_restored);
  EXPECT_EQ(a.quiet_round, b.quiet_round);
  EXPECT_EQ(a.recovered, b.recovered);
  EXPECT_EQ(a.rounds_to_normal, b.rounds_to_normal);
  EXPECT_EQ(a.rounds_to_cycle_close, b.rounds_to_cycle_close);
  EXPECT_EQ(a.snap_ok, b.snap_ok);
  EXPECT_EQ(a.steps, b.steps);
  EXPECT_EQ(a.failure, b.failure);
}

}  // namespace
}  // namespace snappif::chaos
