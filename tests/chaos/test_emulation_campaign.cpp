// Emulation campaigns: the paper's PifProtocol over the mp substrate under
// combined channel faults and crash-recover processor faults, judged by the
// settle-then-release recovery oracle.
#include "chaos/emulation_campaign.hpp"

#include <gtest/gtest.h>

#include "chaos/shrink.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"

namespace snappif::chaos {
namespace {

TEST(EmulationCampaign, EmptyScheduleCompletesACleanCycle) {
  const auto g = graph::make_random_connected(10, 6, 3);
  const EmulationCampaignResult r =
      run_emulation_campaign(g, FaultSchedule{}, EmulationCampaignOptions{});
  EXPECT_TRUE(r.ok()) << r.failure;
  EXPECT_EQ(r.crashes_applied, 0u);
  EXPECT_EQ(r.windows_applied, 0u);
  EXPECT_GT(r.cycles_completed, 0u);
}

TEST(EmulationCampaign, CombinedChannelAndCrashFaultsRecover) {
  // The ISSUE's acceptance shape: loss + dup + reorder windows overlapping
  // two crash-recover faults, one of them rebooting with corrupted state.
  const auto g = graph::make_random_connected(12, 8, 5);
  const auto schedule = FaultSchedule::parse(
      "0:loss@0.4/8;2:dup@0.3/6;3:reorder@0.5/5;"
      "4:crash(3,4,corrupt);6:crash(7,3,reset)");
  ASSERT_TRUE(schedule.has_value());
  EmulationCampaignOptions opts;
  opts.arbitrary_init = true;
  const EmulationCampaignResult r =
      run_emulation_campaign(g, *schedule, opts);
  EXPECT_TRUE(r.ok()) << r.failure;
  EXPECT_EQ(r.crashes_applied, 2u);
  EXPECT_EQ(r.windows_applied, 3u);
  EXPECT_GT(r.messages_dropped, 0u);
  EXPECT_GT(r.link_retransmits, 0u);
  EXPECT_GT(r.rounds_to_settle, 0u);
  EXPECT_GT(r.rounds_to_recover, 0u);
}

TEST(EmulationCampaign, DeterministicInSeed) {
  const auto g = graph::make_random_connected(9, 5, 7);
  const auto schedule =
      FaultSchedule::parse("0:loss@0.3/6;2:crash(4,5,corrupt)");
  ASSERT_TRUE(schedule.has_value());
  EmulationCampaignOptions opts;
  opts.seed = 99;
  const EmulationCampaignResult a = run_emulation_campaign(g, *schedule, opts);
  const EmulationCampaignResult b = run_emulation_campaign(g, *schedule, opts);
  EXPECT_TRUE(a.ok()) << a.failure;
  EXPECT_EQ(a.rounds_total, b.rounds_total);
  EXPECT_EQ(a.actions_applied, b.actions_applied);
  EXPECT_EQ(a.messages_dropped, b.messages_dropped);
  EXPECT_EQ(a.link_retransmits, b.link_retransmits);
  EXPECT_EQ(a.rounds_to_recover, b.rounds_to_recover);
}

TEST(EmulationCampaign, SharedMemoryKindsAreSkipped) {
  const auto g = graph::make_cycle(8);
  const auto schedule =
      FaultSchedule::parse("2:burst*2;4:corrupt=uniform;6:crash(1,2,reset)");
  ASSERT_TRUE(schedule.has_value());
  const EmulationCampaignResult r =
      run_emulation_campaign(g, *schedule, EmulationCampaignOptions{});
  EXPECT_TRUE(r.ok()) << r.failure;
  EXPECT_EQ(r.events_skipped, 2u);
  EXPECT_EQ(r.crashes_applied, 1u);
}

TEST(EmulationCampaign, OverlappingCrashOfSameProcessorIsSkipped) {
  const auto g = graph::make_cycle(6);
  // Second crash of processor 2 lands inside the first silence window.
  const auto schedule =
      FaultSchedule::parse("1:crash(2,8,reset);3:crash(2,2,corrupt)");
  ASSERT_TRUE(schedule.has_value());
  const EmulationCampaignResult r =
      run_emulation_campaign(g, *schedule, EmulationCampaignOptions{});
  EXPECT_TRUE(r.ok()) << r.failure;
  EXPECT_EQ(r.crashes_applied, 1u);
  EXPECT_EQ(r.events_skipped, 1u);
}

TEST(EmulationCampaign, CrashAtTheQuietPointStillRecovers) {
  // A crash whose window ends exactly at the quiet point: recovery happens
  // before the oracle's clock starts, and the verdict still holds.
  const auto g = graph::make_random_connected(8, 4, 9);
  const auto schedule = FaultSchedule::parse("0:crash(5,0,corrupt)");
  ASSERT_TRUE(schedule.has_value());
  const EmulationCampaignResult r =
      run_emulation_campaign(g, *schedule, EmulationCampaignOptions{});
  EXPECT_TRUE(r.ok()) << r.failure;
  EXPECT_EQ(r.crashes_applied, 1u);
}

TEST(EmulationCampaign, BackToBackNeighborCrashesDoNotDeadlock) {
  // Regression (found by the E19 bench sweep): processor 10 reboots clean,
  // wiping its receiver histories; neighbor 9 then reboots with corrupted
  // state.  9's new incarnation used to slip through 10's first-contact
  // branch without a peer-reset upcall, so 10 never re-published its state,
  // 9's garbage view of 10 was never corrected, and the whole line
  // deadlocked with the link idle — a failure the quiescence check cannot
  // distinguish from success.  The link now treats every unproven
  // incarnation as a reset, and this exact campaign must recover.
  const auto g = graph::make_path(16);
  const auto schedule = FaultSchedule::parse(
      "10:reorder@0.42/3;16:dup@0.35/3;16:burst*3;18:crash(10,4,reset);"
      "23:crash(9,3,corrupt);26:reorder@0.28/8");
  ASSERT_TRUE(schedule.has_value());
  EmulationCampaignOptions opts;
  opts.seed = 4331567181889320634ULL;
  opts.arbitrary_init = true;
  const EmulationCampaignResult r = run_emulation_campaign(g, *schedule, opts);
  EXPECT_TRUE(r.ok()) << r.failure;
  EXPECT_EQ(r.crashes_applied, 2u);
}

TEST(EmulationCampaign, TelemetryFlowsThroughTheRegistry) {
  const auto g = graph::make_cycle(8);
  const auto schedule = FaultSchedule::parse("1:loss@0.5/4;2:crash(3,3,reset)");
  ASSERT_TRUE(schedule.has_value());
  obs::Registry registry;
  EmulationCampaignOptions opts;
  opts.registry = &registry;
  const EmulationCampaignResult r = run_emulation_campaign(g, *schedule, opts);
  EXPECT_TRUE(r.ok()) << r.failure;
  EXPECT_EQ(registry.counter("chaos.emu.campaigns").value(), 1u);
  EXPECT_EQ(registry.counter("chaos.emu.crashes").value(), 1u);
  EXPECT_GT(registry.counter("mp.link.delivered").value(), 0u);
}

TEST(EmulationCampaign, ShrinkLeavesPassingSchedulesAlone) {
  const auto g = graph::make_cycle(6);
  const auto schedule = FaultSchedule::parse("1:loss@0.3/3;2:crash(1,2,reset)");
  ASSERT_TRUE(schedule.has_value());
  const ShrinkResult r =
      shrink_emulation_campaign(g, *schedule, EmulationCampaignOptions{});
  EXPECT_FALSE(r.input_failed);
  EXPECT_EQ(r.minimal, *schedule);
}

}  // namespace
}  // namespace snappif::chaos
