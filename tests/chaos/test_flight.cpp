// Flight recording through the chaos stack: a failing campaign must leave a
// parseable dump with diagnosis + decodable snapshot, the emulation leg must
// contribute link frame spans, and soak dumps must be byte-identical for any
// worker count.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "chaos/campaign.hpp"
#include "chaos/emulation_campaign.hpp"
#include "chaos/soak.hpp"
#include "graph/generators.hpp"
#include "obs/flight.hpp"
#include "par/pool.hpp"
#include "pif/codec.hpp"
#include "pif/params.hpp"

namespace snappif::chaos {
namespace {

/// The deliberately broken variant the oracle reliably catches (the same
/// ablation the tool's --break=feedback-bleaf exercises).
void break_feedback(pif::Params& p) { p.ablate_feedback_bleaf = true; }

TEST(FlightRecorder, FailingCampaignStampsDiagnosisAndSnapshot) {
  const auto g = graph::make_random_connected(12, 10, 1);
  // The ablation fails on most seeds; scan a handful so the test doesn't
  // hinge on one magic value.
  obs::FlightRecorder flight;
  CampaignResult r;
  bool failed = false;
  for (std::uint64_t seed = 1; seed <= 32 && !failed; ++seed) {
    flight = obs::FlightRecorder{};
    CampaignOptions opts;
    opts.seed = seed;
    opts.tweak_params = break_feedback;
    opts.flight = &flight;
    r = run_campaign(g, FaultSchedule{}, opts);
    failed = !r.ok();
  }
  ASSERT_TRUE(failed) << "ablation never tripped the oracle";

  EXPECT_TRUE(flight.failed());
  EXPECT_EQ(flight.context().failure, r.failure);
  EXPECT_FALSE(flight.spans().spans().empty());
  EXPECT_EQ(flight.snapshot_format(), "pif.codec.v1");
  ASSERT_EQ(flight.snapshot_words().size(), g.n());
  // Snapshot words decode back into in-domain states.
  const pif::StateCodec codec(g, pif::Params::for_graph(g, 0));
  for (sim::ProcessorId p = 0; p < g.n(); ++p) {
    (void)codec.decode(p, flight.snapshot_words()[p]);
  }
  // The dump round-trips.
  const auto dump = obs::parse_flight_dump(flight.dump_json());
  ASSERT_TRUE(dump.has_value());
  EXPECT_EQ(dump->context.failure, r.failure);
  EXPECT_EQ(dump->snapshot_words.size(), g.n());
}

TEST(FlightRecorder, PassingCampaignLeavesSpansButNoFailure) {
  const auto g = graph::make_cycle(8);
  obs::FlightRecorder flight;
  CampaignOptions opts;
  opts.seed = 5;
  opts.flight = &flight;
  const auto schedule = FaultSchedule::parse("3:burst*2");
  ASSERT_TRUE(schedule.has_value());
  const CampaignResult r = run_campaign(g, *schedule, opts);
  ASSERT_TRUE(r.ok()) << r.failure;
  EXPECT_FALSE(flight.failed());
  EXPECT_FALSE(flight.spans().spans().empty());  // always-on recording
  EXPECT_TRUE(flight.snapshot_words().empty());  // snapshot only on failure
}

TEST(FlightRecorder, EmulationCampaignRecordsLinkFrameSpans) {
  const auto g = graph::make_cycle(6);
  const auto schedule = FaultSchedule::parse("0:loss@0.2/6;4:crash(2,4,reset)");
  ASSERT_TRUE(schedule.has_value());
  obs::FlightRecorder flight(1 << 16);
  EmulationCampaignOptions opts;
  opts.seed = 7;
  opts.flight = &flight;
  const EmulationCampaignResult r = run_emulation_campaign(g, *schedule, opts);
  ASSERT_TRUE(r.ok()) << r.failure;

  std::size_t sends = 0;
  std::size_t delivers = 0;
  std::size_t marks = 0;
  std::size_t waves = 0;
  for (const obs::Span& s : flight.spans().spans()) {
    sends += s.kind == obs::SpanKind::kLinkSend ? 1 : 0;
    delivers += s.kind == obs::SpanKind::kLinkDeliver ? 1 : 0;
    marks += s.kind == obs::SpanKind::kMark ? 1 : 0;
    waves += s.kind == obs::SpanKind::kWave ? 1 : 0;
  }
  EXPECT_GT(sends, 0u);
  EXPECT_GT(delivers, 0u);
  EXPECT_GE(marks, 2u);  // crash + recover of processor 2
  EXPECT_GT(waves, 0u);
}

TEST(FlightRecorder, SoakDumpByteIdenticalAcrossWorkerCounts) {
  const auto g = graph::make_random_connected(10, 8, 3);
  SoakOptions soak;
  soak.master_seed = 17;
  soak.campaigns = 6;
  soak.campaign.tweak_params = break_feedback;

  const SoakReport sequential = run_soak(g, soak, nullptr);
  ASSERT_FALSE(sequential.ok());  // the ablation must fail somewhere

  par::ThreadPool two(2);
  par::ThreadPool eight(8);
  const SoakReport with2 = run_soak(g, soak, &two);
  const SoakReport with8 = run_soak(g, soak, &eight);

  EXPECT_EQ(sequential.first_failure, with2.first_failure);
  EXPECT_EQ(sequential.first_failure, with8.first_failure);
  EXPECT_EQ(sequential.flight.dump_json(), with2.flight.dump_json());
  EXPECT_EQ(sequential.flight.dump_json(), with8.flight.dump_json());
  // The merged dump carries the LOWEST failing campaign's context.
  EXPECT_EQ(sequential.flight.context().shard, *sequential.first_failure);
  EXPECT_TRUE(sequential.flight.failed());
}

TEST(FlightRecorder, SuccessfulSoakRetainsNoPerCampaignRecorders) {
  const auto g = graph::make_cycle(8);
  SoakOptions soak;
  soak.master_seed = 1;
  soak.campaigns = 4;
  const SoakReport report = run_soak(g, soak, nullptr);
  ASSERT_TRUE(report.ok());
  for (const SoakOutcome& o : report.outcomes) {
    EXPECT_EQ(o.flight, nullptr);  // successes drop their recorders
  }
  EXPECT_FALSE(report.flight.failed());
  EXPECT_TRUE(report.flight.spans().spans().empty());
}

}  // namespace
}  // namespace snappif::chaos
