#include "graph/graph.hpp"

#include <gtest/gtest.h>

namespace snappif::graph {
namespace {

TEST(Graph, EmptyGraph) {
  Graph g(0);
  EXPECT_EQ(g.n(), 0u);
  EXPECT_EQ(g.m(), 0u);
}

TEST(Graph, IsolatedVertices) {
  Graph g(3);
  EXPECT_EQ(g.n(), 3u);
  EXPECT_EQ(g.m(), 0u);
  EXPECT_TRUE(g.neighbors(0).empty());
}

TEST(Graph, FromEdgesBasics) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(g.n(), 4u);
  EXPECT_EQ(g.m(), 3u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(1), 2u);
  EXPECT_TRUE(g.has_edge(1, 2));
  EXPECT_TRUE(g.has_edge(2, 1));
  EXPECT_FALSE(g.has_edge(0, 3));
}

TEST(Graph, NeighborsSortedAscending) {
  const Graph g = Graph::from_edges(5, {{2, 4}, {2, 0}, {2, 3}, {2, 1}});
  const auto nbrs = g.neighbors(2);
  ASSERT_EQ(nbrs.size(), 4u);
  for (std::size_t i = 0; i + 1 < nbrs.size(); ++i) {
    EXPECT_LT(nbrs[i], nbrs[i + 1]);
  }
}

TEST(Graph, DuplicateEdgesCollapse) {
  const Graph g = Graph::from_edges(3, {{0, 1}, {1, 0}, {0, 1}});
  EXPECT_EQ(g.m(), 1u);
  EXPECT_EQ(g.degree(0), 1u);
}

TEST(Graph, EdgesCanonicalOrder) {
  const Graph g = Graph::from_edges(4, {{3, 1}, {2, 0}});
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 2u);
  EXPECT_EQ(edges[0], (Edge{0, 2}));
  EXPECT_EQ(edges[1], (Edge{1, 3}));
}

TEST(Graph, EqualityIgnoresInputOrder) {
  const Graph a = Graph::from_edges(3, {{0, 1}, {1, 2}});
  const Graph b = Graph::from_edges(3, {{2, 1}, {1, 0}});
  EXPECT_EQ(a, b);
}

TEST(GraphDeath, RejectsSelfLoop) {
  EXPECT_DEATH((void)Graph::from_edges(2, {{1, 1}}), "self-loops");
}

TEST(GraphDeath, RejectsOutOfRange) {
  EXPECT_DEATH((void)Graph::from_edges(2, {{0, 5}}), "out of range");
}

}  // namespace
}  // namespace snappif::graph
