#include "graph/generators.hpp"

#include <cstdint>

#include <gtest/gtest.h>

#include "graph/properties.hpp"
#include "util/rng.hpp"

namespace snappif::graph {
namespace {

TEST(Generators, Path) {
  const Graph g = make_path(5);
  EXPECT_EQ(g.n(), 5u);
  EXPECT_EQ(g.m(), 4u);
  EXPECT_EQ(diameter(g), 4u);
  EXPECT_EQ(g.degree(0), 1u);
  EXPECT_EQ(g.degree(2), 2u);
}

TEST(Generators, SingleVertexPath) {
  const Graph g = make_path(1);
  EXPECT_EQ(g.n(), 1u);
  EXPECT_EQ(g.m(), 0u);
}

TEST(Generators, Cycle) {
  const Graph g = make_cycle(6);
  EXPECT_EQ(g.m(), 6u);
  EXPECT_EQ(diameter(g), 3u);
  for (NodeId v = 0; v < 6; ++v) {
    EXPECT_EQ(g.degree(v), 2u);
  }
}

TEST(Generators, Star) {
  const Graph g = make_star(7);
  EXPECT_EQ(g.m(), 6u);
  EXPECT_EQ(g.degree(0), 6u);
  EXPECT_EQ(diameter(g), 2u);
}

TEST(Generators, Complete) {
  const Graph g = make_complete(5);
  EXPECT_EQ(g.m(), 10u);
  EXPECT_EQ(diameter(g), 1u);
}

TEST(Generators, CompleteBipartite) {
  const Graph g = make_complete_bipartite(2, 3);
  EXPECT_EQ(g.n(), 5u);
  EXPECT_EQ(g.m(), 6u);
  EXPECT_FALSE(g.has_edge(0, 1));  // same side
  EXPECT_TRUE(g.has_edge(0, 2));
}

TEST(Generators, Grid) {
  const Graph g = make_grid(3, 4);
  EXPECT_EQ(g.n(), 12u);
  EXPECT_EQ(g.m(), 17u);  // 3*3 horizontal + 2*4 vertical
  EXPECT_EQ(diameter(g), 5u);
}

TEST(Generators, Torus) {
  const Graph g = make_torus(3, 3);
  EXPECT_EQ(g.n(), 9u);
  for (NodeId v = 0; v < 9; ++v) {
    EXPECT_EQ(g.degree(v), 4u);
  }
}

TEST(Generators, BinaryTree) {
  const Graph g = make_binary_tree(7);
  EXPECT_EQ(g.m(), 6u);
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.degree(1), 3u);
  EXPECT_EQ(g.degree(6), 1u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, Hypercube) {
  const Graph g = make_hypercube(3);
  EXPECT_EQ(g.n(), 8u);
  EXPECT_EQ(g.m(), 12u);
  EXPECT_EQ(diameter(g), 3u);
}

TEST(Generators, Wheel) {
  const Graph g = make_wheel(6);  // hub + C5
  EXPECT_EQ(g.n(), 6u);
  EXPECT_EQ(g.m(), 10u);
  EXPECT_EQ(g.degree(0), 5u);
  EXPECT_EQ(diameter(g), 2u);
}

TEST(Generators, Lollipop) {
  const Graph g = make_lollipop(4, 3);
  EXPECT_EQ(g.n(), 7u);
  EXPECT_EQ(g.m(), 6u + 3u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(6), 1u);  // tail end
}

TEST(Generators, Caterpillar) {
  const Graph g = make_caterpillar(3, 2);
  EXPECT_EQ(g.n(), 9u);
  EXPECT_EQ(g.m(), 8u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, RandomTreeIsTree) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const Graph g = make_random_tree(17, seed);
    EXPECT_EQ(g.n(), 17u);
    EXPECT_EQ(g.m(), 16u);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(Generators, RandomTreeTinySizes) {
  EXPECT_EQ(make_random_tree(1, 3).n(), 1u);
  EXPECT_EQ(make_random_tree(2, 3).m(), 1u);
  EXPECT_EQ(make_random_tree(3, 3).m(), 2u);
}

TEST(Generators, RandomTreesDiffer) {
  const Graph a = make_random_tree(12, 1);
  const Graph b = make_random_tree(12, 2);
  EXPECT_NE(a, b);
}

TEST(Generators, RandomConnectedHasExtraEdges) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    const Graph g = make_random_connected(15, 10, seed);
    EXPECT_EQ(g.n(), 15u);
    EXPECT_EQ(g.m(), 14u + 10u);
    EXPECT_TRUE(is_connected(g));
  }
}

TEST(Generators, RandomConnectedClampsExtraEdges) {
  // Requesting more extras than the complete graph holds saturates.
  const Graph g = make_random_connected(4, 1000, 5);
  EXPECT_EQ(g.m(), 6u);
}

TEST(Generators, RandomGeneratorsDeterministic) {
  EXPECT_EQ(make_random_connected(10, 5, 77), make_random_connected(10, 5, 77));
  EXPECT_EQ(make_random_tree(10, 77), make_random_tree(10, 77));
}

TEST(Generators, StandardSuiteAllConnected) {
  for (const auto& named : standard_suite(16, 3)) {
    EXPECT_TRUE(is_connected(named.graph)) << named.name;
    EXPECT_GE(named.graph.n(), 4u) << named.name;
  }
}

TEST(Generators, TinySuiteAllConnectedAndTiny) {
  for (const auto& named : tiny_suite()) {
    EXPECT_TRUE(is_connected(named.graph)) << named.name;
    EXPECT_LE(named.graph.n(), 5u) << named.name;
  }
}

/// Order-sensitive fingerprint of the full adjacency structure.
std::uint64_t adjacency_hash(const Graph& g) {
  std::uint64_t h = g.n();
  for (NodeId v = 0; v < g.n(); ++v) {
    for (NodeId w : g.neighbors(v)) {
      h = util::hash_combine(h, (static_cast<std::uint64_t>(v) << 32) | w);
    }
  }
  return h;
}

TEST(Generators, RandomFamiliesMatchGoldenHashes) {
  // Golden adjacency hashes captured from the O(m log m) ordered-set
  // implementation before the O(n + m) rewrite (flat-hash chord dedup +
  // pointer-scan Prüfer decode).  The rewrite promises identical output for
  // every seed; these pins make an accidental distribution change loud.
  struct Golden {
    NodeId n;
    std::uint64_t seed;
    std::uint64_t tree_hash;
    std::uint64_t conn_hash;  // make_random_connected(n, 2 * n, seed)
  };
  const Golden goldens[] = {
      {5, 1, 1511513012558869286ull, 7057738114702617149ull},
      {16, 1, 16582706737572949206ull, 9809543175317231717ull},
      {64, 1, 5208704988072141020ull, 6745130629181379661ull},
      {257, 1, 9360586492341252756ull, 18087762022826354753ull},
      {16, 42, 13545331114345829523ull, 5573041938266741275ull},
      {64, 42, 9431582549123585189ull, 11101510089111207919ull},
      {16, 7, 13059427726677070657ull, 6714126604506512128ull},
      {64, 7, 13546409060340363331ull, 16908003202219809177ull},
      {257, 7, 8585872681013342305ull, 2265921665152746707ull},
      {16, 123, 13730497344401236632ull, 4024623083367217378ull},
      {64, 123, 15072367571801937280ull, 3438826119073391489ull},
      {257, 123, 2797645853309638926ull, 2538824256178441935ull},
      {16, 4331567181889320634ull, 6647397180229461216ull, 5789638404508500728ull},
      {64, 4331567181889320634ull, 10420287356940464298ull, 13536432313320527866ull},
      {257, 4331567181889320634ull, 4813879539588600728ull, 5730982102031211329ull},
  };
  for (const Golden& gold : goldens) {
    EXPECT_EQ(adjacency_hash(make_random_tree(gold.n, gold.seed)),
              gold.tree_hash)
        << "tree n=" << gold.n << " seed=" << gold.seed;
    EXPECT_EQ(adjacency_hash(make_random_connected(gold.n, 2 * gold.n, gold.seed)),
              gold.conn_hash)
        << "connected n=" << gold.n << " seed=" << gold.seed;
  }
}

}  // namespace
}  // namespace snappif::graph
