#include "graph/properties.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace snappif::graph {
namespace {

TEST(Properties, BfsDistancesOnPath) {
  const Graph g = make_path(5);
  const auto dist = bfs_distances(g, 0);
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_EQ(dist[v], v);
  }
}

TEST(Properties, BfsDistancesDisconnected) {
  Graph g(3);  // no edges
  const auto dist = bfs_distances(g, 0);
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[1], kUnreachable);
  EXPECT_EQ(dist[2], kUnreachable);
  EXPECT_FALSE(is_connected(g));
}

TEST(Properties, BfsTreeParentsAndHeight) {
  const Graph g = make_star(5);
  const BfsTree tree = bfs_tree(g, 0);
  EXPECT_EQ(tree.height, 1u);
  for (NodeId v = 1; v < 5; ++v) {
    EXPECT_EQ(tree.parent[v], 0u);
    EXPECT_EQ(tree.depth[v], 1u);
  }
  EXPECT_EQ(tree.parent[0], 0u);
}

TEST(Properties, EccentricityAndDiameter) {
  const Graph g = make_path(7);
  EXPECT_EQ(eccentricity(g, 0), 6u);
  EXPECT_EQ(eccentricity(g, 3), 3u);
  EXPECT_EQ(diameter(g), 6u);
  EXPECT_EQ(diameter(make_complete(6)), 1u);
  EXPECT_EQ(diameter(make_cycle(8)), 4u);
}

TEST(Properties, ChordlessPathChecker) {
  const Graph g = Graph::from_edges(4, {{0, 1}, {1, 2}, {2, 3}, {0, 2}});
  // 0-1-2 has the chord 0-2.
  const std::vector<NodeId> chorded{0, 1, 2};
  EXPECT_FALSE(is_chordless_path(g, chorded));
  // 0-2-3 is chordless.
  const std::vector<NodeId> fine{0, 2, 3};
  EXPECT_TRUE(is_chordless_path(g, fine));
  // Non-adjacent consecutive vertices are not a path.
  const std::vector<NodeId> broken{0, 3};
  EXPECT_FALSE(is_chordless_path(g, broken));
  // Repeats are not elementary.
  const std::vector<NodeId> repeat{0, 1, 0};
  EXPECT_FALSE(is_chordless_path(g, repeat));
  // A single vertex is a trivial chordless path.
  const std::vector<NodeId> single{2};
  EXPECT_TRUE(is_chordless_path(g, single));
}

TEST(Properties, LongestChordlessPathOnPathGraph) {
  const Graph g = make_path(6);
  EXPECT_EQ(longest_chordless_path_from(g, 0), 5u);
  EXPECT_EQ(longest_chordless_path_from(g, 2), 3u);
}

TEST(Properties, LongestChordlessPathOnComplete) {
  // In K_n every 2-edge path has a chord: longest chordless path = 1 edge.
  const Graph g = make_complete(5);
  EXPECT_EQ(longest_chordless_path_from(g, 0), 1u);
}

TEST(Properties, LongestChordlessPathOnCycle) {
  // On C_n the longest induced path from any vertex has n-2 edges.
  const Graph g = make_cycle(6);
  EXPECT_EQ(longest_chordless_path_from(g, 0), 4u);
}

TEST(Properties, SpanningTreeHeightValid) {
  const Graph g = make_path(4);
  const std::vector<NodeId> parent{0, 0, 1, 2};
  const auto h = spanning_tree_height(g, 0, parent);
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(*h, 3u);
}

TEST(Properties, SpanningTreeRejectsCycle) {
  const Graph g = make_cycle(3);
  // 1 and 2 point at each other.
  const std::vector<NodeId> parent{0, 2, 1};
  EXPECT_FALSE(spanning_tree_height(g, 0, parent).has_value());
}

TEST(Properties, SpanningTreeRejectsNonEdgeParent) {
  const Graph g = make_path(4);
  const std::vector<NodeId> parent{0, 0, 0, 2};  // 2's parent 0 is not adjacent
  EXPECT_FALSE(spanning_tree_height(g, 0, parent).has_value());
}

TEST(Properties, SpanningTreeRejectsBadRoot) {
  const Graph g = make_path(3);
  const std::vector<NodeId> parent{1, 0, 1};  // parent[root] != root
  EXPECT_FALSE(spanning_tree_height(g, 0, parent).has_value());
}

TEST(Properties, BfsTreeIsValidSpanningTree) {
  for (const auto& named : standard_suite(14, 5)) {
    const BfsTree tree = bfs_tree(named.graph, 0);
    const auto h = spanning_tree_height(named.graph, 0, tree.parent);
    ASSERT_TRUE(h.has_value()) << named.name;
    EXPECT_EQ(*h, tree.height) << named.name;
  }
}

}  // namespace
}  // namespace snappif::graph
