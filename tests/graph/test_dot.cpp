#include "graph/dot.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace snappif::graph {
namespace {

TEST(Dot, PlainGraph) {
  const Graph g = make_path(3);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("graph G {"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
  EXPECT_NE(dot.find("1 -- 2"), std::string::npos);
  EXPECT_EQ(dot.find("penwidth"), std::string::npos);  // no tree highlighting
}

TEST(Dot, TreeEdgesHighlighted) {
  const Graph g = make_cycle(4);
  // Tree: 1->0, 2->1, 3->0 (parent array; root 0 self-parent).
  const std::vector<NodeId> parent{0, 0, 1, 0};
  const std::string dot = to_dot(g, parent);
  // Tree edges bold, the one non-tree edge (2-3) dashed.
  EXPECT_NE(dot.find("0 -- 1 [penwidth=3]"), std::string::npos);
  EXPECT_NE(dot.find("1 -- 2 [penwidth=3]"), std::string::npos);
  EXPECT_NE(dot.find("0 -- 3 [penwidth=3]"), std::string::npos);
  EXPECT_NE(dot.find("2 -- 3 [style=dashed"), std::string::npos);
}

TEST(Dot, LabelsEmitted) {
  const Graph g = make_path(2);
  const std::string dot = to_dot(g, {}, {"root", "leaf"});
  EXPECT_NE(dot.find("label=\"0\\nroot\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"1\\nleaf\""), std::string::npos);
}

TEST(DotDeath, RejectsWrongSizedInputs) {
  const Graph g = make_path(3);
  EXPECT_DEATH((void)to_dot(g, std::vector<NodeId>{0}), "SNAPPIF_ASSERT");
}

}  // namespace
}  // namespace snappif::graph
