// Large-graph generation smoke: the million-node benchmark sweeps (E22) only
// work if topology construction itself is O(n + m).  The previous
// implementation built random graphs through ordered std::set dedup and a
// min-leaf std::set Prüfer decode — O(m log m), minutes at n = 10^6 under
// sanitizers.  The rewrite (flat-hash chord dedup + pointer-scan decode)
// builds each million-node instance in well under a second on the CI box;
// the budget below is ~30x slack so the test only fires on a complexity
// regression, not on machine noise.
//
// Own suite (GeneratorsLarge) so the sanitizer jobs — where everything runs
// ~10-50x slower and a million-node graph costs real memory — can exclude it
// by name while the plain job keeps it as a gate.
#include <chrono>

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace snappif::graph {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

TEST(GeneratorsLarge, MillionNodeRandomConnectedWithinBudget) {
  constexpr NodeId kN = 1'000'000;
  const auto start = Clock::now();
  const Graph g = make_random_connected(kN, kN, 7);
  const double elapsed = seconds_since(start);
  EXPECT_EQ(g.n(), kN);
  EXPECT_EQ(g.m(), (kN - 1) + kN);
  EXPECT_LT(elapsed, 30.0) << "generation took " << elapsed
                           << "s — complexity regression?";
}

TEST(GeneratorsLarge, MillionNodeTorusWithinBudget) {
  const auto start = Clock::now();
  const Graph g = make_torus(1000, 1000);
  const double elapsed = seconds_since(start);
  EXPECT_EQ(g.n(), 1'000'000u);
  EXPECT_EQ(g.m(), 2'000'000u);
  EXPECT_LT(elapsed, 30.0) << "generation took " << elapsed
                           << "s — complexity regression?";
}

TEST(GeneratorsLarge, MillionNodeRandomTreeConnected) {
  constexpr NodeId kN = 1'000'000;
  const auto start = Clock::now();
  const Graph g = make_random_tree(kN, 11);
  const double elapsed = seconds_since(start);
  EXPECT_EQ(g.n(), kN);
  EXPECT_EQ(g.m(), kN - 1);
  EXPECT_LT(elapsed, 30.0);
  // Connectivity check is O(n + m) (BFS) — cheap enough to keep as the
  // correctness half of the smoke.
  EXPECT_TRUE(is_connected(g));
}

}  // namespace
}  // namespace snappif::graph
