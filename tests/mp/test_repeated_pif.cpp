// Segall-style repeated PIF: correct repeated waves in the fault-free
// model, and the phantom-sequence-number failure that motivates abandoning
// unbounded names in the stabilizing reformulation.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "mp/repeated_pif.hpp"

namespace snappif::mp {
namespace {

TEST(RepeatedPif, ManyWavesAllDeliver) {
  for (const auto& named : graph::standard_suite(10, 31)) {
    RepeatedPifProtocol pif(named.graph, 0);
    Network net(named.graph, pif, Delivery::kRandomChannel, 7);
    net.start();
    for (std::uint64_t wave = 1; wave <= 5; ++wave) {
      pif.start_wave(net, 1000 + wave);
      ASSERT_TRUE(net.run()) << named.name;
      EXPECT_EQ(pif.waves_completed(), wave) << named.name;
      EXPECT_EQ(pif.waves_ok(), wave) << named.name;
      for (graph::NodeId p = 0; p < named.graph.n(); ++p) {
        EXPECT_EQ(pif.payload_of(p), 1000 + wave) << named.name;
      }
    }
  }
}

TEST(RepeatedPif, EachWaveCosts2MMessages) {
  const auto g = graph::make_random_connected(12, 10, 3);
  RepeatedPifProtocol pif(g, 0);
  Network net(g, pif, Delivery::kRandomChannel, 5);
  net.start();
  pif.start_wave(net, 1);
  ASSERT_TRUE(net.run());
  const auto after_one = net.messages_sent();
  EXPECT_EQ(after_one, 2 * g.m());
  pif.start_wave(net, 2);
  ASSERT_TRUE(net.run());
  EXPECT_EQ(net.messages_sent(), 2 * after_one);
}

TEST(RepeatedPif, StaleTokensOfOldWavesIgnored) {
  // Start wave 2 while wave-1 stragglers are still in flight: deliveries of
  // old tokens must not corrupt the new wave (this is what the sequence
  // numbers are FOR).
  const auto g = graph::make_cycle(8);
  RepeatedPifProtocol pif(g, 0);
  Network net(g, pif, Delivery::kRandomChannel, 11);
  net.start();
  pif.start_wave(net, 1);
  // Deliver only half of wave 1...
  for (int i = 0; i < 8; ++i) {
    (void)net.step();
  }
  // ...then preempt with wave 2 (an impatient root; allowed by the model).
  pif.start_wave(net, 2);
  ASSERT_TRUE(net.run());
  // Wave 2 must have delivered everywhere.
  for (graph::NodeId p = 0; p < g.n(); ++p) {
    EXPECT_EQ(pif.highest_seq_seen(p), 2u);
    EXPECT_EQ(pif.payload_of(p), 2u);
  }
}

TEST(RepeatedPif, PhantomFutureSequenceNumberKillsSubsequentWaves) {
  // THE classic vulnerability: a single corrupted in-flight token carrying
  // a future sequence number deafens the network to legitimate waves.
  const auto g = graph::make_cycle(6);
  RepeatedPifProtocol pif(g, 0);
  Network net(g, pif, Delivery::kRandomChannel, 13);
  net.start();
  pif.start_wave(net, 1);
  ASSERT_TRUE(net.run());
  ASSERT_EQ(pif.waves_ok(), 1u);

  // The adversary forges one token with sequence number 1000.
  net.send(2, 3, Message{RepeatedPifProtocol::kToken, 1000, 666});
  ASSERT_TRUE(net.run());  // the phantom wave floods the network

  // Legitimate waves 2, 3, 4 are now ignored by everyone.
  const auto ok_before = pif.waves_ok();
  for (std::uint64_t wave = 2; wave <= 4; ++wave) {
    pif.start_wave(net, wave);
    (void)net.run();
  }
  EXPECT_EQ(pif.waves_ok(), ok_before) << "phantom did not poison the waves?";
  // And the phantom payload squats on the processors.
  EXPECT_EQ(pif.payload_of(4), 666u);
}

TEST(RepeatedPif, SoloRootCompletesTrivially) {
  const graph::Graph g(1);
  RepeatedPifProtocol pif(g, 0);
  Network net(g, pif, Delivery::kRandomChannel, 1);
  net.start();
  pif.start_wave(net, 9);
  ASSERT_TRUE(net.run());
  EXPECT_EQ(pif.waves_completed(), 1u);
  EXPECT_EQ(pif.waves_ok(), 1u);
}

}  // namespace
}  // namespace snappif::mp
