// GuardedEmulation: the paper's PifProtocol running over the lossy
// message-passing substrate via cached neighbor views, including the codec
// roundtrip and crash-recover re-synchronization.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>

#include "graph/generators.hpp"
#include "mp/guarded_emulation.hpp"
#include "pif/codec.hpp"
#include "pif/ghost.hpp"
#include "pif/protocol.hpp"
#include "sim/configuration.hpp"
#include "util/rng.hpp"

namespace snappif::mp {
namespace {

using Emulation = GuardedEmulation<pif::PifProtocol, pif::StateCodec>;

struct Fixture {
  explicit Fixture(graph::Graph graph, std::uint64_t seed,
                   bool arbitrary = false)
      : g(std::move(graph)),
        params(pif::Params::for_graph(g)),
        proto(g, params),
        rng(seed),
        initial(g, proto.initial_state(0)),
        tracker(g, /*root=*/0) {
    for (sim::ProcessorId p = 0; p < g.n(); ++p) {
      initial.state(p) =
          arbitrary ? proto.random_state(p, rng) : proto.initial_state(p);
    }
    emu = std::make_unique<Emulation>(g, proto, pif::StateCodec(g, params),
                                      initial, seed);
    emu->set_apply_hook([this](sim::ProcessorId p, sim::ActionId a,
                               const pif::State& after) {
      tracker.on_apply(p, a, after);
    });
    emu->start();
  }

  /// Rounds until the tracker closes `target` cycles; false on budget burn.
  [[nodiscard]] bool run_until_cycles(std::uint64_t target,
                                      std::uint64_t budget = 20000) {
    while (tracker.cycles_completed() < target) {
      if (emu->rounds() >= budget) {
        return false;
      }
      emu->round();
    }
    return true;
  }

  graph::Graph g;
  pif::Params params;
  pif::PifProtocol proto;
  util::Rng rng;
  sim::Configuration<pif::State> initial;
  pif::GhostTracker tracker;
  std::unique_ptr<Emulation> emu;
};

TEST(Codec, RoundtripsEveryFieldThroughTheWire) {
  const auto g = graph::make_random_connected(9, 5, 2);
  const pif::Params params = pif::Params::for_graph(g);
  const pif::StateCodec codec(g, params);
  const pif::PifProtocol proto(g, params);
  util::Rng rng(3);
  for (sim::ProcessorId p = 0; p < g.n(); ++p) {
    for (int i = 0; i < 50; ++i) {
      const pif::State s = proto.random_state(p, rng);
      const pif::State back = codec.decode(p, codec.encode(s));
      EXPECT_EQ(back.pif, s.pif);
      EXPECT_EQ(back.fok, s.fok);
      EXPECT_EQ(back.count, s.count);
      EXPECT_EQ(back.level, s.level);
      EXPECT_EQ(back.parent, s.parent);
    }
  }
}

TEST(Codec, DecodeClampsGarbageIntoTheDomain) {
  const auto g = graph::make_path(4);
  const pif::Params params = pif::Params::for_graph(g);
  const pif::StateCodec codec(g, params);
  util::Rng rng(4);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t w = rng();
    for (sim::ProcessorId p = 0; p < g.n(); ++p) {
      const pif::State s = codec.decode(p, w);
      EXPECT_GE(s.count, 1u);
      EXPECT_LE(s.count, params.n_upper);
      if (p == params.root) {
        EXPECT_EQ(s.level, 0u);
        EXPECT_EQ(s.parent, pif::kNoParent);
      } else {
        EXPECT_GE(s.level, 1u);
        EXPECT_LE(s.level, params.l_max);
        const auto nbrs = g.neighbors(p);
        EXPECT_TRUE(std::binary_search(nbrs.begin(), nbrs.end(), s.parent));
      }
    }
  }
}

TEST(Emulation, CompletesCleanCyclesOnPerfectChannels) {
  Fixture f(graph::make_random_connected(10, 6, 5), 7);
  ASSERT_TRUE(f.run_until_cycles(3));
  for (const pif::CycleVerdict& v : f.tracker.verdicts()) {
    EXPECT_TRUE(v.ok());
  }
  // Every publish went over the link: the counters saw real traffic.
  EXPECT_GT(f.emu->link().stats().delivered, 0u);
}

TEST(Emulation, CompletesCyclesOverLossyDuplicatingReorderingChannels) {
  Fixture f(graph::make_random_connected(8, 4, 6), 8);
  f.emu->network().set_loss_rate(0.3);
  f.emu->network().set_duplication_rate(0.2);
  f.emu->network().set_reorder_rate(0.4);
  ASSERT_TRUE(f.run_until_cycles(3));
  EXPECT_GT(f.emu->link().stats().retransmits, 0u);
  EXPECT_GT(f.emu->network().messages_dropped(), 0u);
}

TEST(Emulation, GlobalViewTracksAuthoritativeRows) {
  Fixture f(graph::make_path(5), 9);
  for (int i = 0; i < 20; ++i) {
    f.emu->round();
  }
  const auto global = f.emu->global_view();
  for (sim::ProcessorId p = 0; p < f.g.n(); ++p) {
    EXPECT_EQ(global.state(p), f.emu->state(p));
  }
}

TEST(Emulation, ActionGateBlocksTheRootsBAction) {
  Fixture f(graph::make_path(4), 10);
  f.emu->set_action_gate(0, sim::ActionMask{1} << pif::kBAction);
  for (int i = 0; i < 500 && !f.emu->quiescent(); ++i) {
    f.emu->round();
  }
  EXPECT_TRUE(f.emu->quiescent());
  EXPECT_EQ(f.tracker.cycles_completed(), 0u);
  // Releasing the gate lets the broadcast start.
  f.emu->set_action_gate(0, 0);
  ASSERT_TRUE(f.run_until_cycles(1));
  EXPECT_TRUE(f.tracker.verdicts().front().ok());
}

TEST(Emulation, RecoversFromCrashWithResetState) {
  Fixture f(graph::make_random_connected(8, 5, 11), 11);
  ASSERT_TRUE(f.run_until_cycles(1));
  f.emu->crash(3);
  for (int i = 0; i < 10; ++i) {
    f.emu->round();  // silence window: neighbors keep retransmitting into it
  }
  util::Rng rng(12);
  f.emu->recover(3, Emulation::Recovery::kReset, rng);
  const std::uint64_t resets_before = f.emu->link().stats().peer_resets;
  const std::uint64_t cycles = f.tracker.cycles_completed();
  ASSERT_TRUE(f.run_until_cycles(cycles + 3));
  // The rebooted endpoint's fresh incarnation surfaced at every neighbor.
  EXPECT_GT(f.emu->link().stats().peer_resets, resets_before);
}

TEST(Emulation, RecoversFromCrashWithCorruptStateUnderChannelFaults) {
  Fixture f(graph::make_random_connected(9, 6, 13), 13, /*arbitrary=*/true);
  f.emu->network().set_loss_rate(0.2);
  f.emu->network().set_duplication_rate(0.2);
  util::Rng rng(14);
  for (int burst = 0; burst < 2; ++burst) {
    f.emu->crash(static_cast<sim::ProcessorId>(2 + burst));
    for (int i = 0; i < 6; ++i) {
      f.emu->round();
    }
    f.emu->recover(static_cast<sim::ProcessorId>(2 + burst),
                   Emulation::Recovery::kCorrupt, rng);
  }
  f.emu->network().set_loss_rate(0.0);
  f.emu->network().set_duplication_rate(0.0);
  const std::uint64_t cycles = f.tracker.cycles_completed();
  // The protocol stabilizes through the corruption: more cycles close.
  ASSERT_TRUE(f.run_until_cycles(cycles + 3));
}

TEST(Emulation, CrashedProcessorTakesNoActions) {
  Fixture f(graph::make_path(3), 15);
  f.emu->crash(2);
  const std::uint64_t before = f.emu->actions_applied();
  for (int i = 0; i < 30; ++i) {
    f.emu->round();
  }
  // Processors 0 and 1 may act; 2 must not have changed state.
  EXPECT_EQ(f.emu->state(2), f.proto.initial_state(2));
  util::Rng rng(16);
  f.emu->recover(2, Emulation::Recovery::kReset, rng);
  ASSERT_TRUE(f.run_until_cycles(1));
  EXPECT_GT(f.emu->actions_applied(), before);
}

}  // namespace
}  // namespace snappif::mp
