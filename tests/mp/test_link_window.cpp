// Sliding-window ARQ: the window=1 bit-exactness contract against captured
// legacy goldens, exactly-once in-order delivery across the fault matrix at
// window 2 and 8, a full 2^16 sequence-space wrap sweep, deterministic
// frame-level reorder-buffer/cumulative-ack/stale-reack behavior, caller-
// visible backpressure, supersede-behind-the-window, per-edge coalescing,
// and config validation deaths.
#include "mp/link.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/generators.hpp"
#include "mp/impairment.hpp"
#include "mp/network.hpp"

namespace snappif::mp {
namespace {

// --- window=1 golden differential -----------------------------------------
//
// These numbers were captured from the stop-and-wait implementation this
// refactor replaced, on the exact seeded scenarios below: the FNV-1a hash
// folds every delivery upcall (receiver, sender, kind, payload) in order,
// and the stats pin the full wire behavior (RNG draw alignment included —
// one divergent draw shifts every downstream impairment decision).  At
// window=1 the windowed code path MUST reproduce them bit-for-bit; recorded
// chaos/fuzz corpora depend on it.

struct HashClient final : public LinkClient {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  std::uint64_t deliveries = 0;
  const graph::Graph* graph = nullptr;
  std::uint64_t burst = 6;

  void mix(std::uint64_t x) {
    hash ^= x;
    hash *= 0x100000001b3ULL;
  }
  void on_link_start(ProcessorId p, LinkProtocol& link) override {
    for (const ProcessorId q : graph->neighbors(p)) {
      for (std::uint64_t i = 0; i < burst; ++i) {
        link.send(p, q, 5, p * 1000 + q * 10 + i);
      }
    }
  }
  void on_link_deliver(ProcessorId p, ProcessorId from, std::uint8_t kind,
                       std::uint64_t payload, LinkProtocol&) override {
    ++deliveries;
    mix(p);
    mix(from);
    mix(kind);
    mix(payload);
  }
  void on_link_peer_reset(ProcessorId, ProcessorId, LinkProtocol&) override {}
};

struct GoldenRun {
  std::uint64_t hash = 0;
  std::uint64_t deliveries = 0;
  LinkStats link;
  TransportStats transport;
};

GoldenRun run_legacy_scenario(const graph::Graph& g, LinkConfig cfg,
                              std::uint64_t burst, double loss, double dup,
                              double reorder, double delay_rate,
                              std::uint32_t delay_steps, bool latest_phase,
                              std::uint64_t steps) {
  HashClient client;
  client.graph = &g;
  client.burst = burst;
  LinkProtocol link(g, client, cfg, 7);
  ImpairmentShim shim(link, g.n(), 7 ^ 0xabcdef12345ULL);
  Network net(g, shim, Delivery::kSynchronous, 8);
  shim.bind(net);
  shim.set_loss_rate(loss);
  shim.set_duplication_rate(dup);
  shim.set_reorder_rate(reorder);
  shim.set_delay(delay_rate, delay_steps);
  shim.start();
  for (std::uint64_t s = 0; s < steps; ++s) {
    shim.step();
    link.tick();
    if (latest_phase && s >= 50 && s < 80) {
      for (ProcessorId p = 0; p < g.n(); ++p) {
        for (const ProcessorId q : g.neighbors(p)) {
          link.send_latest(p, q, 9, 0xA000 + s);
        }
      }
    }
  }
  return GoldenRun{client.hash, client.deliveries, link.stats(),
                   shim.transport_stats()};
}

TEST(LinkWindow, WindowOneIsBitExactWithLegacyStopAndWaitGoldenA) {
  // Scenario A: fixed-backoff RTO, every fault class armed, a send_latest
  // supersede phase mid-run.
  const auto g = graph::make_random_connected(6, 10, 101);
  const GoldenRun r =
      run_legacy_scenario(g, LinkConfig{}, 6, 0.2, 0.1, 0.1, 0.1, 2,
                          /*latest_phase=*/true, 400);
  EXPECT_EQ(r.hash, 0xaa3d477a545e673dULL);
  EXPECT_EQ(r.deliveries, 477u);
  EXPECT_EQ(r.link.data_sent, 477u);
  EXPECT_EQ(r.link.retransmits, 260u);
  EXPECT_EQ(r.link.timer_fires, 260u);
  EXPECT_EQ(r.link.acks_sent, 658u);
  EXPECT_EQ(r.link.spurious_acks, 121u);
  EXPECT_EQ(r.link.delivered, 477u);
  EXPECT_EQ(r.link.duplicates_discarded, 181u);
  EXPECT_EQ(r.link.stale_discarded, 2u);
  EXPECT_EQ(r.link.junk_discarded, 0u);
  EXPECT_EQ(r.link.superseded, 603u);
  EXPECT_EQ(r.link.peer_resets, 30u);
  EXPECT_EQ(r.link.rtt_samples, 0u);
  EXPECT_EQ(r.link.karn_suppressed, 0u);
  EXPECT_EQ(r.transport.sent, 1395u);
  EXPECT_EQ(r.transport.delivered, 1258u);
  EXPECT_EQ(r.transport.dropped, 289u);
  EXPECT_EQ(r.transport.duplicated, 152u);
  EXPECT_EQ(r.transport.reordered, 107u);
  EXPECT_EQ(r.transport.delayed, 140u);
  // The windowed machinery must not have engaged at all.
  EXPECT_EQ(r.link.ooo_buffered, 0u);
  EXPECT_EQ(r.link.ooo_delivered, 0u);
  EXPECT_EQ(r.link.backpressured, 0u);
  EXPECT_EQ(r.link.coalesced_batches, 0u);
}

TEST(LinkWindow, WindowOneIsBitExactWithLegacyStopAndWaitGoldenB) {
  // Scenario B: adaptive RTO at 25% loss — pins the RFC 6298 estimator and
  // Karn bookkeeping draw-for-draw.
  const auto g = graph::make_random_connected(8, 16, 7);
  LinkConfig cfg;
  cfg.rto_mode = RtoMode::kAdaptive;
  const GoldenRun r = run_legacy_scenario(g, cfg, 4, 0.25, 0.0, 0.0, 0.0, 0,
                                          /*latest_phase=*/false, 300);
  EXPECT_EQ(r.hash, 0x5ea0bd4c299be7b5ULL);
  EXPECT_EQ(r.deliveries, 184u);
  EXPECT_EQ(r.link.data_sent, 184u);
  EXPECT_EQ(r.link.retransmits, 166u);
  EXPECT_EQ(r.link.acks_sent, 261u);
  EXPECT_EQ(r.link.spurious_acks, 0u);
  EXPECT_EQ(r.link.duplicates_discarded, 77u);
  EXPECT_EQ(r.link.stale_discarded, 0u);
  EXPECT_EQ(r.link.superseded, 0u);
  EXPECT_EQ(r.link.peer_resets, 46u);
  EXPECT_EQ(r.link.rtt_samples, 91u);
  EXPECT_EQ(r.link.karn_suppressed, 93u);
  EXPECT_EQ(r.transport.sent, 611u);
  EXPECT_EQ(r.transport.delivered, 445u);
  EXPECT_EQ(r.transport.dropped, 166u);
}

// --- exactly-once in-order under faults, windowed --------------------------

// Gapless per-directed-edge counters, checked on every delivery: the
// windowed analogue of the serve layer's stream probe, without the wave
// protocol on top.
struct CounterClient final : public LinkClient {
  const graph::Graph* g = nullptr;
  std::vector<std::size_t> base;
  std::vector<std::uint64_t> next_rx;
  std::uint64_t delivered_total = 0;
  bool ok = true;

  void init(const graph::Graph& gg) {
    g = &gg;
    base.assign(gg.n() + 1, 0);
    for (ProcessorId p = 0; p < gg.n(); ++p) {
      base[p + 1] = base[p] + gg.degree(p);
    }
    next_rx.assign(base[gg.n()], 0);
  }
  std::size_t eidx(ProcessorId u, ProcessorId v) const {
    const auto nbrs = g->neighbors(u);
    const auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
    return base[u] + static_cast<std::size_t>(it - nbrs.begin());
  }
  void on_link_start(ProcessorId, LinkProtocol&) override {}
  void on_link_deliver(ProcessorId p, ProcessorId from, std::uint8_t kind,
                       std::uint64_t payload, LinkProtocol&) override {
    const std::size_t e = eidx(p, from);
    EXPECT_EQ(kind, 5u);
    if (payload != next_rx[e]) {
      ok = false;
    }
    EXPECT_EQ(payload, next_rx[e]) << "edge " << from << "->" << p;
    ++next_rx[e];
    ++delivered_total;
  }
  void on_link_peer_reset(ProcessorId, ProcessorId, LinkProtocol&) override {}
};

// Drives `per_edge` counters over every directed edge of `g` through an
// impaired loopback until all are delivered; returns the final link stats.
LinkStats drive_counters(const graph::Graph& g, LinkConfig cfg,
                         std::uint64_t per_edge, double loss, double dup,
                         double reorder, std::uint64_t seed,
                         std::uint64_t max_steps) {
  CounterClient client;
  client.init(g);
  LinkProtocol link(g, client, cfg, seed);
  ImpairmentShim shim(link, g.n(), seed ^ 0x5bf03635ULL);
  Network net(g, shim, Delivery::kSynchronous, seed + 1);
  shim.bind(net);
  shim.set_loss_rate(loss);
  shim.set_duplication_rate(dup);
  shim.set_reorder_rate(reorder);
  shim.start();
  const std::size_t edges = client.base[g.n()];
  std::vector<std::uint64_t> next_tx(edges, 0);
  const std::uint64_t want = per_edge * edges;
  std::uint64_t steps = 0;
  while (client.delivered_total < want && client.ok && steps < max_steps) {
    for (ProcessorId p = 0; p < g.n(); ++p) {
      const auto nbrs = g.neighbors(p);
      for (std::size_t i = 0; i < nbrs.size(); ++i) {
        const std::size_t e = client.base[p] + i;
        while (next_tx[e] < per_edge &&
               link.try_send(p, nbrs[i], 5, next_tx[e])) {
          ++next_tx[e];
        }
      }
    }
    shim.step();
    link.tick();
    link.flush();
    ++steps;
  }
  EXPECT_TRUE(client.ok);
  EXPECT_EQ(client.delivered_total, want)
      << "stalled after " << steps << " steps";
  return link.stats();
}

TEST(LinkWindow, ExactlyOnceInOrderAcrossTheFaultMatrixAtWindows2And8) {
  const auto g = graph::make_random_connected(6, 10, 3);
  struct Faults {
    double loss, dup, reorder;
  };
  const Faults matrix[] = {
      {0.25, 0.0, 0.0}, {0.0, 0.2, 0.0}, {0.0, 0.0, 0.2}, {0.2, 0.1, 0.1}};
  for (const std::size_t window : {std::size_t{2}, std::size_t{8}}) {
    std::uint64_t seed = 1000 + window;
    for (const Faults& f : matrix) {
      LinkConfig cfg;
      cfg.window = window;
      cfg.queue_capacity = 2 * window;
      const LinkStats l =
          drive_counters(g, cfg, 300, f.loss, f.dup, f.reorder, ++seed,
                         /*max_steps=*/200000);
      if (f.loss > 0) {
        EXPECT_GT(l.retransmits, 0u) << "window=" << window;
      }
    }
  }
}

TEST(LinkWindow, CoalescedWindowedPathSurvivesTheSameFaultMatrix) {
  // Same matrix with per-flush batching on: an armed shim dissolves batches
  // into per-frame faults, so coalescing must not change the contract.
  const auto g = graph::make_random_connected(6, 10, 3);
  LinkConfig cfg;
  cfg.window = 8;
  cfg.queue_capacity = 16;
  cfg.coalesce = true;
  const LinkStats l = drive_counters(g, cfg, 300, 0.2, 0.1, 0.1, 2024,
                                     /*max_steps=*/200000);
  EXPECT_GT(l.coalesced_batches, 0u);
  EXPECT_GT(l.coalesced_frames, l.coalesced_batches);
}

TEST(LinkWindow, FullSequenceSpaceSweepWrapsCleanly) {
  // 70000 frames per directed edge > 2^16: every sequence number is used at
  // least once and the 16-bit counter wraps, under loss + duplication +
  // reordering, at window 8.  RFC-1982 comparisons must stay coherent
  // through the wrap or the gapless counters break.
  const auto g = graph::make_path(2);
  LinkConfig cfg;
  cfg.window = 8;
  cfg.queue_capacity = 16;
  cfg.rto_mode = RtoMode::kAdaptive;
  drive_counters(g, cfg, 70000, 0.1, 0.05, 0.05, 99,
                 /*max_steps=*/2000000);
}

// --- deterministic frame-level behavior ------------------------------------

struct CaptureMailer final : public Mailer {
  struct Sent {
    ProcessorId from, to;
    Message m;
  };
  std::vector<Sent> sent;
  std::vector<std::size_t> batch_sizes;
  void send(ProcessorId from, ProcessorId to, const Message& m) override {
    sent.push_back(Sent{from, to, m});
  }
  void send_batch(ProcessorId from, ProcessorId to, const Message* frames,
                  std::size_t count) override {
    batch_sizes.push_back(count);
    for (std::size_t i = 0; i < count; ++i) {
      send(from, to, frames[i]);
    }
  }
};

struct RecordClient final : public LinkClient {
  std::vector<std::uint64_t> payloads;
  std::uint64_t resets = 0;
  void on_link_start(ProcessorId, LinkProtocol&) override {}
  void on_link_deliver(ProcessorId, ProcessorId, std::uint8_t,
                       std::uint64_t payload, LinkProtocol&) override {
    payloads.push_back(payload);
  }
  void on_link_peer_reset(ProcessorId, ProcessorId, LinkProtocol&) override {
    ++resets;
  }
};

constexpr std::uint64_t data_header(std::uint16_t inc, std::uint16_t seq,
                                    std::uint8_t kind) {
  return static_cast<std::uint64_t>(inc) |
         (static_cast<std::uint64_t>(seq) << 16) |
         (static_cast<std::uint64_t>(kind) << 32);
}
constexpr std::uint16_t header_inc(std::uint64_t a) {
  return static_cast<std::uint16_t>(a);
}
constexpr std::uint16_t header_seq(std::uint64_t a) {
  return static_cast<std::uint16_t>(a >> 16);
}

TEST(LinkWindow, OutOfOrderFramesBufferSilentlyAndDrainWithOneCumulativeAck) {
  const auto g = graph::make_path(2);
  RecordClient client;
  LinkConfig cfg;
  cfg.window = 4;
  CaptureMailer mailer;
  LinkProtocol link(g, client, cfg, 11);
  link.on_start(0, mailer);
  link.on_start(1, mailer);
  const std::uint8_t dk = cfg.data_kind;
  // Frame 0 establishes the incarnation baseline (first contact resync).
  link.on_message(0, 1, Message{dk, data_header(7, 0, 5), 100}, mailer);
  ASSERT_EQ(mailer.sent.size(), 1u);  // ack 0
  EXPECT_EQ(header_seq(mailer.sent[0].m.a), 0u);
  // Frames 2 and 3 arrive ahead of the hole at seq 1: parked, and each
  // re-acks the in-order point — the duplicate cumulative acks that feed
  // the sender's fast-retransmit counter.
  link.on_message(0, 1, Message{dk, data_header(7, 2, 5), 102}, mailer);
  link.on_message(0, 1, Message{dk, data_header(7, 3, 5), 103}, mailer);
  ASSERT_EQ(mailer.sent.size(), 3u);
  EXPECT_EQ(header_seq(mailer.sent[1].m.a), 0u);
  EXPECT_EQ(header_seq(mailer.sent[2].m.a), 0u);
  EXPECT_EQ(link.stats().ooo_buffered, 2u);
  EXPECT_EQ(client.payloads, (std::vector<std::uint64_t>{100}));
  // A duplicate of a parked frame is recognized as such (and still re-acks).
  link.on_message(0, 1, Message{dk, data_header(7, 2, 5), 102}, mailer);
  EXPECT_EQ(link.stats().duplicates_discarded, 1u);
  ASSERT_EQ(mailer.sent.size(), 4u);
  // Seq 1 fills the hole: ONE cumulative ack for 3, then in-order delivery
  // of 1, 2, 3.
  link.on_message(0, 1, Message{dk, data_header(7, 1, 5), 101}, mailer);
  ASSERT_EQ(mailer.sent.size(), 5u);
  EXPECT_EQ(mailer.sent[4].m.kind, cfg.ack_kind);
  EXPECT_EQ(header_seq(mailer.sent[4].m.a), 3u);
  EXPECT_EQ(client.payloads,
            (std::vector<std::uint64_t>{100, 101, 102, 103}));
  EXPECT_EQ(link.stats().ooo_delivered, 2u);
}

TEST(LinkWindow, ThreeDuplicateAcksFastRetransmitTheHole) {
  const auto g = graph::make_path(2);
  RecordClient client;
  LinkConfig cfg;
  cfg.window = 8;
  cfg.queue_capacity = 8;
  CaptureMailer mailer;
  LinkProtocol link(g, client, cfg, 11);
  link.on_start(0, mailer);
  link.on_start(1, mailer);
  // Open the window: frame 0 flies, its ack widens the window to 8.
  ASSERT_TRUE(link.try_send(0, 1, 5, 400));
  const std::uint16_t inc = header_inc(mailer.sent[0].m.a);
  link.on_message(0, 1, Message{cfg.ack_kind, data_header(inc, 0, 0), 0},
                  mailer);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(link.try_send(0, 1, 5, 401 + i));  // seqs 1..4 in flight
  }
  const std::size_t wire = mailer.sent.size();
  // The receiver keeps re-acking seq 0: frames 2..4 arrived, frame 1 did
  // not.  Two dup acks are tolerated as reordering; the third re-drives
  // the hole immediately.
  link.on_message(0, 1, Message{cfg.ack_kind, data_header(inc, 0, 0), 0},
                  mailer);
  link.on_message(0, 1, Message{cfg.ack_kind, data_header(inc, 0, 0), 0},
                  mailer);
  EXPECT_EQ(mailer.sent.size(), wire);
  EXPECT_EQ(link.stats().fast_retransmits, 0u);
  link.on_message(0, 1, Message{cfg.ack_kind, data_header(inc, 0, 0), 0},
                  mailer);
  ASSERT_EQ(mailer.sent.size(), wire + 1);
  EXPECT_EQ(mailer.sent[wire].m.kind, cfg.data_kind);
  EXPECT_EQ(header_seq(mailer.sent[wire].m.a), 1u);
  EXPECT_EQ(mailer.sent[wire].m.b, 401u);
  EXPECT_EQ(link.stats().fast_retransmits, 1u);
  EXPECT_EQ(link.stats().retransmits, 1u);
  EXPECT_EQ(link.stats().timer_fires, 0u);
  // None of the dup acks counted as spurious — they carried information.
  EXPECT_EQ(link.stats().spurious_acks, 0u);
  // The cumulative ack for the refilled run retires everything at once.
  link.on_message(0, 1, Message{cfg.ack_kind, data_header(inc, 4, 0), 0},
                  mailer);
  EXPECT_TRUE(link.idle());
}

TEST(LinkWindow, FramesBeyondTheReceiveWindowAreDropped) {
  const auto g = graph::make_path(2);
  RecordClient client;
  LinkConfig cfg;
  cfg.window = 4;
  CaptureMailer mailer;
  LinkProtocol link(g, client, cfg, 11);
  link.on_start(0, mailer);
  link.on_start(1, mailer);
  link.on_message(0, 1, Message{cfg.data_kind, data_header(7, 0, 5), 100},
                  mailer);
  // Seq 9 is 9 ahead of the in-order point — a live sender bounded by its
  // un-acked base can never be there; only wire garbage is.  No ack, no
  // buffering, no delivery.
  link.on_message(0, 1, Message{cfg.data_kind, data_header(7, 9, 5), 900},
                  mailer);
  EXPECT_EQ(link.stats().ooo_dropped, 1u);
  EXPECT_EQ(link.stats().ooo_buffered, 0u);
  EXPECT_EQ(mailer.sent.size(), 1u);
  EXPECT_EQ(client.payloads, (std::vector<std::uint64_t>{100}));
}

TEST(LinkWindow, StaleFrameIsReackedCumulativelyAtWindowedMode) {
  const auto g = graph::make_path(2);
  RecordClient client;
  LinkConfig cfg;
  cfg.window = 4;
  CaptureMailer mailer;
  LinkProtocol link(g, client, cfg, 11);
  link.on_start(0, mailer);
  link.on_start(1, mailer);
  const std::uint8_t dk = cfg.data_kind;
  link.on_message(0, 1, Message{dk, data_header(7, 0, 5), 100}, mailer);
  link.on_message(0, 1, Message{dk, data_header(7, 1, 5), 101}, mailer);
  ASSERT_EQ(mailer.sent.size(), 2u);
  // A stale copy of seq 0 overtaken by newer traffic: re-ack the in-order
  // point (the ack that advanced us past it may have been lost; one
  // cumulative ack retires the sender's whole prefix).
  link.on_message(0, 1, Message{dk, data_header(7, 0, 5), 100}, mailer);
  EXPECT_EQ(link.stats().stale_discarded, 1u);
  ASSERT_EQ(mailer.sent.size(), 3u);
  EXPECT_EQ(mailer.sent[2].m.kind, cfg.ack_kind);
  EXPECT_EQ(header_seq(mailer.sent[2].m.a), 1u);
  EXPECT_EQ(client.payloads, (std::vector<std::uint64_t>{100, 101}));
}

TEST(LinkWindow, CumulativeAckRetiresTheWholeWindowAndRefillsFromTheRing) {
  const auto g = graph::make_path(2);
  RecordClient client;
  LinkConfig cfg;
  cfg.window = 4;
  cfg.queue_capacity = 8;
  CaptureMailer mailer;
  LinkProtocol link(g, client, cfg, 11);
  link.on_start(0, mailer);
  link.on_start(1, mailer);
  // A fresh incarnation flies its first frame solo (the receiver's resync
  // baseline must be exact); the other four sends park in the ring.
  for (std::uint64_t i = 0; i < 5; ++i) {
    ASSERT_TRUE(link.try_send(0, 1, 5, 200 + i));
  }
  ASSERT_EQ(mailer.sent.size(), 1u);
  const std::uint16_t inc = header_inc(mailer.sent[0].m.a);
  EXPECT_EQ(header_seq(mailer.sent[0].m.a), 0u);
  // The first valid ack opens the window: the ring refills it to 4 deep.
  link.on_message(0, 1, Message{cfg.ack_kind, data_header(inc, 0, 0), 0},
                  mailer);
  ASSERT_EQ(mailer.sent.size(), 5u);
  for (std::size_t i = 1; i < 5; ++i) {
    EXPECT_EQ(header_seq(mailer.sent[i].m.a), i);
  }
  EXPECT_FALSE(link.idle());
  // One cumulative ack of seq 4 retires all four in-flight frames at once.
  link.on_message(0, 1, Message{cfg.ack_kind, data_header(inc, 4, 0), 0},
                  mailer);
  EXPECT_TRUE(link.idle());
  EXPECT_EQ(link.stats().spurious_acks, 0u);
  // A second copy of that ack is now spurious, exactly like the legacy
  // exact-match duplicate ack was.
  link.on_message(0, 1, Message{cfg.ack_kind, data_header(inc, 4, 0), 0},
                  mailer);
  EXPECT_EQ(link.stats().spurious_acks, 1u);
}

TEST(LinkWindow, TrySendSurfacesBackpressureInsteadOfAsserting) {
  const auto g = graph::make_path(2);
  RecordClient client;
  LinkConfig cfg;
  cfg.window = 2;
  cfg.queue_capacity = 2;
  CaptureMailer mailer;
  LinkProtocol link(g, client, cfg, 11);
  link.on_start(0, mailer);
  link.on_start(1, mailer);
  // Unopened window flies one frame; two more fill the ring.
  EXPECT_TRUE(link.try_send(0, 1, 5, 1));
  EXPECT_TRUE(link.can_send(0, 1));
  EXPECT_TRUE(link.try_send(0, 1, 5, 2));
  EXPECT_TRUE(link.try_send(0, 1, 5, 3));
  // Window full + ring full: refused, counted, NOT crashed.
  EXPECT_FALSE(link.can_send(0, 1));
  EXPECT_FALSE(link.try_send(0, 1, 5, 4));
  EXPECT_FALSE(link.try_send(0, 1, 5, 5));
  EXPECT_EQ(link.stats().backpressured, 2u);
  // The other direction is untouched.
  EXPECT_TRUE(link.can_send(1, 0));
  // Acks drain the edge and try_send works again.
  const std::uint16_t inc = header_inc(mailer.sent[0].m.a);
  link.on_message(0, 1, Message{cfg.ack_kind, data_header(inc, 0, 0), 0},
                  mailer);
  EXPECT_TRUE(link.can_send(0, 1));
  EXPECT_TRUE(link.try_send(0, 1, 5, 4));
}

TEST(LinkWindow, SendLatestSupersedesBehindTheOpenWindow) {
  const auto g = graph::make_path(2);
  RecordClient client;
  LinkConfig cfg;
  cfg.window = 2;
  cfg.queue_capacity = 4;
  CaptureMailer mailer;
  LinkProtocol link(g, client, cfg, 11);
  link.on_start(0, mailer);
  link.on_start(1, mailer);
  link.send_latest(0, 1, 9, 50);  // flies (seq 0)
  link.send_latest(0, 1, 9, 51);  // parks (window unopened)
  link.send_latest(0, 1, 9, 52);  // supersedes 51
  link.send_latest(0, 1, 9, 53);  // supersedes 52
  EXPECT_EQ(link.stats().superseded, 2u);
  const std::uint16_t inc = header_inc(mailer.sent[0].m.a);
  link.on_message(0, 1, Message{cfg.ack_kind, data_header(inc, 0, 0), 0},
                  mailer);
  // Only the latest snapshot was worth the bandwidth.
  ASSERT_EQ(mailer.sent.size(), 2u);
  EXPECT_EQ(mailer.sent[1].m.b, 53u);
}

TEST(LinkWindow, CoalescingStagesFramesAndFlushesOneBatchPerEdge) {
  const auto g = graph::make_path(2);
  RecordClient client;
  LinkConfig cfg;
  cfg.window = 8;
  cfg.queue_capacity = 8;
  cfg.coalesce = true;
  CaptureMailer mailer;
  LinkProtocol link(g, client, cfg, 11);
  link.on_start(0, mailer);
  link.on_start(1, mailer);
  // Nothing hits the wire until flush().
  ASSERT_TRUE(link.try_send(0, 1, 5, 300));
  EXPECT_EQ(mailer.sent.size(), 0u);
  link.flush();
  ASSERT_EQ(mailer.batch_sizes, (std::vector<std::size_t>{1}));
  const std::uint16_t inc = header_inc(mailer.sent[0].m.a);
  link.on_message(0, 1, Message{cfg.ack_kind, data_header(inc, 0, 0), 0},
                  mailer);
  link.flush();  // the ack emission path is staged too — nothing pending
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(link.try_send(0, 1, 5, 301 + i));
  }
  EXPECT_EQ(mailer.batch_sizes.size(), 1u);
  link.flush();
  // One send_batch for the whole 4-frame burst on this edge.
  ASSERT_EQ(mailer.batch_sizes, (std::vector<std::size_t>{1, 4}));
  EXPECT_EQ(link.stats().coalesced_batches, 2u);
  EXPECT_EQ(link.stats().coalesced_frames, 5u);
  // Repeated flushes with nothing staged are free.
  link.flush();
  EXPECT_EQ(link.stats().coalesced_batches, 2u);
}

// --- config validation ------------------------------------------------------

TEST(LinkWindow, ValidateNamesTheBrokenWindowKnob) {
  {
    LinkConfig cfg;
    cfg.window = 0;
    const auto objection = validate(cfg);
    ASSERT_TRUE(objection.has_value());
    EXPECT_NE(objection->find("window must be >= 1"), std::string::npos);
  }
  {
    LinkConfig cfg;
    cfg.window = 9;
    cfg.queue_capacity = 8;
    const auto objection = validate(cfg);
    ASSERT_TRUE(objection.has_value());
    EXPECT_NE(objection->find("window must be <= queue_capacity"),
              std::string::npos);
  }
  {
    LinkConfig cfg;
    cfg.rto_mode = RtoMode::kAdaptive;
    cfg.rto_min = 20;
    cfg.rto_cap = 16;
    const auto objection = validate(cfg);
    ASSERT_TRUE(objection.has_value());
    EXPECT_NE(objection->find("rto_min must be <= rto_cap"),
              std::string::npos);
  }
  {
    // The adaptive floor may exceed rto_initial (the estimator, not the
    // initial value, is what gets clamped) — this is valid.
    LinkConfig cfg;
    cfg.rto_mode = RtoMode::kAdaptive;
    cfg.rto_initial = 2;
    cfg.rto_min = 4;
    cfg.rto_cap = 16;
    EXPECT_FALSE(validate(cfg).has_value());
  }
}

TEST(LinkWindowDeath, ConstructionRejectsZeroWindow) {
  const auto g = graph::make_path(2);
  RecordClient client;
  LinkConfig cfg;
  cfg.window = 0;
  EXPECT_DEATH(LinkProtocol(g, client, cfg, 1), "window must be >= 1");
}

TEST(LinkWindowDeath, ConstructionRejectsWindowWiderThanTheRing) {
  const auto g = graph::make_path(2);
  RecordClient client;
  LinkConfig cfg;
  cfg.window = 16;
  cfg.queue_capacity = 8;
  EXPECT_DEATH(LinkProtocol(g, client, cfg, 1),
               "window must be <= queue_capacity");
}

TEST(LinkWindowDeath, ConstructionRejectsInvertedAdaptiveClamp) {
  const auto g = graph::make_path(2);
  RecordClient client;
  LinkConfig cfg;
  cfg.rto_mode = RtoMode::kAdaptive;
  cfg.rto_min = 32;
  cfg.rto_cap = 16;
  EXPECT_DEATH(LinkProtocol(g, client, cfg, 1),
               "rto_min must be <= rto_cap");
}

}  // namespace
}  // namespace snappif::mp
