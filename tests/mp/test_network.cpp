// Message-passing substrate: channel FIFO-ness, delivery accounting,
// synchronous rounds, loss injection.
#include <gtest/gtest.h>

#include <limits>

#include "graph/generators.hpp"
#include "mp/network.hpp"

namespace snappif::mp {
namespace {

/// Records every delivery; replies once to the first ping.
class Recorder final : public IMpProtocol {
 public:
  struct Event {
    ProcessorId to;
    ProcessorId from;
    Message message;
  };

  void on_start(ProcessorId, Mailer&) override {}
  void on_message(ProcessorId p, ProcessorId from, const Message& m,
                  Mailer&) override {
    events.push_back({p, from, m});
  }

  std::vector<Event> events;
};

TEST(MpNetwork, FifoWithinChannel) {
  const auto g = graph::make_path(2);
  Recorder recorder;
  Network net(g, recorder, Delivery::kRandomChannel, 1);
  net.start();
  net.send(0, 1, Message{1, 10, 0});
  net.send(0, 1, Message{1, 20, 0});
  net.send(0, 1, Message{1, 30, 0});
  ASSERT_TRUE(net.run());
  ASSERT_EQ(recorder.events.size(), 3u);
  EXPECT_EQ(recorder.events[0].message.a, 10u);
  EXPECT_EQ(recorder.events[1].message.a, 20u);
  EXPECT_EQ(recorder.events[2].message.a, 30u);
}

TEST(MpNetwork, CrossChannelOrderIsAdversarial) {
  // Messages on different channels may interleave in any order; over many
  // seeds both orders occur.
  const auto g = graph::make_path(3);  // 1 receives from 0 and 2
  bool saw_0_first = false, saw_2_first = false;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    Recorder recorder;
    Network net(g, recorder, Delivery::kRandomChannel, seed);
    net.start();
    net.send(0, 1, Message{1, 0, 0});
    net.send(2, 1, Message{1, 2, 0});
    ASSERT_TRUE(net.run());
    ASSERT_EQ(recorder.events.size(), 2u);
    (recorder.events[0].from == 0 ? saw_0_first : saw_2_first) = true;
  }
  EXPECT_TRUE(saw_0_first);
  EXPECT_TRUE(saw_2_first);
}

TEST(MpNetwork, CountsSentDeliveredInFlight) {
  const auto g = graph::make_path(2);
  Recorder recorder;
  Network net(g, recorder, Delivery::kRandomChannel, 2);
  net.start();
  net.send(0, 1, Message{});
  net.send(1, 0, Message{});
  EXPECT_EQ(net.messages_sent(), 2u);
  EXPECT_EQ(net.in_flight(), 2u);
  EXPECT_TRUE(net.step());
  EXPECT_EQ(net.messages_delivered(), 1u);
  EXPECT_EQ(net.in_flight(), 1u);
  ASSERT_TRUE(net.run());
  EXPECT_EQ(net.messages_delivered(), 2u);
  EXPECT_FALSE(net.step());  // quiescent
}

TEST(MpNetwork, SynchronousRoundsBatchInFlight) {
  // In synchronous mode, replies sent during round k deliver in round k+1.
  class PingPong final : public IMpProtocol {
   public:
    void on_start(ProcessorId p, Mailer& mailer) override {
      if (p == 0) {
        mailer.send(0, 1, Message{1, 3, 0});  // 3 bounces left
      }
    }
    void on_message(ProcessorId p, ProcessorId from, const Message& m,
                    Mailer& mailer) override {
      if (m.a > 0) {
        mailer.send(p, from, Message{1, m.a - 1, 0});
      }
    }
  };
  const auto g = graph::make_path(2);
  PingPong protocol;
  Network net(g, protocol, Delivery::kSynchronous, 3);
  ASSERT_TRUE(net.run());
  EXPECT_EQ(net.rounds(), 4u);  // 3,2,1,0 bounce deliveries
  EXPECT_EQ(net.messages_delivered(), 4u);
}

TEST(MpNetwork, LossDropsMessages) {
  const auto g = graph::make_path(2);
  Recorder recorder;
  Network net(g, recorder, Delivery::kRandomChannel, 4);
  net.set_loss_rate(1.0);
  net.start();
  net.send(0, 1, Message{});
  EXPECT_EQ(net.messages_dropped(), 1u);
  EXPECT_EQ(net.in_flight(), 0u);
  EXPECT_TRUE(net.run());  // trivially quiescent
  EXPECT_TRUE(recorder.events.empty());
}

TEST(MpNetwork, DuplicationEnqueuesASecondCopy) {
  const auto g = graph::make_path(2);
  Recorder recorder;
  Network net(g, recorder, Delivery::kRandomChannel, 7);
  net.set_duplication_rate(1.0);
  net.start();
  net.send(0, 1, Message{1, 42, 0});
  EXPECT_EQ(net.messages_sent(), 1u);  // sent counts logical sends
  EXPECT_EQ(net.messages_duplicated(), 1u);
  EXPECT_EQ(net.in_flight(), 2u);
  ASSERT_TRUE(net.run());
  ASSERT_EQ(recorder.events.size(), 2u);
  EXPECT_EQ(recorder.events[0].message.a, 42u);
  EXPECT_EQ(recorder.events[1].message.a, 42u);
}

TEST(MpNetwork, DuplicationLosesEachCopyIndependently) {
  // Loss is decided per enqueued copy, after duplication: with both rates at
  // 1.0, every send produces two drops and nothing in flight.
  const auto g = graph::make_path(2);
  Recorder recorder;
  Network net(g, recorder, Delivery::kRandomChannel, 8);
  net.set_duplication_rate(1.0);
  net.set_loss_rate(1.0);
  net.start();
  net.send(0, 1, Message{});
  EXPECT_EQ(net.messages_duplicated(), 1u);
  EXPECT_EQ(net.messages_dropped(), 2u);
  EXPECT_EQ(net.in_flight(), 0u);
}

TEST(MpNetwork, ReorderJumpsTheChannelQueue) {
  // With reorder at 1.0 every send jumps to the queue front (except into an
  // empty queue), so three sends deliver in reverse order.
  const auto g = graph::make_path(2);
  Recorder recorder;
  Network net(g, recorder, Delivery::kRandomChannel, 9);
  net.set_reorder_rate(1.0);
  net.start();
  net.send(0, 1, Message{1, 10, 0});
  net.send(0, 1, Message{1, 20, 0});
  net.send(0, 1, Message{1, 30, 0});
  EXPECT_EQ(net.messages_reordered(), 2u);  // first send found an empty queue
  ASSERT_TRUE(net.run());
  ASSERT_EQ(recorder.events.size(), 3u);
  EXPECT_EQ(recorder.events[0].message.a, 30u);
  EXPECT_EQ(recorder.events[1].message.a, 20u);
  EXPECT_EQ(recorder.events[2].message.a, 10u);
}

TEST(MpNetwork, RateSettersClampToUnitInterval) {
  const auto g = graph::make_path(2);
  Recorder recorder;
  Network net(g, recorder, Delivery::kRandomChannel, 10);
  net.set_loss_rate(2.5);  // clamps to 1.0: everything drops
  net.start();
  net.send(0, 1, Message{});
  EXPECT_EQ(net.messages_dropped(), 1u);
  net.set_loss_rate(-3.0);  // clamps to 0.0: nothing drops
  net.send(0, 1, Message{});
  EXPECT_EQ(net.messages_dropped(), 1u);
  EXPECT_EQ(net.in_flight(), 1u);
}

TEST(MpNetworkDeath, RejectsNaNRates) {
  const auto g = graph::make_path(2);
  Recorder recorder;
  Network net(g, recorder, Delivery::kRandomChannel, 11);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DEATH(net.set_loss_rate(nan), "NaN");
  EXPECT_DEATH(net.set_duplication_rate(nan), "NaN");
  EXPECT_DEATH(net.set_reorder_rate(nan), "NaN");
}

TEST(MpNetworkDeath, RejectsNonEdgeSend) {
  const auto g = graph::make_path(3);
  Recorder recorder;
  Network net(g, recorder, Delivery::kRandomChannel, 5);
  net.start();
  EXPECT_DEATH(net.send(0, 2, Message{}), "non-edge");
}

TEST(MpNetwork, CrashFlushesInboundChannelsAndSilencesTheProcessor) {
  const auto g = graph::make_path(3);
  Recorder recorder;
  Network net(g, recorder, Delivery::kRandomChannel, 12);
  net.start();
  net.send(0, 1, Message{1, 10, 0});
  net.send(2, 1, Message{1, 20, 0});
  EXPECT_EQ(net.in_flight(), 2u);
  net.crash(1);
  // Messages in a crashed processor's buffers die with it.
  EXPECT_EQ(net.in_flight(), 0u);
  EXPECT_EQ(net.messages_dropped_crashed(), 2u);
  EXPECT_TRUE(net.crashed(1));
  // Silence in both directions while crashed; not counted as channel loss.
  net.send(0, 1, Message{});
  net.send(1, 0, Message{});
  EXPECT_EQ(net.messages_dropped_crashed(), 4u);
  EXPECT_EQ(net.messages_dropped(), 0u);
  EXPECT_EQ(net.in_flight(), 0u);
  net.recover(1);
  EXPECT_FALSE(net.crashed(1));
  net.send(0, 1, Message{1, 30, 0});
  ASSERT_TRUE(net.run());
  ASSERT_EQ(recorder.events.size(), 1u);
  EXPECT_EQ(recorder.events[0].message.a, 30u);
}

TEST(MpNetwork, SynchronousBatchDropsForMidRoundCrash) {
  // In synchronous mode a crash during delivery kills the rest of the round's
  // batch addressed to the crashed processor.
  class CrashOnFirst final : public IMpProtocol {
   public:
    explicit CrashOnFirst(Network** net) : net_(net) {}
    void on_start(ProcessorId, Mailer&) override {}
    void on_message(ProcessorId p, ProcessorId, const Message&,
                    Mailer&) override {
      if (p == 0 && !crashed_) {
        crashed_ = true;
        (*net_)->crash(1);
      }
    }

   private:
    Network** net_;
    bool crashed_ = false;
  };
  const auto g = graph::make_path(2);
  Network* net_ptr = nullptr;
  CrashOnFirst protocol(&net_ptr);
  Network net(g, protocol, Delivery::kSynchronous, 13);
  net_ptr = &net;
  net.start();
  net.send(1, 0, Message{});  // triggers the crash of 1 mid-round
  net.send(0, 1, Message{});  // same batch, addressed to 1: must die
  EXPECT_TRUE(net.step());
  EXPECT_EQ(net.messages_delivered(), 1u);
  EXPECT_EQ(net.messages_dropped_crashed(), 1u);
}

TEST(MpNetwork, FaultDrawsAreIndependentOfOtherRates) {
  // Determinism satellite: whether a message is lost depends only on the
  // seed and the send index, not on which OTHER fault rates are active —
  // every send draws loss and reorder unconditionally, in a fixed order.
  const auto g = graph::make_path(2);
  const auto dropped_indices = [&](double reorder_rate) {
    Recorder recorder;
    Network net(g, recorder, Delivery::kRandomChannel, 14);
    net.set_loss_rate(0.3);
    net.set_reorder_rate(reorder_rate);
    net.start();
    std::vector<std::size_t> dropped;
    for (std::size_t i = 0; i < 200; ++i) {
      const std::uint64_t before = net.messages_dropped();
      net.send(0, 1, Message{1, i, 0});
      if (net.messages_dropped() != before) {
        dropped.push_back(i);
      }
    }
    return dropped;
  };
  const auto base = dropped_indices(0.0);
  EXPECT_FALSE(base.empty());
  EXPECT_EQ(base, dropped_indices(0.4));
  EXPECT_EQ(base, dropped_indices(1.0));
}

TEST(MpNetwork, AllowedKindsAcceptsListedKinds) {
  const auto g = graph::make_path(2);
  Recorder recorder;
  Network net(g, recorder, Delivery::kRandomChannel, 15);
  net.set_allowed_kinds((1ULL << 4) | (1ULL << 9));
  net.start();
  net.send(0, 1, Message{4, 1, 0});
  net.send(0, 1, Message{9, 2, 0});
  ASSERT_TRUE(net.run());
  EXPECT_EQ(recorder.events.size(), 2u);
}

TEST(MpNetworkDeath, RejectsUnknownMessageKind) {
  const auto g = graph::make_path(2);
  Recorder recorder;
  Network net(g, recorder, Delivery::kRandomChannel, 16);
  net.set_allowed_kinds(1ULL << 4);
  net.start();
  EXPECT_DEATH(net.send(0, 1, Message{5, 0, 0}), "unknown message kind");
  EXPECT_DEATH(net.send(0, 1, Message{200, 0, 0}), "unknown message kind");
}

TEST(MpNetworkDeath, RejectsDoubleCrashAndLiveRecover) {
  const auto g = graph::make_path(2);
  Recorder recorder;
  Network net(g, recorder, Delivery::kRandomChannel, 17);
  net.start();
  EXPECT_DEATH(net.recover(0), "live processor");
  net.crash(0);
  EXPECT_DEATH(net.crash(0), "already-crashed");
}

TEST(MpNetwork, RunBudgetExhaustionReportsFalse) {
  // An infinite ping-pong never quiesces; run() must stop at the budget.
  class Forever final : public IMpProtocol {
   public:
    void on_start(ProcessorId p, Mailer& mailer) override {
      if (p == 0) {
        mailer.send(0, 1, Message{});
      }
    }
    void on_message(ProcessorId p, ProcessorId from, const Message&,
                    Mailer& mailer) override {
      mailer.send(p, from, Message{});
    }
  };
  const auto g = graph::make_path(2);
  Forever protocol;
  Network net(g, protocol, Delivery::kRandomChannel, 6);
  EXPECT_FALSE(net.run(/*max_deliveries=*/100));
}

}  // namespace
}  // namespace snappif::mp
