// WaveService: PIF waves over the link with the delivery contract asserted
// live — completion on clean and impaired loopback transports, shedding
// recovery, adaptive-RTO behavior, the wave-span flight hook, concurrent
// multi-stream pipelining, and backpressure deferral.
#include "mp/serve.hpp"

#include <gtest/gtest.h>

#include <cstdint>

#include "graph/generators.hpp"
#include "mp/impairment.hpp"
#include "mp/network.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace snappif::mp {
namespace {

struct Stack {
  Stack(const graph::Graph& g, ServeConfig cfg, LinkConfig link_cfg,
        std::uint64_t seed)
      : service(g, cfg),
        link(g, service, link_cfg, seed),
        shim(link, g.n(), seed ^ 0xabcdef12345ULL),
        net(g, shim, Delivery::kSynchronous, seed + 1) {
    shim.bind(net);
  }

  /// Drives until every wave completes AND every deferred frame drained;
  /// false if the budget runs out.
  [[nodiscard]] bool run(std::uint64_t max_steps = 200000) {
    shim.start();
    for (std::uint64_t s = 0;
         s < max_steps && !(service.done() && service.quiescent()); ++s) {
      shim.step();
      link.tick();
      service.pump(link);
      link.flush();
      service.set_tick(s + 1);
    }
    return service.done() && service.quiescent();
  }

  WaveService service;
  LinkProtocol link;
  ImpairmentShim shim;
  Network net;
};

TEST(Serve, CompletesWavesOnCleanLoopback) {
  const auto g = graph::make_random_connected(10, 20, 42);
  ServeConfig cfg;
  cfg.waves = 20;
  Stack stack(g, cfg, LinkConfig{}, 51);
  ASSERT_TRUE(stack.run());
  const ServeStats& s = stack.service.stats();
  EXPECT_EQ(s.waves_completed, 20u);
  // Every processor joins every wave, exactly once.
  EXPECT_EQ(s.joins, 20u * g.n());
  // Every directed edge carries one gapless stream counter per wave.
  EXPECT_EQ(s.stream_checks, 20u * 2 * g.m());
  EXPECT_EQ(s.stale_tokens, 0u);
  EXPECT_EQ(stack.link.stats().retransmits, 0u);
}

TEST(Serve, CompletesWavesUnderHeavyImpairment) {
  // 20% loss + duplication + reordering + delay below the link: waves still
  // complete and the service's own asserts (gapless per-edge streams,
  // token monotonicity, all-joined completion) hold on every frame.
  const auto g = graph::make_random_connected(8, 16, 7);
  ServeConfig cfg;
  cfg.waves = 15;
  Stack stack(g, cfg, LinkConfig{}, 53);
  stack.shim.set_loss_rate(0.2);
  stack.shim.set_duplication_rate(0.1);
  stack.shim.set_reorder_rate(0.1);
  stack.shim.set_delay(0.1, 2);
  ASSERT_TRUE(stack.run());
  EXPECT_EQ(stack.service.stats().waves_completed, 15u);
  EXPECT_GT(stack.link.stats().retransmits, 0u);
  EXPECT_GT(stack.shim.transport_stats().dropped, 0u);
}

TEST(Serve, RecoversFromOverloadShedding) {
  // A one-frame-per-step mailbox under a full wave fan-in: frames are shed
  // at the bottleneck and the link's retransmission still completes every
  // wave (degraded throughput, zero deadlock, zero contract violations).
  const auto g = graph::make_star(6);
  ServeConfig cfg;
  cfg.waves = 10;
  Stack stack(g, cfg, LinkConfig{}, 57);
  stack.shim.set_delivery_budget(1);
  ASSERT_TRUE(stack.run());
  EXPECT_EQ(stack.service.stats().waves_completed, 10u);
  // The star hub fields every spoke at once against a budget of one: the
  // overload MUST shed.
  EXPECT_GT(stack.shim.transport_stats().shed, 0u);
  EXPECT_GT(stack.link.stats().retransmits, 0u);
}

TEST(Serve, AdaptiveRtoSamplesRttAndAppliesKarnsRule) {
  const auto g = graph::make_random_connected(8, 16, 7);
  ServeConfig cfg;
  cfg.waves = 15;
  LinkConfig link_cfg;
  link_cfg.rto_mode = RtoMode::kAdaptive;
  Stack stack(g, cfg, link_cfg, 59);
  stack.shim.set_loss_rate(0.25);
  ASSERT_TRUE(stack.run());
  const LinkStats& l = stack.link.stats();
  // Clean exchanges feed the estimator...
  EXPECT_GT(l.rtt_samples, 0u);
  // ...and acks of retransmitted frames are excluded (Karn's rule): at 25%
  // loss some retransmissions are certain across 15 waves.
  EXPECT_GT(l.karn_suppressed, 0u);
  EXPECT_EQ(stack.service.stats().waves_completed, 15u);
}

TEST(Serve, FixedAndAdaptiveRtoBothCompleteTheSameWorkload) {
  const auto g = graph::make_cycle(6);
  for (const RtoMode mode : {RtoMode::kFixedBackoff, RtoMode::kAdaptive}) {
    ServeConfig cfg;
    cfg.waves = 10;
    LinkConfig link_cfg;
    link_cfg.rto_mode = mode;
    Stack stack(g, cfg, link_cfg, 61);
    stack.shim.set_loss_rate(0.15);
    ASSERT_TRUE(stack.run()) << "mode=" << static_cast<int>(mode);
    EXPECT_EQ(stack.service.stats().waves_completed, 10u);
    if (mode == RtoMode::kFixedBackoff) {
      // The fixed-backoff link never samples: the estimator counters are
      // how a mode regression would show up.
      EXPECT_EQ(stack.link.stats().rtt_samples, 0u);
      EXPECT_EQ(stack.link.stats().karn_suppressed, 0u);
    }
  }
}

TEST(Serve, WaveSpansTraceCompletedWaves) {
  const auto g = graph::make_path(3);
  ServeConfig cfg;
  cfg.waves = 5;
  obs::SpanCollector spans;
  Stack stack(g, cfg, LinkConfig{}, 63);
  stack.service.set_spans(&spans);
  ASSERT_TRUE(stack.run());
  std::size_t wave_spans = 0;
  for (const obs::Span& span : spans.spans()) {
    if (span.kind == obs::SpanKind::kWave) {
      ++wave_spans;
      // Closed by complete_wave: a wave takes at least one delivery round,
      // so its span must have real extent.
      EXPECT_GT(span.end, span.begin);
      EXPECT_EQ(span.wave, span.id);
    }
  }
  EXPECT_EQ(wave_spans, 5u);
}

TEST(Serve, ConcurrentStreamsCompleteOnCleanLoopback) {
  // Three pipelined streams share every edge; each is verified
  // independently — exact join/check/rebase accounting must close.
  const auto g = graph::make_random_connected(10, 20, 42);
  ServeConfig cfg;
  cfg.waves = 10;
  cfg.streams = 3;
  Stack stack(g, cfg, LinkConfig{}, 67);
  ASSERT_TRUE(stack.run());
  const ServeStats& s = stack.service.stats();
  EXPECT_EQ(s.waves_completed, 30u);
  // Every processor joins every wave of every stream, exactly once.
  EXPECT_EQ(s.joins, 3u * 10u * g.n());
  // Every (directed edge, stream) carries one gapless counter per wave...
  EXPECT_EQ(s.stream_checks, 3u * 10u * 2 * g.m());
  // ...whose first instance re-bases after the edge's first-contact resync.
  EXPECT_EQ(s.stream_rebases, 3u * 2 * g.m());
  EXPECT_EQ(s.stale_tokens, 0u);
  EXPECT_EQ(stack.link.stats().retransmits, 0u);
}

TEST(Serve, ConcurrentStreamsUnderImpairmentAndWindowing) {
  // The full E24 shape in miniature: 4 streams over an 8-deep coalesced
  // window at 20% loss + duplication + reordering.  The per-stream gapless
  // counters assert exactly-once in-order delivery on every frame while
  // the windowed machinery (reorder buffer, cumulative acks, batch sends)
  // is demonstrably engaged.
  const auto g = graph::make_random_connected(8, 16, 7);
  ServeConfig cfg;
  cfg.waves = 15;
  cfg.streams = 4;
  LinkConfig link_cfg;
  link_cfg.window = 8;
  link_cfg.queue_capacity = 16;
  link_cfg.coalesce = true;
  link_cfg.rto_mode = RtoMode::kAdaptive;
  Stack stack(g, cfg, link_cfg, 73);
  stack.shim.set_loss_rate(0.2);
  stack.shim.set_duplication_rate(0.05);
  stack.shim.set_reorder_rate(0.05);
  ASSERT_TRUE(stack.run());
  EXPECT_EQ(stack.service.stats().waves_completed, 4u * 15u);
  EXPECT_GT(stack.link.stats().retransmits, 0u);
  EXPECT_GT(stack.link.stats().coalesced_batches, 0u);
  // Loss opens gaps that later frames must wait out in the reorder buffer.
  EXPECT_GT(stack.link.stats().ooo_buffered, 0u);
  EXPECT_GT(stack.link.stats().ooo_delivered, 0u);
}

TEST(Serve, PhantomStreamCounterIsAbsorbedByResync) {
  // Arbitrary initial channel content: before any real traffic, a frame
  // from a phantom incarnation of processor 1 lands on edge (1 -> 0)
  // carrying a stream-1 counter of 999.  The service must adopt it as that
  // (edge, stream)'s base — then re-base again when the REAL sender's
  // first frame forces a second resync — without perturbing any other
  // stream or edge (the exact global counts prove the isolation).
  const auto g = graph::make_cycle(6);
  ServeConfig cfg;
  cfg.waves = 10;
  cfg.streams = 3;
  Stack stack(g, cfg, LinkConfig{}, 71);
  stack.shim.start();
  const std::uint64_t phantom_hdr =
      0x1234ULL | (0x0042ULL << 16) |
      (std::uint64_t{4} << 32);  // inc | seq<<16 | kStream<<32
  const std::uint64_t phantom_payload = (std::uint64_t{1} << 48) | 999u;
  stack.link.on_message(0, 1,
                        Message{LinkConfig{}.data_kind, phantom_hdr,
                                phantom_payload},
                        stack.shim);
  for (std::uint64_t s = 0;
       s < 200000 && !(stack.service.done() && stack.service.quiescent());
       ++s) {
    stack.shim.step();
    stack.link.tick();
    stack.service.pump(stack.link);
    stack.link.flush();
    stack.service.set_tick(s + 1);
  }
  ASSERT_TRUE(stack.service.done());
  const ServeStats& s = stack.service.stats();
  const std::uint64_t edges = 2u * g.m();
  EXPECT_EQ(s.waves_completed, 30u);
  // Every edge resyncs once at first contact, plus the phantom's extra
  // resync on (1 -> 0) when the real incarnation displaces it.
  EXPECT_EQ(s.peer_resyncs, edges + 1);
  EXPECT_EQ(s.stream_rebases, 3u * edges + 1);
  EXPECT_EQ(s.stream_checks, 3u * 10u * edges + 1);
}

TEST(Serve, BackpressuredServiceDefersAndCompletes) {
  // A one-slot pending ring under two streams funneling through a star
  // hub: the link MUST refuse sends, the service MUST park and re-offer
  // them in order, and every wave still completes with the counters green.
  const auto g = graph::make_star(6);
  ServeConfig cfg;
  cfg.waves = 10;
  cfg.streams = 2;
  LinkConfig link_cfg;
  link_cfg.queue_capacity = 1;
  Stack stack(g, cfg, link_cfg, 77);
  ASSERT_TRUE(stack.run());
  const ServeStats& s = stack.service.stats();
  EXPECT_EQ(s.waves_completed, 20u);
  EXPECT_GT(s.deferrals, 0u);
  EXPECT_GT(stack.link.stats().backpressured, 0u);
  EXPECT_TRUE(stack.service.quiescent());
}

TEST(Serve, TelemetryExportsWaveCounters) {
  const auto g = graph::make_path(3);
  ServeConfig cfg;
  cfg.waves = 4;
  Stack stack(g, cfg, LinkConfig{}, 65);
  ASSERT_TRUE(stack.run());
  obs::Registry registry;
  stack.service.record_telemetry(registry);
  EXPECT_EQ(registry.counter("mp.serve.waves_completed").value(), 4u);
  EXPECT_EQ(registry.counter("mp.serve.joins").value(), 4u * g.n());
}

}  // namespace
}  // namespace snappif::mp
