// The ITransport seam and the ImpairmentShim decorator: polymorphic
// driving, the disarmed-shim bit-invisibility contract, per-fault-class
// accounting, partitions, bounded-mailbox shedding, and the NaN/bind
// programming-error asserts.
#include "mp/transport.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "graph/generators.hpp"
#include "mp/impairment.hpp"
#include "mp/link.hpp"
#include "mp/network.hpp"
#include "obs/metrics.hpp"

namespace snappif::mp {
namespace {

/// Records every exactly-once upcall from the link layer.
class Recorder final : public LinkClient {
 public:
  void on_link_start(ProcessorId, LinkProtocol&) override {}
  void on_link_deliver(ProcessorId p, ProcessorId from, std::uint8_t,
                       std::uint64_t payload, LinkProtocol&) override {
    delivered.push_back({p, from, payload});
  }
  void on_link_peer_reset(ProcessorId, ProcessorId, LinkProtocol&) override {}

  struct Entry {
    ProcessorId to;
    ProcessorId from;
    std::uint64_t payload;
  };
  std::vector<Entry> delivered;
};

/// Bare protocol that counts deliveries (no reliability layer) — lets the
/// shim's own semantics be observed without retransmission masking them.
class RawSink final : public IMpProtocol {
 public:
  void on_start(ProcessorId, Mailer&) override {}
  void on_message(ProcessorId, ProcessorId, const Message& m,
                  Mailer&) override {
    payloads.push_back(m.a);
  }
  std::vector<std::uint64_t> payloads;
};

[[nodiscard]] bool drain(ITransport& t, LinkProtocol& link, int budget = 10000) {
  for (int i = 0; i < budget; ++i) {
    if (t.idle() && link.idle()) {
      return true;
    }
    t.step();
    link.tick();
  }
  return false;
}

TEST(Transport, NetworkIsDrivableThroughTheInterface) {
  const auto g = graph::make_path(2);
  Recorder client;
  LinkProtocol link(g, client, LinkConfig{}, 1);
  Network net(g, link, Delivery::kSynchronous, 2);
  ITransport& transport = net;  // the loopback IS an ITransport
  transport.start();
  link.send(0, 1, 3, 42);
  ASSERT_TRUE(drain(transport, link));
  ASSERT_EQ(client.delivered.size(), 1u);
  EXPECT_EQ(client.delivered[0].payload, 42u);
  const TransportStats& s = transport.transport_stats();
  EXPECT_GT(s.sent, 0u);
  EXPECT_GT(s.delivered, 0u);
  EXPECT_EQ(s.dropped, 0u);
  EXPECT_EQ(s.rx_errors, 0u);
}

TEST(Transport, DisarmedShimIsBitInvisible) {
  // The same lossy link workload, with and without a disarmed shim in the
  // stack, must produce IDENTICAL results — not just equivalent ones.  The
  // disarmed shim consumes zero RNG draws, so the loopback's fault stream
  // (and therefore every retransmission, duplicate, and delivery) is
  // bit-exact.  This is the contract that lets the shim sit permanently
  // inside GuardedEmulation without invalidating any seeded suite.
  const auto g = graph::make_random_connected(8, 16, 42);
  auto run = [&](bool with_shim) {
    Recorder client;
    LinkProtocol link(g, client, LinkConfig{}, 7);
    std::vector<Recorder::Entry> out;
    LinkStats stats;
    if (with_shim) {
      ImpairmentShim shim(link, g.n(), 99);  // armed_ stays false: seed unused
      Network net(g, shim, Delivery::kSynchronous, 8);
      shim.bind(net);
      net.set_loss_rate(0.3);
      net.set_duplication_rate(0.2);
      net.set_reorder_rate(0.2);
      shim.start();
      for (ProcessorId p = 0; p < g.n(); ++p) {
        for (const auto v : g.neighbors(p)) {
          link.send(p, v, 1, p * 100 + v);
        }
      }
      EXPECT_TRUE(drain(shim, link));
      out = client.delivered;
      stats = link.stats();
    } else {
      Network net(g, link, Delivery::kSynchronous, 8);
      net.set_loss_rate(0.3);
      net.set_duplication_rate(0.2);
      net.set_reorder_rate(0.2);
      net.start();
      for (ProcessorId p = 0; p < g.n(); ++p) {
        for (const auto v : g.neighbors(p)) {
          link.send(p, v, 1, p * 100 + v);
        }
      }
      EXPECT_TRUE(drain(net, link));
      out = client.delivered;
      stats = link.stats();
    }
    return std::make_pair(out, stats);
  };
  const auto [bare, bare_stats] = run(false);
  const auto [shimmed, shim_stats] = run(true);
  ASSERT_EQ(bare.size(), shimmed.size());
  for (std::size_t i = 0; i < bare.size(); ++i) {
    EXPECT_EQ(bare[i].to, shimmed[i].to) << i;
    EXPECT_EQ(bare[i].from, shimmed[i].from) << i;
    EXPECT_EQ(bare[i].payload, shimmed[i].payload) << i;
  }
  // Identical fault streams leave identical fingerprints on the link.
  EXPECT_EQ(bare_stats.retransmits, shim_stats.retransmits);
  EXPECT_EQ(bare_stats.duplicates_discarded, shim_stats.duplicates_discarded);
  EXPECT_EQ(bare_stats.stale_discarded, shim_stats.stale_discarded);
  EXPECT_EQ(bare_stats.timer_fires, shim_stats.timer_fires);
}

TEST(Transport, ShimLossDropsEveryFrame) {
  const auto g = graph::make_path(2);
  RawSink sink;
  ImpairmentShim shim(sink, g.n(), 5);
  Network net(g, shim, Delivery::kSynchronous, 6);
  shim.bind(net);
  shim.set_loss_rate(1.0);
  EXPECT_TRUE(shim.armed());
  shim.start();
  for (std::uint64_t i = 0; i < 10; ++i) {
    shim.send(0, 1, Message{1, i, 0});
  }
  for (int s = 0; s < 5; ++s) {
    shim.step();
  }
  EXPECT_TRUE(sink.payloads.empty());
  EXPECT_EQ(shim.transport_stats().sent, 10u);
  EXPECT_EQ(shim.transport_stats().dropped, 10u);
  EXPECT_EQ(shim.transport_stats().delivered, 0u);
}

TEST(Transport, ShimDuplicationInjectsExtraCopies) {
  const auto g = graph::make_path(2);
  RawSink sink;
  ImpairmentShim shim(sink, g.n(), 5);
  Network net(g, shim, Delivery::kSynchronous, 6);
  shim.bind(net);
  shim.set_duplication_rate(1.0);
  shim.start();
  for (std::uint64_t i = 0; i < 8; ++i) {
    shim.send(0, 1, Message{1, i, 0});
  }
  while (!shim.idle()) {
    shim.step();
  }
  EXPECT_EQ(shim.transport_stats().duplicated, 8u);
  EXPECT_EQ(sink.payloads.size(), 16u);  // every frame arrives twice
}

TEST(Transport, ShimDelayHoldsFramesForConfiguredSteps) {
  const auto g = graph::make_path(2);
  RawSink sink;
  ImpairmentShim shim(sink, g.n(), 5);
  Network net(g, shim, Delivery::kSynchronous, 6);
  shim.bind(net);
  shim.set_delay(1.0, 3);
  shim.start();
  shim.send(0, 1, Message{1, 7, 0});
  EXPECT_FALSE(shim.idle());  // held, not lost
  shim.step();
  shim.step();
  EXPECT_TRUE(sink.payloads.empty());  // still inside the hold window
  for (int s = 0; s < 4 && sink.payloads.empty(); ++s) {
    shim.step();
  }
  ASSERT_EQ(sink.payloads.size(), 1u);
  EXPECT_EQ(sink.payloads[0], 7u);
  EXPECT_EQ(shim.transport_stats().delayed, 1u);
  EXPECT_TRUE(shim.idle());
}

TEST(Transport, HeldFramesDrainAfterDisarm) {
  // A chaos campaign zeroes every rate at its quiet point; frames still in
  // the delay buffer must drain anyway or quiescence would never arrive.
  const auto g = graph::make_path(2);
  RawSink sink;
  ImpairmentShim shim(sink, g.n(), 5);
  Network net(g, shim, Delivery::kSynchronous, 6);
  shim.bind(net);
  shim.set_delay(1.0, 5);
  shim.start();
  shim.send(0, 1, Message{1, 9, 0});
  shim.set_delay(0.0, 0);  // disarm with the frame still held
  EXPECT_FALSE(shim.armed());
  EXPECT_FALSE(shim.idle());
  for (int s = 0; s < 10 && !shim.idle(); ++s) {
    shim.step();
  }
  ASSERT_EQ(sink.payloads.size(), 1u);
  EXPECT_EQ(sink.payloads[0], 9u);
}

TEST(Transport, PartitionEatsBothDirectionsUntilHealed) {
  const auto g = graph::make_path(2);
  Recorder client;
  LinkProtocol link(g, client, LinkConfig{}, 11);
  ImpairmentShim shim(link, g.n(), 12);
  Network net(g, shim, Delivery::kSynchronous, 13);
  shim.bind(net);
  shim.start();

  shim.partition(1);
  EXPECT_TRUE(shim.partitioned(1));
  link.send(0, 1, 1, 10);
  link.send(1, 0, 1, 20);
  for (int s = 0; s < 30; ++s) {
    shim.step();
    link.tick();
  }
  EXPECT_TRUE(client.delivered.empty());
  EXPECT_GT(shim.transport_stats().partitioned, 0u);

  // Heal: the link's retransmission timer re-offers both frames and
  // delivery completes without any new send() from the client.
  shim.heal(1);
  EXPECT_FALSE(shim.partitioned(1));
  ASSERT_TRUE(drain(shim, link));
  ASSERT_EQ(client.delivered.size(), 2u);
  EXPECT_GT(link.stats().retransmits, 0u);
}

TEST(Transport, DeliveryBudgetShedsOverloadAndLinkRecovers) {
  // Two senders converge on processor 1 with a one-frame-per-step mailbox:
  // the overflow is shed (counted), and the link layer's retransmission
  // still completes every delivery — degraded, never deadlocked.
  const auto g = graph::make_path(3);
  Recorder client;
  LinkProtocol link(g, client, LinkConfig{}, 21);
  ImpairmentShim shim(link, g.n(), 22);
  Network net(g, shim, Delivery::kSynchronous, 23);
  shim.bind(net);
  shim.set_delivery_budget(1);
  shim.start();
  link.send(0, 1, 1, 100);
  link.send(2, 1, 1, 200);
  ASSERT_TRUE(drain(shim, link));
  ASSERT_EQ(client.delivered.size(), 2u);
  EXPECT_GT(shim.transport_stats().shed, 0u);
}

TEST(Transport, RecordTelemetryExportsEveryCounter) {
  const auto g = graph::make_path(2);
  RawSink sink;
  ImpairmentShim shim(sink, g.n(), 5);
  Network net(g, shim, Delivery::kSynchronous, 6);
  shim.bind(net);
  shim.set_loss_rate(1.0);
  shim.start();
  shim.send(0, 1, Message{1, 1, 0});
  obs::Registry registry;
  shim.record_telemetry(registry);
  EXPECT_EQ(registry.counter("mp.transport.sent").value(), 1u);
  EXPECT_EQ(registry.counter("mp.transport.dropped").value(), 1u);
  EXPECT_EQ(registry.counter("mp.transport.delivered").value(), 0u);
  EXPECT_EQ(registry.counter("mp.transport.shed").value(), 0u);
  EXPECT_EQ(registry.counter("mp.transport.rx_errors").value(), 0u);
}

TEST(TransportDeath, NanRateIsAProgrammingError) {
  const auto g = graph::make_path(2);
  RawSink sink;
  ImpairmentShim shim(sink, g.n(), 5);
  EXPECT_DEATH(shim.set_loss_rate(std::numeric_limits<double>::quiet_NaN()),
               "NaN");
  EXPECT_DEATH(
      shim.set_delay(std::numeric_limits<double>::quiet_NaN(), 2), "NaN");
}

TEST(TransportDeath, ShimBindsExactlyOnce) {
  const auto g = graph::make_path(2);
  RawSink sink;
  ImpairmentShim shim(sink, g.n(), 5);
  Network net(g, shim, Delivery::kSynchronous, 6);
  shim.bind(net);
  EXPECT_DEATH(shim.bind(net), "already bound");
}

TEST(TransportDeath, ShimUseBeforeBindIsAProgrammingError) {
  const auto g = graph::make_path(2);
  RawSink sink;
  ImpairmentShim shim(sink, g.n(), 5);
  EXPECT_DEATH(shim.start(), "before bind");
  EXPECT_DEATH(shim.send(0, 1, Message{1, 0, 0}), "before bind");
}

}  // namespace
}  // namespace snappif::mp
