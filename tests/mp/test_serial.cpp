// Serial-number arithmetic (RFC 1982 shape): the 16-bit incarnation and
// sequence comparisons stay correct across the 2^16 wrap, pinned both at
// the pure-function level (exhaustive window sweeps) and end to end (a
// link edge driven through more than 65536 datagrams on a lossy channel).
#include "mp/serial.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "graph/generators.hpp"
#include "mp/link.hpp"
#include "mp/network.hpp"

namespace snappif::mp {
namespace {

TEST(Serial, BasicOrdering) {
  EXPECT_FALSE(serial_newer(0, 0));
  EXPECT_TRUE(serial_newer(1, 0));
  EXPECT_FALSE(serial_newer(0, 1));
  EXPECT_TRUE(serial_newer(100, 99));
  EXPECT_FALSE(serial_newer(99, 100));
}

TEST(Serial, WrapAroundAtPeriodBoundary) {
  // 0 follows 0xFFFF: the whole point of serial arithmetic.  A plain
  // integer compare would call 0 older and deadlock the receiver on the
  // first post-wrap frame.
  EXPECT_TRUE(serial_newer(0, 0xFFFF));
  EXPECT_FALSE(serial_newer(0xFFFF, 0));
  EXPECT_TRUE(serial_newer(3, 0xFFFE));
  EXPECT_FALSE(serial_newer(0xFFFE, 3));
}

TEST(Serial, HalfPeriodIsTheTippingPoint) {
  // d in [1, 0x7FFF] => newer; d == 0x8000 and beyond => not newer (a copy
  // that far "ahead" is really stale traffic that overtook the stream).
  EXPECT_TRUE(serial_newer(0x7FFF, 0));
  EXPECT_FALSE(serial_newer(0x8000, 0));
  EXPECT_FALSE(serial_newer(0x8001, 0));
  // Antisymmetry everywhere except the ambiguous exact-half distance,
  // where BOTH compare not-newer (so neither side re-delivers).
  EXPECT_FALSE(serial_newer(0, 0x8000));
  EXPECT_TRUE(serial_newer(0, 0x8001));
}

TEST(Serial, ExhaustiveWindowSweepAcrossTheWrap) {
  // Every base value with every offset in the live stop-and-wait window
  // (far smaller than half the period) must compare newer, and the reverse
  // comparison must not.  The sweep crosses the wrap thousands of times.
  for (std::uint32_t base = 0; base < 0x10000; base += 97) {
    const auto b = static_cast<std::uint16_t>(base);
    for (std::uint16_t off = 1; off <= 16; ++off) {
      const auto a = static_cast<std::uint16_t>(b + off);
      ASSERT_TRUE(serial_newer(a, b)) << "base=" << base << " off=" << off;
      ASSERT_FALSE(serial_newer(b, a)) << "base=" << base << " off=" << off;
      ASSERT_EQ(serial_distance(a, b), off);
    }
  }
}

TEST(Serial, DistanceIsForwardIncrementCount) {
  EXPECT_EQ(serial_distance(5, 5), 0);
  EXPECT_EQ(serial_distance(6, 5), 1);
  EXPECT_EQ(serial_distance(0, 0xFFFF), 1);
  EXPECT_EQ(serial_distance(2, 0xFFFE), 4);
  EXPECT_EQ(serial_distance(0xFFFE, 2), 0xFFFC);
}

/// Counts deliveries and checks the payload stream is exactly 0,1,2,...
class CountingClient final : public LinkClient {
 public:
  void on_link_start(ProcessorId, LinkProtocol&) override {}
  void on_link_deliver(ProcessorId, ProcessorId, std::uint8_t,
                       std::uint64_t payload, LinkProtocol&) override {
    in_order = in_order && payload == delivered;
    ++delivered;
  }
  void on_link_peer_reset(ProcessorId, ProcessorId, LinkProtocol&) override {}

  std::uint64_t delivered = 0;
  bool in_order = true;
};

TEST(Serial, LinkEdgeSurvivesSequenceWrapUnderLoss) {
  // Drive one directed edge through more than 2^16 datagrams so the 16-bit
  // sequence counter wraps, on a channel that loses and duplicates frames
  // (so the receiver actually exercises the newer/stale discrimination
  // around the wrap, not just the happy path).  Exactly-once in-order
  // delivery must hold across the whole run.
  const auto g = graph::make_path(2);
  CountingClient client;
  LinkConfig cfg;
  cfg.rto_initial = 1;  // tight timer: the lossy run stays fast
  LinkProtocol link(g, client, cfg, 101);
  Network net(g, link, Delivery::kSynchronous, 102);
  net.set_loss_rate(0.05);
  net.set_duplication_rate(0.05);
  net.start();

  constexpr std::uint64_t kTotal = 0x10000 + 512;  // past the wrap
  std::uint64_t next = 0;
  while (next < kTotal) {
    for (int burst = 0; burst < 7 && next < kTotal; ++burst, ++next) {
      link.send(0, 1, /*kind=*/3, next);
    }
    int budget = 10000;
    while (!(link.idle() && net.in_flight() == 0) && budget-- > 0) {
      net.step();
      link.tick();
    }
    ASSERT_GT(budget, 0) << "link failed to drain near datagram " << next;
  }
  EXPECT_EQ(client.delivered, kTotal);
  EXPECT_TRUE(client.in_order);
  EXPECT_EQ(link.stats().delivered, kTotal);
  EXPECT_GT(link.stats().retransmits, 0u);
  EXPECT_GT(link.stats().duplicates_discarded, 0u);
}

}  // namespace
}  // namespace snappif::mp
