// Chang's echo algorithm: the classic fault-free PIF and its classic
// properties — 2|E| messages, spanning tree, ~2*ecc(root) synchronous
// rounds, full delivery — plus its brittleness to a single message loss.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "mp/echo.hpp"

namespace snappif::mp {
namespace {

TEST(Echo, CompletesWithExactly2MMessages) {
  for (const auto& named : graph::standard_suite(12, 21)) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      EchoProtocol echo(named.graph, 0, 0xBEEF);
      Network net(named.graph, echo, Delivery::kRandomChannel, seed);
      ASSERT_TRUE(net.run()) << named.name;
      EXPECT_TRUE(echo.completed()) << named.name;
      EXPECT_EQ(net.messages_sent(), 2 * named.graph.m()) << named.name;
      for (graph::NodeId p = 0; p < named.graph.n(); ++p) {
        EXPECT_TRUE(echo.received(p)) << named.name << " p=" << p;  // PIF1
        EXPECT_EQ(echo.payload_of(p), 0xBEEFu) << named.name;
      }
    }
  }
}

TEST(Echo, BuildsASpanningTree) {
  const auto g = graph::make_random_connected(15, 12, 7);
  EchoProtocol echo(g, 0, 1);
  Network net(g, echo, Delivery::kRandomChannel, 9);
  ASSERT_TRUE(net.run());
  const auto height = graph::spanning_tree_height(g, 0, echo.parents());
  ASSERT_TRUE(height.has_value());
  EXPECT_GE(*height, graph::eccentricity(g, 0));  // at least BFS depth
}

TEST(Echo, SynchronousTimeIsTwoEccentricities) {
  // Under lock-step delivery the token reaches distance-d processors in
  // round d and the echo needs as long to return: ecc .. 2*ecc rounds.
  for (const auto& named : graph::standard_suite(16, 23)) {
    EchoProtocol echo(named.graph, 0, 1);
    Network net(named.graph, echo, Delivery::kSynchronous, 1);
    ASSERT_TRUE(net.run()) << named.name;
    EXPECT_TRUE(echo.completed()) << named.name;
    const auto ecc = graph::eccentricity(named.graph, 0);
    EXPECT_GE(net.rounds(), ecc) << named.name;
    EXPECT_LE(net.rounds(), 2 * ecc + 1) << named.name;
  }
}

TEST(Echo, SingleProcessorCompletesInstantly) {
  const graph::Graph g(1);
  EchoProtocol echo(g, 0, 5);
  Network net(g, echo, Delivery::kRandomChannel, 2);
  ASSERT_TRUE(net.run());
  // No neighbors: pending = 0... the root completes only through
  // maybe_ack, which runs on message receipt; with no edges no messages
  // flow.  The classic algorithm's degenerate case: n=1 has nothing to
  // propagate.  We accept either behavior but must not crash.
  EXPECT_EQ(net.messages_sent(), 0u);
}

TEST(Echo, RootEccentricityMattersForTime) {
  const auto g = graph::make_path(9);
  EchoProtocol end_echo(g, 0, 1);
  Network end_net(g, end_echo, Delivery::kSynchronous, 1);
  ASSERT_TRUE(end_net.run());
  EchoProtocol mid_echo(g, 4, 1);
  Network mid_net(g, mid_echo, Delivery::kSynchronous, 1);
  ASSERT_TRUE(mid_net.run());
  EXPECT_GT(end_net.rounds(), mid_net.rounds());
}

TEST(Echo, NotFaultTolerant_LossDeadlocksForever) {
  // One lost message and the wave never completes — the motivating gap.
  const auto g = graph::make_cycle(8);
  int incomplete = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    EchoProtocol echo(g, 0, 1);
    Network net(g, echo, Delivery::kRandomChannel, seed);
    net.set_loss_rate(0.15);
    ASSERT_TRUE(net.run());  // quiesces (nothing left in flight)...
    if (!echo.completed() && net.messages_dropped() > 0) {
      ++incomplete;  // ...but the root never saw the feedback
    }
  }
  EXPECT_GT(incomplete, 5);
}

TEST(Echo, TokensCrossOnChordsWithoutDoubleCounting) {
  // On a complete graph every non-tree edge carries tokens in both
  // directions that serve as mutual echoes; message count stays exactly 2m.
  const auto g = graph::make_complete(6);
  EchoProtocol echo(g, 0, 1);
  Network net(g, echo, Delivery::kRandomChannel, 3);
  ASSERT_TRUE(net.run());
  EXPECT_TRUE(echo.completed());
  EXPECT_EQ(net.messages_sent(), 2 * g.m());
}

}  // namespace
}  // namespace snappif::mp
