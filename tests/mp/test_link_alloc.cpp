// Steady-state allocation audit for the retransmission layer.
//
// LinkProtocol sizes all per-edge state — senders, receivers, pending rings
// — at construction; send/send_latest/on_message/tick must never touch the
// heap, no matter how hard the channel misbehaves.  Like the simulator's
// audit (tests/sim/test_simulator_alloc.cpp) this overrides the global
// allocation functions with counting wrappers, so it lives in its own
// binary.  The link is driven through a preallocated loopback mailer rather
// than mp::Network: the substrate's own batch buffers are out of scope —
// the ISSUE's invariant is about the retransmission layer.
#include <atomic>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "mp/link.hpp"
#include "util/rng.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace snappif::mp {
namespace {

/// Lossy loopback channel with preallocated storage: messages queue in a
/// fixed ring and deliver on flush().  reserve() is called before the audit
/// window so steady-state flushes never grow anything.
class LoopMailer final : public Mailer {
 public:
  struct Entry {
    ProcessorId from;
    ProcessorId to;
    Message message;
  };

  explicit LoopMailer(std::uint64_t seed) : rng_(seed) {
    queue_.reserve(1024);
    batch_.reserve(1024);
  }

  void set_loss_rate(double rate) { loss_ = rate; }

  void send(ProcessorId from, ProcessorId to, const Message& m) override {
    if (rng_.chance(loss_)) {
      return;
    }
    queue_.push_back({from, to, m});
  }

  /// Delivers everything currently queued to `link` (synchronous round).
  void flush(LinkProtocol& link) {
    batch_.swap(queue_);
    queue_.clear();
    for (const Entry& e : batch_) {
      link.on_message(e.to, e.from, e.message, *this);
    }
    batch_.clear();
  }

 private:
  util::Rng rng_;
  double loss_ = 0.0;
  std::vector<Entry> queue_;
  std::vector<Entry> batch_;
};

class NullClient final : public LinkClient {
 public:
  void on_link_start(ProcessorId, LinkProtocol&) override {}
  void on_link_deliver(ProcessorId, ProcessorId, std::uint8_t, std::uint64_t,
                       LinkProtocol&) override {
    ++delivered;
  }
  std::uint64_t delivered = 0;
};

TEST(LinkAlloc, SteadyStateTrafficAllocatesNothing) {
  const auto g = graph::make_random_connected(16, 12, 3);
  NullClient client;
  LinkProtocol link(g, client, LinkConfig{}, 4);
  LoopMailer mailer(5);
  mailer.set_loss_rate(0.3);  // keep the retransmission machinery busy
  for (ProcessorId p = 0; p < g.n(); ++p) {
    link.on_start(p, mailer);
  }

  const auto run_rounds = [&](int rounds) {
    for (int r = 0; r < rounds; ++r) {
      for (ProcessorId p = 0; p < g.n(); ++p) {
        for (ProcessorId q : g.neighbors(p)) {
          link.send_latest(p, q, /*kind=*/1,
                           static_cast<std::uint64_t>(r) << 8 | p);
        }
      }
      mailer.flush(link);
      link.tick();
    }
  };

  run_rounds(100);  // warm-up: mailer buffers reach their high-water marks
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  run_rounds(300);
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
  EXPECT_GT(client.delivered, 0u);
  EXPECT_GT(link.stats().retransmits, 0u);
  EXPECT_GT(link.stats().superseded, 0u);
}

TEST(LinkAlloc, WindowedCoalescedTrafficAllocatesNothing) {
  // The pipelined path adds per-edge window slots, reorder buffers, and a
  // per-flush staging area — all sized at construction.  Lossy traffic at
  // window 8 keeps every one of them busy (holes park frames in the reorder
  // buffer, refused sends bump backpressure, flushes batch per edge); the
  // steady state must still be allocation-free.
  const auto g = graph::make_random_connected(16, 12, 3);
  NullClient client;
  LinkConfig cfg;
  cfg.window = 8;
  cfg.queue_capacity = 16;
  cfg.coalesce = true;
  cfg.rto_mode = RtoMode::kAdaptive;
  LinkProtocol link(g, client, cfg, 4);
  LoopMailer mailer(5);
  mailer.set_loss_rate(0.3);
  for (ProcessorId p = 0; p < g.n(); ++p) {
    link.on_start(p, mailer);
  }

  std::uint64_t counter = 0;
  const auto run_rounds = [&](int rounds) {
    for (int r = 0; r < rounds; ++r) {
      for (ProcessorId p = 0; p < g.n(); ++p) {
        for (ProcessorId q : g.neighbors(p)) {
          for (int burst = 0; burst < 4 && link.try_send(p, q, 1, ++counter);
               ++burst) {
          }
        }
      }
      link.flush();          // staged data batches hit the wire
      mailer.flush(link);    // delivery; acks + resyncs stage in turn
      link.flush();
      link.tick();
    }
  };

  run_rounds(100);  // warm-up
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  run_rounds(300);
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
  EXPECT_GT(client.delivered, 0u);
  EXPECT_GT(link.stats().retransmits, 0u);
  EXPECT_GT(link.stats().ooo_buffered, 0u);
  EXPECT_GT(link.stats().coalesced_batches, 0u);
  EXPECT_GT(link.stats().backpressured, 0u);
}

TEST(LinkAlloc, EndpointResetAllocatesNothing) {
  // Crash-recovery resets reuse the same flat arrays.
  const auto g = graph::make_cycle(8);
  NullClient client;
  LinkProtocol link(g, client, LinkConfig{}, 6);
  LoopMailer mailer(7);
  for (ProcessorId p = 0; p < g.n(); ++p) {
    link.on_start(p, mailer);
  }
  for (int r = 0; r < 50; ++r) {  // warm-up
    for (ProcessorId p = 0; p < g.n(); ++p) {
      link.send_latest(p, (p + 1) % g.n(), 1, r);
    }
    mailer.flush(link);
    link.tick();
  }
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int r = 0; r < 100; ++r) {
    link.reset_endpoint(static_cast<ProcessorId>(r % g.n()));
    for (ProcessorId p = 0; p < g.n(); ++p) {
      link.send_latest(p, (p + 1) % g.n(), 1, 1000 + r);
    }
    mailer.flush(link);
    link.tick();
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
  EXPECT_GT(link.stats().peer_resets, 0u);
}

}  // namespace
}  // namespace snappif::mp
