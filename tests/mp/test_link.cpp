// LinkProtocol: exactly-once in-order delivery across the substrate's whole
// fault matrix, retransmission backoff capping, and resilience to arbitrary
// initial channel content (phantom acks and data frames).
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "graph/generators.hpp"
#include "mp/link.hpp"
#include "mp/network.hpp"

namespace snappif::mp {
namespace {

/// Records every exactly-once upcall and every peer-reset notification.
class Recorder final : public LinkClient {
 public:
  struct Datagram {
    ProcessorId to;
    ProcessorId from;
    std::uint8_t kind;
    std::uint64_t payload;
  };
  struct Reset {
    ProcessorId at;
    ProcessorId from;
  };

  void on_link_start(ProcessorId, LinkProtocol&) override {}
  void on_link_deliver(ProcessorId p, ProcessorId from, std::uint8_t kind,
                       std::uint64_t payload, LinkProtocol&) override {
    delivered.push_back({p, from, kind, payload});
  }
  void on_link_peer_reset(ProcessorId p, ProcessorId from,
                          LinkProtocol&) override {
    resets.push_back({p, from});
  }

  std::vector<Datagram> delivered;
  std::vector<Reset> resets;
};

/// One emulated round: deliver the current batch, then run the timers.
void round(Network& net, LinkProtocol& link) {
  net.step();
  link.tick();
}

/// Rounds until the link drains or the budget runs out; returns success.
[[nodiscard]] bool drain(Network& net, LinkProtocol& link, int budget = 10000) {
  for (int i = 0; i < budget; ++i) {
    if (link.idle() && net.in_flight() == 0) {
      return true;
    }
    round(net, link);
  }
  return false;
}

TEST(Link, ExactlyOnceInOrderOnPerfectChannel) {
  const auto g = graph::make_path(2);
  Recorder client;
  LinkProtocol link(g, client, LinkConfig{}, 1);
  Network net(g, link, Delivery::kSynchronous, 2);
  net.start();
  for (std::uint64_t i = 0; i < 6; ++i) {
    link.send(0, 1, /*kind=*/7, /*payload=*/100 + i);
  }
  ASSERT_TRUE(drain(net, link));
  ASSERT_EQ(client.delivered.size(), 6u);
  for (std::uint64_t i = 0; i < 6; ++i) {
    EXPECT_EQ(client.delivered[i].from, 0u);
    EXPECT_EQ(client.delivered[i].kind, 7u);
    EXPECT_EQ(client.delivered[i].payload, 100 + i);
  }
  EXPECT_EQ(link.stats().delivered, 6u);
  EXPECT_EQ(link.stats().retransmits, 0u);
}

TEST(Link, ExactlyOnceAcrossFaultMatrix) {
  // Every (loss, dup, reorder) combination at seeded extremes must still
  // deliver every datagram exactly once, in send order.
  const auto g = graph::make_path(2);
  constexpr double kLoss[] = {0.0, 0.3, 0.6};
  constexpr double kDup[] = {0.0, 0.3, 0.6};
  constexpr double kReorder[] = {0.0, 0.5};
  constexpr std::uint64_t kTotal = 24;
  std::uint64_t seed = 5;
  for (const double loss : kLoss) {
    for (const double dup : kDup) {
      for (const double reorder : kReorder) {
        SCOPED_TRACE(::testing::Message() << "loss=" << loss << " dup=" << dup
                                          << " reorder=" << reorder);
        Recorder client;
        LinkProtocol link(g, client, LinkConfig{}, seed);
        Network net(g, link, Delivery::kSynchronous, seed + 1);
        ++seed;
        net.set_loss_rate(loss);
        net.set_duplication_rate(dup);
        net.set_reorder_rate(reorder);
        net.start();
        // Feed in bursts below the pending-ring capacity, draining between
        // bursts (the ring bounds buffering by design).
        std::uint64_t next = 0;
        while (next < kTotal) {
          for (int burst = 0; burst < 4 && next < kTotal; ++burst, ++next) {
            link.send(0, 1, /*kind=*/3, next);
          }
          ASSERT_TRUE(drain(net, link));
        }
        ASSERT_EQ(client.delivered.size(), kTotal);
        for (std::uint64_t i = 0; i < kTotal; ++i) {
          EXPECT_EQ(client.delivered[i].payload, i);
        }
        if (loss > 0.0) {
          EXPECT_GT(link.stats().retransmits, 0u);
        }
        if (dup > 0.0) {
          EXPECT_GT(link.stats().duplicates_discarded, 0u);
        }
      }
    }
  }
}

TEST(Link, BackoffCapIsRespected) {
  // On a channel that drops everything, retransmissions settle into the
  // capped period instead of doubling forever.  With rto_initial=2 and
  // rto_cap=16 the timer fires at ticks 2, 6, 14, 30, 46, ... — 14 times in
  // 200 ticks.  Uncapped doubling (2, 6, 14, 30, 62, 126, 254) would fire
  // only 6 times: the floor proves the cap, the ceiling proves the backoff.
  const auto g = graph::make_path(2);
  Recorder client;
  LinkProtocol link(g, client, LinkConfig{}, 3);
  Network net(g, link, Delivery::kSynchronous, 4);
  net.set_loss_rate(1.0);
  net.start();
  link.send(0, 1, 1, 42);
  for (int t = 0; t < 200; ++t) {
    round(net, link);
  }
  EXPECT_EQ(link.stats().timer_fires, 14u);
  EXPECT_EQ(link.stats().retransmits, 14u);
  EXPECT_TRUE(client.delivered.empty());
}

TEST(Link, PhantomAckFromInitialChannelStateIsDiscarded) {
  // Arbitrary initial channel content: an ack nobody sent is waiting in the
  // channel at start.  It can never match the (incarnation, seq) actually in
  // flight, so it must be counted spurious and change nothing.
  const auto g = graph::make_path(2);
  Recorder client;
  LinkConfig cfg;
  LinkProtocol link(g, client, cfg, 5);
  Network net(g, link, Delivery::kSynchronous, 6);
  net.start();
  // Phantom ack toward 0 (acks flow receiver -> sender), then real traffic.
  net.send(1, 0, Message{cfg.ack_kind, /*inc|seq<<16=*/0x00BEEFULL, 0});
  link.send(0, 1, 2, 7);
  ASSERT_TRUE(drain(net, link));
  EXPECT_GE(link.stats().spurious_acks, 1u);
  ASSERT_EQ(client.delivered.size(), 1u);
  EXPECT_EQ(client.delivered[0].payload, 7u);
}

TEST(Link, PhantomDataDeliveredAtMostOnceThenSupersededByRealTraffic) {
  // A phantom data frame is indistinguishable from a first contact: it is
  // delivered (once — duplicates of it are discarded) and, like every
  // unproven incarnation, surfaces as a peer reset.  The first real frame
  // carries a different incarnation, surfacing as a second reset.
  const auto g = graph::make_path(2);
  Recorder client;
  LinkConfig cfg;
  LinkProtocol link(g, client, cfg, 7);
  Network net(g, link, Delivery::kSynchronous, 8);
  net.start();
  const std::uint64_t phantom_header =
      0x1234ULL | (7ULL << 16) | (5ULL << 32);  // inc | seq | user kind
  net.send(0, 1, Message{cfg.data_kind, phantom_header, 0xDEADULL});
  net.send(0, 1, Message{cfg.data_kind, phantom_header, 0xDEADULL});  // dup
  ASSERT_TRUE(drain(net, link));
  ASSERT_EQ(client.delivered.size(), 1u);
  EXPECT_EQ(client.delivered[0].payload, 0xDEADULL);
  EXPECT_EQ(client.delivered[0].kind, 5u);
  EXPECT_EQ(link.stats().duplicates_discarded, 1u);
  // The phantom's acks reach a sender with nothing in flight: spurious.
  EXPECT_EQ(link.stats().spurious_acks, 2u);
  EXPECT_EQ(link.stats().peer_resets, 1u);  // the phantom itself

  link.send(0, 1, 2, 99);
  ASSERT_TRUE(drain(net, link));
  ASSERT_EQ(client.delivered.size(), 2u);
  EXPECT_EQ(client.delivered[1].payload, 99u);
  // Real sender incarnation != phantom incarnation (1 in 2^16 would collide;
  // the seeds here do not), so real traffic surfaces a second reset.
  EXPECT_EQ(link.stats().peer_resets, 2u);
  ASSERT_EQ(client.resets.size(), 2u);
  EXPECT_EQ(client.resets[1].at, 1u);
  EXPECT_EQ(client.resets[1].from, 0u);
}

TEST(Link, MalformedHeadersAndUnknownKindsAreJunk) {
  const auto g = graph::make_path(2);
  Recorder client;
  LinkConfig cfg;
  LinkProtocol link(g, client, cfg, 9);
  Network net(g, link, Delivery::kSynchronous, 10);
  net.start();
  net.send(0, 1, Message{cfg.data_kind, 1ULL << 40, 3});  // zero bits violated
  net.send(0, 1, Message{cfg.ack_kind, 1ULL << 32, 0});   // ditto for an ack
  net.send(0, 1, Message{7, 0, 0});                       // not a link kind
  ASSERT_TRUE(drain(net, link));
  EXPECT_EQ(link.stats().junk_discarded, 3u);
  EXPECT_TRUE(client.delivered.empty());
}

TEST(Link, EndpointResetTriggersPeerResetAndResynchronizes) {
  const auto g = graph::make_path(2);
  Recorder client;
  LinkProtocol link(g, client, LinkConfig{}, 11);
  Network net(g, link, Delivery::kSynchronous, 12);
  net.start();
  link.send(0, 1, 1, 10);
  link.send(1, 0, 1, 20);
  ASSERT_TRUE(drain(net, link));
  ASSERT_EQ(client.delivered.size(), 2u);
  // First contact on each direction is itself a re-sync signal: neither
  // receiver can prove continuity with an incarnation it has never seen.
  ASSERT_EQ(client.resets.size(), 2u);

  link.reset_endpoint(0);
  link.send(0, 1, 1, 30);
  ASSERT_TRUE(drain(net, link));
  // 1 saw a fresh incarnation from 0 and was told to re-sync it...
  ASSERT_EQ(client.resets.size(), 3u);
  EXPECT_EQ(client.resets[2].at, 1u);
  EXPECT_EQ(client.resets[2].from, 0u);
  // ...and the datagram itself still arrived exactly once.
  ASSERT_EQ(client.delivered.size(), 3u);
  EXPECT_EQ(client.delivered[2].payload, 30u);

  // Traffic toward the reset endpoint also restarts cleanly: 0 forgot its
  // receive history, so 1's next frame (same incarnation) is first contact —
  // and MUST also surface as a re-sync.  (If 1 had silently rebooted while
  // 0's history was wiped, this upcall is the only thing standing between
  // 1's stale view of 0 and a permanent deadlock.)
  link.send(1, 0, 1, 40);
  ASSERT_TRUE(drain(net, link));
  ASSERT_EQ(client.delivered.size(), 4u);
  EXPECT_EQ(client.delivered[3].payload, 40u);
  ASSERT_EQ(client.resets.size(), 4u);
  EXPECT_EQ(client.resets[3].at, 0u);
  EXPECT_EQ(client.resets[3].from, 1u);
}

TEST(Link, SendLatestSupersedesPendingSnapshot) {
  const auto g = graph::make_path(2);
  Recorder client;
  LinkProtocol link(g, client, LinkConfig{}, 13);
  Network net(g, link, Delivery::kSynchronous, 14);
  net.start();
  link.send_latest(0, 1, 1, 100);  // goes in flight immediately
  link.send_latest(0, 1, 1, 101);  // pending
  link.send_latest(0, 1, 1, 102);  // overwrites 101
  link.send_latest(0, 1, 1, 103);  // overwrites 102
  EXPECT_EQ(link.stats().superseded, 2u);
  ASSERT_TRUE(drain(net, link));
  // Only the in-flight frame and the LATEST snapshot ever used bandwidth.
  ASSERT_EQ(client.delivered.size(), 2u);
  EXPECT_EQ(client.delivered[0].payload, 100u);
  EXPECT_EQ(client.delivered[1].payload, 103u);
  EXPECT_EQ(link.stats().data_sent, 2u);
}

TEST(Link, ValidateNamesTheBrokenKnob) {
  EXPECT_FALSE(validate(LinkConfig{}).has_value());
  struct Case {
    const char* expect;  // substring of the objection
    void (*tweak)(LinkConfig&);
  };
  const Case cases[] = {
      {"kinds must differ", [](LinkConfig& c) { c.ack_kind = c.data_kind; }},
      {"rto_initial must be >= 1", [](LinkConfig& c) { c.rto_initial = 0; }},
      {"rto_cap must be >= rto_initial",
       [](LinkConfig& c) {
         c.rto_initial = 8;
         c.rto_cap = 4;
       }},
      {"rto_min", [](LinkConfig& c) { c.rto_min = 0; }},
      {"rto_min", [](LinkConfig& c) { c.rto_min = c.rto_initial + 1; }},
      {"queue_capacity", [](LinkConfig& c) { c.queue_capacity = 0; }},
  };
  for (const Case& c : cases) {
    LinkConfig cfg;
    c.tweak(cfg);
    const auto objection = validate(cfg);
    ASSERT_TRUE(objection.has_value()) << c.expect;
    EXPECT_NE(objection->find(c.expect), std::string::npos)
        << c.expect << " -> " << *objection;
  }
}

TEST(Link, AdaptiveRtoConvergesToTheChannelRtt) {
  // Synchronous loopback RTT is a constant 2 ticks (data delivered on one
  // step, ack on the next).  The estimator must pull the retransmission
  // timer down to srtt + max(1, rttvar): far below a conservative fixed
  // rto_initial — that gap is the whole point of adaptive RTO.
  const auto g = graph::make_path(2);
  Recorder client;
  LinkConfig cfg;
  cfg.rto_initial = 12;  // deliberately conservative start
  cfg.rto_mode = RtoMode::kAdaptive;
  LinkProtocol link(g, client, cfg, 41);
  Network net(g, link, Delivery::kSynchronous, 42);
  net.start();

  // Seed the estimator with clean samples first.
  for (std::uint64_t i = 0; i < 12; ++i) {
    link.send(0, 1, 1, i);
    ASSERT_TRUE(drain(net, link));
  }
  EXPECT_EQ(link.stats().rtt_samples, 12u);
  EXPECT_EQ(link.stats().retransmits, 0u);

  // Now lose one frame and count ticks until the timer fires: an adapted
  // timer reacts within a handful of ticks where rto_initial=12 would sit
  // idle.  (Backoff still doubles from the adapted base on repeat fires.)
  net.set_loss_rate(1.0);
  link.send(0, 1, 1, 99);
  int ticks_to_fire = 0;
  while (link.stats().retransmits == 0 && ticks_to_fire < 11) {
    round(net, link);
    ++ticks_to_fire;
  }
  EXPECT_GT(link.stats().retransmits, 0u);
  EXPECT_LT(ticks_to_fire, 11);  // fired before the fixed initial would
  net.set_loss_rate(0.0);
  ASSERT_TRUE(drain(net, link));
  ASSERT_FALSE(client.delivered.empty());
  EXPECT_EQ(client.delivered.back().payload, 99u);
}

TEST(Link, KarnsRuleExcludesRetransmittedAcksFromTheEstimator) {
  const auto g = graph::make_path(2);
  Recorder client;
  LinkConfig cfg;
  cfg.rto_mode = RtoMode::kAdaptive;
  LinkProtocol link(g, client, cfg, 43);
  Network net(g, link, Delivery::kSynchronous, 44);
  net.start();

  // One clean exchange: sampled.
  link.send(0, 1, 1, 0);
  ASSERT_TRUE(drain(net, link));
  EXPECT_EQ(link.stats().rtt_samples, 1u);

  // Lose the first copy of the next frame: its ack follows a
  // retransmission, so the sample is ambiguous and MUST be suppressed.
  net.set_loss_rate(1.0);
  link.send(0, 1, 1, 1);
  round(net, link);  // first copy lost
  net.set_loss_rate(0.0);
  ASSERT_TRUE(drain(net, link));
  EXPECT_EQ(link.stats().rtt_samples, 1u);  // unchanged
  EXPECT_EQ(link.stats().karn_suppressed, 1u);
  ASSERT_EQ(client.delivered.size(), 2u);
}

TEST(Link, AdaptiveRtoRespectsTheConfiguredFloorAndCap) {
  // With a 2-tick RTT the raw estimate lands near 3; force rto_min above it
  // and the clamp must win (the floor exists so jittery estimates cannot
  // make the link hammer the wire).
  const auto g = graph::make_path(2);
  Recorder client;
  LinkConfig cfg;
  cfg.rto_initial = 8;
  cfg.rto_min = 6;
  cfg.rto_cap = 16;
  cfg.rto_mode = RtoMode::kAdaptive;
  LinkProtocol link(g, client, cfg, 45);
  Network net(g, link, Delivery::kSynchronous, 46);
  net.start();
  for (std::uint64_t i = 0; i < 8; ++i) {
    link.send(0, 1, 1, i);
    ASSERT_TRUE(drain(net, link));
  }
  // Lose a frame: the timer may not fire before the floor.
  net.set_loss_rate(1.0);
  link.send(0, 1, 1, 100);
  for (int t = 0; t < 5; ++t) {
    round(net, link);
  }
  EXPECT_EQ(link.stats().retransmits, 0u);  // floor holds: no fire yet
  for (int t = 0; t < 4; ++t) {
    round(net, link);
  }
  EXPECT_GT(link.stats().retransmits, 0u);  // fires once past the floor
  net.set_loss_rate(0.0);
  ASSERT_TRUE(drain(net, link));
}

TEST(LinkDeath, ConstructorRejectsInvalidConfigs) {
  const auto g = graph::make_path(2);
  Recorder client;
  LinkConfig same_kinds;
  same_kinds.ack_kind = same_kinds.data_kind;
  EXPECT_DEATH(LinkProtocol(g, client, same_kinds, 1), "kinds must differ");

  LinkConfig zero_rto;
  zero_rto.rto_initial = 0;
  EXPECT_DEATH(LinkProtocol(g, client, zero_rto, 1), "rto_initial");

  LinkConfig inverted_cap;
  inverted_cap.rto_initial = 8;
  inverted_cap.rto_cap = 4;
  EXPECT_DEATH(LinkProtocol(g, client, inverted_cap, 1), "rto_cap");

  LinkConfig bad_min;
  bad_min.rto_min = 0;
  EXPECT_DEATH(LinkProtocol(g, client, bad_min, 1), "rto_min");

  LinkConfig zero_ring;
  zero_ring.queue_capacity = 0;
  EXPECT_DEATH(LinkProtocol(g, client, zero_ring, 1), "queue_capacity");
}

TEST(LinkDeath, SendAssertsWhenPendingRingOverflows) {
  const auto g = graph::make_path(2);
  Recorder client;
  LinkConfig cfg;
  cfg.queue_capacity = 2;
  LinkProtocol link(g, client, cfg, 15);
  Network net(g, link, Delivery::kSynchronous, 16);
  net.set_loss_rate(1.0);  // nothing ever acks, so nothing drains
  net.start();
  link.send(0, 1, 1, 0);  // in flight
  link.send(0, 1, 1, 1);  // pending
  link.send(0, 1, 1, 2);  // pending (ring full)
  EXPECT_DEATH(link.send(0, 1, 1, 3), "pending ring full");
}

TEST(LinkDeath, RejectsNonEdgeSend) {
  const auto g = graph::make_path(3);
  Recorder client;
  LinkProtocol link(g, client, LinkConfig{}, 17);
  Network net(g, link, Delivery::kSynchronous, 18);
  net.start();
  EXPECT_DEATH(link.send(0, 2, 1, 0), "non-edge");
}

}  // namespace
}  // namespace snappif::mp
