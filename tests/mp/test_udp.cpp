// UdpTransport: real localhost datagrams under the same protocol stack the
// deterministic suites pin.  These tests are NOT seeded-deterministic (the
// kernel schedules delivery) — they assert protocol-level outcomes (every
// frame arrives, exactly-once in-order holds) and wire-garbage rejection,
// never specific interleavings.
#include "mp/udp_transport.hpp"

#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <vector>

#include "graph/generators.hpp"
#include "mp/impairment.hpp"
#include "mp/link.hpp"

namespace snappif::mp {
namespace {

class RawSink final : public IMpProtocol {
 public:
  void on_start(ProcessorId, Mailer&) override {}
  void on_message(ProcessorId p, ProcessorId from, const Message& m,
                  Mailer&) override {
    received.push_back({p, from, m.a});
  }
  struct Entry {
    ProcessorId to;
    ProcessorId from;
    std::uint64_t payload;
  };
  std::vector<Entry> received;
};

class Recorder final : public LinkClient {
 public:
  void on_link_start(ProcessorId, LinkProtocol&) override {}
  void on_link_deliver(ProcessorId p, ProcessorId from, std::uint8_t,
                       std::uint64_t payload, LinkProtocol&) override {
    delivered.push_back({p, from, payload});
  }
  void on_link_peer_reset(ProcessorId, ProcessorId, LinkProtocol&) override {}

  struct Entry {
    ProcessorId to;
    ProcessorId from;
    std::uint64_t payload;
  };
  std::vector<Entry> delivered;
};

/// Polls the transport until `done` or the budget runs out.  UDP idle() is
/// only "last step drained nothing", so loops poll on the condition they
/// actually care about.
template <typename Pred>
[[nodiscard]] bool poll_until(ITransport& t, Pred done, int budget = 200000) {
  for (int i = 0; i < budget; ++i) {
    if (done()) {
      return true;
    }
    t.step();
  }
  return done();
}

TEST(Udp, BindsDistinctEphemeralPortsPerProcessor) {
  const auto g = graph::make_cycle(4);
  RawSink sink;
  UdpTransport udp(g, sink, UdpConfig{});
  for (ProcessorId p = 0; p < g.n(); ++p) {
    EXPECT_NE(udp.port(p), 0) << p;
    for (ProcessorId q = p + 1; q < g.n(); ++q) {
      EXPECT_NE(udp.port(p), udp.port(q)) << p << "," << q;
    }
  }
}

TEST(Udp, DeliversFramesBetweenNeighbors) {
  const auto g = graph::make_path(2);
  RawSink sink;
  UdpTransport udp(g, sink, UdpConfig{});
  udp.start();
  for (std::uint64_t i = 0; i < 16; ++i) {
    udp.send(0, 1, Message{3, i, 1000 + i});
  }
  ASSERT_TRUE(poll_until(udp, [&] { return sink.received.size() >= 16; }));
  // Localhost UDP between two sockets preserves neither order nor delivery
  // in general — but every frame we sent must be accounted for here (16
  // small datagrams fit any default socket buffer).
  ASSERT_EQ(sink.received.size(), 16u);
  std::vector<bool> seen(16, false);
  for (const auto& e : sink.received) {
    EXPECT_EQ(e.to, 1u);
    EXPECT_EQ(e.from, 0u);
    ASSERT_LT(e.payload, 16u);
    EXPECT_FALSE(seen[e.payload]) << "duplicate " << e.payload;
    seen[e.payload] = true;
  }
  EXPECT_EQ(udp.transport_stats().sent, 16u);
  EXPECT_EQ(udp.transport_stats().delivered, 16u);
}

TEST(Udp, LinkOverRealSocketsIsExactlyOnceInOrder) {
  const auto g = graph::make_cycle(4);
  Recorder client;
  LinkProtocol link(g, client, LinkConfig{}, 31);
  UdpTransport udp(g, link, UdpConfig{});
  udp.start();
  constexpr std::uint64_t kPerEdge = 8;
  for (std::uint64_t i = 0; i < kPerEdge; ++i) {
    link.send(0, 1, 1, i);
    link.send(2, 3, 1, 100 + i);
    // Drain between bursts: the pending ring bounds buffering by design.
    ASSERT_TRUE(poll_until(udp, [&] {
      link.tick();
      return link.idle();
    }));
  }
  std::vector<std::uint64_t> on_01;
  std::vector<std::uint64_t> on_23;
  for (const auto& e : client.delivered) {
    if (e.from == 0) {
      on_01.push_back(e.payload);
    } else if (e.from == 2) {
      on_23.push_back(e.payload);
    }
  }
  ASSERT_EQ(on_01.size(), kPerEdge);
  ASSERT_EQ(on_23.size(), kPerEdge);
  for (std::uint64_t i = 0; i < kPerEdge; ++i) {
    EXPECT_EQ(on_01[i], i);
    EXPECT_EQ(on_23[i], 100 + i);
  }
}

TEST(Udp, LinkSurvivesShimImpairmentOverRealSockets) {
  // The full Issue-9 stack in miniature: link over shim over real UDP, 30%
  // injected loss plus duplication.  Exactly-once in-order delivery must
  // hold on the real wire exactly as it does on the loopback.
  const auto g = graph::make_path(2);
  Recorder client;
  LinkProtocol link(g, client, LinkConfig{}, 33);
  ImpairmentShim shim(link, g.n(), 34);
  UdpTransport udp(g, shim, UdpConfig{});
  shim.bind(udp);
  shim.set_loss_rate(0.3);
  shim.set_duplication_rate(0.2);
  shim.start();
  constexpr std::uint64_t kTotal = 32;
  std::uint64_t next = 0;
  while (next < kTotal) {
    for (int burst = 0; burst < 4 && next < kTotal; ++burst, ++next) {
      link.send(0, 1, 2, next);
    }
    ASSERT_TRUE(poll_until(shim, [&] {
      link.tick();
      return link.idle() && shim.idle();
    }));
  }
  ASSERT_EQ(client.delivered.size(), kTotal);
  for (std::uint64_t i = 0; i < kTotal; ++i) {
    EXPECT_EQ(client.delivered[i].payload, i);
  }
  EXPECT_GT(shim.transport_stats().dropped, 0u);
  EXPECT_GT(link.stats().retransmits, 0u);
}

TEST(Udp, WireGarbageIsCountedAndDropped) {
  const auto g = graph::make_path(2);
  RawSink sink;
  UdpTransport udp(g, sink, UdpConfig{});
  udp.start();

  // Fire raw garbage at processor 1's real port from an unrelated socket:
  // wrong size, bad magic, and a non-edge frame wearing the right magic.
  const int attacker = ::socket(AF_INET, SOCK_DGRAM, 0);
  ASSERT_GE(attacker, 0);
  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  dst.sin_port = htons(udp.port(1));
  dst.sin_addr.s_addr = htonl(INADDR_LOOPBACK);

  const char junk[] = "not a frame";
  ASSERT_GT(::sendto(attacker, junk, sizeof(junk), 0,
                     reinterpret_cast<const sockaddr*>(&dst), sizeof(dst)),
            0);
  unsigned char bad_magic[32] = {0xde, 0xad, 0xbe, 0xef};
  ASSERT_EQ(::sendto(attacker, bad_magic, sizeof(bad_magic), 0,
                     reinterpret_cast<const sockaddr*>(&dst), sizeof(dst)),
            32);
  // Correct magic, but claims an out-of-range sender.
  unsigned char bad_from[32] = {};
  const std::uint32_t magic = 0x46495053;
  const std::uint32_t from = 0xffff;
  const std::uint32_t to = 1;
  __builtin_memcpy(bad_from + 0, &magic, 4);
  __builtin_memcpy(bad_from + 4, &from, 4);
  __builtin_memcpy(bad_from + 8, &to, 4);
  ASSERT_EQ(::sendto(attacker, bad_from, sizeof(bad_from), 0,
                     reinterpret_cast<const sockaddr*>(&dst), sizeof(dst)),
            32);
  ::close(attacker);

  ASSERT_TRUE(poll_until(
      udp, [&] { return udp.transport_stats().rx_errors >= 3; }));
  EXPECT_TRUE(sink.received.empty());

  // A legitimate frame still flows after the garbage.
  udp.send(0, 1, Message{1, 42, 0});
  ASSERT_TRUE(poll_until(udp, [&] { return !sink.received.empty(); }));
  EXPECT_EQ(sink.received[0].payload, 42u);
}

}  // namespace
}  // namespace snappif::mp
