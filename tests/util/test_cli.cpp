#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>

namespace snappif::util {
namespace {

Cli parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, EqualsSyntax) {
  const Cli cli = parse({"--n=32", "--name=ring"});
  EXPECT_EQ(cli.get_int("n", 0), 32);
  EXPECT_EQ(cli.get_string("name", ""), "ring");
}

TEST(Cli, SpaceSyntax) {
  const Cli cli = parse({"--n", "64"});
  EXPECT_EQ(cli.get_int("n", 0), 64);
}

TEST(Cli, BareBooleans) {
  const Cli cli = parse({"--verbose", "--no-color"});
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_FALSE(cli.get_bool("color", true));
}

TEST(Cli, DefaultsWhenAbsent) {
  const Cli cli = parse({});
  EXPECT_EQ(cli.get_int("n", 5), 5);
  EXPECT_EQ(cli.get_string("x", "dft"), "dft");
  EXPECT_TRUE(cli.get_bool("b", true));
  EXPECT_DOUBLE_EQ(cli.get_double("d", 0.5), 0.5);
}

TEST(Cli, MalformedIntFallsBack) {
  const Cli cli = parse({"--n=abc"});
  EXPECT_EQ(cli.get_int("n", 9), 9);
}

TEST(Cli, LastOccurrenceWins) {
  const Cli cli = parse({"--n=1", "--n=2"});
  EXPECT_EQ(cli.get_int("n", 0), 2);
}

TEST(Cli, PositionalsCollected) {
  const Cli cli = parse({"alpha", "--x=1", "beta"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "alpha");
  EXPECT_EQ(cli.positional()[1], "beta");
}

TEST(Cli, DoubleDashEndsFlags) {
  const Cli cli = parse({"--", "--not-a-flag"});
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "--not-a-flag");
  EXPECT_FALSE(cli.has("not-a-flag"));
}

TEST(Cli, HasDetectsPresence) {
  const Cli cli = parse({"--q"});
  EXPECT_TRUE(cli.has("q"));
  EXPECT_FALSE(cli.has("r"));
}

TEST(Cli, DoubleParsing) {
  const Cli cli = parse({"--rate=0.25"});
  EXPECT_DOUBLE_EQ(cli.get_double("rate", 0), 0.25);
}

TEST(Cli, U64ParsesFullRange) {
  // get_int would mangle these: 2^63 and UINT64_MAX overflow long long.
  const Cli cli = parse({"--zero=0", "--big=9223372036854775808",
                         "--max=18446744073709551615"});
  EXPECT_EQ(cli.get_u64("zero", 7), 0u);
  EXPECT_EQ(cli.get_u64("big", 7), 9223372036854775808ull);
  EXPECT_EQ(cli.get_u64("max", 7), UINT64_MAX);
}

TEST(Cli, U64RejectsMalformedAndOverflow) {
  const Cli cli = parse({"--neg=-1", "--plus=+3", "--junk=12x",
                         "--huge=18446744073709551616", "--empty="});
  // strtoull would silently wrap "-1" to UINT64_MAX; get_u64 must not.
  EXPECT_EQ(cli.get_u64("neg", 9), 9u);
  EXPECT_EQ(cli.get_u64("plus", 9), 9u);
  EXPECT_EQ(cli.get_u64("junk", 9), 9u);
  EXPECT_EQ(cli.get_u64("huge", 9), 9u);
  EXPECT_EQ(cli.get_u64("empty", 9), 9u);
  EXPECT_EQ(cli.get_u64("absent", 9), 9u);
}

TEST(Cli, U64SeedRoundTripsThroughPrintedRepro) {
  // The fuzz/chaos tools print "--seed=%llu" repro lines; feeding such a
  // line back must reproduce the seed exactly for every representable value.
  const std::uint64_t seeds[] = {0ull, 1ull, 0x9e3779b97f4a7c15ull,
                                 1ull << 63, UINT64_MAX};
  for (const std::uint64_t seed : seeds) {
    char flag[32];
    std::snprintf(flag, sizeof(flag), "--seed=%llu",
                  static_cast<unsigned long long>(seed));
    const Cli cli = parse({flag});
    EXPECT_EQ(cli.get_u64("seed", seed + 1), seed);
  }
}

}  // namespace
}  // namespace snappif::util
