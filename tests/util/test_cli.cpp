#include "util/cli.hpp"

#include <gtest/gtest.h>

namespace snappif::util {
namespace {

Cli parse(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, EqualsSyntax) {
  const Cli cli = parse({"--n=32", "--name=ring"});
  EXPECT_EQ(cli.get_int("n", 0), 32);
  EXPECT_EQ(cli.get_string("name", ""), "ring");
}

TEST(Cli, SpaceSyntax) {
  const Cli cli = parse({"--n", "64"});
  EXPECT_EQ(cli.get_int("n", 0), 64);
}

TEST(Cli, BareBooleans) {
  const Cli cli = parse({"--verbose", "--no-color"});
  EXPECT_TRUE(cli.get_bool("verbose", false));
  EXPECT_FALSE(cli.get_bool("color", true));
}

TEST(Cli, DefaultsWhenAbsent) {
  const Cli cli = parse({});
  EXPECT_EQ(cli.get_int("n", 5), 5);
  EXPECT_EQ(cli.get_string("x", "dft"), "dft");
  EXPECT_TRUE(cli.get_bool("b", true));
  EXPECT_DOUBLE_EQ(cli.get_double("d", 0.5), 0.5);
}

TEST(Cli, MalformedIntFallsBack) {
  const Cli cli = parse({"--n=abc"});
  EXPECT_EQ(cli.get_int("n", 9), 9);
}

TEST(Cli, LastOccurrenceWins) {
  const Cli cli = parse({"--n=1", "--n=2"});
  EXPECT_EQ(cli.get_int("n", 0), 2);
}

TEST(Cli, PositionalsCollected) {
  const Cli cli = parse({"alpha", "--x=1", "beta"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "alpha");
  EXPECT_EQ(cli.positional()[1], "beta");
}

TEST(Cli, DoubleDashEndsFlags) {
  const Cli cli = parse({"--", "--not-a-flag"});
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "--not-a-flag");
  EXPECT_FALSE(cli.has("not-a-flag"));
}

TEST(Cli, HasDetectsPresence) {
  const Cli cli = parse({"--q"});
  EXPECT_TRUE(cli.has("q"));
  EXPECT_FALSE(cli.has("r"));
}

TEST(Cli, DoubleParsing) {
  const Cli cli = parse({"--rate=0.25"});
  EXPECT_DOUBLE_EQ(cli.get_double("rate", 0), 0.25);
}

}  // namespace
}  // namespace snappif::util
