#include "util/table.hpp"

#include <gtest/gtest.h>

namespace snappif::util {
namespace {

TEST(Table, RenderAlignsColumns) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer-name", "23456"});
  const std::string out = t.render();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("| name"), std::string::npos);
}

TEST(Table, CellAccess) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_EQ(t.columns(), 2u);
  EXPECT_EQ(t.cell(0, 1), "2");
}

TEST(Table, CsvEscapesSpecials) {
  Table t({"a"});
  t.add_row({"plain"});
  t.add_row({"with,comma"});
  t.add_row({"with\"quote"});
  const std::string csv = t.render_csv();
  EXPECT_NE(csv.find("plain\n"), std::string::npos);
  EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Fmt, Integers) {
  EXPECT_EQ(fmt(42), "42");
  EXPECT_EQ(fmt(-7), "-7");
  EXPECT_EQ(fmt(std::uint64_t{18446744073709551615ull}), "18446744073709551615");
  EXPECT_EQ(fmt(std::size_t{0}), "0");
}

TEST(Fmt, Doubles) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(3.14159, 0), "3");
  EXPECT_EQ(fmt(-0.5, 1), "-0.5");
}

TEST(Fmt, Bools) {
  EXPECT_EQ(fmt_bool(true), "yes");
  EXPECT_EQ(fmt_bool(false), "no");
}

}  // namespace
}  // namespace snappif::util
