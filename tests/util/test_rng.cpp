#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace snappif::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += (a() == b()) ? 1 : 0;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneIsAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(rng.below(1), 0u);
  }
}

TEST(Rng, RangeIsInclusive) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all five values appear
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  const int k = 10000;
  for (int i = 0; i < k; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / k, 0.5, 0.02);
}

TEST(Rng, ChanceExtremes) {
  Rng rng(17);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, BelowIsRoughlyUniform) {
  Rng rng(19);
  std::vector<int> counts(10, 0);
  const int k = 100000;
  for (int i = 0; i < k; ++i) {
    ++counts[rng.below(10)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, k / 10, k / 10 * 0.1);
  }
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, ShuffleActuallyShuffles) {
  Rng rng(29);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) {
    v[i] = i;
  }
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);
}

TEST(Rng, PickCoversAllElements) {
  Rng rng(31);
  const std::vector<int> v{10, 20, 30};
  std::set<int> seen;
  for (int i = 0; i < 200; ++i) {
    seen.insert(rng.pick(v));
  }
  EXPECT_EQ(seen.size(), 3u);
}

TEST(Rng, ForkIsIndependent) {
  Rng a(5);
  Rng b = a.fork();
  // The fork and the parent produce different streams.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    same += (a() == b()) ? 1 : 0;
  }
  EXPECT_LT(same, 3);
}

TEST(Splitmix, KnownToBeStable) {
  // Pin the splitmix64 output so configuration hashing stays stable across
  // refactors (model-check witnesses reference packed values).
  std::uint64_t s = 0;
  const auto v1 = splitmix64(s);
  const auto v2 = splitmix64(s);
  EXPECT_NE(v1, v2);
  std::uint64_t s2 = 0;
  EXPECT_EQ(splitmix64(s2), v1);
}

TEST(HashCombine, OrderSensitive) {
  const auto h1 = hash_combine(hash_combine(0, 1), 2);
  const auto h2 = hash_combine(hash_combine(0, 2), 1);
  EXPECT_NE(h1, h2);
}

}  // namespace
}  // namespace snappif::util
