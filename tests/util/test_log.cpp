#include "util/log.hpp"

#include <gtest/gtest.h>

namespace snappif::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrip) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(Log, SuppressedBelowThresholdEmittedAbove) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  ::testing::internal::CaptureStderr();
  SNAPPIF_LOG_DEBUG("invisible %d", 1);
  SNAPPIF_LOG_INFO("also invisible");
  SNAPPIF_LOG_WARN("visible warning %s", "w");
  SNAPPIF_LOG_ERROR("visible error");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("invisible"), std::string::npos);
  EXPECT_NE(err.find("visible warning w"), std::string::npos);
  EXPECT_NE(err.find("visible error"), std::string::npos);
  EXPECT_NE(err.find("[WARN ]"), std::string::npos);
  EXPECT_NE(err.find("[ERROR]"), std::string::npos);
}

TEST(Log, OffSilencesEverything) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  ::testing::internal::CaptureStderr();
  SNAPPIF_LOG_ERROR("nope");
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

TEST(Log, FormatsArguments) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  SNAPPIF_LOG_INFO("x=%d y=%s", 42, "abc");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("x=42 y=abc"), std::string::npos);
}

}  // namespace
}  // namespace snappif::util
