#include "util/log.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

namespace snappif::util {
namespace {

class LogLevelGuard {
 public:
  LogLevelGuard() : saved_(log_level()) {}
  ~LogLevelGuard() { set_log_level(saved_); }

 private:
  LogLevel saved_;
};

TEST(Log, LevelRoundTrip) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST(Log, SuppressedBelowThresholdEmittedAbove) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kWarn);
  ::testing::internal::CaptureStderr();
  SNAPPIF_LOG_DEBUG("invisible %d", 1);
  SNAPPIF_LOG_INFO("also invisible");
  SNAPPIF_LOG_WARN("visible warning %s", "w");
  SNAPPIF_LOG_ERROR("visible error");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(err.find("invisible"), std::string::npos);
  EXPECT_NE(err.find("visible warning w"), std::string::npos);
  EXPECT_NE(err.find("visible error"), std::string::npos);
  EXPECT_NE(err.find("[WARN ]"), std::string::npos);
  EXPECT_NE(err.find("[ERROR]"), std::string::npos);
}

TEST(Log, OffSilencesEverything) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kOff);
  ::testing::internal::CaptureStderr();
  SNAPPIF_LOG_ERROR("nope");
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

TEST(Log, FormatsArguments) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  SNAPPIF_LOG_INFO("x=%d y=%s", 42, "abc");
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("x=42 y=abc"), std::string::npos);
}

TEST(Log, ParseLevelNames) {
  EXPECT_EQ(parse_log_level("debug", LogLevel::kOff), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO", LogLevel::kOff), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warn", LogLevel::kOff), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("warning", LogLevel::kOff), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error", LogLevel::kOff), LogLevel::kError);
  EXPECT_EQ(parse_log_level("off", LogLevel::kDebug), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("none", LogLevel::kDebug), LogLevel::kOff);
  EXPECT_EQ(parse_log_level("bogus", LogLevel::kInfo), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("", LogLevel::kError), LogLevel::kError);
}

TEST(Log, EnvVariableControlsLevel) {
  LogLevelGuard guard;
  ASSERT_EQ(setenv("SNAPPIF_LOG_LEVEL", "error", 1), 0);
  reload_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::kError);

  ASSERT_EQ(setenv("SNAPPIF_LOG_LEVEL", "DEBUG", 1), 0);
  reload_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::kDebug);

  ASSERT_EQ(unsetenv("SNAPPIF_LOG_LEVEL"), 0);
}

TEST(Log, EnvJunkWarnsOnceAndFallsBackToInfo) {
  LogLevelGuard guard;
  ASSERT_EQ(setenv("SNAPPIF_LOG_LEVEL", "verbose", 1), 0);
  ::testing::internal::CaptureStderr();
  reload_log_level_from_env();
  SNAPPIF_LOG_DEBUG("below the fallback");  // must be suppressed at info
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(log_level(), LogLevel::kInfo);  // junk -> info, not silence
  EXPECT_NE(err.find("SNAPPIF_LOG_LEVEL=\"verbose\" is not a log level"),
            std::string::npos)
      << err;
  EXPECT_EQ(err.find("below the fallback"), std::string::npos);
  // Exactly one warning per reload: a second bad reload warns again (it is
  // a fresh look at the environment), but within one reload the message
  // appears once.
  EXPECT_EQ(err.find("is not a log level"), err.rfind("is not a log level"));
  ASSERT_EQ(unsetenv("SNAPPIF_LOG_LEVEL"), 0);
}

TEST(Log, EnvWhitespaceAndAliasesAccepted) {
  LogLevelGuard guard;
  ASSERT_EQ(setenv("SNAPPIF_LOG_LEVEL", "  WARNING\t", 1), 0);
  ::testing::internal::CaptureStderr();
  reload_log_level_from_env();
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  EXPECT_TRUE(err.empty()) << err;  // valid names never warn
  ASSERT_EQ(unsetenv("SNAPPIF_LOG_LEVEL"), 0);
}

TEST(Log, ParseStrictLeavesOutputUntouchedOnJunk) {
  LogLevel out = LogLevel::kError;
  EXPECT_FALSE(parse_log_level_strict("chatty", &out));
  EXPECT_EQ(out, LogLevel::kError);
  EXPECT_FALSE(parse_log_level_strict("", &out));
  EXPECT_EQ(out, LogLevel::kError);
  EXPECT_TRUE(parse_log_level_strict(" none ", &out));
  EXPECT_EQ(out, LogLevel::kOff);
  EXPECT_TRUE(parse_log_level_strict("Debug", &out));
  EXPECT_EQ(out, LogLevel::kDebug);
}

TEST(Log, ExplicitSetterBeatsEnvironment) {
  LogLevelGuard guard;
  ASSERT_EQ(setenv("SNAPPIF_LOG_LEVEL", "off", 1), 0);
  reload_log_level_from_env();
  set_log_level(LogLevel::kInfo);
  EXPECT_EQ(log_level(), LogLevel::kInfo);
  ASSERT_EQ(unsetenv("SNAPPIF_LOG_LEVEL"), 0);
}

TEST(Log, TimestampPrefixPresentAndToggleable) {
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  SNAPPIF_LOG_INFO("stamped");
  const std::string with_ts = ::testing::internal::GetCapturedStderr();
  // "[HH:MM:SS.mmm] [INFO ] stamped"
  ASSERT_GE(with_ts.size(), 15u);
  EXPECT_EQ(with_ts[0], '[');
  EXPECT_EQ(with_ts[3], ':');
  EXPECT_EQ(with_ts[6], ':');
  EXPECT_EQ(with_ts[9], '.');
  EXPECT_EQ(with_ts[13], ']');
  EXPECT_NE(with_ts.find("[INFO ] stamped"), std::string::npos);

  set_log_timestamps(false);
  ::testing::internal::CaptureStderr();
  SNAPPIF_LOG_INFO("bare");
  const std::string without_ts = ::testing::internal::GetCapturedStderr();
  set_log_timestamps(true);
  EXPECT_EQ(without_ts, "[INFO ] bare\n");
}

TEST(Log, ConcurrentWritesKeepLinesAtomic) {
  // Each log line is built in one buffer and written with a single fwrite,
  // so concurrent writers must never interleave mid-line.
  LogLevelGuard guard;
  set_log_level(LogLevel::kInfo);
  set_log_timestamps(false);
  constexpr int kThreads = 8;
  constexpr int kLines = 200;
  ::testing::internal::CaptureStderr();
  {
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([t] {
        for (int i = 0; i < kLines; ++i) {
          SNAPPIF_LOG_INFO("thread=%d line=%d tail", t, i);
        }
      });
    }
    for (std::thread& th : threads) {
      th.join();
    }
  }
  const std::string err = ::testing::internal::GetCapturedStderr();
  set_log_timestamps(true);

  int lines = 0;
  std::size_t pos = 0;
  while (pos < err.size()) {
    const std::size_t eol = err.find('\n', pos);
    ASSERT_NE(eol, std::string::npos) << "unterminated final line";
    const std::string line = err.substr(pos, eol - pos);
    int t = -1;
    int i = -1;
    ASSERT_EQ(std::sscanf(line.c_str(), "[INFO ] thread=%d line=%d", &t, &i),
              2)
        << "garbled line: \"" << line << "\"";
    char expected[64];
    std::snprintf(expected, sizeof(expected), "[INFO ] thread=%d line=%d tail",
                  t, i);
    ASSERT_EQ(line, expected) << "interleaved line: \"" << line << "\"";
    ++lines;
    pos = eol + 1;
  }
  EXPECT_EQ(lines, kThreads * kLines);
}

}  // namespace
}  // namespace snappif::util
