#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace snappif::util {
namespace {

TEST(OnlineStats, EmptyDefaults) {
  OnlineStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, SingleValue) {
  OnlineStats s;
  s.add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(OnlineStats, KnownMoments) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  // Population variance is 4; sample variance = 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(OnlineStats, MergeMatchesSequential) {
  OnlineStats all, left, right;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37 - 3;
    all.add(x);
    (i < 40 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(OnlineStats, MergeWithEmpty) {
  OnlineStats a, b;
  a.add(1);
  a.add(2);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(Samples, QuantilesExact) {
  Samples s;
  for (int i = 1; i <= 5; ++i) {
    s.add(i);
  }
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.0);
}

TEST(Samples, QuantileInterpolates) {
  Samples s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.1), 1.0);
}

TEST(Samples, SingleSample) {
  Samples s;
  s.add(42.0);
  EXPECT_DOUBLE_EQ(s.median(), 42.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
}

TEST(Samples, ExtremeQuantilesWithSingleSample) {
  Samples s;
  s.add(7.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 7.0);
}

TEST(Samples, AddAfterQuantileStillCorrect) {
  Samples s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  s.add(0.5);  // forces re-sort
  EXPECT_DOUBLE_EQ(s.min(), 0.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Histogram, BucketsAndClamping) {
  Histogram h(4, 10.0);  // [0,10) [10,20) [20,30) [30,40)
  h.add(5);
  h.add(15);
  h.add(15);
  h.add(100);  // clamps into last bucket
  h.add(-3);   // clamps into first bucket
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 2u);
  EXPECT_EQ(h.bucket(2), 0u);
  EXPECT_EQ(h.bucket(3), 1u);
}

TEST(Histogram, ClampingEdges) {
  Histogram h(4, 10.0);  // [0,10) [10,20) [20,30) [30,40)
  h.add(-1e9);  // far negative still clamps into bucket 0
  EXPECT_EQ(h.bucket(0), 1u);
  h.add(40.0);  // exactly bucket_count * width lands in the last bucket
  EXPECT_EQ(h.bucket(3), 1u);
  h.add(39.999);  // just below the upper edge also in the last bucket
  EXPECT_EQ(h.bucket(3), 2u);
  h.add(std::numeric_limits<double>::quiet_NaN());  // NaN policy: bucket 0
  EXPECT_EQ(h.bucket(0), 2u);
  h.add(std::numeric_limits<double>::infinity());  // +inf: last bucket
  EXPECT_EQ(h.bucket(3), 3u);
  EXPECT_EQ(h.total(), 5u);
}

TEST(Histogram, RenderNonEmpty) {
  Histogram h(3, 1.0);
  h.add(0.5);
  h.add(1.5);
  const std::string out = h.render();
  EXPECT_NE(out.find('#'), std::string::npos);
}

TEST(Histogram, RenderEmpty) {
  Histogram h(3, 1.0);
  EXPECT_EQ(h.render(), "(empty histogram)\n");
}

}  // namespace
}  // namespace snappif::util
