#include "sim/timeline.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "pif/checker.hpp"
#include "sim/simulator.hpp"

namespace snappif::sim {
namespace {

TEST(Timeline, CollapsesConsecutiveDuplicates) {
  Timeline timeline;
  timeline.snapshot(0, 0, "AAA");
  timeline.snapshot(1, 0, "AAA");
  timeline.snapshot(2, 1, "BBB");
  timeline.snapshot(3, 1, "AAA");  // not consecutive with the first: kept
  EXPECT_EQ(timeline.rows(), 3u);
}

TEST(Timeline, RenderFormat) {
  Timeline timeline;
  timeline.snapshot(7, 2, "XY");
  const std::string out = timeline.render();
  EXPECT_NE(out.find("step      7 round    2  |XY|"), std::string::npos);
}

TEST(Timeline, RespectsRowCap) {
  Timeline timeline(2);
  timeline.snapshot(0, 0, "A");
  timeline.snapshot(1, 0, "B");
  timeline.snapshot(2, 0, "C");
  EXPECT_EQ(timeline.rows(), 2u);
  EXPECT_EQ(timeline.dropped(), 1u);
  EXPECT_NE(timeline.render().find("1 later rows dropped"), std::string::npos);
}

TEST(Timeline, ClearResets) {
  Timeline timeline(1);
  timeline.snapshot(0, 0, "A");
  timeline.snapshot(1, 0, "B");
  timeline.clear();
  EXPECT_EQ(timeline.rows(), 0u);
  EXPECT_EQ(timeline.dropped(), 0u);
}

TEST(Timeline, PifPhaseStripIntegration) {
  const auto g = graph::make_path(4);
  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  Simulator<pif::PifProtocol> sim(protocol, g, 1);
  pif::Checker checker(sim.protocol());
  SynchronousDaemon daemon;
  Timeline timeline;
  timeline.snapshot(sim.steps(), sim.rounds(), checker.phase_strip(sim.config()));
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(sim.step(daemon));
    timeline.snapshot(sim.steps(), sim.rounds(),
                      checker.phase_strip(sim.config()));
  }
  // The strip starts all-C and must show a broadcast sweep.
  const std::string out = timeline.render();
  EXPECT_NE(out.find("|C C C C |"), std::string::npos);
  EXPECT_NE(out.find("|B B B B |"), std::string::npos);
  EXPECT_GE(timeline.rows(), 4u);
}

}  // namespace
}  // namespace snappif::sim
