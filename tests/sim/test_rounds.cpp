#include "sim/rounds.hpp"

#include <gtest/gtest.h>

namespace snappif::sim {
namespace {

TEST(RoundTracker, SingleProcessorRounds) {
  RoundTracker tracker;
  tracker.begin({true});
  EXPECT_EQ(tracker.rounds(), 0u);
  EXPECT_TRUE(tracker.on_step({true}, {true}));
  EXPECT_EQ(tracker.rounds(), 1u);
  EXPECT_TRUE(tracker.on_step({true}, {true}));
  EXPECT_EQ(tracker.rounds(), 2u);
}

TEST(RoundTracker, RoundNeedsEveryPendingProcessor) {
  RoundTracker tracker;
  tracker.begin({true, true});
  // Only processor 0 executes; 1 stays enabled: round not complete.
  EXPECT_FALSE(tracker.on_step({true, false}, {true, true}));
  EXPECT_EQ(tracker.rounds(), 0u);
  EXPECT_EQ(tracker.pending_count(), 1u);
  // Now 1 executes: round completes.
  EXPECT_TRUE(tracker.on_step({false, true}, {true, true}));
  EXPECT_EQ(tracker.rounds(), 1u);
}

TEST(RoundTracker, DisableActionDischarges) {
  RoundTracker tracker;
  tracker.begin({true, true});
  // Processor 0 executes; this disables processor 1 (its guard went false):
  // the "disable action" discharges it, so the round completes.
  EXPECT_TRUE(tracker.on_step({true, false}, {true, false}));
  EXPECT_EQ(tracker.rounds(), 1u);
}

TEST(RoundTracker, NewlyEnabledNotOwedThisRound) {
  RoundTracker tracker;
  tracker.begin({true, false});
  // Processor 1 becomes enabled mid-round; only 0 was owed.
  EXPECT_TRUE(tracker.on_step({true, false}, {true, true}));
  EXPECT_EQ(tracker.rounds(), 1u);
  // Next round owes both.
  EXPECT_FALSE(tracker.on_step({true, false}, {true, true}));
  EXPECT_TRUE(tracker.on_step({false, true}, {true, true}));
  EXPECT_EQ(tracker.rounds(), 2u);
}

TEST(RoundTracker, SynchronousStepsAreRounds) {
  RoundTracker tracker;
  tracker.begin({true, true, true});
  for (int i = 1; i <= 5; ++i) {
    EXPECT_TRUE(
        tracker.on_step({true, true, true}, {true, true, true}));
    EXPECT_EQ(tracker.rounds(), static_cast<std::uint64_t>(i));
  }
}

TEST(RoundTracker, BeginResets) {
  RoundTracker tracker;
  tracker.begin({true});
  (void)tracker.on_step({true}, {true});
  EXPECT_EQ(tracker.rounds(), 1u);
  tracker.begin({true});
  EXPECT_EQ(tracker.rounds(), 0u);
}

TEST(RoundTracker, EmptyEnabledSetCompletesImmediately) {
  RoundTracker tracker;
  tracker.begin({false, false});
  EXPECT_EQ(tracker.pending_count(), 0u);
  // A step executed by nobody (can't happen in practice) closes the round
  // trivially because nothing is owed.
  EXPECT_TRUE(tracker.on_step({false, false}, {true, false}));
}

TEST(RoundTracker, PendingOnlyAmongInitiallyEnabled) {
  RoundTracker tracker;
  tracker.begin({false, true});
  EXPECT_EQ(tracker.pending_count(), 1u);
  // Executing processor 0 (not owed) does not finish the round.
  EXPECT_FALSE(tracker.on_step({true, false}, {true, true}));
  EXPECT_EQ(tracker.rounds(), 0u);
}

}  // namespace
}  // namespace snappif::sim
