// Compile-time documentation: every protocol in the repository satisfies the
// sim::Protocol concept, and the state types satisfy the engine's regularity
// expectations.
#include <gtest/gtest.h>

#include <concepts>

#include "baselines/selfstab_pif.hpp"
#include "baselines/tree_pif.hpp"
#include "pif/multi.hpp"
#include "pif/protocol.hpp"
#include "sim/protocol.hpp"

namespace snappif {
namespace {

static_assert(sim::Protocol<pif::PifProtocol>);
static_assert(sim::Protocol<pif::MultiPifProtocol>);
static_assert(sim::Protocol<baselines::TreePifProtocol>);
static_assert(sim::Protocol<baselines::SelfStabPifProtocol>);

static_assert(std::equality_comparable<pif::State>);
static_assert(std::equality_comparable<pif::MultiState>);
static_assert(std::equality_comparable<baselines::TreePifState>);
static_assert(std::equality_comparable<baselines::SelfStabState>);

static_assert(std::copyable<pif::PifProtocol>);
static_assert(std::copyable<sim::Configuration<pif::State>>);

TEST(ProtocolConcept, StateHashesAreUsable) {
  pif::State a, b;
  EXPECT_EQ(a.hash(), b.hash());
  b.pif = pif::Phase::kB;
  EXPECT_NE(a.hash(), b.hash());
}

TEST(ProtocolConcept, ActionTablesAreStable) {
  // The action indices are load-bearing (traces, ghosts, model checking
  // decode them); pin the table layout.
  EXPECT_EQ(pif::kBAction, 0);
  EXPECT_EQ(pif::kFokAction, 1);
  EXPECT_EQ(pif::kFAction, 2);
  EXPECT_EQ(pif::kCAction, 3);
  EXPECT_EQ(pif::kCountAction, 4);
  EXPECT_EQ(pif::kBCorrection, 5);
  EXPECT_EQ(pif::kFCorrection, 6);
  EXPECT_EQ(pif::kNumActions, 7);
  EXPECT_EQ(pif::action_label(pif::kBAction), "B-action");
  EXPECT_EQ(pif::action_label(pif::kCountAction), "Count-action");
  EXPECT_EQ(pif::action_label(200), "?");
}

}  // namespace
}  // namespace snappif
