// Differential proof obligations for the one-pass guard-mask core.
//
// The engine's hot path is `P::enabled_mask` (a single neighborhood walk per
// processor); the per-action `P::enabled` methods remain as the independent
// reference implementation.  These tests pin the two against each other:
//
//   1. For every protocol shipping a native mask (PifProtocol under every
//      Params variant, both baselines, MultiPifProtocol beyond 32 actions),
//      `enabled_mask` must agree bit-for-bit with `enabled_mask_via_loop`
//      (the per-action fallback adapter) on randomized configurations across
//      topology families: path, cycle, star, grid, complete, binary tree,
//      random connected.
//   2. pif::GuardEval's intermediate fields (Sum, Potential emptiness, Leaf,
//      BLeaf, BFree, the Good* predicates, Normal) must agree with the
//      reference macro/predicate methods field by field.
//   3. The Simulator's cached masks must stay in sync with a from-scratch
//      evaluation after steps under multiple daemons and after set_state.
//   4. A mid-run copied Simulator must step identically to its original
//      (fork determinism), including from corrupted PIF configurations.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "baselines/selfstab_pif.hpp"
#include "baselines/tree_pif.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "pif/checker.hpp"
#include "pif/faults.hpp"
#include "pif/multi.hpp"
#include "pif/protocol.hpp"
#include "sim/protocol.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace snappif {
namespace {

using graph::Graph;
using sim::ProcessorId;

/// The topology families the acceptance criteria call out.  Sizes are kept
/// small enough that the randomized sweeps stay fast but cover leaves, hubs,
/// even/odd cycles, grid interiors and dense neighborhoods.
std::vector<Graph> topology_families() {
  std::vector<Graph> gs;
  gs.push_back(graph::make_path(7));
  gs.push_back(graph::make_cycle(6));
  gs.push_back(graph::make_star(7));
  gs.push_back(graph::make_grid(3, 3));
  gs.push_back(graph::make_complete(5));
  gs.push_back(graph::make_binary_tree(9));
  gs.push_back(graph::make_random_connected(10, 7, 42));
  return gs;
}

/// Draws `trials` random configurations of `proto` on `g` and checks the
/// native mask against the per-action loop for every processor.
template <typename P>
void expect_mask_matches_loop(const Graph& g, const P& proto,
                              std::uint64_t seed, int trials = 64) {
  util::Rng rng(seed);
  sim::Configuration<typename P::State> c(g, proto.initial_state(0));
  for (int t = 0; t < trials; ++t) {
    for (ProcessorId p = 0; p < g.n(); ++p) {
      c.state(p) = proto.random_state(p, rng);
    }
    for (ProcessorId p = 0; p < g.n(); ++p) {
      EXPECT_EQ(proto.enabled_mask(c, p),
                sim::enabled_mask_via_loop(proto, c, p))
          << "trial " << t << " processor " << p;
    }
  }
}

/// Every Params variant the acceptance criteria require: the canonical
/// algorithm, each literal-reading switch, each ablation, and a non-zero
/// root.
std::vector<pif::Params> params_variants(const Graph& g) {
  std::vector<pif::Params> variants;
  variants.push_back(pif::Params::for_graph(g));
  {
    auto p = pif::Params::for_graph(g);
    p.literal_sumset_fok_owner = true;
    variants.push_back(p);
  }
  {
    auto p = pif::Params::for_graph(g);
    p.literal_prepotential_fok = true;
    variants.push_back(p);
  }
  {
    auto p = pif::Params::for_graph(g);
    p.literal_root_goodfok = true;
    variants.push_back(p);
  }
  {
    auto p = pif::Params::for_graph(g);
    p.min_level_potential = false;
    variants.push_back(p);
  }
  {
    auto p = pif::Params::for_graph(g);
    p.ablate_broadcast_leaf = true;
    variants.push_back(p);
  }
  {
    auto p = pif::Params::for_graph(g);
    p.ablate_feedback_bleaf = true;
    variants.push_back(p);
  }
  {
    auto p = pif::Params::for_graph(g);
    p.ablate_count_wait = true;
    variants.push_back(p);
  }
  {
    auto p = pif::Params::for_graph(g, /*root=*/g.n() / 2);
    variants.push_back(p);
  }
  return variants;
}

TEST(MaskDifferential, PifAllParamsVariantsAllFamilies) {
  std::uint64_t seed = 1000;
  for (const Graph& g : topology_families()) {
    for (const pif::Params& params : params_variants(g)) {
      pif::PifProtocol proto(g, params);
      expect_mask_matches_loop(g, proto, seed++);
    }
  }
}

TEST(MaskDifferential, GuardEvalFieldsMatchReferenceMethods) {
  std::uint64_t seed = 2000;
  for (const Graph& g : topology_families()) {
    for (const pif::Params& params : params_variants(g)) {
      pif::PifProtocol proto(g, params);
      util::Rng rng(seed++);
      pif::PifProtocol::Config c(g, proto.initial_state(0));
      for (int t = 0; t < 32; ++t) {
        for (ProcessorId p = 0; p < g.n(); ++p) {
          c.state(p) = proto.random_state(p, rng);
        }
        for (ProcessorId p = 0; p < g.n(); ++p) {
          const pif::GuardEval ev(proto, c, p);
          EXPECT_EQ(ev.root, proto.is_root(p));
          EXPECT_EQ(ev.sum, proto.sum(c, p));
          EXPECT_EQ(ev.has_potential, !proto.potential(c, p).empty());
          // Potential is empty iff Pre_Potential is: the min-level rule only
          // filters a non-empty set.
          EXPECT_EQ(ev.has_potential, !proto.pre_potential(c, p).empty());
          EXPECT_EQ(ev.leaf, proto.leaf(c, p));
          EXPECT_EQ(ev.b_leaf, proto.b_leaf(c, p));
          EXPECT_EQ(ev.b_free, proto.b_free(c, p));
          EXPECT_EQ(ev.good_fok, proto.good_fok(c, p));
          if (!proto.is_root(p)) {
            EXPECT_EQ(ev.good_pif, proto.good_pif(c, p));
            EXPECT_EQ(ev.good_level, proto.good_level(c, p));
          }
          EXPECT_EQ(ev.good_count, proto.good_count(c, p));
          EXPECT_EQ(ev.normal, proto.normal(c, p));
        }
      }
    }
  }
}

TEST(MaskDifferential, TreePifBaseline) {
  std::uint64_t seed = 3000;
  for (const Graph& g : topology_families()) {
    const auto tree = graph::bfs_tree(g, 0);
    baselines::TreePifProtocol proto(g, 0, tree.parent);
    expect_mask_matches_loop(g, proto, seed++);
  }
}

TEST(MaskDifferential, SelfStabBaseline) {
  std::uint64_t seed = 4000;
  for (const Graph& g : topology_families()) {
    baselines::SelfStabPifProtocol proto(g, 0);
    expect_mask_matches_loop(g, proto, seed++);
  }
}

TEST(MaskDifferential, MultiPifBeyond32Actions) {
  // Five initiators x seven actions = 35 composite actions: exercises the
  // mask bits above bit 31 (the reason ActionMask is 64-bit).
  const auto g = graph::make_path(5);
  pif::MultiPifProtocol proto(g, {0, 1, 2, 3, 4});
  ASSERT_EQ(proto.num_actions(), 35u);
  expect_mask_matches_loop(g, proto, 5000, /*trials=*/48);
}

TEST(MaskDifferential, MaskBitHelpers) {
  const sim::ActionMask m = 0b101001;  // actions 0, 3, 5
  EXPECT_EQ(sim::first_action(m), 0u);
  EXPECT_EQ(sim::nth_action(m, 0), 0u);
  EXPECT_EQ(sim::nth_action(m, 1), 3u);
  EXPECT_EQ(sim::nth_action(m, 2), 5u);
  EXPECT_EQ(sim::first_action(sim::ActionMask{1} << 34), 34u);
}

/// From-scratch mask of every processor vs the simulator's cache.
template <typename P>
void expect_cache_fresh(const sim::Simulator<P>& sim) {
  for (ProcessorId p = 0; p < sim.config().n(); ++p) {
    EXPECT_EQ(sim.enabled_mask_of(p),
              sim::enabled_mask(sim.protocol(), sim.config(), p))
        << "processor " << p;
  }
}

TEST(MaskDifferential, SimulatorCacheStaysFreshUnderDaemons) {
  const auto g = graph::make_random_connected(9, 6, 7);
  pif::PifProtocol proto(g, pif::Params::for_graph(g));
  const auto run_with = [&](sim::IDaemon& daemon, std::uint64_t seed) {
    sim::Simulator<pif::PifProtocol> sim(proto, g, seed);
    util::Rng rng(seed + 1);
    sim.randomize(rng);
    sim.set_action_policy(sim::ActionPolicy::kRandomEnabled);
    expect_cache_fresh(sim);
    for (int i = 0; i < 200 && sim.step(daemon); ++i) {
      expect_cache_fresh(sim);
    }
  };
  sim::SynchronousDaemon sync;
  run_with(sync, 11);
  sim::CentralRandomDaemon central;
  run_with(central, 12);
  sim::DistributedRandomDaemon dist(0.4);
  run_with(dist, 13);
}

TEST(MaskDifferential, SimulatorCacheFreshAfterSetState) {
  const auto g = graph::make_cycle(6);
  pif::PifProtocol proto(g, pif::Params::for_graph(g));
  sim::Simulator<pif::PifProtocol> sim(proto, g, 21);
  util::Rng rng(22);
  for (int t = 0; t < 50; ++t) {
    const auto p = static_cast<ProcessorId>(rng.below(g.n()));
    sim.set_state(p, proto.random_state(p, rng));
    expect_cache_fresh(sim);
  }
}

TEST(MaskDifferential, AbnormalEquivalentToCorrectionGuard) {
  // The chaos oracle's shortcut: a processor is abnormal (¬Normal) iff one of
  // its correction guards is enabled.  Non-root: Pif=C is always Normal and
  // B/F-corrections fire exactly on ¬Normal in phases B/F.  Root: only Pif=B
  // can be abnormal, where B-correction's guard IS ¬Normal.
  constexpr sim::ActionMask kCorrections =
      (sim::ActionMask{1} << pif::kBCorrection) |
      (sim::ActionMask{1} << pif::kFCorrection);
  std::uint64_t seed = 6000;
  for (const Graph& g : topology_families()) {
    pif::PifProtocol proto(g, pif::Params::for_graph(g));
    pif::Checker checker(proto);
    util::Rng rng(seed++);
    pif::PifProtocol::Config c(g, proto.initial_state(0));
    for (int t = 0; t < 64; ++t) {
      for (ProcessorId p = 0; p < g.n(); ++p) {
        c.state(p) = proto.random_state(p, rng);
      }
      std::size_t abnormal = 0;
      for (ProcessorId p = 0; p < g.n(); ++p) {
        const bool corr = (proto.enabled_mask(c, p) & kCorrections) != 0;
        EXPECT_EQ(corr, !proto.normal(c, p)) << "processor " << p;
        abnormal += corr ? 1u : 0u;
      }
      EXPECT_EQ(abnormal, checker.count_abnormal(c));
      EXPECT_EQ(abnormal == 0, checker.all_normal(c));
    }
  }
}

TEST(MaskDifferential, CopiedSimulatorStepsIdentically) {
  // Fork a PIF run mid-flight from a corrupted start; original and copy must
  // produce identical configurations, step/round counters and enabled sets
  // under the same daemon from then on.
  const auto g = graph::make_random_connected(8, 5, 3);
  pif::PifProtocol proto(g, pif::Params::for_graph(g));
  sim::Simulator<pif::PifProtocol> sim(proto, g, 31);
  util::Rng fault_rng(32);
  pif::apply_corruption(sim, pif::CorruptionKind::kUniformRandom, fault_rng);
  sim.set_action_policy(sim::ActionPolicy::kRandomEnabled);

  sim::CentralRandomDaemon daemon_a;
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(sim.step(daemon_a));
  }

  sim::Simulator<pif::PifProtocol> fork = sim;  // mid-run value copy
  expect_cache_fresh(fork);
  sim::CentralRandomDaemon daemon_b;  // same (stateless) daemon kind
  for (int i = 0; i < 100; ++i) {
    const bool more_a = sim.step(daemon_a);
    const bool more_b = fork.step(daemon_b);
    ASSERT_EQ(more_a, more_b);
    if (!more_a) {
      break;
    }
    ASSERT_EQ(sim.config().hash(), fork.config().hash()) << "diverged at " << i;
    ASSERT_EQ(sim.steps(), fork.steps());
    ASSERT_EQ(sim.rounds(), fork.rounds());
    ASSERT_EQ(sim.enabled_processors().size(), fork.enabled_processors().size());
  }
}

}  // namespace
}  // namespace snappif
