// Probe observer semantics: callback order and payloads, composite-atomicity
// visibility in on_apply, round-boundary notification, attach/detach, and the
// apply-hook compatibility layer on top of FunctionProbe.
#include "sim/probe.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.hpp"
#include "sim/simulator.hpp"

namespace snappif::sim {
namespace {

struct IntState {
  std::uint32_t value = 0;
  [[nodiscard]] bool operator==(const IntState&) const noexcept = default;
  [[nodiscard]] std::uint64_t hash() const noexcept { return value; }
};

/// value := max over neighborhood; enabled while some neighbor is larger.
class MaxProtocol {
 public:
  using State = IntState;
  [[nodiscard]] State initial_state(ProcessorId p) const { return {p}; }
  [[nodiscard]] ActionId num_actions() const { return 1; }
  [[nodiscard]] std::string_view action_name(ActionId) const { return "max"; }
  [[nodiscard]] bool enabled(const Configuration<State>& c, ProcessorId p,
                             ActionId) const {
    for (ProcessorId q : c.neighbors(p)) {
      if (c.state(q).value > c.state(p).value) {
        return true;
      }
    }
    return false;
  }
  [[nodiscard]] State apply(const Configuration<State>& c, ProcessorId p,
                            ActionId) const {
    State next = c.state(p);
    for (ProcessorId q : c.neighbors(p)) {
      next.value = std::max(next.value, c.state(q).value);
    }
    return next;
  }
  [[nodiscard]] State random_state(ProcessorId, util::Rng& rng) const {
    return {static_cast<std::uint32_t>(rng.below(100))};
  }
};

/// Records every callback for post-hoc assertions.
class RecordingProbe final : public IProbe<MaxProtocol> {
 public:
  struct StepObs {
    std::uint64_t step;
    std::size_t selected;
    std::size_t choices;
    std::size_t enabled_before;
    std::size_t enabled_after;  // from on_step_end
  };

  int attaches = 0;
  int applies = 0;
  int step_begins = 0;
  int step_ends = 0;
  std::vector<std::uint64_t> rounds_seen;
  std::vector<StepObs> steps;
  std::vector<std::uint64_t> counts_at_last_end;

  void on_attach(const Config& /*config*/) override { ++attaches; }

  void on_step_begin(const StepEvent& ev, const Config& /*config*/) override {
    ++step_begins;
    steps.push_back({ev.step, ev.selected.size(), ev.choices.size(),
                     ev.enabled_before, 0});
    // Choices correspond 1:1 with the selected set, in order.
    ASSERT_EQ(ev.selected.size(), ev.choices.size());
    for (std::size_t i = 0; i < ev.selected.size(); ++i) {
      EXPECT_EQ(ev.choices[i].processor, ev.selected[i]);
    }
  }

  void on_apply(ProcessorId /*p*/, ActionId a, const Config& /*before*/,
                const State& /*after*/) override {
    ++applies;
    EXPECT_EQ(a, 0);
  }

  void on_step_end(const StepEvent& ev, const Config& /*config*/) override {
    ++step_ends;
    ASSERT_FALSE(steps.empty());
    steps.back().enabled_after = ev.enabled_after;
    counts_at_last_end.assign(ev.action_counts.begin(), ev.action_counts.end());
  }

  void on_round_complete(std::uint64_t rounds, const StepEvent& /*ev*/,
                         const Config& /*config*/) override {
    rounds_seen.push_back(rounds);
  }
};

TEST(Probe, CallbackCountsAndStepEventPayload) {
  const auto g = graph::make_path(4);
  Simulator<MaxProtocol> sim(MaxProtocol{}, g, 1);
  RecordingProbe probe;
  sim.add_probe(&probe);
  EXPECT_TRUE(sim.has_probes());
  EXPECT_EQ(probe.attaches, 1);

  SynchronousDaemon daemon;
  std::uint64_t steps = 0;
  while (sim.step(daemon)) {
    ++steps;
  }
  EXPECT_EQ(steps, 3u);  // path-4 max propagation
  EXPECT_EQ(probe.step_begins, 3);
  EXPECT_EQ(probe.step_ends, 3);
  ASSERT_EQ(probe.steps.size(), 3u);
  // Synchronous daemon: every enabled processor is selected.
  for (const auto& s : probe.steps) {
    EXPECT_EQ(s.selected, s.enabled_before);
    EXPECT_EQ(s.choices, s.selected);
  }
  EXPECT_EQ(probe.steps[0].step, 0u);
  EXPECT_EQ(probe.steps[0].enabled_before, 3u);
  EXPECT_EQ(probe.steps[2].enabled_after, 0u);  // terminal after last step
  // on_apply fired once per executed action; totals match the engine's.
  EXPECT_EQ(probe.applies, 3 + 2 + 1);
  ASSERT_EQ(probe.counts_at_last_end.size(), 1u);
  EXPECT_EQ(probe.counts_at_last_end[0], sim.action_count(0));
}

TEST(Probe, RoundCompletionsMatchEngineRounds) {
  const auto g = graph::make_path(5);
  Simulator<MaxProtocol> sim(MaxProtocol{}, g, 2);
  RecordingProbe probe;
  sim.add_probe(&probe);
  SynchronousDaemon daemon;
  while (sim.step(daemon)) {
  }
  EXPECT_EQ(probe.rounds_seen.size(), sim.rounds());
  // Rounds arrive in order: 1, 2, 3, ...
  for (std::size_t i = 0; i < probe.rounds_seen.size(); ++i) {
    EXPECT_EQ(probe.rounds_seen[i], i + 1);
  }
}

TEST(Probe, OnApplySeesPreStepConfig) {
  // Two processors swap via max: 0 adopts 1's value while `before` still
  // holds the original configuration for every on_apply of the step.
  const auto g = graph::make_path(2);
  Simulator<MaxProtocol> sim(MaxProtocol{}, g, 3);

  class PreStepProbe final : public IProbe<MaxProtocol> {
   public:
    int applies = 0;
    void on_apply(ProcessorId p, ActionId /*a*/, const Config& before,
                  const State& after) override {
      ++applies;
      EXPECT_EQ(p, 0u);
      EXPECT_EQ(before.state(0).value, 0u);
      EXPECT_EQ(before.state(1).value, 1u);
      EXPECT_EQ(after.value, 1u);
    }
  } probe;
  sim.add_probe(&probe);
  SynchronousDaemon daemon;
  ASSERT_TRUE(sim.step(daemon));
  EXPECT_EQ(probe.applies, 1);
  EXPECT_EQ(sim.config().state(0).value, 1u);
}

TEST(Probe, RemoveProbeStopsCallbacks) {
  const auto g = graph::make_path(4);
  Simulator<MaxProtocol> sim(MaxProtocol{}, g, 4);
  RecordingProbe probe;
  sim.add_probe(&probe);
  SynchronousDaemon daemon;
  ASSERT_TRUE(sim.step(daemon));
  const int begins = probe.step_begins;
  sim.remove_probe(&probe);
  EXPECT_FALSE(sim.has_probes());
  ASSERT_TRUE(sim.step(daemon));
  EXPECT_EQ(probe.step_begins, begins);
}

TEST(Probe, AttachNotifiedOnConfigurationRebuilds) {
  const auto g = graph::make_path(3);
  Simulator<MaxProtocol> sim(MaxProtocol{}, g, 5);
  RecordingProbe probe;
  sim.add_probe(&probe);
  EXPECT_EQ(probe.attaches, 1);
  sim.reset_to_initial();
  EXPECT_EQ(probe.attaches, 2);
  util::Rng rng(9);
  sim.randomize(rng);
  EXPECT_EQ(probe.attaches, 3);
  sim.set_state(0, IntState{77});
  EXPECT_EQ(probe.attaches, 4);
}

TEST(Probe, MultipleProbesAllInvoked) {
  const auto g = graph::make_path(3);
  Simulator<MaxProtocol> sim(MaxProtocol{}, g, 6);
  RecordingProbe a, b;
  sim.add_probe(&a);
  sim.add_probe(&b);
  SynchronousDaemon daemon;
  ASSERT_TRUE(sim.step(daemon));
  EXPECT_EQ(a.step_begins, 1);
  EXPECT_EQ(b.step_begins, 1);
  EXPECT_EQ(a.applies, b.applies);
}

TEST(Probe, ApplyHookCoexistsWithProbesAndReplaces) {
  const auto g = graph::make_path(4);
  Simulator<MaxProtocol> sim(MaxProtocol{}, g, 7);
  RecordingProbe probe;
  sim.add_probe(&probe);

  int first_hook = 0;
  sim.set_apply_hook([&](ProcessorId, ActionId, const Configuration<IntState>&,
                         const IntState&) { ++first_hook; });
  SynchronousDaemon daemon;
  ASSERT_TRUE(sim.step(daemon));
  EXPECT_EQ(first_hook, 3);
  EXPECT_EQ(probe.applies, 3);

  // Replacing the hook removes the previous one but leaves probes attached.
  int second_hook = 0;
  sim.set_apply_hook([&](ProcessorId, ActionId, const Configuration<IntState>&,
                         const IntState&) { ++second_hook; });
  ASSERT_TRUE(sim.step(daemon));
  EXPECT_EQ(first_hook, 3);
  EXPECT_EQ(second_hook, 2);
  EXPECT_EQ(probe.applies, 5);

  // nullptr uninstalls; the simulator may still have other probes.
  sim.set_apply_hook(nullptr);
  EXPECT_TRUE(sim.has_probes());
  ASSERT_TRUE(sim.step(daemon));
  EXPECT_EQ(second_hook, 2);
  EXPECT_EQ(probe.applies, 6);
}

TEST(Probe, FunctionProbeForwardsToCallable) {
  int calls = 0;
  FunctionProbe<MaxProtocol> fp(
      [&](ProcessorId p, ActionId a, const Configuration<IntState>&,
          const IntState& after) {
        ++calls;
        EXPECT_EQ(p, 1u);
        EXPECT_EQ(a, 0);
        EXPECT_EQ(after.value, 9u);
      });
  const auto g = graph::make_path(2);
  Configuration<IntState> cfg(g, IntState{});
  fp.on_apply(1, 0, cfg, IntState{9});
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace snappif::sim
