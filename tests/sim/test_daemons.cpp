#include "sim/daemon.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace snappif::sim {
namespace {

DaemonContext context(ProcessorId n, std::uint64_t step = 0) {
  DaemonContext ctx;
  ctx.n = n;
  ctx.step = step;
  return ctx;
}

TEST(SynchronousDaemon, SelectsEveryone) {
  SynchronousDaemon daemon;
  util::Rng rng(1);
  const std::vector<ProcessorId> enabled{0, 2, 5};
  std::vector<ProcessorId> out;
  daemon.select(enabled, context(6), rng, out);
  EXPECT_EQ(out, enabled);
}

TEST(CentralRandomDaemon, SelectsExactlyOneEnabled) {
  CentralRandomDaemon daemon;
  util::Rng rng(2);
  const std::vector<ProcessorId> enabled{1, 3, 4};
  std::set<ProcessorId> seen;
  for (int i = 0; i < 200; ++i) {
    std::vector<ProcessorId> out;
    daemon.select(enabled, context(5), rng, out);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(std::count(enabled.begin(), enabled.end(), out[0]) == 1);
    seen.insert(out[0]);
  }
  EXPECT_EQ(seen.size(), 3u);  // covers all enabled eventually
}

TEST(CentralRoundRobinDaemon, CyclesThroughProcessors) {
  CentralRoundRobinDaemon daemon;
  util::Rng rng(3);
  const std::vector<ProcessorId> enabled{0, 1, 2};
  std::vector<ProcessorId> picks;
  for (int i = 0; i < 6; ++i) {
    std::vector<ProcessorId> out;
    daemon.select(enabled, context(3), rng, out);
    ASSERT_EQ(out.size(), 1u);
    picks.push_back(out[0]);
  }
  EXPECT_EQ(picks, (std::vector<ProcessorId>{0, 1, 2, 0, 1, 2}));
}

TEST(CentralRoundRobinDaemon, SkipsDisabled) {
  CentralRoundRobinDaemon daemon;
  util::Rng rng(4);
  std::vector<ProcessorId> out;
  daemon.select(std::vector<ProcessorId>{2}, context(5), rng, out);
  EXPECT_EQ(out[0], 2u);
  out.clear();
  // Cursor is now 3; only processor 1 enabled -> wraps around.
  daemon.select(std::vector<ProcessorId>{1}, context(5), rng, out);
  EXPECT_EQ(out[0], 1u);
}

TEST(DistributedRandomDaemon, NeverEmpty) {
  DistributedRandomDaemon daemon(0.05);  // low probability
  util::Rng rng(5);
  const std::vector<ProcessorId> enabled{0, 1};
  for (int i = 0; i < 300; ++i) {
    std::vector<ProcessorId> out;
    daemon.select(enabled, context(2), rng, out);
    EXPECT_GE(out.size(), 1u);
    for (ProcessorId p : out) {
      EXPECT_TRUE(p == 0 || p == 1);
    }
  }
}

TEST(DistributedRandomDaemon, SometimesSelectsSubsetsAndAll) {
  DistributedRandomDaemon daemon(0.5);
  util::Rng rng(6);
  const std::vector<ProcessorId> enabled{0, 1, 2, 3};
  bool saw_singleton = false, saw_all = false;
  for (int i = 0; i < 500; ++i) {
    std::vector<ProcessorId> out;
    daemon.select(enabled, context(4), rng, out);
    saw_singleton = saw_singleton || out.size() == 1;
    saw_all = saw_all || out.size() == 4;
  }
  EXPECT_TRUE(saw_singleton);
  EXPECT_TRUE(saw_all);
}

TEST(AdversarialScoreDaemon, PicksExtremeScore) {
  AdversarialScoreDaemon max_daemon(AdversarialScoreDaemon::Goal::kMaxScore, 1);
  AdversarialScoreDaemon min_daemon(AdversarialScoreDaemon::Goal::kMinScore, 1);
  util::Rng rng(7);
  DaemonContext ctx = context(4);
  ctx.score = [](ProcessorId p) { return static_cast<std::int64_t>(p * 10); };
  const std::vector<ProcessorId> enabled{0, 1, 2, 3};
  std::vector<ProcessorId> out;
  max_daemon.select(enabled, ctx, rng, out);
  EXPECT_EQ(out, (std::vector<ProcessorId>{3}));
  out.clear();
  min_daemon.select(enabled, ctx, rng, out);
  EXPECT_EQ(out, (std::vector<ProcessorId>{0}));
}

TEST(AdversarialScoreDaemon, WidthTakesSeveral) {
  AdversarialScoreDaemon daemon(AdversarialScoreDaemon::Goal::kMaxScore, 2);
  util::Rng rng(8);
  DaemonContext ctx = context(4);
  ctx.score = [](ProcessorId p) { return static_cast<std::int64_t>(p); };
  std::vector<ProcessorId> out;
  daemon.select(std::vector<ProcessorId>{0, 1, 2, 3}, ctx, rng, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], 3u);
  EXPECT_EQ(out[1], 2u);
}

TEST(FairDaemon, ForcesStarvedProcessors) {
  // Inner daemon always picks the max-score processor (0 is starved).
  auto inner = std::make_unique<AdversarialScoreDaemon>(
      AdversarialScoreDaemon::Goal::kMaxScore, 1);
  FairDaemon daemon(std::move(inner), /*bound=*/3);
  util::Rng rng(9);
  DaemonContext ctx = context(2);
  ctx.score = [](ProcessorId p) { return static_cast<std::int64_t>(p); };
  const std::vector<ProcessorId> enabled{0, 1};
  int zero_selected_by = -1;
  for (int i = 0; i < 10; ++i) {
    std::vector<ProcessorId> out;
    daemon.select(enabled, ctx, rng, out);
    if (std::count(out.begin(), out.end(), 0u) > 0) {
      zero_selected_by = i;
      break;
    }
  }
  ASSERT_NE(zero_selected_by, -1) << "starved processor never forced";
  EXPECT_LE(zero_selected_by, 3);
}

TEST(FairDaemon, ResetClearsAges) {
  auto inner = std::make_unique<AdversarialScoreDaemon>(
      AdversarialScoreDaemon::Goal::kMaxScore, 1);
  FairDaemon daemon(std::move(inner), 2);
  util::Rng rng(10);
  DaemonContext ctx = context(2);
  ctx.score = [](ProcessorId p) { return static_cast<std::int64_t>(p); };
  const std::vector<ProcessorId> enabled{0, 1};
  std::vector<ProcessorId> out;
  daemon.select(enabled, ctx, rng, out);  // age[0] = 1
  daemon.reset();
  out.clear();
  daemon.select(enabled, ctx, rng, out);  // age was cleared -> only {1}
  EXPECT_EQ(out, (std::vector<ProcessorId>{1}));
}

TEST(DaemonFactory, AllKindsConstructible) {
  for (DaemonKind kind : standard_daemon_kinds()) {
    auto daemon = make_daemon(kind);
    ASSERT_NE(daemon, nullptr);
    EXPECT_FALSE(daemon->name().empty());
    // Every daemon must return a non-empty subset of enabled.
    util::Rng rng(11);
    std::vector<ProcessorId> out;
    DaemonContext ctx = context(3);
    ctx.score = [](ProcessorId) { return 0; };
    daemon->select(std::vector<ProcessorId>{0, 2}, ctx, rng, out);
    EXPECT_GE(out.size(), 1u);
    for (ProcessorId p : out) {
      EXPECT_TRUE(p == 0 || p == 2);
    }
  }
}

}  // namespace
}  // namespace snappif::sim
