// Trace ring-buffer semantics: bounded memory, O(1) amortized eviction,
// oldest-first indexing, drop accounting.
#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>

namespace snappif::sim {
namespace {

StepRecord make_record(std::uint64_t step) {
  StepRecord r;
  r.step = step;
  r.rounds_before = step / 2;
  r.choices = {{static_cast<ProcessorId>(step % 7), 0}};
  return r;
}

TEST(Trace, RecordsInOrderBelowBound) {
  Trace trace(8);
  for (std::uint64_t s = 0; s < 5; ++s) {
    trace.record(make_record(s));
  }
  ASSERT_EQ(trace.size(), 5u);
  EXPECT_EQ(trace.dropped(), 0u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(trace[i].step, i);
  }
}

TEST(Trace, EvictsOldestWhenFull) {
  Trace trace(4);
  for (std::uint64_t s = 0; s < 10; ++s) {
    trace.record(make_record(s));
  }
  ASSERT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.dropped(), 6u);
  // Retains the last 4 records, oldest first.
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(trace[i].step, 6 + i);
  }
}

// Regression: record() used to erase the front of a vector on every eviction
// (O(n) per record).  A million records through a tiny trace must be
// effectively instant and retain exactly the last max_records entries.
TEST(Trace, MillionRecordsThroughTinyBufferStaysFastAndKeepsTail) {
  constexpr std::uint64_t kTotal = 1'000'000;
  constexpr std::size_t kMax = 16;
  Trace trace(kMax);
  for (std::uint64_t s = 0; s < kTotal; ++s) {
    trace.record(make_record(s));
  }
  ASSERT_EQ(trace.size(), kMax);
  EXPECT_EQ(trace.dropped(), kTotal - kMax);
  for (std::size_t i = 0; i < kMax; ++i) {
    EXPECT_EQ(trace[i].step, kTotal - kMax + i);
    EXPECT_EQ(trace[i].rounds_before, (kTotal - kMax + i) / 2);
  }
}

TEST(Trace, RenderListsOldestFirst) {
  Trace trace(3);
  for (std::uint64_t s = 0; s < 5; ++s) {
    trace.record(make_record(s));
  }
  const std::string out = trace.render({"act"});
  auto step_line = [](std::uint64_t s) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "step %6llu",
                  static_cast<unsigned long long>(s));
    return std::string(buf);
  };
  const auto pos2 = out.find(step_line(2));
  const auto pos3 = out.find(step_line(3));
  const auto pos4 = out.find(step_line(4));
  EXPECT_NE(pos2, std::string::npos);
  EXPECT_NE(pos3, std::string::npos);
  EXPECT_NE(pos4, std::string::npos);
  EXPECT_LT(pos2, pos3);
  EXPECT_LT(pos3, pos4);
  EXPECT_EQ(out.find(step_line(1)), std::string::npos);
  EXPECT_NE(out.find("2 earlier steps dropped"), std::string::npos);
}

TEST(Trace, ClearResetsEverything) {
  Trace trace(2);
  for (std::uint64_t s = 0; s < 5; ++s) {
    trace.record(make_record(s));
  }
  trace.clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.dropped(), 0u);
  trace.record(make_record(42));
  ASSERT_EQ(trace.size(), 1u);
  EXPECT_EQ(trace[0].step, 42u);
}

}  // namespace
}  // namespace snappif::sim
