// Engine semantics tests using small synthetic protocols: composite
// atomicity (all statements in a step read the pre-step configuration),
// incremental enabled-set maintenance, termination, counters, determinism.
#include "sim/simulator.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace snappif::sim {
namespace {

struct IntState {
  std::uint32_t value = 0;
  [[nodiscard]] bool operator==(const IntState&) const noexcept = default;
  [[nodiscard]] std::uint64_t hash() const noexcept { return value; }
};

/// MaxProtocol: value := max over neighborhood, enabled while some neighbor
/// is larger.  Converges to the global maximum; a terminal configuration.
class MaxProtocol {
 public:
  using State = IntState;
  [[nodiscard]] State initial_state(ProcessorId p) const { return {p}; }
  [[nodiscard]] ActionId num_actions() const { return 1; }
  [[nodiscard]] std::string_view action_name(ActionId) const { return "max"; }
  [[nodiscard]] bool enabled(const Configuration<State>& c, ProcessorId p,
                             ActionId) const {
    for (ProcessorId q : c.neighbors(p)) {
      if (c.state(q).value > c.state(p).value) {
        return true;
      }
    }
    return false;
  }
  [[nodiscard]] State apply(const Configuration<State>& c, ProcessorId p,
                            ActionId) const {
    State next = c.state(p);
    for (ProcessorId q : c.neighbors(p)) {
      next.value = std::max(next.value, c.state(q).value);
    }
    return next;
  }
  [[nodiscard]] State random_state(ProcessorId, util::Rng& rng) const {
    return {static_cast<std::uint32_t>(rng.below(100))};
  }
};

/// SwapProtocol on exactly two connected processors: each copies the other's
/// value; always enabled.  Under the synchronous daemon the values must
/// exchange (proof of reads-before-writes atomicity).
class SwapProtocol {
 public:
  using State = IntState;
  [[nodiscard]] State initial_state(ProcessorId p) const {
    return {p == 0 ? 111u : 222u};
  }
  [[nodiscard]] ActionId num_actions() const { return 1; }
  [[nodiscard]] std::string_view action_name(ActionId) const { return "swap"; }
  [[nodiscard]] bool enabled(const Configuration<State>&, ProcessorId,
                             ActionId) const {
    return true;
  }
  [[nodiscard]] State apply(const Configuration<State>& c, ProcessorId p,
                            ActionId) const {
    return c.state(c.neighbors(p)[0]);
  }
  [[nodiscard]] State random_state(ProcessorId, util::Rng& rng) const {
    return {static_cast<std::uint32_t>(rng.below(10))};
  }
};

TEST(Simulator, CompositeAtomicitySwap) {
  const auto g = graph::make_path(2);
  Simulator<SwapProtocol> sim(SwapProtocol{}, g, 1);
  SynchronousDaemon daemon;
  EXPECT_EQ(sim.config().state(0).value, 111u);
  ASSERT_TRUE(sim.step(daemon));
  // Both read the pre-step configuration: a true swap, not a clobber.
  EXPECT_EQ(sim.config().state(0).value, 222u);
  EXPECT_EQ(sim.config().state(1).value, 111u);
  ASSERT_TRUE(sim.step(daemon));
  EXPECT_EQ(sim.config().state(0).value, 111u);
}

TEST(Simulator, MaxConvergesAndTerminates) {
  const auto g = graph::make_path(6);
  Simulator<MaxProtocol> sim(MaxProtocol{}, g, 2);
  SynchronousDaemon daemon;
  auto result = sim.run_until(
      daemon, [](const Configuration<IntState>&) { return false; },
      RunLimits{.max_steps = 100});
  EXPECT_EQ(result.reason, StopReason::kTerminal);
  for (ProcessorId p = 0; p < 6; ++p) {
    EXPECT_EQ(sim.config().state(p).value, 5u);
  }
  // Path with max at the end: value propagates one hop per synchronous step.
  EXPECT_EQ(result.steps, 5u);
  EXPECT_EQ(result.rounds, 5u);
}

TEST(Simulator, TerminalStepReturnsFalse) {
  const auto g = graph::make_path(2);
  Simulator<MaxProtocol> sim(MaxProtocol{}, g, 3);
  SynchronousDaemon daemon;
  EXPECT_TRUE(sim.step(daemon));   // 0 adopts 1's value
  EXPECT_FALSE(sim.any_enabled());
  EXPECT_FALSE(sim.step(daemon));  // terminal: no-op
}

TEST(Simulator, EnabledSetMaintainedIncrementally) {
  const auto g = graph::make_path(4);
  Simulator<MaxProtocol> sim(MaxProtocol{}, g, 4);
  // Initially every processor except the last sees a larger right neighbor.
  EXPECT_EQ(sim.enabled_processors().size(), 3u);
  EXPECT_FALSE(sim.is_enabled(3));
  CentralRoundRobinDaemon daemon;
  ASSERT_TRUE(sim.step(daemon));  // processor 0 copies 1: becomes disabled...
  EXPECT_FALSE(sim.is_enabled(0));
  // ...until neighbor 1 grows past it again.
  ASSERT_TRUE(sim.step(daemon));  // processor 1 copies 2
  EXPECT_TRUE(sim.is_enabled(0));
}

TEST(Simulator, ActionCountsAccumulate) {
  const auto g = graph::make_path(4);
  Simulator<MaxProtocol> sim(MaxProtocol{}, g, 5);
  SynchronousDaemon daemon;
  while (sim.step(daemon)) {
  }
  EXPECT_GT(sim.action_count(0), 0u);
  EXPECT_EQ(sim.steps(), 3u);
}

TEST(Simulator, DeterministicGivenSeed) {
  const auto g = graph::make_random_connected(10, 8, 17);
  auto run = [&](std::uint64_t seed) {
    Simulator<MaxProtocol> sim(MaxProtocol{}, g, seed);
    util::Rng fault_rng(99);
    sim.randomize(fault_rng);
    DistributedRandomDaemon daemon(0.5);
    std::vector<std::uint64_t> hashes;
    while (sim.step(daemon)) {
      hashes.push_back(sim.config().hash());
    }
    return hashes;
  };
  EXPECT_EQ(run(7), run(7));
  // Different engine seeds give different schedules (very likely).
  EXPECT_NE(run(7), run(8));
}

TEST(Simulator, RandomizeUsesProtocolDomains) {
  const auto g = graph::make_path(3);
  Simulator<MaxProtocol> sim(MaxProtocol{}, g, 6);
  util::Rng rng(123);
  sim.randomize(rng);
  for (ProcessorId p = 0; p < 3; ++p) {
    EXPECT_LT(sim.config().state(p).value, 100u);
  }
}

TEST(Simulator, ResetToInitialRestoresCleanState) {
  const auto g = graph::make_path(3);
  Simulator<MaxProtocol> sim(MaxProtocol{}, g, 7);
  util::Rng rng(5);
  sim.randomize(rng);
  sim.reset_to_initial();
  for (ProcessorId p = 0; p < 3; ++p) {
    EXPECT_EQ(sim.config().state(p).value, p);
  }
  EXPECT_EQ(sim.steps(), 0u);
}

TEST(Simulator, ApplyHookSeesPreStepConfig) {
  const auto g = graph::make_path(2);
  Simulator<SwapProtocol> sim(SwapProtocol{}, g, 8);
  SynchronousDaemon daemon;
  int hooks = 0;
  sim.set_apply_hook([&](ProcessorId p, ActionId a,
                         const Configuration<IntState>& before,
                         const IntState& after) {
    ++hooks;
    EXPECT_EQ(a, 0);
    // `before` must hold the original values even while both swap.
    EXPECT_EQ(before.state(0).value, 111u);
    EXPECT_EQ(before.state(1).value, 222u);
    EXPECT_EQ(after.value, p == 0 ? 222u : 111u);
  });
  ASSERT_TRUE(sim.step(daemon));
  EXPECT_EQ(hooks, 2);
}

TEST(Simulator, RunUntilPredicateAndLimits) {
  const auto g = graph::make_path(8);
  Simulator<MaxProtocol> sim(MaxProtocol{}, g, 9);
  SynchronousDaemon daemon;
  auto r1 = sim.run_until(
      daemon,
      [](const Configuration<IntState>& c) { return c.state(0).value >= 3; },
      RunLimits{.max_steps = 100});
  EXPECT_EQ(r1.reason, StopReason::kPredicate);

  sim.reset_to_initial();
  auto r2 = sim.run_until(
      daemon, [](const Configuration<IntState>&) { return false; },
      RunLimits{.max_steps = 2});
  EXPECT_EQ(r2.reason, StopReason::kStepLimit);
  EXPECT_EQ(r2.steps, 2u);

  sim.reset_to_initial();
  auto r3 = sim.run_until(
      daemon, [](const Configuration<IntState>&) { return false; },
      RunLimits{.max_steps = 1000, .max_rounds = 3});
  EXPECT_EQ(r3.reason, StopReason::kRoundLimit);
  EXPECT_EQ(r3.rounds, 3u);
}

TEST(Simulator, CopyForkStepsIdenticallyMidRun) {
  const auto g = graph::make_random_connected(12, 10, 23);
  Simulator<MaxProtocol> sim(MaxProtocol{}, g, 14);
  util::Rng rng(15);
  sim.randomize(rng);
  DistributedRandomDaemon daemon;
  for (int i = 0; i < 5 && sim.step(daemon); ++i) {
  }

  Simulator<MaxProtocol> fork = sim;  // mid-run value copy
  // The copy carries configuration, cached masks, RNG and counters: both
  // must trace out the exact same suffix.
  EXPECT_EQ(fork.steps(), sim.steps());
  EXPECT_EQ(fork.rounds(), sim.rounds());
  DistributedRandomDaemon daemon_fork(0.5);
  while (true) {
    const bool more_a = sim.step(daemon);
    const bool more_b = fork.step(daemon_fork);
    ASSERT_EQ(more_a, more_b);
    if (!more_a) {
      break;
    }
    ASSERT_EQ(sim.config().hash(), fork.config().hash());
    ASSERT_EQ(sim.steps(), fork.steps());
    ASSERT_EQ(sim.rounds(), fork.rounds());
  }
}

TEST(Simulator, CopyDoesNotInheritObservers) {
  const auto g = graph::make_path(3);
  Simulator<MaxProtocol> sim(MaxProtocol{}, g, 16);
  int hooks = 0;
  sim.set_apply_hook([&](ProcessorId, ActionId,
                         const Configuration<IntState>&, const IntState&) {
    ++hooks;
  });
  Simulator<MaxProtocol> fork = sim;
  SynchronousDaemon daemon;
  while (fork.step(daemon)) {
  }
  EXPECT_EQ(hooks, 0);  // the copy's steps must not fire the original's hook
  while (sim.step(daemon)) {
  }
  EXPECT_GT(hooks, 0);
}

TEST(Simulator, TraceRecordsChoices) {
  const auto g = graph::make_path(3);
  Simulator<MaxProtocol> sim(MaxProtocol{}, g, 10);
  Trace trace(16);
  sim.set_trace(&trace);
  SynchronousDaemon daemon;
  while (sim.step(daemon)) {
  }
  EXPECT_GT(trace.size(), 0u);
  EXPECT_EQ(trace[0].step, 0u);
  EXPECT_EQ(trace[0].choices.size(), 2u);  // processors 0 and 1 enabled
  const auto names = sim.action_names();
  const std::string out = trace.render(names);
  EXPECT_NE(out.find("max"), std::string::npos);
}

}  // namespace
}  // namespace snappif::sim
