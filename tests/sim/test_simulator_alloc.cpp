// Steady-state allocation audit for the execution engine.
//
// Simulator::step is the innermost loop of every experiment; the engine keeps
// all bookkeeping (masks, enabled list + position index, dirty set, staged
// writes, executed flags) in flat buffers that are reused across steps, so
// after a short warm-up — during which vectors grow to their high-water
// marks — stepping must perform ZERO heap allocations.
//
// This test overrides the global allocation functions with counting wrappers
// (which is why it lives in its own binary) and asserts the counter does not
// move across a long post-warm-up run.  FairDaemon is excluded: it keeps a
// per-processor age table it re-derives per call by design.
#include <atomic>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "pif/faults.hpp"
#include "pif/protocol.hpp"
#include "pif/soa_engine.hpp"
#include "sim/daemon.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace {

std::atomic<std::uint64_t> g_allocations{0};

}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) {
    return p;
  }
  throw std::bad_alloc{};
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace snappif::sim {
namespace {

/// Warm the engine up (buffers reach their high-water marks), then assert a
/// long stretch of further steps allocates nothing.  Works for any engine
/// with the Simulator stepping surface (mask Simulator<P>, pif::SoaEngine).
template <typename Engine>
void expect_steady_state_alloc_free(Engine& sim, IDaemon& daemon) {
  for (int i = 0; i < 200 && sim.step(daemon); ++i) {
  }
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  int stepped = 0;
  for (; stepped < 300 && sim.step(daemon); ++stepped) {
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "after " << stepped << " steps";
  EXPECT_GT(stepped, 0) << "run went terminal before the audit window";
}

TEST(SimulatorAlloc, PifStepsAllocateNothingSteadyState) {
  const auto g = graph::make_random_connected(24, 16, 5);
  pif::PifProtocol proto(g, pif::Params::for_graph(g));
  sim::Simulator<pif::PifProtocol> sim(proto, g, 17);
  util::Rng rng(18);
  pif::apply_corruption(sim, pif::CorruptionKind::kUniformRandom, rng);
  SynchronousDaemon daemon;
  expect_steady_state_alloc_free(sim, daemon);
}

TEST(SimulatorAlloc, RandomDaemonsAllocateNothingSteadyState) {
  const auto g = graph::make_grid(5, 5);
  pif::PifProtocol proto(g, pif::Params::for_graph(g));

  sim::Simulator<pif::PifProtocol> sim_dist(proto, g, 19);
  sim_dist.set_action_policy(ActionPolicy::kRandomEnabled);
  DistributedRandomDaemon dist(0.5);
  expect_steady_state_alloc_free(sim_dist, dist);

  sim::Simulator<pif::PifProtocol> sim_central(proto, g, 20);
  CentralRandomDaemon central;
  expect_steady_state_alloc_free(sim_central, central);

  sim::Simulator<pif::PifProtocol> sim_rr(proto, g, 21);
  CentralRoundRobinDaemon rr;
  expect_steady_state_alloc_free(sim_rr, rr);
}

// --- SoA engine (pif::SoaEngine) -------------------------------------------
//
// The data-oriented engine makes the same promise: after warm-up (batched
// scratch buffers are reserved to n up front in the constructor), both the
// synchronous fast path and the generic step path allocate nothing.

TEST(SoaEngineAlloc, SynchronousFastPathAllocatesNothingSteadyState) {
  const auto g = graph::make_random_connected(24, 16, 5);
  pif::PifProtocol proto(g, pif::Params::for_graph(g));
  pif::SoaEngine eng(proto, g, 17);
  util::Rng rng(18);
  eng.randomize(rng);
  SynchronousDaemon daemon;
  expect_steady_state_alloc_free(eng, daemon);
}

TEST(SoaEngineAlloc, GenericStepPathAllocatesNothingSteadyState) {
  const auto g = graph::make_grid(5, 5);
  pif::PifProtocol proto(g, pif::Params::for_graph(g));

  pif::SoaEngine eng_dist(proto, g, 19);
  eng_dist.set_action_policy(ActionPolicy::kRandomEnabled);
  DistributedRandomDaemon dist(0.5);
  expect_steady_state_alloc_free(eng_dist, dist);

  pif::SoaEngine eng_central(proto, g, 20);
  CentralRandomDaemon central;
  expect_steady_state_alloc_free(eng_central, central);

  pif::SoaEngine eng_rr(proto, g, 21);
  CentralRoundRobinDaemon rr;
  expect_steady_state_alloc_free(eng_rr, rr);
}

TEST(SoaEngineAlloc, ProbedSynchronousStepAllocatesNothingSteadyState) {
  // A probe disables the batched fast path; the generic path under the
  // synchronous daemon (largest selections) must still be allocation-free.
  class NoopProbe final : public IProbe<pif::PifProtocol> {};
  const auto g = graph::make_random_connected(24, 16, 5);
  pif::PifProtocol proto(g, pif::Params::for_graph(g));
  pif::SoaEngine eng(proto, g, 23);
  util::Rng rng(24);
  eng.randomize(rng);
  NoopProbe probe;
  eng.add_probe(&probe);
  SynchronousDaemon daemon;
  expect_steady_state_alloc_free(eng, daemon);
}

}  // namespace
}  // namespace snappif::sim
