// sim::inject_burst contract: count clamping, zero no-op, and exact-size
// distinct-subset selection (Floyd sampling must never hit a processor
// twice).
#include "sim/faults.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "sim/simulator.hpp"

namespace snappif::sim {
namespace {

struct TagState {
  std::uint32_t value = 0;
  [[nodiscard]] bool operator==(const TagState&) const noexcept = default;
  [[nodiscard]] std::uint64_t hash() const noexcept { return value; }
};

/// Inert protocol whose random_state is always distinguishable from every
/// initial state (initial: value = p < n; random: value >= 1000), so the
/// number of changed processors equals the number of corruptions exactly.
class TagProtocol {
 public:
  using State = TagState;
  [[nodiscard]] State initial_state(ProcessorId p) const { return {p}; }
  [[nodiscard]] ActionId num_actions() const { return 1; }
  [[nodiscard]] std::string_view action_name(ActionId) const { return "noop"; }
  [[nodiscard]] bool enabled(const Configuration<State>&, ProcessorId,
                             ActionId) const {
    return false;
  }
  [[nodiscard]] State apply(const Configuration<State>& c, ProcessorId p,
                            ActionId) const {
    return c.state(p);
  }
  [[nodiscard]] State random_state(ProcessorId, util::Rng& rng) const {
    return {1000 + static_cast<std::uint32_t>(rng.below(1'000'000))};
  }
};

constexpr ProcessorId kN = 12;

[[nodiscard]] std::size_t changed_count(const Simulator<TagProtocol>& sim) {
  std::size_t changed = 0;
  for (ProcessorId p = 0; p < sim.config().n(); ++p) {
    changed += sim.config().state(p).value >= 1000 ? 1 : 0;
  }
  return changed;
}

TEST(InjectBurst, ZeroCountIsANoOp) {
  const auto g = graph::make_cycle(kN);
  TagProtocol protocol;
  Simulator<TagProtocol> sim(protocol, g, 1);
  util::Rng rng(7);
  inject_burst(sim, 0, rng);
  EXPECT_EQ(changed_count(sim), 0u);
  for (ProcessorId p = 0; p < kN; ++p) {
    EXPECT_EQ(sim.config().state(p).value, p);
  }
}

TEST(InjectBurst, CountIsClampedToN) {
  const auto g = graph::make_cycle(kN);
  TagProtocol protocol;
  Simulator<TagProtocol> sim(protocol, g, 2);
  util::Rng rng(8);
  inject_burst(sim, kN + 5, rng);
  EXPECT_EQ(changed_count(sim), static_cast<std::size_t>(kN));
}

TEST(InjectBurst, HitsExactlyCountDistinctProcessors) {
  // If Floyd sampling ever picked a processor twice, fewer than `count`
  // states would change.  Exercise every count over many seeds.
  const auto g = graph::make_cycle(kN);
  TagProtocol protocol;
  for (std::uint32_t count = 1; count <= kN; ++count) {
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
      Simulator<TagProtocol> sim(protocol, g, seed);
      util::Rng rng(seed * 1000 + count);
      inject_burst(sim, count, rng);
      ASSERT_EQ(changed_count(sim), count)
          << "count=" << count << " seed=" << seed;
    }
  }
}

TEST(InjectBurst, EveryProcessorIsReachable) {
  // Single-processor bursts must not be biased away from any position.
  const auto g = graph::make_cycle(kN);
  TagProtocol protocol;
  std::vector<bool> hit(kN, false);
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    Simulator<TagProtocol> sim(protocol, g, seed);
    util::Rng rng(seed);
    inject_burst(sim, 1, rng);
    for (ProcessorId p = 0; p < kN; ++p) {
      if (sim.config().state(p).value >= 1000) {
        hit[p] = true;
      }
    }
  }
  for (ProcessorId p = 0; p < kN; ++p) {
    EXPECT_TRUE(hit[p]) << "processor " << p << " never corrupted";
  }
}

}  // namespace
}  // namespace snappif::sim
