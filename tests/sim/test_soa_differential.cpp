// Differential proof obligations for the data-oriented (SoA) engine.
//
// The SoA engine re-implements the execution core — CSR adjacency, column
// state, branch-free batched guard evaluation, incremental enabled-set
// maintenance, a synchronous fast path — and every piece must be
// *bit-for-bit* equivalent to the mask engine, which stays as the oracle
// (just as the per-guard loop stayed as the oracle for the mask engine):
//
//   1. BatchedGuards::mask_of == GuardEval::mask and BatchedGuards::apply ==
//      PifProtocol::apply on randomized configurations, across every Params
//      variant and topology family.
//   2. SoaEngine and Simulator<PifProtocol>, seeded identically, produce
//      identical trajectories under all three daemon classes (synchronous,
//      central-random, distributed-random) and both action policies:
//      states, enabled masks, enabled-list order (RNG lockstep), step/round
//      counters, per-action counts.
//   3. The synchronous fast path is indistinguishable from the generic step
//      path (a probe forces the generic path on an otherwise identical run).
//   4. A mid-run copy-forked SoaEngine steps identically to its original and
//      to a forked mask engine.
//   5. Probes observe identical event streams on both engines; the
//      type-erased IEngine factory drives both to identical results.
#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "pif/batched.hpp"
#include "pif/codec.hpp"
#include "pif/protocol.hpp"
#include "pif/soa.hpp"
#include "pif/soa_engine.hpp"
#include "sim/csr.hpp"
#include "sim/engine.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace snappif {
namespace {

using graph::Graph;
using sim::ProcessorId;
using PifSim = sim::Simulator<pif::PifProtocol>;

/// Same topology families as the mask-differential suite.
std::vector<Graph> topology_families() {
  std::vector<Graph> gs;
  gs.push_back(graph::make_path(7));
  gs.push_back(graph::make_cycle(6));
  gs.push_back(graph::make_star(7));
  gs.push_back(graph::make_grid(3, 3));
  gs.push_back(graph::make_complete(5));
  gs.push_back(graph::make_binary_tree(9));
  gs.push_back(graph::make_random_connected(10, 7, 42));
  return gs;
}

/// Every Params variant: canonical, each literal switch, each ablation, and
/// a non-zero root.
std::vector<pif::Params> params_variants(const Graph& g) {
  std::vector<pif::Params> variants;
  variants.push_back(pif::Params::for_graph(g));
  for (int which = 0; which < 7; ++which) {
    auto p = pif::Params::for_graph(g);
    switch (which) {
      case 0: p.literal_sumset_fok_owner = true; break;
      case 1: p.literal_prepotential_fok = true; break;
      case 2: p.literal_root_goodfok = true; break;
      case 3: p.min_level_potential = false; break;
      case 4: p.ablate_broadcast_leaf = true; break;
      case 5: p.ablate_feedback_bleaf = true; break;
      default: p.ablate_count_wait = true; break;
    }
    variants.push_back(p);
  }
  variants.push_back(pif::Params::for_graph(g, /*root=*/g.n() / 2));
  return variants;
}

TEST(Csr, RowsMatchGraphNeighborhoods) {
  for (const Graph& g : topology_families()) {
    const sim::Csr csr(g);
    ASSERT_EQ(csr.n(), g.n());
    ASSERT_EQ(csr.entries(), 2 * g.m());
    for (ProcessorId v = 0; v < g.n(); ++v) {
      const auto row = csr.row(v);
      const auto nbrs = g.neighbors(v);
      ASSERT_EQ(row.size(), nbrs.size());
      ASSERT_EQ(csr.degree(v), g.degree(v));
      for (std::size_t i = 0; i < row.size(); ++i) {
        EXPECT_EQ(row[i], nbrs[i]) << "vertex " << v << " slot " << i;
      }
    }
  }
}

TEST(Csr, EmptyAndSingleton) {
  const sim::Csr empty;
  EXPECT_EQ(empty.n(), 0u);
  EXPECT_EQ(empty.entries(), 0u);
  const sim::Csr one((Graph(1)));
  EXPECT_EQ(one.n(), 1u);
  EXPECT_EQ(one.degree(0), 0u);
}

TEST(PifSoa, RoundTripsStatesAndCodecWords) {
  const auto g = graph::make_random_connected(9, 5, 11);
  pif::PifProtocol proto(g, pif::Params::for_graph(g));
  const pif::StateCodec codec(g, proto.params());
  util::Rng rng(77);
  pif::PifProtocol::Config c(g, proto.initial_state(0));
  for (ProcessorId p = 0; p < g.n(); ++p) {
    c.state(p) = proto.random_state(p, rng);
  }
  pif::PifSoa soa;
  soa.load(c);
  ASSERT_EQ(soa.n(), g.n());
  pif::PifProtocol::Config back(g, proto.initial_state(0));
  soa.store(back);
  for (ProcessorId p = 0; p < g.n(); ++p) {
    EXPECT_EQ(soa.get(p), c.state(p)) << "processor " << p;
    EXPECT_EQ(back.state(p), c.state(p)) << "processor " << p;
    // Packed-codec bridge: SoA encode == AoS encode, and installing a wire
    // word lands the codec-decoded (clamped) state.
    EXPECT_EQ(soa.encode(p, codec), codec.encode(c.state(p)));
    const std::uint64_t garbage = rng();
    soa.set_encoded(p, garbage, codec);
    EXPECT_EQ(soa.get(p), codec.decode(p, garbage));
    soa.set(p, c.state(p));
  }
}

TEST(SoaDifferential, KernelMaskAndApplyMatchReference) {
  std::uint64_t seed = 9000;
  for (const Graph& g : topology_families()) {
    const sim::Csr csr(g);
    for (const pif::Params& params : params_variants(g)) {
      pif::PifProtocol proto(g, params);
      const pif::BatchedGuards kernel(proto, csr);
      util::Rng rng(seed++);
      pif::PifProtocol::Config c(g, proto.initial_state(0));
      pif::PifSoa soa;
      for (int t = 0; t < 48; ++t) {
        for (ProcessorId p = 0; p < g.n(); ++p) {
          c.state(p) = proto.random_state(p, rng);
        }
        soa.load(c);
        for (ProcessorId p = 0; p < g.n(); ++p) {
          const sim::ActionMask expected = proto.enabled_mask(c, p);
          ASSERT_EQ(kernel.mask_of(soa, p), expected)
              << "trial " << t << " processor " << p;
          for (sim::ActionMask m = expected; m != 0; m &= m - 1) {
            const sim::ActionId a = sim::first_action(m);
            ASSERT_EQ(kernel.apply(soa, p, a), proto.apply(c, p, a))
                << "trial " << t << " processor " << p << " action "
                << proto.action_name(a);
          }
        }
      }
    }
  }
}

TEST(SoaDifferential, PackedOverflowFallsBackToExactColumns) {
  // Domains wider than the packed word's 20-bit level/count fields: repack
  // sets the ovf bit and mask_of must detour to the exact column path —
  // still bit-for-bit against the reference evaluator.  The draw ranges
  // straddle kPackedFieldMax, so the same sweep also covers in-range words
  // mixed with overflowed neighbors.
  const Graph g = graph::make_random_connected(12, 10, 5);
  pif::Params params = pif::Params::for_graph(g);
  params.l_max = pif::PifSoa::kPackedFieldMax * 4;
  params.n_upper = pif::PifSoa::kPackedFieldMax * 4;
  pif::PifProtocol proto(g, params);
  const sim::Csr csr(g);
  const pif::BatchedGuards kernel(proto, csr);
  util::Rng rng(123);
  pif::PifProtocol::Config c(g, proto.initial_state(0));
  pif::PifSoa soa;
  bool saw_overflow = false;
  bool saw_in_range = false;
  for (int t = 0; t < 64; ++t) {
    for (ProcessorId p = 0; p < g.n(); ++p) {
      c.state(p) = proto.random_state(p, rng);
    }
    soa.load(c);
    for (ProcessorId p = 0; p < g.n(); ++p) {
      const bool ovf = (soa.packed[p] & (1u << 3)) != 0;
      saw_overflow |= ovf;
      saw_in_range |= !ovf;
      const sim::ActionMask expected = proto.enabled_mask(c, p);
      ASSERT_EQ(kernel.mask_of(soa, p), expected)
          << "trial " << t << " processor " << p << " ovf " << ovf;
      for (sim::ActionMask m = expected; m != 0; m &= m - 1) {
        const sim::ActionId a = sim::first_action(m);
        ASSERT_EQ(kernel.apply(soa, p, a), proto.apply(c, p, a))
            << "trial " << t << " processor " << p;
      }
    }
  }
  EXPECT_TRUE(saw_overflow);
  EXPECT_TRUE(saw_in_range);
}

/// Full structural comparison: states, cached masks, enabled-list *order*
/// (random daemons index into it, so order is part of the contract),
/// step/round counters.
void expect_lockstep(const PifSim& oracle, const pif::SoaEngine& soa) {
  ASSERT_EQ(oracle.config().n(), soa.config().n());
  for (ProcessorId p = 0; p < oracle.config().n(); ++p) {
    ASSERT_EQ(oracle.config().state(p), soa.config().state(p)) << "state " << p;
    ASSERT_EQ(oracle.config().state(p), soa.soa().get(p)) << "soa state " << p;
    ASSERT_EQ(oracle.enabled_mask_of(p), soa.enabled_mask_of(p)) << "mask " << p;
  }
  const auto list_a = oracle.enabled_processors();
  const auto list_b = soa.enabled_processors();
  ASSERT_EQ(list_a.size(), list_b.size());
  for (std::size_t i = 0; i < list_a.size(); ++i) {
    ASSERT_EQ(list_a[i], list_b[i]) << "enabled-list slot " << i;
  }
  ASSERT_EQ(oracle.steps(), soa.steps());
  ASSERT_EQ(oracle.rounds(), soa.rounds());
  for (sim::ActionId a = 0; a < pif::kNumActions; ++a) {
    ASSERT_EQ(oracle.action_count(a), soa.action_count(a)) << "action " << int(a);
  }
}

void run_lockstep(const Graph& g, const pif::Params& params,
                  sim::DaemonKind kind, sim::ActionPolicy policy,
                  std::uint64_t seed, int steps) {
  pif::PifProtocol proto(g, params);
  PifSim oracle(proto, g, seed);
  pif::SoaEngine soa(proto, g, seed);
  // Identical arbitrary initial configurations.
  util::Rng init_a(seed ^ 0xabcdef);
  util::Rng init_b(seed ^ 0xabcdef);
  oracle.randomize(init_a);
  soa.randomize(init_b);
  oracle.set_action_policy(policy);
  soa.set_action_policy(policy);
  auto daemon_a = sim::make_daemon(kind);
  auto daemon_b = sim::make_daemon(kind);
  expect_lockstep(oracle, soa);
  for (int i = 0; i < steps; ++i) {
    const bool more_a = oracle.step(*daemon_a);
    const bool more_b = soa.step(*daemon_b);
    ASSERT_EQ(more_a, more_b) << "terminality diverged at step " << i;
    expect_lockstep(oracle, soa);
    if (!more_a) {
      break;
    }
  }
}

TEST(SoaDifferential, LockstepAllDaemonsAllParamsAllFamilies) {
  const sim::DaemonKind kinds[] = {sim::DaemonKind::kSynchronous,
                                   sim::DaemonKind::kCentralRandom,
                                   sim::DaemonKind::kDistributedRandom};
  std::uint64_t seed = 10'000;
  for (const Graph& g : topology_families()) {
    for (const pif::Params& params : params_variants(g)) {
      for (sim::DaemonKind kind : kinds) {
        run_lockstep(g, params, kind, sim::ActionPolicy::kFirstEnabled,
                     seed++, /*steps=*/60);
      }
    }
  }
}

TEST(SoaDifferential, LockstepRandomPolicyConsumesIdenticalRandomness) {
  // kRandomEnabled draws from the engine RNG per selected processor; any
  // divergence in enabled-list order or draw count desynchronizes the
  // trajectories instantly, so surviving 80 steps is a strong lockstep
  // witness.
  std::uint64_t seed = 20'000;
  for (const Graph& g : topology_families()) {
    run_lockstep(g, pif::Params::for_graph(g),
                 sim::DaemonKind::kCentralRandom,
                 sim::ActionPolicy::kRandomEnabled, seed++, /*steps=*/80);
    run_lockstep(g, pif::Params::for_graph(g),
                 sim::DaemonKind::kDistributedRandom,
                 sim::ActionPolicy::kRandomEnabled, seed++, /*steps=*/80);
  }
}

TEST(SoaDifferential, SynchronousFastPathMatchesGenericPath) {
  // A no-op probe forces the generic step path; the probe-free twin takes
  // the batched fast path.  Both must match the oracle exactly.
  class NoopProbe final : public sim::IProbe<pif::PifProtocol> {};
  std::uint64_t seed = 30'000;
  for (const Graph& g : topology_families()) {
    pif::PifProtocol proto(g, pif::Params::for_graph(g));
    PifSim oracle(proto, g, seed);
    pif::SoaEngine fast(proto, g, seed);
    pif::SoaEngine generic(proto, g, seed);
    util::Rng r1(seed), r2(seed), r3(seed);
    oracle.randomize(r1);
    fast.randomize(r2);
    generic.randomize(r3);
    NoopProbe probe;
    generic.add_probe(&probe);
    sim::SynchronousDaemon d1, d2, d3;
    for (int i = 0; i < 100; ++i) {
      const bool more = oracle.step(d1);
      ASSERT_EQ(fast.step(d2), more);
      ASSERT_EQ(generic.step(d3), more);
      expect_lockstep(oracle, fast);
      for (ProcessorId p = 0; p < g.n(); ++p) {
        ASSERT_EQ(generic.config().state(p), fast.config().state(p));
      }
      ASSERT_EQ(generic.rounds(), fast.rounds());
      if (!more) {
        break;
      }
    }
    ++seed;
  }
}

TEST(SoaDifferential, MidRunCopyForkStepsIdentically) {
  const auto g = graph::make_random_connected(8, 5, 3);
  pif::PifProtocol proto(g, pif::Params::for_graph(g));
  PifSim oracle(proto, g, 31);
  pif::SoaEngine soa(proto, g, 31);
  util::Rng i1(32), i2(32);
  oracle.randomize(i1);
  soa.randomize(i2);
  oracle.set_action_policy(sim::ActionPolicy::kRandomEnabled);
  soa.set_action_policy(sim::ActionPolicy::kRandomEnabled);

  sim::CentralRandomDaemon da, db;
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(oracle.step(da));
    ASSERT_TRUE(soa.step(db));
  }
  expect_lockstep(oracle, soa);

  PifSim oracle_fork = oracle;       // mid-run value copies
  pif::SoaEngine soa_fork = soa;
  sim::CentralRandomDaemon dc, dd;
  for (int i = 0; i < 100; ++i) {
    const bool more = oracle.step(da);
    ASSERT_EQ(soa.step(db), more);
    ASSERT_EQ(oracle_fork.step(dc), more);
    ASSERT_EQ(soa_fork.step(dd), more);
    expect_lockstep(oracle, soa);
    expect_lockstep(oracle_fork, soa_fork);
    ASSERT_EQ(oracle.config().hash(), oracle_fork.config().hash());
    if (!more) {
      break;
    }
  }
}

TEST(SoaDifferential, SetStateParityAndRebuild) {
  const auto g = graph::make_cycle(6);
  pif::PifProtocol proto(g, pif::Params::for_graph(g));
  PifSim oracle(proto, g, 21);
  pif::SoaEngine soa(proto, g, 21);
  util::Rng rng(22);
  for (int t = 0; t < 50; ++t) {
    const auto p = static_cast<ProcessorId>(rng.below(g.n()));
    const auto s = proto.random_state(p, rng);
    oracle.set_state(p, s);
    soa.set_state(p, s);
    expect_lockstep(oracle, soa);
  }
  oracle.reset_to_initial();
  soa.reset_to_initial();
  expect_lockstep(oracle, soa);
}

/// Records the full observable event stream of a run.
class RecordingProbe final : public sim::IProbe<pif::PifProtocol> {
 public:
  struct Apply {
    ProcessorId p;
    sim::ActionId a;
    std::uint64_t before_hash;
    pif::State after;
    bool operator==(const Apply&) const = default;
  };
  struct Step {
    std::uint64_t step;
    std::uint64_t rounds_before;
    std::vector<ProcessorId> selected;
    std::vector<sim::ActionChoice> choices;
    std::size_t enabled_before;
    std::size_t enabled_after;
    bool round_completed;
    bool operator==(const Step&) const = default;
  };

  void on_attach(const Config& c) override { ++attaches_; last_hash_ = c.hash(); }
  void on_step_begin(const sim::StepEvent& ev, const Config& c) override {
    cur_ = Step{ev.step,
                ev.rounds_before,
                {ev.selected.begin(), ev.selected.end()},
                {ev.choices.begin(), ev.choices.end()},
                ev.enabled_before,
                0,
                false};
    last_hash_ = c.hash();
  }
  void on_apply(ProcessorId p, sim::ActionId a, const Config& before,
                const pif::State& after) override {
    applies_.push_back({p, a, before.hash(), after});
  }
  void on_step_end(const sim::StepEvent& ev, const Config&) override {
    cur_.enabled_after = ev.enabled_after;
    steps_.push_back(cur_);
  }
  void on_round_complete(std::uint64_t, const sim::StepEvent&,
                         const Config&) override {
    steps_.back().round_completed = true;
  }

  Step cur_;
  std::vector<Step> steps_;
  std::vector<Apply> applies_;
  int attaches_ = 0;
  std::uint64_t last_hash_ = 0;
};

TEST(SoaDifferential, ProbesObserveIdenticalEventStreams) {
  const auto g = graph::make_grid(3, 3);
  pif::PifProtocol proto(g, pif::Params::for_graph(g));
  PifSim oracle(proto, g, 51);
  pif::SoaEngine soa(proto, g, 51);
  util::Rng i1(52), i2(52);
  oracle.randomize(i1);
  soa.randomize(i2);
  RecordingProbe pa, pb;
  oracle.add_probe(&pa);
  soa.add_probe(&pb);
  sim::DistributedRandomDaemon da(0.5), db(0.5);
  for (int i = 0; i < 60; ++i) {
    ASSERT_EQ(oracle.step(da), soa.step(db));
  }
  ASSERT_EQ(pa.steps_.size(), pb.steps_.size());
  EXPECT_EQ(pa.steps_, pb.steps_);
  ASSERT_EQ(pa.applies_.size(), pb.applies_.size());
  EXPECT_EQ(pa.applies_, pb.applies_);
  EXPECT_EQ(pa.attaches_, pb.attaches_);
}

TEST(SoaDifferential, EngineFactoryDrivesBothToIdenticalResults) {
  EXPECT_EQ(sim::engine_kind_name(sim::EngineKind::kMask), "mask");
  EXPECT_EQ(sim::engine_kind_name(sim::EngineKind::kSoa), "soa");
  EXPECT_EQ(sim::parse_engine_kind("mask"), sim::EngineKind::kMask);
  EXPECT_EQ(sim::parse_engine_kind("soa"), sim::EngineKind::kSoa);
  EXPECT_FALSE(sim::parse_engine_kind("simd").has_value());

  const auto g = graph::make_random_connected(12, 8, 9);
  const auto params = pif::Params::for_graph(g);
  std::array<std::unique_ptr<sim::IEngine<pif::PifProtocol>>, 2> engines = {
      pif::make_engine(sim::EngineKind::kMask, g, params, 61),
      pif::make_engine(sim::EngineKind::kSoa, g, params, 61),
  };
  EXPECT_EQ(engines[0]->engine_name(), "mask");
  EXPECT_EQ(engines[1]->engine_name(), "soa");
  std::array<sim::RunResult, 2> results;
  for (int i = 0; i < 2; ++i) {
    auto& eng = *engines[i];
    util::Rng init(62);
    eng.randomize(init);
    auto daemon = sim::make_daemon(sim::DaemonKind::kCentralRoundRobin);
    results[i] = eng.run_until(
        *daemon,
        [&](const pif::PifProtocol::Config& c) {
          return c.state(eng.protocol().root()).pif == pif::Phase::kB;
        },
        sim::RunLimits{.max_steps = 5000});
  }
  EXPECT_EQ(results[0].reason, results[1].reason);
  EXPECT_EQ(results[0].steps, results[1].steps);
  EXPECT_EQ(results[0].rounds, results[1].rounds);
  EXPECT_EQ(engines[0]->config().hash(), engines[1]->config().hash());
}

}  // namespace
}  // namespace snappif
