// Worst-case schedule search: the found maxima must respect the theorem
// bounds, and the search must actually explore (find something > typical).
#include <gtest/gtest.h>

#include "analysis/worstcase.hpp"
#include "graph/generators.hpp"

namespace snappif::analysis {
namespace {

TEST(WorstCase, RoundsToNormalWithinTheorem1) {
  const auto g = graph::make_random_connected(12, 8, 4);
  const auto result =
      find_worst_case(g, WorstCaseMetric::kRoundsToNormal, 60, 1);
  EXPECT_EQ(result.failures, 0u);
  EXPECT_GT(result.worst, 0u);
  EXPECT_LE(result.worst, 3u * (g.n() - 1) + 3);
}

TEST(WorstCase, RoundsToSbnWithinComposedBound) {
  const auto g = graph::make_cycle(10);
  const auto result = find_worst_case(g, WorstCaseMetric::kRoundsToSbn, 60, 2);
  EXPECT_EQ(result.failures, 0u);
  EXPECT_LE(result.worst, 9u * (g.n() - 1) + 8);
}

TEST(WorstCase, CycleRoundsWithinTheorem4) {
  const auto g = graph::make_path(9);
  const auto result = find_worst_case(g, WorstCaseMetric::kCycleRounds, 40, 3);
  EXPECT_EQ(result.failures, 0u);
  // On a path the constructed tree is the path itself: h = 8 always.
  EXPECT_LE(result.worst, 5u * 8 + 5);
  EXPECT_GE(result.worst, 8u);
}

TEST(WorstCase, GreedyAdversaryStaysWithinTheorem1) {
  // The lookahead adversary tries hard to keep the network abnormal; the
  // theorem bound must still hold and the search must make progress.
  for (const auto& named :
       {graph::NamedGraph{"path8", graph::make_path(8)},
        graph::NamedGraph{"ring8", graph::make_cycle(8)},
        graph::NamedGraph{"rand10", graph::make_random_connected(10, 6, 3)}}) {
    std::uint64_t worst = 0;
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      const auto rounds = greedy_delay_rounds_to_normal(
          named.graph, pif::CorruptionKind::kAdversarialMix, seed);
      worst = std::max(worst, rounds);
      EXPECT_LE(rounds, 3u * (named.graph.n() - 1) + 3) << named.name;
    }
    EXPECT_GT(worst, 0u) << named.name;
  }
}

TEST(WorstCase, GreedyAdversaryHandlesCleanStart) {
  // A clean (already all-normal) start returns immediately with 0 rounds.
  const auto g = graph::make_star(6);
  const auto rounds =
      greedy_delay_rounds_to_normal(g, pif::CorruptionKind::kUniformRandom, 2);
  EXPECT_LE(rounds, 3u * (g.n() - 1) + 3);
}

TEST(WorstCase, ReportsReproducibleSeed) {
  const auto g = graph::make_star(8);
  const auto result =
      find_worst_case(g, WorstCaseMetric::kRoundsToNormal, 30, 4);
  ASSERT_GT(result.worst, 0u);
  // Re-running the winning configuration must reproduce the winning value.
  RunConfig rc;
  rc.daemon = result.worst_daemon;
  rc.seed = result.worst_seed;
  // Note: policy/corruption rotation is part of the trial index; we only
  // check determinism of the daemon+seed pair across the recipes.
  bool reproduced = false;
  for (pif::CorruptionKind kind : pif::all_corruption_kinds()) {
    for (sim::ActionPolicy policy :
         {sim::ActionPolicy::kFirstEnabled, sim::ActionPolicy::kRandomEnabled}) {
      rc.corruption = kind;
      rc.policy = policy;
      const auto r = measure_stabilization(g, rc);
      if (r.ok && r.rounds_to_all_normal == result.worst) {
        reproduced = true;
      }
    }
  }
  EXPECT_TRUE(reproduced);
}

}  // namespace
}  // namespace snappif::analysis
