// The experiment runners themselves: limit handling, metric consistency,
// determinism, and agreement between independent runners.
#include <gtest/gtest.h>

#include "analysis/runners.hpp"
#include "graph/generators.hpp"

namespace snappif::analysis {
namespace {

TEST(Runners, StabilizationHonorsStepLimit) {
  const auto g = graph::make_path(12);
  RunConfig rc;
  rc.max_steps = 1;  // absurdly small: must fail gracefully
  rc.corruption = pif::CorruptionKind::kAdversarialMix;
  const auto r = measure_stabilization(g, rc);
  EXPECT_FALSE(r.ok);
}

TEST(Runners, CycleHonorsStepLimit) {
  const auto g = graph::make_path(12);
  RunConfig rc;
  rc.max_steps = 2;
  const auto r = run_cycle_from_sbn(g, rc);
  EXPECT_FALSE(r.ok);
}

TEST(Runners, StabilizationFromCleanStartIsInstant) {
  // reset_to_initial IS the SBN configuration: both milestones at round 0.
  const auto g = graph::make_cycle(8);
  RunConfig rc;
  rc.corruption = pif::CorruptionKind::kUniformRandom;
  rc.seed = 3;
  const auto r = measure_stabilization(g, rc);
  ASSERT_TRUE(r.ok);
  // (Corrupted start, so not zero — but the milestones must be ordered.)
  EXPECT_LE(r.rounds_to_all_normal, r.rounds_to_sbn);
}

TEST(Runners, DeterministicForSameSeed) {
  const auto g = graph::make_random_connected(10, 8, 5);
  RunConfig rc;
  rc.corruption = pif::CorruptionKind::kAdversarialMix;
  rc.seed = 42;
  const auto a = measure_stabilization(g, rc);
  const auto b = measure_stabilization(g, rc);
  EXPECT_EQ(a.rounds_to_all_normal, b.rounds_to_all_normal);
  EXPECT_EQ(a.rounds_to_sbn, b.rounds_to_sbn);
  EXPECT_EQ(a.steps, b.steps);
  const auto c1 = run_cycle_from_sbn(g, rc);
  const auto c2 = run_cycle_from_sbn(g, rc);
  EXPECT_EQ(c1.rounds, c2.rounds);
  EXPECT_EQ(c1.height, c2.height);
  EXPECT_EQ(c1.steps, c2.steps);
}

TEST(Runners, CycleMetricsAreInternallyConsistent) {
  const auto g = graph::make_grid(3, 4);
  RunConfig rc;
  rc.seed = 9;
  const auto r = run_cycle_from_sbn(g, rc);
  ASSERT_TRUE(r.ok);
  EXPECT_LE(r.rounds_to_feedback, r.rounds);
  EXPECT_GE(r.height, 1u);
  EXPECT_GT(r.steps, 0u);
}

TEST(Runners, MultiCycleRunsAreIndependentCycles) {
  const auto g = graph::make_cycle(7);
  RunConfig rc;
  rc.daemon = sim::DaemonKind::kSynchronous;
  const auto runs = run_cycles_from_sbn(g, rc, 4);
  ASSERT_EQ(runs.size(), 4u);
  for (std::size_t i = 1; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].rounds, runs[0].rounds);  // deterministic daemon
  }
}

TEST(Runners, SnapRunnerReportsPhases) {
  const auto g = graph::make_star(9);
  RunConfig rc;
  rc.corruption = pif::CorruptionKind::kAdversarialMix;
  rc.seed = 77;
  const auto r = check_snap_first_cycle(g, rc);
  ASSERT_TRUE(r.cycle_completed);
  EXPECT_TRUE(r.ok());
  EXPECT_GT(r.steps, 0u);
}

TEST(Runners, ParamsForAppliesOverrides) {
  const auto g = graph::make_path(6);
  RunConfig rc;
  rc.l_max_override = 10;
  rc.min_level_potential = false;
  rc.root = 3;
  const auto params = params_for(g, rc);
  EXPECT_EQ(params.l_max, 10u);
  EXPECT_FALSE(params.min_level_potential);
  EXPECT_EQ(params.root, 3u);
  EXPECT_EQ(params.n, 6u);
  EXPECT_EQ(params.n_upper, 6u);
}

TEST(Runners, EngineKnobPreservesEveryMilestone) {
  // RunConfig::engine must change throughput only: the SoA engine's runs are
  // bit-for-bit the mask engine's runs (the engines share the RNG draw
  // sequence end to end, including corruption).
  const auto g = graph::make_random_connected(12, 9, 6);
  for (const auto corruption : pif::all_corruption_kinds()) {
    RunConfig mask_rc;
    mask_rc.corruption = corruption;
    mask_rc.seed = 77;
    RunConfig soa_rc = mask_rc;
    soa_rc.engine = sim::EngineKind::kSoa;

    const auto sm = measure_stabilization(g, mask_rc);
    const auto ss = measure_stabilization(g, soa_rc);
    EXPECT_EQ(sm.ok, ss.ok) << corruption_name(corruption);
    EXPECT_EQ(sm.rounds_to_all_normal, ss.rounds_to_all_normal);
    EXPECT_EQ(sm.rounds_to_sbn, ss.rounds_to_sbn);
    EXPECT_EQ(sm.steps, ss.steps);

    const auto nm = check_snap_first_cycle(g, mask_rc);
    const auto ns = check_snap_first_cycle(g, soa_rc);
    EXPECT_EQ(nm.ok(), ns.ok()) << corruption_name(corruption);
    EXPECT_EQ(nm.rounds_to_start, ns.rounds_to_start);
    EXPECT_EQ(nm.rounds_to_close, ns.rounds_to_close);
    EXPECT_EQ(nm.steps, ns.steps);
  }

  RunConfig mask_rc;
  mask_rc.seed = 78;
  RunConfig soa_rc = mask_rc;
  soa_rc.engine = sim::EngineKind::kSoa;
  const auto cm = run_cycles_from_sbn(g, mask_rc, 3);
  const auto cs = run_cycles_from_sbn(g, soa_rc, 3);
  ASSERT_EQ(cm.size(), cs.size());
  for (std::size_t i = 0; i < cm.size(); ++i) {
    EXPECT_EQ(cm[i].ok, cs[i].ok);
    EXPECT_EQ(cm[i].rounds, cs[i].rounds);
    EXPECT_EQ(cm[i].steps, cs[i].steps);
    EXPECT_EQ(cm[i].height, cs[i].height);
  }
}

}  // namespace
}  // namespace snappif::analysis
