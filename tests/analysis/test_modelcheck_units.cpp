// Unit-level checks of the model checker's machinery: packing widths,
// configuration-space counting, and behavior on the smallest instances.
#include <gtest/gtest.h>

#include "analysis/modelcheck.hpp"
#include "graph/generators.hpp"

namespace snappif::analysis {
namespace {

TEST(ModelCheckUnits, PackedBitsMatchHandCount) {
  // Path of 3, root 0, N'=3, Lmax=2.
  // root: pif 2 + fok 1 + count 2 (3 values) = 5 bits
  // p1 (deg 2): 2+1+2 + level 1 (2 values) + parent 1 = 7 bits
  // p2 (deg 1): 2+1+2 + level 1 + parent 0 = 6 bits
  // ghost: 1 + 3*2 = 7 bits -> total 25.
  const auto g = graph::make_path(3);
  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  EXPECT_EQ(packed_state_bits(g, protocol), 25u);
}

TEST(ModelCheckUnits, ConfigurationCountMatchesDomainProduct) {
  // path2: root (3*2*2=12) x p1 (3*2*2*1 level... Lmax=1 so level has 1
  // value -> 0 bits; count N'=2 -> 2 values) = 3*2*2 = 12 -> 12*12=144.
  const auto g = graph::make_path(2);
  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  const auto report = check_no_deadlock(g, protocol);
  EXPECT_EQ(report.configurations, 144u);
}

TEST(ModelCheckUnits, SingleProcessorNetworkNeverDeadlocks) {
  const graph::Graph g(1);
  pif::Params params = pif::Params::for_graph(g);
  pif::PifProtocol protocol(g, params);
  const auto report = check_no_deadlock(g, protocol);
  // Domains: pif 3 x fok 2 x count 1 = 6 configurations.
  EXPECT_EQ(report.configurations, 6u);
  EXPECT_EQ(report.deadlocks, 0u);
}

TEST(ModelCheckUnits, ExhaustiveSnapOnSingleton) {
  const graph::Graph g(1);
  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  const auto report = exhaustive_snap_check(g, protocol);
  ASSERT_TRUE(report.complete);
  EXPECT_GT(report.cycle_closures, 0u);
  EXPECT_EQ(report.violations, 0u);
  EXPECT_EQ(report.deadlocks, 0u);
}

TEST(ModelCheckUnits, StateCapAbortsCleanly) {
  const auto g = graph::make_path(3);
  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  const auto report = exhaustive_snap_check(g, protocol, /*max_states=*/100);
  EXPECT_FALSE(report.complete);
  EXPECT_GT(report.states, 100u);  // reports how far it got
}

TEST(ModelCheckUnits, TransitionsAndClosuresAreCounted) {
  const auto g = graph::make_path(2);
  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  const auto report = exhaustive_snap_check(g, protocol);
  ASSERT_TRUE(report.complete);
  EXPECT_GT(report.transitions, report.states);  // branching factor > 1
  EXPECT_GT(report.cycle_closures, 0u);
}

}  // namespace
}  // namespace snappif::analysis
