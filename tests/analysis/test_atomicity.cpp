// Delayed-commit (read/write atomicity) emulation.
#include <gtest/gtest.h>

#include "analysis/atomicity.hpp"
#include "graph/generators.hpp"

namespace snappif::analysis {
namespace {

TEST(Atomicity, ZeroDelayEqualsCompositeAtomicity) {
  // delay = 0 is a plain central random schedule: the snap property holds.
  const auto g = graph::make_grid(3, 3);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto r = check_snap_with_delayed_commits(
        g, pif::CorruptionKind::kAdversarialMix, 0.0, seed);
    ASSERT_TRUE(r.cycle_completed) << "seed " << seed;
    EXPECT_TRUE(r.ok()) << "seed " << seed;
  }
}

TEST(Atomicity, DelayedCommitsStillTerminate) {
  // Even with heavy delays the run must reach a first cycle closure (the
  // guarantee that may break is correctness, not progress).
  const auto g = graph::make_cycle(8);
  int completed = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto r = check_snap_with_delayed_commits(
        g, pif::CorruptionKind::kUniformRandom, 0.6, seed);
    completed += r.cycle_completed ? 1 : 0;
  }
  EXPECT_GE(completed, 18);
}

TEST(Atomicity, RobustToConsistentSnapshotStaleness) {
  // Empirical finding (E16): the snap property SURVIVES delayed commits —
  // consistent-snapshot staleness where a processor's write lands 1-3
  // scheduler steps after its reads.  The reason is structural: within a
  // root-initiated cycle, joins only happen before Fok_r rises (so no one
  // can stalely join a feedbacking parent — Count_r = N separates the
  // phases), and pre-Fok the Sum values are monotone, so a stale Count is
  // never an overcount.  NOTE the limitation: this emulation keeps each
  // read set consistent; full read/write atomicity (per-variable
  // interleaved reads) is NOT covered and remains unproven.
  std::uint64_t failures = 0;
  std::uint64_t completed = 0;
  for (const auto& named : graph::standard_suite(16, 99)) {
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
      const auto r = check_snap_with_delayed_commits(
          named.graph, pif::CorruptionKind::kAdversarialMix, 0.6, seed * 13);
      completed += r.cycle_completed ? 1 : 0;
      if (r.cycle_completed && !r.ok()) {
        ++failures;
      }
    }
  }
  EXPECT_GT(completed, 150u);
  EXPECT_EQ(failures, 0u);
}

}  // namespace
}  // namespace snappif::analysis
