// Generic exhaustive deadlock checking across ALL protocols in the repo.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "analysis/explore.hpp"
#include "baselines/selfstab_pif.hpp"
#include "baselines/tree_pif.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "pif/multi.hpp"
#include "pif/protocol.hpp"

namespace snappif::analysis {
namespace {

template <sim::Protocol P>
std::vector<std::vector<typename P::State>> domains_of(const graph::Graph& g,
                                                       const P& protocol) {
  std::vector<std::vector<typename P::State>> out;
  for (sim::ProcessorId p = 0; p < g.n(); ++p) {
    out.push_back(protocol.all_states(p));
  }
  return out;
}

TEST(Explore, EnumerateProductCountsExactly) {
  std::vector<std::vector<int>> domains{{1, 2}, {10}, {100, 200, 300}};
  std::uint64_t count = 0;
  std::set<std::vector<int>> seen;
  enumerate_product(domains, [&](const std::vector<int>& states) {
    ++count;
    seen.insert(states);
  });
  EXPECT_EQ(count, 6u);
  EXPECT_EQ(seen.size(), 6u);  // all distinct
  EXPECT_EQ(product_space_size(domains), 6u);
}

TEST(Explore, PifAllStatesMatchesDomainArithmetic) {
  const auto g = graph::make_path(3);
  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  // root: 3*2*3 = 18; middle (deg 2): 3*2*3*2*2 = 72; end (deg 1): 36.
  EXPECT_EQ(protocol.all_states(0).size(), 18u);
  EXPECT_EQ(protocol.all_states(1).size(), 72u);
  EXPECT_EQ(protocol.all_states(2).size(), 36u);
}

TEST(Explore, PifGenericMatchesSpecializedChecker) {
  const auto g = graph::make_path(3);
  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  const auto report =
      check_no_deadlock_generic(g, protocol, domains_of(g, protocol));
  EXPECT_EQ(report.configurations, 46656u);
  EXPECT_EQ(report.deadlocks, 0u);
}

TEST(Explore, TreePifNeverDeadlocks) {
  for (const auto& named :
       {graph::NamedGraph{"path4", graph::make_path(4)},
        graph::NamedGraph{"star5", graph::make_star(5)},
        graph::NamedGraph{"bintree7", graph::make_binary_tree(7)}}) {
    const auto tree = graph::bfs_tree(named.graph, 0);
    baselines::TreePifProtocol protocol(named.graph, 0, tree.parent);
    const auto report = check_no_deadlock_generic(named.graph, protocol,
                                                  domains_of(named.graph, protocol));
    EXPECT_EQ(report.configurations,
              static_cast<std::uint64_t>(std::pow(3.0, named.graph.n())))
        << named.name;
    EXPECT_EQ(report.deadlocks, 0u) << named.name;
  }
}

TEST(Explore, SelfStabPifNeverDeadlocksOnTinyGraphs) {
  for (const auto& named :
       {graph::NamedGraph{"path3", graph::make_path(3)},
        graph::NamedGraph{"triangle", graph::make_cycle(3)},
        graph::NamedGraph{"path4", graph::make_path(4)}}) {
    baselines::SelfStabPifProtocol protocol(named.graph, 0);
    const auto domains = domains_of(named.graph, protocol);
    ASSERT_LT(product_space_size(domains), 3'000'000u) << named.name;
    const auto report =
        check_no_deadlock_generic(named.graph, protocol, domains);
    EXPECT_EQ(report.deadlocks, 0u) << named.name;
  }
}

TEST(Explore, MultiPifNeverDeadlocksOnTinyInstance) {
  // Two initiators on a 2-path: the product of two full PIF domains.
  const auto g = graph::make_path(2);
  pif::MultiPifProtocol protocol(g, {0, 1});

  // Build the multi-state domains as products of the per-instance domains.
  std::vector<std::vector<pif::MultiState>> domains(g.n());
  for (sim::ProcessorId p = 0; p < g.n(); ++p) {
    std::vector<std::vector<pif::State>> slot_domains;
    for (std::size_t i = 0; i < protocol.instances(); ++i) {
      slot_domains.push_back(protocol.instance(i).all_states(p));
    }
    enumerate_product(slot_domains, [&](const std::vector<pif::State>& slots) {
      pif::MultiState ms;
      ms.slots = slots;
      domains[p].push_back(ms);
    });
  }
  ASSERT_LT(product_space_size(domains), 30'000u);
  const auto report = check_no_deadlock_generic(g, protocol, domains);
  EXPECT_EQ(report.deadlocks, 0u);
}

TEST(Explore, LiteralPrePotentialWitnessReproducedGenerically) {
  const auto g = graph::make_path(3);
  pif::Params params = pif::Params::for_graph(g);
  params.literal_prepotential_fok = true;
  pif::PifProtocol protocol(g, params);
  const auto report =
      check_no_deadlock_generic(g, protocol, domains_of(g, protocol));
  EXPECT_EQ(report.deadlocks, 36u);
  EXPECT_FALSE(report.witness_indices.empty());
}

}  // namespace
}  // namespace snappif::analysis
