// Event log and exporters: every JSONL line and the whole Chrome trace file
// must be well-formed JSON (validated with obs::json_valid), with the
// trace_event fields about:tracing requires.
#include "obs/export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace snappif::obs {
namespace {

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    lines.push_back(line);
  }
  return lines;
}

EventLog sample_log() {
  EventLog log;
  log.emit(TraceEvent("pif.cycle", 'B', 10));
  log.emit(TraceEvent("pif.phase", 'C', 12)
               .arg("B", std::uint64_t{5})
               .arg("F", std::uint64_t{3})
               .arg("C", std::uint64_t{8}));
  TraceEvent corr("pif.correction", 'i', 13);
  corr.tid = 7;
  log.emit(std::move(corr).arg("action", "B-correction"));
  TraceEvent span("pif.cycle", 'X', 10);
  span.dur = 25;
  log.emit(std::move(span));
  log.emit(TraceEvent("weird \"name\"\n", 'i', 14).arg("v", 0.5));
  return log;
}

TEST(EventLog, EveryJsonlLineIsValidJson) {
  const EventLog log = sample_log();
  const auto lines = split_lines(log.render_jsonl());
  ASSERT_EQ(lines.size(), log.size());
  for (const std::string& line : lines) {
    EXPECT_TRUE(json_valid(line)) << line;
  }
}

TEST(EventLog, ChromeTraceIsOneValidJsonDocument) {
  const EventLog log = sample_log();
  const std::string trace = log.render_chrome_trace();
  EXPECT_TRUE(json_valid(trace)) << trace;
  EXPECT_NE(trace.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(trace.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
}

TEST(EventLog, EventJsonCarriesTraceEventFields) {
  TraceEvent e("pif.fok_at_root", 'i', 42);
  e.tid = 3;
  const std::string json = event_json(e);
  EXPECT_TRUE(json_valid(json));
  EXPECT_NE(json.find("\"name\":\"pif.fok_at_root\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\":42"), std::string::npos);
  EXPECT_NE(json.find("\"pid\":0"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":3"), std::string::npos);
  EXPECT_EQ(json.find("\"dur\""), std::string::npos);  // only for 'X'

  TraceEvent x("span", 'X', 5);
  x.dur = 9;
  const std::string xjson = event_json(x);
  EXPECT_TRUE(json_valid(xjson));
  EXPECT_NE(xjson.find("\"dur\":9"), std::string::npos);
}

TEST(EventLog, ArgsRoundTripNumbersAndStrings) {
  const std::string json =
      event_json(TraceEvent("e", 'i', 0)
                     .arg("n", std::uint64_t{16})
                     .arg("x", 2.5)
                     .arg("s", "B phase"));
  EXPECT_TRUE(json_valid(json));
  EXPECT_NE(json.find("\"n\":16"), std::string::npos);
  EXPECT_NE(json.find("\"x\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"B phase\""), std::string::npos);
}

TEST(EventLog, BoundedWithDropAccounting) {
  EventLog log(2);
  log.emit(TraceEvent("a", 'i', 0));
  log.emit(TraceEvent("b", 'i', 1));
  log.emit(TraceEvent("c", 'i', 2));
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.dropped(), 1u);
  log.clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(EventLog, WritesFilesThatValidate) {
  const EventLog log = sample_log();
  const std::string jsonl_path = ::testing::TempDir() + "snappif_events.jsonl";
  const std::string trace_path = ::testing::TempDir() + "snappif_trace.json";
  ASSERT_TRUE(log.write_jsonl(jsonl_path));
  ASSERT_TRUE(log.write_chrome_trace(trace_path));

  auto slurp = [](const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
  };
  const std::string jsonl = slurp(jsonl_path);
  ASSERT_FALSE(jsonl.empty());
  for (const std::string& line : split_lines(jsonl)) {
    EXPECT_TRUE(json_valid(line)) << line;
  }
  EXPECT_TRUE(json_valid(slurp(trace_path)));
  std::remove(jsonl_path.c_str());
  std::remove(trace_path.c_str());
}

TEST(EventLog, WriteToUnwritablePathFails) {
  const EventLog log = sample_log();
  EXPECT_FALSE(log.write_jsonl("/nonexistent-dir/x/y.jsonl"));
}

}  // namespace
}  // namespace snappif::obs
