// Registry fingerprint: merge-order invariance (the property the parallel
// joins rely on), sensitivity to real content, and the deliberate exclusion
// of order-sensitive material (gauges, floating-point moments).
#include "obs/fingerprint.hpp"

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hpp"

namespace snappif::obs {
namespace {

Registry make_registry(std::uint64_t scale) {
  Registry r;
  r.counter("runs").inc(3 * scale);
  r.counter("violations").inc(scale);
  r.stats("latency").add(1.0 * static_cast<double>(scale));
  r.stats("latency").add(2.0 * static_cast<double>(scale));
  auto& h = r.histogram("rounds", 8, 2.0);
  h.add(1.0);
  h.add(3.0 * static_cast<double>(scale));
  return r;
}

TEST(Fingerprint, StableForEqualContent) {
  EXPECT_EQ(fingerprint(make_registry(2)), fingerprint(make_registry(2)));
  EXPECT_EQ(fingerprint_hex(make_registry(2)),
            fingerprint_hex(make_registry(2)));
}

TEST(Fingerprint, MergeOrderInvariant) {
  const Registry a = make_registry(1);
  const Registry b = make_registry(7);
  Registry ab;
  ab.merge(a);
  ab.merge(b);
  Registry ba;
  ba.merge(b);
  ba.merge(a);
  EXPECT_EQ(fingerprint(ab), fingerprint(ba));
  EXPECT_NE(fingerprint(ab), fingerprint(a));
}

TEST(Fingerprint, SensitiveToEveryIncludedSection) {
  const std::uint64_t base = fingerprint(make_registry(1));

  Registry counter_diff = make_registry(1);
  counter_diff.counter("runs").inc();
  EXPECT_NE(fingerprint(counter_diff), base);

  Registry hist_diff = make_registry(1);
  hist_diff.histogram("rounds", 8, 2.0).add(5.0);
  EXPECT_NE(fingerprint(hist_diff), base);

  Registry stat_diff = make_registry(1);
  stat_diff.stats("latency").add(9.0);  // count changes
  EXPECT_NE(fingerprint(stat_diff), base);

  Registry name_diff = make_registry(1);
  name_diff.counter("extra").inc();
  EXPECT_NE(fingerprint(name_diff), base);
}

TEST(Fingerprint, GaugesExcluded) {
  // Gauges are last-write-wins, so two merge orders can legitimately end
  // with different gauge values — they must not affect the digest.
  Registry a = make_registry(1);
  a.gauge("temperature").set(10);
  Registry b = make_registry(1);
  b.gauge("temperature").set(99);
  EXPECT_EQ(fingerprint(a), fingerprint(b));
}

TEST(Fingerprint, HexIsSixteenLowercaseDigits) {
  const std::string hex = fingerprint_hex(make_registry(3));
  ASSERT_EQ(hex.size(), 16u);
  for (const char c : hex) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << hex;
  }
}

TEST(Fingerprint, EmptyRegistryHasAFingerprintToo) {
  const Registry empty;
  EXPECT_EQ(fingerprint(empty), fingerprint(Registry{}));
  EXPECT_NE(fingerprint(empty), fingerprint(make_registry(1)));
}

}  // namespace
}  // namespace snappif::obs
