// Exporter golden tests: the rendered artifacts of a fixed scenario must be
// byte-stable across worker counts.  Per-shard span collectors and metric
// registries are folded in shard-index order, so the Chrome trace text, the
// flight dump, and the registry fingerprint from 1, 2, and 8 workers must be
// identical — any divergence means a join stopped being deterministic.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "obs/export.hpp"
#include "obs/fingerprint.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "par/pool.hpp"
#include "par/shard.hpp"
#include "pif/ghost.hpp"
#include "pif/instrument.hpp"
#include "pif/protocol.hpp"
#include "pif/wave_trace.hpp"
#include "sim/daemon.hpp"
#include "sim/simulator.hpp"

namespace snappif {
namespace {

struct ShardOut {
  obs::SpanCollector spans;
  obs::Registry metrics;
};

/// One shard = one fixed two-wave run on a small ring, traced end to end.
/// Everything derives from the shard index, nothing from the worker.
ShardOut run_traced_shard(std::size_t index) {
  ShardOut out;
  const auto g = graph::make_cycle(6);
  pif::PifProtocol protocol(g, pif::Params::for_graph(g, 0));
  sim::Simulator<pif::PifProtocol> sim(protocol, g, 1000 + index);
  pif::WaveTraceProbe wave(0, out.spans, &out.metrics);
  sim.add_probe(&wave);
  pif::GhostTracker tracker(g, 0);
  pif::attach(sim, tracker);
  auto daemon = sim::make_daemon(sim::DaemonKind::kDistributedRandom);
  (void)sim.run_until(
      *daemon,
      [&](const sim::Configuration<pif::State>&) {
        return tracker.cycles_completed() >= 2;  // the fixed two-wave run
      },
      sim::RunLimits{.max_steps = 200'000});
  wave.finish();
  return out;
}

/// Renders the merged artifacts of a 4-shard traced run under `pool`.
struct Rendered {
  std::string chrome_trace;
  std::string fingerprint;
};

Rendered render_with_pool(par::ThreadPool* pool) {
  auto shards = par::run_shards(
      /*master_seed=*/7, /*count=*/4,
      [](par::ShardContext& ctx) { return run_traced_shard(ctx.index); },
      pool);

  obs::SpanCollector merged_spans;
  obs::Registry merged_metrics;
  for (const ShardOut& s : shards) {  // shard-index order: the contract
    merged_spans.merge(s.spans);
    merged_metrics.merge(s.metrics);
  }
  obs::EventLog log;
  merged_spans.to_events(log);
  return Rendered{log.render_chrome_trace(),
                  obs::fingerprint_hex(merged_metrics)};
}

TEST(ExporterGolden, ChromeTraceByteStableAcrossWorkerCounts) {
  const Rendered sequential = render_with_pool(nullptr);
  ASSERT_FALSE(sequential.chrome_trace.empty());

  par::ThreadPool two(2);
  par::ThreadPool eight(8);
  const Rendered with2 = render_with_pool(&two);
  const Rendered with8 = render_with_pool(&eight);

  EXPECT_EQ(sequential.chrome_trace, with2.chrome_trace);
  EXPECT_EQ(sequential.chrome_trace, with8.chrome_trace);
  EXPECT_EQ(sequential.fingerprint, with2.fingerprint);
  EXPECT_EQ(sequential.fingerprint, with8.fingerprint);
}

TEST(ExporterGolden, FingerprintInvariantUnderRegistryMergeOrder) {
  // Same shards, folded forwards and backwards: the span STREAM differs
  // (ids re-base in fold order) but the metrics fingerprint must not.
  std::vector<ShardOut> shards;
  shards.reserve(3);
  for (std::size_t i = 0; i < 3; ++i) {
    shards.push_back(run_traced_shard(i));
  }
  obs::Registry forward;
  for (std::size_t i = 0; i < shards.size(); ++i) {
    forward.merge(shards[i].metrics);
  }
  obs::Registry backward;
  for (std::size_t i = shards.size(); i-- > 0;) {
    backward.merge(shards[i].metrics);
  }
  EXPECT_EQ(obs::fingerprint(forward), obs::fingerprint(backward));
  EXPECT_EQ(obs::fingerprint_hex(forward), obs::fingerprint_hex(backward));
}

TEST(ExporterGolden, TracedWavesCarryCausalLinks) {
  ShardOut out = run_traced_shard(0);
  std::size_t waves = 0;
  std::size_t linked_phases = 0;
  for (const obs::Span& s : out.spans.spans()) {
    if (s.kind == obs::SpanKind::kWave) {
      ++waves;
      EXPECT_EQ(s.wave, s.id);
      EXPECT_GT(s.end, s.begin);
    }
    if (s.kind == obs::SpanKind::kPhase && s.wave != 0) {
      ++linked_phases;
      EXPECT_EQ(s.parent, s.wave);
    }
  }
  EXPECT_EQ(waves, 2u);
  EXPECT_GT(linked_phases, 0u);
  // The aggregate side of the same run.
  EXPECT_EQ(out.metrics.counter("pif.wave.count").value(), 2u);
}

}  // namespace
}  // namespace snappif
