// Causal span model: id minting, causal links, drop-oldest flight-recorder
// semantics, and the deterministic merge that makes per-shard collectors
// fold into worker-count-invariant streams.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/json.hpp"

namespace snappif::obs {
namespace {

TEST(Span, IdsMintSequentiallyFromOne) {
  SpanCollector c;
  EXPECT_EQ(c.open(SpanKind::kPhase, 0, 0), 1u);
  EXPECT_EQ(c.open(SpanKind::kPhase, 1, 1), 2u);
  EXPECT_EQ(c.instant(SpanKind::kMark, 2, 0), 3u);
  EXPECT_EQ(c.total_opened(), 3u);
}

TEST(Span, WaveSpansPointAtThemselves) {
  SpanCollector c;
  const SpanId w = c.open(SpanKind::kWave, 5, 0);
  const Span* s = c.find(w);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->wave, w);
  EXPECT_EQ(s->parent, 0u);
}

TEST(Span, CausalLinksAndDetailSurvive) {
  SpanCollector c;
  const SpanId w = c.open(SpanKind::kWave, 0, 0);
  const SpanId p = c.open(SpanKind::kPhase, 1, 3, w, w, "B");
  c.close(p, 7);
  const Span* s = c.find(p);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->parent, w);
  EXPECT_EQ(s->wave, w);
  EXPECT_EQ(s->tid, 3u);
  EXPECT_EQ(s->begin, 1u);
  EXPECT_EQ(s->end, 7u);
  EXPECT_EQ(s->detail, "B");
}

TEST(Span, InstantKeepsZeroDuration) {
  SpanCollector c;
  const SpanId i = c.instant(SpanKind::kLinkSend, 9, 2, 0, 0, {}, 4);
  const Span* s = c.find(i);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->begin, 9u);
  EXPECT_EQ(s->end, 9u);
  EXPECT_EQ(s->peer, 4u);
}

TEST(Span, DropOldestKeepsContiguousIdRange) {
  SpanCollector c(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    (void)c.open(SpanKind::kMark, i, 0);
  }
  EXPECT_EQ(c.spans().size(), 4u);
  EXPECT_EQ(c.dropped(), 6u);
  EXPECT_EQ(c.total_opened(), 10u);
  EXPECT_EQ(c.spans().front().id, 7u);
  EXPECT_EQ(c.spans().back().id, 10u);
  // Closing an evicted span is a harmless no-op; a retained one still works.
  c.close(2, 99);
  EXPECT_EQ(c.find(2), nullptr);
  c.close(8, 42);
  EXPECT_EQ(c.find(8)->end, 42u);
}

TEST(Span, CloseOfSpanZeroIsNoOp) {
  SpanCollector c;
  c.close(0, 5);  // "no span" handle must always be safe
  EXPECT_TRUE(c.spans().empty());
}

TEST(Span, MergeRemapsIdsParentAndWaveByOffset) {
  SpanCollector a;
  (void)a.open(SpanKind::kWave, 0, 0);  // id 1
  (void)a.open(SpanKind::kPhase, 1, 1, 1, 1);  // id 2

  SpanCollector b;
  const SpanId bw = b.open(SpanKind::kWave, 10, 0);          // id 1
  (void)b.open(SpanKind::kPhase, 11, 2, bw, bw);             // id 2
  (void)b.open(SpanKind::kCorrectionBurst, 12, 0, 0, 0);     // id 3: no wave

  a.merge(b);
  ASSERT_EQ(a.spans().size(), 5u);
  const Span& mw = a.spans()[2];
  const Span& mp = a.spans()[3];
  const Span& mc = a.spans()[4];
  EXPECT_EQ(mw.id, 3u);       // 1 + offset 2
  EXPECT_EQ(mw.wave, 3u);     // self-link remapped
  EXPECT_EQ(mp.parent, 3u);
  EXPECT_EQ(mp.wave, 3u);
  EXPECT_EQ(mc.parent, 0u);   // zero links stay "none", never remapped
  EXPECT_EQ(mc.wave, 0u);
  // Next mint continues after the merged range.
  EXPECT_EQ(a.open(SpanKind::kMark, 0, 0), 6u);
}

TEST(Span, FoldInIndexOrderIsGroupingInvariant) {
  // Three "shards" folded left-to-right vs. pre-merged pairs: identical
  // streams, the property the par::run_shards join relies on.
  const auto make = [](std::uint64_t base) {
    SpanCollector c;
    const SpanId w = c.open(SpanKind::kWave, base, 0);
    (void)c.open(SpanKind::kPhase, base + 1, 1, w, w, "B");
    c.close(w, base + 5);
    return c;
  };
  SpanCollector flat;
  flat.merge(make(0));
  flat.merge(make(10));
  flat.merge(make(20));

  SpanCollector left;
  left.merge(make(0));
  left.merge(make(10));
  SpanCollector grouped;
  grouped.merge(left);
  grouped.merge(make(20));

  ASSERT_EQ(flat.spans().size(), grouped.spans().size());
  for (std::size_t i = 0; i < flat.spans().size(); ++i) {
    EXPECT_EQ(span_json(flat.spans()[i]), span_json(grouped.spans()[i]));
  }
}

TEST(Span, KindNamesRoundTrip) {
  const SpanKind kinds[] = {
      SpanKind::kWave,          SpanKind::kPhase,
      SpanKind::kCorrectionBurst, SpanKind::kLinkSend,
      SpanKind::kLinkRetransmit,  SpanKind::kLinkDeliver,
      SpanKind::kLinkPeerReset,   SpanKind::kMark,
  };
  for (const SpanKind k : kinds) {
    SpanKind out = SpanKind::kWave;
    ASSERT_TRUE(span_kind_from_name(span_kind_name(k), &out))
        << span_kind_name(k);
    EXPECT_EQ(out, k);
  }
  SpanKind out = SpanKind::kWave;
  EXPECT_FALSE(span_kind_from_name("bogus", &out));
}

TEST(Span, SpanJsonIsValidAndToEventsCarriesLinks) {
  SpanCollector c;
  const SpanId w = c.open(SpanKind::kWave, 0, 0);
  (void)c.open(SpanKind::kPhase, 1, 2, w, w, "quote\"and\\slash");
  c.close(w, 4);
  for (const Span& s : c.spans()) {
    EXPECT_TRUE(json_valid(span_json(s))) << span_json(s);
  }
  EventLog log;
  c.to_events(log);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log.events()[0].ph, 'X');
  bool saw_parent = false;
  for (const auto& [key, value] : log.events()[1].args) {
    saw_parent = saw_parent || key == "parent";
  }
  EXPECT_TRUE(saw_parent);
}

}  // namespace
}  // namespace snappif::obs
