// JSON decoder (the flight-dump reader): value construction, string
// unescaping including surrogate pairs, numeric fidelity, accessors, and
// rejection of the malformed shapes the validator also rejects.
#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <string>

namespace snappif::obs {
namespace {

TEST(JsonParse, ParsesScalarsAndContainers) {
  const auto doc = json_parse(
      R"({"b":true,"n":null,"x":-2.5e1,"s":"hi","a":[1,2,3],"o":{"k":"v"}})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_TRUE(doc->is_object());
  EXPECT_EQ(doc->get("b")->kind, JsonValue::Kind::kBool);
  EXPECT_TRUE(doc->get("b")->boolean);
  EXPECT_TRUE(doc->get("n")->is_null());
  EXPECT_DOUBLE_EQ(doc->get("x")->number, -25.0);
  EXPECT_EQ(doc->get("s")->string, "hi");
  ASSERT_TRUE(doc->get("a")->is_array());
  EXPECT_EQ(doc->get("a")->array.size(), 3u);
  ASSERT_TRUE(doc->get("o")->is_object());
  EXPECT_EQ(doc->get("o")->get_string("k"), "v");
  EXPECT_EQ(doc->get("missing"), nullptr);
}

TEST(JsonParse, UnescapesStringsIncludingSurrogatePairs) {
  const auto doc = json_parse(
      R"({"esc":"a\"b\\c\/d\b\f\n\r\t","uni":"é€","pair":"😀"})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->get_string("esc"), "a\"b\\c/d\b\f\n\r\t");
  EXPECT_EQ(doc->get_string("uni"), "\xc3\xa9\xe2\x82\xac");      // é€
  EXPECT_EQ(doc->get_string("pair"), "\xf0\x9f\x98\x80");        // emoji
}

TEST(JsonParse, RejectsLoneSurrogatesAndMalformedInput) {
  EXPECT_FALSE(json_parse(R"({"s":"\ud83d"})").has_value());
  EXPECT_FALSE(json_parse(R"({"s":"\ude00"})").has_value());
  EXPECT_FALSE(json_parse("{").has_value());
  EXPECT_FALSE(json_parse(R"({"a":1,})").has_value());
  EXPECT_FALSE(json_parse(R"([1 2])").has_value());
  EXPECT_FALSE(json_parse("01").has_value());
  EXPECT_FALSE(json_parse("").has_value());
  EXPECT_FALSE(json_parse("true false").has_value());
}

TEST(JsonParse, DepthBounded) {
  std::string deep;
  for (int i = 0; i < 200; ++i) {
    deep += '[';
  }
  for (int i = 0; i < 200; ++i) {
    deep += ']';
  }
  EXPECT_FALSE(json_parse(deep).has_value());
  EXPECT_TRUE(json_parse("[[[[[[1]]]]]]").has_value());
}

TEST(JsonParse, GetU64TruncatesAndRejectsNegatives) {
  const auto doc = json_parse(R"({"i":42,"f":41.9,"neg":-3,"s":"7"})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->get_u64("i"), 42u);
  EXPECT_EQ(doc->get_u64("f"), 41u);
  EXPECT_EQ(doc->get_u64("neg", 5), 5u);   // negative -> fallback
  EXPECT_EQ(doc->get_u64("s", 5), 5u);     // wrong type -> fallback
  EXPECT_EQ(doc->get_u64("missing", 9), 9u);
}

TEST(JsonParse, DuplicateKeysLastWins) {
  const auto doc = json_parse(R"({"k":1,"k":2})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->get_u64("k"), 2u);
}

TEST(JsonParse, RoundTripsValidatorAcceptedOutput) {
  // Everything the emit side produces must parse: build with the writer
  // helpers and read back.
  const std::string payload = std::string("{\"name\":\"") +
                              json_escape("tab\t \"q\" \xf0\x9f\x98\x80") +
                              "\",\"v\":" + json_number(1.5) + "}";
  ASSERT_TRUE(json_valid(payload));
  const auto doc = json_parse(payload);
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(doc->get_string("name"), "tab\t \"q\" \xf0\x9f\x98\x80");
  EXPECT_DOUBLE_EQ(doc->get("v")->number, 1.5);
}

}  // namespace
}  // namespace snappif::obs
