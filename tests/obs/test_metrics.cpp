// Metrics registry: find-or-create semantics, stable handles, table/JSON
// snapshots, plus the JSON utility layer the exporters build on.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "obs/json.hpp"

namespace snappif::obs {
namespace {

TEST(Registry, FindOrCreateReturnsSameInstrument) {
  Registry reg;
  EXPECT_TRUE(reg.empty());
  Counter& a = reg.counter("steps");
  a.inc(3);
  Counter& b = reg.counter("steps");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.value(), 3u);
  EXPECT_FALSE(reg.empty());
}

TEST(Registry, HandlesStayValidAcrossInsertions) {
  Registry reg;
  Counter& first = reg.counter("a");
  // Insert many more names; node-based map must not invalidate `first`.
  for (int i = 0; i < 100; ++i) {
    reg.counter("filler." + std::to_string(i)).inc();
  }
  first.inc(7);
  EXPECT_EQ(reg.counter("a").value(), 7u);
}

TEST(Registry, GaugeLastWriteWins) {
  Registry reg;
  reg.gauge("count_root").set(3);
  reg.gauge("count_root").set(16);
  EXPECT_DOUBLE_EQ(reg.gauge("count_root").value(), 16.0);
}

TEST(Registry, StatsAccumulate) {
  Registry reg;
  reg.stats("rounds").add(2);
  reg.stats("rounds").add(4);
  EXPECT_EQ(reg.stats("rounds").count(), 2u);
  EXPECT_DOUBLE_EQ(reg.stats("rounds").mean(), 3.0);
}

TEST(Registry, HistogramShapeFixedAtCreation) {
  Registry reg;
  util::Histogram& h = reg.histogram("lat", 4, 10.0);
  h.add(35);
  // Later lookups ignore the shape arguments.
  EXPECT_EQ(&reg.histogram("lat", 99, 1.0), &h);
  EXPECT_EQ(reg.histogram("lat").bucket_count(), 4u);
  EXPECT_EQ(reg.histogram("lat").bucket(3), 1u);
}

TEST(Registry, SummaryTableListsEveryKind) {
  Registry reg;
  reg.counter("c").inc(5);
  reg.gauge("g").set(1.5);
  reg.stats("s").add(2);
  reg.histogram("h").add(0.5);
  const std::string out = reg.summary_table().render();
  EXPECT_NE(out.find("counter"), std::string::npos);
  EXPECT_NE(out.find("gauge"), std::string::npos);
  EXPECT_NE(out.find("stats"), std::string::npos);
  EXPECT_NE(out.find("histogram"), std::string::npos);
}

TEST(Registry, JsonSnapshotIsValidJson) {
  Registry reg;
  EXPECT_TRUE(json_valid(reg.json()));  // empty registry
  reg.counter("pif.action.B").inc(12);
  reg.gauge("pif.count_root").set(16);
  reg.stats("pif.cycle_rounds").add(11);
  reg.stats("pif.cycle_rounds").add(13);
  reg.stats("never.fed");  // empty stats must still serialize
  reg.histogram("steps", 8, 4.0).add(9);
  const std::string json = reg.json();
  EXPECT_TRUE(json_valid(json)) << json;
  EXPECT_NE(json.find("\"pif.action.B\":12"), std::string::npos);
  EXPECT_NE(json.find("\"pif.cycle_rounds\":{\"count\":2,\"mean\":12"),
            std::string::npos);
}

TEST(ScopedTimer, FeedsSinkOnDestruction) {
  util::OnlineStats sink;
  {
    ScopedTimer t(sink);
  }
  EXPECT_EQ(sink.count(), 1u);
  EXPECT_GE(sink.min(), 0.0);
}

TEST(Json, EscapeControlAndSpecialCharacters) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string_view("a\x01z", 3)), "a\\u0001z");
}

TEST(Json, NumberFormatting) {
  EXPECT_EQ(json_number(0.0), "0");
  EXPECT_EQ(json_number(42.0), "42");
  EXPECT_EQ(json_number(-3.0), "-3");
  EXPECT_EQ(json_number(std::nan("")), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  // Non-integral values keep their precision and stay valid JSON.
  EXPECT_TRUE(json_valid(json_number(0.1)));
  EXPECT_TRUE(json_valid(json_number(-1e300)));
}

TEST(Json, ValidatorAcceptsAndRejects) {
  EXPECT_TRUE(json_valid("{}"));
  EXPECT_TRUE(json_valid("[]"));
  EXPECT_TRUE(json_valid(" {\"a\": [1, 2.5, -3e2, true, false, null]} "));
  EXPECT_TRUE(json_valid("\"lone string\""));
  EXPECT_TRUE(json_valid("{\"u\":\"\\u00e9\"}"));

  EXPECT_FALSE(json_valid(""));
  EXPECT_FALSE(json_valid("{"));
  EXPECT_FALSE(json_valid("{\"a\":1,}"));
  EXPECT_FALSE(json_valid("[1 2]"));
  EXPECT_FALSE(json_valid("{\"a\":01}"));
  EXPECT_FALSE(json_valid("nul"));
  EXPECT_FALSE(json_valid("{} {}"));  // trailing content
  EXPECT_FALSE(json_valid("{\"a\":+1}"));
  EXPECT_FALSE(json_valid("\"unterminated"));
}

}  // namespace
}  // namespace snappif::obs
