// Flight recorder: exact dump/parse round-trips (including u64 seeds and
// snapshot words above 2^53, which must survive JSON), lowest-failure-wins
// merge, and rejection of malformed dumps.
#include "obs/flight.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/json.hpp"

namespace snappif::obs {
namespace {

FlightRecorder make_recorder(const std::string& failure, std::uint64_t base) {
  FlightRecorder r;
  r.context().tool = "test";
  r.context().scenario = "unit";
  r.context().seed = base;
  r.context().shard = base & 0xff;
  r.context().failure = failure;
  r.context().replay = "./tool --seed=" + std::to_string(base);
  const SpanId w = r.spans().open(SpanKind::kWave, base, 0);
  (void)r.spans().open(SpanKind::kPhase, base + 1, 1, w, w, "B");
  r.spans().close(w, base + 9);
  r.set_snapshot("pif.codec.v1", {base, base + 1});
  return r;
}

TEST(FlightRecorder, DumpRoundTripsExactly) {
  // Deliberately above 2^53: doubles cannot represent these, so the dump
  // format must carry them some other way.
  const std::uint64_t big = 0xdeadbeefcafebabeULL;
  FlightRecorder r = make_recorder("oracle says \"no\"\n", big);
  const std::string json = r.dump_json();
  EXPECT_TRUE(json_valid(json));

  const auto dump = parse_flight_dump(json);
  ASSERT_TRUE(dump.has_value());
  EXPECT_EQ(dump->context.tool, "test");
  EXPECT_EQ(dump->context.scenario, "unit");
  EXPECT_EQ(dump->context.seed, big);
  EXPECT_EQ(dump->context.failure, "oracle says \"no\"\n");
  EXPECT_EQ(dump->context.replay, r.context().replay);
  EXPECT_EQ(dump->snapshot_format, "pif.codec.v1");
  ASSERT_EQ(dump->snapshot_words.size(), 2u);
  EXPECT_EQ(dump->snapshot_words[0], big);
  EXPECT_EQ(dump->snapshot_words[1], big + 1);
  ASSERT_EQ(dump->spans.size(), 2u);
  EXPECT_EQ(dump->spans[0].kind, SpanKind::kWave);
  EXPECT_EQ(dump->spans[0].wave, dump->spans[0].id);
  EXPECT_EQ(dump->spans[1].parent, dump->spans[0].id);
  EXPECT_EQ(dump->spans[1].detail, "B");
  EXPECT_EQ(dump->spans_dropped, 0u);
}

TEST(FlightRecorder, FailedTracksDiagnosis) {
  FlightRecorder r;
  EXPECT_FALSE(r.failed());
  r.context().failure = "snap violated";
  EXPECT_TRUE(r.failed());
}

TEST(FlightRecorder, MergeKeepsLowestFailingContext) {
  FlightRecorder merged;
  merged.merge(make_recorder("", 10));        // shard 10: passed
  merged.merge(make_recorder("first", 20));   // shard 20: FIRST failure
  merged.merge(make_recorder("second", 30));  // shard 30: later failure
  EXPECT_TRUE(merged.failed());
  EXPECT_EQ(merged.context().failure, "first");
  EXPECT_EQ(merged.context().seed, 20u);
  ASSERT_EQ(merged.snapshot_words().size(), 2u);
  EXPECT_EQ(merged.snapshot_words()[0], 20u);
  // Spans from ALL shards are retained (ids contiguous across the fold).
  EXPECT_EQ(merged.spans().size(), 6u);
  EXPECT_EQ(merged.spans().total_opened(), 6u);
}

TEST(FlightRecorder, MergeOfPassingRecordersStaysClean) {
  FlightRecorder merged;
  merged.merge(make_recorder("", 1));
  merged.merge(make_recorder("", 2));
  EXPECT_FALSE(merged.failed());
  EXPECT_TRUE(merged.snapshot_words().empty());
}

TEST(FlightRecorder, RejectsMalformedDumps) {
  EXPECT_FALSE(parse_flight_dump("not json").has_value());
  EXPECT_FALSE(parse_flight_dump("[]").has_value());
  EXPECT_FALSE(parse_flight_dump(R"({"flight":99,"spans":[]})").has_value());
  // Junk snapshot words.
  EXPECT_FALSE(parse_flight_dump(
                   R"({"flight":1,"snapshot":{"format":"x","words":["12"]},)"
                   R"("spans":[]})")
                   .has_value());
  EXPECT_FALSE(parse_flight_dump(
                   R"({"flight":1,"snapshot":{"format":"x","words":["0xZZ"]},)"
                   R"("spans":[]})")
                   .has_value());
  // Unknown span kind.
  EXPECT_FALSE(
      parse_flight_dump(
          R"({"flight":1,"spans":[{"id":1,"kind":"mystery","begin":0}]})")
          .has_value());
  // Missing spans array entirely.
  EXPECT_FALSE(parse_flight_dump(R"({"flight":1})").has_value());
}

TEST(FlightRecorder, EmptyRecorderStillDumpsValidJson) {
  const FlightRecorder r;
  const auto dump = parse_flight_dump(r.dump_json());
  ASSERT_TRUE(dump.has_value());
  EXPECT_TRUE(dump->spans.empty());
  EXPECT_TRUE(dump->context.failure.empty());
}

}  // namespace
}  // namespace snappif::obs
