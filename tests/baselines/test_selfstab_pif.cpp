// Baseline 2 (self-stabilizing BFS-tree + wave PIF): layer-1 convergence,
// eventually correct waves, and the early-wave failures from corrupted
// starts that snap-stabilization eliminates.
#include <gtest/gtest.h>

#include "analysis/runners.hpp"
#include "baselines/selfstab_pif.hpp"
#include "graph/generators.hpp"
#include "sim/simulator.hpp"

namespace snappif::baselines {
namespace {

using Sim = sim::Simulator<SelfStabPifProtocol>;

TEST(SelfStabPif, CleanStartHasStableBfsLayer) {
  const auto g = graph::make_grid(3, 3);
  SelfStabPifProtocol proto(g, 0);
  Sim sim(proto, g, 1);
  EXPECT_TRUE(sim.protocol().bfs_stable(sim.config()));
}

TEST(SelfStabPif, BfsLayerSelfStabilizes) {
  const auto g = graph::make_random_connected(12, 8, 3);
  SelfStabPifProtocol proto(g, 0);
  Sim sim(proto, g, 2);
  util::Rng rng(55);
  sim.randomize(rng);
  auto daemon = sim::make_daemon(sim::DaemonKind::kDistributedRandom);
  auto r = sim.run_until(
      *daemon,
      [&](const sim::Configuration<SelfStabState>& c) {
        return sim.protocol().bfs_stable(c);
      },
      sim::RunLimits{.max_steps = 100000});
  EXPECT_EQ(r.reason, sim::StopReason::kPredicate);
}

TEST(SelfStabPif, BfsLayerStaysStable) {
  // Once stabilized, the dist layer never changes again (closure).
  const auto g = graph::make_cycle(8);
  SelfStabPifProtocol proto(g, 0);
  Sim sim(proto, g, 3);
  util::Rng rng(66);
  sim.randomize(rng);
  auto daemon = sim::make_daemon(sim::DaemonKind::kDistributedRandom);
  auto r = sim.run_until(
      *daemon,
      [&](const sim::Configuration<SelfStabState>& c) {
        return sim.protocol().bfs_stable(c);
      },
      sim::RunLimits{.max_steps = 100000});
  ASSERT_EQ(r.reason, sim::StopReason::kPredicate);
  for (int i = 0; i < 2000; ++i) {
    if (!sim.step(*daemon)) {
      break;
    }
    ASSERT_TRUE(sim.protocol().bfs_stable(sim.config())) << "step " << i;
  }
}

TEST(SelfStabPif, EventuallyDeliversEveryWave) {
  // From an arbitrary configuration the protocol converges to correct waves
  // (self-stabilization) — our runner returns the index of the first
  // correct wave.
  const auto g = graph::make_grid(3, 4);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    analysis::RunConfig rc;
    rc.daemon = sim::DaemonKind::kDistributedRandom;
    rc.seed = seed;
    const auto result = analysis::check_selfstab_first_cycles(g, rc);
    ASSERT_TRUE(result.ok) << "seed " << seed;
  }
}

TEST(SelfStabPif, SometimesLosesEarlyWaves) {
  // The motivating defect: across many corrupted starts, at least some runs
  // complete waves that did not reach everyone before the first correct one
  // (e.g., the root's neighbors initially point elsewhere, so children(r)
  // is empty and the root's broadcast "completes" instantly).
  const auto g = graph::make_random_connected(14, 8, 9);
  std::uint64_t total_failed = 0;
  int runs_ok = 0;
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    analysis::RunConfig rc;
    rc.daemon = sim::DaemonKind::kDistributedRandom;
    rc.seed = seed * 13 + 1;
    const auto result = analysis::check_selfstab_first_cycles(g, rc);
    if (result.ok) {
      ++runs_ok;
      total_failed += result.failed_waves;
    }
  }
  ASSERT_GT(runs_ok, 20);
  EXPECT_GT(total_failed, 0u)
      << "self-stabilizing baseline never lost a wave: too strong?";
}

TEST(SelfStabPif, CleanStartWavesAreAllCorrect) {
  const auto g = graph::make_path(6);
  SelfStabPifProtocol proto(g, 0);
  Sim sim(proto, g, 4);
  SelfStabGhost ghost(g, 0);
  sim.set_apply_hook([&](sim::ProcessorId p, sim::ActionId a,
                         const sim::Configuration<SelfStabState>& before,
                         const SelfStabState& after) {
    ghost.on_apply(p, a, before, after);
  });
  auto daemon = sim::make_daemon(sim::DaemonKind::kCentralRandom);
  auto r = sim.run_until(
      *daemon, [&](const auto&) { return ghost.waves_completed() >= 5; },
      sim::RunLimits{.max_steps = 100000});
  ASSERT_EQ(r.reason, sim::StopReason::kPredicate);
  EXPECT_EQ(ghost.waves_ok(), ghost.waves_completed());
  EXPECT_EQ(ghost.first_ok_wave(), 1u);
}

TEST(SelfStabPif, FixDistRepairsInconsistentDistance) {
  const auto g = graph::make_path(3);
  SelfStabPifProtocol proto(g, 0);
  Sim sim(proto, g, 5);
  SelfStabState bad = sim.config().state(2);
  bad.dist = 0;  // impossible: only the root is at 0
  sim.set_state(2, bad);
  EXPECT_TRUE(sim.is_enabled(2));
  // The repair may cascade (neighbors reacted to the bad 0), but settles.
  auto r = sim.run_until(
      *sim::make_daemon(sim::DaemonKind::kSynchronous),
      [&](const sim::Configuration<SelfStabState>& c) {
        return sim.protocol().bfs_stable(c);
      },
      sim::RunLimits{.max_steps = 1000});
  EXPECT_EQ(r.reason, sim::StopReason::kPredicate);
  EXPECT_EQ(sim.config().state(2).dist, 2u);
}

TEST(SelfStabPif, EmptyChildrenRootLosesWaveInstantly) {
  // Deterministic construction of the headline failure: every neighbor of
  // the root points away from it, so the root's broadcast completes with
  // no receivers at all.
  const auto g = graph::make_cycle(4);  // 0-1-2-3-0, root 0
  SelfStabPifProtocol proto(g, 0);
  Sim sim(proto, g, 6);
  SelfStabGhost ghost(g, 0);
  sim.set_apply_hook([&](sim::ProcessorId p, sim::ActionId a,
                         const sim::Configuration<SelfStabState>& before,
                         const SelfStabState& after) {
    ghost.on_apply(p, a, before, after);
  });
  // Make 1 and 3 (root's neighbors) point at 2 with self-consistent-looking
  // distances so FixDist stays quiet for a moment: dist(2)=?  On C4 the true
  // dists are 1: any wrong parents get repaired, but the wave layer can act
  // first under a central schedule that favors the root.
  SelfStabState s1 = sim.config().state(1);
  s1.parent = 2;
  s1.dist = 2;
  sim.set_state(1, s1);
  SelfStabState s3 = sim.config().state(3);
  s3.parent = 2;
  s3.dist = 2;
  sim.set_state(3, s3);
  SelfStabState s2 = sim.config().state(2);
  s2.dist = 1;  // pretends to be adjacent to the root's level
  s2.parent = 1;
  sim.set_state(2, s2);

  // A daemon that always favors the root — a legal central daemon choice.
  class RootFirstDaemon final : public sim::IDaemon {
   public:
    void select(std::span<const sim::ProcessorId> enabled,
                const sim::DaemonContext&, util::Rng&,
                std::vector<sim::ProcessorId>& out) override {
      out.push_back(enabled.front());  // enabled is ascending; 0 if present
    }
    [[nodiscard]] std::string_view name() const override { return "root-first"; }
  } daemon;

  // Root: B-action (children(r) empty -> enabled), then F-action
  // immediately.
  ASSERT_TRUE(sim.protocol().enabled(sim.config(), 0, kWaveB));
  ASSERT_TRUE(sim.step(daemon));  // root B
  ASSERT_TRUE(sim.protocol().enabled(sim.config(), 0, kWaveF));
  ASSERT_TRUE(sim.step(daemon));  // root F: closes the empty wave
  ASSERT_EQ(ghost.waves_completed(), 1u);
  EXPECT_EQ(ghost.waves_ok(), 0u);
}

}  // namespace
}  // namespace snappif::baselines
