// Baseline 1 (fixed-spanning-tree PIF): correct cycles from clean starts,
// and the first-wave failure from corrupted starts that motivates the paper.
#include <gtest/gtest.h>

#include <set>

#include "analysis/runners.hpp"
#include "baselines/tree_pif.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "sim/simulator.hpp"

namespace snappif::baselines {
namespace {

using Sim = sim::Simulator<TreePifProtocol>;

Sim make_sim(const graph::Graph& g, std::uint64_t seed = 1) {
  const auto tree = graph::bfs_tree(g, 0);
  return Sim(TreePifProtocol(g, 0, tree.parent), g, seed);
}

TEST(TreePif, RejectsNonSpanningTree) {
  const auto g = graph::make_cycle(3);
  EXPECT_DEATH(TreePifProtocol(g, 0, std::vector<sim::ProcessorId>{0, 2, 1}),
               "spanning tree");
}

TEST(TreePif, ChildrenListsConsistent) {
  const auto g = graph::make_star(5);
  const auto tree = graph::bfs_tree(g, 0);
  TreePifProtocol proto(g, 0, tree.parent);
  EXPECT_EQ(proto.children_of(0).size(), 4u);
  EXPECT_TRUE(proto.children_of(3).empty());
  EXPECT_EQ(proto.parent_of(3), 0u);
}

TEST(TreePif, CleanCycleVisitsAllPhases) {
  const auto g = graph::make_path(4);
  Sim sim = make_sim(g);
  sim::SynchronousDaemon daemon;
  TreePifGhost ghost(g, 0);
  const auto tree = graph::bfs_tree(g, 0);
  TreePifProtocol proto(g, 0, tree.parent);
  sim.set_apply_hook([&](sim::ProcessorId p, sim::ActionId a,
                         const sim::Configuration<TreePifState>& before,
                         const TreePifState& after) {
    ghost.on_apply(p, a, before, after, proto);
  });
  auto r = sim.run_until(
      *sim::make_daemon(sim::DaemonKind::kSynchronous),
      [&](const auto&) { return ghost.cycles_completed() >= 2; },
      sim::RunLimits{.max_steps = 500});
  ASSERT_EQ(r.reason, sim::StopReason::kPredicate);
  EXPECT_EQ(ghost.cycles_ok(), 2u);
}

TEST(TreePif, CleanCyclesUnderEveryDaemon) {
  const auto g = graph::make_grid(3, 3);
  for (sim::DaemonKind kind : sim::standard_daemon_kinds()) {
    analysis::RunConfig rc;
    rc.daemon = kind;
    rc.seed = 17;
    const auto result = analysis::measure_tree_pif(g, rc);
    ASSERT_TRUE(result.ok) << sim::daemon_kind_name(kind);
    EXPECT_GT(result.rounds_per_cycle, 0u);
  }
}

TEST(TreePif, SteadyStateCycleCostIsLinearInHeight) {
  const auto g = graph::make_path(12);  // BFS tree = the path, height 11
  analysis::RunConfig rc;
  rc.daemon = sim::DaemonKind::kSynchronous;
  const auto result = analysis::measure_tree_pif(g, rc);
  ASSERT_TRUE(result.ok);
  // Three phase sweeps of a height-11 tree: ~3h rounds, certainly <= 4h+8.
  EXPECT_LE(result.rounds_per_cycle, 4u * 11u + 8u);
  EXPECT_GE(result.rounds_per_cycle, 11u);
}

TEST(TreePif, FirstCycleCorrectFromCorruptedStarts) {
  // The three-phase tree PIF with the children-all-C join guard is
  // snap-stabilizing *given a correct pre-constructed spanning tree* —
  // consistent with the tree-network results the paper cites ([7, 9]).
  // A fresh broadcast never crosses an undigested stale region (a parent
  // can only join once its children are clean), so contaminated subtrees
  // drain and rejoin before the feedback can close.  Verify statistically.
  const auto g = graph::make_binary_tree(15);
  int completed = 0;
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    analysis::RunConfig rc;
    rc.daemon = sim::DaemonKind::kDistributedRandom;
    rc.seed = seed;
    const auto result = analysis::measure_tree_pif(g, rc);
    if (result.ok) {
      ++completed;
      EXPECT_TRUE(result.first_cycle_ok) << "seed " << seed;
    }
  }
  ASSERT_GT(completed, 30);
}

TEST(TreePif, ExhaustiveSnapOnTinyTrees) {
  // Brute-force analogue of the PIF model check: from EVERY phase
  // configuration of a 4-vertex path tree, under every daemon subset
  // choice, each root-initiated cycle delivers to all and no deadlock
  // exists.  State: 3^4 phases x ghost.
  const auto g = graph::make_path(4);
  const auto tree = graph::bfs_tree(g, 0);
  TreePifProtocol proto(g, 0, tree.parent);
  using Cfg = sim::Configuration<TreePifState>;

  // Packed state: phases (2 bits x 4) | active << 16 | received << 17 (3
  // bits, sticky "got the current message") | holds << 20 (3 bits,
  // "currently holds the current message" — distinguishes a receiver that
  // later re-joined through a stale parent).
  auto pack = [](const Cfg& cfg, bool active, std::uint8_t received,
                 std::uint8_t holds) {
    std::uint32_t key = 0;
    for (sim::ProcessorId p = 0; p < 4; ++p) {
      key |= static_cast<std::uint32_t>(cfg.state(p).pif) << (2 * p);
    }
    key |= static_cast<std::uint32_t>(active) << 16;
    key |= static_cast<std::uint32_t>(received) << 17;
    key |= static_cast<std::uint32_t>(holds) << 20;
    return key;
  };

  std::set<std::uint32_t> visited;
  std::vector<std::uint32_t> queue;
  Cfg c(g, proto.initial_state(0));
  auto unpack = [&](std::uint32_t key, Cfg& cfg, bool& active,
                    std::uint8_t& received, std::uint8_t& holds) {
    for (sim::ProcessorId p = 0; p < 4; ++p) {
      TreePifState s;
      s.pif = static_cast<TreePhase>((key >> (2 * p)) & 3u);
      cfg.state(p) = s;
    }
    active = ((key >> 16) & 1u) != 0;
    received = static_cast<std::uint8_t>((key >> 17) & 7u);
    holds = static_cast<std::uint8_t>((key >> 20) & 7u);
  };

  // Seed all 81 phase configurations.
  for (std::uint32_t mask = 0; mask < 81; ++mask) {
    std::uint32_t m = mask;
    for (sim::ProcessorId p = 0; p < 4; ++p) {
      TreePifState s;
      s.pif = static_cast<TreePhase>(m % 3);
      m /= 3;
      c.state(p) = s;
    }
    const auto key = pack(c, false, 0, 0);
    if (visited.insert(key).second) {
      queue.push_back(key);
    }
  }

  std::uint64_t closures = 0, violations = 0, deadlocks = 0;
  while (!queue.empty()) {
    const auto key = queue.back();
    queue.pop_back();
    bool active;
    std::uint8_t received, holds;
    unpack(key, c, active, received, holds);
    std::vector<std::pair<sim::ProcessorId, sim::ActionId>> enabled;
    for (sim::ProcessorId p = 0; p < 4; ++p) {
      for (sim::ActionId a = 0; a < proto.num_actions(); ++a) {
        if (proto.enabled(c, p, a)) {
          enabled.emplace_back(p, a);
        }
      }
    }
    if (enabled.empty()) {
      ++deadlocks;
      continue;
    }
    for (std::uint32_t subset = 1; subset < (1u << enabled.size()); ++subset) {
      Cfg next = c;
      bool next_active = active;
      std::uint8_t next_received = received;
      std::uint8_t next_holds = holds;
      bool closed = false, closed_ok = true;
      for (std::size_t i = 0; i < enabled.size(); ++i) {
        if (!(subset & (1u << i))) {
          continue;
        }
        const auto [p, a] = enabled[i];
        next.state(p) = proto.apply(c, p, a);
        if (p == 0 && a == kTreeB) {
          next_active = true;
          next_received = 0;
          next_holds = 0;
        } else if (p == 0 && a == kTreeF && active) {
          closed = true;
          closed_ok = received == 7;  // all three non-root bits
          next_active = false;
          next_received = 0;
          next_holds = 0;
        } else if (p != 0 && a == kTreeB && active) {
          const sim::ProcessorId parent = proto.parent_of(p);
          const std::uint8_t bit = static_cast<std::uint8_t>(1u << (p - 1));
          const bool parent_has =
              parent == 0 ? active : ((holds >> (parent - 1)) & 1u) != 0;
          if (parent_has) {
            next_received |= bit;
            next_holds |= bit;
          } else {
            next_holds = static_cast<std::uint8_t>(next_holds & ~bit);
          }
        }
      }
      if (closed) {
        ++closures;
        violations += closed_ok ? 0 : 1;
      }
      const auto nkey = pack(next, next_active, next_received, next_holds);
      if (visited.insert(nkey).second) {
        queue.push_back(nkey);
      }
    }
  }
  EXPECT_GT(closures, 0u);
  EXPECT_EQ(violations, 0u);
  EXPECT_EQ(deadlocks, 0u);
}

TEST(TreePif, RandomStatesStayInDomain) {
  const auto g = graph::make_path(3);
  const auto tree = graph::bfs_tree(g, 0);
  TreePifProtocol proto(g, 0, tree.parent);
  util::Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    const TreePifState s = proto.random_state(0, rng);
    EXPECT_TRUE(s.pif == TreePhase::kB || s.pif == TreePhase::kF ||
                s.pif == TreePhase::kC);
  }
}

}  // namespace
}  // namespace snappif::baselines
