// Unit tests for every guard and statement of Algorithms 1 (root) and 2
// (other processors), plus the mutual-exclusivity structure: correction
// guards fire exactly when ¬Normal, normal-phase guards conjoin Normal.
#include <gtest/gtest.h>

#include "fixtures.hpp"
#include "graph/generators.hpp"

namespace snappif::pif {
namespace {

using testfix::clean_config;
using testfix::root_st;
using testfix::st;

class GuardTest : public ::testing::Test {
 protected:
  GuardTest()
      : g_(graph::make_path(3)),
        protocol_(g_, Params::for_graph(g_)),
        c_(clean_config(g_, protocol_)) {}

  graph::Graph g_;
  PifProtocol protocol_;
  sim::Configuration<State> c_;
};

// --- Algorithm 1 (root) ------------------------------------------------------

TEST_F(GuardTest, RootBroadcastNeedsAllNeighborsClean) {
  EXPECT_TRUE(protocol_.broadcast_guard(c_, 0));
  c_.state(1) = st(Phase::kB, false, 1, 1, 0);
  EXPECT_FALSE(protocol_.broadcast_guard(c_, 0));
  c_.state(1) = st(Phase::kF, false, 1, 1, 0);
  EXPECT_FALSE(protocol_.broadcast_guard(c_, 0));
}

TEST_F(GuardTest, RootBActionStatement) {
  const State next = protocol_.apply(c_, 0, kBAction);
  EXPECT_EQ(next.pif, Phase::kB);
  EXPECT_EQ(next.count, 1u);
  EXPECT_FALSE(next.fok);  // N = 3 > 1
  EXPECT_EQ(next.level, 0u);
  EXPECT_EQ(next.parent, kNoParent);
}

TEST_F(GuardTest, RootBActionSoloNetworkRaisesFokImmediately) {
  const graph::Graph solo(1);
  PifProtocol proto(solo, Params::for_graph(solo));
  auto c = clean_config(solo, proto);
  const State next = proto.apply(c, 0, kBAction);
  EXPECT_TRUE(next.fok);  // Fok := (1 = N) with N = 1
}

TEST_F(GuardTest, RootFeedbackGuard) {
  // Root B + Fok + Count = N, neighbors out of B.
  c_.state(0) = root_st(Phase::kB, true, 3);
  c_.state(1) = st(Phase::kF, false, 1, 1, 0);
  EXPECT_TRUE(protocol_.feedback_guard(c_, 0));
  // A broadcasting neighbor blocks.
  c_.state(1) = st(Phase::kB, true, 1, 1, 0);
  EXPECT_FALSE(protocol_.feedback_guard(c_, 0));
  // Without Fok no feedback.
  c_.state(0) = root_st(Phase::kB, false, 2);
  c_.state(1) = st(Phase::kF, false, 1, 1, 0);
  EXPECT_FALSE(protocol_.feedback_guard(c_, 0));
}

TEST_F(GuardTest, RootCleaningGuard) {
  c_.state(0) = root_st(Phase::kF, true, 3);
  EXPECT_TRUE(protocol_.cleaning_guard(c_, 0));
  c_.state(1) = st(Phase::kF, false, 1, 1, 0);
  EXPECT_FALSE(protocol_.cleaning_guard(c_, 0));
}

TEST_F(GuardTest, RootNewCountAndStatement) {
  c_.state(0) = root_st(Phase::kB, false, 1);
  c_.state(1) = st(Phase::kB, false, 2, 1, 0);
  c_.state(2) = st(Phase::kB, false, 1, 2, 1);
  // Sum_r = 1 + 2 = 3 > Count_r = 1.
  EXPECT_TRUE(protocol_.new_count_guard(c_, 0));
  const State next = protocol_.apply(c_, 0, kCountAction);
  EXPECT_EQ(next.count, 3u);
  EXPECT_TRUE(next.fok);  // Sum = N = 3
}

TEST_F(GuardTest, RootCountActionBelowNLeavesFokDown) {
  c_.state(0) = root_st(Phase::kB, false, 1);
  c_.state(1) = st(Phase::kB, false, 1, 1, 0);
  // Sum_r = 2 < N.
  const State next = protocol_.apply(c_, 0, kCountAction);
  EXPECT_EQ(next.count, 2u);
  EXPECT_FALSE(next.fok);
}

TEST_F(GuardTest, RootBCorrectionOnAbnormal) {
  c_.state(0) = root_st(Phase::kB, true, 2);  // Fok with Count != N
  EXPECT_TRUE(protocol_.b_correction_guard(c_, 0));
  const State next = protocol_.apply(c_, 0, kBCorrection);
  EXPECT_EQ(next.pif, Phase::kC);  // root correction goes straight to C
}

TEST_F(GuardTest, RootHasNoFokOrFCorrectionActions) {
  c_.state(0) = root_st(Phase::kB, false, 1);
  EXPECT_FALSE(protocol_.change_fok_guard(c_, 0));
  c_.state(0) = root_st(Phase::kF, false, 1);
  EXPECT_FALSE(protocol_.f_correction_guard(c_, 0));
}

// --- Algorithm 2 (non-root) --------------------------------------------------

TEST_F(GuardTest, NonRootBroadcastGuard) {
  c_.state(0) = root_st(Phase::kB, false, 1);
  EXPECT_TRUE(protocol_.broadcast_guard(c_, 1));
  // Not in C: no.
  c_.state(1) = st(Phase::kB, false, 1, 1, 0);
  EXPECT_FALSE(protocol_.broadcast_guard(c_, 1));
  // Blocked by a participating neighbor still pointing at it.
  c_.state(1) = st(Phase::kC, false, 1, 1, 0);
  c_.state(2) = st(Phase::kB, false, 1, 2, 1);
  EXPECT_FALSE(protocol_.broadcast_guard(c_, 1));
  // Empty Potential: no.
  c_.state(0) = root_st(Phase::kC, false, 1);
  c_.state(2) = st(Phase::kC, false, 1, 2, 1);
  EXPECT_FALSE(protocol_.broadcast_guard(c_, 1));
}

TEST_F(GuardTest, NonRootBActionStatement) {
  c_.state(0) = root_st(Phase::kB, false, 1);
  const State next = protocol_.apply(c_, 1, kBAction);
  EXPECT_EQ(next.parent, 0u);
  EXPECT_EQ(next.level, 1u);
  EXPECT_EQ(next.count, 1u);
  EXPECT_FALSE(next.fok);
  EXPECT_EQ(next.pif, Phase::kB);
}

TEST_F(GuardTest, ChangeFokGuardAndStatement) {
  c_.state(0) = root_st(Phase::kB, true, 3);
  c_.state(1) = st(Phase::kB, false, 2, 1, 0);
  c_.state(2) = st(Phase::kB, false, 1, 2, 1);
  EXPECT_TRUE(protocol_.change_fok_guard(c_, 1));
  const State next = protocol_.apply(c_, 1, kFokAction);
  EXPECT_TRUE(next.fok);
  // Equal flags: not enabled.
  c_.state(1) = st(Phase::kB, true, 2, 1, 0);
  EXPECT_FALSE(protocol_.change_fok_guard(c_, 1));
}

TEST_F(GuardTest, ChangeFokRequiresNormal) {
  c_.state(0) = root_st(Phase::kB, true, 3);
  c_.state(1) = st(Phase::kB, false, 2, 1, 0);
  c_.state(2) = st(Phase::kB, false, 1, 3, 1);  // wrong level: 2 abnormal
  // Processor 1's count 2 > Sum 1 (child 2 has wrong level): 1 abnormal too.
  EXPECT_FALSE(protocol_.change_fok_guard(c_, 1));
}

TEST_F(GuardTest, NonRootFeedbackGuard) {
  c_.state(0) = root_st(Phase::kB, true, 3);
  c_.state(1) = st(Phase::kB, true, 2, 1, 0);
  c_.state(2) = st(Phase::kF, false, 1, 2, 1);
  EXPECT_TRUE(protocol_.feedback_guard(c_, 1));
  // Child still broadcasting: BLeaf fails.
  c_.state(2) = st(Phase::kB, true, 1, 2, 1);
  EXPECT_FALSE(protocol_.feedback_guard(c_, 1));
  // No Fok: no feedback.
  c_.state(1) = st(Phase::kB, false, 2, 1, 0);
  c_.state(2) = st(Phase::kF, false, 1, 2, 1);
  EXPECT_FALSE(protocol_.feedback_guard(c_, 1));
}

TEST_F(GuardTest, NonRootCleaningGuard) {
  // 2 (leaf of the tree) in F, its parent 1 in F, root already F.
  c_.state(0) = root_st(Phase::kF, true, 3);
  c_.state(1) = st(Phase::kF, true, 2, 1, 0);
  c_.state(2) = st(Phase::kF, true, 1, 2, 1);
  EXPECT_TRUE(protocol_.cleaning_guard(c_, 2));
  // Processor 1 still has a participating child pointing at it: not a Leaf.
  EXPECT_FALSE(protocol_.cleaning_guard(c_, 1));
  // A broadcasting neighbor (any) blocks cleaning.
  c_.state(1) = st(Phase::kB, true, 2, 1, 0);
  EXPECT_FALSE(protocol_.cleaning_guard(c_, 2));
}

TEST_F(GuardTest, NonRootNewCount) {
  c_.state(0) = root_st(Phase::kB, false, 1);
  c_.state(1) = st(Phase::kB, false, 1, 1, 0);
  c_.state(2) = st(Phase::kB, false, 1, 2, 1);
  EXPECT_TRUE(protocol_.new_count_guard(c_, 1));  // Sum = 2 > Count = 1
  const State next = protocol_.apply(c_, 1, kCountAction);
  EXPECT_EQ(next.count, 2u);
  EXPECT_FALSE(next.fok);  // non-root Count-action never touches Fok
}

TEST_F(GuardTest, CountActionSaturatesAtDomainCeiling) {
  // N' = 3; craft Sum = 4 via an (abnormal) inflated child.
  c_.state(0) = root_st(Phase::kB, false, 1);
  c_.state(1) = st(Phase::kB, false, 1, 1, 0);
  c_.state(2) = st(Phase::kB, false, 3, 2, 1);
  const State next = protocol_.apply(c_, 1, kCountAction);
  EXPECT_EQ(next.count, 3u);  // min(1 + 3, N'=3)... saturated
}

TEST_F(GuardTest, NonRootCorrections) {
  // Abnormal B -> F.
  c_.state(1) = st(Phase::kB, false, 1, 1, 0);  // parent is C: GoodPif fails
  EXPECT_TRUE(protocol_.b_correction_guard(c_, 1));
  EXPECT_FALSE(protocol_.f_correction_guard(c_, 1));
  EXPECT_EQ(protocol_.apply(c_, 1, kBCorrection).pif, Phase::kF);
  // Abnormal F -> C.
  c_.state(1) = st(Phase::kF, false, 1, 1, 0);  // parent is C: GoodPif fails
  EXPECT_TRUE(protocol_.f_correction_guard(c_, 1));
  EXPECT_FALSE(protocol_.b_correction_guard(c_, 1));
  EXPECT_EQ(protocol_.apply(c_, 1, kFCorrection).pif, Phase::kC);
}

// --- Structural exclusivity ---------------------------------------------------

TEST_F(GuardTest, CorrectionsExcludeNormalActionsEverywhere) {
  // Sweep random configurations; on each processor, if any correction guard
  // holds then no normal-phase guard may hold, and vice versa (B/Fok/F/C/
  // Count guards all conjoin Normal — except B-action and the root's
  // C-action whose guards are Normal-free but phase-disjoint from the
  // corrections).
  util::Rng rng(2024);
  for (int iter = 0; iter < 3000; ++iter) {
    for (sim::ProcessorId p = 0; p < g_.n(); ++p) {
      c_.state(p) = protocol_.random_state(p, rng);
    }
    for (sim::ProcessorId p = 0; p < g_.n(); ++p) {
      const bool correcting = protocol_.b_correction_guard(c_, p) ||
                              protocol_.f_correction_guard(c_, p);
      const bool normal_acting =
          protocol_.change_fok_guard(c_, p) || protocol_.feedback_guard(c_, p) ||
          protocol_.new_count_guard(c_, p) ||
          (p != 0 && protocol_.cleaning_guard(c_, p));
      EXPECT_FALSE(correcting && normal_acting)
          << "processor " << p << " has overlapping correction/normal guards";
      // B-action needs phase C; corrections need phase B or F.
      EXPECT_FALSE(correcting && protocol_.broadcast_guard(c_, p));
    }
  }
}

TEST_F(GuardTest, AtMostCountAndFokOverlap) {
  // Among the normal-phase actions, only Count-action and Fok-action can be
  // simultaneously enabled (count still growing when the Fok wave arrives).
  util::Rng rng(77);
  bool saw_overlap = false;
  for (int iter = 0; iter < 5000; ++iter) {
    for (sim::ProcessorId p = 0; p < g_.n(); ++p) {
      c_.state(p) = protocol_.random_state(p, rng);
    }
    for (sim::ProcessorId p = 0; p < g_.n(); ++p) {
      int enabled = 0;
      enabled += protocol_.broadcast_guard(c_, p) ? 1 : 0;
      enabled += protocol_.change_fok_guard(c_, p) ? 1 : 0;
      enabled += protocol_.feedback_guard(c_, p) ? 1 : 0;
      enabled += protocol_.cleaning_guard(c_, p) ? 1 : 0;
      enabled += protocol_.new_count_guard(c_, p) ? 1 : 0;
      if (enabled == 2) {
        EXPECT_TRUE(protocol_.change_fok_guard(c_, p) &&
                    protocol_.new_count_guard(c_, p))
            << "unexpected pair at processor " << p;
        saw_overlap = true;
      } else {
        EXPECT_LE(enabled, 1);
      }
    }
  }
  EXPECT_TRUE(saw_overlap);  // the Fok/Count overlap is actually reachable
}

TEST_F(GuardTest, EnabledDispatchMatchesGuards) {
  util::Rng rng(31337);
  for (int iter = 0; iter < 1000; ++iter) {
    for (sim::ProcessorId p = 0; p < g_.n(); ++p) {
      c_.state(p) = protocol_.random_state(p, rng);
    }
    for (sim::ProcessorId p = 0; p < g_.n(); ++p) {
      EXPECT_EQ(protocol_.enabled(c_, p, kBAction),
                protocol_.broadcast_guard(c_, p));
      EXPECT_EQ(protocol_.enabled(c_, p, kFokAction),
                protocol_.change_fok_guard(c_, p));
      EXPECT_EQ(protocol_.enabled(c_, p, kFAction),
                protocol_.feedback_guard(c_, p));
      EXPECT_EQ(protocol_.enabled(c_, p, kCAction),
                protocol_.cleaning_guard(c_, p));
      EXPECT_EQ(protocol_.enabled(c_, p, kCountAction),
                protocol_.new_count_guard(c_, p));
      EXPECT_EQ(protocol_.enabled(c_, p, kBCorrection),
                protocol_.b_correction_guard(c_, p));
      EXPECT_EQ(protocol_.enabled(c_, p, kFCorrection),
                protocol_.f_correction_guard(c_, p));
    }
  }
}

}  // namespace
}  // namespace snappif::pif
