// PifMetricsProbe: the registry- and event-backed telemetry layer must agree
// with the engine's own accounting and derive sane per-round quantities.
#include "pif/instrument.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "graph/generators.hpp"
#include "obs/json.hpp"
#include "pif/faults.hpp"
#include "pif/ghost.hpp"
#include "pif/protocol.hpp"
#include "sim/simulator.hpp"

namespace snappif::pif {
namespace {

struct Instrumented {
  graph::Graph g;
  PifProtocol protocol;
  sim::Simulator<PifProtocol> sim;
  obs::Registry registry;
  obs::EventLog events;
  PifMetricsProbe probe;

  explicit Instrumented(graph::Graph graph, std::uint64_t seed = 1)
      : g(std::move(graph)),
        protocol(g, Params::for_graph(g)),
        sim(protocol, g, seed),
        probe(protocol, registry, &events) {
    sim.add_probe(&probe);
  }
};

TEST(PifMetricsProbe, NormalCyclesProduceConsistentTelemetry) {
  Instrumented t(graph::make_cycle(8));
  sim::SynchronousDaemon daemon;
  while (t.probe.cycles_closed() < 3 && t.sim.step(daemon)) {
  }
  ASSERT_EQ(t.probe.cycles_closed(), 3u);

  // Action counters mirror the engine's own per-action totals exactly.
  for (sim::ActionId a = 0; a < kNumActions; ++a) {
    EXPECT_EQ(t.registry.counter(std::string("pif.action.") +
                                 std::string(action_label(a)))
                  .value(),
              t.sim.action_count(a))
        << action_label(a);
  }
  EXPECT_GT(t.registry.counter("pif.action.B-action").value(), 0u);
  EXPECT_GT(t.registry.counter("pif.action.F-action").value(), 0u);

  // Per-round phase occupancy partitions the network.
  ASSERT_FALSE(t.probe.round_samples().empty());
  for (const auto& s : t.probe.round_samples()) {
    EXPECT_EQ(s.in_b + s.in_f + s.in_c, t.g.n());
    EXPECT_LE(s.fok_raised, t.g.n());
    EXPECT_LE(s.count_root, t.g.n());
  }
  EXPECT_EQ(t.probe.round_samples().size(), t.sim.rounds());
  EXPECT_EQ(t.registry.stats("pif.round.occupancy_b").count(), t.sim.rounds());

  // One cycle-length sample per closed cycle; the root's per-phase round
  // counters partition the completed rounds.
  EXPECT_EQ(t.registry.stats("pif.cycle_rounds").count(), 3u);
  EXPECT_EQ(t.registry.counter("pif.rounds_root_b").value() +
                t.registry.counter("pif.rounds_root_f").value() +
                t.registry.counter("pif.rounds_root_c").value(),
            t.sim.rounds());

  // From the normal starting configuration no correction ever fires.
  EXPECT_EQ(t.registry.counter("pif.corrections").value(), 0u);
}

TEST(PifMetricsProbe, CountingWaveReachesNBeforeCycleCloses) {
  Instrumented t(graph::make_path(6));
  sim::SynchronousDaemon daemon;
  while (t.probe.cycles_closed() < 1 && t.sim.step(daemon)) {
  }
  ASSERT_EQ(t.probe.cycles_closed(), 1u);
  // Count_r must hit N at some round: the root only authorizes feedback once
  // the counting wave has accounted for every processor (GoodCount gating).
  bool saw_full_count = false;
  for (const auto& s : t.probe.round_samples()) {
    saw_full_count = saw_full_count || s.count_root == t.g.n();
  }
  EXPECT_TRUE(saw_full_count);
  EXPECT_GE(t.registry.stats("pif.fok_wave_rounds").count(), 1u);
}

TEST(PifMetricsProbe, EmitsCycleAndPhaseEvents) {
  Instrumented t(graph::make_cycle(6));
  sim::SynchronousDaemon daemon;
  while (t.probe.cycles_closed() < 2 && t.sim.step(daemon)) {
  }
  std::size_t cycle_begins = 0;
  std::size_t cycle_ends = 0;
  std::size_t phase_counters = 0;
  for (const auto& e : t.events.events()) {
    if (e.name == "pif.cycle" && e.ph == 'B') {
      ++cycle_begins;
    }
    if (e.name == "pif.cycle" && e.ph == 'E') {
      ++cycle_ends;
    }
    if (e.name == "pif.phase" && e.ph == 'C') {
      ++phase_counters;
    }
  }
  EXPECT_GE(cycle_begins, 2u);
  EXPECT_EQ(cycle_ends, 2u);
  EXPECT_EQ(phase_counters, t.sim.rounds());

  // Both export formats stay well-formed with real run data.
  std::istringstream jsonl(t.events.render_jsonl());
  std::string line;
  std::size_t lines = 0;
  while (std::getline(jsonl, line)) {
    EXPECT_TRUE(obs::json_valid(line)) << line;
    ++lines;
  }
  EXPECT_EQ(lines, t.events.size());
  EXPECT_TRUE(obs::json_valid(t.events.render_chrome_trace()));
}

TEST(PifMetricsProbe, CorruptedRunCountsCorrectionsConsistently) {
  Instrumented t(graph::make_random_connected(12, 10, 5), 7);
  util::Rng rng(99);
  apply_corruption(t.sim, CorruptionKind::kAdversarialMix, rng);
  sim::SynchronousDaemon daemon;
  for (int i = 0; i < 2000 && t.probe.cycles_closed() < 1; ++i) {
    if (!t.sim.step(daemon)) {
      break;
    }
  }
  EXPECT_EQ(t.registry.counter("pif.corrections").value(),
            t.sim.action_count(kBCorrection) + t.sim.action_count(kFCorrection));
  EXPECT_EQ(t.registry.counter("pif.action.B-correction").value(),
            t.sim.action_count(kBCorrection));
  // Per-round correction/par-change accumulators sum to the run totals.
  std::uint64_t round_corrections = 0;
  std::uint64_t round_par_changes = 0;
  for (const auto& s : t.probe.round_samples()) {
    round_corrections += s.corrections;
    round_par_changes += s.par_changes;
  }
  EXPECT_LE(round_corrections, t.registry.counter("pif.corrections").value());
  EXPECT_LE(round_par_changes, t.registry.counter("pif.par_changes").value());
}

TEST(PifMetricsProbe, CoexistsWithGhostTrackerHook) {
  Instrumented t(graph::make_cycle(6), 3);
  GhostTracker tracker(t.g, t.protocol.root());
  attach(t.sim, tracker);
  sim::SynchronousDaemon daemon;
  while (tracker.cycles_completed() < 2 && t.sim.step(daemon)) {
  }
  EXPECT_EQ(tracker.cycles_completed(), 2u);
  EXPECT_EQ(t.probe.cycles_closed(), 2u);
  EXPECT_GT(t.registry.counter("pif.action.B-action").value(), 0u);
}

}  // namespace
}  // namespace snappif::pif
