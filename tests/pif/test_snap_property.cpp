// The headline property (Definition 1 + Specification 1): starting from ANY
// configuration, the first PIF cycle the root initiates satisfies [PIF1] and
// [PIF2].  Randomized adversarial sweep over topologies x corruption recipes
// x daemons x seeds.
#include <gtest/gtest.h>

#include "analysis/runners.hpp"
#include "graph/generators.hpp"
#include "pif/faults.hpp"

namespace snappif {
namespace {

using analysis::RunConfig;
using analysis::SnapResult;

struct SnapCase {
  std::string name;
  graph::Graph graph;
  sim::DaemonKind daemon;
  pif::CorruptionKind corruption;
};

class SnapSuite : public ::testing::TestWithParam<SnapCase> {};

TEST_P(SnapSuite, FirstCycleAlwaysCorrect) {
  const SnapCase& sc = GetParam();
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    RunConfig rc;
    rc.daemon = sc.daemon;
    rc.corruption = sc.corruption;
    rc.seed = seed * 0x9e37 + sc.graph.n();
    const SnapResult result = analysis::check_snap_first_cycle(sc.graph, rc);
    ASSERT_TRUE(result.cycle_completed)
        << sc.name << " seed=" << seed << ": first cycle never completed";
    EXPECT_FALSE(result.aborted)
        << sc.name << " seed=" << seed << ": root aborted an initiated cycle";
    EXPECT_TRUE(result.pif1)
        << sc.name << " seed=" << seed << ": a processor missed the message";
    EXPECT_TRUE(result.pif2)
        << sc.name << " seed=" << seed << ": an acknowledgment was lost";
  }
}

std::vector<SnapCase> make_cases() {
  std::vector<SnapCase> cases;
  const auto suite = graph::standard_suite(10, /*seed=*/4242);
  for (const auto& named : suite) {
    for (pif::CorruptionKind corruption : pif::all_corruption_kinds()) {
      // Randomized daemons explore schedule diversity; keep one
      // deterministic daemon for reproducibility.
      for (sim::DaemonKind daemon :
           {sim::DaemonKind::kDistributedRandom, sim::DaemonKind::kSynchronous,
            sim::DaemonKind::kCentralRandom}) {
        cases.push_back({named.name + "_" +
                             std::string(pif::corruption_name(corruption)) +
                             "_" + std::string(sim::daemon_kind_name(daemon)),
                         named.graph, daemon, corruption});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Adversarial, SnapSuite, ::testing::ValuesIn(make_cases()),
                         [](const ::testing::TestParamInfo<SnapCase>& info) {
                           std::string name = info.param.name;
                           for (char& ch : name) {
                             if (ch == '-') {
                               ch = '_';
                             }
                           }
                           return name;
                         });

// Random-action-policy variant: when an arbitrary initial configuration
// enables several actions at one processor, the adversary picks.  Randomize
// that choice too.
TEST(SnapRandomPolicy, FirstCycleCorrectUnderRandomActionChoice) {
  const auto suite = graph::standard_suite(8, 7);
  for (const auto& named : suite) {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      RunConfig rc;
      rc.daemon = sim::DaemonKind::kDistributedRandom;
      rc.corruption = pif::CorruptionKind::kAdversarialMix;
      rc.policy = sim::ActionPolicy::kRandomEnabled;
      rc.seed = seed;
      const SnapResult result = analysis::check_snap_first_cycle(named.graph, rc);
      ASSERT_TRUE(result.cycle_completed) << named.name << " seed=" << seed;
      EXPECT_TRUE(result.ok()) << named.name << " seed=" << seed;
    }
  }
}

}  // namespace
}  // namespace snappif
