// Topology families outside the standard suite: torus, hypercube, wheel,
// caterpillar, complete bipartite — denser / more symmetric / chord-rich
// shapes, full property bundle on each.
#include <gtest/gtest.h>

#include "analysis/runners.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "pif/faults.hpp"

namespace snappif::pif {
namespace {

using analysis::RunConfig;

std::vector<graph::NamedGraph> extra_suite() {
  std::vector<graph::NamedGraph> suite;
  suite.push_back({"torus3x4", graph::make_torus(3, 4)});
  suite.push_back({"hypercube4", graph::make_hypercube(4)});
  suite.push_back({"wheel12", graph::make_wheel(12)});
  suite.push_back({"caterpillar", graph::make_caterpillar(5, 2)});
  suite.push_back({"k4_5", graph::make_complete_bipartite(4, 5)});
  return suite;
}

class ExtraTopology : public ::testing::TestWithParam<graph::NamedGraph> {};

TEST_P(ExtraTopology, CyclesWithinBounds) {
  const auto& named = GetParam();
  for (sim::DaemonKind daemon :
       {sim::DaemonKind::kSynchronous, sim::DaemonKind::kDistributedRandom}) {
    RunConfig rc;
    rc.daemon = daemon;
    rc.seed = 31;
    const auto results = analysis::run_cycles_from_sbn(named.graph, rc, 3);
    ASSERT_EQ(results.size(), 3u) << named.name;
    for (const auto& r : results) {
      EXPECT_TRUE(r.ok) << named.name;
      EXPECT_TRUE(r.chordless) << named.name;
      EXPECT_LE(r.rounds, 5u * r.height + 5) << named.name;
    }
  }
}

TEST_P(ExtraTopology, SynchronousHeightIsEccentricity) {
  const auto& named = GetParam();
  RunConfig rc;
  rc.daemon = sim::DaemonKind::kSynchronous;
  const auto r = analysis::run_cycle_from_sbn(named.graph, rc);
  ASSERT_TRUE(r.ok) << named.name;
  EXPECT_EQ(r.height, graph::eccentricity(named.graph, 0)) << named.name;
}

TEST_P(ExtraTopology, SnapFromAdversarialStarts) {
  const auto& named = GetParam();
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    RunConfig rc;
    rc.corruption = CorruptionKind::kAdversarialMix;
    rc.seed = seed * 3 + 1;
    const auto r = analysis::check_snap_first_cycle(named.graph, rc);
    ASSERT_TRUE(r.cycle_completed) << named.name << " seed " << seed;
    EXPECT_TRUE(r.ok()) << named.name << " seed " << seed;
  }
}

TEST_P(ExtraTopology, StabilizationBounds) {
  const auto& named = GetParam();
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    RunConfig rc;
    rc.corruption = CorruptionKind::kFakeTree;
    rc.seed = seed * 11;
    const auto r = analysis::measure_stabilization(named.graph, rc);
    ASSERT_TRUE(r.ok) << named.name;
    EXPECT_LE(r.rounds_to_all_normal, 3u * r.l_max + 3) << named.name;
    EXPECT_LE(r.rounds_to_sbn, 9u * r.l_max + 8) << named.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Families, ExtraTopology,
                         ::testing::ValuesIn(extra_suite()),
                         [](const ::testing::TestParamInfo<graph::NamedGraph>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace snappif::pif
