// Exhaustive verification on tiny instances: these tests PROVE (by complete
// state-space exploration, all daemon choices included) that on the checked
// graphs the protocol
//   (a) has no terminal configuration anywhere in its state space, and
//   (b) satisfies the snap-stabilization specification: every root-initiated
//       cycle closes with [PIF1] and [PIF2], and is never aborted,
// starting from EVERY configuration.
//
// They also demonstrate why DESIGN.md's repairs are necessary: with the
// literal conference-text readings the same exploration finds violations.
#include <gtest/gtest.h>

#include "analysis/modelcheck.hpp"
#include "graph/generators.hpp"
#include "pif/protocol.hpp"

namespace snappif {
namespace {

using analysis::check_no_deadlock;
using analysis::exhaustive_snap_check;
using analysis::packed_state_bits;

TEST(ModelCheck, PackingFitsTinyInstances) {
  for (const auto& named : graph::tiny_suite()) {
    pif::PifProtocol protocol(named.graph, pif::Params::for_graph(named.graph));
    EXPECT_LE(packed_state_bits(named.graph, protocol), 64u) << named.name;
  }
}

TEST(ModelCheck, NoDeadlockAnywhere_Path2) {
  const auto g = graph::make_path(2);
  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  const auto report = check_no_deadlock(g, protocol);
  EXPECT_GT(report.configurations, 0u);
  EXPECT_EQ(report.deadlocks, 0u);
}

TEST(ModelCheck, NoDeadlockAnywhere_Path3) {
  const auto g = graph::make_path(3);
  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  const auto report = check_no_deadlock(g, protocol);
  EXPECT_EQ(report.configurations, 46656u);  // 18 * 72 * 36
  EXPECT_EQ(report.deadlocks, 0u);
}

TEST(ModelCheck, NoDeadlockAnywhere_Triangle) {
  const auto g = graph::make_cycle(3);
  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  const auto report = check_no_deadlock(g, protocol);
  EXPECT_EQ(report.deadlocks, 0u);
}

TEST(ModelCheck, NoDeadlockAnywhere_Path4AndStar4) {
  for (const auto& name : {std::string("path4"), std::string("star4")}) {
    const auto g = name == "path4" ? graph::make_path(4) : graph::make_star(4);
    pif::PifProtocol protocol(g, pif::Params::for_graph(g));
    const auto report = check_no_deadlock(g, protocol);
    EXPECT_EQ(report.deadlocks, 0u) << name;
  }
}

// DESIGN.md §2 item 2: with the *implication-only* root GoodFok repair
// (Fok_r => Count_r = N, without the reverse direction) the configuration
// {root: B, ¬Fok, Count=N} over a complete quiescent tree deadlocks.  Our
// equivalence repair classifies that root as abnormal, so B-correction is
// enabled.  This test pins the counterexample configuration.
TEST(ModelCheck, EquivalenceRepairKillsTheDeadlockWitness) {
  const auto g = graph::make_path(2);
  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  sim::Configuration<pif::State> c(g, protocol.initial_state(0));
  // root 0: B, ¬Fok, Count = N = 2;  processor 1: B, ¬Fok, Count=1, L=1,
  // Par=0 — a completed, quiet broadcast tree with the Fok flag lost.
  pif::State root = c.state(0);
  root.pif = pif::Phase::kB;
  root.fok = false;
  root.count = 2;
  c.state(0) = root;
  pif::State other = c.state(1);
  other.pif = pif::Phase::kB;
  other.fok = false;
  other.count = 1;
  other.level = 1;
  other.parent = 0;
  c.state(1) = other;

  // Processor 1 is fully normal and has no enabled action.
  EXPECT_TRUE(protocol.normal(c, 1));
  for (sim::ActionId a = 0; a < protocol.num_actions(); ++a) {
    EXPECT_FALSE(protocol.enabled(c, 1, a)) << pif::action_label(a);
  }
  // The equivalence makes the root abnormal => B-correction fires.
  EXPECT_FALSE(protocol.normal(c, 0));
  EXPECT_TRUE(protocol.enabled(c, 0, pif::kBCorrection));
}

TEST(ModelCheck, ExhaustiveSnap_Path2) {
  const auto g = graph::make_path(2);
  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  const auto report = exhaustive_snap_check(g, protocol);
  ASSERT_TRUE(report.complete);
  EXPECT_GT(report.cycle_closures, 0u);
  EXPECT_EQ(report.violations, 0u);
  EXPECT_EQ(report.aborts, 0u);
  EXPECT_EQ(report.deadlocks, 0u);
}

TEST(ModelCheck, ExhaustiveSnap_Path3) {
  const auto g = graph::make_path(3);
  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  const auto report = exhaustive_snap_check(g, protocol);
  ASSERT_TRUE(report.complete);
  EXPECT_GT(report.cycle_closures, 0u);
  EXPECT_EQ(report.violations, 0u);
  EXPECT_EQ(report.aborts, 0u);
  EXPECT_EQ(report.deadlocks, 0u);
}

TEST(ModelCheck, ExhaustiveSnap_Triangle) {
  const auto g = graph::make_cycle(3);
  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  const auto report = exhaustive_snap_check(g, protocol);
  ASSERT_TRUE(report.complete);
  EXPECT_GT(report.cycle_closures, 0u);
  EXPECT_EQ(report.violations, 0u);
  EXPECT_EQ(report.aborts, 0u);
  EXPECT_EQ(report.deadlocks, 0u);
}

// Negative (DESIGN.md §2 item 4): with the printed ¬Fok_q conjunct kept in
// Pre_Potential, the 3-processor path deadlocks — a C-state processor with a
// stale Par pointer into a Fok'd tree can neither join nor unblock its
// "parent"'s BLeaf.
TEST(ModelCheck, LiteralPrePotentialDeadlocks) {
  const auto g = graph::make_path(3);
  pif::Params params = pif::Params::for_graph(g);
  params.literal_prepotential_fok = true;
  pif::PifProtocol protocol(g, params);
  const auto report = check_no_deadlock(g, protocol);
  EXPECT_EQ(report.deadlocks, 36u);  // the witness family
  // And pin the canonical witness: 0:{B,Fok,Cnt=3} 1:{B,Fok,Par=0,L=1}
  // 2:{C,Par=1}.
  sim::Configuration<pif::State> c(g, protocol.initial_state(0));
  c.state(0) = {pif::Phase::kB, true, 3, 0, pif::kNoParent};
  c.state(1) = {pif::Phase::kB, true, 1, 1, 0};
  c.state(2) = {pif::Phase::kC, false, 1, 1, 1};
  for (sim::ProcessorId p = 0; p < 3; ++p) {
    for (sim::ActionId a = 0; a < protocol.num_actions(); ++a) {
      EXPECT_FALSE(protocol.enabled(c, p, a))
          << "p=" << p << " " << pif::action_label(a);
    }
  }
  // The repaired algorithm un-sticks processor 2 via B-action.
  pif::PifProtocol repaired(g, pif::Params::for_graph(g));
  EXPECT_TRUE(repaired.enabled(c, 2, pif::kBAction));
}

// n = 4 instances: the full configuration space (~36M for path-4) is out of
// reach for the BFS, but the all-Normal slice — every state Theorem 1
// guarantees within 3*Lmax+3 rounds — is tractable and the snap property is
// proven exhaustively over it, all daemon choices included.
TEST(ModelCheck, ExhaustiveSnapFromNormalStarts_Path4) {
  const auto g = graph::make_path(4);
  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  const auto report =
      exhaustive_snap_check(g, protocol, 200'000'000, /*normal_starts_only=*/true);
  ASSERT_TRUE(report.complete);
  EXPECT_GT(report.cycle_closures, 0u);
  EXPECT_EQ(report.violations, 0u);
  EXPECT_EQ(report.aborts, 0u);
  EXPECT_EQ(report.deadlocks, 0u);
}

TEST(ModelCheck, ExhaustiveSnapFromNormalStarts_Star4) {
  const auto g = graph::make_star(4);
  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  const auto report =
      exhaustive_snap_check(g, protocol, 200'000'000, /*normal_starts_only=*/true);
  ASSERT_TRUE(report.complete);
  EXPECT_GT(report.cycle_closures, 0u);
  EXPECT_EQ(report.violations, 0u);
  EXPECT_EQ(report.aborts, 0u);
  EXPECT_EQ(report.deadlocks, 0u);
}

// Liveness: from EVERY initial configuration, the deterministic synchronous
// schedule completes a root-initiated PIF cycle within finitely many steps
// (no livelock under this weakly fair schedule).
TEST(ModelCheck, SynchronousLiveness_Path2) {
  const auto g = graph::make_path(2);
  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  const auto report = analysis::synchronous_liveness_check(g, protocol);
  ASSERT_TRUE(report.complete);
  EXPECT_EQ(report.stuck, 0u);
  EXPECT_GT(report.start_configs, 0u);
  EXPECT_GT(report.max_steps_to_closure, 0u);
}

TEST(ModelCheck, SynchronousLiveness_Path3) {
  const auto g = graph::make_path(3);
  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  const auto report = analysis::synchronous_liveness_check(g, protocol);
  ASSERT_TRUE(report.complete);
  EXPECT_EQ(report.start_configs, 46656u);
  EXPECT_EQ(report.stuck, 0u);
  // Rounds == steps under the synchronous daemon; the worst distance must
  // respect "recover (9Lmax+8) + one full cycle (5h+5, h <= 2)" ~ 41.
  EXPECT_LE(report.max_steps_to_closure, 9u * 2 + 8 + 5u * 2 + 5);
}

TEST(ModelCheck, SynchronousLiveness_Triangle) {
  const auto g = graph::make_cycle(3);
  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  const auto report = analysis::synchronous_liveness_check(g, protocol);
  ASSERT_TRUE(report.complete);
  EXPECT_EQ(report.stuck, 0u);
}

TEST(ModelCheck, SynchronousLivenessCatchesTheLiteralDeadlock) {
  const auto g = graph::make_path(3);
  pif::Params params = pif::Params::for_graph(g);
  params.literal_prepotential_fok = true;
  pif::PifProtocol protocol(g, params);
  const auto report = analysis::synchronous_liveness_check(g, protocol);
  ASSERT_TRUE(report.complete);
  EXPECT_GT(report.stuck, 0u);  // the 36 deadlock configurations never close
}

// E13 negatives: each safety guard is load-bearing — removing it lets the
// exhaustive check produce concrete snap violations on a tiny instance.
TEST(ModelCheck, AblatingBroadcastLeafBreaksSnap) {
  const auto g = graph::make_path(3);
  pif::Params params = pif::Params::for_graph(g);
  params.ablate_broadcast_leaf = true;
  pif::PifProtocol protocol(g, params);
  const auto report = exhaustive_snap_check(g, protocol);
  ASSERT_TRUE(report.complete);
  EXPECT_GT(report.violations + report.aborts, 0u);
}

TEST(ModelCheck, AblatingFeedbackBLeafBreaksSnap) {
  const auto g = graph::make_path(3);
  pif::Params params = pif::Params::for_graph(g);
  params.ablate_feedback_bleaf = true;
  pif::PifProtocol protocol(g, params);
  const auto report = exhaustive_snap_check(g, protocol);
  ASSERT_TRUE(report.complete);
  EXPECT_GT(report.violations, 0u);
}

TEST(ModelCheck, AblatingCountWaitBreaksSnap) {
  const auto g = graph::make_cycle(3);
  pif::Params params = pif::Params::for_graph(g);
  params.ablate_count_wait = true;
  pif::PifProtocol protocol(g, params);
  const auto report = exhaustive_snap_check(g, protocol);
  ASSERT_TRUE(report.complete);
  EXPECT_GT(report.violations, 0u);
}

// Negative: the literal conference-text root GoodFok (= on Sum) lets the
// root abort its own initiated broadcasts — the exhaustive check catches the
// specification abort.
TEST(ModelCheck, LiteralRootGoodFokAbortsCycles) {
  const auto g = graph::make_path(2);
  pif::Params params = pif::Params::for_graph(g);
  params.literal_root_goodfok = true;
  pif::PifProtocol protocol(g, params);
  const auto report = exhaustive_snap_check(g, protocol);
  ASSERT_TRUE(report.complete);
  EXPECT_GT(report.aborts + report.violations + report.deadlocks, 0u)
      << "the literal reading unexpectedly verified clean";
}

}  // namespace
}  // namespace snappif
