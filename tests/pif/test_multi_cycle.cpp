// Long-horizon behavior: the PIF *scheme* is an infinite repetition of PIF
// cycles (Specification 1).  Run many consecutive cycles and check
// steady-state invariants, determinism, and per-cycle consistency.
#include <gtest/gtest.h>

#include "analysis/runners.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "pif/checker.hpp"
#include "pif/instrument.hpp"
#include "sim/simulator.hpp"

namespace snappif::pif {
namespace {

using analysis::RunConfig;

TEST(MultiCycle, TwentyCyclesOnRing) {
  const auto g = graph::make_cycle(9);
  RunConfig rc;
  rc.daemon = sim::DaemonKind::kDistributedRandom;
  rc.seed = 2025;
  const auto results = analysis::run_cycles_from_sbn(g, rc, 20);
  ASSERT_EQ(results.size(), 20u);
  for (const auto& r : results) {
    EXPECT_TRUE(r.ok);
    EXPECT_LE(r.rounds, 5u * r.height + 5u);
  }
}

TEST(MultiCycle, HeightStableUnderSynchronousDaemon) {
  // Under the deterministic synchronous daemon every cycle builds the same
  // (BFS-like) tree, so heights repeat exactly.
  const auto g = graph::make_grid(4, 4);
  RunConfig rc;
  rc.daemon = sim::DaemonKind::kSynchronous;
  const auto results = analysis::run_cycles_from_sbn(g, rc, 5);
  ASSERT_EQ(results.size(), 5u);
  for (const auto& r : results) {
    EXPECT_EQ(r.height, results[0].height);
    EXPECT_EQ(r.rounds, results[0].rounds);
  }
}

TEST(MultiCycle, SynchronousHeightIsRootEccentricity) {
  // Synchronous broadcast joins every processor at BFS distance: the
  // constructed tree height equals the root's eccentricity.
  for (const auto& named : graph::standard_suite(12, 31)) {
    RunConfig rc;
    rc.daemon = sim::DaemonKind::kSynchronous;
    const auto result = analysis::run_cycle_from_sbn(named.graph, rc);
    ASSERT_TRUE(result.ok) << named.name;
    EXPECT_EQ(result.height, graph::eccentricity(named.graph, 0)) << named.name;
  }
}

TEST(MultiCycle, InvariantsHoldThroughoutExecution) {
  // Property 1 and the chordless-parent-path structure hold in *every*
  // configuration along multi-cycle runs.
  const auto g = graph::make_random_connected(8, 5, 5);
  PifProtocol protocol(g, Params::for_graph(g));
  sim::Simulator<PifProtocol> sim(protocol, g, 77);
  Checker checker(sim.protocol());
  auto daemon = sim::make_daemon(sim::DaemonKind::kDistributedRandom);
  for (int step = 0; step < 3000; ++step) {
    if (!sim.step(*daemon)) {
      break;
    }
    ASSERT_TRUE(checker.all_normal(sim.config())) << "step " << step;
    ASSERT_TRUE(checker.property1_holds(sim.config())) << "step " << step;
    bool applicable = false;
    ASSERT_TRUE(checker.property2_holds(sim.config(), &applicable))
        << "step " << step;
    ASSERT_TRUE(checker.parent_paths_chordless(sim.config())) << "step " << step;
  }
}

TEST(MultiCycle, RandomDaemonsProduceDifferentTreesAcrossCycles) {
  // With chords available and a randomized daemon, the dynamically built
  // tree is not fixed: heights vary across cycles (this is the "no
  // pre-constructed spanning tree" selling point).
  const auto g = graph::make_random_connected(14, 20, 8);
  RunConfig rc;
  rc.daemon = sim::DaemonKind::kCentralRandom;
  rc.seed = 99;
  const auto results = analysis::run_cycles_from_sbn(g, rc, 12);
  ASSERT_EQ(results.size(), 12u);
  std::set<std::uint32_t> heights;
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok);
    heights.insert(r.height);
  }
  EXPECT_GE(heights.size(), 2u) << "tree construction appears deterministic";
}

TEST(MultiCycle, StepsPerCycleScaleModestly) {
  // Work per cycle: every processor executes O(1) actions per phase, so a
  // cycle's step count under the central daemon is O(N * h)-ish; sanity-
  // check a generous linear-per-processor bound.
  const auto g = graph::make_path(16);
  RunConfig rc;
  rc.daemon = sim::DaemonKind::kCentralRandom;
  rc.seed = 3;
  const auto results = analysis::run_cycles_from_sbn(g, rc, 3);
  for (const auto& r : results) {
    ASSERT_TRUE(r.ok);
    // path of 16: h = 15; actions per processor per cycle: B, (Fok), F, C
    // plus Count-actions (at most one per child count change: <= h).
    EXPECT_LE(r.steps, 16u * (4u + 15u) * 4u);
  }
}

}  // namespace
}  // namespace snappif::pif
