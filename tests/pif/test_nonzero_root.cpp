// The initiator may be any processor (Section 2: "we assume that the PIF is
// initiated by a processor, called the root").  Everything must hold with
// r != 0, including on asymmetric topologies where the root's position
// changes h materially.
#include <gtest/gtest.h>

#include "analysis/runners.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "pif/checker.hpp"

namespace snappif::pif {
namespace {

using analysis::RunConfig;

TEST(NonZeroRoot, CycleFromEveryPossibleRoot) {
  const auto g = graph::make_lollipop(5, 5);
  for (sim::ProcessorId root = 0; root < g.n(); ++root) {
    RunConfig rc;
    rc.root = root;
    rc.daemon = sim::DaemonKind::kSynchronous;
    const auto r = analysis::run_cycle_from_sbn(g, rc);
    ASSERT_TRUE(r.ok) << "root " << root;
    EXPECT_TRUE(r.pif1) << "root " << root;
    EXPECT_TRUE(r.pif2) << "root " << root;
    EXPECT_EQ(r.height, graph::eccentricity(g, root)) << "root " << root;
    EXPECT_LE(r.rounds, 5u * r.height + 5u) << "root " << root;
  }
}

TEST(NonZeroRoot, SnapPropertyWithMiddleRoot) {
  const auto g = graph::make_path(9);
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    RunConfig rc;
    rc.root = 4;  // middle of the path: h = 4 instead of 8
    rc.corruption = CorruptionKind::kAdversarialMix;
    rc.seed = seed;
    const auto r = analysis::check_snap_first_cycle(g, rc);
    ASSERT_TRUE(r.cycle_completed) << "seed " << seed;
    EXPECT_TRUE(r.ok()) << "seed " << seed;
  }
}

TEST(NonZeroRoot, StabilizationBoundsHold) {
  const auto g = graph::make_binary_tree(15);
  for (sim::ProcessorId root : {sim::ProcessorId{7}, sim::ProcessorId{14}}) {
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      RunConfig rc;
      rc.root = root;
      rc.corruption = CorruptionKind::kAdversarialMix;
      rc.seed = seed * 5;
      const auto r = analysis::measure_stabilization(g, rc);
      ASSERT_TRUE(r.ok) << "root " << root << " seed " << seed;
      EXPECT_LE(r.rounds_to_all_normal, 3u * r.l_max + 3u);
      EXPECT_LE(r.rounds_to_sbn, 9u * r.l_max + 8u);
    }
  }
}

TEST(NonZeroRoot, RootPositionChangesTreeHeight) {
  // On a path, an end root builds a height-(N-1) tree; a middle root builds
  // height ceil((N-1)/2): the Theorem 4 cost halves.
  const auto g = graph::make_path(11);
  RunConfig end_rc;
  end_rc.daemon = sim::DaemonKind::kSynchronous;
  end_rc.root = 0;
  RunConfig mid_rc = end_rc;
  mid_rc.root = 5;
  const auto end_run = analysis::run_cycle_from_sbn(g, end_rc);
  const auto mid_run = analysis::run_cycle_from_sbn(g, mid_rc);
  ASSERT_TRUE(end_run.ok && mid_run.ok);
  EXPECT_EQ(end_run.height, 10u);
  EXPECT_EQ(mid_run.height, 5u);
  EXPECT_LT(mid_run.rounds, end_run.rounds);
}

TEST(NonZeroRoot, BaselinesHonorRootToo) {
  const auto g = graph::make_grid(3, 3);
  RunConfig rc;
  rc.root = 4;  // center of the grid
  rc.daemon = sim::DaemonKind::kSynchronous;
  const auto tree = analysis::measure_tree_pif(g, rc);
  EXPECT_TRUE(tree.ok);
  const auto self = analysis::check_selfstab_first_cycles(g, rc);
  EXPECT_TRUE(self.ok);
}

}  // namespace
}  // namespace snappif::pif
