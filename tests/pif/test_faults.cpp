// Tests for the structured corruption machinery itself (the fault injector
// must produce the shapes it promises) and for recovery from mid-run bursts.
#include <gtest/gtest.h>

#include "analysis/runners.hpp"
#include "graph/generators.hpp"
#include "pif/checker.hpp"
#include "pif/faults.hpp"
#include "pif/instrument.hpp"
#include "sim/faults.hpp"
#include "sim/simulator.hpp"

namespace snappif::pif {
namespace {

TEST(Faults, FakeTreeIsLocallyConsistentExceptSource) {
  const auto g = graph::make_grid(3, 3);
  PifProtocol protocol(g, Params::for_graph(g));
  sim::Simulator<PifProtocol> sim(protocol, g, 1);
  util::Rng rng(42);
  plant_fake_tree(sim, rng);
  Checker checker(sim.protocol());
  // At least one processor entered B...
  std::size_t in_b = 0;
  for (sim::ProcessorId p = 0; p < g.n(); ++p) {
    in_b += sim.config().state(p).pif == Phase::kB ? 1 : 0;
  }
  EXPECT_GE(in_b, 1u);
  // ...and the fake tree resists instant dissolution: the number of
  // abnormal processors is small compared to the planted region (typically
  // just the seed whose level disagrees with its pretend-parent).
  EXPECT_LE(checker.abnormal(sim.config()).size(), in_b);
}

TEST(Faults, StrayFokOnlyTouchesBroadcastPhase) {
  const auto g = graph::make_cycle(8);
  PifProtocol protocol(g, Params::for_graph(g));
  sim::Simulator<PifProtocol> sim(protocol, g, 2);
  util::Rng rng(43);
  plant_fake_tree(sim, rng);
  // Snapshot which processors are in B.
  std::vector<bool> was_b(g.n());
  for (sim::ProcessorId p = 0; p < g.n(); ++p) {
    was_b[p] = sim.config().state(p).pif == Phase::kB;
  }
  plant_stray_fok(sim, rng, 1.0);
  for (sim::ProcessorId p = 0; p < g.n(); ++p) {
    if (was_b[p]) {
      EXPECT_TRUE(sim.config().state(p).fok);
    } else {
      EXPECT_EQ(sim.config().state(p).pif != Phase::kB,
                !sim.config().state(p).fok || !was_b[p]);
    }
  }
}

TEST(Faults, InflateCountsSetsDomainCeiling) {
  const auto g = graph::make_path(6);
  PifProtocol protocol(g, Params::for_graph(g));
  sim::Simulator<PifProtocol> sim(protocol, g, 3);
  util::Rng rng(44);
  inflate_counts(sim, rng, 1.0);
  for (sim::ProcessorId p = 0; p < g.n(); ++p) {
    EXPECT_EQ(sim.config().state(p).count, g.n());
  }
}

TEST(Faults, EveryCorruptionKindIsApplicableAndRecoverable) {
  const auto g = graph::make_random_connected(10, 6, 77);
  for (CorruptionKind kind : all_corruption_kinds()) {
    PifProtocol protocol(g, Params::for_graph(g));
    sim::Simulator<PifProtocol> sim(protocol, g, 4);
    util::Rng rng(45);
    apply_corruption(sim, kind, rng);
    Checker checker(sim.protocol());
    auto daemon = sim::make_daemon(sim::DaemonKind::kDistributedRandom);
    auto r = sim.run_until(
        *daemon,
        [&](const sim::Configuration<State>& c) {
          return checker.classify(c).sbn;
        },
        sim::RunLimits{.max_steps = 200000});
    EXPECT_EQ(r.reason, sim::StopReason::kPredicate)
        << corruption_name(kind) << ": never recovered to SBN";
  }
}

TEST(Faults, MidRunBurstsDoNotBreakSubsequentCycles) {
  // Run cycles; every completed cycle, corrupt a random subset of
  // processors; the protocol must keep completing correct cycles whenever
  // the root re-initiates (snap-stabilization under repeated transient
  // faults).  Bursts can hit mid-cycle, so individual cycles may abort or
  // lose messages — but cycles STARTED after the last burst must be clean.
  const auto g = graph::make_grid(3, 4);
  PifProtocol protocol(g, Params::for_graph(g));
  sim::Simulator<PifProtocol> sim(protocol, g, 5);
  GhostTracker tracker(g, 0);
  attach(sim, tracker);
  auto daemon = sim::make_daemon(sim::DaemonKind::kDistributedRandom);
  util::Rng fault_rng(4711);

  for (int round = 0; round < 8; ++round) {
    sim::inject_burst(sim, 3, fault_rng);
    // Let the system settle to SBN (all clean), then run one tracked cycle.
    Checker checker(sim.protocol());
    auto settle = sim.run_until(
        *daemon,
        [&](const sim::Configuration<State>& c) {
          return checker.classify(c).sbn;
        },
        sim::RunLimits{.max_steps = 200000});
    ASSERT_EQ(settle.reason, sim::StopReason::kPredicate) << "round " << round;
    const std::uint64_t before = tracker.cycles_completed();
    auto cycle = sim.run_until(
        *daemon,
        [&](const sim::Configuration<State>&) {
          return tracker.cycles_completed() > before;
        },
        sim::RunLimits{.max_steps = 200000});
    ASSERT_EQ(cycle.reason, sim::StopReason::kPredicate) << "round " << round;
    EXPECT_TRUE(tracker.last_cycle().ok()) << "round " << round;
  }
}

TEST(Faults, InjectBurstCorruptsExactlyK) {
  const auto g = graph::make_complete(8);
  PifProtocol protocol(g, Params::for_graph(g));
  sim::Simulator<PifProtocol> sim(protocol, g, 6);
  // Drive into a mid-broadcast state first so corruption is visible.
  sim::SynchronousDaemon daemon;
  (void)sim.step(daemon);
  const auto before = sim.config();
  util::Rng rng(4242);
  sim::inject_burst(sim, 3, rng);
  int changed = 0;
  for (sim::ProcessorId p = 0; p < g.n(); ++p) {
    changed += (sim.config().state(p) == before.state(p)) ? 0 : 1;
  }
  // A random state can coincide with the old one; at most 3 changed.
  EXPECT_LE(changed, 3);
  EXPECT_GE(changed, 1);
}

TEST(Faults, EveryCorruptionKindStaysInsideVariableDomains) {
  // The theorems are stated over in-domain configurations: Count in [1, N'],
  // L_r = 0 and L_p in [1, Lmax] otherwise, Par_r = bottom and Par_p a
  // neighbor otherwise.  Every corruption recipe models a *transient fault
  // within the model*, so none may escape those domains — on any topology,
  // from any prior configuration, for any seed.
  const auto suite = graph::standard_suite(10, 99);
  for (const auto& [name, g] : suite) {
    PifProtocol protocol(g, Params::for_graph(g));
    const Params& params = protocol.params();
    for (const CorruptionKind kind : all_corruption_kinds()) {
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        sim::Simulator<PifProtocol> sim(protocol, g, seed);
        util::Rng rng(seed * 31 + static_cast<std::uint64_t>(kind));
        // Stack recipes: the second lands on an already-corrupted config.
        apply_corruption(sim, kind, rng);
        apply_corruption(sim, kind, rng);
        for (sim::ProcessorId p = 0; p < g.n(); ++p) {
          const State& s = sim.config().state(p);
          ASSERT_GE(s.count, 1u) << name << " " << corruption_name(kind);
          ASSERT_LE(s.count, params.n_upper)
              << name << " " << corruption_name(kind);
          if (p == params.root) {
            ASSERT_EQ(s.level, 0u) << name << " " << corruption_name(kind);
            ASSERT_EQ(s.parent, kNoParent)
                << name << " " << corruption_name(kind);
          } else {
            ASSERT_GE(s.level, 1u) << name << " " << corruption_name(kind);
            ASSERT_LE(s.level, params.l_max)
                << name << " " << corruption_name(kind);
            ASSERT_TRUE(g.has_edge(p, s.parent))
                << name << " " << corruption_name(kind) << " p=" << p
                << " parent=" << s.parent;
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace snappif::pif
