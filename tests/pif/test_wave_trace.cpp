// WaveTraceProbe: wave minting at the root's B-action, per-processor phase
// residency spans, correction bursts, the per-wave aggregates, and the
// probe-owned monotone clock that survives re-attachment.
#include "pif/wave_trace.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pif/faults.hpp"
#include "pif/ghost.hpp"
#include "pif/instrument.hpp"
#include "pif/protocol.hpp"
#include "sim/daemon.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace snappif::pif {
namespace {

using PifSim = sim::Simulator<PifProtocol>;

std::unique_ptr<PifSim> make_sim(const graph::Graph& g, std::uint64_t seed) {
  PifProtocol protocol(g, Params::for_graph(g, 0));
  auto sim = std::make_unique<PifSim>(protocol, g, seed);
  return sim;
}

void run_cycles(PifSim& sim, GhostTracker& tracker, std::uint64_t cycles) {
  auto daemon = sim::make_daemon(sim::DaemonKind::kDistributedRandom);
  const auto r = sim.run_until(
      *daemon,
      [&](const sim::Configuration<State>&) {
        return tracker.cycles_completed() >= cycles;
      },
      sim::RunLimits{.max_steps = 500'000});
  ASSERT_EQ(r.reason, sim::StopReason::kPredicate);
}

TEST(WaveTrace, CleanRunMintsOneWavePerCycle) {
  const auto g = graph::make_cycle(8);
  auto sim = make_sim(g, 11);
  obs::SpanCollector spans;
  obs::Registry registry;
  WaveTraceProbe wave(0, spans, &registry);
  sim->add_probe(&wave);
  GhostTracker tracker(g, 0);
  attach(*sim, tracker);

  run_cycles(*sim, tracker, 3);
  wave.finish();

  ASSERT_EQ(wave.waves().size(), 3u);
  std::uint64_t prev_end = 0;
  for (const WaveTraceProbe::WaveSample& w : wave.waves()) {
    EXPECT_TRUE(w.closed);
    EXPECT_GT(w.end_round, w.begin_round);
    EXPECT_GE(w.begin_round, prev_end);  // waves don't overlap
    prev_end = w.end_round;
    EXPECT_EQ(w.corrections, 0u);  // clean start: nothing to digest
    const obs::Span* s = spans.find(w.span);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->kind, obs::SpanKind::kWave);
    EXPECT_EQ(s->wave, w.span);
  }
  EXPECT_EQ(registry.counter("pif.wave.count").value(), 3u);
  EXPECT_EQ(registry.histogram("pif.wave.latency_rounds", 64, 4.0).total(),
            3u);
}

TEST(WaveTrace, PhaseSpansTrackEveryProcessor) {
  const auto g = graph::make_complete(5);
  auto sim = make_sim(g, 3);
  obs::SpanCollector spans;
  WaveTraceProbe wave(0, spans);
  sim->add_probe(&wave);
  GhostTracker tracker(g, 0);
  attach(*sim, tracker);
  run_cycles(*sim, tracker, 1);
  wave.finish();

  // Every processor passed through B and F during the cycle, so each tid
  // must own at least three phase spans (C, B, F residencies).
  for (std::uint32_t p = 0; p < 5; ++p) {
    std::size_t count = 0;
    for (const obs::Span& s : spans.spans()) {
      if (s.kind == obs::SpanKind::kPhase && s.tid == p) {
        ++count;
        EXPECT_GE(s.end, s.begin);
      }
    }
    EXPECT_GE(count, 3u) << "processor " << p;
  }
}

TEST(WaveTrace, CorruptedStartRecordsCorrectionBursts) {
  const auto g = graph::make_random_connected(10, 8, 5);
  auto sim = make_sim(g, 21);
  util::Rng rng(99);
  apply_corruption(*sim, CorruptionKind::kFakeTree, rng);

  obs::SpanCollector spans;
  obs::Registry registry;
  WaveTraceProbe wave(0, spans, &registry);
  sim->add_probe(&wave);
  GhostTracker tracker(g, 0);
  attach(*sim, tracker);
  run_cycles(*sim, tracker, 1);
  wave.finish();

  std::size_t bursts = 0;
  for (const obs::Span& s : spans.spans()) {
    bursts += s.kind == obs::SpanKind::kCorrectionBurst ? 1 : 0;
  }
  EXPECT_GT(bursts, 0u) << "fake-tree corruption must trigger corrections";
  EXPECT_GE(wave.ticks(), wave.rounds());
}

TEST(WaveTrace, ClockSurvivesReattachAcrossSimulators) {
  // The campaign engine re-attaches one probe instance to a rebuilt
  // simulator after link churn; its clock must keep counting forward.
  const auto g = graph::make_cycle(6);
  obs::SpanCollector spans;
  WaveTraceProbe wave(0, spans);

  auto sim1 = make_sim(g, 1);
  sim1->add_probe(&wave);
  GhostTracker t1(g, 0);
  attach(*sim1, t1);
  run_cycles(*sim1, t1, 1);
  const std::uint64_t ticks_after_first = wave.ticks();
  const std::uint64_t rounds_after_first = wave.rounds();
  EXPECT_GT(ticks_after_first, 0u);
  sim1->remove_probe(&wave);

  auto sim2 = make_sim(g, 2);
  sim2->add_probe(&wave);  // fresh engine counters, same probe clock
  GhostTracker t2(g, 0);
  attach(*sim2, t2);
  run_cycles(*sim2, t2, 1);
  wave.finish();

  EXPECT_GT(wave.ticks(), ticks_after_first);
  EXPECT_GT(wave.rounds(), rounds_after_first);
  // Span timestamps stay monotone: no span begins before a prior one ends
  // by more than the ring retains, and ids strictly increase.
  std::uint64_t last_begin = 0;
  for (const obs::Span& s : spans.spans()) {
    EXPECT_GE(s.begin, last_begin);
    last_begin = s.begin;
  }
}

TEST(WaveTrace, AbortedWaveStaysMarkedUnclosed) {
  // Cut a run off mid-wave: finish() closes the span but the sample keeps
  // closed == false, which is what the --waves table reports as ABORTED.
  const auto g = graph::make_cycle(6);
  auto sim = make_sim(g, 4);
  obs::SpanCollector spans;
  WaveTraceProbe wave(0, spans);
  sim->add_probe(&wave);
  GhostTracker tracker(g, 0);
  attach(*sim, tracker);

  auto daemon = sim::make_daemon(sim::DaemonKind::kDistributedRandom);
  (void)sim->run_until(
      *daemon,
      [&](const sim::Configuration<State>&) {
        return tracker.cycle_active();  // stop as soon as a wave opens
      },
      sim::RunLimits{.max_steps = 500'000});
  wave.finish();

  ASSERT_EQ(wave.waves().size(), 1u);
  EXPECT_FALSE(wave.waves().front().closed);
  const obs::Span* s = spans.find(wave.waves().front().span);
  ASSERT_NE(s, nullptr);
}

}  // namespace
}  // namespace snappif::pif
