// Spanning-tree construction as a PIF byproduct (Section 1 lists it among
// the applications): every cycle dynamically builds a spanning tree, fully
// assembled from the moment Fok_r rises; extract and validate it.
#include <gtest/gtest.h>

#include <set>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "pif/checker.hpp"
#include "pif/faults.hpp"
#include "pif/instrument.hpp"
#include "sim/simulator.hpp"

namespace snappif::pif {
namespace {

TEST(TreeExtraction, ValidSpanningTreeAtFokTimeEveryCycle) {
  const auto g = graph::make_random_connected(14, 12, 7);
  PifProtocol protocol(g, Params::for_graph(g));
  sim::Simulator<PifProtocol> sim(protocol, g, 3);
  Checker checker(sim.protocol());
  GhostTracker tracker(g, 0);
  attach(sim, tracker);
  auto daemon = sim::make_daemon(sim::DaemonKind::kDistributedRandom);

  std::set<std::vector<sim::ProcessorId>> trees;
  std::uint64_t fok_windows = 0;
  std::uint64_t last_extracted_msg = 0;
  while (tracker.cycles_completed() < 10 && sim.steps() < 200000) {
    ASSERT_TRUE(sim.step(*daemon));
    const State& root = sim.config().state(0);
    // Extract at the FIRST observation of Fok_r in each cycle — the moment
    // the tree is guaranteed complete (later it erodes as leaves clean).
    if (root.pif == Phase::kB && root.fok &&
        tracker.current_message() != last_extracted_msg) {
      last_extracted_msg = tracker.current_message();
      const auto tree = checker.extract_spanning_tree(sim.config());
      ASSERT_TRUE(tree.has_value()) << "Fok_r raised without a spanning tree";
      const auto height = graph::spanning_tree_height(g, 0, *tree);
      ASSERT_TRUE(height.has_value());
      EXPECT_LE(*height, g.n() - 1);
      trees.insert(*tree);
      ++fok_windows;
    }
  }
  EXPECT_GT(fok_windows, 0u);
  // With a randomized daemon and chords available, different cycles build
  // different trees (the "no fixed spanning tree" selling point).
  EXPECT_GE(trees.size(), 2u);
}

TEST(TreeExtraction, NulloptBeforeTreeSpans) {
  const auto g = graph::make_path(4);
  PifProtocol protocol(g, Params::for_graph(g));
  sim::Simulator<PifProtocol> sim(protocol, g, 5);
  Checker checker(sim.protocol());
  // Quiet configuration: no tree at all.
  EXPECT_FALSE(checker.extract_spanning_tree(sim.config()).has_value());
  // Mid-broadcast (only the root in B): still not spanning.
  sim::SynchronousDaemon daemon;
  ASSERT_TRUE(sim.step(daemon));
  EXPECT_FALSE(checker.extract_spanning_tree(sim.config()).has_value());
}

TEST(TreeExtraction, FirstTreeAfterCorruptionIsValid) {
  // Snap payoff for the spanning-tree application: the FIRST Fok window
  // after a fault already certifies a complete, valid tree.
  const auto g = graph::make_grid(4, 4);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    PifProtocol protocol(g, Params::for_graph(g));
    sim::Simulator<PifProtocol> sim(protocol, g, seed);
    Checker checker(sim.protocol());
    GhostTracker tracker(g, 0);
    attach(sim, tracker);
    util::Rng rng(seed * 19);
    apply_corruption(sim, CorruptionKind::kAdversarialMix, rng);
    auto daemon = sim::make_daemon(sim::DaemonKind::kDistributedRandom);

    bool saw_tree = false;
    while (tracker.cycles_completed() == 0 && sim.steps() < 400000) {
      ASSERT_TRUE(sim.step(*daemon));
      const State& root = sim.config().state(0);
      if (tracker.cycle_active() && root.pif == Phase::kB && root.fok &&
          !saw_tree) {
        const auto tree = checker.extract_spanning_tree(sim.config());
        ASSERT_TRUE(tree.has_value()) << "seed " << seed;
        EXPECT_TRUE(graph::spanning_tree_height(g, 0, *tree).has_value())
            << "seed " << seed;
        saw_tree = true;
      }
    }
    EXPECT_TRUE(saw_tree) << "seed " << seed;
  }
}

}  // namespace
}  // namespace snappif::pif
