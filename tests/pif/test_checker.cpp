// Unit tests for the Section 4.1 definitions (ParentPath, Tree/LegalTree,
// configuration classes) and the Section 4.2 invariants (Properties 1-2).
#include <gtest/gtest.h>

#include "fixtures.hpp"
#include "graph/generators.hpp"
#include "pif/checker.hpp"

namespace snappif::pif {
namespace {

using testfix::clean_config;
using testfix::root_st;
using testfix::st;

class CheckerTest : public ::testing::Test {
 protected:
  CheckerTest()
      : g_(graph::make_path(4)),  // 0(root) - 1 - 2 - 3
        protocol_(g_, Params::for_graph(g_)),
        checker_(protocol_),
        c_(clean_config(g_, protocol_)) {}

  void make_full_broadcast_chain() {
    c_.state(0) = root_st(Phase::kB, false, 1);
    c_.state(1) = st(Phase::kB, false, 1, 1, 0);
    c_.state(2) = st(Phase::kB, false, 1, 2, 1);
    c_.state(3) = st(Phase::kB, false, 1, 3, 2);
  }

  graph::Graph g_;
  PifProtocol protocol_;
  Checker checker_;
  sim::Configuration<State> c_;
};

TEST_F(CheckerTest, CleanConfigClassification) {
  const ConfigClass cls = checker_.classify(c_);
  EXPECT_TRUE(cls.normal);
  EXPECT_TRUE(cls.start_broadcast);
  EXPECT_TRUE(cls.sbn);
  EXPECT_FALSE(cls.broadcast);
  EXPECT_FALSE(cls.ebn);
  EXPECT_FALSE(cls.end_feedback);
  EXPECT_TRUE(checker_.all_c(c_));
  EXPECT_TRUE(checker_.all_normal(c_));
  EXPECT_TRUE(checker_.abnormal(c_).empty());
}

TEST_F(CheckerTest, EbnClassification) {
  make_full_broadcast_chain();
  const ConfigClass cls = checker_.classify(c_);
  EXPECT_TRUE(cls.normal);
  EXPECT_TRUE(cls.broadcast);
  EXPECT_TRUE(cls.ebn);
  EXPECT_FALSE(cls.sbn);
}

TEST_F(CheckerTest, EfClassification) {
  c_.state(0) = root_st(Phase::kF, true, 4);
  c_.state(1) = st(Phase::kF, true, 1, 1, 0);
  c_.state(2) = st(Phase::kF, true, 1, 2, 1);
  c_.state(3) = st(Phase::kF, true, 1, 3, 2);
  const ConfigClass cls = checker_.classify(c_);
  EXPECT_TRUE(cls.end_feedback);
  EXPECT_TRUE(cls.efn);
}

TEST_F(CheckerTest, ParentPathFollowsToRoot) {
  make_full_broadcast_chain();
  const auto path = checker_.parent_path(c_, 3);
  EXPECT_EQ(path, (std::vector<sim::ProcessorId>{3, 2, 1, 0}));
}

TEST_F(CheckerTest, ParentPathStopsAtAbnormal) {
  make_full_broadcast_chain();
  c_.state(1) = st(Phase::kB, false, 1, 3, 0);  // wrong level: abnormal
  // Processor 2 now has the wrong level w.r.t. 1?  L_2 = 2 but L_1 = 3:
  // GoodLevel(2) fails too; ParentPath(3) ends at 2 (first abnormal).
  const auto path = checker_.parent_path(c_, 3);
  EXPECT_EQ(path, (std::vector<sim::ProcessorId>{3, 2}));
}

TEST_F(CheckerTest, ParentPathEmptyForCState) {
  EXPECT_TRUE(checker_.parent_path(c_, 2).empty());
}

TEST_F(CheckerTest, LegalTreeMembership) {
  make_full_broadcast_chain();
  const auto legal = checker_.legal_tree(c_);
  for (sim::ProcessorId p = 0; p < 4; ++p) {
    EXPECT_TRUE(legal[p]) << p;
  }
  EXPECT_EQ(checker_.legal_tree_size(c_), 4u);
  EXPECT_EQ(checker_.legal_tree_height(c_), 3u);
}

TEST_F(CheckerTest, LegalTreeExcludesDetachedSuffix) {
  make_full_broadcast_chain();
  c_.state(2) = st(Phase::kB, false, 1, 3, 1);  // breaks GoodLevel(2)
  const auto legal = checker_.legal_tree(c_);
  EXPECT_TRUE(legal[0]);
  EXPECT_TRUE(legal[1]);
  EXPECT_FALSE(legal[2]);
  EXPECT_FALSE(legal[3]);  // its ParentPath ends at abnormal 2
  EXPECT_EQ(checker_.legal_tree_size(c_), 2u);
}

TEST_F(CheckerTest, LegalTreeEmptyWhenRootClean) {
  make_full_broadcast_chain();
  c_.state(0) = root_st(Phase::kC, false, 1);
  const auto legal = checker_.legal_tree(c_);
  EXPECT_FALSE(legal[0]);
  // 1's ParentPath reaches the root... but 1 itself is abnormal now
  // (GoodPif: parent C while 1 is B), so nothing is legal.
  EXPECT_FALSE(legal[1]);
}

TEST_F(CheckerTest, Property1HoldsOnBroadcastChain) {
  make_full_broadcast_chain();
  EXPECT_TRUE(checker_.property1_holds(c_));
}

TEST_F(CheckerTest, Property1ViolatedByFokInTree) {
  make_full_broadcast_chain();
  // Root ¬Fok but a legal member holds Fok: invariant broken.  (Such a
  // member is abnormal and drops out of the tree, so craft the minimal
  // violation through count instead: Count_p > Sum_p cannot be in the tree
  // either.  Use the count form.)
  c_.state(3) = st(Phase::kB, false, 1, 3, 2);
  c_.state(2) = st(Phase::kB, false, 3, 2, 1);  // Count 3 > Sum 2: abnormal
  // Property 1 quantifies over legal members only; 2 left the tree, so the
  // invariant still holds.
  EXPECT_TRUE(checker_.property1_holds(c_));
  EXPECT_FALSE(checker_.all_normal(c_));
}

TEST_F(CheckerTest, Property2HoldsOnNormalConfigs) {
  bool applicable = false;
  make_full_broadcast_chain();
  EXPECT_TRUE(checker_.property2_holds(c_, &applicable));
  EXPECT_TRUE(applicable);
}

TEST_F(CheckerTest, Property2NotApplicableWhenAbnormal) {
  make_full_broadcast_chain();
  c_.state(2) = st(Phase::kB, false, 1, 3, 1);
  bool applicable = true;
  EXPECT_TRUE(checker_.property2_holds(c_, &applicable));
  EXPECT_FALSE(applicable);
}

TEST_F(CheckerTest, GoodConfigurationDetectsBadHangerOn) {
  make_full_broadcast_chain();
  // Detach 3 by giving it an inconsistent level (abnormal, outside tree),
  // with its parent 2 in the tree and an inflated count: Def. 15 violated.
  c_.state(3) = st(Phase::kB, false, 4, 1, 2);
  EXPECT_FALSE(checker_.good_configuration(c_));
  // With a truthful count it is a good configuration again.
  c_.state(3) = st(Phase::kB, false, 1, 1, 2);
  EXPECT_TRUE(checker_.good_configuration(c_));
}

TEST_F(CheckerTest, ChordlessParentPaths) {
  make_full_broadcast_chain();
  EXPECT_TRUE(checker_.parent_paths_chordless(c_));
  // On a graph with a chord, a path through the chord is flagged.
  const auto g = graph::Graph::from_edges(3, {{0, 1}, {1, 2}, {0, 2}});
  PifProtocol proto(g, Params::for_graph(g));
  Checker checker(proto);
  auto c = clean_config(g, proto);
  c.state(0) = root_st(Phase::kB, false, 1);
  c.state(1) = st(Phase::kB, false, 1, 1, 0);
  c.state(2) = st(Phase::kB, false, 1, 2, 1);  // 0-1-2 but chord 0-2 exists
  EXPECT_FALSE(checker.parent_paths_chordless(c));
  c.state(2) = st(Phase::kB, false, 1, 1, 0);  // direct child of the root
  EXPECT_TRUE(checker.parent_paths_chordless(c));
}

TEST_F(CheckerTest, DescribeMentionsEveryProcessor) {
  const std::string out = checker_.describe(c_);
  EXPECT_NE(out.find("(root)"), std::string::npos);
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

}  // namespace
}  // namespace snappif::pif
