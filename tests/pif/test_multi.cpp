// Multi-initiator PIF: concurrent waves from several roots (Section 1's
// setting), built as the product of independent instances.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "pif/checker.hpp"
#include "pif/multi.hpp"
#include "sim/simulator.hpp"

namespace snappif::pif {
namespace {

using MultiSim = sim::Simulator<MultiPifProtocol>;

void attach_multi(MultiSim& sim, MultiGhost& ghost) {
  sim.set_apply_hook([&ghost](sim::ProcessorId p, sim::ActionId a,
                              const sim::Configuration<MultiState>&,
                              const MultiState& after) {
    ghost.on_apply(p, a, after);
  });
}

TEST(MultiPif, ActionIdCodec) {
  EXPECT_EQ(MultiPifProtocol::instance_of(0), 0u);
  EXPECT_EQ(MultiPifProtocol::base_action(0), kBAction);
  EXPECT_EQ(MultiPifProtocol::instance_of(kNumActions), 1u);
  EXPECT_EQ(MultiPifProtocol::base_action(kNumActions + 2),
            static_cast<sim::ActionId>(2));
}

TEST(MultiPif, ActionNamesCarryInitiator) {
  const auto g = graph::make_path(3);
  MultiPifProtocol protocol(g, {0, 2});
  EXPECT_EQ(protocol.num_actions(), 2 * kNumActions);
  EXPECT_EQ(protocol.action_name(0), "r0:B-action");
  EXPECT_EQ(protocol.action_name(kNumActions), "r2:B-action");
}

TEST(MultiPif, TwoInitiatorsCompleteConcurrentCycles) {
  const auto g = graph::make_cycle(8);
  MultiPifProtocol protocol(g, {0, 4});
  MultiSim sim(protocol, g, 5);
  MultiGhost ghost(g, sim.protocol());
  attach_multi(sim, ghost);
  auto daemon = sim::make_daemon(sim::DaemonKind::kDistributedRandom);
  auto r = sim.run_until(
      *daemon,
      [&](const auto&) { return ghost.min_cycles_completed() >= 3; },
      sim::RunLimits{.max_steps = 100000});
  ASSERT_EQ(r.reason, sim::StopReason::kPredicate);
  for (std::size_t i = 0; i < ghost.instances(); ++i) {
    for (const auto& verdict : ghost.tracker(i).verdicts()) {
      EXPECT_TRUE(verdict.ok()) << "instance " << i;
    }
  }
}

TEST(MultiPif, InstancesDoNotInterfere) {
  // Freeze instance 1 (adversarial daemon never picks its actions is not
  // expressible; instead verify the composite invariants per slice): run
  // with three initiators and check each slice independently satisfies the
  // single-instance invariants at every step.
  const auto g = graph::make_random_connected(9, 6, 11);
  MultiPifProtocol protocol(g, {0, 3, 7});
  MultiSim sim(protocol, g, 6);
  auto daemon = sim::make_daemon(sim::DaemonKind::kCentralRandom);

  std::vector<PifProtocol> singles;
  std::vector<Checker> checkers;
  singles.reserve(3);
  for (std::size_t i = 0; i < 3; ++i) {
    singles.emplace_back(g, Params::for_graph(g, sim.protocol().root_of(i)));
  }
  for (std::size_t i = 0; i < 3; ++i) {
    checkers.emplace_back(singles[i]);
  }

  sim::Configuration<State> slice(g, State{});
  for (int step = 0; step < 2000; ++step) {
    if (!sim.step(*daemon)) {
      break;
    }
    for (std::size_t i = 0; i < 3; ++i) {
      for (sim::ProcessorId p = 0; p < g.n(); ++p) {
        slice.state(p) = sim.config().state(p).slots[i];
      }
      ASSERT_TRUE(checkers[i].all_normal(slice))
          << "instance " << i << " step " << step;
      ASSERT_TRUE(checkers[i].property1_holds(slice))
          << "instance " << i << " step " << step;
    }
  }
}

TEST(MultiPif, SnapPropertyHoldsPerInitiatorFromCorruptedStarts) {
  const auto g = graph::make_grid(3, 3);
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    MultiPifProtocol protocol(g, {0, 8});
    MultiSim sim(protocol, g, seed);
    MultiGhost ghost(g, sim.protocol());
    attach_multi(sim, ghost);
    util::Rng rng(seed * 71);
    sim.randomize(rng);
    auto daemon = sim::make_daemon(sim::DaemonKind::kDistributedRandom);
    auto r = sim.run_until(
        *daemon,
        [&](const auto&) { return ghost.min_cycles_completed() >= 1; },
        sim::RunLimits{.max_steps = 400000});
    ASSERT_EQ(r.reason, sim::StopReason::kPredicate) << "seed " << seed;
    for (std::size_t i = 0; i < ghost.instances(); ++i) {
      const auto& verdict = ghost.tracker(i).verdicts().front();
      EXPECT_TRUE(verdict.pif1) << "instance " << i << " seed " << seed;
      EXPECT_TRUE(verdict.pif2) << "instance " << i << " seed " << seed;
      EXPECT_FALSE(verdict.aborted) << "instance " << i << " seed " << seed;
    }
  }
}

TEST(MultiPif, EveryProcessorCanInitiate) {
  // The general setting: one instance per processor, all roots concurrent.
  const auto g = graph::make_path(5);
  std::vector<sim::ProcessorId> roots;
  for (sim::ProcessorId p = 0; p < g.n(); ++p) {
    roots.push_back(p);
  }
  MultiPifProtocol protocol(g, roots);
  MultiSim sim(protocol, g, 9);
  MultiGhost ghost(g, sim.protocol());
  attach_multi(sim, ghost);
  auto daemon = sim::make_daemon(sim::DaemonKind::kDistributedRandom);
  auto r = sim.run_until(
      *daemon,
      [&](const auto&) { return ghost.min_cycles_completed() >= 2; },
      sim::RunLimits{.max_steps = 400000});
  ASSERT_EQ(r.reason, sim::StopReason::kPredicate);
  for (std::size_t i = 0; i < ghost.instances(); ++i) {
    for (const auto& verdict : ghost.tracker(i).verdicts()) {
      EXPECT_TRUE(verdict.ok()) << "initiator " << i;
    }
  }
}

TEST(MultiPif, StateHashingDistinguishesSlots) {
  MultiState a, b;
  a.slots.resize(2);
  b.slots.resize(2);
  b.slots[1].pif = Phase::kB;
  EXPECT_NE(a, b);
  EXPECT_NE(a.hash(), b.hash());
  std::swap(b.slots[0], b.slots[1]);
  MultiState c;
  c.slots.resize(2);
  c.slots[0].pif = Phase::kB;
  EXPECT_EQ(b, c);
  EXPECT_EQ(b.hash(), c.hash());
}

}  // namespace
}  // namespace snappif::pif
