// Error-correction behavior (Section 4.3): abnormal processors disappear,
// within the proved round bounds — Theorem 1 (all normal within 3*Lmax + 3),
// and the composed bound for reaching the normal starting configuration
// (<= 9*Lmax + 8, from Theorem 2's cases; see EXPERIMENTS.md E2).
#include <gtest/gtest.h>

#include "analysis/runners.hpp"
#include "fixtures.hpp"
#include "graph/generators.hpp"
#include "pif/checker.hpp"
#include "pif/faults.hpp"
#include "sim/simulator.hpp"

namespace snappif::pif {
namespace {

using analysis::RunConfig;
using analysis::StabilizationResult;
using testfix::root_st;
using testfix::st;

TEST(ErrorCorrection, AbnormalBGoesToFThenC) {
  // A lone abnormal broadcaster is flushed in two corrections (Lemma 4).
  const auto g = graph::make_path(3);
  PifProtocol protocol(g, Params::for_graph(g));
  sim::Simulator<PifProtocol> sim(protocol, g, 3);
  sim.set_state(1, st(Phase::kB, false, 1, 2, 0));  // wrong level vs root C
  sim::SynchronousDaemon daemon;

  ASSERT_TRUE(sim.is_enabled(1));
  ASSERT_TRUE(sim.step(daemon));
  EXPECT_EQ(sim.config().state(1).pif, Phase::kF);
  ASSERT_TRUE(sim.step(daemon));
  EXPECT_EQ(sim.config().state(1).pif, Phase::kC);
}

TEST(ErrorCorrection, FakeTreeFlushedTopDown) {
  // A consistent fake tree is dismantled from its (abnormal) source toward
  // the leaves: B-corrections cascade as parents turn F.
  const auto g = graph::make_path(5);
  PifProtocol protocol(g, Params::for_graph(g));
  sim::Simulator<PifProtocol> sim(protocol, g, 4);
  // Fake chain 2 <- 3 <- 4 at levels 2,3,4; processor 2's parent (1) is C,
  // so 2 is the abnormal source; 3 and 4 are locally consistent.
  sim.set_state(2, st(Phase::kB, false, 3, 2, 1));
  sim.set_state(3, st(Phase::kB, false, 2, 3, 2));
  sim.set_state(4, st(Phase::kB, false, 1, 4, 3));
  Checker checker(sim.protocol());
  EXPECT_EQ(checker.abnormal(sim.config()), (std::vector<sim::ProcessorId>{2}));

  sim::SynchronousDaemon daemon;
  // After one step, 2 corrected to F, which makes 3 abnormal, etc.
  std::vector<Phase> phase2;
  for (int i = 0; i < 12 && !checker.all_c(sim.config()); ++i) {
    ASSERT_TRUE(sim.step(daemon));
  }
  // Everything flushed; the root then starts a legitimate cycle eventually.
  for (sim::ProcessorId p = 1; p < 5; ++p) {
    EXPECT_TRUE(checker.all_normal(sim.config()));
  }
}

struct CorrectionCase {
  std::string name;
  graph::Graph graph;
  sim::DaemonKind daemon;
  CorruptionKind corruption;
};

class CorrectionBound : public ::testing::TestWithParam<CorrectionCase> {};

TEST_P(CorrectionBound, Theorem1And2Bounds) {
  const CorrectionCase& cc = GetParam();
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RunConfig rc;
    rc.daemon = cc.daemon;
    rc.corruption = cc.corruption;
    rc.seed = seed * 31 + 7;
    const StabilizationResult result =
        analysis::measure_stabilization(cc.graph, rc);
    ASSERT_TRUE(result.ok) << cc.name << " seed=" << seed;
    const std::uint64_t lmax = result.l_max;
    EXPECT_LE(result.rounds_to_all_normal, 3 * lmax + 3)
        << cc.name << " seed=" << seed << " (Theorem 1)";
    EXPECT_LE(result.rounds_to_sbn, 9 * lmax + 8)
        << cc.name << " seed=" << seed << " (composed Theorem 2 bound)";
  }
}

std::vector<CorrectionCase> make_cases() {
  std::vector<CorrectionCase> cases;
  for (const auto& named : graph::standard_suite(10, 11)) {
    for (CorruptionKind corruption :
         {CorruptionKind::kUniformRandom, CorruptionKind::kFakeTree,
          CorruptionKind::kAdversarialMix}) {
      cases.push_back({named.name + "_" + std::string(corruption_name(corruption)),
                       named.graph, sim::DaemonKind::kDistributedRandom,
                       corruption});
    }
  }
  // The synchronous daemon is the canonical worst case for round counts.
  for (const auto& named : graph::standard_suite(10, 12)) {
    cases.push_back({named.name + "_sync_adv", named.graph,
                     sim::DaemonKind::kSynchronous,
                     CorruptionKind::kAdversarialMix});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, CorrectionBound, ::testing::ValuesIn(make_cases()),
                         [](const ::testing::TestParamInfo<CorrectionCase>& info) {
                           std::string name = info.param.name;
                           for (char& ch : name) {
                             if (ch == '-') {
                               ch = '_';
                             }
                           }
                           return name;
                         });

TEST(ErrorCorrection, LmaxSlackStillWithinScaledBound) {
  // Using L_max = 2(N-1) doubles the level domain; Theorem 1's bound scales
  // with L_max, and corrections still respect it.
  const auto g = graph::make_path(8);
  RunConfig rc;
  rc.daemon = sim::DaemonKind::kDistributedRandom;
  rc.corruption = CorruptionKind::kAdversarialMix;
  rc.l_max_override = 14;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    rc.seed = seed;
    const StabilizationResult result = analysis::measure_stabilization(g, rc);
    ASSERT_TRUE(result.ok);
    EXPECT_EQ(result.l_max, 14u);
    EXPECT_LE(result.rounds_to_all_normal, 3 * result.l_max + 3);
  }
}

TEST(ErrorCorrection, GoodCountStaysTrueOnceEstablishedEverywhere) {
  // Property 3: after GoodCount holds for everyone, it holds forever.
  const auto g = graph::make_random_connected(9, 6, 21);
  PifProtocol protocol(g, Params::for_graph(g));
  sim::Simulator<PifProtocol> sim(protocol, g, 9);
  util::Rng rng(1234);
  apply_corruption(sim, CorruptionKind::kAdversarialMix, rng);
  auto daemon = sim::make_daemon(sim::DaemonKind::kDistributedRandom);

  auto all_good_count = [&](const sim::Configuration<State>& c) {
    for (sim::ProcessorId p = 0; p < c.n(); ++p) {
      if (!sim.protocol().good_count(c, p)) {
        return false;
      }
    }
    return true;
  };
  auto r = sim.run_until(*daemon, all_good_count,
                         sim::RunLimits{.max_steps = 100000});
  ASSERT_EQ(r.reason, sim::StopReason::kPredicate);
  // From here on GoodCount must never be violated again.
  for (int i = 0; i < 2000; ++i) {
    if (!sim.step(*daemon)) {
      break;
    }
    ASSERT_TRUE(all_good_count(sim.config())) << "GoodCount regressed at step " << i;
  }
}

}  // namespace
}  // namespace snappif::pif
