// Configuration text format: round-trips, defaults, malformed input, and
// the documented witness strings.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "pif/faults.hpp"
#include "pif/serialize.hpp"
#include "sim/simulator.hpp"

namespace snappif::pif {
namespace {

TEST(Serialize, FormatsCleanConfig) {
  const auto g = graph::make_path(3);
  PifProtocol protocol(g, Params::for_graph(g));
  sim::Configuration<State> c(g, protocol.initial_state(0));
  for (sim::ProcessorId p = 0; p < 3; ++p) {
    c.state(p) = protocol.initial_state(p);
  }
  EXPECT_EQ(format_config(protocol, c), "C:1 C:1:1:0 C:1:1:1");
}

TEST(Serialize, ParsesShorthand) {
  const auto g = graph::make_path(3);
  PifProtocol protocol(g, Params::for_graph(g));
  const auto c = parse_config(protocol, g, "C C C");
  ASSERT_TRUE(c.has_value());
  for (sim::ProcessorId p = 0; p < 3; ++p) {
    EXPECT_EQ(c->state(p).pif, Phase::kC);
    EXPECT_EQ(c->state(p).count, 1u);
  }
  EXPECT_EQ(c->state(1).parent, 0u);  // first neighbor default
  EXPECT_EQ(c->state(0).parent, kNoParent);
}

TEST(Serialize, RoundTripsRandomConfigs) {
  const auto g = graph::make_random_connected(8, 6, 5);
  PifProtocol protocol(g, Params::for_graph(g));
  sim::Simulator<PifProtocol> sim(protocol, g, 1);
  util::Rng rng(9);
  for (int iter = 0; iter < 50; ++iter) {
    sim.randomize(rng);
    const std::string text = format_config(protocol, sim.config());
    const auto parsed = parse_config(protocol, g, text);
    ASSERT_TRUE(parsed.has_value()) << text;
    EXPECT_EQ(*parsed, sim.config()) << text;
  }
}

TEST(Serialize, TheDeadlockWitnessString) {
  // The DESIGN.md §2 item 4 witness, as documented.
  const auto g = graph::make_path(3);
  PifProtocol protocol(g, Params::for_graph(g));
  const auto c = parse_config(protocol, g, "B*:3 B*:1:1:0 C:1:1:1");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->state(0).pif, Phase::kB);
  EXPECT_TRUE(c->state(0).fok);
  EXPECT_EQ(c->state(0).count, 3u);
  EXPECT_TRUE(c->state(1).fok);
  EXPECT_EQ(c->state(2).pif, Phase::kC);
  // Under the literal Pre_Potential it deadlocks; under the repair it moves.
  Params literal = Params::for_graph(g);
  literal.literal_prepotential_fok = true;
  PifProtocol literal_protocol(g, literal);
  bool any = false;
  for (sim::ProcessorId p = 0; p < 3 && !any; ++p) {
    for (sim::ActionId a = 0; a < literal_protocol.num_actions(); ++a) {
      any = any || literal_protocol.enabled(*c, p, a);
    }
  }
  EXPECT_FALSE(any);
  EXPECT_TRUE(protocol.enabled(*c, 2, kBAction));
}

TEST(Serialize, RejectsMalformedInput) {
  const auto g = graph::make_path(3);
  PifProtocol protocol(g, Params::for_graph(g));
  EXPECT_FALSE(parse_config(protocol, g, "").has_value());
  EXPECT_FALSE(parse_config(protocol, g, "C C").has_value());        // too few
  EXPECT_FALSE(parse_config(protocol, g, "C C C C").has_value());    // too many
  EXPECT_FALSE(parse_config(protocol, g, "X C C").has_value());      // bad phase
  EXPECT_FALSE(parse_config(protocol, g, "C:9 C C").has_value());    // count > N'
  EXPECT_FALSE(parse_config(protocol, g, "C C:1:7:0 C").has_value());  // level > Lmax
  EXPECT_FALSE(parse_config(protocol, g, "C C C:1:1:0").has_value());  // non-edge parent
  EXPECT_FALSE(parse_config(protocol, g, "C:1:1:0 C C").has_value());  // root w/ level
  EXPECT_FALSE(parse_config(protocol, g, "C:x C C").has_value());    // junk number
}

TEST(Serialize, WhitespaceFlexibility) {
  const auto g = graph::make_path(2);
  PifProtocol protocol(g, Params::for_graph(g));
  const auto c = parse_config(protocol, g, "  B:1 \n\t F:2:1:0  ");
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->state(0).pif, Phase::kB);
  EXPECT_EQ(c->state(1).pif, Phase::kF);
  EXPECT_EQ(c->state(1).count, 2u);
}

}  // namespace
}  // namespace snappif::pif
