// Unit tests for the paper's macros: Sum_Set_p / Sum_p, Pre_Potential_p,
// Potential_p (Section 3, Algorithms 1 and 2).
#include <gtest/gtest.h>

#include "fixtures.hpp"
#include "graph/generators.hpp"

namespace snappif::pif {
namespace {

using testfix::clean_config;
using testfix::root_st;
using testfix::st;

class MacroTest : public ::testing::Test {
 protected:
  MacroTest()
      : g_(graph::make_star(4)),  // 0 is the hub/root; leaves 1,2,3
        protocol_(g_, Params::for_graph(g_)),
        c_(clean_config(g_, protocol_)) {}

  graph::Graph g_;
  PifProtocol protocol_;
  sim::Configuration<State> c_;
};

TEST_F(MacroTest, SumIsOneWithNoChildren) {
  EXPECT_EQ(protocol_.sum(c_, 0), 1u);
  EXPECT_EQ(protocol_.sum(c_, 2), 1u);
}

TEST_F(MacroTest, SumCountsMatchingChildren) {
  c_.state(0) = root_st(Phase::kB, false, 1);
  c_.state(1) = st(Phase::kB, false, 2, 1, 0);
  c_.state(2) = st(Phase::kB, false, 3, 1, 0);
  c_.state(3) = st(Phase::kC, false, 1, 1, 0);  // phase C: not counted
  EXPECT_EQ(protocol_.sum(c_, 0), 1u + 2u + 3u);
  EXPECT_TRUE(protocol_.in_sum_set(c_, 0, 1));
  EXPECT_FALSE(protocol_.in_sum_set(c_, 0, 3));
}

TEST_F(MacroTest, SumIgnoresWrongLevel) {
  c_.state(0) = root_st(Phase::kB, false, 1);
  c_.state(1) = st(Phase::kB, false, 2, 2, 0);  // level must be L_0 + 1 = 1
  EXPECT_EQ(protocol_.sum(c_, 0), 1u);
}

TEST_F(MacroTest, SumIgnoresNonChildren) {
  c_.state(0) = root_st(Phase::kB, false, 1);
  c_.state(1) = st(Phase::kB, false, 2, 1, 2);  // parent is 2, not the root
  EXPECT_EQ(protocol_.sum(c_, 0), 1u);
}

TEST_F(MacroTest, SumExcludesFokdChildren) {
  // Repaired reading (¬Fok_q): a child already swept by the Fok wave leaves
  // the count set.
  c_.state(0) = root_st(Phase::kB, false, 1);
  c_.state(1) = st(Phase::kB, true, 2, 1, 0);
  EXPECT_EQ(protocol_.sum(c_, 0), 1u);
}

TEST_F(MacroTest, LiteralSumSetFiltersOnOwnerInstead) {
  Params params = Params::for_graph(g_);
  params.literal_sumset_fok_owner = true;
  PifProtocol literal(g_, params);
  c_.state(0) = root_st(Phase::kB, false, 1);
  c_.state(1) = st(Phase::kB, true, 2, 1, 0);
  // Literal: the member's Fok is irrelevant; the owner's ¬Fok_p gates.
  EXPECT_EQ(literal.sum(c_, 0), 3u);
  c_.state(0) = root_st(Phase::kB, true, 1);
  EXPECT_EQ(literal.sum(c_, 0), 1u);  // owner Fok'd -> empty set
}

TEST_F(MacroTest, PrePotentialRequiresBroadcastingNonParentPointer) {
  // Processor 3 (leaf) sees the hub 0.
  c_.state(0) = root_st(Phase::kB, false, 1);
  EXPECT_EQ(protocol_.pre_potential(c_, 3),
            (std::vector<sim::ProcessorId>{0}));
  // Hub in F: no candidate.
  c_.state(0) = root_st(Phase::kF, false, 1);
  EXPECT_TRUE(protocol_.pre_potential(c_, 3).empty());
}

TEST_F(MacroTest, PrePotentialExcludesNeighborPointingAtMe) {
  // Hub 0 is root; test from leaf 1's perspective with a fake: leaf 1 sees
  // only the hub.  Give the hub's state Par = bottom (root), so the
  // "Par_q != p" clause passes; then simulate a non-root neighborhood using
  // path graph instead.
  const auto path = graph::make_path(3);
  PifProtocol proto(path, Params::for_graph(path));
  auto c = clean_config(path, proto);
  c.state(1) = st(Phase::kB, false, 1, 1, 2);  // points AT processor 2
  EXPECT_TRUE(proto.pre_potential(c, 2).empty());
  c.state(1) = st(Phase::kB, false, 1, 1, 0);
  EXPECT_EQ(proto.pre_potential(c, 2), (std::vector<sim::ProcessorId>{1}));
}

TEST_F(MacroTest, PrePotentialRespectsLmax) {
  const auto path = graph::make_path(3);
  PifProtocol proto(path, Params::for_graph(path));  // Lmax = 2
  auto c = clean_config(path, proto);
  c.state(1) = st(Phase::kB, false, 1, 2, 0);  // level = Lmax: cannot extend
  EXPECT_TRUE(proto.pre_potential(c, 2).empty());
}

TEST_F(MacroTest, PrePotentialAllowsFokdNeighborsAfterRepair) {
  // DESIGN.md §2 item 4: Fok'd broadcasters remain joinable.
  const auto path = graph::make_path(3);
  PifProtocol proto(path, Params::for_graph(path));
  auto c = clean_config(path, proto);
  c.state(1) = st(Phase::kB, true, 1, 1, 0);
  EXPECT_EQ(proto.pre_potential(c, 2), (std::vector<sim::ProcessorId>{1}));

  Params literal_params = Params::for_graph(path);
  literal_params.literal_prepotential_fok = true;
  PifProtocol literal(path, literal_params);
  EXPECT_TRUE(literal.pre_potential(c, 2).empty());
}

TEST(PotentialTest, KeepsOnlyMinimumLevel) {
  // Square 0-1, 0-2, 1-3, 2-3; root 0; processor 3 sees 1 (level 1) and
  // 2 (level 2, inconsistent but present).
  const auto g = graph::make_cycle(4);
  PifProtocol proto(g, Params::for_graph(g));
  auto c = clean_config(g, proto);
  c.state(1) = st(Phase::kB, false, 1, 1, 0);
  c.state(3) = st(Phase::kB, false, 1, 2, 0);
  // Processor 2 is adjacent to 1 and 3 on C4 (0-1-2-3-0)?  C4 edges:
  // 0-1,1-2,2-3,3-0.  Processor 2 sees {1,3}.
  const auto potential = proto.potential(c, 2);
  EXPECT_EQ(potential, (std::vector<sim::ProcessorId>{1}));
  // Without the min-level restriction both qualify.
  Params ablated = Params::for_graph(g);
  ablated.min_level_potential = false;
  PifProtocol ablated_proto(g, ablated);
  EXPECT_EQ(ablated_proto.potential(c, 2),
            (std::vector<sim::ProcessorId>{1, 3}));
}

TEST(PotentialTest, TieBreakByLocalOrder) {
  // Star with two broadcasting neighbors at the same level: B-action must
  // pick the >_p-minimum, i.e. the smallest id.
  const auto g = graph::Graph::from_edges(4, {{0, 3}, {1, 3}, {2, 3}, {0, 1}, {0, 2}});
  PifProtocol proto(g, Params::for_graph(g));
  auto c = clean_config(g, proto);
  c.state(1) = st(Phase::kB, false, 1, 1, 0);
  c.state(2) = st(Phase::kB, false, 1, 1, 0);
  const auto potential = proto.potential(c, 3);
  EXPECT_EQ(potential, (std::vector<sim::ProcessorId>{1, 2}));
  const State next = proto.apply(c, 3, kBAction);
  EXPECT_EQ(next.parent, 1u);
  EXPECT_EQ(next.level, 2u);
  EXPECT_EQ(next.count, 1u);
  EXPECT_FALSE(next.fok);
  EXPECT_EQ(next.pif, Phase::kB);
}

}  // namespace
}  // namespace snappif::pif
