// WaveService: snap-stabilizing request/response over PIF waves.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "pif/faults.hpp"
#include "pif/service.hpp"
#include "sim/simulator.hpp"

namespace snappif::pif {
namespace {

struct ServiceFixture {
  explicit ServiceFixture(const graph::Graph& graph, std::uint64_t seed = 1)
      : g(graph),
        protocol(g, Params::for_graph(g)),
        sim(protocol, g, seed),
        tracker(g, 0),
        // Request: multiply each processor's id by the request value and
        // sum — an easily checkable distributed computation.
        service(
            g, 0,
            [](const std::uint64_t& req, sim::ProcessorId p) {
              return req * p;
            },
            [](const std::uint64_t& a, const std::uint64_t& b) {
              return a + b;
            }) {
    attach(sim, tracker, service);
  }

  [[nodiscard]] std::uint64_t expected(std::uint64_t req) const {
    std::uint64_t total = 0;
    for (sim::ProcessorId p = 0; p < g.n(); ++p) {
      total += req * p;
    }
    return total;
  }

  const graph::Graph& g;
  PifProtocol protocol;
  sim::Simulator<PifProtocol> sim;
  GhostTracker tracker;
  WaveService<std::uint64_t, std::uint64_t> service;
};

TEST(WaveService, ServesOneRequest) {
  const auto g = graph::make_grid(3, 3);
  ServiceFixture fx(g);
  fx.service.submit(7);
  auto daemon = sim::make_daemon(sim::DaemonKind::kDistributedRandom);
  std::optional<WaveService<std::uint64_t, std::uint64_t>::Completed> done;
  while (!done && fx.sim.steps() < 100000) {
    ASSERT_TRUE(fx.sim.step(*daemon));
    done = fx.service.poll();
  }
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->request, 7u);
  EXPECT_EQ(done->response, fx.expected(7));
  EXPECT_TRUE(done->wave_ok);
  EXPECT_EQ(fx.service.pending(), 0u);
}

TEST(WaveService, ServesQueueInOrder) {
  const auto g = graph::make_cycle(7);
  ServiceFixture fx(g, 3);
  fx.service.submit(1);
  fx.service.submit(2);
  fx.service.submit(3);
  EXPECT_EQ(fx.service.pending(), 3u);
  auto daemon = sim::make_daemon(sim::DaemonKind::kCentralRandom);
  std::vector<std::uint64_t> served;
  while (served.size() < 3 && fx.sim.steps() < 400000) {
    ASSERT_TRUE(fx.sim.step(*daemon));
    while (auto done = fx.service.poll()) {
      EXPECT_EQ(done->response, fx.expected(done->request));
      EXPECT_TRUE(done->wave_ok);
      served.push_back(done->request);
    }
  }
  EXPECT_EQ(served, (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(WaveService, IdleWavesDoNotFabricateResponses) {
  const auto g = graph::make_path(5);
  ServiceFixture fx(g, 5);
  auto daemon = sim::make_daemon(sim::DaemonKind::kSynchronous);
  // Run several request-free cycles.
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(fx.sim.step(*daemon));
    EXPECT_FALSE(fx.service.poll().has_value());
  }
  EXPECT_GE(fx.tracker.cycles_completed(), 2u);
  // A late request is still served correctly.
  fx.service.submit(11);
  std::optional<WaveService<std::uint64_t, std::uint64_t>::Completed> done;
  while (!done && fx.sim.steps() < 100000) {
    ASSERT_TRUE(fx.sim.step(*daemon));
    done = fx.service.poll();
  }
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->response, fx.expected(11));
}

TEST(WaveService, FirstResponseAfterCorruptionIsComplete) {
  const auto g = graph::make_random_connected(12, 8, 9);
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    ServiceFixture fx(g, seed);
    util::Rng rng(seed * 41);
    apply_corruption(fx.sim, CorruptionKind::kAdversarialMix, rng);
    fx.service.submit(5);
    auto daemon = sim::make_daemon(sim::DaemonKind::kDistributedRandom);
    std::optional<WaveService<std::uint64_t, std::uint64_t>::Completed> done;
    while (!done && fx.sim.steps() < 400000) {
      ASSERT_TRUE(fx.sim.step(*daemon));
      done = fx.service.poll();
    }
    ASSERT_TRUE(done.has_value()) << "seed " << seed;
    EXPECT_EQ(done->response, fx.expected(5)) << "seed " << seed;
    EXPECT_TRUE(done->wave_ok) << "seed " << seed;
  }
}

TEST(WaveService, SingleProcessorService) {
  const graph::Graph g(1);
  ServiceFixture fx(g);
  fx.service.submit(9);
  auto daemon = sim::make_daemon(sim::DaemonKind::kSynchronous);
  std::optional<WaveService<std::uint64_t, std::uint64_t>::Completed> done;
  while (!done && fx.sim.steps() < 100) {
    ASSERT_TRUE(fx.sim.step(*daemon));
    done = fx.service.poll();
  }
  ASSERT_TRUE(done.has_value());
  EXPECT_EQ(done->response, 0u);  // 9 * processor-id 0
  EXPECT_TRUE(done->wave_ok);
}

}  // namespace
}  // namespace snappif::pif
