// Exact work characterization of a clean PIF cycle: each of the N
// processors executes exactly one B-action, one F-action and one C-action
// per cycle; Fok-actions touch every non-root processor at most once; no
// correction ever fires from a clean start.  This pins the step complexity
// behind Theorem 4's round bound.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "pif/checker.hpp"
#include "pif/instrument.hpp"
#include "sim/simulator.hpp"

namespace snappif::pif {
namespace {

struct Counts {
  std::uint64_t counts[kNumActions] = {};
};

Counts run_cycles(const graph::Graph& g, sim::DaemonKind kind,
                  std::size_t cycles, std::uint64_t seed) {
  PifProtocol protocol(g, Params::for_graph(g));
  sim::Simulator<PifProtocol> sim(protocol, g, seed);
  GhostTracker tracker(g, 0);
  attach(sim, tracker);
  Checker checker(sim.protocol());
  auto daemon = sim::make_daemon(kind);
  auto r = sim.run_until(
      *daemon,
      [&](const sim::Configuration<State>& c) {
        return tracker.cycles_completed() >= cycles && checker.all_c(c);
      },
      sim::RunLimits{.max_steps = 1'000'000});
  EXPECT_EQ(r.reason, sim::StopReason::kPredicate);
  Counts out;
  for (sim::ActionId a = 0; a < kNumActions; ++a) {
    out.counts[a] = sim.action_count(a);
  }
  return out;
}

TEST(ActionCounts, OneBFCActionPerProcessorPerCycle) {
  for (const auto& named : graph::standard_suite(12, 77)) {
    const std::size_t kCycles = 3;
    const auto counts =
        run_cycles(named.graph, sim::DaemonKind::kDistributedRandom, kCycles, 5);
    const std::uint64_t n = named.graph.n();
    EXPECT_EQ(counts.counts[kBAction], n * kCycles) << named.name;
    EXPECT_EQ(counts.counts[kFAction], n * kCycles) << named.name;
    EXPECT_EQ(counts.counts[kCAction], n * kCycles) << named.name;
    // Fok-action: at most once per non-root processor per cycle (a leaf that
    // already sees Fok when it would feedback still executes it).
    EXPECT_LE(counts.counts[kFokAction], (n - 1) * kCycles) << named.name;
    EXPECT_GE(counts.counts[kFokAction], kCycles) << named.name;  // > 0
    // Clean start: corrections never fire.
    EXPECT_EQ(counts.counts[kBCorrection], 0u) << named.name;
    EXPECT_EQ(counts.counts[kFCorrection], 0u) << named.name;
  }
}

TEST(ActionCounts, CountActionsBoundedByNTimesHeight) {
  // Each processor re-computes Count at most once per growth of its subtree
  // count, and a subtree grows at most N times: Count-actions per cycle are
  // O(N * h) in the worst case, and on a path exactly the triangular wave.
  const auto g = graph::make_path(10);
  const std::size_t kCycles = 2;
  const auto counts =
      run_cycles(g, sim::DaemonKind::kSynchronous, kCycles, 11);
  // Path rooted at 0: processor at depth d executes (N-1-d) count updates
  // as the suffix counts bubble up; total = sum_{d=0}^{N-2}(N-1-d) = 45.
  EXPECT_EQ(counts.counts[kCountAction], 45u * kCycles);
}

TEST(ActionCounts, StarCountsAreMinimal) {
  // On a star rooted at the hub, every leaf joins at level 1 with Count=1
  // and the hub folds them: hub executes Count-action once per wave of
  // simultaneous joins (synchronous: exactly one).
  const auto g = graph::make_star(9);
  const auto counts = run_cycles(g, sim::DaemonKind::kSynchronous, 1, 13);
  EXPECT_EQ(counts.counts[kCountAction], 1u);
  EXPECT_EQ(counts.counts[kBAction], 9u);
}

TEST(ActionCounts, TotalStepsMatchActionSum) {
  const auto g = graph::make_cycle(8);
  PifProtocol protocol(g, Params::for_graph(g));
  sim::Simulator<PifProtocol> sim(protocol, g, 17);
  auto daemon = sim::make_daemon(sim::DaemonKind::kCentralRandom);
  for (int i = 0; i < 500; ++i) {
    if (!sim.step(*daemon)) {
      break;
    }
  }
  std::uint64_t total = 0;
  for (sim::ActionId a = 0; a < kNumActions; ++a) {
    total += sim.action_count(a);
  }
  // Central daemon: exactly one action per step.
  EXPECT_EQ(total, sim.steps());
}

}  // namespace
}  // namespace snappif::pif
