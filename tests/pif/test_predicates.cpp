// Unit tests for the local-checking predicates of Section 3.2: GoodPif,
// GoodLevel, GoodFok, GoodCount, Normal, and the structural helpers Leaf,
// BLeaf, BFree — the error-detection conditions 1-4 in the paper's prose.
#include <gtest/gtest.h>

#include "fixtures.hpp"
#include "graph/generators.hpp"

namespace snappif::pif {
namespace {

using testfix::clean_config;
using testfix::root_st;
using testfix::st;

class PredicateTest : public ::testing::Test {
 protected:
  PredicateTest()
      : g_(graph::make_path(3)),  // root 0 - 1 - 2
        protocol_(g_, Params::for_graph(g_)),
        c_(clean_config(g_, protocol_)) {}

  graph::Graph g_;
  PifProtocol protocol_;
  sim::Configuration<State> c_;
};

// --- Condition 1 (GoodPif): phase consistency with the parent ---------------

TEST_F(PredicateTest, GoodPifVacuousInC) {
  c_.state(1) = st(Phase::kC, false, 1, 1, 0);
  EXPECT_TRUE(protocol_.good_pif(c_, 1));
}

TEST_F(PredicateTest, GoodPifBroadcastNeedsBroadcastingParent) {
  c_.state(0) = root_st(Phase::kB, false, 1);
  c_.state(1) = st(Phase::kB, false, 1, 1, 0);
  EXPECT_TRUE(protocol_.good_pif(c_, 1));
  c_.state(0) = root_st(Phase::kC, false, 1);
  EXPECT_FALSE(protocol_.good_pif(c_, 1));
  c_.state(0) = root_st(Phase::kF, false, 1);
  EXPECT_FALSE(protocol_.good_pif(c_, 1));
}

TEST_F(PredicateTest, GoodPifFeedbackAllowsBorFParent) {
  c_.state(1) = st(Phase::kF, false, 1, 1, 0);
  c_.state(0) = root_st(Phase::kB, true, 3);
  EXPECT_TRUE(protocol_.good_pif(c_, 1));
  c_.state(0) = root_st(Phase::kF, false, 3);
  EXPECT_TRUE(protocol_.good_pif(c_, 1));
  c_.state(0) = root_st(Phase::kC, false, 3);
  EXPECT_FALSE(protocol_.good_pif(c_, 1));
}

// --- Condition 2 (GoodLevel) -------------------------------------------------

TEST_F(PredicateTest, GoodLevelExactIncrement) {
  c_.state(0) = root_st(Phase::kB, false, 1);
  c_.state(1) = st(Phase::kB, false, 1, 1, 0);
  EXPECT_TRUE(protocol_.good_level(c_, 1));
  c_.state(1) = st(Phase::kB, false, 1, 2, 0);
  EXPECT_FALSE(protocol_.good_level(c_, 1));
  // Vacuous in C regardless of level.
  c_.state(1) = st(Phase::kC, false, 1, 2, 0);
  EXPECT_TRUE(protocol_.good_level(c_, 1));
}

TEST_F(PredicateTest, GoodLevelDeepChain) {
  c_.state(0) = root_st(Phase::kB, false, 1);
  c_.state(1) = st(Phase::kB, false, 1, 1, 0);
  c_.state(2) = st(Phase::kB, false, 1, 2, 1);
  EXPECT_TRUE(protocol_.good_level(c_, 2));
  c_.state(1) = st(Phase::kB, false, 1, 2, 0);  // parent level changed
  EXPECT_FALSE(protocol_.good_level(c_, 2));
}

// --- Condition 3 (GoodFok) ---------------------------------------------------

TEST_F(PredicateTest, GoodFokNonRootBroadcast) {
  c_.state(0) = root_st(Phase::kB, false, 1);
  // Same flags: fine.
  c_.state(1) = st(Phase::kB, false, 1, 1, 0);
  EXPECT_TRUE(protocol_.good_fok(c_, 1));
  // Parent true, child false: the wave is on its way down — fine.
  c_.state(0) = root_st(Phase::kB, true, 3);
  EXPECT_TRUE(protocol_.good_fok(c_, 1));
  // Child true while parent false: corruption.
  c_.state(0) = root_st(Phase::kB, false, 1);
  c_.state(1) = st(Phase::kB, true, 1, 1, 0);
  EXPECT_FALSE(protocol_.good_fok(c_, 1));
}

TEST_F(PredicateTest, GoodFokFeedbackRequiresFokdBroadcastingParent) {
  // p in F with parent in B: parent must hold Fok (the feedback could only
  // have been authorized through it).
  c_.state(0) = root_st(Phase::kB, false, 1);
  c_.state(1) = st(Phase::kF, false, 1, 1, 0);
  EXPECT_FALSE(protocol_.good_fok(c_, 1));
  c_.state(0) = root_st(Phase::kB, true, 3);
  EXPECT_TRUE(protocol_.good_fok(c_, 1));
  // Parent already in F: no constraint.
  c_.state(0) = root_st(Phase::kF, false, 3);
  EXPECT_TRUE(protocol_.good_fok(c_, 1));
}

TEST_F(PredicateTest, GoodFokRootEquivalenceOnCount) {
  // Repaired root predicate: Fok_r = (Count_r = N); N = 3 here.
  c_.state(0) = root_st(Phase::kB, false, 1);
  EXPECT_TRUE(protocol_.good_fok(c_, 0));
  c_.state(0) = root_st(Phase::kB, true, 3);
  EXPECT_TRUE(protocol_.good_fok(c_, 0));
  c_.state(0) = root_st(Phase::kB, true, 2);   // Fok without full count
  EXPECT_FALSE(protocol_.good_fok(c_, 0));
  c_.state(0) = root_st(Phase::kB, false, 3);  // full count without Fok
  EXPECT_FALSE(protocol_.good_fok(c_, 0));
  // Vacuous outside the broadcast phase.
  c_.state(0) = root_st(Phase::kF, true, 2);
  EXPECT_TRUE(protocol_.good_fok(c_, 0));
}

// --- Condition 4 (GoodCount) -------------------------------------------------

TEST_F(PredicateTest, GoodCountBoundsBySum) {
  c_.state(0) = root_st(Phase::kB, false, 1);
  c_.state(1) = st(Phase::kB, false, 2, 1, 0);
  c_.state(2) = st(Phase::kB, false, 1, 2, 1);
  // Sum_1 = 1 + Count_2 = 2, Count_1 = 2: ok.
  EXPECT_TRUE(protocol_.good_count(c_, 1));
  c_.state(1) = st(Phase::kB, false, 3, 1, 0);  // inflated
  EXPECT_FALSE(protocol_.good_count(c_, 1));
}

TEST_F(PredicateTest, GoodCountVacuousWhenFokOrNotB) {
  c_.state(1) = st(Phase::kB, true, 3, 1, 0);
  EXPECT_TRUE(protocol_.good_count(c_, 1));
  c_.state(1) = st(Phase::kF, false, 3, 1, 0);
  EXPECT_TRUE(protocol_.good_count(c_, 1));
}

TEST_F(PredicateTest, GoodCountLeafMustBeOne) {
  c_.state(0) = root_st(Phase::kB, false, 1);
  c_.state(2) = st(Phase::kB, false, 1, 2, 1);
  c_.state(1) = st(Phase::kB, false, 1, 1, 0);
  // Processor 2 has no children: Sum = 1, so Count must be exactly 1.
  EXPECT_TRUE(protocol_.good_count(c_, 2));
  c_.state(2) = st(Phase::kB, false, 2, 2, 1);
  EXPECT_FALSE(protocol_.good_count(c_, 2));
}

// --- Normal = conjunction ----------------------------------------------------

TEST_F(PredicateTest, NormalRequiresAllFour) {
  c_.state(0) = root_st(Phase::kB, false, 1);
  c_.state(1) = st(Phase::kB, false, 1, 1, 0);
  EXPECT_TRUE(protocol_.normal(c_, 1));
  c_.state(1) = st(Phase::kB, false, 1, 2, 0);  // bad level only
  EXPECT_FALSE(protocol_.normal(c_, 1));
}

TEST_F(PredicateTest, CleanConfigurationIsAllNormal) {
  for (sim::ProcessorId p = 0; p < g_.n(); ++p) {
    EXPECT_TRUE(protocol_.normal(c_, p)) << p;
  }
}

// --- Structural helpers ------------------------------------------------------

TEST_F(PredicateTest, LeafIgnoresCStatePointers) {
  // Leaf(p): no *participating* neighbor points at p.
  c_.state(2) = st(Phase::kC, false, 1, 2, 1);  // stale pointer at 1, but C
  EXPECT_TRUE(protocol_.leaf(c_, 1));
  c_.state(2) = st(Phase::kB, false, 1, 2, 1);
  EXPECT_FALSE(protocol_.leaf(c_, 1));
  c_.state(2) = st(Phase::kF, false, 1, 2, 1);
  EXPECT_FALSE(protocol_.leaf(c_, 1));
}

TEST_F(PredicateTest, BLeafCountsAllPointers) {
  // BLeaf(p) in the broadcast phase: every neighbor pointing at p must be F
  // (a C-state pointer blocks — the stale-pointer deadlock of DESIGN.md §2
  // item 4 flows through here).
  c_.state(1) = st(Phase::kB, false, 1, 1, 0);
  c_.state(2) = st(Phase::kF, false, 1, 2, 1);
  EXPECT_TRUE(protocol_.b_leaf(c_, 1));
  c_.state(2) = st(Phase::kB, false, 1, 2, 1);
  EXPECT_FALSE(protocol_.b_leaf(c_, 1));
  c_.state(2) = st(Phase::kC, false, 1, 2, 1);
  EXPECT_FALSE(protocol_.b_leaf(c_, 1));
  // Vacuous outside B.
  c_.state(1) = st(Phase::kF, false, 1, 1, 0);
  EXPECT_TRUE(protocol_.b_leaf(c_, 1));
}

TEST_F(PredicateTest, BFree) {
  EXPECT_TRUE(protocol_.b_free(c_, 1));
  c_.state(2) = st(Phase::kB, false, 1, 2, 1);
  EXPECT_FALSE(protocol_.b_free(c_, 1));
}

}  // namespace
}  // namespace snappif::pif
