// Liveness: the PIF *scheme* (Specification 1) is an infinite sequence of
// PIF cycles — under any weakly fair daemon the system must keep producing
// completed cycles forever, from any start, including across repeated
// transient faults.  Safety was model-checked exhaustively; these long-run
// tests are the liveness counterpart.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "pif/checker.hpp"
#include "pif/faults.hpp"
#include "pif/instrument.hpp"
#include "sim/faults.hpp"
#include "sim/simulator.hpp"

namespace snappif::pif {
namespace {

TEST(Liveness, CyclesKeepCompletingUnderEveryDaemon) {
  const auto g = graph::make_random_connected(12, 9, 31);
  for (sim::DaemonKind kind : sim::standard_daemon_kinds()) {
    PifProtocol protocol(g, Params::for_graph(g));
    sim::Simulator<PifProtocol> sim(protocol, g, 3);
    GhostTracker tracker(g, 0);
    attach(sim, tracker);
    util::Rng rng(99);
    apply_corruption(sim, CorruptionKind::kAdversarialMix, rng);
    auto daemon = sim::make_daemon(kind);

    std::uint64_t last_count = 0;
    // In ten windows of 20k steps each, at least one new cycle must close.
    for (int window = 0; window < 10; ++window) {
      for (int step = 0; step < 20000; ++step) {
        ASSERT_TRUE(sim.step(*daemon))
            << sim::daemon_kind_name(kind) << ": terminal configuration";
      }
      EXPECT_GT(tracker.cycles_completed(), last_count)
          << sim::daemon_kind_name(kind) << " window " << window;
      last_count = tracker.cycles_completed();
    }
    // And every one of them was a correct cycle.
    for (const auto& verdict : tracker.verdicts()) {
      EXPECT_TRUE(verdict.ok()) << sim::daemon_kind_name(kind);
    }
  }
}

TEST(Liveness, SurvivesContinuousFaultBarrage) {
  // Random bursts every few hundred steps; cycle production never stalls
  // permanently.  Mid-cycle bursts may abort or spoil individual cycles
  // (no obligation — the faults strike while the wave is in flight), but
  // completions must keep occurring.
  const auto g = graph::make_grid(4, 4);
  PifProtocol protocol(g, Params::for_graph(g));
  sim::Simulator<PifProtocol> sim(protocol, g, 4);
  GhostTracker tracker(g, 0);
  attach(sim, tracker);
  auto daemon = sim::make_daemon(sim::DaemonKind::kDistributedRandom);
  util::Rng rng(555);

  std::uint64_t completions = 0;
  for (int epoch = 0; epoch < 50; ++epoch) {
    sim::inject_burst(sim, 2, rng);
    for (int step = 0; step < 2000; ++step) {
      ASSERT_TRUE(sim.step(*daemon));
    }
    completions = tracker.cycles_completed();
  }
  EXPECT_GT(completions, 25u);  // ~ one per epoch at minimum
}

TEST(Liveness, NoStarvationOfDeepProcessors) {
  // Under the fair-wrapped adversarial daemon that always prefers shallow
  // processors, deep processors still receive every broadcast (weak
  // fairness is enough for snap-stabilization; the paper assumes no more).
  const auto g = graph::make_path(14);
  PifProtocol protocol(g, Params::for_graph(g));
  sim::Simulator<PifProtocol> sim(protocol, g, 5);
  GhostTracker tracker(g, 0);
  attach(sim, tracker);
  sim.set_score([](const State& s) { return static_cast<std::int64_t>(s.level); });
  auto daemon = sim::make_daemon(sim::DaemonKind::kAdversarialMinLevel);
  auto r = sim.run_until(
      *daemon,
      [&](const auto&) { return tracker.cycles_completed() >= 5; },
      sim::RunLimits{.max_steps = 500000});
  ASSERT_EQ(r.reason, sim::StopReason::kPredicate);
  for (const auto& verdict : tracker.verdicts()) {
    EXPECT_TRUE(verdict.pif1);  // the far end of the path received every m
  }
}

}  // namespace
}  // namespace snappif::pif
