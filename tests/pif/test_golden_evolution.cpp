// Golden-trace regression: the exact synchronous evolution of one PIF cycle
// on the 4-path, phase strip per step.  Any change to guard or statement
// semantics shows up here first, with a human-readable diff.
//
// Legend: one column per processor; letter = Pif phase, '*' = Fok raised.
#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "pif/checker.hpp"
#include "sim/simulator.hpp"

namespace snappif::pif {
namespace {

TEST(GoldenEvolution, SynchronousCycleOnPath4) {
  const auto g = graph::make_path(4);
  PifProtocol protocol(g, Params::for_graph(g));
  sim::Simulator<PifProtocol> sim(protocol, g, 1);
  Checker checker(sim.protocol());
  sim::SynchronousDaemon daemon;

  const std::vector<std::string> expected{
      "C C C C ",   // the normal starting configuration (SBN)
      "B C C C ",   // the root broadcasts
      "B B C C ",   // the wave sweeps down...
      "B B B C ",   //
      "B B B B ",   // EBN: everyone broadcasting (h = 3 reached)
      "B B B B ",   // Count-actions bubble subtree sizes up (invisible in
      "B B B B ",   //   the strip: Count 2 then 3 arrive at processor 0)
      "B*B B B ",   // Count_r = N: the root raises Fok
      "B*B*B B ",   // the Fok wave authorizes feedback, sweeping down...
      "B*B*B*B ",   //
      "B*B*B*B*",   // ...reaching the leaf
      "B*B*B*F*",   // the leaf feeds back
      "B*B*F*F*",   // feedback rolls up...
      "B*F*F*C*",   // ...while cleaning chases it from the leaf
      "F*F*C*C*",   // the root's F-action: the cycle closes ([PIF2])
      "F*C*C*C*",   // cleaning drains the rest
      "C*C*C*C*",   // back to all-C: ready for the next cycle (the stale
                    //   Fok flags are don't-cares; B-action resets them)
  };

  std::vector<std::string> actual{checker.phase_strip(sim.config())};
  for (std::size_t i = 1; i < expected.size(); ++i) {
    ASSERT_TRUE(sim.step(daemon)) << "terminal at step " << i;
    actual.push_back(checker.phase_strip(sim.config()));
  }
  EXPECT_EQ(actual, expected);
  EXPECT_TRUE(checker.all_c(sim.config()));
  // 16 synchronous rounds for h = 3: within Theorem 4's 5h+5 = 20.
  EXPECT_EQ(sim.rounds(), 16u);

  // The next cycle starts identically (the scheme repeats); the non-root
  // Fok residue lingers until each processor's own B-action clears it.
  ASSERT_TRUE(sim.step(daemon));
  EXPECT_EQ(checker.phase_strip(sim.config()), "B C*C*C*");
  EXPECT_FALSE(sim.config().state(0).fok);  // the root's B-action cleared its
}

TEST(GoldenEvolution, CountsDuringTheInvisibleSteps) {
  // Pin the counting wave the strip cannot show.  Counting overlaps the
  // broadcast: a processor absorbs a child's Count one step after the child
  // joins, so the counts trail the wavefront by one level.
  const auto g = graph::make_path(4);
  PifProtocol protocol(g, Params::for_graph(g));
  sim::Simulator<PifProtocol> sim(protocol, g, 1);
  sim::SynchronousDaemon daemon;
  auto counts = [&](int a, int b, int c, int d) {
    EXPECT_EQ(sim.config().state(0).count, static_cast<std::uint32_t>(a));
    EXPECT_EQ(sim.config().state(1).count, static_cast<std::uint32_t>(b));
    EXPECT_EQ(sim.config().state(2).count, static_cast<std::uint32_t>(c));
    EXPECT_EQ(sim.config().state(3).count, static_cast<std::uint32_t>(d));
  };
  auto advance = [&](int steps) {
    for (int i = 0; i < steps; ++i) {
      ASSERT_TRUE(sim.step(daemon));
    }
  };
  counts(1, 1, 1, 1);  // SBN
  advance(3);          // 0, 1, 2 broadcasting; 0 already absorbed 1's count
  counts(2, 1, 1, 1);
  advance(1);          // EBN; 1 absorbed 2's initial count
  counts(2, 2, 1, 1);
  advance(1);
  counts(3, 2, 2, 1);
  advance(1);
  counts(3, 3, 2, 1);
  advance(1);
  counts(4, 3, 2, 1);  // Count_r = N = 4...
  EXPECT_TRUE(sim.config().state(0).fok);  // ...and Fok rose atomically
}

}  // namespace
}  // namespace snappif::pif
