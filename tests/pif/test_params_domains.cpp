// Variable-domain corner cases: the Count domain ceiling N' > N, the level
// ceiling L_max, and parameter validation.
#include <gtest/gtest.h>

#include "analysis/runners.hpp"
#include "fixtures.hpp"
#include "graph/generators.hpp"
#include "pif/faults.hpp"
#include "pif/instrument.hpp"

namespace snappif::pif {
namespace {

using testfix::clean_config;
using testfix::root_st;
using testfix::st;

TEST(ParamsDomains, ValidationRejectsBadParameters) {
  const auto g = graph::make_path(4);
  {
    Params params = Params::for_graph(g);
    params.n = 3;  // must equal graph order
    EXPECT_DEATH(PifProtocol(g, params), "Params.n");
  }
  {
    Params params = Params::for_graph(g);
    params.n_upper = 2;  // N' < N
    EXPECT_DEATH(PifProtocol(g, params), "upper bound");
  }
  {
    Params params = Params::for_graph(g);
    params.l_max = 1;  // < N-1
    EXPECT_DEATH(PifProtocol(g, params), "L_max");
  }
}

TEST(ParamsDomains, SnapHoldsWithSlackNUpper) {
  // N' = 2N: corrupted counts range over a domain twice the network size;
  // the root still requires Count_r = N exactly.
  const auto g = graph::make_random_connected(10, 6, 13);
  Params params = Params::for_graph(g);
  params.n_upper = 2 * g.n();
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    PifProtocol protocol(g, params);
    sim::Simulator<PifProtocol> sim(protocol, g, seed);
    GhostTracker tracker(g, 0);
    sim.set_apply_hook([&](sim::ProcessorId p, sim::ActionId a,
                           const sim::Configuration<State>&, const State& after) {
      tracker.note_step(sim.steps());
      tracker.on_apply(p, a, after);
    });
    util::Rng rng(seed * 17);
    sim.randomize(rng);
    auto daemon = sim::make_daemon(sim::DaemonKind::kDistributedRandom);
    auto r = sim.run_until(
        *daemon, [&](const auto&) { return tracker.cycles_completed() >= 1; },
        sim::RunLimits{.max_steps = 500000});
    ASSERT_EQ(r.reason, sim::StopReason::kPredicate) << "seed " << seed;
    EXPECT_TRUE(tracker.last_cycle().ok()) << "seed " << seed;
  }
}

TEST(ParamsDomains, RandomStatesRespectDomains) {
  const auto g = graph::make_star(6);
  Params params = Params::for_graph(g);
  params.n_upper = 9;
  params.l_max = 8;
  PifProtocol protocol(g, params);
  util::Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const State root = protocol.random_state(0, rng);
    EXPECT_EQ(root.level, 0u);
    EXPECT_EQ(root.parent, kNoParent);
    EXPECT_GE(root.count, 1u);
    EXPECT_LE(root.count, 9u);
    const State leaf = protocol.random_state(3, rng);
    EXPECT_GE(leaf.level, 1u);
    EXPECT_LE(leaf.level, 8u);
    EXPECT_EQ(leaf.parent, 0u);  // the hub is the only neighbor
  }
}

TEST(ParamsDomains, LmaxCeilingBlocksDeeperJoins) {
  // A broadcaster at level L_max cannot be anyone's parent.
  const auto g = graph::make_path(4);
  Params params = Params::for_graph(g);  // Lmax = 3
  PifProtocol protocol(g, params);
  auto c = clean_config(g, protocol);
  c.state(2) = st(Phase::kB, false, 1, 3, 1);  // at the ceiling
  EXPECT_TRUE(protocol.pre_potential(c, 3).empty());
  c.state(2) = st(Phase::kB, false, 1, 2, 1);
  EXPECT_EQ(protocol.pre_potential(c, 3).size(), 1u);
}

TEST(ParamsDomains, GenerousLmaxStillSnap) {
  const auto g = graph::make_cycle(8);
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    analysis::RunConfig rc;
    rc.l_max_override = 20;  // >> N-1
    rc.corruption = CorruptionKind::kAdversarialMix;
    rc.seed = seed;
    const auto r = analysis::check_snap_first_cycle(g, rc);
    ASSERT_TRUE(r.cycle_completed) << "seed " << seed;
    EXPECT_TRUE(r.ok()) << "seed " << seed;
  }
}

TEST(ParamsDomains, CountSaturationIsTransient) {
  // Sum above N' saturates Count at N'; once the bogus children are
  // corrected the counts renormalize and a correct cycle follows.
  const auto g = graph::make_star(5);  // hub 0 = root
  Params params = Params::for_graph(g);
  PifProtocol protocol(g, params);
  sim::Simulator<PifProtocol> sim(protocol, g, 7);
  // Hub broadcasting; every leaf claims Count = N' = 5 as its child.
  sim.set_state(0, root_st(Phase::kB, false, 1));
  for (sim::ProcessorId leaf = 1; leaf < 5; ++leaf) {
    sim.set_state(leaf, st(Phase::kB, false, 5, 1, 0));
  }
  // Sum_r = 1 + 4*5 = 21 > N' — the leaves are all abnormal (leaf Count
  // must be 1), so corrections win before Fok can ever rise with a lie.
  Checker checker(sim.protocol());
  EXPECT_EQ(checker.abnormal(sim.config()).size(), 4u);
  GhostTracker tracker(g, 0);
  attach(sim, tracker);
  auto daemon = sim::make_daemon(sim::DaemonKind::kDistributedRandom);
  auto r = sim.run_until(
      *daemon, [&](const auto&) { return tracker.cycles_completed() >= 1; },
      sim::RunLimits{.max_steps = 100000});
  ASSERT_EQ(r.reason, sim::StopReason::kPredicate);
  EXPECT_TRUE(tracker.last_cycle().ok());
}

}  // namespace
}  // namespace snappif::pif
