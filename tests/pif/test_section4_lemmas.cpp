// Direct validation of Section 4's machinery, beyond what the end-to-end
// bounds already imply:
//
//   * the Checker's LegalTree agrees with an independent brute-force
//     implementation of Definitions 4-6 on EVERY configuration of a tiny
//     instance;
//   * Property 1 is inductive: on every configuration where it holds, it
//     still holds after every synchronous step (checked over the full
//     configuration space of path-3);
//   * Corollary 1's potential function: the minimal level among abnormal
//     processors never decreases per round and strictly increases every
//     two rounds (randomized over larger instances);
//   * Lemma 2's trigger: GoodCount(p) can only newly fail when a
//     counted child executed B-correction in that step.
#include <gtest/gtest.h>

#include "analysis/explore.hpp"
#include "fixtures.hpp"
#include "graph/generators.hpp"
#include "pif/checker.hpp"
#include "pif/faults.hpp"
#include "sim/simulator.hpp"

namespace snappif::pif {
namespace {

using testfix::clean_config;

// Brute-force Definitions 4-6: walk Par pointers through normal processors.
std::vector<bool> brute_force_legal_tree(const PifProtocol& protocol,
                                         const sim::Configuration<State>& c) {
  std::vector<bool> legal(c.n(), false);
  const sim::ProcessorId root = protocol.root();
  for (sim::ProcessorId p = 0; p < c.n(); ++p) {
    if (p == root) {
      legal[p] = c.state(p).pif != Phase::kC;
      continue;
    }
    if (c.state(p).pif == Phase::kC) {
      continue;
    }
    sim::ProcessorId cur = p;
    std::size_t hops = 0;
    bool ok = true;
    while (cur != root) {
      if (!protocol.normal(c, cur) || ++hops > c.n()) {
        ok = false;
        break;
      }
      cur = c.state(cur).parent;
    }
    legal[p] = ok;
  }
  return legal;
}

TEST(Section4, LegalTreeMatchesBruteForceOnFullSpace) {
  const auto g = graph::make_path(3);
  PifProtocol protocol(g, Params::for_graph(g));
  Checker checker(protocol);
  std::vector<std::vector<State>> domains;
  for (sim::ProcessorId p = 0; p < g.n(); ++p) {
    domains.push_back(protocol.all_states(p));
  }
  sim::Configuration<State> c(g, protocol.initial_state(0));
  std::uint64_t checked = 0;
  analysis::enumerate_product(domains, [&](const std::vector<State>& states) {
    for (sim::ProcessorId p = 0; p < g.n(); ++p) {
      c.state(p) = states[p];
    }
    const auto fast = checker.legal_tree(c);
    const auto slow = brute_force_legal_tree(protocol, c);
    ASSERT_EQ(fast, slow) << checker.describe(c);
    ++checked;
  });
  EXPECT_EQ(checked, 46656u);
}

TEST(Section4, Property1IsInductiveOnFullSpace) {
  // For every configuration where Property 1 holds, it holds after one
  // synchronous step (the paper states it as an invariant).
  const auto g = graph::make_path(3);
  PifProtocol protocol(g, Params::for_graph(g));
  Checker checker(protocol);
  sim::Simulator<PifProtocol> sim(protocol, g, 1);
  sim::SynchronousDaemon daemon;

  std::vector<std::vector<State>> domains;
  for (sim::ProcessorId p = 0; p < g.n(); ++p) {
    domains.push_back(protocol.all_states(p));
  }
  std::uint64_t applicable = 0;
  analysis::enumerate_product(domains, [&](const std::vector<State>& states) {
    // Load the configuration into the simulator.
    for (sim::ProcessorId p = 0; p < g.n(); ++p) {
      sim.set_state(p, states[p]);
    }
    if (!checker.property1_holds(sim.config())) {
      return;  // antecedent false: nothing to preserve
    }
    ++applicable;
    if (!sim.step(daemon)) {
      return;  // terminal (none exist; deadlock checks prove it)
    }
    ASSERT_TRUE(checker.property1_holds(sim.config()))
        << "Property 1 broken by a synchronous step from:\n"
        << checker.describe(sim.config());
  });
  EXPECT_GT(applicable, 0u);
}

TEST(Section4, Corollary1AbnormalLevelPotential) {
  // The minimal level among abnormal processors is a potential function:
  // non-decreasing per synchronous round, strictly increasing every two
  // rounds (until no abnormal processor remains).
  const auto g = graph::make_path(10);
  PifProtocol protocol(g, Params::for_graph(g));
  auto min_abnormal_level = [&](const sim::Configuration<State>& c)
      -> std::optional<std::uint32_t> {
    std::optional<std::uint32_t> level;
    for (sim::ProcessorId p = 0; p < c.n(); ++p) {
      if (!protocol.normal(c, p)) {
        const std::uint32_t lp = c.state(p).level;
        level = level ? std::min(*level, lp) : lp;
      }
    }
    return level;
  };

  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    sim::Simulator<PifProtocol> sim(protocol, g, seed);
    util::Rng rng(seed * 101);
    apply_corruption(sim, CorruptionKind::kAdversarialMix, rng);
    sim::SynchronousDaemon daemon;  // one step = one round

    auto level = min_abnormal_level(sim.config());
    int rounds_without_increase = 0;
    for (int round = 0; round < 200 && level.has_value(); ++round) {
      ASSERT_TRUE(sim.step(daemon));
      const auto next = min_abnormal_level(sim.config());
      if (next.has_value()) {
        ASSERT_GE(*next, *level)
            << "seed " << seed << ": abnormal level decreased";
        rounds_without_increase = (*next == *level)
                                      ? rounds_without_increase + 1
                                      : 0;
        ASSERT_LE(rounds_without_increase, 1)
            << "seed " << seed << ": level stagnated beyond two rounds";
      }
      level = next;
    }
    EXPECT_FALSE(level.has_value()) << "seed " << seed << ": abnormal forever";
  }
}

TEST(Section4, GuardStructureExhaustive) {
  // Over EVERY configuration of path-3: (a) correction guards fire exactly
  // on ¬Normal processors of the matching phase; (b) correction and
  // normal-phase guards never overlap; (c) among normal-phase guards only
  // the Fok/Count pair can co-fire (the randomized version of this check
  // lives in test_guards_actions.cpp; this is the complete proof for the
  // instance).
  const auto g = graph::make_path(3);
  PifProtocol protocol(g, Params::for_graph(g));
  std::vector<std::vector<State>> domains;
  for (sim::ProcessorId p = 0; p < g.n(); ++p) {
    domains.push_back(protocol.all_states(p));
  }
  sim::Configuration<State> c(g, protocol.initial_state(0));
  std::uint64_t overlaps_seen = 0;
  analysis::enumerate_product(domains, [&](const std::vector<State>& states) {
    for (sim::ProcessorId p = 0; p < g.n(); ++p) {
      c.state(p) = states[p];
    }
    for (sim::ProcessorId p = 0; p < g.n(); ++p) {
      const bool normal = protocol.normal(c, p);
      const bool b_corr = protocol.b_correction_guard(c, p);
      const bool f_corr = protocol.f_correction_guard(c, p);
      ASSERT_FALSE(b_corr && normal);
      ASSERT_FALSE(f_corr && normal);
      ASSERT_FALSE(b_corr && f_corr);
      if (!normal && c.state(p).pif == Phase::kB) {
        ASSERT_TRUE(b_corr);
      }
      if (!normal && p != 0 && c.state(p).pif == Phase::kF) {
        ASSERT_TRUE(f_corr);
      }
      const bool fok_g = protocol.change_fok_guard(c, p);
      const bool count_g = protocol.new_count_guard(c, p);
      const int others = (protocol.broadcast_guard(c, p) ? 1 : 0) +
                         (protocol.feedback_guard(c, p) ? 1 : 0) +
                         (protocol.cleaning_guard(c, p) ? 1 : 0);
      ASSERT_LE(others + (fok_g ? 1 : 0) + (count_g ? 1 : 0),
                (fok_g && count_g) ? 2 : 1);
      if (fok_g && count_g) {
        ++overlaps_seen;
      }
    }
  });
  EXPECT_GT(overlaps_seen, 0u);  // the one legal overlap is reachable
}

TEST(Section4, Lemma2GoodCountFailsOnlyViaChildCorrection) {
  // If GoodCount(p) is true before a step and false after, some neighbor q
  // with Par_q = p, L_q = L_p + 1, Pif_q = B executed B-correction in that
  // step (Lemma 2's only mechanism).
  const auto g = graph::make_random_connected(8, 5, 4);
  PifProtocol protocol(g, Params::for_graph(g));

  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    sim::Simulator<PifProtocol> sim(protocol, g, seed);
    util::Rng rng(seed * 7 + 1);
    apply_corruption(sim, CorruptionKind::kAdversarialMix, rng);
    auto daemon = sim::make_daemon(sim::DaemonKind::kDistributedRandom);

    std::vector<std::pair<sim::ProcessorId, sim::ActionId>> executed;
    sim.set_apply_hook([&](sim::ProcessorId p, sim::ActionId a,
                           const sim::Configuration<State>&, const State&) {
      executed.emplace_back(p, a);
    });

    for (int step = 0; step < 1500; ++step) {
      const auto before = sim.config();
      executed.clear();
      if (!sim.step(*daemon)) {
        break;
      }
      for (sim::ProcessorId p = 0; p < g.n(); ++p) {
        if (!protocol.good_count(before, p) ||
            protocol.good_count(sim.config(), p)) {
          continue;
        }
        // Newly broken: find the Lemma 2 witness.
        bool witness = false;
        for (const auto& [q, a] : executed) {
          if (a != kBCorrection || q == p) {
            continue;
          }
          if (before.state(q).parent == p &&
              before.state(q).level == before.state(p).level + 1 &&
              before.state(q).pif == Phase::kB) {
            witness = true;
            break;
          }
        }
        ASSERT_TRUE(witness)
            << "seed " << seed << " step " << step
            << ": GoodCount broke without a correcting child";
      }
    }
  }
}

}  // namespace
}  // namespace snappif::pif
