// Shared helpers for hand-built PIF configurations in unit tests.
#pragma once

#include "graph/graph.hpp"
#include "pif/protocol.hpp"
#include "sim/configuration.hpp"

namespace snappif::pif::testfix {

/// Shorthand state builder.
inline State st(Phase pif, bool fok, std::uint32_t count, std::uint32_t level,
                sim::ProcessorId parent) {
  State s;
  s.pif = pif;
  s.fok = fok;
  s.count = count;
  s.level = level;
  s.parent = parent;
  return s;
}

inline State root_st(Phase pif, bool fok, std::uint32_t count) {
  return st(pif, fok, count, 0, kNoParent);
}

/// A configuration where every processor is in the clean C state.
inline sim::Configuration<State> clean_config(const graph::Graph& g,
                                              const PifProtocol& protocol) {
  sim::Configuration<State> c(g, protocol.initial_state(0));
  for (sim::ProcessorId p = 0; p < g.n(); ++p) {
    c.state(p) = protocol.initial_state(p);
  }
  return c;
}

}  // namespace snappif::pif::testfix
