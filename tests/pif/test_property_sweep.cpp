// Large randomized property sweep: 60 random connected graphs (trees,
// sparse, dense) x random seeds, checking on each the full property bundle —
// snap first cycle, theorem bounds, chordless paths, invariant preservation.
// This is the breadth counterpart to the depth-first exhaustive checks.
#include <gtest/gtest.h>

#include "analysis/runners.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "pif/faults.hpp"

namespace snappif::pif {
namespace {

using analysis::RunConfig;

struct RandomInstance {
  std::string name;
  graph::Graph graph;
  std::uint64_t seed;
};

std::vector<RandomInstance> make_instances() {
  std::vector<RandomInstance> out;
  util::Rng rng(0xC0FFEE);
  for (int i = 0; i < 20; ++i) {
    const auto n = static_cast<graph::NodeId>(5 + rng.below(20));
    out.push_back({"tree" + std::to_string(i), graph::make_random_tree(n, rng()),
                   rng()});
  }
  for (int i = 0; i < 20; ++i) {
    const auto n = static_cast<graph::NodeId>(5 + rng.below(20));
    out.push_back({"sparse" + std::to_string(i),
                   graph::make_random_connected(n, n / 2, rng()), rng()});
  }
  for (int i = 0; i < 20; ++i) {
    const auto n = static_cast<graph::NodeId>(5 + rng.below(15));
    out.push_back({"dense" + std::to_string(i),
                   graph::make_random_connected(n, 3 * n, rng()), rng()});
  }
  return out;
}

class PropertySweep : public ::testing::TestWithParam<RandomInstance> {};

TEST_P(PropertySweep, FullBundle) {
  const RandomInstance& inst = GetParam();
  ASSERT_TRUE(graph::is_connected(inst.graph));
  const std::uint32_t l_max = inst.graph.n() - 1;

  // 1. Snap property from an adversarial start.
  {
    RunConfig rc;
    rc.corruption = CorruptionKind::kAdversarialMix;
    rc.seed = inst.seed;
    rc.policy = sim::ActionPolicy::kRandomEnabled;
    const auto r = analysis::check_snap_first_cycle(inst.graph, rc);
    ASSERT_TRUE(r.cycle_completed) << inst.name;
    EXPECT_TRUE(r.ok()) << inst.name;
  }
  // 2. Theorem 1 / composed Theorem 2 bounds.
  {
    RunConfig rc;
    rc.corruption = CorruptionKind::kUniformRandom;
    rc.seed = inst.seed ^ 0xABCD;
    const auto r = analysis::measure_stabilization(inst.graph, rc);
    ASSERT_TRUE(r.ok) << inst.name;
    EXPECT_LE(r.rounds_to_all_normal, 3u * l_max + 3u) << inst.name;
    EXPECT_LE(r.rounds_to_sbn, 9u * l_max + 8u) << inst.name;
  }
  // 3. Theorem 4: cycle bound + chordless tree.
  {
    RunConfig rc;
    rc.seed = inst.seed ^ 0x1234;
    rc.daemon = sim::DaemonKind::kCentralRandom;
    const auto r = analysis::run_cycle_from_sbn(inst.graph, rc);
    ASSERT_TRUE(r.ok) << inst.name;
    EXPECT_TRUE(r.chordless) << inst.name;
    EXPECT_LE(r.rounds, 5u * r.height + 5u) << inst.name;
    EXPECT_LE(r.height, inst.graph.n() - 1) << inst.name;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, PropertySweep,
                         ::testing::ValuesIn(make_instances()),
                         [](const ::testing::TestParamInfo<RandomInstance>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace snappif::pif
