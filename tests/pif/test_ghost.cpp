// Unit tests for the ghost-variable specification oracle (PIF1/PIF2
// bookkeeping of Definition 2).
#include <gtest/gtest.h>

#include "fixtures.hpp"
#include "graph/generators.hpp"
#include "pif/ghost.hpp"
#include "pif/instrument.hpp"
#include "sim/simulator.hpp"

namespace snappif::pif {
namespace {

using testfix::clean_config;

TEST(Ghost, TracksOneCleanCycle) {
  const auto g = graph::make_path(3);
  PifProtocol protocol(g, Params::for_graph(g));
  sim::Simulator<PifProtocol> sim(protocol, g, 5);
  GhostTracker tracker(g, 0);
  attach(sim, tracker);
  sim::SynchronousDaemon daemon;

  EXPECT_FALSE(tracker.cycle_active());
  EXPECT_EQ(tracker.cycles_completed(), 0u);

  // Step 1: the root broadcasts.
  ASSERT_TRUE(sim.step(daemon));
  EXPECT_TRUE(tracker.cycle_active());
  EXPECT_EQ(tracker.current_message(), 1u);
  EXPECT_TRUE(tracker.received_current(0));
  EXPECT_FALSE(tracker.received_current(2));

  // Run to completion of the first cycle.
  auto result = sim.run_until(
      daemon,
      [&](const sim::Configuration<State>&) {
        return tracker.cycles_completed() >= 1;
      },
      sim::RunLimits{.max_steps = 200});
  ASSERT_EQ(result.reason, sim::StopReason::kPredicate);
  const CycleVerdict& verdict = tracker.last_cycle();
  EXPECT_TRUE(verdict.pif1);
  EXPECT_TRUE(verdict.pif2);
  EXPECT_FALSE(verdict.aborted);
  EXPECT_TRUE(verdict.ok());
  EXPECT_EQ(verdict.message, 1u);
  EXPECT_EQ(verdict.tree_height, 2u);  // path of 3 rooted at the end
  EXPECT_GT(verdict.feedback_step, verdict.broadcast_step);
}

TEST(Ghost, MessageIdsAreFreshPerCycle) {
  const auto g = graph::make_path(2);
  PifProtocol protocol(g, Params::for_graph(g));
  sim::Simulator<PifProtocol> sim(protocol, g, 6);
  GhostTracker tracker(g, 0);
  attach(sim, tracker);
  sim::SynchronousDaemon daemon;
  auto result = sim.run_until(
      daemon,
      [&](const sim::Configuration<State>&) {
        return tracker.cycles_completed() >= 3;
      },
      sim::RunLimits{.max_steps = 500});
  ASSERT_EQ(result.reason, sim::StopReason::kPredicate);
  ASSERT_EQ(tracker.verdicts().size(), 3u);
  EXPECT_EQ(tracker.verdicts()[0].message, 1u);
  EXPECT_EQ(tracker.verdicts()[1].message, 2u);
  EXPECT_EQ(tracker.verdicts()[2].message, 3u);
  for (const auto& verdict : tracker.verdicts()) {
    EXPECT_TRUE(verdict.ok());
  }
}

TEST(Ghost, StaleHoldersAreNotReceivers) {
  // Drive the tracker manually: a processor that never B-joins during the
  // cycle must fail PIF1 at the root's F-action.
  const auto g = graph::make_path(3);
  PifProtocol protocol(g, Params::for_graph(g));
  GhostTracker tracker(g, 0);
  auto c = clean_config(g, protocol);

  auto fire = [&](sim::ProcessorId p, sim::ActionId a, const State& after) {
    tracker.on_apply(p, a, after);
  };

  State root_b = protocol.initial_state(0);
  root_b.pif = Phase::kB;
  fire(0, kBAction, root_b);
  ASSERT_TRUE(tracker.cycle_active());

  // Only processor 1 joins; 2 never does.
  State p1 = protocol.initial_state(1);
  p1.pif = Phase::kB;
  p1.parent = 0;
  fire(1, kBAction, p1);
  EXPECT_TRUE(tracker.received_current(1));
  EXPECT_FALSE(tracker.received_current(2));

  State p1f = p1;
  p1f.pif = Phase::kF;
  fire(1, kFAction, p1f);
  EXPECT_TRUE(tracker.acked_current(1));

  State root_f = root_b;
  root_f.pif = Phase::kF;
  fire(0, kFAction, root_f);
  ASSERT_EQ(tracker.cycles_completed(), 1u);
  EXPECT_FALSE(tracker.last_cycle().pif1);
  EXPECT_FALSE(tracker.last_cycle().pif2);
}

TEST(Ghost, JoiningViaStaleParentDoesNotCountAsReceipt) {
  const auto g = graph::make_path(3);
  PifProtocol protocol(g, Params::for_graph(g));
  GhostTracker tracker(g, 0);
  auto c = clean_config(g, protocol);
  auto fire = [&](sim::ProcessorId p, sim::ActionId a, const State& after) {
    tracker.on_apply(p, a, after);
  };

  State root_b = protocol.initial_state(0);
  root_b.pif = Phase::kB;
  fire(0, kBAction, root_b);

  // Processor 2 joins *processor 1* which never received the current
  // message (its ghost is stale/zero).
  State p2 = protocol.initial_state(2);
  p2.pif = Phase::kB;
  p2.parent = 1;
  fire(2, kBAction, p2);
  EXPECT_FALSE(tracker.received_current(2));
  // Its later F-action must not count as an acknowledgment of m.
  State p2f = p2;
  p2f.pif = Phase::kF;
  fire(2, kFAction, p2f);
  EXPECT_FALSE(tracker.acked_current(2));
}

TEST(Ghost, RootAbortRecordsAbortedVerdict) {
  const auto g = graph::make_path(2);
  PifProtocol protocol(g, Params::for_graph(g));
  GhostTracker tracker(g, 0);
  auto c = clean_config(g, protocol);
  State root_b = protocol.initial_state(0);
  root_b.pif = Phase::kB;
  tracker.on_apply(0, kBAction, root_b);
  State root_c = root_b;
  root_c.pif = Phase::kC;
  tracker.on_apply(0, kBCorrection, root_c);
  ASSERT_EQ(tracker.cycles_completed(), 1u);
  EXPECT_TRUE(tracker.last_cycle().aborted);
  EXPECT_FALSE(tracker.last_cycle().ok());
  EXPECT_FALSE(tracker.cycle_active());
}

TEST(Ghost, ResetClearsEverything) {
  const auto g = graph::make_path(2);
  PifProtocol protocol(g, Params::for_graph(g));
  GhostTracker tracker(g, 0);
  auto c = clean_config(g, protocol);
  State root_b = protocol.initial_state(0);
  root_b.pif = Phase::kB;
  tracker.on_apply(0, kBAction, root_b);
  tracker.reset();
  EXPECT_FALSE(tracker.cycle_active());
  EXPECT_EQ(tracker.cycles_completed(), 0u);
  EXPECT_EQ(tracker.current_message(), 0u);
  EXPECT_EQ(tracker.message_of(0), 0u);
}

}  // namespace
}  // namespace snappif::pif
