// Targeted single-predicate corruptions: break exactly one local-checking
// condition at exactly one processor and verify the intended correction
// fires and repairs it — the finest-grained view of Section 3.2's error
// detection.
#include <gtest/gtest.h>

#include "fixtures.hpp"
#include "graph/generators.hpp"
#include "pif/checker.hpp"
#include "sim/simulator.hpp"

namespace snappif::pif {
namespace {

using testfix::root_st;
using testfix::st;

/// Drives a mid-broadcast configuration on the path 0-1-2-3 (root 0),
/// everyone in B with consistent levels and counts.
class TargetedCorruption : public ::testing::Test {
 protected:
  TargetedCorruption()
      : g_(graph::make_path(4)),
        protocol_(g_, Params::for_graph(g_)),
        sim_(protocol_, g_, 3) {
    sim_.set_state(0, root_st(Phase::kB, false, 3));  // count still in flight
    sim_.set_state(1, st(Phase::kB, false, 3, 1, 0));
    sim_.set_state(2, st(Phase::kB, false, 2, 2, 1));
    sim_.set_state(3, st(Phase::kB, false, 1, 3, 2));
  }

  [[nodiscard]] std::vector<sim::ProcessorId> abnormal() {
    Checker checker(sim_.protocol());
    return checker.abnormal(sim_.config());
  }

  graph::Graph g_;
  PifProtocol protocol_;
  sim::Simulator<PifProtocol> sim_;
};

TEST_F(TargetedCorruption, BaselineIsFullyNormal) {
  EXPECT_TRUE(abnormal().empty());
}

TEST_F(TargetedCorruption, BreakGoodLevelOnly) {
  auto s = sim_.config().state(2);
  s.level = 3;  // parent is at level 1: GoodLevel(2) fails
  sim_.set_state(2, s);
  EXPECT_FALSE(protocol_.good_level(sim_.config(), 2));
  EXPECT_TRUE(protocol_.good_pif(sim_.config(), 2));
  // The lie radiates: 2 leaves 1's Sum_Set (wrong level), so GoodCount(1)
  // fails too (Lemma 2's mechanism), and 3's level no longer matches 2's.
  EXPECT_EQ(abnormal(), (std::vector<sim::ProcessorId>{1, 2, 3}));
  EXPECT_TRUE(protocol_.enabled(sim_.config(), 2, kBCorrection));
}

TEST_F(TargetedCorruption, BreakGoodFokOnly) {
  auto s = sim_.config().state(2);
  s.fok = true;  // parent's Fok is false: GoodFok(2) fails
  sim_.set_state(2, s);
  EXPECT_FALSE(protocol_.good_fok(sim_.config(), 2));
  EXPECT_TRUE(protocol_.good_level(sim_.config(), 2));
  EXPECT_TRUE(protocol_.enabled(sim_.config(), 2, kBCorrection));
}

TEST_F(TargetedCorruption, BreakGoodCountOnly) {
  auto s = sim_.config().state(3);
  s.count = 2;  // a leaf's Sum is 1: GoodCount(3) fails
  sim_.set_state(3, s);
  EXPECT_FALSE(protocol_.good_count(sim_.config(), 3));
  EXPECT_TRUE(protocol_.good_level(sim_.config(), 3));
  EXPECT_TRUE(protocol_.enabled(sim_.config(), 3, kBCorrection));
}

TEST_F(TargetedCorruption, BreakGoodPifOnly) {
  auto s = sim_.config().state(2);
  s.pif = Phase::kF;  // parent still B without Fok: GoodFok clause 2 fails
  sim_.set_state(2, s);
  // The F-flavored abnormality routes through F-correction.
  EXPECT_TRUE(protocol_.enabled(sim_.config(), 2, kFCorrection));
  EXPECT_FALSE(protocol_.enabled(sim_.config(), 2, kBCorrection));
}

TEST_F(TargetedCorruption, RootCountLieDetected) {
  auto s = sim_.config().state(0);
  s.count = 4;
  s.fok = false;  // Count = N without Fok: the repaired GoodFok(r) fails
  sim_.set_state(0, s);
  EXPECT_FALSE(protocol_.good_fok(sim_.config(), 0));
  EXPECT_TRUE(protocol_.enabled(sim_.config(), 0, kBCorrection));
}

TEST_F(TargetedCorruption, EachSingleCorruptionHealsLocally) {
  // Whatever single-processor corruption is injected mid-broadcast, the
  // system returns to a fully normal configuration and eventually to SBN.
  util::Rng rng(17);
  Checker checker(sim_.protocol());
  for (int trial = 0; trial < 40; ++trial) {
    // Reset the broadcast scenario.
    sim_.set_state(0, root_st(Phase::kB, false, 3));  // count still in flight
    sim_.set_state(1, st(Phase::kB, false, 3, 1, 0));
    sim_.set_state(2, st(Phase::kB, false, 2, 2, 1));
    sim_.set_state(3, st(Phase::kB, false, 1, 3, 2));
    const auto victim = static_cast<sim::ProcessorId>(rng.below(4));
    sim_.set_state(victim, protocol_.random_state(victim, rng));
    auto daemon = sim::make_daemon(sim::DaemonKind::kDistributedRandom);
    auto r = sim_.run_until(
        *daemon,
        [&](const sim::Configuration<State>& c) {
          return checker.classify(c).sbn;
        },
        sim::RunLimits{.max_steps = 100000});
    ASSERT_EQ(r.reason, sim::StopReason::kPredicate) << "trial " << trial;
  }
}

}  // namespace
}  // namespace snappif::pif
