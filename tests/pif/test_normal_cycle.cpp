// Integration: full PIF cycles from the normal starting configuration on
// every topology family, under every daemon.  Exercises Theorem 4's setting.
#include <gtest/gtest.h>

#include "analysis/runners.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "pif/checker.hpp"
#include "pif/instrument.hpp"
#include "sim/simulator.hpp"

namespace snappif {
namespace {

using analysis::CycleResult;
using analysis::RunConfig;

TEST(NormalCycle, SingleProcessorNetworkCycles) {
  const graph::Graph g(1);
  RunConfig rc;
  rc.daemon = sim::DaemonKind::kSynchronous;
  const CycleResult result = analysis::run_cycle_from_sbn(g, rc);
  EXPECT_TRUE(result.ok);
  EXPECT_TRUE(result.pif1);
  EXPECT_TRUE(result.pif2);
  EXPECT_EQ(result.height, 0u);
}

TEST(NormalCycle, TwoProcessorsCycle) {
  const graph::Graph g = graph::make_path(2);
  RunConfig rc;
  rc.daemon = sim::DaemonKind::kSynchronous;
  const CycleResult result = analysis::run_cycle_from_sbn(g, rc);
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.height, 1u);
}

TEST(NormalCycle, PathDetailedPhases) {
  // On a path rooted at one end the wave sweeps down and back; verify the
  // milestone configurations appear in order.
  const graph::Graph g = graph::make_path(5);
  pif::PifProtocol protocol(g, pif::Params::for_graph(g));
  sim::Simulator<pif::PifProtocol> sim(protocol, g, 7);
  pif::Checker checker(sim.protocol());
  sim::SynchronousDaemon daemon;

  // Initially SBN.
  EXPECT_TRUE(checker.classify(sim.config()).sbn);

  // Run until EBN (everyone broadcasting, Fok_r still false).
  bool saw_ebn = false;
  for (int step = 0; step < 200 && !saw_ebn; ++step) {
    ASSERT_TRUE(sim.step(daemon));
    saw_ebn = checker.classify(sim.config()).ebn;
  }
  EXPECT_TRUE(saw_ebn);

  // Then EFN (root in feedback, everything normal).
  bool saw_efn = false;
  for (int step = 0; step < 200 && !saw_efn; ++step) {
    ASSERT_TRUE(sim.step(daemon));
    saw_efn = checker.classify(sim.config()).efn;
  }
  EXPECT_TRUE(saw_efn);

  // And back to SBN.
  bool saw_sbn = false;
  for (int step = 0; step < 200 && !saw_sbn; ++step) {
    ASSERT_TRUE(sim.step(daemon));
    saw_sbn = checker.classify(sim.config()).sbn;
  }
  EXPECT_TRUE(saw_sbn);
}

struct CycleCase {
  std::string name;
  graph::Graph graph;
  sim::DaemonKind daemon;
};

class CycleSuite : public ::testing::TestWithParam<CycleCase> {};

TEST_P(CycleSuite, CompletesCorrectly) {
  const CycleCase& cs = GetParam();
  RunConfig rc;
  rc.daemon = cs.daemon;
  rc.seed = 0x5111 + cs.graph.n();
  const auto results = analysis::run_cycles_from_sbn(cs.graph, rc, 3);
  ASSERT_EQ(results.size(), 3u);
  for (const CycleResult& r : results) {
    EXPECT_TRUE(r.ok);
    EXPECT_TRUE(r.pif1);
    EXPECT_TRUE(r.pif2);
    EXPECT_TRUE(r.chordless);
    // Theorem 4: at most 5h + 5 rounds per cycle.
    EXPECT_LE(r.rounds, 5u * r.height + 5u);
    // h is at least the eccentricity of the root (every processor joined).
    if (cs.graph.n() > 1) {
      EXPECT_GE(r.height, 1u);
    }
  }
}

std::vector<CycleCase> make_cases() {
  std::vector<CycleCase> cases;
  const auto suite = graph::standard_suite(12, /*seed=*/99);
  for (const auto& named : suite) {
    for (sim::DaemonKind daemon : sim::standard_daemon_kinds()) {
      cases.push_back({named.name + "_" +
                           std::string(sim::daemon_kind_name(daemon)),
                       named.graph, daemon});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllTopologiesAllDaemons, CycleSuite,
                         ::testing::ValuesIn(make_cases()),
                         [](const ::testing::TestParamInfo<CycleCase>& info) {
                           std::string name = info.param.name;
                           for (char& ch : name) {
                             if (ch == '-') {
                               ch = '_';
                             }
                           }
                           return name;
                         });

}  // namespace
}  // namespace snappif
