// WaveAggregator: global folds over one PIF cycle (the paper's "distributed
// infimum function computations" / snapshot use-case).
#include <gtest/gtest.h>

#include "analysis/runners.hpp"
#include "graph/generators.hpp"
#include "pif/aggregate.hpp"
#include "pif/faults.hpp"
#include "pif/instrument.hpp"
#include "sim/simulator.hpp"

namespace snappif::pif {
namespace {

struct AggFixture {
  explicit AggFixture(const graph::Graph& graph, std::uint64_t seed = 1)
      : g(graph),
        protocol(g, Params::for_graph(g)),
        sim(protocol, g, seed),
        tracker(g, 0),
        values(g.n()) {
    for (sim::ProcessorId p = 0; p < g.n(); ++p) {
      values[p] = 100 + p;  // distinct, checkable contributions
    }
  }

  const graph::Graph& g;
  PifProtocol protocol;
  sim::Simulator<PifProtocol> sim;
  GhostTracker tracker;
  std::vector<std::int64_t> values;
};

TEST(Aggregate, SumOverOneCycle) {
  const auto g = graph::make_grid(3, 3);
  AggFixture fx(g);
  WaveAggregator<std::int64_t> agg(
      g, 0, [&](sim::ProcessorId p) { return fx.values[p]; },
      [](const std::int64_t& a, const std::int64_t& b) { return a + b; });
  attach(fx.sim, fx.tracker, agg);
  sim::SynchronousDaemon daemon;
  auto r = fx.sim.run_until(
      daemon, [&](const auto&) { return agg.results_computed() >= 1; },
      sim::RunLimits{.max_steps = 1000});
  ASSERT_EQ(r.reason, sim::StopReason::kPredicate);
  std::int64_t expected = 0;
  for (std::int64_t v : fx.values) {
    expected += v;
  }
  ASSERT_TRUE(agg.result().has_value());
  EXPECT_EQ(*agg.result(), expected);
}

TEST(Aggregate, MinAndMaxFolds) {
  const auto g = graph::make_random_connected(12, 8, 3);
  {
    AggFixture fx(g);
    WaveAggregator<std::int64_t> agg(
        g, 0, [&](sim::ProcessorId p) { return fx.values[p]; },
        [](const std::int64_t& a, const std::int64_t& b) {
          return std::min(a, b);
        });
    attach(fx.sim, fx.tracker, agg);
    auto daemon = sim::make_daemon(sim::DaemonKind::kCentralRandom);
    auto r = fx.sim.run_until(
        *daemon, [&](const auto&) { return agg.results_computed() >= 1; },
        sim::RunLimits{.max_steps = 100000});
    ASSERT_EQ(r.reason, sim::StopReason::kPredicate);
    EXPECT_EQ(*agg.result(), 100);  // min of 100..111
  }
  {
    AggFixture fx(g, 7);
    WaveAggregator<std::int64_t> agg(
        g, 0, [&](sim::ProcessorId p) { return fx.values[p]; },
        [](const std::int64_t& a, const std::int64_t& b) {
          return std::max(a, b);
        });
    attach(fx.sim, fx.tracker, agg);
    auto daemon = sim::make_daemon(sim::DaemonKind::kDistributedRandom);
    auto r = fx.sim.run_until(
        *daemon, [&](const auto&) { return agg.results_computed() >= 1; },
        sim::RunLimits{.max_steps = 100000});
    ASSERT_EQ(r.reason, sim::StopReason::kPredicate);
    EXPECT_EQ(*agg.result(), 111);
  }
}

TEST(Aggregate, CorrectOnEveryTopologyAndDaemon) {
  for (const auto& named : graph::standard_suite(10, 17)) {
    for (sim::DaemonKind kind : sim::standard_daemon_kinds()) {
      AggFixture fx(named.graph, 23);
      WaveAggregator<std::int64_t> agg(
          named.graph, 0, [&](sim::ProcessorId p) { return fx.values[p]; },
          [](const std::int64_t& a, const std::int64_t& b) { return a + b; });
      attach(fx.sim, fx.tracker, agg);
      auto daemon = sim::make_daemon(kind);
      auto r = fx.sim.run_until(
          *daemon, [&](const auto&) { return agg.results_computed() >= 2; },
          sim::RunLimits{.max_steps = 200000});
      ASSERT_EQ(r.reason, sim::StopReason::kPredicate)
          << named.name << "/" << sim::daemon_kind_name(kind);
      std::int64_t expected = 0;
      for (std::int64_t v : fx.values) {
        expected += v;
      }
      EXPECT_EQ(*agg.result(), expected)
          << named.name << "/" << sim::daemon_kind_name(kind);
    }
  }
}

TEST(Aggregate, FirstWaveAfterCorruptionAggregatesEveryone) {
  // The snap payoff: even the FIRST wave from an adversarial configuration
  // produces the full-network aggregate.
  const auto g = graph::make_random_connected(14, 10, 5);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    AggFixture fx(g, seed);
    WaveAggregator<std::int64_t> agg(
        g, 0, [&](sim::ProcessorId p) { return fx.values[p]; },
        [](const std::int64_t& a, const std::int64_t& b) { return a + b; });
    attach(fx.sim, fx.tracker, agg);
    util::Rng rng(seed * 37);
    apply_corruption(fx.sim, CorruptionKind::kAdversarialMix, rng);
    auto daemon = sim::make_daemon(sim::DaemonKind::kDistributedRandom);
    auto r = fx.sim.run_until(
        *daemon, [&](const auto&) { return agg.results_computed() >= 1; },
        sim::RunLimits{.max_steps = 400000});
    ASSERT_EQ(r.reason, sim::StopReason::kPredicate) << "seed " << seed;
    std::int64_t expected = 0;
    for (std::int64_t v : fx.values) {
      expected += v;
    }
    EXPECT_EQ(*agg.result(), expected) << "seed " << seed;
    // The single-contribution invariant the fold relies on.
    EXPECT_EQ(fx.tracker.last_cycle().max_receives, 1u) << "seed " << seed;
    EXPECT_EQ(fx.tracker.last_cycle().max_acks, 1u) << "seed " << seed;
  }
}

TEST(Aggregate, SnapshotValuesAreJoinTimeValues) {
  // Contributions are sampled when the processor joins the wave, so changes
  // after joining do not leak into the running wave's aggregate.
  const auto g = graph::make_path(4);
  AggFixture fx(g);
  WaveAggregator<std::int64_t> agg(
      g, 0, [&](sim::ProcessorId p) { return fx.values[p]; },
      [](const std::int64_t& a, const std::int64_t& b) { return a + b; });
  attach(fx.sim, fx.tracker, agg);
  sim::SynchronousDaemon daemon;
  // Let the broadcast pass processor 1, then mutate its value.
  while (fx.sim.config().state(1).pif != Phase::kB) {
    ASSERT_TRUE(fx.sim.step(daemon));
  }
  const std::int64_t expected = 100 + 101 + 102 + 103;
  fx.values[1] = 9999;  // too late: 1 already contributed 101
  auto r = fx.sim.run_until(
      daemon, [&](const auto&) { return agg.results_computed() >= 1; },
      sim::RunLimits{.max_steps = 1000});
  ASSERT_EQ(r.reason, sim::StopReason::kPredicate);
  EXPECT_EQ(*agg.result(), expected);
}

TEST(Aggregate, SingleProcessorNetwork) {
  const graph::Graph g(1);
  AggFixture fx(g);
  WaveAggregator<std::int64_t> agg(
      g, 0, [&](sim::ProcessorId p) { return fx.values[p]; },
      [](const std::int64_t& a, const std::int64_t& b) { return a + b; });
  attach(fx.sim, fx.tracker, agg);
  sim::SynchronousDaemon daemon;
  auto r = fx.sim.run_until(
      daemon, [&](const auto&) { return agg.results_computed() >= 1; },
      sim::RunLimits{.max_steps = 100});
  ASSERT_EQ(r.reason, sim::StopReason::kPredicate);
  EXPECT_EQ(*agg.result(), 100);
}

}  // namespace
}  // namespace snappif::pif
