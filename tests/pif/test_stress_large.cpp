// Larger-scale sanity: N = 256.  Nothing in the implementation depends on N
// beyond memory; these tests pin that claim inside the suite (the benches
// sweep up to 128).
#include <gtest/gtest.h>

#include "analysis/runners.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace snappif::pif {
namespace {

using analysis::RunConfig;

TEST(StressLarge, CycleOnRing256) {
  const auto g = graph::make_cycle(256);
  RunConfig rc;
  rc.daemon = sim::DaemonKind::kSynchronous;
  const auto r = analysis::run_cycle_from_sbn(g, rc);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.height, 128u);  // root eccentricity on C_256
  EXPECT_LE(r.rounds, 5u * r.height + 5);
  EXPECT_TRUE(r.chordless);
}

TEST(StressLarge, SnapOnRandom256) {
  const auto g = graph::make_random_connected(256, 300, 424242);
  RunConfig rc;
  rc.corruption = CorruptionKind::kAdversarialMix;
  rc.seed = 7;
  rc.max_steps = 8'000'000;
  const auto r = analysis::check_snap_first_cycle(g, rc);
  ASSERT_TRUE(r.cycle_completed);
  EXPECT_TRUE(r.ok());
}

TEST(StressLarge, RecoveryBoundsOnGrid256) {
  const auto g = graph::make_grid(16, 16);
  RunConfig rc;
  rc.corruption = CorruptionKind::kAdversarialMix;
  rc.seed = 11;
  rc.max_steps = 8'000'000;
  const auto r = analysis::measure_stabilization(g, rc);
  ASSERT_TRUE(r.ok);
  EXPECT_LE(r.rounds_to_all_normal, 3u * r.l_max + 3);
  EXPECT_LE(r.rounds_to_sbn, 9u * r.l_max + 8);
}

}  // namespace
}  // namespace snappif::pif
