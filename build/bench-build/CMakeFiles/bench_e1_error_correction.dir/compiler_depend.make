# Empty compiler generated dependencies file for bench_e1_error_correction.
# This may be replaced when dependencies are built.
