file(REMOVE_RECURSE
  "../bench/bench_e1_error_correction"
  "../bench/bench_e1_error_correction.pdb"
  "CMakeFiles/bench_e1_error_correction.dir/bench_e1_error_correction.cpp.o"
  "CMakeFiles/bench_e1_error_correction.dir/bench_e1_error_correction.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e1_error_correction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
