# Empty compiler generated dependencies file for bench_e17_fault_containment.
# This may be replaced when dependencies are built.
