file(REMOVE_RECURSE
  "../bench/bench_e17_fault_containment"
  "../bench/bench_e17_fault_containment.pdb"
  "CMakeFiles/bench_e17_fault_containment.dir/bench_e17_fault_containment.cpp.o"
  "CMakeFiles/bench_e17_fault_containment.dir/bench_e17_fault_containment.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e17_fault_containment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
