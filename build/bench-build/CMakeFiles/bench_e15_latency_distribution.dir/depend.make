# Empty dependencies file for bench_e15_latency_distribution.
# This may be replaced when dependencies are built.
