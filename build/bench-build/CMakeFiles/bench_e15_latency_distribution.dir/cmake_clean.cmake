file(REMOVE_RECURSE
  "../bench/bench_e15_latency_distribution"
  "../bench/bench_e15_latency_distribution.pdb"
  "CMakeFiles/bench_e15_latency_distribution.dir/bench_e15_latency_distribution.cpp.o"
  "CMakeFiles/bench_e15_latency_distribution.dir/bench_e15_latency_distribution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_latency_distribution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
