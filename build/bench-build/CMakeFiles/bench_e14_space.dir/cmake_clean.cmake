file(REMOVE_RECURSE
  "../bench/bench_e14_space"
  "../bench/bench_e14_space.pdb"
  "CMakeFiles/bench_e14_space.dir/bench_e14_space.cpp.o"
  "CMakeFiles/bench_e14_space.dir/bench_e14_space.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
