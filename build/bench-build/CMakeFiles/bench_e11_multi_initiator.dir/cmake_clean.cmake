file(REMOVE_RECURSE
  "../bench/bench_e11_multi_initiator"
  "../bench/bench_e11_multi_initiator.pdb"
  "CMakeFiles/bench_e11_multi_initiator.dir/bench_e11_multi_initiator.cpp.o"
  "CMakeFiles/bench_e11_multi_initiator.dir/bench_e11_multi_initiator.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_multi_initiator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
