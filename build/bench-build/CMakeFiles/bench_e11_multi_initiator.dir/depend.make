# Empty dependencies file for bench_e11_multi_initiator.
# This may be replaced when dependencies are built.
