file(REMOVE_RECURSE
  "../bench/bench_e7_ablation_potential"
  "../bench/bench_e7_ablation_potential.pdb"
  "CMakeFiles/bench_e7_ablation_potential.dir/bench_e7_ablation_potential.cpp.o"
  "CMakeFiles/bench_e7_ablation_potential.dir/bench_e7_ablation_potential.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_ablation_potential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
