# Empty dependencies file for bench_e7_ablation_potential.
# This may be replaced when dependencies are built.
