# Empty compiler generated dependencies file for bench_e9_daemon_sensitivity.
# This may be replaced when dependencies are built.
