# Empty compiler generated dependencies file for bench_e8_vs_treepif.
# This may be replaced when dependencies are built.
