file(REMOVE_RECURSE
  "../bench/bench_e8_vs_treepif"
  "../bench/bench_e8_vs_treepif.pdb"
  "CMakeFiles/bench_e8_vs_treepif.dir/bench_e8_vs_treepif.cpp.o"
  "CMakeFiles/bench_e8_vs_treepif.dir/bench_e8_vs_treepif.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_vs_treepif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
