# Empty dependencies file for bench_e4_snap_property.
# This may be replaced when dependencies are built.
