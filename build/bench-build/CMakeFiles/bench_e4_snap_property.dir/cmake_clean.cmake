file(REMOVE_RECURSE
  "../bench/bench_e4_snap_property"
  "../bench/bench_e4_snap_property.pdb"
  "CMakeFiles/bench_e4_snap_property.dir/bench_e4_snap_property.cpp.o"
  "CMakeFiles/bench_e4_snap_property.dir/bench_e4_snap_property.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_snap_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
