# Empty compiler generated dependencies file for bench_e2_glt_formation.
# This may be replaced when dependencies are built.
