file(REMOVE_RECURSE
  "../bench/bench_e2_glt_formation"
  "../bench/bench_e2_glt_formation.pdb"
  "CMakeFiles/bench_e2_glt_formation.dir/bench_e2_glt_formation.cpp.o"
  "CMakeFiles/bench_e2_glt_formation.dir/bench_e2_glt_formation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e2_glt_formation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
