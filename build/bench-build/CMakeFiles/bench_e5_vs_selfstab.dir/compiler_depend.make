# Empty compiler generated dependencies file for bench_e5_vs_selfstab.
# This may be replaced when dependencies are built.
