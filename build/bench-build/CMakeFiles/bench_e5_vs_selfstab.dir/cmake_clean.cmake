file(REMOVE_RECURSE
  "../bench/bench_e5_vs_selfstab"
  "../bench/bench_e5_vs_selfstab.pdb"
  "CMakeFiles/bench_e5_vs_selfstab.dir/bench_e5_vs_selfstab.cpp.o"
  "CMakeFiles/bench_e5_vs_selfstab.dir/bench_e5_vs_selfstab.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e5_vs_selfstab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
