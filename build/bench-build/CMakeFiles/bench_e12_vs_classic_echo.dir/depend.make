# Empty dependencies file for bench_e12_vs_classic_echo.
# This may be replaced when dependencies are built.
