file(REMOVE_RECURSE
  "../bench/bench_e12_vs_classic_echo"
  "../bench/bench_e12_vs_classic_echo.pdb"
  "CMakeFiles/bench_e12_vs_classic_echo.dir/bench_e12_vs_classic_echo.cpp.o"
  "CMakeFiles/bench_e12_vs_classic_echo.dir/bench_e12_vs_classic_echo.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_vs_classic_echo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
