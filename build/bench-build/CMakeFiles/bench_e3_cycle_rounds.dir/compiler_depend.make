# Empty compiler generated dependencies file for bench_e3_cycle_rounds.
# This may be replaced when dependencies are built.
