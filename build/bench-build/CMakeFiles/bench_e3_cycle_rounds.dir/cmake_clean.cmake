file(REMOVE_RECURSE
  "../bench/bench_e3_cycle_rounds"
  "../bench/bench_e3_cycle_rounds.pdb"
  "CMakeFiles/bench_e3_cycle_rounds.dir/bench_e3_cycle_rounds.cpp.o"
  "CMakeFiles/bench_e3_cycle_rounds.dir/bench_e3_cycle_rounds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_cycle_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
