file(REMOVE_RECURSE
  "../bench/bench_e16_atomicity"
  "../bench/bench_e16_atomicity.pdb"
  "CMakeFiles/bench_e16_atomicity.dir/bench_e16_atomicity.cpp.o"
  "CMakeFiles/bench_e16_atomicity.dir/bench_e16_atomicity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e16_atomicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
