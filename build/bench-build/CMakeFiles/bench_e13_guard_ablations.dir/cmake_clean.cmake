file(REMOVE_RECURSE
  "../bench/bench_e13_guard_ablations"
  "../bench/bench_e13_guard_ablations.pdb"
  "CMakeFiles/bench_e13_guard_ablations.dir/bench_e13_guard_ablations.cpp.o"
  "CMakeFiles/bench_e13_guard_ablations.dir/bench_e13_guard_ablations.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_guard_ablations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
