# Empty dependencies file for bench_e13_guard_ablations.
# This may be replaced when dependencies are built.
