# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(tool_fuzz_smoke "/root/repo/build/tools/snappif_fuzz" "--iterations=50" "--max-n=12")
set_tests_properties(tool_fuzz_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_explore_smoke "/root/repo/build/tools/snappif_explore" "--topology=path2" "--liveness")
set_tests_properties(tool_explore_smoke PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;12;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(tool_explore_finds_literal_deadlock "/root/repo/build/tools/snappif_explore" "--topology=path3" "--literal-prepotential")
set_tests_properties(tool_explore_finds_literal_deadlock PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;13;add_test;/root/repo/tools/CMakeLists.txt;0;")
