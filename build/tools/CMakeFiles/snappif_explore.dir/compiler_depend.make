# Empty compiler generated dependencies file for snappif_explore.
# This may be replaced when dependencies are built.
