file(REMOVE_RECURSE
  "CMakeFiles/snappif_explore.dir/snappif_explore.cpp.o"
  "CMakeFiles/snappif_explore.dir/snappif_explore.cpp.o.d"
  "snappif_explore"
  "snappif_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snappif_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
