# Empty dependencies file for snappif_fuzz.
# This may be replaced when dependencies are built.
