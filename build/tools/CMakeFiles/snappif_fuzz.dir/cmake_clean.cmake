file(REMOVE_RECURSE
  "CMakeFiles/snappif_fuzz.dir/snappif_fuzz.cpp.o"
  "CMakeFiles/snappif_fuzz.dir/snappif_fuzz.cpp.o.d"
  "snappif_fuzz"
  "snappif_fuzz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snappif_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
