file(REMOVE_RECURSE
  "CMakeFiles/snappif_util.dir/cli.cpp.o"
  "CMakeFiles/snappif_util.dir/cli.cpp.o.d"
  "CMakeFiles/snappif_util.dir/log.cpp.o"
  "CMakeFiles/snappif_util.dir/log.cpp.o.d"
  "CMakeFiles/snappif_util.dir/rng.cpp.o"
  "CMakeFiles/snappif_util.dir/rng.cpp.o.d"
  "CMakeFiles/snappif_util.dir/stats.cpp.o"
  "CMakeFiles/snappif_util.dir/stats.cpp.o.d"
  "CMakeFiles/snappif_util.dir/table.cpp.o"
  "CMakeFiles/snappif_util.dir/table.cpp.o.d"
  "libsnappif_util.a"
  "libsnappif_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snappif_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
