file(REMOVE_RECURSE
  "libsnappif_util.a"
)
