# Empty dependencies file for snappif_util.
# This may be replaced when dependencies are built.
