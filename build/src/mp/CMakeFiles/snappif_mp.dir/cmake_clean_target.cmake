file(REMOVE_RECURSE
  "libsnappif_mp.a"
)
