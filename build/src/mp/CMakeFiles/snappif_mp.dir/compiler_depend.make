# Empty compiler generated dependencies file for snappif_mp.
# This may be replaced when dependencies are built.
