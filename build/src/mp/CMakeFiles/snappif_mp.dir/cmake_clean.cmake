file(REMOVE_RECURSE
  "CMakeFiles/snappif_mp.dir/echo.cpp.o"
  "CMakeFiles/snappif_mp.dir/echo.cpp.o.d"
  "CMakeFiles/snappif_mp.dir/network.cpp.o"
  "CMakeFiles/snappif_mp.dir/network.cpp.o.d"
  "CMakeFiles/snappif_mp.dir/repeated_pif.cpp.o"
  "CMakeFiles/snappif_mp.dir/repeated_pif.cpp.o.d"
  "libsnappif_mp.a"
  "libsnappif_mp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snappif_mp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
