
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pif/checker.cpp" "src/pif/CMakeFiles/snappif_pif.dir/checker.cpp.o" "gcc" "src/pif/CMakeFiles/snappif_pif.dir/checker.cpp.o.d"
  "/root/repo/src/pif/faults.cpp" "src/pif/CMakeFiles/snappif_pif.dir/faults.cpp.o" "gcc" "src/pif/CMakeFiles/snappif_pif.dir/faults.cpp.o.d"
  "/root/repo/src/pif/ghost.cpp" "src/pif/CMakeFiles/snappif_pif.dir/ghost.cpp.o" "gcc" "src/pif/CMakeFiles/snappif_pif.dir/ghost.cpp.o.d"
  "/root/repo/src/pif/multi.cpp" "src/pif/CMakeFiles/snappif_pif.dir/multi.cpp.o" "gcc" "src/pif/CMakeFiles/snappif_pif.dir/multi.cpp.o.d"
  "/root/repo/src/pif/protocol.cpp" "src/pif/CMakeFiles/snappif_pif.dir/protocol.cpp.o" "gcc" "src/pif/CMakeFiles/snappif_pif.dir/protocol.cpp.o.d"
  "/root/repo/src/pif/serialize.cpp" "src/pif/CMakeFiles/snappif_pif.dir/serialize.cpp.o" "gcc" "src/pif/CMakeFiles/snappif_pif.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/snappif_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/snappif_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/snappif_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
