file(REMOVE_RECURSE
  "libsnappif_pif.a"
)
