file(REMOVE_RECURSE
  "CMakeFiles/snappif_pif.dir/checker.cpp.o"
  "CMakeFiles/snappif_pif.dir/checker.cpp.o.d"
  "CMakeFiles/snappif_pif.dir/faults.cpp.o"
  "CMakeFiles/snappif_pif.dir/faults.cpp.o.d"
  "CMakeFiles/snappif_pif.dir/ghost.cpp.o"
  "CMakeFiles/snappif_pif.dir/ghost.cpp.o.d"
  "CMakeFiles/snappif_pif.dir/multi.cpp.o"
  "CMakeFiles/snappif_pif.dir/multi.cpp.o.d"
  "CMakeFiles/snappif_pif.dir/protocol.cpp.o"
  "CMakeFiles/snappif_pif.dir/protocol.cpp.o.d"
  "CMakeFiles/snappif_pif.dir/serialize.cpp.o"
  "CMakeFiles/snappif_pif.dir/serialize.cpp.o.d"
  "libsnappif_pif.a"
  "libsnappif_pif.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snappif_pif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
