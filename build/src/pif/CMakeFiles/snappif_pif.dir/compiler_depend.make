# Empty compiler generated dependencies file for snappif_pif.
# This may be replaced when dependencies are built.
