# Empty compiler generated dependencies file for snappif_analysis.
# This may be replaced when dependencies are built.
