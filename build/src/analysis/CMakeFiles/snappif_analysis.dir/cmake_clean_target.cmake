file(REMOVE_RECURSE
  "libsnappif_analysis.a"
)
