file(REMOVE_RECURSE
  "CMakeFiles/snappif_analysis.dir/atomicity.cpp.o"
  "CMakeFiles/snappif_analysis.dir/atomicity.cpp.o.d"
  "CMakeFiles/snappif_analysis.dir/modelcheck.cpp.o"
  "CMakeFiles/snappif_analysis.dir/modelcheck.cpp.o.d"
  "CMakeFiles/snappif_analysis.dir/runners.cpp.o"
  "CMakeFiles/snappif_analysis.dir/runners.cpp.o.d"
  "CMakeFiles/snappif_analysis.dir/worstcase.cpp.o"
  "CMakeFiles/snappif_analysis.dir/worstcase.cpp.o.d"
  "libsnappif_analysis.a"
  "libsnappif_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snappif_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
