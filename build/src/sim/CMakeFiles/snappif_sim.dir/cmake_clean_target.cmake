file(REMOVE_RECURSE
  "libsnappif_sim.a"
)
