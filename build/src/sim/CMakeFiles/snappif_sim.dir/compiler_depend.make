# Empty compiler generated dependencies file for snappif_sim.
# This may be replaced when dependencies are built.
