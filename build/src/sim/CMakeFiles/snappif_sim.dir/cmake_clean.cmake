file(REMOVE_RECURSE
  "CMakeFiles/snappif_sim.dir/daemon.cpp.o"
  "CMakeFiles/snappif_sim.dir/daemon.cpp.o.d"
  "CMakeFiles/snappif_sim.dir/rounds.cpp.o"
  "CMakeFiles/snappif_sim.dir/rounds.cpp.o.d"
  "CMakeFiles/snappif_sim.dir/trace.cpp.o"
  "CMakeFiles/snappif_sim.dir/trace.cpp.o.d"
  "libsnappif_sim.a"
  "libsnappif_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snappif_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
