# Empty compiler generated dependencies file for snappif_baselines.
# This may be replaced when dependencies are built.
