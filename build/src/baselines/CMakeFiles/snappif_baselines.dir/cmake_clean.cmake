file(REMOVE_RECURSE
  "CMakeFiles/snappif_baselines.dir/selfstab_pif.cpp.o"
  "CMakeFiles/snappif_baselines.dir/selfstab_pif.cpp.o.d"
  "CMakeFiles/snappif_baselines.dir/tree_pif.cpp.o"
  "CMakeFiles/snappif_baselines.dir/tree_pif.cpp.o.d"
  "libsnappif_baselines.a"
  "libsnappif_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snappif_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
