file(REMOVE_RECURSE
  "libsnappif_baselines.a"
)
