
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/selfstab_pif.cpp" "src/baselines/CMakeFiles/snappif_baselines.dir/selfstab_pif.cpp.o" "gcc" "src/baselines/CMakeFiles/snappif_baselines.dir/selfstab_pif.cpp.o.d"
  "/root/repo/src/baselines/tree_pif.cpp" "src/baselines/CMakeFiles/snappif_baselines.dir/tree_pif.cpp.o" "gcc" "src/baselines/CMakeFiles/snappif_baselines.dir/tree_pif.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/snappif_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/snappif_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/snappif_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
