file(REMOVE_RECURSE
  "CMakeFiles/snappif_graph.dir/dot.cpp.o"
  "CMakeFiles/snappif_graph.dir/dot.cpp.o.d"
  "CMakeFiles/snappif_graph.dir/generators.cpp.o"
  "CMakeFiles/snappif_graph.dir/generators.cpp.o.d"
  "CMakeFiles/snappif_graph.dir/graph.cpp.o"
  "CMakeFiles/snappif_graph.dir/graph.cpp.o.d"
  "CMakeFiles/snappif_graph.dir/properties.cpp.o"
  "CMakeFiles/snappif_graph.dir/properties.cpp.o.d"
  "libsnappif_graph.a"
  "libsnappif_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snappif_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
