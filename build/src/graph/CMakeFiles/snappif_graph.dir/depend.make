# Empty dependencies file for snappif_graph.
# This may be replaced when dependencies are built.
