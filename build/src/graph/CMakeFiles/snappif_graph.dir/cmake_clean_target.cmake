file(REMOVE_RECURSE
  "libsnappif_graph.a"
)
