# Empty dependencies file for test_guards_actions.
# This may be replaced when dependencies are built.
