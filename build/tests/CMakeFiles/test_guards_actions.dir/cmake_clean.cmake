file(REMOVE_RECURSE
  "CMakeFiles/test_guards_actions.dir/pif/test_guards_actions.cpp.o"
  "CMakeFiles/test_guards_actions.dir/pif/test_guards_actions.cpp.o.d"
  "test_guards_actions"
  "test_guards_actions.pdb"
  "test_guards_actions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_guards_actions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
