file(REMOVE_RECURSE
  "CMakeFiles/test_modelcheck_units.dir/analysis/test_modelcheck_units.cpp.o"
  "CMakeFiles/test_modelcheck_units.dir/analysis/test_modelcheck_units.cpp.o.d"
  "test_modelcheck_units"
  "test_modelcheck_units.pdb"
  "test_modelcheck_units[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_modelcheck_units.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
