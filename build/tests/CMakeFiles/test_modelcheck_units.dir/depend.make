# Empty dependencies file for test_modelcheck_units.
# This may be replaced when dependencies are built.
