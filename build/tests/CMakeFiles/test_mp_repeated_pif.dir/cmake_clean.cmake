file(REMOVE_RECURSE
  "CMakeFiles/test_mp_repeated_pif.dir/mp/test_repeated_pif.cpp.o"
  "CMakeFiles/test_mp_repeated_pif.dir/mp/test_repeated_pif.cpp.o.d"
  "test_mp_repeated_pif"
  "test_mp_repeated_pif.pdb"
  "test_mp_repeated_pif[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mp_repeated_pif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
