# Empty compiler generated dependencies file for test_mp_repeated_pif.
# This may be replaced when dependencies are built.
