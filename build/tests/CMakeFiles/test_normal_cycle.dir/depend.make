# Empty dependencies file for test_normal_cycle.
# This may be replaced when dependencies are built.
