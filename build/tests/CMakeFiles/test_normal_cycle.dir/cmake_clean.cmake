file(REMOVE_RECURSE
  "CMakeFiles/test_normal_cycle.dir/pif/test_normal_cycle.cpp.o"
  "CMakeFiles/test_normal_cycle.dir/pif/test_normal_cycle.cpp.o.d"
  "test_normal_cycle"
  "test_normal_cycle.pdb"
  "test_normal_cycle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_normal_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
