# Empty compiler generated dependencies file for test_selfstab_pif.
# This may be replaced when dependencies are built.
