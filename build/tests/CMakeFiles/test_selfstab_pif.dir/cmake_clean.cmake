file(REMOVE_RECURSE
  "CMakeFiles/test_selfstab_pif.dir/baselines/test_selfstab_pif.cpp.o"
  "CMakeFiles/test_selfstab_pif.dir/baselines/test_selfstab_pif.cpp.o.d"
  "test_selfstab_pif"
  "test_selfstab_pif.pdb"
  "test_selfstab_pif[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_selfstab_pif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
