file(REMOVE_RECURSE
  "CMakeFiles/test_extra_topologies.dir/pif/test_extra_topologies.cpp.o"
  "CMakeFiles/test_extra_topologies.dir/pif/test_extra_topologies.cpp.o.d"
  "test_extra_topologies"
  "test_extra_topologies.pdb"
  "test_extra_topologies[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extra_topologies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
