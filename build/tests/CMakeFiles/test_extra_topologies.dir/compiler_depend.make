# Empty compiler generated dependencies file for test_extra_topologies.
# This may be replaced when dependencies are built.
