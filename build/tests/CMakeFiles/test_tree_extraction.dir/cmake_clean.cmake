file(REMOVE_RECURSE
  "CMakeFiles/test_tree_extraction.dir/pif/test_tree_extraction.cpp.o"
  "CMakeFiles/test_tree_extraction.dir/pif/test_tree_extraction.cpp.o.d"
  "test_tree_extraction"
  "test_tree_extraction.pdb"
  "test_tree_extraction[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_extraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
