# Empty dependencies file for test_tree_extraction.
# This may be replaced when dependencies are built.
