# Empty compiler generated dependencies file for test_section4_lemmas.
# This may be replaced when dependencies are built.
