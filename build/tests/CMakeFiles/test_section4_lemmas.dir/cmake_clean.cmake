file(REMOVE_RECURSE
  "CMakeFiles/test_section4_lemmas.dir/pif/test_section4_lemmas.cpp.o"
  "CMakeFiles/test_section4_lemmas.dir/pif/test_section4_lemmas.cpp.o.d"
  "test_section4_lemmas"
  "test_section4_lemmas.pdb"
  "test_section4_lemmas[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_section4_lemmas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
