# Empty dependencies file for test_action_counts.
# This may be replaced when dependencies are built.
