file(REMOVE_RECURSE
  "CMakeFiles/test_action_counts.dir/pif/test_action_counts.cpp.o"
  "CMakeFiles/test_action_counts.dir/pif/test_action_counts.cpp.o.d"
  "test_action_counts"
  "test_action_counts.pdb"
  "test_action_counts[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_action_counts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
