file(REMOVE_RECURSE
  "CMakeFiles/test_error_correction.dir/pif/test_error_correction.cpp.o"
  "CMakeFiles/test_error_correction.dir/pif/test_error_correction.cpp.o.d"
  "test_error_correction"
  "test_error_correction.pdb"
  "test_error_correction[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_error_correction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
