# Empty dependencies file for test_error_correction.
# This may be replaced when dependencies are built.
