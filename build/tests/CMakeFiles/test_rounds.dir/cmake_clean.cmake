file(REMOVE_RECURSE
  "CMakeFiles/test_rounds.dir/sim/test_rounds.cpp.o"
  "CMakeFiles/test_rounds.dir/sim/test_rounds.cpp.o.d"
  "test_rounds"
  "test_rounds.pdb"
  "test_rounds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
