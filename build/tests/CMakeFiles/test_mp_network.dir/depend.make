# Empty dependencies file for test_mp_network.
# This may be replaced when dependencies are built.
