file(REMOVE_RECURSE
  "CMakeFiles/test_mp_network.dir/mp/test_network.cpp.o"
  "CMakeFiles/test_mp_network.dir/mp/test_network.cpp.o.d"
  "test_mp_network"
  "test_mp_network.pdb"
  "test_mp_network[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mp_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
