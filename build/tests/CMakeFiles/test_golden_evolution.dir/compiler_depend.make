# Empty compiler generated dependencies file for test_golden_evolution.
# This may be replaced when dependencies are built.
