file(REMOVE_RECURSE
  "CMakeFiles/test_golden_evolution.dir/pif/test_golden_evolution.cpp.o"
  "CMakeFiles/test_golden_evolution.dir/pif/test_golden_evolution.cpp.o.d"
  "test_golden_evolution"
  "test_golden_evolution.pdb"
  "test_golden_evolution[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_golden_evolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
