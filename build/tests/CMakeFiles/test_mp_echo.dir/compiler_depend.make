# Empty compiler generated dependencies file for test_mp_echo.
# This may be replaced when dependencies are built.
