file(REMOVE_RECURSE
  "CMakeFiles/test_mp_echo.dir/mp/test_echo.cpp.o"
  "CMakeFiles/test_mp_echo.dir/mp/test_echo.cpp.o.d"
  "test_mp_echo"
  "test_mp_echo.pdb"
  "test_mp_echo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mp_echo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
