file(REMOVE_RECURSE
  "CMakeFiles/test_tree_pif.dir/baselines/test_tree_pif.cpp.o"
  "CMakeFiles/test_tree_pif.dir/baselines/test_tree_pif.cpp.o.d"
  "test_tree_pif"
  "test_tree_pif.pdb"
  "test_tree_pif[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tree_pif.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
