file(REMOVE_RECURSE
  "CMakeFiles/test_nonzero_root.dir/pif/test_nonzero_root.cpp.o"
  "CMakeFiles/test_nonzero_root.dir/pif/test_nonzero_root.cpp.o.d"
  "test_nonzero_root"
  "test_nonzero_root.pdb"
  "test_nonzero_root[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nonzero_root.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
