# Empty dependencies file for test_nonzero_root.
# This may be replaced when dependencies are built.
