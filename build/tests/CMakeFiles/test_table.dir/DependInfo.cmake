
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/util/test_table.cpp" "tests/CMakeFiles/test_table.dir/util/test_table.cpp.o" "gcc" "tests/CMakeFiles/test_table.dir/util/test_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/snappif_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/snappif_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/snappif_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/mp/CMakeFiles/snappif_mp.dir/DependInfo.cmake"
  "/root/repo/build/src/pif/CMakeFiles/snappif_pif.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/snappif_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/snappif_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
