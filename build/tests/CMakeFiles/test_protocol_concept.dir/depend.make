# Empty dependencies file for test_protocol_concept.
# This may be replaced when dependencies are built.
