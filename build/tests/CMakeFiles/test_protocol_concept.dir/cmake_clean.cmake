file(REMOVE_RECURSE
  "CMakeFiles/test_protocol_concept.dir/sim/test_protocol_concept.cpp.o"
  "CMakeFiles/test_protocol_concept.dir/sim/test_protocol_concept.cpp.o.d"
  "test_protocol_concept"
  "test_protocol_concept.pdb"
  "test_protocol_concept[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_protocol_concept.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
