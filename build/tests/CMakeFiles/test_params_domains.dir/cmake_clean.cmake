file(REMOVE_RECURSE
  "CMakeFiles/test_params_domains.dir/pif/test_params_domains.cpp.o"
  "CMakeFiles/test_params_domains.dir/pif/test_params_domains.cpp.o.d"
  "test_params_domains"
  "test_params_domains.pdb"
  "test_params_domains[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_params_domains.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
