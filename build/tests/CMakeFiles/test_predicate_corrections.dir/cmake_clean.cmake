file(REMOVE_RECURSE
  "CMakeFiles/test_predicate_corrections.dir/pif/test_predicate_corrections.cpp.o"
  "CMakeFiles/test_predicate_corrections.dir/pif/test_predicate_corrections.cpp.o.d"
  "test_predicate_corrections"
  "test_predicate_corrections.pdb"
  "test_predicate_corrections[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predicate_corrections.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
