# Empty compiler generated dependencies file for test_predicate_corrections.
# This may be replaced when dependencies are built.
