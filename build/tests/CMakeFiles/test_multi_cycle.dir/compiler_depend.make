# Empty compiler generated dependencies file for test_multi_cycle.
# This may be replaced when dependencies are built.
