file(REMOVE_RECURSE
  "CMakeFiles/test_multi_cycle.dir/pif/test_multi_cycle.cpp.o"
  "CMakeFiles/test_multi_cycle.dir/pif/test_multi_cycle.cpp.o.d"
  "test_multi_cycle"
  "test_multi_cycle.pdb"
  "test_multi_cycle[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multi_cycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
