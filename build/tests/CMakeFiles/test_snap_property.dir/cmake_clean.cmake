file(REMOVE_RECURSE
  "CMakeFiles/test_snap_property.dir/pif/test_snap_property.cpp.o"
  "CMakeFiles/test_snap_property.dir/pif/test_snap_property.cpp.o.d"
  "test_snap_property"
  "test_snap_property.pdb"
  "test_snap_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_snap_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
