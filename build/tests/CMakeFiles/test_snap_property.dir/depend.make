# Empty dependencies file for test_snap_property.
# This may be replaced when dependencies are built.
