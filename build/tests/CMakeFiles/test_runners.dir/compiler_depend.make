# Empty compiler generated dependencies file for test_runners.
# This may be replaced when dependencies are built.
