file(REMOVE_RECURSE
  "CMakeFiles/test_runners.dir/analysis/test_runners.cpp.o"
  "CMakeFiles/test_runners.dir/analysis/test_runners.cpp.o.d"
  "test_runners"
  "test_runners.pdb"
  "test_runners[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_runners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
