# Empty dependencies file for test_stress_large.
# This may be replaced when dependencies are built.
