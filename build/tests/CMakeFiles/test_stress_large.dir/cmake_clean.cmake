file(REMOVE_RECURSE
  "CMakeFiles/test_stress_large.dir/pif/test_stress_large.cpp.o"
  "CMakeFiles/test_stress_large.dir/pif/test_stress_large.cpp.o.d"
  "test_stress_large"
  "test_stress_large.pdb"
  "test_stress_large[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stress_large.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
