# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "--n=8")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_quickstart_corrupt "/root/repo/build/examples/quickstart" "--n=8" "--corrupt" "--dot")
set_tests_properties(example_quickstart_corrupt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_network_reset "/root/repo/build/examples/network_reset" "--n=10" "--faults=2")
set_tests_properties(example_network_reset PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_termination_detection "/root/repo/build/examples/termination_detection" "--n=8" "--work=15")
set_tests_properties(example_termination_detection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_barrier_sync "/root/repo/build/examples/barrier_sync" "--n=9" "--barriers=4")
set_tests_properties(example_barrier_sync PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_barrier_sync_corrupt "/root/repo/build/examples/barrier_sync" "--n=9" "--barriers=4" "--corrupt")
set_tests_properties(example_barrier_sync_corrupt PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_global_snapshot "/root/repo/build/examples/global_snapshot" "--n=10" "--rounds=3")
set_tests_properties(example_global_snapshot PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;24;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_echo_vs_snap "/root/repo/build/examples/echo_vs_snap" "--n=10" "--trials=5")
set_tests_properties(example_echo_vs_snap PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;25;add_test;/root/repo/examples/CMakeLists.txt;0;")
