# Empty dependencies file for network_reset.
# This may be replaced when dependencies are built.
