file(REMOVE_RECURSE
  "CMakeFiles/network_reset.dir/network_reset.cpp.o"
  "CMakeFiles/network_reset.dir/network_reset.cpp.o.d"
  "network_reset"
  "network_reset.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_reset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
