file(REMOVE_RECURSE
  "CMakeFiles/global_snapshot.dir/global_snapshot.cpp.o"
  "CMakeFiles/global_snapshot.dir/global_snapshot.cpp.o.d"
  "global_snapshot"
  "global_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
