# Empty dependencies file for global_snapshot.
# This may be replaced when dependencies are built.
