# Empty compiler generated dependencies file for echo_vs_snap.
# This may be replaced when dependencies are built.
