file(REMOVE_RECURSE
  "CMakeFiles/echo_vs_snap.dir/echo_vs_snap.cpp.o"
  "CMakeFiles/echo_vs_snap.dir/echo_vs_snap.cpp.o.d"
  "echo_vs_snap"
  "echo_vs_snap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/echo_vs_snap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
