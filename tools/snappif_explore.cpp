// snappif_explore — exhaustive model checking from the command line.
//
//   ./snappif_explore --topology=path3|path2|triangle|star4|path4
//                     [--literal-prepotential] [--literal-root-goodfok]
//                     [--ablate-leaf|--ablate-bleaf|--ablate-countwait]
//                     [--liveness] [--normal-starts] [--max-states=200000000]
//                     [--jobs=1 (worker threads; 0 = hardware)]
//                     [--metrics-out=FILE (machine-readable run summary)]
//
// Prints the deadlock census, the exhaustive snap verdict and (optionally)
// the synchronous liveness distances for the chosen instance and variant.
// --jobs parallelizes the deadlock census and the BFS (deterministically —
// identical reports for any worker count); liveness stays single-threaded.
// --metrics-out writes the same numbers as an obs::Registry JSON document
// (counters explore.*) for dashboards and regression diffing.
#include <cstdio>
#include <memory>
#include <string>

#include "analysis/modelcheck.hpp"
#include "graph/generators.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "par/pool.hpp"
#include "util/cli.hpp"

using namespace snappif;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const std::string topology = cli.get_string("topology", "path3");

  graph::Graph g(1);
  if (topology == "path2") {
    g = graph::make_path(2);
  } else if (topology == "path3") {
    g = graph::make_path(3);
  } else if (topology == "path4") {
    g = graph::make_path(4);
  } else if (topology == "triangle") {
    g = graph::make_cycle(3);
  } else if (topology == "star4") {
    g = graph::make_star(4);
  } else {
    std::fprintf(stderr, "unknown --topology=%s\n", topology.c_str());
    return 2;
  }

  pif::Params params = pif::Params::for_graph(g);
  params.literal_prepotential_fok = cli.get_bool("literal-prepotential", false);
  params.literal_root_goodfok = cli.get_bool("literal-root-goodfok", false);
  params.ablate_broadcast_leaf = cli.get_bool("ablate-leaf", false);
  params.ablate_feedback_bleaf = cli.get_bool("ablate-bleaf", false);
  params.ablate_count_wait = cli.get_bool("ablate-countwait", false);
  pif::PifProtocol protocol(g, params);

  std::printf("instance: %s (n=%u, m=%zu), packed state bits: %u\n",
              topology.c_str(), g.n(), g.m(),
              analysis::packed_state_bits(g, protocol));

  const auto jobs = static_cast<unsigned>(cli.get_int("jobs", 1));
  std::unique_ptr<par::ThreadPool> pool;
  if (jobs != 1) {
    pool = std::make_unique<par::ThreadPool>(jobs);
  }

  const auto deadlock = analysis::check_no_deadlock(g, protocol, pool.get());
  std::printf("deadlock census: %llu configurations, %llu deadlocked\n",
              static_cast<unsigned long long>(deadlock.configurations),
              static_cast<unsigned long long>(deadlock.deadlocks));

  const std::uint64_t max_states = cli.get_u64("max-states", 200'000'000);
  const bool normal_starts = cli.get_bool("normal-starts", false);
  const auto snap = analysis::exhaustive_snap_check(
      g, protocol, max_states, normal_starts, pool.get());
  std::printf(
      "exhaustive snap: %s, %llu states, %llu transitions, "
      "%llu closures, %llu violations, %llu aborts, %llu deadlocks\n",
      snap.complete ? "complete" : "CAPPED",
      static_cast<unsigned long long>(snap.states),
      static_cast<unsigned long long>(snap.transitions),
      static_cast<unsigned long long>(snap.cycle_closures),
      static_cast<unsigned long long>(snap.violations),
      static_cast<unsigned long long>(snap.aborts),
      static_cast<unsigned long long>(snap.deadlocks));

  if (cli.get_bool("liveness", false)) {
    const auto liveness = analysis::synchronous_liveness_check(g, protocol);
    std::printf(
        "synchronous liveness: %s, %llu starts, %llu memo states, "
        "max %llu steps to first closure, %llu stuck\n",
        liveness.complete ? "complete" : "CAPPED",
        static_cast<unsigned long long>(liveness.start_configs),
        static_cast<unsigned long long>(liveness.memo_states),
        static_cast<unsigned long long>(liveness.max_steps_to_closure),
        static_cast<unsigned long long>(liveness.stuck));
  }

  const bool clean = deadlock.deadlocks == 0 && snap.complete &&
                     snap.violations == 0 && snap.aborts == 0;
  std::printf("verdict: %s\n", clean ? "CLEAN" : "PROBLEMS FOUND");

  if (const auto metrics_out = cli.get("metrics-out"); metrics_out.has_value()) {
    obs::Registry reg;
    reg.counter("explore.configurations").inc(deadlock.configurations);
    reg.counter("explore.deadlocks").inc(deadlock.deadlocks);
    reg.counter("explore.states").inc(snap.states);
    reg.counter("explore.transitions").inc(snap.transitions);
    reg.counter("explore.cycle_closures").inc(snap.cycle_closures);
    reg.counter("explore.violations").inc(snap.violations);
    reg.counter("explore.aborts").inc(snap.aborts);
    reg.counter("explore.complete").inc(snap.complete ? 1 : 0);
    reg.counter("explore.clean").inc(clean ? 1 : 0);
    if (!obs::write_text_file(*metrics_out, reg.json())) {
      std::fprintf(stderr, "could not write --metrics-out=%s\n",
                   metrics_out->c_str());
      return 2;
    }
    std::printf("metrics: %s\n", metrics_out->c_str());
  }
  return clean ? 0 : 1;
}
