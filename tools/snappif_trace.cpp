// snappif_trace — run any topology/daemon/fault scenario with the full
// telemetry stack attached and export the observations.
//
//   ./snappif_trace --topology=ring --n=16 --seed=1
//                   [--daemon=synchronous|central-random|central-rr|
//                             distributed-random|adversarial-max|adversarial-min]
//                   [--corruption=none|uniform|fake-tree|stray-F|stray-Fok|
//                                 inflated|adversarial]
//                   [--root=0] [--cycles=3] [--max-steps=1000000]
//                   [--jsonl=out.jsonl] [--trace=out.trace.json]
//                   [--metrics=out.metrics.json] [--csv]
//                   [--waves] [--fingerprint]
//   ./snappif_trace --flight=dump.json [--waves] [--trace=out.trace.json]
//
// Prints a run summary and the metrics-registry table on stdout; optionally
// writes the JSONL event stream, a Chrome trace_event file (load in
// about:tracing / Perfetto), and a JSON registry snapshot.
//
// Causal tracing: every run carries a pif::WaveTraceProbe, so --trace files
// include the wave/phase/correction span tree alongside the per-action
// events; --waves prints the per-wave latency/correction table; and
// --fingerprint prints the order-invariant obs::fingerprint of the metrics
// registry (the digest the golden tests pin).
//
// Flight-dump viewer (--flight=FILE): renders an obs::FlightRecorder dump —
// context, diagnosis, embedded replay command, packed snapshot size, span
// census — and with --trace converts the recorded spans to a Chrome
// trace_event file.  --waves lists the dump's wave spans.
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "graph/generators.hpp"
#include "obs/export.hpp"
#include "obs/fingerprint.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "pif/faults.hpp"
#include "pif/ghost.hpp"
#include "pif/instrument.hpp"
#include "pif/protocol.hpp"
#include "pif/wave_trace.hpp"
#include "sim/daemon.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace snappif;

namespace {

std::unique_ptr<sim::IDaemon> daemon_by_name(const std::string& name) {
  for (const sim::DaemonKind kind : sim::standard_daemon_kinds()) {
    if (name == sim::daemon_kind_name(kind)) {
      return sim::make_daemon(kind);
    }
  }
  return nullptr;
}

bool corruption_by_name(const std::string& name, pif::CorruptionKind* out) {
  for (const pif::CorruptionKind kind : pif::all_corruption_kinds()) {
    if (name == pif::corruption_name(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

/// Renders a flight-recorder dump; returns the process exit code.
int view_flight(const util::Cli& cli, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const auto dump = obs::parse_flight_dump(buf.str());
  if (!dump.has_value()) {
    std::fprintf(stderr, "%s is not a flight-recorder dump\n", path.c_str());
    return 2;
  }

  const bool csv = cli.get_bool("csv", false);
  util::Table ctx({"tool", "scenario", "seed", "shard", "snapshot", "spans",
                   "dropped"});
  ctx.add_row({dump->context.tool, dump->context.scenario,
               util::fmt(dump->context.seed), util::fmt(dump->context.shard),
               dump->snapshot_words.empty()
                   ? "-"
                   : dump->snapshot_format + " x" +
                         util::fmt(dump->snapshot_words.size()),
               util::fmt(dump->spans.size()), util::fmt(dump->spans_dropped)});
  std::fputs((csv ? ctx.render_csv() : ctx.render()).c_str(), stdout);
  if (!dump->context.failure.empty()) {
    std::printf("\nfailure: %s\n", dump->context.failure.c_str());
  }
  if (!dump->context.replay.empty()) {
    std::printf("replay:  %s\n", dump->context.replay.c_str());
  }

  // Span census by kind.
  util::Table census({"kind", "count"});
  std::size_t counts[16] = {};
  for (const obs::Span& sp : dump->spans) {
    ++counts[static_cast<std::size_t>(sp.kind) & 15U];
  }
  for (std::size_t k = 0; k < 16; ++k) {
    if (counts[k] != 0) {
      census.add_row({obs::span_kind_name(static_cast<obs::SpanKind>(k)),
                      util::fmt(counts[k])});
    }
  }
  std::printf("\n");
  std::fputs((csv ? census.render_csv() : census.render()).c_str(), stdout);

  if (cli.get_bool("waves", false)) {
    util::Table waves({"wave-span", "begin", "end", "ticks", "root"});
    for (const obs::Span& sp : dump->spans) {
      if (sp.kind == obs::SpanKind::kWave) {
        waves.add_row({util::fmt(sp.id), util::fmt(sp.begin),
                       util::fmt(sp.end), util::fmt(sp.end - sp.begin),
                       util::fmt(sp.tid)});
      }
    }
    std::printf("\n");
    std::fputs((csv ? waves.render_csv() : waves.render()).c_str(), stdout);
  }

  if (const auto out = cli.get("trace"); out.has_value()) {
    obs::EventLog events;
    for (const obs::Span& sp : dump->spans) {
      events.emit(obs::span_to_event(sp));
    }
    if (!events.write_chrome_trace(*out)) {
      std::fprintf(stderr, "error: cannot write %s\n", out->c_str());
      return 1;
    }
    std::printf("\nwrote Chrome trace to %s (load in about:tracing)\n",
                out->c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  for (const std::string& err : cli.errors()) {
    std::fprintf(stderr, "argument error: %s\n", err.c_str());
  }

  if (const auto flight = cli.get("flight"); flight.has_value()) {
    return view_flight(cli, *flight);
  }

  const std::string topology = cli.get_string("topology", "random");
  const auto n = static_cast<graph::NodeId>(cli.get_int("n", 16));
  const std::uint64_t seed = cli.get_u64("seed", 1);
  const auto g = graph::make_by_name(topology, n, seed);
  if (!g.has_value()) {
    std::fprintf(stderr, "unknown --topology=%s (expected one of: %s)\n",
                 topology.c_str(), std::string(graph::topology_names()).c_str());
    return 2;
  }

  const std::string daemon_name = cli.get_string("daemon", "distributed-random");
  auto daemon = daemon_by_name(daemon_name);
  if (daemon == nullptr) {
    std::fprintf(stderr, "unknown --daemon=%s\n", daemon_name.c_str());
    return 2;
  }

  const std::string corruption = cli.get_string("corruption", "none");
  pif::CorruptionKind corruption_kind = pif::CorruptionKind::kUniformRandom;
  const bool corrupt = corruption != "none";
  if (corrupt && !corruption_by_name(corruption, &corruption_kind)) {
    std::fprintf(stderr, "unknown --corruption=%s\n", corruption.c_str());
    return 2;
  }

  const auto root = static_cast<sim::ProcessorId>(cli.get_int("root", 0));
  const std::uint64_t cycles = cli.get_u64("cycles", 3);
  const std::uint64_t max_steps = cli.get_u64("max-steps", 1'000'000);

  pif::PifProtocol protocol(*g, pif::Params::for_graph(*g, root));
  sim::Simulator<pif::PifProtocol> sim(protocol, *g, seed);

  obs::Registry registry;
  obs::EventLog events;
  pif::PifMetricsProbe probe(protocol, registry, &events);
  sim.add_probe(&probe);
  obs::SpanCollector spans(1 << 16);
  pif::WaveTraceProbe wave_probe(root, spans, &registry);
  sim.add_probe(&wave_probe);
  pif::GhostTracker tracker(*g, root);
  pif::attach(sim, tracker);

  if (corrupt) {
    util::Rng corruption_rng(seed ^ 0x5eedc0de);
    pif::apply_corruption(sim, corruption_kind, corruption_rng);
  }

  const auto result = sim.run_until(
      *daemon,
      [&](const sim::Configuration<pif::State>&) {
        return tracker.cycles_completed() >= cycles;
      },
      sim::RunLimits{.max_steps = max_steps});

  wave_probe.finish();

  const char* reason = "predicate";
  switch (result.reason) {
    case sim::StopReason::kPredicate:
      reason = "target cycles reached";
      break;
    case sim::StopReason::kTerminal:
      reason = "terminal (no enabled processor)";
      break;
    case sim::StopReason::kStepLimit:
      reason = "step limit";
      break;
    case sim::StopReason::kRoundLimit:
      reason = "round limit";
      break;
  }

  const bool csv = cli.get_bool("csv", false);
  util::Table run({"topology", "N", "daemon", "corruption", "seed", "steps",
                   "rounds", "cycles", "stop"});
  run.add_row({topology, util::fmt(g->n()), daemon_name, corruption,
               util::fmt(seed), util::fmt(result.steps), util::fmt(result.rounds),
               util::fmt(tracker.cycles_completed()), reason});
  std::fputs((csv ? run.render_csv() : run.render()).c_str(), stdout);
  std::printf("\n");
  std::fputs((csv ? registry.summary_table().render_csv()
                  : registry.summary_table().render())
                 .c_str(),
             stdout);

  if (cli.get_bool("waves", false)) {
    util::Table waves({"wave", "begin-round", "end-round", "latency",
                       "corrections", "closed"});
    for (const pif::WaveTraceProbe::WaveSample& w : wave_probe.waves()) {
      waves.add_row({util::fmt(w.index), util::fmt(w.begin_round),
                     util::fmt(w.end_round),
                     util::fmt(w.end_round - w.begin_round),
                     util::fmt(w.corrections), w.closed ? "yes" : "ABORTED"});
    }
    std::printf("\n");
    std::fputs((csv ? waves.render_csv() : waves.render()).c_str(), stdout);
  }
  if (cli.get_bool("fingerprint", false)) {
    std::printf("\nfingerprint: %s\n", obs::fingerprint_hex(registry).c_str());
  }

  bool io_ok = true;
  if (const auto path = cli.get("jsonl"); path.has_value()) {
    if (events.write_jsonl(*path)) {
      std::printf("\nwrote %zu events to %s", events.size(), path->c_str());
    } else {
      std::fprintf(stderr, "\nerror: cannot write %s\n", path->c_str());
      io_ok = false;
    }
  }
  if (const auto path = cli.get("trace"); path.has_value()) {
    // Append the causal span tree so the exported trace carries both the
    // per-action events and the wave/phase/correction structure.
    spans.to_events(events);
    if (events.write_chrome_trace(*path)) {
      std::printf("\nwrote Chrome trace to %s (load in about:tracing)",
                  path->c_str());
    } else {
      std::fprintf(stderr, "\nerror: cannot write %s\n", path->c_str());
      io_ok = false;
    }
  }
  if (const auto path = cli.get("metrics"); path.has_value()) {
    std::FILE* f = std::fopen(path->c_str(), "w");
    if (f != nullptr) {
      const std::string json = registry.json();
      io_ok = std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
              std::fclose(f) == 0 && io_ok;
      std::printf("\nwrote registry snapshot to %s", path->c_str());
    } else {
      std::fprintf(stderr, "\nerror: cannot write %s\n", path->c_str());
      io_ok = false;
    }
  }
  if (events.dropped() > 0) {
    std::printf("\nWARNING: %llu events dropped (bounded log)",
                static_cast<unsigned long long>(events.dropped()));
  }
  std::printf("\n");

  return (result.reason == sim::StopReason::kPredicate && io_ok) ? 0 : 1;
}
