// snappif_trace — run any topology/daemon/fault scenario with the full
// telemetry stack attached and export the observations.
//
//   ./snappif_trace --topology=ring --n=16 --seed=1
//                   [--daemon=synchronous|central-random|central-rr|
//                             distributed-random|adversarial-max|adversarial-min]
//                   [--corruption=none|uniform|fake-tree|stray-F|stray-Fok|
//                                 inflated|adversarial]
//                   [--root=0] [--cycles=3] [--max-steps=1000000]
//                   [--jsonl=out.jsonl] [--trace=out.trace.json]
//                   [--metrics=out.metrics.json] [--csv]
//
// Prints a run summary and the metrics-registry table on stdout; optionally
// writes the JSONL event stream, a Chrome trace_event file (load in
// about:tracing / Perfetto), and a JSON registry snapshot.
#include <cstdio>
#include <memory>
#include <string>

#include "graph/generators.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "pif/faults.hpp"
#include "pif/ghost.hpp"
#include "pif/instrument.hpp"
#include "pif/protocol.hpp"
#include "sim/daemon.hpp"
#include "sim/simulator.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace snappif;

namespace {

std::unique_ptr<sim::IDaemon> daemon_by_name(const std::string& name) {
  for (const sim::DaemonKind kind : sim::standard_daemon_kinds()) {
    if (name == sim::daemon_kind_name(kind)) {
      return sim::make_daemon(kind);
    }
  }
  return nullptr;
}

bool corruption_by_name(const std::string& name, pif::CorruptionKind* out) {
  for (const pif::CorruptionKind kind : pif::all_corruption_kinds()) {
    if (name == pif::corruption_name(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  for (const std::string& err : cli.errors()) {
    std::fprintf(stderr, "argument error: %s\n", err.c_str());
  }

  const std::string topology = cli.get_string("topology", "random");
  const auto n = static_cast<graph::NodeId>(cli.get_int("n", 16));
  const std::uint64_t seed = cli.get_u64("seed", 1);
  const auto g = graph::make_by_name(topology, n, seed);
  if (!g.has_value()) {
    std::fprintf(stderr, "unknown --topology=%s (expected one of: %s)\n",
                 topology.c_str(), std::string(graph::topology_names()).c_str());
    return 2;
  }

  const std::string daemon_name = cli.get_string("daemon", "distributed-random");
  auto daemon = daemon_by_name(daemon_name);
  if (daemon == nullptr) {
    std::fprintf(stderr, "unknown --daemon=%s\n", daemon_name.c_str());
    return 2;
  }

  const std::string corruption = cli.get_string("corruption", "none");
  pif::CorruptionKind corruption_kind = pif::CorruptionKind::kUniformRandom;
  const bool corrupt = corruption != "none";
  if (corrupt && !corruption_by_name(corruption, &corruption_kind)) {
    std::fprintf(stderr, "unknown --corruption=%s\n", corruption.c_str());
    return 2;
  }

  const auto root = static_cast<sim::ProcessorId>(cli.get_int("root", 0));
  const std::uint64_t cycles = cli.get_u64("cycles", 3);
  const std::uint64_t max_steps = cli.get_u64("max-steps", 1'000'000);

  pif::PifProtocol protocol(*g, pif::Params::for_graph(*g, root));
  sim::Simulator<pif::PifProtocol> sim(protocol, *g, seed);

  obs::Registry registry;
  obs::EventLog events;
  pif::PifMetricsProbe probe(protocol, registry, &events);
  sim.add_probe(&probe);
  pif::GhostTracker tracker(*g, root);
  pif::attach(sim, tracker);

  if (corrupt) {
    util::Rng corruption_rng(seed ^ 0x5eedc0de);
    pif::apply_corruption(sim, corruption_kind, corruption_rng);
  }

  const auto result = sim.run_until(
      *daemon,
      [&](const sim::Configuration<pif::State>&) {
        return tracker.cycles_completed() >= cycles;
      },
      sim::RunLimits{.max_steps = max_steps});

  const char* reason = "predicate";
  switch (result.reason) {
    case sim::StopReason::kPredicate:
      reason = "target cycles reached";
      break;
    case sim::StopReason::kTerminal:
      reason = "terminal (no enabled processor)";
      break;
    case sim::StopReason::kStepLimit:
      reason = "step limit";
      break;
    case sim::StopReason::kRoundLimit:
      reason = "round limit";
      break;
  }

  const bool csv = cli.get_bool("csv", false);
  util::Table run({"topology", "N", "daemon", "corruption", "seed", "steps",
                   "rounds", "cycles", "stop"});
  run.add_row({topology, util::fmt(g->n()), daemon_name, corruption,
               util::fmt(seed), util::fmt(result.steps), util::fmt(result.rounds),
               util::fmt(tracker.cycles_completed()), reason});
  std::fputs((csv ? run.render_csv() : run.render()).c_str(), stdout);
  std::printf("\n");
  std::fputs((csv ? registry.summary_table().render_csv()
                  : registry.summary_table().render())
                 .c_str(),
             stdout);

  bool io_ok = true;
  if (const auto path = cli.get("jsonl"); path.has_value()) {
    if (events.write_jsonl(*path)) {
      std::printf("\nwrote %zu events to %s", events.size(), path->c_str());
    } else {
      std::fprintf(stderr, "\nerror: cannot write %s\n", path->c_str());
      io_ok = false;
    }
  }
  if (const auto path = cli.get("trace"); path.has_value()) {
    if (events.write_chrome_trace(*path)) {
      std::printf("\nwrote Chrome trace to %s (load in about:tracing)",
                  path->c_str());
    } else {
      std::fprintf(stderr, "\nerror: cannot write %s\n", path->c_str());
      io_ok = false;
    }
  }
  if (const auto path = cli.get("metrics"); path.has_value()) {
    std::FILE* f = std::fopen(path->c_str(), "w");
    if (f != nullptr) {
      const std::string json = registry.json();
      io_ok = std::fwrite(json.data(), 1, json.size(), f) == json.size() &&
              std::fclose(f) == 0 && io_ok;
      std::printf("\nwrote registry snapshot to %s", path->c_str());
    } else {
      std::fprintf(stderr, "\nerror: cannot write %s\n", path->c_str());
      io_ok = false;
    }
  }
  if (events.dropped() > 0) {
    std::printf("\nWARNING: %llu events dropped (bounded log)",
                static_cast<unsigned long long>(events.dropped()));
  }
  std::printf("\n");

  return (result.reason == sim::StopReason::kPredicate && io_ok) ? 0 : 1;
}
