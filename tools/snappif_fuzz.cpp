// snappif_fuzz — endless randomized snap-property fuzzing.
//
// Runs check_snap_first_cycle forever over random graphs x corruptions x
// daemons x action policies, printing a progress line periodically and
// stopping (with a full reproduction recipe) on the first violation.
//
//   ./snappif_fuzz [--seed=1] [--max-n=24] [--iterations=0 (unbounded)]
//                  [--report-every=500]
#include <cstdio>

#include "analysis/runners.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "pif/faults.hpp"
#include "util/cli.hpp"

using namespace snappif;

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  const auto master_seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  util::Rng rng(master_seed);
  const auto max_n = static_cast<graph::NodeId>(cli.get_int("max-n", 24));
  const auto iterations = static_cast<std::uint64_t>(cli.get_int("iterations", 0));
  const auto report_every =
      static_cast<std::uint64_t>(cli.get_int("report-every", 500));

  const auto daemons = sim::standard_daemon_kinds();
  const auto corruptions = pif::all_corruption_kinds();

  std::uint64_t runs = 0;
  while (iterations == 0 || runs < iterations) {
    ++runs;
    // Random instance.
    const auto n = static_cast<graph::NodeId>(3 + rng.below(max_n - 2));
    const auto extra = rng.below(2 * n);
    const auto graph_seed = rng();
    const graph::Graph g = graph::make_random_connected(n, extra, graph_seed);

    analysis::RunConfig rc;
    rc.daemon = daemons[rng.below(daemons.size())];
    rc.corruption = corruptions[rng.below(corruptions.size())];
    rc.policy = rng.chance(0.5) ? sim::ActionPolicy::kFirstEnabled
                                : sim::ActionPolicy::kRandomEnabled;
    rc.root = static_cast<sim::ProcessorId>(rng.below(n));
    rc.seed = rng();

    const auto result = analysis::check_snap_first_cycle(g, rc);
    if (!result.cycle_completed || !result.ok()) {
      std::printf(
          "VIOLATION after %llu runs!\n"
          "  graph: make_random_connected(%u, %llu, %llu)\n"
          "  root=%u daemon=%s corruption=%s policy=%s seed=%llu\n"
          "  completed=%d pif1=%d pif2=%d aborted=%d\n",
          static_cast<unsigned long long>(runs), n,
          static_cast<unsigned long long>(extra),
          static_cast<unsigned long long>(graph_seed), rc.root,
          std::string(sim::daemon_kind_name(rc.daemon)).c_str(),
          std::string(pif::corruption_name(rc.corruption)).c_str(),
          rc.policy == sim::ActionPolicy::kFirstEnabled ? "first" : "random",
          static_cast<unsigned long long>(rc.seed), result.cycle_completed,
          result.pif1, result.pif2, result.aborted);
      // The machine-readable half goes to stderr: the exact failing seeds
      // and a command that deterministically replays run #`runs`.
      std::fprintf(stderr,
                   "snappif_fuzz: violation at run %llu "
                   "(instance seed %llu, graph seed %llu)\n"
                   "repro: %s --seed=%llu --max-n=%u --iterations=%llu\n",
                   static_cast<unsigned long long>(runs),
                   static_cast<unsigned long long>(rc.seed),
                   static_cast<unsigned long long>(graph_seed),
                   cli.program().c_str(),
                   static_cast<unsigned long long>(master_seed), max_n,
                   static_cast<unsigned long long>(runs));
      return 1;
    }
    if (runs % report_every == 0) {
      std::printf("%llu runs, 0 violations (last: n=%u %s/%s)\n",
                  static_cast<unsigned long long>(runs), n,
                  std::string(sim::daemon_kind_name(rc.daemon)).c_str(),
                  std::string(pif::corruption_name(rc.corruption)).c_str());
      std::fflush(stdout);
    }
  }
  std::printf("done: %llu runs, 0 violations\n",
              static_cast<unsigned long long>(runs));
  return 0;
}
