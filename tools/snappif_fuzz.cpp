// snappif_fuzz — endless randomized snap-property fuzzing.
//
// Runs check_snap_first_cycle over random graphs x corruptions x daemons x
// action policies, printing a progress line per wave and stopping (with a
// full reproduction recipe) on the first violation.  Iteration i's instance
// is a pure function of (--seed, i) — see src/analysis/fuzz.hpp — so any
// single iteration replays in isolation with --only, and --jobs parallelizes
// the search without changing which violation is found first.
//
//   ./snappif_fuzz [--seed=1] [--max-n=24] [--iterations=0 (unbounded)]
//                  [--jobs=1 (worker threads; 0 = hardware)] [--only=INDEX]
//                  [--break=none|broadcast-leaf|feedback-bleaf|count-wait]
//                  [--metrics-out=FILE] [--flight-out=fuzz_flight.json]
//
// --metrics-out writes the merged run telemetry (shard-order Registry merge,
// so the JSON — and its obs::fingerprint — is identical for any --jobs) as
// one JSON object.  On a violation the failing iteration is re-run with the
// causal tracer attached and dumped to --flight-out, replay line included
// (--flight-out=none disables).  --break ablates one protocol guard so the
// fuzzer has something to find.
#include <cstdio>
#include <memory>
#include <string>

#include "analysis/fuzz.hpp"
#include "obs/export.hpp"
#include "obs/flight.hpp"
#include "par/pool.hpp"
#include "pif/faults.hpp"
#include "sim/daemon.hpp"
#include "util/cli.hpp"

using namespace snappif;

namespace {

/// Maps --break to a Params tweak; returns false for unknown names.
bool break_by_name(const std::string& name,
                   std::function<void(pif::Params&)>* out) {
  if (name == "none") {
    *out = nullptr;
    return true;
  }
  if (name == "broadcast-leaf") {
    *out = [](pif::Params& p) { p.ablate_broadcast_leaf = true; };
    return true;
  }
  if (name == "feedback-bleaf") {
    *out = [](pif::Params& p) { p.ablate_feedback_bleaf = true; };
    return true;
  }
  if (name == "count-wait") {
    *out = [](pif::Params& p) { p.ablate_count_wait = true; };
    return true;
  }
  return false;
}

/// Builds the replay command for iteration `f.index` (mirrors the stderr
/// repro line) — embedded in the flight dump.
std::string replay_command(const util::Cli& cli,
                           const analysis::FuzzOptions& opts,
                           const std::string& broken,
                           const analysis::FuzzFailure& f) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), "%s --seed=%llu --max-n=%u%s%s --only=%llu",
                cli.program().c_str(),
                static_cast<unsigned long long>(opts.master_seed), opts.max_n,
                broken == "none" ? "" : " --break=",
                broken == "none" ? "" : broken.c_str(),
                static_cast<unsigned long long>(f.index));
  return buf;
}

/// Re-runs the failing iteration with tracing and writes the dump.
void dump_failure_flight(const util::Cli& cli,
                         const analysis::FuzzOptions& opts,
                         const std::string& broken,
                         const analysis::FuzzFailure& f) {
  const std::string path = cli.get_string("flight-out", "fuzz_flight.json");
  if (path == "none") {
    return;
  }
  obs::FlightRecorder flight;
  analysis::record_fuzz_flight(opts, f, flight);
  flight.context().tool = "snappif_fuzz";
  flight.context().replay = replay_command(cli, opts, broken, f);
  if (flight.write(path)) {
    std::fprintf(stderr, "flight dump: %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "error: cannot write flight dump %s\n", path.c_str());
  }
}

void print_failure(const util::Cli& cli, const analysis::FuzzOptions& opts,
                   const std::string& broken, const analysis::FuzzFailure& f) {
  const analysis::FuzzInstance& inst = f.instance;
  std::printf(
      "VIOLATION at iteration %llu!\n"
      "  graph: make_random_connected(%u, %llu, %llu)\n"
      "  root=%u daemon=%s corruption=%s policy=%s seed=%llu\n"
      "  completed=%d pif1=%d pif2=%d aborted=%d\n",
      static_cast<unsigned long long>(f.index), inst.n,
      static_cast<unsigned long long>(inst.extra_edges),
      static_cast<unsigned long long>(inst.graph_seed), inst.root,
      std::string(sim::daemon_kind_name(inst.daemon)).c_str(),
      std::string(pif::corruption_name(inst.corruption)).c_str(),
      inst.policy == sim::ActionPolicy::kFirstEnabled ? "first" : "random",
      static_cast<unsigned long long>(inst.run_seed), f.result.cycle_completed,
      f.result.pif1, f.result.pif2, f.result.aborted);
  // The machine-readable half goes to stderr: a command that replays
  // exactly this iteration, independent of every other one.
  std::fprintf(stderr,
               "snappif_fuzz: violation at iteration %llu "
               "(run seed %llu, graph seed %llu)\nrepro: %s\n",
               static_cast<unsigned long long>(f.index),
               static_cast<unsigned long long>(inst.run_seed),
               static_cast<unsigned long long>(inst.graph_seed),
               replay_command(cli, opts, broken, f).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  for (const std::string& err : cli.errors()) {
    std::fprintf(stderr, "argument error: %s\n", err.c_str());
  }

  analysis::FuzzOptions opts;
  opts.master_seed = cli.get_u64("seed", 1);
  opts.max_n = static_cast<graph::NodeId>(cli.get_int("max-n", 24));
  const std::uint64_t iterations = cli.get_u64("iterations", 0);
  const auto jobs = static_cast<unsigned>(cli.get_int("jobs", 1));
  const std::string broken = cli.get_string("break", "none");
  if (!break_by_name(broken, &opts.tweak_params)) {
    std::fprintf(stderr,
                 "unknown --break=%s (none|broadcast-leaf|feedback-bleaf|"
                 "count-wait)\n",
                 broken.c_str());
    return 2;
  }

  // Replay mode: run exactly one iteration, in isolation.
  if (const auto only = cli.get("only"); only.has_value()) {
    const std::uint64_t index = cli.get_u64("only", 0);
    if (auto failure = analysis::run_fuzz_iteration(opts, index)) {
      print_failure(cli, opts, broken, *failure);
      dump_failure_flight(cli, opts, broken, *failure);
      return 1;
    }
    std::printf("iteration %llu: ok\n",
                static_cast<unsigned long long>(index));
    return 0;
  }

  std::unique_ptr<par::ThreadPool> pool;
  if (jobs != 1) {
    pool = std::make_unique<par::ThreadPool>(jobs);
  }

  const analysis::FuzzReport report = analysis::run_fuzz(
      opts, iterations, pool.get(),
      [](std::uint64_t done, const analysis::FuzzInstance& last) {
        std::printf("%llu runs, 0 violations (last: n=%u %s/%s)\n",
                    static_cast<unsigned long long>(done), last.n,
                    std::string(sim::daemon_kind_name(last.daemon)).c_str(),
                    std::string(pif::corruption_name(last.corruption)).c_str());
        std::fflush(stdout);
      });

  int exit_code = 0;
  if (!report.failures.empty()) {
    print_failure(cli, opts, broken, report.failures.front());
    dump_failure_flight(cli, opts, broken, report.failures.front());
    exit_code = 1;
  } else {
    std::printf("done: %llu runs, 0 violations\n",
                static_cast<unsigned long long>(report.iterations_run));
  }

  // Merged telemetry of the whole run (worker-count invariant).
  if (const auto path = cli.get("metrics-out"); path.has_value()) {
    if (obs::write_text_file(*path, report.metrics.json())) {
      std::printf("wrote metrics to %s\n", path->c_str());
    } else {
      std::fprintf(stderr, "error: cannot write %s\n", path->c_str());
      exit_code = exit_code == 0 ? 1 : exit_code;
    }
  }
  return exit_code;
}
