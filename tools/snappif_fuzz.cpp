// snappif_fuzz — endless randomized snap-property fuzzing.
//
// Runs check_snap_first_cycle over random graphs x corruptions x daemons x
// action policies, printing a progress line per wave and stopping (with a
// full reproduction recipe) on the first violation.  Iteration i's instance
// is a pure function of (--seed, i) — see src/analysis/fuzz.hpp — so any
// single iteration replays in isolation with --only, and --jobs parallelizes
// the search without changing which violation is found first.
//
//   ./snappif_fuzz [--seed=1] [--max-n=24] [--iterations=0 (unbounded)]
//                  [--jobs=1 (worker threads; 0 = hardware)] [--only=INDEX]
#include <cstdio>
#include <memory>
#include <string>

#include "analysis/fuzz.hpp"
#include "par/pool.hpp"
#include "pif/faults.hpp"
#include "sim/daemon.hpp"
#include "util/cli.hpp"

using namespace snappif;

namespace {

void print_failure(const util::Cli& cli, const analysis::FuzzOptions& opts,
                   const analysis::FuzzFailure& f) {
  const analysis::FuzzInstance& inst = f.instance;
  std::printf(
      "VIOLATION at iteration %llu!\n"
      "  graph: make_random_connected(%u, %llu, %llu)\n"
      "  root=%u daemon=%s corruption=%s policy=%s seed=%llu\n"
      "  completed=%d pif1=%d pif2=%d aborted=%d\n",
      static_cast<unsigned long long>(f.index), inst.n,
      static_cast<unsigned long long>(inst.extra_edges),
      static_cast<unsigned long long>(inst.graph_seed), inst.root,
      std::string(sim::daemon_kind_name(inst.daemon)).c_str(),
      std::string(pif::corruption_name(inst.corruption)).c_str(),
      inst.policy == sim::ActionPolicy::kFirstEnabled ? "first" : "random",
      static_cast<unsigned long long>(inst.run_seed), f.result.cycle_completed,
      f.result.pif1, f.result.pif2, f.result.aborted);
  // The machine-readable half goes to stderr: a command that replays
  // exactly this iteration, independent of every other one.
  std::fprintf(stderr,
               "snappif_fuzz: violation at iteration %llu "
               "(run seed %llu, graph seed %llu)\n"
               "repro: %s --seed=%llu --max-n=%u --only=%llu\n",
               static_cast<unsigned long long>(f.index),
               static_cast<unsigned long long>(inst.run_seed),
               static_cast<unsigned long long>(inst.graph_seed),
               cli.program().c_str(),
               static_cast<unsigned long long>(opts.master_seed), opts.max_n,
               static_cast<unsigned long long>(f.index));
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  for (const std::string& err : cli.errors()) {
    std::fprintf(stderr, "argument error: %s\n", err.c_str());
  }

  analysis::FuzzOptions opts;
  opts.master_seed = cli.get_u64("seed", 1);
  opts.max_n = static_cast<graph::NodeId>(cli.get_int("max-n", 24));
  const std::uint64_t iterations = cli.get_u64("iterations", 0);
  const auto jobs = static_cast<unsigned>(cli.get_int("jobs", 1));

  // Replay mode: run exactly one iteration, in isolation.
  if (const auto only = cli.get("only"); only.has_value()) {
    const std::uint64_t index = cli.get_u64("only", 0);
    if (auto failure = analysis::run_fuzz_iteration(opts, index)) {
      print_failure(cli, opts, *failure);
      return 1;
    }
    std::printf("iteration %llu: ok\n",
                static_cast<unsigned long long>(index));
    return 0;
  }

  std::unique_ptr<par::ThreadPool> pool;
  if (jobs != 1) {
    pool = std::make_unique<par::ThreadPool>(jobs);
  }

  const analysis::FuzzReport report = analysis::run_fuzz(
      opts, iterations, pool.get(),
      [](std::uint64_t done, const analysis::FuzzInstance& last) {
        std::printf("%llu runs, 0 violations (last: n=%u %s/%s)\n",
                    static_cast<unsigned long long>(done), last.n,
                    std::string(sim::daemon_kind_name(last.daemon)).c_str(),
                    std::string(pif::corruption_name(last.corruption)).c_str());
        std::fflush(stdout);
      });

  if (!report.failures.empty()) {
    print_failure(cli, opts, report.failures.front());
    return 1;
  }
  std::printf("done: %llu runs, 0 violations\n",
              static_cast<unsigned long long>(report.iterations_run));
  return 0;
}
