// snappif_serve — PIF waves over a real transport, with the delivery
// contract checked on every frame.
//
// Spins up k processors as endpoints of a pluggable mp::ITransport —
// either the deterministic in-process loopback (--transport=loopback, the
// replayable default) or one real non-blocking UDP socket per processor on
// localhost (--transport=udp) — and streams --waves PIF initiations
// through mp::WaveService over the snap-stabilizing link layer.  An
// mp::ImpairmentShim between the link and the transport injects
// socket-level loss/duplication/reordering/delay and bounded-mailbox
// overload shedding, so the run demonstrates the repository's headline
// resilience claim end to end: at 20% injected datagram loss the link
// still delivers every datagram exactly once, in order (the WaveService
// asserts the stream counters on every delivery), and every wave
// completes only after reaching all processors.
//
// A deadlock watchdog bounds the run: if no wave completes within
// --stall steps, the tool prints link + transport counters, writes a
// flight dump of the recent frame history, and exits nonzero — a link
// deadlock under impairment is precisely the regression this tool exists
// to catch.
//
//   ./snappif_serve [--transport=loopback|udp] [--topology=random] [--n=8]
//                   [--graph-seed=1] [--root=0] [--waves=100] [--streams=1]
//                   [--seed=1] [--window=1] [--coalesce=0]
//                   [--loss=0] [--dup=0] [--reorder=0]
//                   [--delay-rate=0] [--delay-steps=0] [--budget=0]
//                   [--rto=adaptive|fixed] [--rto-initial=2] [--rto-cap=16]
//                   [--stall=100000] [--max-steps=50000000]
//                   [--udp-port=0 (ephemeral)] [--poll-ms=0]
//                   [--metrics=out.json] [--flight-out=serve_flight.json]
//
// --streams runs that many concurrent wave streams (stream s roots at
// (root + s) mod n), --window widens the per-edge ARQ send window, and
// --coalesce=1 batches each edge's frames into one transport send per step
// — together they pipeline the serve workload instead of serializing it.
//
// Exit codes: 0 = all waves completed with every check green; 1 = watchdog
// tripped (no progress) or step budget exhausted; 2 = bad arguments.
// Contract violations (out-of-order or duplicated delivery, a wave closing
// before all processors joined) abort loudly via SNAPPIF_ASSERT.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "graph/generators.hpp"
#include "mp/impairment.hpp"
#include "mp/link.hpp"
#include "mp/network.hpp"
#include "mp/serve.hpp"
#include "mp/udp_transport.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "util/cli.hpp"

using namespace snappif;

namespace {

bool write_text(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  return std::fclose(f) == 0 && ok;
}

void print_counters(const mp::WaveService& service,
                    const mp::LinkProtocol& link,
                    const mp::ITransport& transport) {
  const mp::ServeStats& s = service.stats();
  const mp::LinkStats& l = link.stats();
  const mp::TransportStats& t = transport.transport_stats();
  std::printf(
      "serve: waves=%llu joins=%llu echoes=%llu stream_checks=%llu "
      "resyncs=%llu\n",
      static_cast<unsigned long long>(s.waves_completed),
      static_cast<unsigned long long>(s.joins),
      static_cast<unsigned long long>(s.echoes),
      static_cast<unsigned long long>(s.stream_checks),
      static_cast<unsigned long long>(s.peer_resyncs));
  std::printf(
      "link:  sent=%llu retransmits=%llu delivered=%llu dup_discarded=%llu "
      "stale=%llu spurious_acks=%llu rtt_samples=%llu karn=%llu\n",
      static_cast<unsigned long long>(l.data_sent),
      static_cast<unsigned long long>(l.retransmits),
      static_cast<unsigned long long>(l.delivered),
      static_cast<unsigned long long>(l.duplicates_discarded),
      static_cast<unsigned long long>(l.stale_discarded),
      static_cast<unsigned long long>(l.spurious_acks),
      static_cast<unsigned long long>(l.rtt_samples),
      static_cast<unsigned long long>(l.karn_suppressed));
  std::printf(
      "wire:  sent=%llu delivered=%llu dropped=%llu duplicated=%llu "
      "reordered=%llu delayed=%llu shed=%llu rx_errors=%llu\n",
      static_cast<unsigned long long>(t.sent),
      static_cast<unsigned long long>(t.delivered),
      static_cast<unsigned long long>(t.dropped),
      static_cast<unsigned long long>(t.duplicated),
      static_cast<unsigned long long>(t.reordered),
      static_cast<unsigned long long>(t.delayed),
      static_cast<unsigned long long>(t.shed),
      static_cast<unsigned long long>(t.rx_errors));
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  for (const std::string& err : cli.errors()) {
    std::fprintf(stderr, "argument error: %s\n", err.c_str());
  }

  const std::string topology = cli.get_string("topology", "random");
  const auto n = static_cast<graph::NodeId>(cli.get_int("n", 8));
  const std::uint64_t graph_seed = cli.get_u64("graph-seed", 1);
  const auto g = graph::make_by_name(topology, n, graph_seed);
  if (!g.has_value()) {
    std::fprintf(stderr, "unknown --topology=%s (expected one of: %s)\n",
                 topology.c_str(),
                 std::string(graph::topology_names()).c_str());
    return 2;
  }

  const std::string transport_name = cli.get_string("transport", "loopback");
  const bool use_udp = transport_name == "udp";
  if (!use_udp && transport_name != "loopback") {
    std::fprintf(stderr, "unknown --transport=%s (want loopback|udp)\n",
                 transport_name.c_str());
    return 2;
  }

  const std::uint64_t seed = cli.get_u64("seed", 1);

  mp::LinkConfig link_cfg;
  const std::string rto_name = cli.get_string("rto", "adaptive");
  if (rto_name == "adaptive") {
    link_cfg.rto_mode = mp::RtoMode::kAdaptive;
  } else if (rto_name != "fixed") {
    std::fprintf(stderr, "unknown --rto=%s (want adaptive|fixed)\n",
                 rto_name.c_str());
    return 2;
  }
  link_cfg.rto_initial =
      static_cast<std::uint32_t>(cli.get_int("rto-initial", 2));
  link_cfg.rto_cap = static_cast<std::uint32_t>(cli.get_int("rto-cap", 16));
  const long long window = cli.get_int("window", 1);
  if (window < 1) {
    std::fprintf(stderr, "--window must be >= 1 (got %lld)\n", window);
    return 2;
  }
  link_cfg.window = static_cast<std::size_t>(window);
  // Keep headroom behind the window so the service rarely has to defer.
  link_cfg.queue_capacity = std::max(link_cfg.queue_capacity, link_cfg.window);
  link_cfg.coalesce = cli.get_bool("coalesce", false);
  if (const auto objection = mp::validate(link_cfg); objection.has_value()) {
    std::fprintf(stderr, "bad link config: %s\n", objection->c_str());
    return 2;
  }

  mp::ServeConfig serve_cfg;
  serve_cfg.root = static_cast<mp::ProcessorId>(cli.get_int("root", 0));
  serve_cfg.waves = static_cast<std::uint32_t>(cli.get_int("waves", 100));
  const long long streams = cli.get_int("streams", 1);
  if (streams < 1) {
    std::fprintf(stderr, "--streams must be >= 1 (got %lld)\n", streams);
    return 2;
  }
  serve_cfg.streams = static_cast<std::uint32_t>(streams);

  obs::FlightRecorder flight;
  flight.context().tool = "snappif_serve";
  flight.context().scenario = transport_name + " " + topology +
                              " n=" + std::to_string(g->n()) +
                              " waves=" + std::to_string(serve_cfg.waves);
  flight.context().seed = seed;

  mp::WaveService service(*g, serve_cfg);
  service.set_spans(&flight.spans());
  mp::LinkProtocol link(*g, service, link_cfg,
                        seed ^ 0x9e3779b97f4a7c15ULL);
  mp::ServeObserver observer(flight.spans(), service);
  link.set_observer(&observer);

  mp::ImpairmentShim shim(link, g->n(), seed ^ 0xd1b54a32d192ed03ULL);
  shim.set_loss_rate(cli.get_double("loss", 0.0));
  shim.set_duplication_rate(cli.get_double("dup", 0.0));
  shim.set_reorder_rate(cli.get_double("reorder", 0.0));
  shim.set_delay(cli.get_double("delay-rate", 0.0),
                 static_cast<std::uint32_t>(cli.get_int("delay-steps", 0)));
  shim.set_delivery_budget(
      static_cast<std::uint32_t>(cli.get_int("budget", 0)));

  std::unique_ptr<mp::Network> net;
  std::unique_ptr<mp::UdpTransport> udp;
  const long long poll_ms = cli.get_int("poll-ms", 0);
  if (poll_ms < 0) {
    // A negative timeout would make epoll_wait block forever and wedge the
    // drive loop's watchdog; 0 already means "non-blocking poll".
    std::fprintf(stderr, "--poll-ms must be >= 0 (got %lld)\n", poll_ms);
    return 2;
  }
  if (use_udp) {
    mp::UdpConfig ucfg;
    ucfg.base_port = static_cast<std::uint16_t>(cli.get_int("udp-port", 0));
    ucfg.poll_timeout_ms = static_cast<int>(poll_ms);
    udp = std::make_unique<mp::UdpTransport>(*g, shim, ucfg);
    shim.bind(*udp);
    std::printf("udp endpoints: 127.0.0.1:%u..%u (%u processors)\n",
                static_cast<unsigned>(udp->port(0)),
                static_cast<unsigned>(udp->port(g->n() - 1)),
                static_cast<unsigned>(g->n()));
  } else {
    net = std::make_unique<mp::Network>(*g, shim, mp::Delivery::kSynchronous,
                                        seed);
    shim.bind(*net);
  }
  mp::ITransport& transport = shim;  // the stack's top-level drive point

  const std::uint64_t stall_budget = cli.get_u64("stall", 100000);
  const std::uint64_t max_steps = cli.get_u64("max-steps", 50'000'000);

  transport.start();
  std::uint64_t steps = 0;
  std::uint64_t last_progress_step = 0;
  std::uint64_t last_waves = 0;
  bool stalled = false;
  while (!service.done()) {
    if (steps >= max_steps || steps - last_progress_step >= stall_budget) {
      stalled = true;
      break;
    }
    transport.step();
    link.tick();
    service.pump(link);
    link.flush();
    ++steps;
    service.set_tick(steps);
    observer.set_tick(steps);
    if (service.stats().waves_completed > last_waves) {
      last_waves = service.stats().waves_completed;
      last_progress_step = steps;
    }
  }

  print_counters(service, link, transport);
  std::printf("steps=%llu transport=%s\n",
              static_cast<unsigned long long>(steps), transport_name.c_str());

  if (const auto path = cli.get("metrics"); path.has_value()) {
    obs::Registry registry;
    service.record_telemetry(registry);
    link.record_telemetry(registry);
    transport.record_telemetry(registry);
    if (!write_text(*path, registry.json())) {
      std::fprintf(stderr, "error: cannot write %s\n", path->c_str());
      return 1;
    }
  }

  if (stalled) {
    std::fprintf(stderr,
                 "FAIL: no wave completed for %llu steps "
                 "(%llu/%u waves done) — link deadlock or starvation\n",
                 static_cast<unsigned long long>(steps - last_progress_step),
                 static_cast<unsigned long long>(
                     service.stats().waves_completed),
                 serve_cfg.waves);
    flight.context().failure = "serve watchdog: no wave progress";
    const std::string flight_path =
        cli.get_string("flight-out", "serve_flight.json");
    if (flight_path != "none") {
      if (flight.write(flight_path)) {
        std::fprintf(stderr, "flight dump: %s\n", flight_path.c_str());
      } else {
        std::fprintf(stderr, "error: cannot write flight dump %s\n",
                     flight_path.c_str());
      }
    }
    return 1;
  }
  std::printf("OK: %u waves x %u streams, exactly-once in-order delivery "
              "held on every edge\n",
              serve_cfg.waves, serve_cfg.streams);
  return 0;
}
