// snappif_chaos — seeded chaos soak runs against the recovery oracle.
//
// Soak mode (default): run --campaigns random fault schedules through the
// deterministic soak driver (chaos/soak.hpp) — campaign i's schedule and
// seed are pure functions of (--seed, i), so --jobs parallelizes the soak
// without changing a single verdict or metric.  Every campaign runs (the
// table shows them all); if any failed, the LOWEST failing index is shrunk
// to a minimal reproducer, a copy-pasteable repro command is printed to
// stderr, and the exit code is nonzero.  With --mp each schedule also runs
// against the message-passing runner; schedules containing crash(...)
// events — or the --emulate flag — route the mp run to the GuardedEmulation
// campaign, where the paper's PifProtocol itself executes over the lossy
// crashing substrate; --crash makes the random schedules include crash
// windows.
//
// Replay mode (--schedule='...'): run exactly one campaign from a grammar
// one-liner — the other end of the repro loop.
//
// Guided mode (--guided): coverage-guided fuzzing (chaos/guided.hpp).
// Generations of mutated schedules run through the same runners; outcomes
// are keyed by obs::fingerprint of their campaign registry, schedules with
// never-seen fingerprints join the corpus, and the search stops at the
// first oracle failure (shrunk + flight-dumped exactly like a soak
// failure).  --corpus-in seeds the search from a corpus file (one grammar
// line per schedule, '-' = empty, '#' comments); --corpus-out writes the
// discovered corpus back for accumulation across runs.  Deterministic in
// --seed for any --jobs.
//
//   ./snappif_chaos [--topology=random] [--n=16] [--graph-seed=1] [--root=0]
//                   [--campaigns=20] [--seed=1] [--jobs=1 (0 = hardware)]
//                   [--events=6] [--horizon=60] [--max-magnitude=4]
//                   [--daemon=distributed-random]
//                   [--mp] [--emulate] [--crash]
//                   [--schedule='12:burst*3;20:corrupt=fake-tree']
//                   [--guided] [--generations=8] [--population=16]
//                   [--corpus-in=seed.corpus] [--corpus-out=found.corpus]
//                   [--max-corpus=512]
//                   [--break=none|broadcast-leaf|feedback-bleaf|count-wait]
//                   [--budget=0 (auto)] [--no-shrink] [--metrics=out.json]
//                   [--flight-out=chaos_flight.json] [--csv]
//
// --break ablates one protocol guard (the deliberately broken variants from
// the ablation benches) so the oracle and shrinker can be demonstrated on a
// protocol that is NOT snap-stabilizing.
//
// Flight recorder: every campaign streams wave/phase/correction (and, with
// --mp, link frame) spans into a bounded ring.  On any failure the lowest
// failing campaign's recording — context, diagnosis, the exact repro
// command, a packed snapshot of the final configuration, and the recent
// span history — is written to --flight-out as a single JSON artifact
// (inspect with `snappif_trace --flight FILE`; --flight-out=none disables).
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>

#include "chaos/emulation_campaign.hpp"
#include "chaos/guided.hpp"
#include "chaos/shrink.hpp"
#include "chaos/soak.hpp"
#include "graph/generators.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "par/pool.hpp"
#include "sim/daemon.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

using namespace snappif;

namespace {

bool daemon_by_name(const std::string& name, sim::DaemonKind* out) {
  for (const sim::DaemonKind kind : sim::standard_daemon_kinds()) {
    if (name == sim::daemon_kind_name(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

/// Maps --break to a Params tweak; returns false for unknown names.
bool break_by_name(const std::string& name,
                   std::function<void(pif::Params&)>* out) {
  if (name == "none") {
    *out = nullptr;
    return true;
  }
  if (name == "broadcast-leaf") {
    *out = [](pif::Params& p) { p.ablate_broadcast_leaf = true; };
    return true;
  }
  if (name == "feedback-bleaf") {
    *out = [](pif::Params& p) { p.ablate_feedback_bleaf = true; };
    return true;
  }
  if (name == "count-wait") {
    *out = [](pif::Params& p) { p.ablate_count_wait = true; };
    return true;
  }
  return false;
}

bool read_file(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return false;
  }
  char buf[4096];
  std::size_t got = 0;
  while ((got = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out->append(buf, got);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

bool write_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return false;
  }
  const bool ok =
      std::fwrite(content.data(), 1, content.size(), f) == content.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  for (const std::string& err : cli.errors()) {
    std::fprintf(stderr, "argument error: %s\n", err.c_str());
  }

  const std::string topology = cli.get_string("topology", "random");
  const auto n = static_cast<graph::NodeId>(cli.get_int("n", 16));
  const std::uint64_t graph_seed = cli.get_u64("graph-seed", 1);
  const auto g = graph::make_by_name(topology, n, graph_seed);
  if (!g.has_value()) {
    std::fprintf(stderr, "unknown --topology=%s (expected one of: %s)\n",
                 topology.c_str(), std::string(graph::topology_names()).c_str());
    return 2;
  }

  chaos::SoakOptions soak;
  soak.master_seed = cli.get_u64("seed", 1);
  soak.campaigns = cli.get_u64("campaigns", 20);
  soak.run_mp = cli.get_bool("mp", false);
  soak.emulate = cli.get_bool("emulate", false);
  soak.campaign.root = static_cast<sim::ProcessorId>(cli.get_int("root", 0));
  const std::string daemon_name =
      cli.get_string("daemon", "distributed-random");
  if (!daemon_by_name(daemon_name, &soak.campaign.daemon)) {
    std::fprintf(stderr, "unknown --daemon=%s\n", daemon_name.c_str());
    return 2;
  }
  const std::string broken = cli.get_string("break", "none");
  if (!break_by_name(broken, &soak.campaign.tweak_params)) {
    std::fprintf(stderr,
                 "unknown --break=%s (none|broadcast-leaf|feedback-bleaf|"
                 "count-wait)\n",
                 broken.c_str());
    return 2;
  }
  soak.campaign.recovery_round_budget = cli.get_u64("budget", 0);

  const bool crash_windows = cli.get_bool("crash", false);
  const bool shrink_on_failure = cli.get_bool("shrink", true);
  const auto jobs = static_cast<unsigned>(cli.get_int("jobs", 1));

  soak.shape.events = static_cast<std::uint32_t>(cli.get_int("events", 6));
  soak.shape.horizon_rounds = cli.get_u64("horizon", 60);
  soak.shape.max_magnitude =
      static_cast<std::uint32_t>(cli.get_int("max-magnitude", 4));
  soak.shape.message_passing = soak.run_mp;
  soak.shape.crash = soak.run_mp && crash_windows;
  soak.shape.crash_processors = g->n();
  // Friendly rejection before the generators' SNAPPIF_ASSERT would fire
  // (e.g. --events=0 or --horizon=0 on the command line).
  if (const auto objection = chaos::validate(soak.shape);
      objection.has_value()) {
    std::fprintf(stderr, "invalid campaign shape: %s\n", objection->c_str());
    return 2;
  }

  const bool guided = cli.get_bool("guided", false);
  std::unique_ptr<par::ThreadPool> pool;
  if (jobs != 1) {
    pool = std::make_unique<par::ThreadPool>(jobs);
  }

  // Run: one replayed campaign, the guided search, or the seeded soak.
  // All three fold into a SoakReport so the failure tail below (shrink,
  // repro line, flight dump, metrics) is shared.
  chaos::SoakReport report;
  util::Table guided_table(
      {"generation", "campaigns", "novel", "corpus", "failures"});
  if (const auto text = cli.get("schedule"); text.has_value()) {
    chaos::ParseError perr;
    const auto parsed = chaos::FaultSchedule::parse(*text, &perr);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "malformed --schedule: %s\n",
                   perr.to_string().c_str());
      return 2;
    }
    const chaos::SoakJob job{*parsed, soak.master_seed};
    report.outcomes.push_back(
        chaos::run_soak_campaign(*g, soak, job, 0, &report.metrics));
    if (!report.outcomes.front().ok()) {
      report.first_failure = 0;
      if (report.outcomes.front().flight != nullptr) {
        report.flight.merge(*report.outcomes.front().flight);
      }
    }
  } else if (guided) {
    chaos::GuidedOptions gopts;
    gopts.master_seed = soak.master_seed;
    gopts.generations = cli.get_u64("generations", 8);
    gopts.population =
        static_cast<std::uint32_t>(cli.get_int("population", 16));
    gopts.shape = soak.shape;
    gopts.campaign = soak.campaign;
    gopts.run_mp = soak.run_mp;
    gopts.emulate = soak.emulate;
    gopts.max_corpus = cli.get_u64("max-corpus", 512);
    if (const auto path = cli.get("corpus-in"); path.has_value()) {
      std::string text_in;
      if (!read_file(*path, &text_in)) {
        std::fprintf(stderr, "error: cannot read --corpus-in=%s\n",
                     path->c_str());
        return 2;
      }
      std::string corpus_error;
      auto corpus = chaos::corpus_from_text(text_in, &corpus_error);
      if (!corpus.has_value()) {
        std::fprintf(stderr, "malformed corpus %s: %s\n", path->c_str(),
                     corpus_error.c_str());
        return 2;
      }
      gopts.corpus_in = *std::move(corpus);
    }

    chaos::GuidedReport found = chaos::run_guided(*g, gopts, pool.get());

    std::size_t corpus_seen = 0;
    for (const chaos::GenerationStats& gen : found.generations) {
      corpus_seen = std::min<std::size_t>(corpus_seen + gen.novel,
                                          found.corpus.size());
      guided_table.add_row({util::fmt(gen.generation),
                            util::fmt(gen.campaigns), util::fmt(gen.novel),
                            util::fmt(corpus_seen), util::fmt(gen.failures)});
    }
    std::printf(
        "guided: %llu campaigns, %llu unique fingerprints, corpus %zu%s\n",
        static_cast<unsigned long long>(found.campaigns_run),
        static_cast<unsigned long long>(found.unique_fingerprints),
        found.corpus.size(),
        found.corpus_overflow > 0 ? " (corpus cap hit)" : "");
    if (const auto path = cli.get("corpus-out"); path.has_value()) {
      if (write_file(*path, chaos::corpus_to_text(found.corpus))) {
        std::printf("wrote corpus to %s\n", path->c_str());
      } else {
        std::fprintf(stderr, "error: cannot write --corpus-out=%s\n",
                     path->c_str());
        return 2;
      }
    }

    report.metrics.merge(found.metrics);
    if (found.first_failure.has_value()) {
      report.first_failure = 0;
      report.flight.merge(found.flight);
      std::fprintf(
          stderr, "guided: first failure at generation %llu slot %llu\n",
          static_cast<unsigned long long>(found.first_failure->generation),
          static_cast<unsigned long long>(found.first_failure->slot));
      report.outcomes.push_back(std::move(found.first_failure->outcome));
    }
  } else {
    report = chaos::run_soak(*g, soak, pool.get());
  }

  util::Table table({"campaign", "schedule", "seed", "quiet", "to-normal",
                     "to-cycle", "snap", "status"});
  for (const chaos::SoakOutcome& o : report.outcomes) {
    std::string schedule_text = o.schedule.to_string();
    if (schedule_text.size() > 40) {
      schedule_text.resize(37);
      schedule_text += "...";
    }
    const chaos::CampaignResult& r = o.shared;
    table.add_row({util::fmt(o.index), schedule_text, util::fmt(o.seed),
                   util::fmt(r.quiet_round),
                   r.recovered ? util::fmt(r.rounds_to_normal) : "-",
                   r.recovered ? util::fmt(r.rounds_to_cycle_close) : "-",
                   r.snap_ok ? "ok" : "FAIL",
                   o.ok() ? "recovered"
                          : (!r.ok() ? r.failure : o.mp_failure)});
  }

  int exit_code = 0;
  if (report.first_failure.has_value()) {
    exit_code = 1;
    const chaos::SoakOutcome& o = report.outcomes[*report.first_failure];
    const chaos::FaultSchedule* repro = &o.schedule;
    chaos::ShrinkResult shrunk;
    chaos::CampaignOptions shrink_opts = soak.campaign;
    shrink_opts.seed = o.seed;
    shrink_opts.registry = nullptr;
    if (!o.shared.ok() && shrink_on_failure) {
      shrunk = chaos::shrink_campaign(*g, o.schedule, shrink_opts);
      repro = &shrunk.minimal;
    } else if (!o.mp_ok && o.used_emulation && shrink_on_failure) {
      chaos::EmulationCampaignOptions emu_opts;
      emu_opts.root = soak.campaign.root;
      emu_opts.seed = o.seed;
      shrunk = chaos::shrink_emulation_campaign(*g, o.schedule, emu_opts);
      repro = &shrunk.minimal;
    }
    if (shrunk.input_failed) {
      std::fprintf(stderr, "shrunk %zu -> %zu events in %llu replays\n",
                   o.schedule.events.size(), shrunk.minimal.events.size(),
                   static_cast<unsigned long long>(shrunk.campaigns_run));
    }
    std::fprintf(stderr, "campaign %llu FAILED: %s\n",
                 static_cast<unsigned long long>(o.index),
                 !o.shared.ok() ? o.shared.failure.c_str()
                                : o.mp_failure.c_str());
    char repro_cmd[1024];
    std::snprintf(
        repro_cmd, sizeof(repro_cmd),
        "%s --topology=%s --n=%u --graph-seed=%llu --root=%u "
        "--daemon=%s%s%s%s%s --seed=%llu --schedule='%s'",
        cli.program().c_str(), topology.c_str(), g->n(),
        static_cast<unsigned long long>(graph_seed), soak.campaign.root,
        daemon_name.c_str(), broken == "none" ? "" : " --break=",
        broken == "none" ? "" : broken.c_str(), soak.run_mp ? " --mp" : "",
        soak.emulate ? " --emulate" : "",
        static_cast<unsigned long long>(o.seed), repro->to_string().c_str());
    std::fprintf(stderr, "repro: %s\n", repro_cmd);

    // Auto-dump the flight recording: the artifact embeds the repro line,
    // so a CI failure is replayable from the dump alone.
    const std::string flight_path =
        cli.get_string("flight-out", "chaos_flight.json");
    if (flight_path != "none") {
      report.flight.context().tool = "snappif_chaos";
      report.flight.context().replay = repro_cmd;
      if (report.flight.write(flight_path)) {
        std::fprintf(stderr, "flight dump: %s\n", flight_path.c_str());
      } else {
        std::fprintf(stderr, "error: cannot write flight dump %s\n",
                     flight_path.c_str());
      }
    }
  }

  const bool csv = cli.get_bool("csv", false);
  if (guided) {
    std::fputs((csv ? guided_table.render_csv() : guided_table.render())
                   .c_str(),
               stdout);
  }
  if (!guided || !report.outcomes.empty()) {
    std::fputs((csv ? table.render_csv() : table.render()).c_str(), stdout);
  }
  std::printf("\n");
  std::fputs((csv ? report.metrics.summary_table().render_csv()
                  : report.metrics.summary_table().render())
                 .c_str(),
             stdout);

  if (const auto path = cli.get("metrics"); path.has_value()) {
    std::FILE* f = std::fopen(path->c_str(), "w");
    if (f != nullptr) {
      const std::string json = report.metrics.json();
      const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
      if (std::fclose(f) != 0 || !ok) {
        std::fprintf(stderr, "error: cannot write %s\n", path->c_str());
        exit_code = exit_code == 0 ? 1 : exit_code;
      } else {
        std::printf("\nwrote registry snapshot to %s", path->c_str());
      }
    } else {
      std::fprintf(stderr, "error: cannot write %s\n", path->c_str());
      exit_code = exit_code == 0 ? 1 : exit_code;
    }
  }
  std::printf("\n");
  return exit_code;
}
