// snappif_chaos — seeded chaos soak runs against the recovery oracle.
//
// Soak mode (default): draw --campaigns random fault schedules, run each
// against the shared-memory campaign engine (and, with --mp, the
// message-passing runner), and export telemetry through the obs registry.
// An mp schedule containing crash(...) events — or the --emulate flag —
// routes the mp run to the GuardedEmulation campaign, where the paper's
// PifProtocol itself executes over the lossy crashing substrate
// (chaos/emulation_campaign.hpp); --crash makes the random schedules
// include crash windows.
// On the first failing campaign the schedule is shrunk to a minimal
// reproducer, a copy-pasteable repro command is printed to stderr, and the
// exit code is nonzero.
//
// Replay mode (--schedule='...'): run exactly one campaign from a grammar
// one-liner — the other end of the repro loop.
//
//   ./snappif_chaos [--topology=random] [--n=16] [--graph-seed=1] [--root=0]
//                   [--campaigns=20] [--seed=1] [--events=6] [--horizon=60]
//                   [--max-magnitude=4] [--daemon=distributed-random]
//                   [--mp] [--emulate] [--crash]
//                   [--schedule='12:burst*3;20:corrupt=fake-tree']
//                   [--break=none|broadcast-leaf|feedback-bleaf|count-wait]
//                   [--budget=0 (auto)] [--no-shrink] [--metrics=out.json]
//                   [--csv]
//
// --break ablates one protocol guard (the deliberately broken variants from
// the ablation benches) so the oracle and shrinker can be demonstrated on a
// protocol that is NOT snap-stabilizing.
#include <cstdio>
#include <memory>
#include <string>

#include "chaos/campaign.hpp"
#include "chaos/emulation_campaign.hpp"
#include "chaos/mp_campaign.hpp"
#include "chaos/schedule.hpp"
#include "chaos/shrink.hpp"
#include "graph/generators.hpp"
#include "obs/metrics.hpp"
#include "sim/daemon.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

using namespace snappif;

namespace {

bool daemon_by_name(const std::string& name, sim::DaemonKind* out) {
  for (const sim::DaemonKind kind : sim::standard_daemon_kinds()) {
    if (name == sim::daemon_kind_name(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

/// Maps --break to a Params tweak; returns false for unknown names.
bool break_by_name(const std::string& name,
                   std::function<void(pif::Params&)>* out) {
  if (name == "none") {
    *out = nullptr;
    return true;
  }
  if (name == "broadcast-leaf") {
    *out = [](pif::Params& p) { p.ablate_broadcast_leaf = true; };
    return true;
  }
  if (name == "feedback-bleaf") {
    *out = [](pif::Params& p) { p.ablate_feedback_bleaf = true; };
    return true;
  }
  if (name == "count-wait") {
    *out = [](pif::Params& p) { p.ablate_count_wait = true; };
    return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const util::Cli cli(argc, argv);
  for (const std::string& err : cli.errors()) {
    std::fprintf(stderr, "argument error: %s\n", err.c_str());
  }

  const std::string topology = cli.get_string("topology", "random");
  const auto n = static_cast<graph::NodeId>(cli.get_int("n", 16));
  const auto graph_seed =
      static_cast<std::uint64_t>(cli.get_int("graph-seed", 1));
  const auto g = graph::make_by_name(topology, n, graph_seed);
  if (!g.has_value()) {
    std::fprintf(stderr, "unknown --topology=%s (expected one of: %s)\n",
                 topology.c_str(), std::string(graph::topology_names()).c_str());
    return 2;
  }

  chaos::CampaignOptions opts;
  opts.root = static_cast<sim::ProcessorId>(cli.get_int("root", 0));
  const std::string daemon_name =
      cli.get_string("daemon", "distributed-random");
  if (!daemon_by_name(daemon_name, &opts.daemon)) {
    std::fprintf(stderr, "unknown --daemon=%s\n", daemon_name.c_str());
    return 2;
  }
  const std::string broken = cli.get_string("break", "none");
  if (!break_by_name(broken, &opts.tweak_params)) {
    std::fprintf(stderr,
                 "unknown --break=%s (none|broadcast-leaf|feedback-bleaf|"
                 "count-wait)\n",
                 broken.c_str());
    return 2;
  }
  opts.recovery_round_budget =
      static_cast<std::uint64_t>(cli.get_int("budget", 0));

  obs::Registry registry;
  opts.registry = &registry;

  const bool run_mp = cli.get_bool("mp", false);
  const bool emulate = cli.get_bool("emulate", false);
  const bool crash_windows = cli.get_bool("crash", false);
  const bool shrink_on_failure = cli.get_bool("shrink", true);
  const auto master_seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));

  chaos::CampaignShape shape;
  shape.events = static_cast<std::uint32_t>(cli.get_int("events", 6));
  shape.horizon_rounds = static_cast<std::uint64_t>(cli.get_int("horizon", 60));
  shape.max_magnitude =
      static_cast<std::uint32_t>(cli.get_int("max-magnitude", 4));
  shape.message_passing = run_mp;
  shape.crash = run_mp && crash_windows;
  shape.crash_processors = g->n();

  // Assemble the (schedule, seed) work list: one replay or a seeded soak.
  struct Job {
    chaos::FaultSchedule schedule;
    std::uint64_t seed;
  };
  std::vector<Job> jobs;
  if (const auto text = cli.get("schedule"); text.has_value()) {
    const auto parsed = chaos::FaultSchedule::parse(*text);
    if (!parsed.has_value()) {
      std::fprintf(stderr, "malformed --schedule='%s'\n", text->c_str());
      return 2;
    }
    jobs.push_back({*parsed, master_seed});
  } else {
    util::Rng master(master_seed);
    const auto campaigns =
        static_cast<std::uint64_t>(cli.get_int("campaigns", 20));
    for (std::uint64_t i = 0; i < campaigns; ++i) {
      jobs.push_back({chaos::random_schedule(shape, master), master()});
    }
  }

  util::Table table({"campaign", "schedule", "seed", "quiet", "to-normal",
                     "to-cycle", "snap", "status"});
  int exit_code = 0;
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    opts.seed = jobs[i].seed;
    const chaos::CampaignResult r = chaos::run_campaign(*g, jobs[i].schedule, opts);
    std::string schedule_text = jobs[i].schedule.to_string();
    if (schedule_text.size() > 40) {
      schedule_text.resize(37);
      schedule_text += "...";
    }
    table.add_row({util::fmt(static_cast<std::uint64_t>(i)), schedule_text,
                   util::fmt(opts.seed), util::fmt(r.quiet_round),
                   r.recovered ? util::fmt(r.rounds_to_normal) : "-",
                   r.recovered ? util::fmt(r.rounds_to_cycle_close) : "-",
                   r.snap_ok ? "ok" : "FAIL",
                   r.ok() ? "recovered" : r.failure});

    bool mp_failed = false;
    bool used_emulation = false;
    std::string mp_failure;
    if (run_mp) {
      // Crash events need processor fault semantics only the emulation
      // campaign implements; --emulate forces that runner for everything.
      if (emulate || jobs[i].schedule.contains(chaos::EventKind::kCrash)) {
        used_emulation = true;
        chaos::EmulationCampaignOptions emu_opts;
        emu_opts.root = opts.root;
        emu_opts.seed = opts.seed;
        emu_opts.registry = &registry;
        const chaos::EmulationCampaignResult er =
            chaos::run_emulation_campaign(*g, jobs[i].schedule, emu_opts);
        mp_failed = !er.ok();
        mp_failure = er.failure;
      } else {
        chaos::MpCampaignOptions mp_opts;
        mp_opts.root = opts.root;
        mp_opts.seed = opts.seed;
        mp_opts.registry = &registry;
        const chaos::MpCampaignResult mp_result =
            chaos::run_mp_campaign(*g, jobs[i].schedule, mp_opts);
        mp_failed = !mp_result.ok();
        mp_failure = mp_result.failure;
      }
    }

    if (!r.ok() || mp_failed) {
      exit_code = 1;
      const chaos::FaultSchedule* repro = &jobs[i].schedule;
      chaos::ShrinkResult shrunk;
      if (!r.ok() && shrink_on_failure) {
        shrunk = chaos::shrink_campaign(*g, jobs[i].schedule, opts);
        repro = &shrunk.minimal;
      } else if (mp_failed && used_emulation && shrink_on_failure) {
        chaos::EmulationCampaignOptions emu_opts;
        emu_opts.root = opts.root;
        emu_opts.seed = opts.seed;
        shrunk = chaos::shrink_emulation_campaign(*g, jobs[i].schedule,
                                                  emu_opts);
        repro = &shrunk.minimal;
      }
      if (shrunk.input_failed) {
        std::fprintf(stderr,
                     "shrunk %zu -> %zu events in %llu replays\n",
                     jobs[i].schedule.events.size(),
                     shrunk.minimal.events.size(),
                     static_cast<unsigned long long>(shrunk.campaigns_run));
      }
      std::fprintf(stderr, "campaign %zu FAILED: %s\n", i,
                   !r.ok() ? r.failure.c_str() : mp_failure.c_str());
      std::fprintf(
          stderr,
          "repro: %s --topology=%s --n=%u --graph-seed=%llu --root=%u "
          "--daemon=%s%s%s%s%s --seed=%llu --schedule='%s'\n",
          cli.program().c_str(), topology.c_str(), g->n(),
          static_cast<unsigned long long>(graph_seed), opts.root,
          daemon_name.c_str(), broken == "none" ? "" : " --break=",
          broken == "none" ? "" : broken.c_str(), run_mp ? " --mp" : "",
          emulate ? " --emulate" : "",
          static_cast<unsigned long long>(opts.seed),
          repro->to_string().c_str());
      break;  // first failure stops the soak; telemetry still exported below
    }
  }

  const bool csv = cli.get_bool("csv", false);
  std::fputs((csv ? table.render_csv() : table.render()).c_str(), stdout);
  std::printf("\n");
  std::fputs((csv ? registry.summary_table().render_csv()
                  : registry.summary_table().render())
                 .c_str(),
             stdout);

  if (const auto path = cli.get("metrics"); path.has_value()) {
    std::FILE* f = std::fopen(path->c_str(), "w");
    if (f != nullptr) {
      const std::string json = registry.json();
      const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
      if (std::fclose(f) != 0 || !ok) {
        std::fprintf(stderr, "error: cannot write %s\n", path->c_str());
        exit_code = exit_code == 0 ? 1 : exit_code;
      } else {
        std::printf("\nwrote registry snapshot to %s", path->c_str());
      }
    } else {
      std::fprintf(stderr, "error: cannot write %s\n", path->c_str());
      exit_code = exit_code == 0 ? 1 : exit_code;
    }
  }
  std::printf("\n");
  return exit_code;
}
