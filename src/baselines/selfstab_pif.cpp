#include "baselines/selfstab_pif.hpp"

#include <algorithm>

#include "graph/properties.hpp"
#include "util/assert.hpp"

namespace snappif::baselines {

SelfStabPifProtocol::SelfStabPifProtocol(const graph::Graph& g,
                                         sim::ProcessorId root)
    : graph_(&g), root_(root), dist_max_(g.n()) {
  SNAPPIF_ASSERT(root < g.n());
  true_dist_ = graph::bfs_distances(g, root);
}

SelfStabState SelfStabPifProtocol::initial_state(sim::ProcessorId p) const {
  SelfStabState s;
  if (p == root_) {
    s.dist = 0;
    s.parent = p;
  } else {
    // Clean start: correct BFS layer.
    s.dist = true_dist_[p];
    s.parent = graph_->neighbors(p)[0];
    for (sim::ProcessorId q : graph_->neighbors(p)) {
      if (true_dist_[q] + 1 == true_dist_[p]) {
        s.parent = q;
        break;
      }
    }
  }
  s.phase = TreePhase::kC;
  return s;
}

std::string_view SelfStabPifProtocol::action_name(sim::ActionId a) const {
  switch (a) {
    case kFixDist:
      return "FixDist";
    case kWaveB:
      return "B-action";
    case kWaveF:
      return "F-action";
    case kWaveC:
      return "C-action";
    default:
      return "?";
  }
}

std::uint32_t SelfStabPifProtocol::min_neighbor_dist(const Config& c,
                                                     sim::ProcessorId p) const {
  std::uint32_t best = dist_max_;
  for (sim::ProcessorId q : c.neighbors(p)) {
    best = std::min(best, c.state(q).dist);
  }
  return best;
}

bool SelfStabPifProtocol::dist_consistent(const Config& c,
                                          sim::ProcessorId p) const {
  if (p == root_) {
    return true;  // anchored constants
  }
  const SelfStabState& sp = c.state(p);
  const std::uint32_t m = min_neighbor_dist(c, p);
  const std::uint32_t target = std::min(m + 1, dist_max_);
  if (sp.dist != target) {
    return false;
  }
  if (!c.topology().has_edge(p, sp.parent)) {
    return false;
  }
  return c.state(sp.parent).dist == m;
}

bool SelfStabPifProtocol::children_all(const Config& c, sim::ProcessorId p,
                                       TreePhase ph) const {
  for (sim::ProcessorId q : c.neighbors(p)) {
    const SelfStabState& sq = c.state(q);
    if (q != root_ && sq.parent == p && sq.phase != ph) {
      return false;
    }
  }
  return true;
}

bool SelfStabPifProtocol::enabled(const Config& c, sim::ProcessorId p,
                                  sim::ActionId a) const {
  const SelfStabState& sp = c.state(p);
  switch (a) {
    case kFixDist:
      return p != root_ && !dist_consistent(c, p);
    case kWaveB:
      if (sp.phase != TreePhase::kC || !children_all(c, p, TreePhase::kC)) {
        return false;
      }
      if (p == root_) {
        return true;
      }
      // Receive only through a locally consistent tree edge.
      return dist_consistent(c, p) &&
             c.state(sp.parent).phase == TreePhase::kB;
    case kWaveF:
      return sp.phase == TreePhase::kB && children_all(c, p, TreePhase::kF);
    case kWaveC:
      if (sp.phase != TreePhase::kF || !children_all(c, p, TreePhase::kC)) {
        return false;
      }
      return p == root_ ||
             c.state(sp.parent).phase != TreePhase::kB;
    default:
      return false;
  }
}

sim::ActionMask SelfStabPifProtocol::enabled_mask(const Config& c,
                                                  sim::ProcessorId p) const {
  const SelfStabState& sp = c.state(p);
  std::uint32_t min_dist = dist_max_;
  bool parent_is_neighbor = false;
  bool children_c = true;
  bool children_f = true;
  for (sim::ProcessorId q : c.neighbors(p)) {
    const SelfStabState& sq = c.state(q);
    min_dist = std::min(min_dist, sq.dist);
    if (q == sp.parent) {
      parent_is_neighbor = true;
    }
    if (q != root_ && sq.parent == p) {
      children_c = children_c && sq.phase == TreePhase::kC;
      children_f = children_f && sq.phase == TreePhase::kF;
    }
  }
  // dist_consistent, from the shared intermediates (O(1) parent read; the
  // reference reads c.state(sp.parent) directly, so mirror that rather than
  // relying on sp.parent being a neighbor).
  bool consistent = true;
  if (p != root_) {
    consistent = parent_is_neighbor &&
                 sp.dist == std::min(min_dist + 1, dist_max_) &&
                 c.state(sp.parent).dist == min_dist;
  }
  const bool parent_b =
      p != root_ && c.state(sp.parent).phase == TreePhase::kB;
  sim::ActionMask mask = 0;
  if (p != root_ && !consistent) {
    mask |= sim::ActionMask{1} << kFixDist;
  }
  if (sp.phase == TreePhase::kC && children_c &&
      (p == root_ || (consistent && parent_b))) {
    mask |= sim::ActionMask{1} << kWaveB;
  }
  if (sp.phase == TreePhase::kB && children_f) {
    mask |= sim::ActionMask{1} << kWaveF;
  }
  if (sp.phase == TreePhase::kF && children_c && (p == root_ || !parent_b)) {
    mask |= sim::ActionMask{1} << kWaveC;
  }
  return mask;
}

SelfStabState SelfStabPifProtocol::apply(const Config& c, sim::ProcessorId p,
                                         sim::ActionId a) const {
  SelfStabState next = c.state(p);
  switch (a) {
    case kFixDist: {
      const std::uint32_t m = min_neighbor_dist(c, p);
      next.dist = std::min(m + 1, dist_max_);
      // Par := the >_p-minimum neighbor at distance m.
      for (sim::ProcessorId q : c.neighbors(p)) {
        if (c.state(q).dist == m) {
          next.parent = q;
          break;
        }
      }
      break;
    }
    case kWaveB:
      next.phase = TreePhase::kB;
      break;
    case kWaveF:
      next.phase = TreePhase::kF;
      break;
    case kWaveC:
      next.phase = TreePhase::kC;
      break;
    default:
      SNAPPIF_ASSERT_MSG(false, "unknown action id");
  }
  return next;
}

SelfStabState SelfStabPifProtocol::random_state(sim::ProcessorId p,
                                                util::Rng& rng) const {
  SelfStabState s;
  if (p == root_) {
    s.dist = 0;
    s.parent = p;
  } else {
    s.dist = static_cast<std::uint32_t>(rng.below(dist_max_ + 1));
    const auto nbrs = graph_->neighbors(p);
    s.parent = nbrs[rng.below(nbrs.size())];
  }
  switch (rng.below(3)) {
    case 0:
      s.phase = TreePhase::kB;
      break;
    case 1:
      s.phase = TreePhase::kF;
      break;
    default:
      s.phase = TreePhase::kC;
      break;
  }
  return s;
}

std::vector<SelfStabState> SelfStabPifProtocol::all_states(
    sim::ProcessorId p) const {
  std::vector<SelfStabState> out;
  for (TreePhase phase : {TreePhase::kB, TreePhase::kF, TreePhase::kC}) {
    if (p == root_) {
      SelfStabState s;
      s.dist = 0;
      s.parent = p;
      s.phase = phase;
      out.push_back(s);
      continue;
    }
    for (std::uint32_t dist = 0; dist <= dist_max_; ++dist) {
      for (sim::ProcessorId parent : graph_->neighbors(p)) {
        SelfStabState s;
        s.dist = dist;
        s.parent = parent;
        s.phase = phase;
        out.push_back(s);
      }
    }
  }
  return out;
}

bool SelfStabPifProtocol::bfs_stable(const Config& c) const {
  for (sim::ProcessorId p = 0; p < c.n(); ++p) {
    if (p == root_) {
      continue;
    }
    if (c.state(p).dist != true_dist_[p] || !dist_consistent(c, p)) {
      return false;
    }
  }
  return true;
}

SelfStabGhost::SelfStabGhost(const graph::Graph& g, sim::ProcessorId root)
    : root_(root), n_(g.n()) {
  msg_.assign(n_, 0);
  received_.assign(n_, false);
}

void SelfStabGhost::on_apply(sim::ProcessorId p, sim::ActionId a,
                             const sim::Configuration<SelfStabState>& before,
                             const SelfStabState& /*after*/) {
  if (p == root_) {
    if (a == kWaveB) {
      ++message_;
      active_ = true;
      received_.assign(n_, false);
      msg_[root_] = message_;
      received_[root_] = true;
      return;
    }
    if (a == kWaveF && active_) {
      ++completed_;
      bool all = true;
      for (sim::ProcessorId q = 0; q < n_; ++q) {
        all = all && received_[q];
      }
      if (all) {
        ++ok_;
        if (first_ok_ == 0) {
          first_ok_ = completed_;
        }
      }
      active_ = false;
      return;
    }
    return;
  }
  if (a == kWaveB) {
    // Receives through its current parent pointer (unchanged by B-action).
    msg_[p] = msg_[before.state(p).parent];
    if (active_ && msg_[p] == message_) {
      received_[p] = true;
    }
  }
}

}  // namespace snappif::baselines
