#include "baselines/tree_pif.hpp"

#include "graph/properties.hpp"
#include "util/assert.hpp"

namespace snappif::baselines {

TreePifProtocol::TreePifProtocol(const graph::Graph& g, sim::ProcessorId root,
                                 std::vector<sim::ProcessorId> parent)
    : root_(root), parent_(std::move(parent)) {
  SNAPPIF_ASSERT_MSG(
      graph::spanning_tree_height(g, root, parent_).has_value(),
      "parent array must encode a spanning tree of g rooted at root");
  children_.assign(g.n(), {});
  for (sim::ProcessorId v = 0; v < g.n(); ++v) {
    if (v != root_) {
      children_[parent_[v]].push_back(v);
    }
  }
}

std::string_view TreePifProtocol::action_name(sim::ActionId a) const {
  switch (a) {
    case kTreeB:
      return "B-action";
    case kTreeF:
      return "F-action";
    case kTreeC:
      return "C-action";
    default:
      return "?";
  }
}

bool TreePifProtocol::children_all(const Config& c, sim::ProcessorId p,
                                   TreePhase ph) const {
  for (sim::ProcessorId q : children_[p]) {
    if (c.state(q).pif != ph) {
      return false;
    }
  }
  return true;
}

bool TreePifProtocol::enabled(const Config& c, sim::ProcessorId p,
                              sim::ActionId a) const {
  const TreePhase ph = c.state(p).pif;
  switch (a) {
    case kTreeB:
      if (ph != TreePhase::kC || !children_all(c, p, TreePhase::kC)) {
        return false;
      }
      return p == root_ || c.state(parent_[p]).pif == TreePhase::kB;
    case kTreeF:
      return ph == TreePhase::kB && children_all(c, p, TreePhase::kF);
    case kTreeC:
      if (ph != TreePhase::kF || !children_all(c, p, TreePhase::kC)) {
        return false;
      }
      return p == root_ || c.state(parent_[p]).pif != TreePhase::kB;
    default:
      return false;
  }
}

sim::ActionMask TreePifProtocol::enabled_mask(const Config& c,
                                              sim::ProcessorId p) const {
  const TreePhase ph = c.state(p).pif;
  bool children_c = true;
  bool children_f = true;
  for (sim::ProcessorId q : children_[p]) {
    const TreePhase cq = c.state(q).pif;
    children_c = children_c && cq == TreePhase::kC;
    children_f = children_f && cq == TreePhase::kF;
  }
  const bool parent_b =
      p != root_ && c.state(parent_[p]).pif == TreePhase::kB;
  sim::ActionMask mask = 0;
  if (ph == TreePhase::kC && children_c && (p == root_ || parent_b)) {
    mask |= sim::ActionMask{1} << kTreeB;
  }
  if (ph == TreePhase::kB && children_f) {
    mask |= sim::ActionMask{1} << kTreeF;
  }
  if (ph == TreePhase::kF && children_c && (p == root_ || !parent_b)) {
    mask |= sim::ActionMask{1} << kTreeC;
  }
  return mask;
}

TreePifState TreePifProtocol::apply(const Config& c, sim::ProcessorId p,
                                    sim::ActionId a) const {
  TreePifState next = c.state(p);
  switch (a) {
    case kTreeB:
      next.pif = TreePhase::kB;
      break;
    case kTreeF:
      next.pif = TreePhase::kF;
      break;
    case kTreeC:
      next.pif = TreePhase::kC;
      break;
    default:
      SNAPPIF_ASSERT_MSG(false, "unknown action id");
  }
  return next;
}

TreePifState TreePifProtocol::random_state(sim::ProcessorId /*p*/,
                                           util::Rng& rng) const {
  TreePifState s;
  switch (rng.below(3)) {
    case 0:
      s.pif = TreePhase::kB;
      break;
    case 1:
      s.pif = TreePhase::kF;
      break;
    default:
      s.pif = TreePhase::kC;
      break;
  }
  return s;
}

std::vector<TreePifState> TreePifProtocol::all_states(
    sim::ProcessorId /*p*/) const {
  return {{TreePhase::kB}, {TreePhase::kF}, {TreePhase::kC}};
}

TreePifGhost::TreePifGhost(const graph::Graph& g, sim::ProcessorId root)
    : root_(root), n_(g.n()) {
  msg_.assign(n_, 0);
  received_.assign(n_, false);
}

void TreePifGhost::on_apply(sim::ProcessorId p, sim::ActionId a,
                            const sim::Configuration<TreePifState>& /*before*/,
                            const TreePifState& /*after*/,
                            const TreePifProtocol& proto) {
  if (p == root_ && a == kTreeB) {
    ++message_;
    active_ = true;
    received_.assign(n_, false);
    msg_[root_] = message_;
    received_[root_] = true;
    return;
  }
  if (p == root_ && a == kTreeF) {
    if (active_) {
      bool all = true;
      for (sim::ProcessorId q = 0; q < n_; ++q) {
        all = all && received_[q];
      }
      ++completed_;
      last_ok_ = all;
      if (all) {
        ++ok_;
      }
      active_ = false;
    }
    return;
  }
  if (p != root_ && a == kTreeB) {
    msg_[p] = msg_[proto.parent_of(p)];
    if (active_ && msg_[p] == message_) {
      received_[p] = true;
    }
  }
}

}  // namespace snappif::baselines
