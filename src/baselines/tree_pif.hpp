// Baseline 1: three-phase PIF over a *pre-constructed* spanning tree.
//
// This is the setting of the tree-network PIF protocols the paper cites
// ([7, 9]): the wave does not build its own tree — it rides a fixed spanning
// tree given as input.  Each processor keeps only the phase variable
// Pif in {B, F, C}:
//
//   root:      C /\ children all C  ->  B        (broadcast m)
//              B /\ children all F  ->  F        (feedback complete)
//              F /\ children all C  ->  C        (cleaning complete)
//   non-root:  C /\ parent B /\ children all C -> B   (receive + forward)
//              B /\ children all F  ->  F        (acknowledge)
//              F /\ parent in {F,C} /\ children all C -> C
//
// From a clean start this executes perfect PIF cycles in Theta(h) rounds and
// is the cost yardstick for E8 (what the arbitrary-network protocol pays for
// not assuming a spanning tree).  From an arbitrary start it is NOT
// snap-stabilizing: a stale B processor inside the tree absorbs its
// descendants into a phantom broadcast whose feedback the root cannot
// distinguish from the real one — the failure mode motivating the paper.
// E5 measures exactly that.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "sim/configuration.hpp"
#include "sim/types.hpp"
#include "util/rng.hpp"

namespace snappif::baselines {

enum class TreePhase : std::uint8_t { kB = 0, kF = 1, kC = 2 };

struct TreePifState {
  TreePhase pif = TreePhase::kC;

  [[nodiscard]] bool operator==(const TreePifState&) const noexcept = default;
  [[nodiscard]] std::uint64_t hash() const noexcept {
    return static_cast<std::uint64_t>(pif) * 0x9e3779b97f4a7c15ULL + 1;
  }
};

enum TreePifAction : sim::ActionId {
  kTreeB = 0,
  kTreeF = 1,
  kTreeC = 2,
  kTreeNumActions = 3,
};

class TreePifProtocol {
 public:
  using State = TreePifState;
  using Config = sim::Configuration<State>;

  /// `parent[v]` must encode a spanning tree of g rooted at `root`
  /// (parent[root] == root).
  TreePifProtocol(const graph::Graph& g, sim::ProcessorId root,
                  std::vector<sim::ProcessorId> parent);

  [[nodiscard]] sim::ProcessorId root() const noexcept { return root_; }
  [[nodiscard]] sim::ProcessorId parent_of(sim::ProcessorId p) const {
    return parent_.at(p);
  }
  [[nodiscard]] const std::vector<sim::ProcessorId>& children_of(
      sim::ProcessorId p) const {
    return children_.at(p);
  }

  // Protocol concept.
  [[nodiscard]] State initial_state(sim::ProcessorId) const { return {}; }
  [[nodiscard]] sim::ActionId num_actions() const noexcept { return kTreeNumActions; }
  [[nodiscard]] std::string_view action_name(sim::ActionId a) const;
  [[nodiscard]] bool enabled(const Config& c, sim::ProcessorId p,
                             sim::ActionId a) const;
  /// All three guards from one pass over p's children.
  [[nodiscard]] sim::ActionMask enabled_mask(const Config& c,
                                             sim::ProcessorId p) const;
  [[nodiscard]] State apply(const Config& c, sim::ProcessorId p,
                            sim::ActionId a) const;
  [[nodiscard]] State random_state(sim::ProcessorId p, util::Rng& rng) const;
  /// The complete state domain of any processor (the three phases).
  [[nodiscard]] std::vector<State> all_states(sim::ProcessorId p) const;

 private:
  [[nodiscard]] bool children_all(const Config& c, sim::ProcessorId p,
                                  TreePhase ph) const;

  sim::ProcessorId root_;
  std::vector<sim::ProcessorId> parent_;
  std::vector<std::vector<sim::ProcessorId>> children_;
};

/// Ghost message tracking for TreePifProtocol, mirroring pif::GhostTracker:
/// cycles open at the root's B-action and close at its F-action; [PIF1]
/// requires every processor to have received the cycle's message.
class TreePifGhost {
 public:
  TreePifGhost(const graph::Graph& g, sim::ProcessorId root);

  void on_apply(sim::ProcessorId p, sim::ActionId a,
                const sim::Configuration<TreePifState>& before,
                const TreePifState& after, const TreePifProtocol& proto);

  [[nodiscard]] std::uint64_t cycles_completed() const noexcept {
    return completed_;
  }
  [[nodiscard]] std::uint64_t cycles_ok() const noexcept { return ok_; }
  [[nodiscard]] bool last_ok() const noexcept { return last_ok_; }
  [[nodiscard]] bool cycle_active() const noexcept { return active_; }

 private:
  sim::ProcessorId root_;
  sim::ProcessorId n_;
  bool active_ = false;
  bool last_ok_ = false;
  std::uint64_t message_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t ok_ = 0;
  std::vector<std::uint64_t> msg_;
  std::vector<bool> received_;
};

}  // namespace snappif::baselines
