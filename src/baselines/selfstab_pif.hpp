// Baseline 2: a self-stabilizing — but NOT snap-stabilizing — PIF for
// arbitrary rooted networks, representative of the protocols the paper
// improves upon ([12, 23]).
//
// Two composed layers:
//   1. BFS layer: each p != r repairs (Dist_p, Par_p) toward
//      Dist_p = 1 + min_q Dist_q with Par_p a minimum neighbor (the root is
//      anchored at Dist_r = 0).  Classic min-propagation, self-stabilizes in
//      O(diameter) rounds.
//   2. Wave layer: the three-phase B/F/C PIF (same scheme as the fixed-tree
//      baseline) riding the *current* Par pointers.
//
// Once the BFS layer has stabilized, the Par pointers form a genuine BFS
// spanning tree and every subsequent wave is a correct PIF cycle.  But from
// an arbitrary initial configuration the Par structure can be wrong — e.g.,
// the root's neighbors may not point at it, so children(r) is empty and the
// root "completes" broadcast-and-feedback instantly having reached nobody;
// or distance-plateau cycles detach whole regions.  Those early waves are
// lost: exactly the drawback quoted in the paper's introduction (a
// self-stabilizing PIF only *eventually* delivers).  E5 counts them.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

#include "baselines/tree_pif.hpp"  // reuse TreePhase
#include "graph/graph.hpp"
#include "sim/configuration.hpp"
#include "sim/types.hpp"
#include "util/rng.hpp"

namespace snappif::baselines {

struct SelfStabState {
  std::uint32_t dist = 0;       // [0, dist_max]
  sim::ProcessorId parent = 0;  // neighbor id (root: self)
  TreePhase phase = TreePhase::kC;

  [[nodiscard]] bool operator==(const SelfStabState&) const noexcept = default;
  [[nodiscard]] std::uint64_t hash() const noexcept {
    std::uint64_t h = dist;
    h = util::hash_combine(h, parent);
    h = util::hash_combine(h, static_cast<std::uint64_t>(phase));
    return h;
  }
};

enum SelfStabAction : sim::ActionId {
  kFixDist = 0,   // p != r: repair (Dist, Par)
  kWaveB = 1,     // receive/initiate the broadcast
  kWaveF = 2,     // feedback
  kWaveC = 3,     // cleaning
  kSelfStabNumActions = 4,
};

class SelfStabPifProtocol {
 public:
  using State = SelfStabState;
  using Config = sim::Configuration<State>;

  SelfStabPifProtocol(const graph::Graph& g, sim::ProcessorId root);

  [[nodiscard]] sim::ProcessorId root() const noexcept { return root_; }
  [[nodiscard]] std::uint32_t dist_max() const noexcept { return dist_max_; }

  // Protocol concept.
  [[nodiscard]] State initial_state(sim::ProcessorId p) const;
  [[nodiscard]] sim::ActionId num_actions() const noexcept {
    return kSelfStabNumActions;
  }
  [[nodiscard]] std::string_view action_name(sim::ActionId a) const;
  [[nodiscard]] bool enabled(const Config& c, sim::ProcessorId p,
                             sim::ActionId a) const;
  /// All four guards from one neighborhood walk (min dist + child phases +
  /// parent-edge check shared across guards).
  [[nodiscard]] sim::ActionMask enabled_mask(const Config& c,
                                             sim::ProcessorId p) const;
  [[nodiscard]] State apply(const Config& c, sim::ProcessorId p,
                            sim::ActionId a) const;
  [[nodiscard]] State random_state(sim::ProcessorId p, util::Rng& rng) const;
  /// The complete state domain of processor p: (dist_max+1) * deg * 3
  /// (root: 3).
  [[nodiscard]] std::vector<State> all_states(sim::ProcessorId p) const;

  /// True iff the BFS layer equals the true BFS distance function (with
  /// parents one level up); used to measure layer-1 stabilization.
  [[nodiscard]] bool bfs_stable(const Config& c) const;

  /// p's (Dist, Par) agrees with the min rule (local consistency).
  [[nodiscard]] bool dist_consistent(const Config& c, sim::ProcessorId p) const;

 private:
  [[nodiscard]] std::uint32_t min_neighbor_dist(const Config& c,
                                                sim::ProcessorId p) const;
  /// All q with Par_q = p currently hold phase `ph`.
  [[nodiscard]] bool children_all(const Config& c, sim::ProcessorId p,
                                  TreePhase ph) const;

  const graph::Graph* graph_;
  sim::ProcessorId root_;
  std::uint32_t dist_max_;
  std::vector<std::uint32_t> true_dist_;
};

/// Wave delivery tracking, mirroring pif::GhostTracker: a cycle opens at the
/// root's B-action and closes at its F-action; it is *correct* iff every
/// processor received the cycle's ghost message in between.
class SelfStabGhost {
 public:
  SelfStabGhost(const graph::Graph& g, sim::ProcessorId root);

  void on_apply(sim::ProcessorId p, sim::ActionId a,
                const sim::Configuration<SelfStabState>& before,
                const SelfStabState& after);

  [[nodiscard]] std::uint64_t waves_completed() const noexcept {
    return completed_;
  }
  [[nodiscard]] std::uint64_t waves_ok() const noexcept { return ok_; }
  /// 1-based index of the first correct wave (0 if none yet).
  [[nodiscard]] std::uint64_t first_ok_wave() const noexcept { return first_ok_; }

 private:
  sim::ProcessorId root_;
  sim::ProcessorId n_;
  bool active_ = false;
  std::uint64_t message_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t ok_ = 0;
  std::uint64_t first_ok_ = 0;
  std::vector<std::uint64_t> msg_;
  std::vector<bool> received_;
};

}  // namespace snappif::baselines
