// The execution engine.
//
// Simulator<P> runs a Protocol P on a graph under a daemon, implementing the
// computation-step semantics of Section 2: the daemon picks a non-empty
// subset of the enabled processors; each picked processor atomically
// evaluates one enabled action's guard and executes its statement; all
// statements in one step read the *same* pre-step configuration (composite
// atomicity), so concurrent moves are well defined.
//
// The engine caches the full action mask of every processor (see
// sim::enabled_mask in protocol.hpp): an action's guard reads only its
// processor's and its neighbors' variables, so after a step only the executed
// processors and their neighbors can change enabledness.  flush_dirty()
// re-evaluates exactly those masks and maintains `enabled_list_` incrementally
// via a position index (swap-remove, O(1) per transition); the list is
// therefore NOT sorted — daemons receive an arbitrary-order set.  Steady-state
// stepping performs no heap allocation (asserted by a counting-allocator
// test); all bookkeeping lives in flat reusable buffers.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "sim/configuration.hpp"
#include "sim/daemon.hpp"
#include "sim/probe.hpp"
#include "sim/protocol.hpp"
#include "sim/rounds.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace snappif::sim {

/// How a processor with several enabled actions picks one.  The paper's
/// guards are designed to be pairwise mutually exclusive in reachable
/// configurations (asserted in tests), but arbitrary *initial* configurations
/// may enable several actions at once; the choice is the adversary's.
enum class ActionPolicy {
  kFirstEnabled,   // deterministic: lowest action id
  kRandomEnabled,  // adversary explored via randomization
};

/// Why a run stopped.
enum class StopReason {
  kPredicate,   // the caller's goal predicate became true
  kTerminal,    // no processor enabled (should not happen for PIF; tested)
  kStepLimit,
  kRoundLimit,
};

struct RunLimits {
  std::uint64_t max_steps = 1'000'000;
  std::uint64_t max_rounds = std::numeric_limits<std::uint64_t>::max();
};

struct RunResult {
  StopReason reason = StopReason::kTerminal;
  std::uint64_t steps = 0;   // steps executed during this run call
  std::uint64_t rounds = 0;  // rounds completed during this run call
};

template <Protocol P>
class Simulator {
 public:
  using State = typename P::State;
  using Config = Configuration<State>;
  using Probe = IProbe<P>;
  /// Called once per executed action with the pre-step configuration and the
  /// processor's new state; used for ghost-variable instrumentation.
  /// Installed as an owned FunctionProbe (see set_apply_hook).
  using ApplyHook =
      std::function<void(ProcessorId, ActionId, const Config&, const State&)>;

  Simulator(P protocol, const graph::Graph& g, std::uint64_t seed = 1)
      : protocol_(std::move(protocol)),
        config_(g, protocol_.initial_state(0)),
        rng_(seed) {
    for (ProcessorId p = 0; p < config_.n(); ++p) {
      config_.state(p) = protocol_.initial_state(p);
    }
    rebuild_enabled();
  }

  /// Copying forks the simulation state (configuration, cached action masks,
  /// RNG, round/step accounting) — used by lookahead searches.  Attached
  /// observers (probes, the apply hook, the trace recorder) are bound to an
  /// instance and do not follow the copy; a copy starts with none, and
  /// copy-assignment keeps the destination's own attachments.
  Simulator(const Simulator& other)
      : protocol_(other.protocol_),
        config_(other.config_),
        rng_(other.rng_),
        policy_(other.policy_),
        score_(other.score_),
        masks_(other.masks_),
        enabled_(other.enabled_),
        enabled_list_(other.enabled_list_),
        enabled_pos_(other.enabled_pos_),
        dirty_(other.dirty_),
        executed_(other.executed_),
        rounds_(other.rounds_),
        steps_(other.steps_),
        action_counts_(other.action_counts_) {}
  Simulator& operator=(const Simulator& other) {
    if (this == &other) {
      return *this;
    }
    protocol_ = other.protocol_;
    config_ = other.config_;
    rng_ = other.rng_;
    policy_ = other.policy_;
    score_ = other.score_;
    masks_ = other.masks_;
    enabled_ = other.enabled_;
    enabled_list_ = other.enabled_list_;
    enabled_pos_ = other.enabled_pos_;
    dirty_ = other.dirty_;
    dirty_list_.clear();
    executed_ = other.executed_;
    rounds_ = other.rounds_;
    steps_ = other.steps_;
    action_counts_ = other.action_counts_;
    return *this;
  }
  Simulator(Simulator&&) = default;
  Simulator& operator=(Simulator&&) = default;

  [[nodiscard]] const P& protocol() const noexcept { return protocol_; }
  [[nodiscard]] const Config& config() const noexcept { return config_; }
  [[nodiscard]] const graph::Graph& topology() const noexcept {
    return config_.topology();
  }
  [[nodiscard]] util::Rng& rng() noexcept { return rng_; }

  /// Overwrites one processor's state (test fixtures, fault injection).
  void set_state(ProcessorId p, const State& s) {
    config_.state(p) = s;
    mark_dirty_around(p);
    flush_dirty();
    rounds_.begin(enabled_);
    notify_attach();
  }

  /// Resets every processor to the protocol's designated initial state.
  void reset_to_initial() {
    for (ProcessorId p = 0; p < config_.n(); ++p) {
      config_.state(p) = protocol_.initial_state(p);
    }
    rebuild_enabled();
    steps_ = 0;
    action_counts_.assign(protocol_.num_actions(), 0);
    notify_attach();
  }

  /// Draws every processor's state uniformly from its state space —
  /// the "arbitrary initial configuration" of the snap-stabilization
  /// definition.
  void randomize(util::Rng& rng) {
    for (ProcessorId p = 0; p < config_.n(); ++p) {
      config_.state(p) = protocol_.random_state(p, rng);
    }
    rebuild_enabled();
    notify_attach();
  }

  void set_action_policy(ActionPolicy policy) noexcept { policy_ = policy; }

  /// Attaches an observer (non-owning; must outlive the simulator or be
  /// removed).  Probes are invoked in attachment order.
  void add_probe(Probe* probe) {
    SNAPPIF_ASSERT(probe != nullptr);
    probes_.push_back(probe);
    probe->on_attach(config_);
  }
  void remove_probe(Probe* probe) {
    std::erase(probes_, probe);
  }
  [[nodiscard]] bool has_probes() const noexcept { return !probes_.empty(); }

  /// Convenience: installs `hook` as an owned FunctionProbe.  Replaces any
  /// previously installed hook; nullptr uninstalls.  Other probes attached
  /// via add_probe are unaffected.
  void set_apply_hook(ApplyHook hook) {
    if (hook_probe_ != nullptr) {
      remove_probe(hook_probe_.get());
      hook_probe_.reset();
    }
    if (hook) {
      hook_probe_ = std::make_unique<FunctionProbe<P>>(std::move(hook));
      add_probe(hook_probe_.get());
    }
  }
  /// Score used by adversarial daemons (e.g., the level variable).
  void set_score(std::function<std::int64_t(const State&)> score) {
    score_ = std::move(score);
  }
  /// Attaches a trace recorder (nullptr detaches).
  void set_trace(Trace* trace) noexcept { trace_ = trace; }

  [[nodiscard]] bool is_enabled(ProcessorId p) const { return masks_[p] != 0; }
  [[nodiscard]] bool any_enabled() const noexcept { return !enabled_list_.empty(); }
  /// The enabled set, in unspecified order (incremental swap-remove
  /// maintenance; daemons must not assume sorted input).
  [[nodiscard]] std::span<const ProcessorId> enabled_processors() const noexcept {
    return enabled_list_;
  }

  /// Cached action mask of p, always in sync with config() between steps.
  [[nodiscard]] ActionMask enabled_mask_of(ProcessorId p) const {
    return masks_[p];
  }

  /// Enabled actions of p, in action-id order.
  [[nodiscard]] std::vector<ActionId> enabled_actions(ProcessorId p) const {
    std::vector<ActionId> out;
    for (ActionMask m = masks_[p]; m != 0; m &= m - 1) {
      out.push_back(first_action(m));
    }
    return out;
  }

  /// Executes one computation step under `daemon`.  Returns false iff the
  /// configuration is terminal (no enabled processor), in which case nothing
  /// happens.
  bool step(IDaemon& daemon) {
    if (enabled_list_.empty()) {
      return false;
    }
    DaemonContext ctx;
    ctx.n = config_.n();
    ctx.step = steps_;
    if (score_) {
      ctx.score = [this](ProcessorId p) { return score_(config_.state(p)); };
    }
    selected_.clear();
    daemon.select(enabled_list_, ctx, rng_, selected_);
    SNAPPIF_ASSERT_MSG(!selected_.empty(), "daemon must select a non-empty subset");

    // Phase 1: choose actions and compute new states against the pre-step
    // configuration.
    staged_.clear();
    for (ProcessorId p : selected_) {
      SNAPPIF_ASSERT_MSG(masks_[p] != 0, "daemon selected a disabled processor");
      const ActionId a = choose_action(p);
      staged_.push_back({p, a, protocol_.apply(config_, p, a)});
    }
    if (trace_ != nullptr) {
      StepRecord rec;
      rec.step = steps_;
      rec.rounds_before = rounds_.rounds();
      for (const auto& s : staged_) {
        rec.choices.push_back({s.processor, s.action});
      }
      trace_->record(std::move(rec));
    }
    StepEvent ev;
    if (!probes_.empty()) {
      choices_.clear();
      for (const auto& s : staged_) {
        choices_.push_back({s.processor, s.action});
      }
      ev.step = steps_;
      ev.rounds_before = rounds_.rounds();
      ev.selected = selected_;
      ev.choices = choices_;
      ev.enabled_before = enabled_list_.size();
      ev.action_counts = action_counts_;
      for (Probe* probe : probes_) {
        probe->on_step_begin(ev, config_);
      }
      for (const auto& s : staged_) {
        for (Probe* probe : probes_) {
          probe->on_apply(s.processor, s.action, config_, s.next);
        }
      }
    }

    // Phase 2: commit all writes, then refresh enabledness around writers.
    for (auto& s : staged_) {
      config_.state(s.processor) = std::move(s.next);
      executed_[s.processor] = 1;
      if (s.action < action_counts_.size()) {
        ++action_counts_[s.action];
      }
    }
    for (const auto& s : staged_) {
      mark_dirty_around(s.processor);
    }
    flush_dirty();
    ++steps_;
    const bool round_done = rounds_.on_step(executed_, enabled_);
    // Clear only the set flags — O(|staged|), not O(n).
    for (const auto& s : staged_) {
      executed_[s.processor] = 0;
    }
    if (!probes_.empty()) {
      ev.enabled_after = enabled_list_.size();
      for (Probe* probe : probes_) {
        probe->on_step_end(ev, config_);
      }
      if (round_done) {
        for (Probe* probe : probes_) {
          probe->on_round_complete(rounds_.rounds(), ev, config_);
        }
      }
    }
    return true;
  }

  /// Runs until `goal(config)` holds (checked before each step), the
  /// configuration is terminal, or a limit is hit.
  template <typename Goal>
  RunResult run_until(IDaemon& daemon, Goal&& goal, RunLimits limits = {}) {
    RunResult result;
    const std::uint64_t rounds_at_start = rounds_.rounds();
    while (true) {
      result.rounds = rounds_.rounds() - rounds_at_start;
      if (goal(config_)) {
        result.reason = StopReason::kPredicate;
        return result;
      }
      if (result.steps >= limits.max_steps) {
        result.reason = StopReason::kStepLimit;
        return result;
      }
      if (result.rounds >= limits.max_rounds) {
        result.reason = StopReason::kRoundLimit;
        return result;
      }
      if (!step(daemon)) {
        result.reason = StopReason::kTerminal;
        return result;
      }
      ++result.steps;
    }
  }

  /// Total computation steps executed since construction/reset.
  [[nodiscard]] std::uint64_t steps() const noexcept { return steps_; }
  /// Total completed rounds since the last reset/randomize/set_state.
  [[nodiscard]] std::uint64_t rounds() const noexcept { return rounds_.rounds(); }
  /// Executions of action `a` since construction/reset.
  [[nodiscard]] std::uint64_t action_count(ActionId a) const {
    return action_counts_.at(a);
  }
  [[nodiscard]] std::vector<std::string> action_names() const {
    std::vector<std::string> names;
    for (ActionId a = 0; a < protocol_.num_actions(); ++a) {
      names.emplace_back(protocol_.action_name(a));
    }
    return names;
  }

 private:
  struct Staged {
    ProcessorId processor;
    ActionId action;
    State next;
  };

  static constexpr std::uint32_t kNotInList = 0xffffffff;

  [[nodiscard]] ActionId choose_action(ProcessorId p) {
    const ActionMask mask = masks_[p];
    SNAPPIF_ASSERT_MSG(mask != 0, "selected processor has no enabled action");
    if (policy_ == ActionPolicy::kFirstEnabled) {
      return first_action(mask);
    }
    const auto count = static_cast<std::uint32_t>(std::popcount(mask));
    return nth_action(mask, static_cast<std::uint32_t>(rng_.below(count)));
  }

  void rebuild_enabled() {
    const ProcessorId n = config_.n();
    masks_.assign(n, 0);
    enabled_.assign(n, 0);
    enabled_pos_.assign(n, kNotInList);
    enabled_list_.clear();
    for (ProcessorId p = 0; p < n; ++p) {
      masks_[p] = sim::enabled_mask(protocol_, config_, p);
      if (masks_[p] != 0) {
        enabled_[p] = 1;
        enabled_pos_[p] = static_cast<std::uint32_t>(enabled_list_.size());
        enabled_list_.push_back(p);
      }
    }
    dirty_.assign(n, 0);
    dirty_list_.clear();
    executed_.assign(n, 0);
    // Every per-step buffer is bounded by n; reserving the bound up front
    // makes the steady-state zero-allocation invariant unconditional instead
    // of dependent on early steps hitting the high-water mark.
    enabled_list_.reserve(n);
    dirty_list_.reserve(n);
    selected_.reserve(n);
    staged_.reserve(n);
    choices_.reserve(n);
    rounds_.begin(enabled_);
    if (action_counts_.size() != protocol_.num_actions()) {
      action_counts_.assign(protocol_.num_actions(), 0);
    }
  }

  void mark_dirty_around(ProcessorId p) {
    if (!dirty_[p]) {
      dirty_[p] = 1;
      dirty_list_.push_back(p);
    }
    for (ProcessorId q : config_.neighbors(p)) {
      if (!dirty_[q]) {
        dirty_[q] = 1;
        dirty_list_.push_back(q);
      }
    }
  }

  /// Recomputes the masks of dirty processors and updates the enabled list
  /// in place: O(1) swap-remove/append per enabledness transition, no full
  /// rebuild.  Invariant outside this call: enabled_list_ holds exactly the
  /// processors with a nonzero mask, enabled_pos_[p] is p's index in it
  /// (kNotInList otherwise), and enabled_[p] mirrors masks_[p] != 0.
  void flush_dirty() {
    for (ProcessorId p : dirty_list_) {
      dirty_[p] = 0;
      const ActionMask mask = sim::enabled_mask(protocol_, config_, p);
      if (mask == masks_[p]) {
        continue;
      }
      const bool was = masks_[p] != 0;
      const bool now = mask != 0;
      masks_[p] = mask;
      if (was == now) {
        continue;
      }
      enabled_[p] = now ? 1 : 0;
      if (now) {
        enabled_pos_[p] = static_cast<std::uint32_t>(enabled_list_.size());
        enabled_list_.push_back(p);
      } else {
        const std::uint32_t pos = enabled_pos_[p];
        const ProcessorId last = enabled_list_.back();
        enabled_list_[pos] = last;
        enabled_pos_[last] = pos;
        enabled_list_.pop_back();
        enabled_pos_[p] = kNotInList;
      }
    }
    dirty_list_.clear();
  }

  void notify_attach() {
    for (Probe* probe : probes_) {
      probe->on_attach(config_);
    }
  }

  P protocol_;
  Config config_;
  util::Rng rng_;
  ActionPolicy policy_ = ActionPolicy::kFirstEnabled;
  std::vector<Probe*> probes_;
  std::unique_ptr<FunctionProbe<P>> hook_probe_;
  std::vector<ActionChoice> choices_;
  std::function<std::int64_t(const State&)> score_;
  Trace* trace_ = nullptr;

  std::vector<ActionMask> masks_;
  std::vector<std::uint8_t> enabled_;  // masks_[p] != 0, for RoundTracker
  std::vector<ProcessorId> enabled_list_;
  std::vector<std::uint32_t> enabled_pos_;
  std::vector<std::uint8_t> dirty_;
  std::vector<ProcessorId> dirty_list_;
  std::vector<ProcessorId> selected_;
  std::vector<Staged> staged_;
  std::vector<std::uint8_t> executed_;

  RoundTracker rounds_;
  std::uint64_t steps_ = 0;
  std::vector<std::uint64_t> action_counts_;
};

}  // namespace snappif::sim
