// Compact execution timelines for human consumption.
//
// A Timeline collects one text "strip" per interesting moment (typically one
// character column per processor) and renders the deduplicated sequence with
// step/round stamps — the format the quickstart example prints.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace snappif::sim {

class Timeline {
 public:
  explicit Timeline(std::size_t max_rows = 512) : max_rows_(max_rows) {}

  /// Records a strip; consecutive duplicates are collapsed.
  void snapshot(std::uint64_t step, std::uint64_t round, std::string strip);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// One line per recorded strip: "step NNN round RRR  |strip|".
  [[nodiscard]] std::string render() const;

  void clear();

 private:
  struct Row {
    std::uint64_t step;
    std::uint64_t round;
    std::string strip;
  };
  std::size_t max_rows_;
  std::vector<Row> rows_;
  std::uint64_t dropped_ = 0;
};

inline void Timeline::snapshot(std::uint64_t step, std::uint64_t round,
                               std::string strip) {
  if (!rows_.empty() && rows_.back().strip == strip) {
    return;
  }
  if (rows_.size() >= max_rows_) {
    ++dropped_;
    return;
  }
  rows_.push_back({step, round, std::move(strip)});
}

inline std::string Timeline::render() const {
  std::string out;
  char head[64];
  for (const Row& row : rows_) {
    std::snprintf(head, sizeof(head), "step %6llu round %4llu  |",
                  static_cast<unsigned long long>(row.step),
                  static_cast<unsigned long long>(row.round));
    out += head;
    out += row.strip;
    out += "|\n";
  }
  if (dropped_ > 0) {
    std::snprintf(head, sizeof(head), "... (%llu later rows dropped)\n",
                  static_cast<unsigned long long>(dropped_));
    out += head;
  }
  return out;
}

inline void Timeline::clear() {
  rows_.clear();
  dropped_ = 0;
}

}  // namespace snappif::sim
