// Round accounting.
//
// The paper measures time in *rounds* (Dolev-Israeli-Moran): the first round
// of a computation is its minimal prefix in which every processor that was
// continuously enabled from the first configuration has executed an action —
// either a protocol action or the "disable action" (it became disabled
// because neighbors moved).  Subsequent rounds are defined on the suffix.
//
// RoundTracker implements exactly that: at each round boundary it snapshots
// the enabled set; processors leave the pending set when they execute or
// become disabled; when the pending set drains, a round has elapsed.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/types.hpp"

namespace snappif::sim {

class RoundTracker {
 public:
  /// Starts (or restarts) tracking with the enabled set of the current
  /// configuration.  `enabled_now[p]` is nonzero iff processor p is enabled.
  /// (Byte flags, not vector<bool>: the engine reuses flat buffers to keep
  /// its steady state allocation-free.)
  void begin(const std::vector<std::uint8_t>& enabled_now);

  /// Records one computation step: `executed[p]` nonzero iff p executed a
  /// protocol action in the step; `enabled_after[p]` the new enabled set.
  /// Returns true iff this step completed a round.
  bool on_step(const std::vector<std::uint8_t>& executed,
               const std::vector<std::uint8_t>& enabled_after);

  /// Completed rounds since begin().
  [[nodiscard]] std::uint64_t rounds() const noexcept { return rounds_; }

  /// Processors still owed an action in the current round.
  [[nodiscard]] std::uint64_t pending_count() const noexcept { return pending_count_; }

 private:
  std::vector<std::uint8_t> pending_;
  std::uint64_t pending_count_ = 0;
  std::uint64_t rounds_ = 0;
};

}  // namespace snappif::sim
