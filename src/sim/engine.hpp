// Type-erased engine interface: one stepping contract, two engines.
//
// The harness grew two execution engines for the same protocol semantics:
//
//   * sim::Simulator<P>   — the mask engine: per-processor object walk with
//                           incrementally maintained enabled sets (PR 3);
//   * pif::SoaEngine      — the data-oriented engine: CSR adjacency +
//                           struct-of-arrays state with a batched branch-free
//                           guard kernel (this PR).
//
// Analysis runners, the fuzzer, and the chaos campaigns only need the narrow
// surface below — build, corrupt, observe, step, measure — so they drive an
// IEngine<P> and a factory picks the implementation.  SimulatorEngine<P>
// adapts the mask engine; the SoA engine implements the interface natively,
// keeping an AoS Configuration mirror in lockstep at commit time so probes
// and goal predicates keep their types.  Both engines are bit-for-bit equivalent
// in trajectory for identical seeds (tests/sim/test_soa_differential.cpp),
// so an EngineKind swap changes throughput, never results.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string_view>

#include "sim/daemon.hpp"
#include "sim/simulator.hpp"
#include "sim/trace.hpp"
#include "sim/types.hpp"

namespace snappif::sim {

/// Which execution engine a runner should build.
enum class EngineKind {
  kMask,  // sim::Simulator: per-processor walk, incremental enabled sets
  kSoa,   // pif::SoaEngine: CSR + SoA state, batched branch-free guards
};

[[nodiscard]] constexpr std::string_view engine_kind_name(EngineKind kind) noexcept {
  return kind == EngineKind::kSoa ? "soa" : "mask";
}

/// Parses "mask" / "soa" (CLI flags); nullopt on anything else.
[[nodiscard]] inline std::optional<EngineKind> parse_engine_kind(
    std::string_view name) noexcept {
  if (name == "mask") {
    return EngineKind::kMask;
  }
  if (name == "soa") {
    return EngineKind::kSoa;
  }
  return std::nullopt;
}

/// The engine contract the experiment drivers program against.  Mirrors the
/// Simulator<P> surface they were written for; run_until's goal is type-
/// erased to std::function (called at most once per step — never on the
/// per-neighbor hot path).
template <Protocol P>
class IEngine {
 public:
  using State = typename P::State;
  using Config = Configuration<State>;
  using ApplyHook =
      std::function<void(ProcessorId, ActionId, const Config&, const State&)>;

  virtual ~IEngine() = default;

  [[nodiscard]] virtual const P& protocol() const noexcept = 0;
  /// The current configuration; the returned reference stays valid and
  /// current between steps on both engines.
  [[nodiscard]] virtual const Config& config() const = 0;
  [[nodiscard]] virtual const graph::Graph& topology() const noexcept = 0;
  [[nodiscard]] virtual util::Rng& rng() noexcept = 0;
  [[nodiscard]] virtual std::string_view engine_name() const noexcept = 0;

  virtual void set_state(ProcessorId p, const State& s) = 0;
  virtual void reset_to_initial() = 0;
  virtual void randomize(util::Rng& rng) = 0;
  virtual void set_action_policy(ActionPolicy policy) = 0;

  virtual void add_probe(IProbe<P>* probe) = 0;
  virtual void remove_probe(IProbe<P>* probe) = 0;
  virtual void set_apply_hook(ApplyHook hook) = 0;
  virtual void set_score(std::function<std::int64_t(const State&)> score) = 0;
  virtual void set_trace(Trace* trace) = 0;

  [[nodiscard]] virtual bool is_enabled(ProcessorId p) const = 0;
  [[nodiscard]] virtual bool any_enabled() const = 0;
  [[nodiscard]] virtual ActionMask enabled_mask_of(ProcessorId p) const = 0;
  [[nodiscard]] virtual std::span<const ProcessorId> enabled_processors() const = 0;

  virtual bool step(IDaemon& daemon) = 0;
  [[nodiscard]] virtual RunResult run_until(
      IDaemon& daemon, const std::function<bool(const Config&)>& goal,
      RunLimits limits) = 0;
  [[nodiscard]] RunResult run_until(
      IDaemon& daemon, const std::function<bool(const Config&)>& goal) {
    return run_until(daemon, goal, RunLimits{});
  }

  [[nodiscard]] virtual std::uint64_t steps() const noexcept = 0;
  [[nodiscard]] virtual std::uint64_t rounds() const noexcept = 0;
  [[nodiscard]] virtual std::uint64_t action_count(ActionId a) const = 0;
};

/// IEngine adapter over the mask engine: plain forwarding, zero semantic
/// drift — the wrapped Simulator<P> is the reference implementation.
template <Protocol P>
class SimulatorEngine final : public IEngine<P> {
 public:
  using State = typename P::State;
  using Config = Configuration<State>;
  using typename IEngine<P>::ApplyHook;

  SimulatorEngine(P protocol, const graph::Graph& g, std::uint64_t seed)
      : sim_(std::move(protocol), g, seed) {}

  [[nodiscard]] const P& protocol() const noexcept override {
    return sim_.protocol();
  }
  [[nodiscard]] const Config& config() const override { return sim_.config(); }
  [[nodiscard]] const graph::Graph& topology() const noexcept override {
    return sim_.topology();
  }
  [[nodiscard]] util::Rng& rng() noexcept override { return sim_.rng(); }
  [[nodiscard]] std::string_view engine_name() const noexcept override {
    return "mask";
  }

  void set_state(ProcessorId p, const State& s) override { sim_.set_state(p, s); }
  void reset_to_initial() override { sim_.reset_to_initial(); }
  void randomize(util::Rng& rng) override { sim_.randomize(rng); }
  void set_action_policy(ActionPolicy policy) override {
    sim_.set_action_policy(policy);
  }

  void add_probe(IProbe<P>* probe) override { sim_.add_probe(probe); }
  void remove_probe(IProbe<P>* probe) override { sim_.remove_probe(probe); }
  void set_apply_hook(ApplyHook hook) override {
    sim_.set_apply_hook(std::move(hook));
  }
  void set_score(std::function<std::int64_t(const State&)> score) override {
    sim_.set_score(std::move(score));
  }
  void set_trace(Trace* trace) override { sim_.set_trace(trace); }

  [[nodiscard]] bool is_enabled(ProcessorId p) const override {
    return sim_.is_enabled(p);
  }
  [[nodiscard]] bool any_enabled() const override { return sim_.any_enabled(); }
  [[nodiscard]] ActionMask enabled_mask_of(ProcessorId p) const override {
    return sim_.enabled_mask_of(p);
  }
  [[nodiscard]] std::span<const ProcessorId> enabled_processors() const override {
    return sim_.enabled_processors();
  }

  bool step(IDaemon& daemon) override { return sim_.step(daemon); }
  [[nodiscard]] RunResult run_until(
      IDaemon& daemon, const std::function<bool(const Config&)>& goal,
      RunLimits limits) override {
    return sim_.run_until(daemon, goal, limits);
  }

  [[nodiscard]] std::uint64_t steps() const noexcept override {
    return sim_.steps();
  }
  [[nodiscard]] std::uint64_t rounds() const noexcept override {
    return sim_.rounds();
  }
  [[nodiscard]] std::uint64_t action_count(ActionId a) const override {
    return sim_.action_count(a);
  }

  /// The wrapped engine, for callers that need the full Simulator surface.
  [[nodiscard]] Simulator<P>& simulator() noexcept { return sim_; }

 private:
  Simulator<P> sim_;
};

}  // namespace snappif::sim
