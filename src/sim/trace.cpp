#include "sim/trace.hpp"

#include <cstdio>

#include "util/assert.hpp"

namespace snappif::sim {

Trace::Trace(std::size_t max_records) : max_records_(max_records) {
  SNAPPIF_ASSERT(max_records >= 1);
}

void Trace::record(StepRecord record) {
  if (records_.size() >= max_records_) {
    records_.erase(records_.begin());
    ++dropped_;
  }
  records_.push_back(std::move(record));
}

const StepRecord& Trace::operator[](std::size_t i) const { return records_.at(i); }

std::string Trace::render(const std::vector<std::string>& action_names) const {
  std::string out;
  char buf[96];
  if (dropped_ > 0) {
    std::snprintf(buf, sizeof(buf), "... (%llu earlier steps dropped)\n",
                  static_cast<unsigned long long>(dropped_));
    out += buf;
  }
  for (const auto& rec : records_) {
    std::snprintf(buf, sizeof(buf), "step %6llu (round %4llu):",
                  static_cast<unsigned long long>(rec.step),
                  static_cast<unsigned long long>(rec.rounds_before));
    out += buf;
    for (const auto& [p, a] : rec.choices) {
      const char* label = a < action_names.size() ? action_names[a].c_str() : "?";
      std::snprintf(buf, sizeof(buf), "  %u:%s", p, label);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

void Trace::clear() {
  records_.clear();
  dropped_ = 0;
}

}  // namespace snappif::sim
