#include "sim/trace.hpp"

#include <cstdio>

#include "util/assert.hpp"

namespace snappif::sim {

Trace::Trace(std::size_t max_records) : max_records_(max_records) {
  SNAPPIF_ASSERT(max_records >= 1);
}

void Trace::record(StepRecord record) {
  if (size_ < max_records_) {
    records_.push_back(std::move(record));
    ++size_;
    return;
  }
  // Full: overwrite the oldest slot and advance the head.  Reusing the
  // evicted record's choices vector keeps its capacity (no reallocation in
  // steady state).
  records_[head_] = std::move(record);
  head_ = (head_ + 1) % max_records_;
  ++dropped_;
}

const StepRecord& Trace::operator[](std::size_t i) const {
  SNAPPIF_ASSERT(i < size_);
  return records_[(head_ + i) % max_records_];
}

std::string Trace::render(const std::vector<std::string>& action_names) const {
  std::string out;
  char buf[96];
  if (dropped_ > 0) {
    std::snprintf(buf, sizeof(buf), "... (%llu earlier steps dropped)\n",
                  static_cast<unsigned long long>(dropped_));
    out += buf;
  }
  for (std::size_t i = 0; i < size_; ++i) {
    const StepRecord& rec = (*this)[i];
    std::snprintf(buf, sizeof(buf), "step %6llu (round %4llu):",
                  static_cast<unsigned long long>(rec.step),
                  static_cast<unsigned long long>(rec.rounds_before));
    out += buf;
    for (const auto& [p, a] : rec.choices) {
      const char* label = a < action_names.size() ? action_names[a].c_str() : "?";
      std::snprintf(buf, sizeof(buf), "  %u:%s", p, label);
      out += buf;
    }
    out += '\n';
  }
  return out;
}

void Trace::clear() {
  records_.clear();
  head_ = 0;
  size_ = 0;
  dropped_ = 0;
}

}  // namespace snappif::sim
