// Execution trace recording (optional, off the hot path unless attached).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/types.hpp"

namespace snappif::sim {

/// One computation step: which processors executed which actions.
struct StepRecord {
  std::uint64_t step = 0;
  std::uint64_t rounds_before = 0;  // completed rounds before this step
  std::vector<ActionChoice> choices;
};

/// Bounded in-memory trace.  When the bound is hit, older records are
/// discarded (the tail of an execution is usually what matters for
/// debugging a stuck run).  Implemented as a ring buffer: recording is O(1)
/// amortized regardless of how many records have been evicted.
class Trace {
 public:
  explicit Trace(std::size_t max_records = 1 << 16);

  void record(StepRecord record);
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  /// i = 0 is the oldest retained record, i = size()-1 the newest.
  [[nodiscard]] const StepRecord& operator[](std::size_t i) const;
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Human-readable dump using `action_name` to label actions.
  [[nodiscard]] std::string render(
      const std::vector<std::string>& action_names) const;

  void clear();

 private:
  std::size_t max_records_;
  std::vector<StepRecord> records_;  // ring storage, capacity max_records_
  std::size_t head_ = 0;             // index of the oldest record
  std::size_t size_ = 0;             // live records (<= max_records_)
  std::uint64_t dropped_ = 0;
};

}  // namespace snappif::sim
