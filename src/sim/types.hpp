// Shared identifiers for the simulation core.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"

namespace snappif::sim {

/// A processor in the network; identical to a graph vertex id.
using ProcessorId = graph::NodeId;

/// Index into a protocol's action table (small; protocols here have <= 8).
using ActionId = std::uint8_t;

/// Marker for "no action" in per-processor selections.
inline constexpr ActionId kNoAction = 0xff;

/// Bitmask of enabled actions at one processor: bit `a` is set iff the guard
/// of action `a` holds.  64 bits — wide enough for MultiPifProtocol's product
/// compositions (k instances x 7 actions), which overflow 32 bits at k = 5.
using ActionMask = std::uint64_t;

/// Maximum number of actions representable in an ActionMask.
inline constexpr ActionId kMaxMaskActions = 64;

/// One executed action of one processor within a computation step.
struct ActionChoice {
  ProcessorId processor;
  ActionId action;

  [[nodiscard]] bool operator==(const ActionChoice&) const noexcept = default;
};

}  // namespace snappif::sim
