#include "sim/daemon.hpp"

#include <algorithm>
#include <limits>

#include "util/assert.hpp"

namespace snappif::sim {

void SynchronousDaemon::select(std::span<const ProcessorId> enabled,
                               const DaemonContext& /*ctx*/, util::Rng& /*rng*/,
                               std::vector<ProcessorId>& out) {
  out.insert(out.end(), enabled.begin(), enabled.end());
}

void CentralRandomDaemon::select(std::span<const ProcessorId> enabled,
                                 const DaemonContext& /*ctx*/, util::Rng& rng,
                                 std::vector<ProcessorId>& out) {
  SNAPPIF_ASSERT(!enabled.empty());
  out.push_back(enabled[rng.below(enabled.size())]);
}

void CentralRoundRobinDaemon::select(std::span<const ProcessorId> enabled,
                                     const DaemonContext& ctx, util::Rng& /*rng*/,
                                     std::vector<ProcessorId>& out) {
  SNAPPIF_ASSERT(!enabled.empty());
  // Smallest enabled id >= cursor, wrapping to the overall smallest.  The
  // engine maintains the enabled set incrementally (swap-remove), so the
  // span arrives in arbitrary order — a linear min-scan, not lower_bound.
  ProcessorId min_all = enabled[0];
  ProcessorId best = std::numeric_limits<ProcessorId>::max();
  for (ProcessorId p : enabled) {
    min_all = std::min(min_all, p);
    if (p >= cursor_) {
      best = std::min(best, p);
    }
  }
  const ProcessorId pick =
      best != std::numeric_limits<ProcessorId>::max() ? best : min_all;
  out.push_back(pick);
  cursor_ = (pick + 1) % std::max<ProcessorId>(ctx.n, 1);
}

DistributedRandomDaemon::DistributedRandomDaemon(double probability)
    : probability_(probability) {
  SNAPPIF_ASSERT(probability > 0.0 && probability <= 1.0);
  name_ = "distributed-random";
}

void DistributedRandomDaemon::select(std::span<const ProcessorId> enabled,
                                     const DaemonContext& /*ctx*/, util::Rng& rng,
                                     std::vector<ProcessorId>& out) {
  SNAPPIF_ASSERT(!enabled.empty());
  const std::size_t before = out.size();
  for (ProcessorId p : enabled) {
    if (rng.chance(probability_)) {
      out.push_back(p);
    }
  }
  if (out.size() == before) {
    out.push_back(enabled[rng.below(enabled.size())]);
  }
}

AdversarialScoreDaemon::AdversarialScoreDaemon(Goal goal, std::size_t width)
    : goal_(goal), width_(width) {
  SNAPPIF_ASSERT(width >= 1);
  name_ = goal == Goal::kMaxScore ? "adversarial-max" : "adversarial-min";
}

void AdversarialScoreDaemon::select(std::span<const ProcessorId> enabled,
                                    const DaemonContext& ctx, util::Rng& /*rng*/,
                                    std::vector<ProcessorId>& out) {
  SNAPPIF_ASSERT(!enabled.empty());
  if (!ctx.score) {
    // No score available: degrade to picking the lowest ids.  The span is in
    // arbitrary order (incremental enabled-set), so select them explicitly.
    std::vector<ProcessorId> lowest(enabled.begin(), enabled.end());
    const std::size_t take = std::min(width_, lowest.size());
    std::partial_sort(lowest.begin(),
                      lowest.begin() + static_cast<std::ptrdiff_t>(take),
                      lowest.end());
    out.insert(out.end(), lowest.begin(),
               lowest.begin() + static_cast<std::ptrdiff_t>(take));
    return;
  }
  std::vector<ProcessorId> sorted(enabled.begin(), enabled.end());
  const bool maximize = goal_ == Goal::kMaxScore;
  // Tie-break on id so the pick is independent of the span's (arbitrary)
  // order.
  std::sort(sorted.begin(), sorted.end(),
            [&](ProcessorId a, ProcessorId b) {
              const auto sa = ctx.score(a);
              const auto sb = ctx.score(b);
              if (sa != sb) {
                return maximize ? sa > sb : sa < sb;
              }
              return a < b;
            });
  const std::size_t take = std::min(width_, sorted.size());
  out.insert(out.end(), sorted.begin(), sorted.begin() + static_cast<std::ptrdiff_t>(take));
}

FairDaemon::FairDaemon(std::unique_ptr<IDaemon> inner, std::uint32_t bound)
    : inner_(std::move(inner)), bound_(bound) {
  SNAPPIF_ASSERT(inner_ != nullptr);
  SNAPPIF_ASSERT(bound >= 1);
  name_ = "fair(" + std::string(inner_->name()) + ")";
}

void FairDaemon::select(std::span<const ProcessorId> enabled, const DaemonContext& ctx,
                        util::Rng& rng, std::vector<ProcessorId>& out) {
  if (ages_.size() != ctx.n) {
    ages_.assign(ctx.n, 0);
  }
  const std::size_t before = out.size();
  inner_->select(enabled, ctx, rng, out);
  SNAPPIF_ASSERT_MSG(out.size() > before, "inner daemon selected nothing");

  // Age accounting: enabled processors age; disabled ones reset (they were
  // not *continuously* enabled).  Selected ones reset too.
  std::vector<bool> is_enabled(ctx.n, false);
  for (ProcessorId p : enabled) {
    is_enabled[p] = true;
  }
  std::vector<bool> selected(ctx.n, false);
  for (std::size_t i = before; i < out.size(); ++i) {
    selected[out[i]] = true;
  }
  for (ProcessorId p : enabled) {
    if (selected[p]) {
      continue;
    }
    if (++ages_[p] >= bound_) {
      out.push_back(p);
      selected[p] = true;
    }
  }
  for (ProcessorId p = 0; p < ctx.n; ++p) {
    if (!is_enabled[p] || selected[p]) {
      ages_[p] = 0;
    }
  }
  std::sort(out.begin() + static_cast<std::ptrdiff_t>(before), out.end());
}

void FairDaemon::reset() {
  inner_->reset();
  ages_.clear();
}

std::unique_ptr<IDaemon> make_daemon(DaemonKind kind) {
  switch (kind) {
    case DaemonKind::kSynchronous:
      return std::make_unique<SynchronousDaemon>();
    case DaemonKind::kCentralRandom:
      return std::make_unique<CentralRandomDaemon>();
    case DaemonKind::kCentralRoundRobin:
      return std::make_unique<CentralRoundRobinDaemon>();
    case DaemonKind::kDistributedRandom:
      return std::make_unique<DistributedRandomDaemon>(0.5);
    case DaemonKind::kAdversarialMaxLevel:
      return std::make_unique<FairDaemon>(
          std::make_unique<AdversarialScoreDaemon>(
              AdversarialScoreDaemon::Goal::kMaxScore, 1),
          /*bound=*/8);
    case DaemonKind::kAdversarialMinLevel:
      return std::make_unique<FairDaemon>(
          std::make_unique<AdversarialScoreDaemon>(
              AdversarialScoreDaemon::Goal::kMinScore, 1),
          /*bound=*/8);
  }
  SNAPPIF_ASSERT_MSG(false, "unknown daemon kind");
  return nullptr;
}

std::string_view daemon_kind_name(DaemonKind kind) {
  switch (kind) {
    case DaemonKind::kSynchronous:
      return "synchronous";
    case DaemonKind::kCentralRandom:
      return "central-random";
    case DaemonKind::kCentralRoundRobin:
      return "central-rr";
    case DaemonKind::kDistributedRandom:
      return "distributed-random";
    case DaemonKind::kAdversarialMaxLevel:
      return "adversarial-max";
    case DaemonKind::kAdversarialMinLevel:
      return "adversarial-min";
  }
  return "?";
}

std::span<const DaemonKind> standard_daemon_kinds() {
  static constexpr DaemonKind kKinds[] = {
      DaemonKind::kSynchronous,          DaemonKind::kCentralRandom,
      DaemonKind::kCentralRoundRobin,    DaemonKind::kDistributedRandom,
      DaemonKind::kAdversarialMaxLevel,  DaemonKind::kAdversarialMinLevel,
  };
  return kKinds;
}

}  // namespace snappif::sim
