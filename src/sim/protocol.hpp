// The Protocol concept: a distributed algorithm in the locally shared memory
// model, expressed as guarded actions (Section 2 of the paper).
//
// A protocol type P provides:
//   * `using State`       — the per-processor local state (regular type with
//                           `std::uint64_t hash() const`).
//   * `initial_state(p)`  — a designated clean state (for convenience; the
//                           algorithms must work from ANY state).
//   * `num_actions()`     — number of actions in the program.
//   * `action_name(a)`    — label of action `a` (for traces/tables).
//   * `enabled(c, p, a)`  — whether the guard of action `a` holds at
//                           processor `p` in configuration `c`.  Guards read
//                           only p's own state and its neighbors' states.
//   * `apply(c, p, a)`    — the statement: computes p's next state from the
//                           *current* configuration.  Pure (no side effects):
//                           the engine writes the result back, which gives
//                           composite read/write atomicity and lets a
//                           distributed daemon execute many processors in the
//                           same step against the same snapshot.
//   * `random_state(p, rng)` — uniform sample of p's state space, for
//                           arbitrary-initial-configuration experiments.
#pragma once

#include <concepts>
#include <cstdint>
#include <string_view>

#include "sim/configuration.hpp"
#include "sim/types.hpp"
#include "util/rng.hpp"

namespace snappif::sim {

template <typename P>
concept Protocol = requires(const P proto, const Configuration<typename P::State>& c,
                            ProcessorId p, ActionId a, util::Rng& rng) {
  typename P::State;
  { proto.initial_state(p) } -> std::convertible_to<typename P::State>;
  { proto.num_actions() } -> std::convertible_to<ActionId>;
  { proto.action_name(a) } -> std::convertible_to<std::string_view>;
  { proto.enabled(c, p, a) } -> std::convertible_to<bool>;
  { proto.apply(c, p, a) } -> std::convertible_to<typename P::State>;
  { proto.random_state(p, rng) } -> std::convertible_to<typename P::State>;
};

}  // namespace snappif::sim
