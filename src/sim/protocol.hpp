// The Protocol concept: a distributed algorithm in the locally shared memory
// model, expressed as guarded actions (Section 2 of the paper).
//
// A protocol type P provides:
//   * `using State`       — the per-processor local state (regular type with
//                           `std::uint64_t hash() const`).
//   * `initial_state(p)`  — a designated clean state (for convenience; the
//                           algorithms must work from ANY state).
//   * `num_actions()`     — number of actions in the program.
//   * `action_name(a)`    — label of action `a` (for traces/tables).
//   * `enabled(c, p, a)`  — whether the guard of action `a` holds at
//                           processor `p` in configuration `c`.  Guards read
//                           only p's own state and its neighbors' states.
//   * `apply(c, p, a)`    — the statement: computes p's next state from the
//                           *current* configuration.  Pure (no side effects):
//                           the engine writes the result back, which gives
//                           composite read/write atomicity and lets a
//                           distributed daemon execute many processors in the
//                           same step against the same snapshot.
//   * `random_state(p, rng)` — uniform sample of p's state space, for
//                           arbitrary-initial-configuration experiments.
//
// Protocols may additionally provide the batched guard interface
//   * `enabled_mask(c, p)`  — ActionMask with bit `a` set iff `enabled(c,p,a)`.
// The free function sim::enabled_mask() dispatches to it when present and
// otherwise falls back to a per-action `enabled()` loop, so third-party
// protocols keep working unchanged.  Native implementations (PifProtocol's
// GuardEval, the baselines) share one neighborhood walk across all guards —
// the engine's hot path.  The mask/loop agreement is enforced bit-for-bit by
// tests/sim/test_mask_differential.cpp.
#pragma once

#include <bit>
#include <concepts>
#include <cstdint>
#include <string_view>

#include "sim/configuration.hpp"
#include "sim/types.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace snappif::sim {

template <typename P>
concept Protocol = requires(const P proto, const Configuration<typename P::State>& c,
                            ProcessorId p, ActionId a, util::Rng& rng) {
  typename P::State;
  { proto.initial_state(p) } -> std::convertible_to<typename P::State>;
  { proto.num_actions() } -> std::convertible_to<ActionId>;
  { proto.action_name(a) } -> std::convertible_to<std::string_view>;
  { proto.enabled(c, p, a) } -> std::convertible_to<bool>;
  { proto.apply(c, p, a) } -> std::convertible_to<typename P::State>;
  { proto.random_state(p, rng) } -> std::convertible_to<typename P::State>;
};

/// A Protocol that natively evaluates all guards of a processor in one call.
template <typename P>
concept MaskProtocol =
    Protocol<P> &&
    requires(const P proto, const Configuration<typename P::State>& c, ProcessorId p) {
      { proto.enabled_mask(c, p) } -> std::convertible_to<ActionMask>;
    };

/// Reference evaluation: one `enabled()` call per action.  Kept as a separate
/// entry point so differential tests and benchmarks can pit it against the
/// native masks even for MaskProtocols.
template <Protocol P>
[[nodiscard]] ActionMask enabled_mask_via_loop(const P& proto,
                                               const Configuration<typename P::State>& c,
                                               ProcessorId p) {
  SNAPPIF_ASSERT(proto.num_actions() <= kMaxMaskActions);
  ActionMask mask = 0;
  for (ActionId a = 0; a < proto.num_actions(); ++a) {
    if (proto.enabled(c, p, a)) {
      mask |= ActionMask{1} << a;
    }
  }
  return mask;
}

/// Enabled-action mask of processor p: the protocol's native `enabled_mask`
/// when it has one, the per-action loop otherwise.
template <Protocol P>
[[nodiscard]] ActionMask enabled_mask(const P& proto,
                                      const Configuration<typename P::State>& c,
                                      ProcessorId p) {
  if constexpr (MaskProtocol<P>) {
    return proto.enabled_mask(c, p);
  } else {
    return enabled_mask_via_loop(proto, c, p);
  }
}

/// Lowest-id action in a non-empty mask.
[[nodiscard]] inline ActionId first_action(ActionMask mask) noexcept {
  return static_cast<ActionId>(std::countr_zero(mask));
}

/// The `index`-th set bit (0-based, ascending) of a mask with > index bits.
[[nodiscard]] inline ActionId nth_action(ActionMask mask, std::uint32_t index) noexcept {
  while (index-- > 0) {
    mask &= mask - 1;  // clear lowest set bit
  }
  return static_cast<ActionId>(std::countr_zero(mask));
}

}  // namespace snappif::sim
