// Observer interface for the execution engine.
//
// A probe watches a Simulator run without perturbing it: the engine invokes
// the callbacks below around each computation step and at every round
// boundary.  Probes are the single observation mechanism of the engine — the
// legacy per-action "apply hook" is sugar implemented as an owned
// FunctionProbe — so the hot path pays exactly one emptiness check when
// nothing is attached.
//
// Callback order within one step:
//   on_step_begin   pre-step configuration; selected set and choices staged
//   on_apply        once per executed action, pre-step configuration + the
//                   processor's new state (composite atomicity: all on_apply
//                   calls of a step see the same `before`)
//   on_step_end     post-step configuration; cumulative action counts
//   on_round_complete   only on steps that finish a round (Dolev-Israeli-
//                       Moran accounting; see sim/rounds.hpp)
//
// Step/round counters in StepEvent are per-Simulator and restart from zero
// when the harness rebuilds the engine (link churn in the chaos campaigns).
// A probe that needs a clock spanning rebuilds — e.g. the causal tracer
// pif::WaveTraceProbe feeding obs::SpanCollector — must keep its own
// monotone counters and treat the event fields as deltas; detach with
// remove_probe() before destroying the probe, re-attach with add_probe().
#pragma once

#include <cstdint>
#include <functional>
#include <span>

#include "sim/configuration.hpp"
#include "sim/protocol.hpp"
#include "sim/types.hpp"

namespace snappif::sim {

/// Per-step observation payload handed to every probe callback.  Spans point
/// into engine-owned scratch buffers: valid only for the duration of the
/// callback.
struct StepEvent {
  /// Index of this step (0-based, monotonically increasing).
  std::uint64_t step = 0;
  /// Completed rounds before this step.
  std::uint64_t rounds_before = 0;
  /// Processors the daemon selected, in selection order.
  std::span<const ProcessorId> selected;
  /// The action each selected processor executes.
  std::span<const ActionChoice> choices;
  /// Enabled-set size in the pre-step configuration.
  std::size_t enabled_before = 0;
  /// Enabled-set size after the step committed (0 in on_step_begin).
  std::size_t enabled_after = 0;
  /// Cumulative per-action execution counts, indexed by ActionId.  In
  /// on_step_begin these are the pre-step totals; in on_step_end and
  /// on_round_complete they include this step.
  std::span<const std::uint64_t> action_counts;
};

/// Observer of a Simulator<P> execution.  Default implementations are no-ops
/// so probes override only what they need.
template <Protocol P>
class IProbe {
 public:
  using State = typename P::State;
  using Config = Configuration<State>;

  virtual ~IProbe() = default;

  /// Called when the probe is attached (and after reset_to_initial /
  /// randomize / set_state rebuild the configuration).
  virtual void on_attach(const Config& /*config*/) {}
  /// Before the step's writes commit; `config` is the pre-step configuration.
  virtual void on_step_begin(const StepEvent& /*ev*/, const Config& /*config*/) {}
  /// Once per executed action, with the pre-step configuration and the
  /// processor's new state (not yet committed).
  virtual void on_apply(ProcessorId /*p*/, ActionId /*a*/,
                        const Config& /*before*/, const State& /*after*/) {}
  /// After the step's writes committed and enabledness refreshed.
  virtual void on_step_end(const StepEvent& /*ev*/, const Config& /*config*/) {}
  /// After on_step_end, on steps that completed a round.  `rounds` is the
  /// total completed round count (i.e. ev.rounds_before + 1).
  virtual void on_round_complete(std::uint64_t /*rounds*/, const StepEvent& /*ev*/,
                                 const Config& /*config*/) {}
};

/// Adapter: wraps a per-action callback as a probe.  Backs
/// Simulator::set_apply_hook.
template <Protocol P>
class FunctionProbe final : public IProbe<P> {
 public:
  using State = typename P::State;
  using Config = Configuration<State>;
  using Fn = std::function<void(ProcessorId, ActionId, const Config&, const State&)>;

  explicit FunctionProbe(Fn fn) : fn_(std::move(fn)) {}

  void on_apply(ProcessorId p, ActionId a, const Config& before,
                const State& after) override {
    fn_(p, a, before, after);
  }

 private:
  Fn fn_;
};

}  // namespace snappif::sim
