#include "sim/rounds.hpp"

#include "util/assert.hpp"

namespace snappif::sim {

void RoundTracker::begin(const std::vector<std::uint8_t>& enabled_now) {
  pending_ = enabled_now;
  pending_count_ = 0;
  for (std::uint8_t e : pending_) {
    pending_count_ += e != 0 ? 1 : 0;
  }
  rounds_ = 0;
}

bool RoundTracker::on_step(const std::vector<std::uint8_t>& executed,
                           const std::vector<std::uint8_t>& enabled_after) {
  SNAPPIF_ASSERT(executed.size() == pending_.size());
  SNAPPIF_ASSERT(enabled_after.size() == pending_.size());
  for (std::size_t p = 0; p < pending_.size(); ++p) {
    if (pending_[p] == 0) {
      continue;
    }
    // Discharged by executing a protocol action, or by the disable action
    // (guard went false without executing).
    if (executed[p] != 0 || enabled_after[p] == 0) {
      pending_[p] = 0;
      --pending_count_;
    }
  }
  if (pending_count_ != 0) {
    return false;
  }
  ++rounds_;
  // Next round starts at the configuration just reached.
  pending_ = enabled_after;
  for (std::uint8_t e : pending_) {
    pending_count_ += e != 0 ? 1 : 0;
  }
  return true;
}

}  // namespace snappif::sim
