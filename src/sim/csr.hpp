// Compact CSR adjacency for the data-oriented engine.
//
// graph::Graph already stores its topology in compressed-sparse-row form, but
// with std::size_t offsets — 8 bytes per vertex of pure index overhead.  The
// flat engine walks adjacency rows on every mask refresh, so Csr re-packs the
// same rows with 32-bit offsets: half the offset traffic, and both arrays are
// plain contiguous std::uint32_t, which is what the batched guard kernel
// wants to stream.  Neighbor order is preserved exactly (sorted ascending,
// the paper's local order ≻_p), so anything derived from iteration order —
// B-action's min(Potential) tie-break, the incremental enabled-list
// maintenance — agrees bit-for-bit with the pointer-walking engine.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "sim/types.hpp"
#include "util/assert.hpp"

namespace snappif::sim {

/// Immutable 32-bit CSR snapshot of a graph::Graph.  Rows alias nothing in
/// the source graph; the engine owns its adjacency outright.
class Csr {
 public:
  Csr() : offsets_(1, 0) {}

  explicit Csr(const graph::Graph& g) {
    const ProcessorId n = g.n();
    SNAPPIF_ASSERT_MSG(2 * g.m() < 0xffffffffULL,
                       "directed adjacency must fit 32-bit offsets");
    offsets_.resize(static_cast<std::size_t>(n) + 1);
    adjacency_.resize(2 * g.m());
    std::uint32_t at = 0;
    for (ProcessorId v = 0; v < n; ++v) {
      offsets_[v] = at;
      for (ProcessorId w : g.neighbors(v)) {
        adjacency_[at++] = w;
      }
    }
    offsets_[n] = at;
  }

  [[nodiscard]] ProcessorId n() const noexcept {
    return static_cast<ProcessorId>(offsets_.size() - 1);
  }
  /// Directed adjacency entries (2m for an undirected graph).
  [[nodiscard]] std::size_t entries() const noexcept { return adjacency_.size(); }

  [[nodiscard]] std::uint32_t row_begin(ProcessorId v) const {
    SNAPPIF_ASSERT(v < n());
    return offsets_[v];
  }
  [[nodiscard]] std::uint32_t row_end(ProcessorId v) const {
    SNAPPIF_ASSERT(v < n());
    return offsets_[v + 1];
  }
  [[nodiscard]] std::span<const ProcessorId> row(ProcessorId v) const {
    SNAPPIF_ASSERT(v < n());
    return {adjacency_.data() + offsets_[v],
            static_cast<std::size_t>(offsets_[v + 1] - offsets_[v])};
  }
  [[nodiscard]] std::size_t degree(ProcessorId v) const {
    SNAPPIF_ASSERT(v < n());
    return offsets_[v + 1] - offsets_[v];
  }

  /// The raw arrays, for kernels that stream whole row ranges.
  [[nodiscard]] std::span<const std::uint32_t> offsets() const noexcept {
    return offsets_;
  }
  [[nodiscard]] std::span<const ProcessorId> adjacency() const noexcept {
    return adjacency_;
  }

 private:
  std::vector<std::uint32_t> offsets_;   // n + 1
  std::vector<ProcessorId> adjacency_;   // row v = [offsets_[v], offsets_[v+1])
};

}  // namespace snappif::sim
