// Daemons (schedulers).
//
// The paper assumes a *weakly fair distributed daemon*: in each computation
// step the daemon picks a non-empty subset of the enabled processors, and any
// continuously enabled processor is eventually picked.  Since the correctness
// claims quantify over all daemons, the harness provides a family of daemon
// strategies — synchronous, central (sequential), randomized distributed, and
// score-driven adversarial — plus a fairness enforcer that turns any strategy
// into a weakly fair one.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "sim/types.hpp"
#include "util/rng.hpp"

namespace snappif::sim {

/// Read-only context handed to the daemon at each step.
struct DaemonContext {
  /// Total number of processors.
  ProcessorId n = 0;
  /// Index of the upcoming computation step (0-based).
  std::uint64_t step = 0;
  /// Optional per-processor score for adversarial strategies (e.g., the
  /// PIF level variable).  May be empty.
  std::function<std::int64_t(ProcessorId)> score;
};

/// Daemon strategy interface.  `select` must append a non-empty subset of
/// `enabled` (which is non-empty, sorted ascending, duplicate-free) to `out`.
class IDaemon {
 public:
  virtual ~IDaemon() = default;
  virtual void select(std::span<const ProcessorId> enabled, const DaemonContext& ctx,
                      util::Rng& rng, std::vector<ProcessorId>& out) = 0;
  [[nodiscard]] virtual std::string_view name() const = 0;
  /// Clears any internal scheduling state (cursors, fairness ages).
  virtual void reset() {}
};

/// All enabled processors execute every step.  Deterministic.
class SynchronousDaemon final : public IDaemon {
 public:
  void select(std::span<const ProcessorId> enabled, const DaemonContext& ctx,
              util::Rng& rng, std::vector<ProcessorId>& out) override;
  [[nodiscard]] std::string_view name() const override { return "synchronous"; }
};

/// Central daemon, uniformly random singleton.
class CentralRandomDaemon final : public IDaemon {
 public:
  void select(std::span<const ProcessorId> enabled, const DaemonContext& ctx,
              util::Rng& rng, std::vector<ProcessorId>& out) override;
  [[nodiscard]] std::string_view name() const override { return "central-random"; }
};

/// Central daemon cycling through processor ids; picks the first enabled
/// processor at or after the cursor.  Deterministic and weakly fair.
class CentralRoundRobinDaemon final : public IDaemon {
 public:
  void select(std::span<const ProcessorId> enabled, const DaemonContext& ctx,
              util::Rng& rng, std::vector<ProcessorId>& out) override;
  [[nodiscard]] std::string_view name() const override { return "central-rr"; }
  void reset() override { cursor_ = 0; }

 private:
  ProcessorId cursor_ = 0;
};

/// Distributed daemon: each enabled processor is included independently with
/// probability `p`; if none got included, one uniform processor is forced so
/// the subset is non-empty.
class DistributedRandomDaemon final : public IDaemon {
 public:
  explicit DistributedRandomDaemon(double probability = 0.5);
  void select(std::span<const ProcessorId> enabled, const DaemonContext& ctx,
              util::Rng& rng, std::vector<ProcessorId>& out) override;
  [[nodiscard]] std::string_view name() const override { return name_; }

 private:
  double probability_;
  std::string name_;
};

/// Adversarial daemon driven by the context's score function: each step it
/// picks the `width` enabled processors with extreme (max or min) score.
/// Intentionally unfair on its own — wrap in FairDaemon for executions, or
/// use directly to construct worst-case prefixes.
class AdversarialScoreDaemon final : public IDaemon {
 public:
  enum class Goal { kMaxScore, kMinScore };
  AdversarialScoreDaemon(Goal goal, std::size_t width = 1);
  void select(std::span<const ProcessorId> enabled, const DaemonContext& ctx,
              util::Rng& rng, std::vector<ProcessorId>& out) override;
  [[nodiscard]] std::string_view name() const override { return name_; }

 private:
  Goal goal_;
  std::size_t width_;
  std::string name_;
};

/// Weak-fairness enforcer: delegates to `inner`, but any processor that has
/// been continuously enabled for `bound` consecutive steps without being
/// selected is force-included.  With bound >= 1 every continuously enabled
/// processor executes within `bound` steps, so the result is weakly fair.
class FairDaemon final : public IDaemon {
 public:
  FairDaemon(std::unique_ptr<IDaemon> inner, std::uint32_t bound);
  void select(std::span<const ProcessorId> enabled, const DaemonContext& ctx,
              util::Rng& rng, std::vector<ProcessorId>& out) override;
  [[nodiscard]] std::string_view name() const override { return name_; }
  void reset() override;

 private:
  std::unique_ptr<IDaemon> inner_;
  std::uint32_t bound_;
  std::string name_;
  std::vector<std::uint32_t> ages_;  // consecutive enabled-but-unselected steps
};

/// Daemon kinds constructible by name (for sweep tables and CLI flags).
enum class DaemonKind {
  kSynchronous,
  kCentralRandom,
  kCentralRoundRobin,
  kDistributedRandom,
  kAdversarialMaxLevel,  // score-max wrapped in FairDaemon
  kAdversarialMinLevel,  // score-min wrapped in FairDaemon
};

[[nodiscard]] std::unique_ptr<IDaemon> make_daemon(DaemonKind kind);
[[nodiscard]] std::string_view daemon_kind_name(DaemonKind kind);
/// The daemon set every sweep iterates over.
[[nodiscard]] std::span<const DaemonKind> standard_daemon_kinds();

}  // namespace snappif::sim
