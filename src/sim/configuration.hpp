// Global configuration: the product of all processors' local states
// (Section 2 of the paper).  Immutable topology, mutable states.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "sim/types.hpp"
#include "util/assert.hpp"
#include "util/rng.hpp"

namespace snappif::sim {

template <typename S>
class Configuration {
 public:
  using State = S;

  /// All processors start in `init`.
  Configuration(const graph::Graph& g, const S& init)
      : graph_(&g), states_(g.n(), init) {}

  [[nodiscard]] const graph::Graph& topology() const noexcept { return *graph_; }
  [[nodiscard]] ProcessorId n() const noexcept { return graph_->n(); }

  [[nodiscard]] const S& state(ProcessorId p) const {
    SNAPPIF_ASSERT(p < states_.size());
    return states_[p];
  }
  [[nodiscard]] S& state(ProcessorId p) {
    SNAPPIF_ASSERT(p < states_.size());
    return states_[p];
  }
  [[nodiscard]] std::span<const S> states() const noexcept { return states_; }

  [[nodiscard]] std::span<const ProcessorId> neighbors(ProcessorId p) const {
    return graph_->neighbors(p);
  }

  /// Order-sensitive content hash of all states; S must provide
  /// `std::uint64_t hash() const`.  Used by model checking and determinism
  /// tests.
  [[nodiscard]] std::uint64_t hash() const noexcept {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL;
    for (const S& s : states_) {
      h = util::hash_combine(h, s.hash());
    }
    return h;
  }

  [[nodiscard]] bool operator==(const Configuration& other) const {
    return states_ == other.states_;
  }

 private:
  const graph::Graph* graph_;
  std::vector<S> states_;
};

}  // namespace snappif::sim
