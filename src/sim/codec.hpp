// Snapshot codecs: fixed-width wire encodings of protocol states.
//
// The message-passing emulation (mp/guarded_emulation.hpp) ships local
// states between neighbors as single 64-bit words.  A codec pairs a
// protocol's State with that wire format.  decode() takes the *owning*
// processor because domains are per-processor (a root has constant
// level/parent; a non-root's parent must lie in its neighbor list) and
// because decode must CLAMP, not trust: a phantom frame from arbitrary
// initial channel content can carry any 64-bit pattern, and the decoded
// state must still be inside the domain the guards assume — out-of-domain
// garbage belongs to the transient-fault model, not to undefined behavior.
#pragma once

#include <concepts>
#include <cstdint>

#include "sim/types.hpp"

namespace snappif::sim {

template <typename C, typename S>
concept StateCodec = requires(const C codec, const S& s, ProcessorId p,
                              std::uint64_t w) {
  { codec.encode(s) } -> std::convertible_to<std::uint64_t>;
  { codec.decode(p, w) } -> std::convertible_to<S>;
};

}  // namespace snappif::sim
