// Generic transient-fault injection.
//
// Self- and snap-stabilization model transient faults as arbitrary
// corruption of local states.  These helpers corrupt a whole configuration
// (arbitrary initial configuration) or a random subset of processors
// mid-execution (transient burst).  Protocol-specific *structured*
// corruptions (fake trees, inflated counts) live with the protocol.
#pragma once

#include <cstdint>

#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace snappif::sim {

/// Corrupts exactly `count` distinct random processors with uniformly random
/// states (count is clamped to n).  Works against any engine exposing the
/// config/protocol/set_state surface (Simulator<P>, IEngine<P>).
template <typename Engine>
void inject_burst(Engine& sim, std::uint32_t count, util::Rng& rng) {
  const ProcessorId n = sim.config().n();
  if (count > n) {
    count = n;
  }
  // Floyd's algorithm for a uniform size-`count` subset of [0, n).
  std::vector<bool> hit(n, false);
  for (ProcessorId j = n - count; j < n; ++j) {
    const auto t = static_cast<ProcessorId>(rng.below(j + 1));
    const ProcessorId pick = hit[t] ? j : t;
    hit[pick] = true;
    sim.set_state(pick, sim.protocol().random_state(pick, rng));
  }
}

}  // namespace snappif::sim
