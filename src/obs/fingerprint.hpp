// Stable registry fingerprint: the coverage signal for coverage-guided
// chaos (ROADMAP item 5).
//
// fingerprint(r) hashes a canonical byte stream of the registry's *integer*
// content — counter values, histogram totals and buckets, stats sample
// counts — in sorted name order.  Two registries with the same integer
// content hash identically, on any platform, in any build.
//
// What is deliberately EXCLUDED, and why:
//   * gauges — Registry::merge is last-write-wins for gauges, so their
//     merged value depends on merge order; including them would break the
//     invariance below;
//   * floating-point stats moments (mean/m2/min/max) — parallel Welford
//     merges are associative in exact arithmetic but not in doubles, so the
//     bits can differ across merge shapes.  The sample *count* is exact and
//     is included.
//
// Invariance guarantee (pinned by tests/obs/test_fingerprint.cpp): for
// registries a, b:  fp(merge(a, b)) == fp(merge(b, a)) — counters and
// histogram buckets add commutatively and stats counts add commutatively.
// This is what lets a chaos campaign's fingerprint act as a deterministic
// coverage key regardless of --jobs.
#pragma once

#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

namespace snappif::obs {

/// 64-bit FNV-1a over the canonical integer content of `r`.
[[nodiscard]] std::uint64_t fingerprint(const Registry& r);

/// The same fingerprint as a fixed-width lowercase hex string
/// ("0123456789abcdef"), the form tools print and dumps embed.
[[nodiscard]] std::string fingerprint_hex(const Registry& r);

}  // namespace snappif::obs
