// Trace-event log and exporters.
//
// An EventLog collects structured events during a run and serializes them in
// two formats:
//   * JSONL — one JSON object per line; trivially greppable/jq-able;
//   * Chrome trace_event JSON — loadable in about:tracing / Perfetto.
//
// Timestamps are *logical*: the exporters map one simulation step to one
// microsecond so the about:tracing ruler reads directly in steps.  Counter
// events ("C" phase) render the per-round phase-occupancy stack charts;
// instant events ("i") mark actions and milestones; duration events
// ("B"/"E") bracket PIF cycles.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace snappif::obs {

/// One structured event (a pragmatic subset of the Chrome trace_event
/// format's fields).
struct TraceEvent {
  std::string name;
  std::string cat = "sim";
  char ph = 'i';          // 'i' instant, 'C' counter, 'B'/'E' begin/end, 'X' complete
  std::uint64_t ts = 0;   // logical timestamp (simulation step)
  std::uint64_t dur = 0;  // for 'X' only
  std::uint32_t tid = 0;  // processor id (0 for global events)
  /// Key/value payload; values are JSON fragments produced by the arg()
  /// helpers so both numbers and strings round-trip correctly.
  std::vector<std::pair<std::string, std::string>> args;

  TraceEvent() = default;
  TraceEvent(std::string name_, char ph_, std::uint64_t ts_)
      : name(std::move(name_)), ph(ph_), ts(ts_) {}

  TraceEvent&& arg(std::string_view key, double value) &&;
  TraceEvent&& arg(std::string_view key, std::uint64_t value) &&;
  TraceEvent&& arg(std::string_view key, std::string_view value) &&;
};

/// Bounded in-memory event collector.  When the bound is hit, further events
/// are dropped and counted (never silently).
class EventLog {
 public:
  explicit EventLog(std::size_t max_events = 1 << 20);

  void emit(TraceEvent event);
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  void clear();

  /// One JSON object per line.
  [[nodiscard]] std::string render_jsonl() const;
  /// Chrome trace_event file: {"traceEvents":[...],"displayTimeUnit":"ms"}.
  [[nodiscard]] std::string render_chrome_trace() const;

  /// Writes the given rendering to `path`; false (with a log line) on I/O
  /// failure.
  [[nodiscard]] bool write_jsonl(const std::string& path) const;
  [[nodiscard]] bool write_chrome_trace(const std::string& path) const;

 private:
  std::size_t max_events_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
};

/// Serializes one event as a JSON object (shared by both renderers).
[[nodiscard]] std::string event_json(const TraceEvent& event);

/// Writes `content` to `path` in one shot; false (with a log line) on I/O
/// failure.  Shared by every exporter that lands JSON on disk (event logs,
/// registry snapshots, flight-recorder dumps, tool --metrics-out flags).
[[nodiscard]] bool write_text_file(const std::string& path,
                                   const std::string& content);

}  // namespace snappif::obs
