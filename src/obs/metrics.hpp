// Metrics registry: named counters, gauges, online statistics, and
// histograms for run telemetry.
//
// Design constraints (see src/obs/README.md):
//   * zero cost when unused — nothing in this header is touched by the
//     simulator unless a probe that owns a Registry is attached;
//   * stable handles — counter()/gauge()/stats()/histogram() return
//     references that remain valid for the registry's lifetime (node-based
//     map), so hot loops resolve a name once and then bump a plain integer;
//   * everything is exportable — summary_table() renders the paper-style
//     ASCII table, json() a machine-readable snapshot.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "util/stats.hpp"
#include "util/table.hpp"

namespace snappif::obs {

/// Monotonic event count.
class Counter {
 public:
  void inc(std::uint64_t delta = 1) noexcept { value_ += delta; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

class Registry {
 public:
  /// Finds or creates the named instrument.  References stay valid for the
  /// registry's lifetime.
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  [[nodiscard]] util::OnlineStats& stats(std::string_view name);
  /// Bucket shape is fixed at first creation; later lookups of the same name
  /// ignore the shape arguments.
  [[nodiscard]] util::Histogram& histogram(std::string_view name,
                                           std::size_t bucket_count = 32,
                                           double bucket_width = 1.0);

  /// Folds another registry into this one: counters and histogram buckets
  /// add, stats merge (parallel Welford), gauges take `other`'s value
  /// (last-write-wins in merge order).  The parallel harness gives every
  /// worker its own registry and merges them at join in shard-index order,
  /// so merged totals are identical for any worker count (src/par/README.md).
  void merge(const Registry& other);

  [[nodiscard]] bool empty() const noexcept {
    return counters_.empty() && gauges_.empty() && stats_.empty() &&
           histograms_.empty();
  }

  /// All instruments as one "metric | kind | value ..." table, sorted by
  /// name (maps iterate in order).
  [[nodiscard]] util::Table summary_table() const;

  /// JSON snapshot:
  ///   {"counters":{...},"gauges":{...},
  ///    "stats":{name:{count,mean,min,max,stddev}},
  ///    "histograms":{name:{total,buckets:[{lo,count},...]}}}
  [[nodiscard]] std::string json() const;

  /// Read-only iteration (exporters, tests).
  [[nodiscard]] const std::map<std::string, Counter, std::less<>>& counters()
      const noexcept {
    return counters_;
  }
  [[nodiscard]] const std::map<std::string, Gauge, std::less<>>& gauges()
      const noexcept {
    return gauges_;
  }
  [[nodiscard]] const std::map<std::string, util::OnlineStats, std::less<>>&
  all_stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] const std::map<std::string, util::Histogram, std::less<>>&
  histograms() const noexcept {
    return histograms_;
  }

 private:
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, util::OnlineStats, std::less<>> stats_;
  std::map<std::string, util::Histogram, std::less<>> histograms_;
};

/// RAII wall-clock timer feeding an OnlineStats sink in seconds:
///   { ScopedTimer t(registry.stats("phase.broadcast_s")); ...work... }
class ScopedTimer {
 public:
  explicit ScopedTimer(util::OnlineStats& sink) noexcept
      : sink_(&sink), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() {
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    sink_->add(std::chrono::duration<double>(elapsed).count());
  }

 private:
  util::OnlineStats* sink_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace snappif::obs
