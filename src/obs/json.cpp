#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace snappif::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) {
    return "null";
  }
  // Integers up to 2^53 print exactly without a fraction; everything else
  // gets shortest-round-trip-ish %.17g trimmed of trailing noise.
  if (value == std::floor(value) && std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

namespace {

/// Recursive-descent JSON parser that only answers "well-formed?".
class Validator {
 public:
  explicit Validator(std::string_view text) : s_(text) {}

  [[nodiscard]] bool run() {
    skip_ws();
    if (!value(0)) {
      return false;
    }
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  static constexpr int kMaxDepth = 128;

  [[nodiscard]] bool eof() const { return pos_ >= s_.size(); }
  [[nodiscard]] char peek() const { return s_[pos_]; }
  char take() { return s_[pos_++]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) {
      return false;
    }
    pos_ += word.size();
    return true;
  }

  [[nodiscard]] bool value(int depth) {
    if (eof() || depth > kMaxDepth) {
      return false;
    }
    switch (peek()) {
      case '{':
        return object(depth + 1);
      case '[':
        return array(depth + 1);
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  [[nodiscard]] bool object(int depth) {
    take();  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      take();
      return true;
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"' || !string()) {
        return false;
      }
      skip_ws();
      if (eof() || take() != ':') {
        return false;
      }
      skip_ws();
      if (!value(depth)) {
        return false;
      }
      skip_ws();
      if (eof()) {
        return false;
      }
      const char c = take();
      if (c == '}') {
        return true;
      }
      if (c != ',') {
        return false;
      }
    }
  }

  [[nodiscard]] bool array(int depth) {
    take();  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      take();
      return true;
    }
    while (true) {
      skip_ws();
      if (!value(depth)) {
        return false;
      }
      skip_ws();
      if (eof()) {
        return false;
      }
      const char c = take();
      if (c == ']') {
        return true;
      }
      if (c != ',') {
        return false;
      }
    }
  }

  [[nodiscard]] bool string() {
    take();  // '"'
    while (!eof()) {
      const char c = take();
      if (c == '"') {
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character
      }
      if (c == '\\') {
        if (eof()) {
          return false;
        }
        const char e = take();
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (eof() || !std::isxdigit(static_cast<unsigned char>(take()))) {
              return false;
            }
          }
        } else if (std::strchr("\"\\/bfnrt", e) == nullptr) {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  [[nodiscard]] bool digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return false;
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
      ++pos_;
    }
    return true;
  }

  [[nodiscard]] bool number() {
    if (!eof() && peek() == '-') {
      ++pos_;
    }
    if (eof()) {
      return false;
    }
    if (peek() == '0') {
      ++pos_;  // leading zero must stand alone
    } else if (!digits()) {
      return false;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (!digits()) {
        return false;
      }
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) {
        ++pos_;
      }
      if (!digits()) {
        return false;
      }
    }
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

/// Recursive-descent parser building a JsonValue tree.  Mirrors the
/// Validator's grammar exactly (one source of truth would be nicer, but the
/// Validator's hot use is "no allocation on the happy path" in tests over
/// megabyte traces — keeping it allocation-free is worth the duplication).
class Parser {
 public:
  explicit Parser(std::string_view text) : s_(text) {}

  [[nodiscard]] bool run(JsonValue* out) {
    skip_ws();
    if (!value(0, out)) {
      return false;
    }
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  static constexpr int kMaxDepth = 128;

  [[nodiscard]] bool eof() const { return pos_ >= s_.size(); }
  [[nodiscard]] char peek() const { return s_[pos_]; }
  char take() { return s_[pos_++]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) {
      return false;
    }
    pos_ += word.size();
    return true;
  }

  [[nodiscard]] bool value(int depth, JsonValue* out) {
    if (eof() || depth > kMaxDepth) {
      return false;
    }
    switch (peek()) {
      case '{':
        return object(depth + 1, out);
      case '[':
        return array(depth + 1, out);
      case '"':
        out->kind = JsonValue::Kind::kString;
        return string(&out->string);
      case 't':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = true;
        return literal("true");
      case 'f':
        out->kind = JsonValue::Kind::kBool;
        out->boolean = false;
        return literal("false");
      case 'n':
        out->kind = JsonValue::Kind::kNull;
        return literal("null");
      default:
        out->kind = JsonValue::Kind::kNumber;
        return number(&out->number);
    }
  }

  [[nodiscard]] bool object(int depth, JsonValue* out) {
    out->kind = JsonValue::Kind::kObject;
    take();  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      take();
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (eof() || peek() != '"' || !string(&key)) {
        return false;
      }
      skip_ws();
      if (eof() || take() != ':') {
        return false;
      }
      skip_ws();
      JsonValue member;
      if (!value(depth, &member)) {
        return false;
      }
      out->object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (eof()) {
        return false;
      }
      const char c = take();
      if (c == '}') {
        return true;
      }
      if (c != ',') {
        return false;
      }
    }
  }

  [[nodiscard]] bool array(int depth, JsonValue* out) {
    out->kind = JsonValue::Kind::kArray;
    take();  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      take();
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue element;
      if (!value(depth, &element)) {
        return false;
      }
      out->array.push_back(std::move(element));
      skip_ws();
      if (eof()) {
        return false;
      }
      const char c = take();
      if (c == ']') {
        return true;
      }
      if (c != ',') {
        return false;
      }
    }
  }

  [[nodiscard]] bool hex4(std::uint32_t* out) {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      if (eof()) {
        return false;
      }
      const char c = take();
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return false;
      }
    }
    *out = v;
    return true;
  }

  static void append_utf8(std::string* out, std::uint32_t cp) {
    if (cp < 0x80) {
      *out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      *out += static_cast<char>(0xC0 | (cp >> 6));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      *out += static_cast<char>(0xE0 | (cp >> 12));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      *out += static_cast<char>(0xF0 | (cp >> 18));
      *out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      *out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      *out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  [[nodiscard]] bool string(std::string* out) {
    take();  // '"'
    while (!eof()) {
      const char c = take();
      if (c == '"') {
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character
      }
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (eof()) {
        return false;
      }
      const char e = take();
      switch (e) {
        case '"':
        case '\\':
        case '/':
          *out += e;
          break;
        case 'b':
          *out += '\b';
          break;
        case 'f':
          *out += '\f';
          break;
        case 'n':
          *out += '\n';
          break;
        case 'r':
          *out += '\r';
          break;
        case 't':
          *out += '\t';
          break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!hex4(&cp)) {
            return false;
          }
          if (cp >= 0xD800 && cp <= 0xDBFF) {  // high surrogate: need the pair
            std::uint32_t lo = 0;
            if (eof() || take() != '\\' || eof() || take() != 'u' ||
                !hex4(&lo) || lo < 0xDC00 || lo > 0xDFFF) {
              return false;
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return false;  // lone low surrogate
          }
          append_utf8(out, cp);
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  [[nodiscard]] bool digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return false;
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
      ++pos_;
    }
    return true;
  }

  [[nodiscard]] bool number(double* out) {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') {
      ++pos_;
    }
    if (eof()) {
      return false;
    }
    if (peek() == '0') {
      ++pos_;  // leading zero must stand alone
    } else if (!digits()) {
      return false;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (!digits()) {
        return false;
      }
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) {
        ++pos_;
      }
      if (!digits()) {
        return false;
      }
    }
    // The grammar above guarantees a strtod-parsable token.
    const std::string token(s_.substr(start, pos_ - start));
    *out = std::strtod(token.c_str(), nullptr);
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

bool json_valid(std::string_view text) { return Validator(text).run(); }

const JsonValue* JsonValue::get(std::string_view key) const noexcept {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  const JsonValue* found = nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) {
      found = &v;
    }
  }
  return found;
}

std::uint64_t JsonValue::get_u64(std::string_view key,
                                 std::uint64_t fallback) const {
  const JsonValue* v = get(key);
  if (v == nullptr || v->kind != Kind::kNumber || v->number < 0) {
    return fallback;
  }
  return static_cast<std::uint64_t>(v->number);
}

std::string JsonValue::get_string(std::string_view key,
                                  std::string_view fallback) const {
  const JsonValue* v = get(key);
  if (v == nullptr || v->kind != Kind::kString) {
    return std::string(fallback);
  }
  return v->string;
}

std::optional<JsonValue> json_parse(std::string_view text) {
  JsonValue out;
  if (!Parser(text).run(&out)) {
    return std::nullopt;
  }
  return out;
}

}  // namespace snappif::obs
