#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace snappif::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) {
    return "null";
  }
  // Integers up to 2^53 print exactly without a fraction; everything else
  // gets shortest-round-trip-ish %.17g trimmed of trailing noise.
  if (value == std::floor(value) && std::fabs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", value);
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

namespace {

/// Recursive-descent JSON parser that only answers "well-formed?".
class Validator {
 public:
  explicit Validator(std::string_view text) : s_(text) {}

  [[nodiscard]] bool run() {
    skip_ws();
    if (!value(0)) {
      return false;
    }
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  static constexpr int kMaxDepth = 128;

  [[nodiscard]] bool eof() const { return pos_ >= s_.size(); }
  [[nodiscard]] char peek() const { return s_[pos_]; }
  char take() { return s_[pos_++]; }

  void skip_ws() {
    while (!eof()) {
      const char c = peek();
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (s_.substr(pos_, word.size()) != word) {
      return false;
    }
    pos_ += word.size();
    return true;
  }

  [[nodiscard]] bool value(int depth) {
    if (eof() || depth > kMaxDepth) {
      return false;
    }
    switch (peek()) {
      case '{':
        return object(depth + 1);
      case '[':
        return array(depth + 1);
      case '"':
        return string();
      case 't':
        return literal("true");
      case 'f':
        return literal("false");
      case 'n':
        return literal("null");
      default:
        return number();
    }
  }

  [[nodiscard]] bool object(int depth) {
    take();  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      take();
      return true;
    }
    while (true) {
      skip_ws();
      if (eof() || peek() != '"' || !string()) {
        return false;
      }
      skip_ws();
      if (eof() || take() != ':') {
        return false;
      }
      skip_ws();
      if (!value(depth)) {
        return false;
      }
      skip_ws();
      if (eof()) {
        return false;
      }
      const char c = take();
      if (c == '}') {
        return true;
      }
      if (c != ',') {
        return false;
      }
    }
  }

  [[nodiscard]] bool array(int depth) {
    take();  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      take();
      return true;
    }
    while (true) {
      skip_ws();
      if (!value(depth)) {
        return false;
      }
      skip_ws();
      if (eof()) {
        return false;
      }
      const char c = take();
      if (c == ']') {
        return true;
      }
      if (c != ',') {
        return false;
      }
    }
  }

  [[nodiscard]] bool string() {
    take();  // '"'
    while (!eof()) {
      const char c = take();
      if (c == '"') {
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character
      }
      if (c == '\\') {
        if (eof()) {
          return false;
        }
        const char e = take();
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            if (eof() || !std::isxdigit(static_cast<unsigned char>(take()))) {
              return false;
            }
          }
        } else if (std::strchr("\"\\/bfnrt", e) == nullptr) {
          return false;
        }
      }
    }
    return false;  // unterminated
  }

  [[nodiscard]] bool digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return false;
    }
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) {
      ++pos_;
    }
    return true;
  }

  [[nodiscard]] bool number() {
    if (!eof() && peek() == '-') {
      ++pos_;
    }
    if (eof()) {
      return false;
    }
    if (peek() == '0') {
      ++pos_;  // leading zero must stand alone
    } else if (!digits()) {
      return false;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (!digits()) {
        return false;
      }
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) {
        ++pos_;
      }
      if (!digits()) {
        return false;
      }
    }
    return true;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

}  // namespace

bool json_valid(std::string_view text) { return Validator(text).run(); }

}  // namespace snappif::obs
