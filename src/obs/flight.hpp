// Always-on bounded flight recorder.
//
// A FlightRecorder rides along every chaos campaign, emulation run, and fuzz
// wave: a small drop-oldest SpanCollector (recent causal history), the run's
// identifying context, and — filled in at the moment of failure — the oracle
// diagnosis, an exact replay command line, and a packed snapshot of the
// final configuration (pif::StateCodec words, one per processor).  Because
// the ring is bounded and span production is branch-guarded, "always on"
// costs a few KB per shard and nothing on the simulator hot path.
//
// On failure the recorder serializes to a single JSON artifact
// (dump_json/write) that CI uploads and `snappif_trace --flight <dump>`
// renders.  Packed snapshot words are full 64-bit values, which JSON doubles
// cannot represent above 2^53 — they are emitted as "0x..." hex strings and
// parsed back exactly.
//
// Determinism: per-shard recorders merged in shard-index order (the
// par::run_shards contract) produce byte-identical dumps for any --jobs, by
// the SpanCollector::merge id-remap guarantee.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.hpp"

namespace snappif::obs {

/// Identifying context of the recorded run, embedded in every dump.
struct FlightContext {
  std::string tool;      // producing binary ("snappif_chaos", ...)
  std::string scenario;  // human-readable instance ("ring n=10 ...")
  std::uint64_t seed = 0;
  std::uint64_t shard = 0;   // campaign / iteration index
  std::string failure;       // oracle diagnosis; empty until a failure
  std::string replay;        // exact command reproducing the failure
};

class FlightRecorder {
 public:
  /// Default ring size: enough for several waves of spans on the instance
  /// sizes the soaks run, small enough to keep per-shard cost trivial.
  explicit FlightRecorder(std::size_t span_capacity = 4096);

  [[nodiscard]] SpanCollector& spans() noexcept { return spans_; }
  [[nodiscard]] const SpanCollector& spans() const noexcept { return spans_; }
  [[nodiscard]] FlightContext& context() noexcept { return context_; }
  [[nodiscard]] const FlightContext& context() const noexcept {
    return context_;
  }

  /// Records the packed final configuration: `format` names the codec
  /// ("pif.codec.v1"), `words` is one encoded word per processor.
  void set_snapshot(std::string format, std::vector<std::uint64_t> words);
  [[nodiscard]] const std::string& snapshot_format() const noexcept {
    return snapshot_format_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& snapshot_words()
      const noexcept {
    return snapshot_words_;
  }

  /// True once a failure has been recorded (context().failure non-empty).
  [[nodiscard]] bool failed() const noexcept {
    return !context_.failure.empty();
  }

  /// Folds another recorder in: spans merge deterministically (id remap);
  /// context and snapshot are taken from `other` when this recorder has no
  /// recorded failure yet — so merging failing recorders in shard-index
  /// order keeps the LOWEST failing shard's context, matching every other
  /// "first failure" in the codebase.
  void merge(const FlightRecorder& other);

  /// The whole artifact as one JSON object (always json_valid).
  [[nodiscard]] std::string dump_json() const;
  /// Writes dump_json() to `path`; false (with a log line) on I/O failure.
  [[nodiscard]] bool write(const std::string& path) const;

 private:
  SpanCollector spans_;
  FlightContext context_;
  std::string snapshot_format_;
  std::vector<std::uint64_t> snapshot_words_;
};

/// Parsed form of a dump file (the viewer's input).
struct FlightDump {
  FlightContext context;
  std::string snapshot_format;
  std::vector<std::uint64_t> snapshot_words;
  std::vector<Span> spans;
  std::uint64_t spans_dropped = 0;
};

/// Parses a dump produced by FlightRecorder::dump_json; std::nullopt on
/// malformed input (wrong version, bad hex words, non-JSON).
[[nodiscard]] std::optional<FlightDump> parse_flight_dump(
    std::string_view json);

}  // namespace snappif::obs
