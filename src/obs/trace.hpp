// Causal span model for wave-level tracing.
//
// The paper's central claim is per-wave — every PIF cycle initiated after
// the first action satisfies [PIF1]/[PIF2] — so the unit of causal tracing
// here is the *wave*: the interval from a root B-action to the root F-action
// that closes it.  A Span is one node of the causal tree:
//
//   wave  (root tid)
//   ├── phase       per-processor Pif-phase residency (B / F / C tracks)
//   ├── correction  global burst of B-/F-corrections (abnormal-tree digestion)
//   └── link.*      mp frame life-cycle: send / retransmit / deliver /
//                   peer-reset on a directed edge
//
// Every span carries three links: `id` (its own identity), `parent` (the
// span it is causally nested under), and `wave` (the enclosing wave span, 0
// when no wave is in flight — e.g. corrections during stabilization).  Wave
// spans point at themselves, so `wave` alone reconstructs per-wave slices.
//
// SpanCollector is the bounded sink: a drop-oldest ring (flight-recorder
// semantics — the *recent* history is the interesting part after a failure)
// with sequential id minting and a deterministic merge.  merge() remaps the
// other collector's ids by a fixed offset, so folding per-shard collectors
// in shard-index order (par::run_shards contract) yields byte-identical
// span streams for any worker count.
//
// Timestamps are logical ticks supplied by the producer (simulator steps,
// emulated rounds); the exporters map one tick to one microsecond, matching
// obs/export.hpp.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "obs/export.hpp"

namespace snappif::obs {

using SpanId = std::uint64_t;  // 0 = "no span"

enum class SpanKind : std::uint8_t {
  kWave = 0,         // root B-action -> root F-action
  kPhase,            // one processor's residency in one Pif phase
  kCorrectionBurst,  // maximal run of rounds containing corrections
  kLinkSend,         // first transmission of a frame on a directed edge
  kLinkRetransmit,   // ARQ timer re-handed the frame to the mailer
  kLinkDeliver,      // exactly-once upcall to the link client
  kLinkPeerReset,    // receiver accepted an unproven incarnation
  kMark,             // free-form instant annotation
};

/// Stable export name ("wave", "phase", "correction", "link.send", ...).
[[nodiscard]] const char* span_kind_name(SpanKind kind) noexcept;

/// Inverse of span_kind_name; false for unknown names (`*out` untouched).
[[nodiscard]] bool span_kind_from_name(std::string_view name,
                                       SpanKind* out) noexcept;

struct Span;

/// One span as a Chrome trace_event ('X' complete, 'i' instant) with
/// id/parent/wave/peer/detail args — the shared converter behind
/// SpanCollector::to_events and the flight-dump viewer.
[[nodiscard]] TraceEvent span_to_event(const Span& s);

struct Span {
  SpanId id = 0;
  SpanId parent = 0;  // 0 = top-level
  SpanId wave = 0;    // enclosing wave span (self for kWave; 0 = none)
  SpanKind kind = SpanKind::kMark;
  std::uint64_t begin = 0;  // logical ticks
  std::uint64_t end = 0;    // == begin for instant spans; >= begin otherwise
  std::uint32_t tid = 0;    // processor id (track in the trace viewer)
  std::uint32_t peer = 0;   // link spans: the other endpoint; else unused
  std::string detail;       // small label ("B", "F->C", "deliver", ...)
};

/// One span as a JSON object (flight-recorder dump rows).
[[nodiscard]] std::string span_json(const Span& span);

/// Bounded drop-oldest span ring with sequential id minting.
class SpanCollector {
 public:
  explicit SpanCollector(std::size_t capacity = 1 << 16);

  /// Mints the next id and records an open span (end = begin until close()).
  /// kWave spans get `wave = id` automatically.
  SpanId open(SpanKind kind, std::uint64_t begin, std::uint32_t tid,
              SpanId parent = 0, SpanId wave = 0, std::string detail = {},
              std::uint32_t peer = 0);
  /// Sets the end timestamp of `id`.  Ignored when the span has already been
  /// evicted from the ring (the flight recorder forgot it) or id == 0.
  void close(SpanId id, std::uint64_t end);
  /// Zero-duration span (begin == end).
  SpanId instant(SpanKind kind, std::uint64_t ts, std::uint32_t tid,
                 SpanId parent = 0, SpanId wave = 0, std::string detail = {},
                 std::uint32_t peer = 0);

  /// Retained spans, oldest first (ids strictly increasing).
  [[nodiscard]] const std::deque<Span>& spans() const noexcept {
    return spans_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return spans_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Spans evicted by the ring bound (never silently: exported in dumps).
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }
  /// Total spans ever opened (== next id - 1).
  [[nodiscard]] std::uint64_t total_opened() const noexcept {
    return next_id_ - 1;
  }
  /// Looks up a retained span by id; nullptr when evicted or never minted.
  [[nodiscard]] const Span* find(SpanId id) const noexcept;

  void clear();

  /// Appends `other`'s spans with ids (id/parent/wave) remapped past this
  /// collector's minted range.  Folding per-shard collectors in shard-index
  /// order therefore produces the same stream as a sequential run — the
  /// determinism contract the golden exporter tests pin down.
  void merge(const SpanCollector& other);

  /// Appends every span to `log` as Chrome trace events: 'X' (complete) for
  /// durations, 'i' (instant) for zero-length spans, with id/parent/wave
  /// args carrying the causal links.
  void to_events(EventLog& log) const;

 private:
  void push(Span span);

  std::size_t capacity_;
  std::deque<Span> spans_;
  SpanId next_id_ = 1;
  std::uint64_t dropped_ = 0;
};

}  // namespace snappif::obs
