#include "obs/fingerprint.hpp"

#include <cstdio>

namespace snappif::obs {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

class Fnv {
 public:
  void byte(std::uint8_t b) noexcept {
    h_ = (h_ ^ b) * kFnvPrime;
  }
  void u64(std::uint64_t v) noexcept {
    for (int i = 0; i < 8; ++i) {  // little-endian, platform-independent
      byte(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }
  void str(std::string_view s) noexcept {
    for (const char c : s) {
      byte(static_cast<std::uint8_t>(c));
    }
    byte(0);  // terminator keeps ("ab","c") distinct from ("a","bc")
  }
  [[nodiscard]] std::uint64_t value() const noexcept { return h_; }

 private:
  std::uint64_t h_ = kFnvOffset;
};

}  // namespace

std::uint64_t fingerprint(const Registry& r) {
  Fnv h;
  // Maps iterate in sorted name order, so the stream is canonical.  Each
  // section is tagged so a counter named X can never collide with a
  // histogram named X.
  for (const auto& [name, counter] : r.counters()) {
    h.byte('c');
    h.str(name);
    h.u64(counter.value());
  }
  for (const auto& [name, hist] : r.histograms()) {
    h.byte('h');
    h.str(name);
    h.u64(hist.total());
    h.u64(hist.bucket_count());
    for (std::size_t i = 0; i < hist.bucket_count(); ++i) {
      h.u64(hist.bucket(i));
    }
  }
  for (const auto& [name, stats] : r.all_stats()) {
    h.byte('s');
    h.str(name);
    h.u64(stats.count());
  }
  return h.value();
}

std::string fingerprint_hex(const Registry& r) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fingerprint(r)));
  return buf;
}

}  // namespace snappif::obs
