// Minimal JSON utilities for the observability exporters.
//
// The exporters emit JSON by direct string building (no external dependency);
// this header supplies the two pieces that are easy to get subtly wrong —
// string escaping and number formatting — plus a strict well-formedness
// validator used by the format tests (RFC 8259 grammar, no extensions).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace snappif::obs {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).  Control characters become \u00XX.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Formats a double as a JSON value.  NaN and infinities are not
/// representable in JSON; they are emitted as null.
[[nodiscard]] std::string json_number(double value);

/// Strict well-formedness check: true iff `text` is exactly one valid JSON
/// value (with optional surrounding whitespace).  Used by unit tests to
/// validate the JSONL and Chrome trace output.
[[nodiscard]] bool json_valid(std::string_view text);

/// Parsed JSON document node.  This exists for the *readers* (the flight-dump
/// viewer in snappif_trace, round-trip tests); writers keep building strings
/// directly.  Same grammar as json_valid — RFC 8259, no extensions — with
/// object keys kept in document order (duplicate keys: last one wins on
/// lookup, all retained).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] bool is_null() const noexcept { return kind == Kind::kNull; }
  [[nodiscard]] bool is_object() const noexcept {
    return kind == Kind::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::kArray; }
  [[nodiscard]] bool is_string() const noexcept {
    return kind == Kind::kString;
  }
  [[nodiscard]] bool is_number() const noexcept {
    return kind == Kind::kNumber;
  }

  /// Object member lookup (last duplicate wins); nullptr when absent or not
  /// an object.
  [[nodiscard]] const JsonValue* get(std::string_view key) const noexcept;

  /// Numeric member as u64 (truncating); `fallback` when absent/not numeric.
  [[nodiscard]] std::uint64_t get_u64(std::string_view key,
                                      std::uint64_t fallback = 0) const;
  /// String member; `fallback` when absent or not a string.
  [[nodiscard]] std::string get_string(std::string_view key,
                                       std::string_view fallback = {}) const;
};

/// Parses exactly one JSON value (optional surrounding whitespace);
/// std::nullopt on any syntax error.  \uXXXX escapes are decoded to UTF-8,
/// including surrogate pairs; lone surrogates are rejected.
[[nodiscard]] std::optional<JsonValue> json_parse(std::string_view text);

}  // namespace snappif::obs
