// Minimal JSON utilities for the observability exporters.
//
// The exporters emit JSON by direct string building (no external dependency);
// this header supplies the two pieces that are easy to get subtly wrong —
// string escaping and number formatting — plus a strict well-formedness
// validator used by the format tests (RFC 8259 grammar, no extensions).
#pragma once

#include <string>
#include <string_view>

namespace snappif::obs {

/// Escapes `s` for inclusion inside a JSON string literal (quotes not
/// included).  Control characters become \u00XX.
[[nodiscard]] std::string json_escape(std::string_view s);

/// Formats a double as a JSON value.  NaN and infinities are not
/// representable in JSON; they are emitted as null.
[[nodiscard]] std::string json_number(double value);

/// Strict well-formedness check: true iff `text` is exactly one valid JSON
/// value (with optional surrounding whitespace).  Used by unit tests to
/// validate the JSONL and Chrome trace output.
[[nodiscard]] bool json_valid(std::string_view text);

}  // namespace snappif::obs
