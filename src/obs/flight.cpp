#include "obs/flight.hpp"

#include <cstdio>

#include "obs/json.hpp"

namespace snappif::obs {

namespace {

constexpr std::uint64_t kDumpVersion = 1;

std::string hex_word(std::uint64_t w) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(w));
  return buf;
}

/// Parses "0x<hex>" exactly; false on anything else (including overflow).
bool parse_hex_word(std::string_view s, std::uint64_t* out) {
  if (s.size() < 3 || s.size() > 18 || s[0] != '0' || s[1] != 'x') {
    return false;
  }
  std::uint64_t v = 0;
  for (const char c : s.substr(2)) {
    v <<= 4;
    if (c >= '0' && c <= '9') {
      v |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      v |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  *out = v;
  return true;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t span_capacity)
    : spans_(span_capacity) {}

void FlightRecorder::set_snapshot(std::string format,
                                  std::vector<std::uint64_t> words) {
  snapshot_format_ = std::move(format);
  snapshot_words_ = std::move(words);
}

void FlightRecorder::merge(const FlightRecorder& other) {
  spans_.merge(other.spans_);
  if (!failed() && other.failed()) {
    context_ = other.context_;
    snapshot_format_ = other.snapshot_format_;
    snapshot_words_ = other.snapshot_words_;
  }
}

std::string FlightRecorder::dump_json() const {
  std::string out = "{\"flight\":";
  out += json_number(static_cast<double>(kDumpVersion));
  out += ",\"tool\":\"";
  out += json_escape(context_.tool);
  out += "\",\"scenario\":\"";
  out += json_escape(context_.scenario);
  // Seeds are full 64-bit RNG outputs; JSON numbers round-trip through
  // doubles and corrupt anything above 2^53, so the seed travels as a hex
  // string like the snapshot words.
  out += "\",\"seed\":\"";
  out += hex_word(context_.seed);
  out += "\",\"shard\":";
  out += json_number(static_cast<double>(context_.shard));
  out += ",\"failure\":\"";
  out += json_escape(context_.failure);
  out += "\",\"replay\":\"";
  out += json_escape(context_.replay);
  out += "\",\"snapshot\":{\"format\":\"";
  out += json_escape(snapshot_format_);
  out += "\",\"words\":[";
  bool first = true;
  for (const std::uint64_t w : snapshot_words_) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"';
    out += hex_word(w);
    out += '"';
  }
  out += "]},\"spans_dropped\":";
  out += json_number(static_cast<double>(spans_.dropped()));
  out += ",\"spans\":[";
  first = true;
  for (const Span& s : spans_.spans()) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += span_json(s);
  }
  out += "]}\n";
  return out;
}

bool FlightRecorder::write(const std::string& path) const {
  return write_text_file(path, dump_json());
}

std::optional<FlightDump> parse_flight_dump(std::string_view json) {
  const auto doc = json_parse(json);
  if (!doc.has_value() || !doc->is_object() ||
      doc->get_u64("flight") != kDumpVersion) {
    return std::nullopt;
  }
  FlightDump dump;
  dump.context.tool = doc->get_string("tool");
  dump.context.scenario = doc->get_string("scenario");
  if (const JsonValue* seed = doc->get("seed");
      seed != nullptr && seed->is_string()) {
    if (!parse_hex_word(seed->string, &dump.context.seed)) {
      return std::nullopt;
    }
  } else {
    dump.context.seed = doc->get_u64("seed");
  }
  dump.context.shard = doc->get_u64("shard");
  dump.context.failure = doc->get_string("failure");
  dump.context.replay = doc->get_string("replay");
  dump.spans_dropped = doc->get_u64("spans_dropped");

  if (const JsonValue* snap = doc->get("snapshot");
      snap != nullptr && snap->is_object()) {
    dump.snapshot_format = snap->get_string("format");
    const JsonValue* words = snap->get("words");
    if (words == nullptr || !words->is_array()) {
      return std::nullopt;
    }
    dump.snapshot_words.reserve(words->array.size());
    for (const JsonValue& w : words->array) {
      std::uint64_t v = 0;
      if (!w.is_string() || !parse_hex_word(w.string, &v)) {
        return std::nullopt;
      }
      dump.snapshot_words.push_back(v);
    }
  }

  const JsonValue* spans = doc->get("spans");
  if (spans == nullptr || !spans->is_array()) {
    return std::nullopt;
  }
  dump.spans.reserve(spans->array.size());
  for (const JsonValue& row : spans->array) {
    if (!row.is_object()) {
      return std::nullopt;
    }
    Span s;
    s.id = row.get_u64("id");
    s.parent = row.get_u64("parent");
    s.wave = row.get_u64("wave");
    if (!span_kind_from_name(row.get_string("kind"), &s.kind)) {
      return std::nullopt;
    }
    s.begin = row.get_u64("begin");
    s.end = row.get_u64("end");
    s.tid = static_cast<std::uint32_t>(row.get_u64("tid"));
    s.peer = static_cast<std::uint32_t>(row.get_u64("peer"));
    s.detail = row.get_string("detail");
    dump.spans.push_back(std::move(s));
  }
  return dump;
}

}  // namespace snappif::obs
