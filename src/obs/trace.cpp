#include "obs/trace.hpp"

#include "obs/json.hpp"
#include "util/assert.hpp"

namespace snappif::obs {

const char* span_kind_name(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::kWave:
      return "wave";
    case SpanKind::kPhase:
      return "phase";
    case SpanKind::kCorrectionBurst:
      return "correction";
    case SpanKind::kLinkSend:
      return "link.send";
    case SpanKind::kLinkRetransmit:
      return "link.retransmit";
    case SpanKind::kLinkDeliver:
      return "link.deliver";
    case SpanKind::kLinkPeerReset:
      return "link.peer_reset";
    case SpanKind::kMark:
      return "mark";
  }
  return "?";
}

bool span_kind_from_name(std::string_view name, SpanKind* out) noexcept {
  for (const SpanKind kind :
       {SpanKind::kWave, SpanKind::kPhase, SpanKind::kCorrectionBurst,
        SpanKind::kLinkSend, SpanKind::kLinkRetransmit, SpanKind::kLinkDeliver,
        SpanKind::kLinkPeerReset, SpanKind::kMark}) {
    if (name == span_kind_name(kind)) {
      *out = kind;
      return true;
    }
  }
  return false;
}

std::string span_json(const Span& span) {
  std::string out = "{\"id\":";
  out += json_number(static_cast<double>(span.id));
  out += ",\"parent\":";
  out += json_number(static_cast<double>(span.parent));
  out += ",\"wave\":";
  out += json_number(static_cast<double>(span.wave));
  out += ",\"kind\":\"";
  out += span_kind_name(span.kind);
  out += "\",\"begin\":";
  out += json_number(static_cast<double>(span.begin));
  out += ",\"end\":";
  out += json_number(static_cast<double>(span.end));
  out += ",\"tid\":";
  out += json_number(static_cast<double>(span.tid));
  if (span.peer != 0 || span.kind == SpanKind::kLinkSend ||
      span.kind == SpanKind::kLinkRetransmit ||
      span.kind == SpanKind::kLinkDeliver ||
      span.kind == SpanKind::kLinkPeerReset) {
    out += ",\"peer\":";
    out += json_number(static_cast<double>(span.peer));
  }
  if (!span.detail.empty()) {
    out += ",\"detail\":\"";
    out += json_escape(span.detail);
    out += '"';
  }
  out += '}';
  return out;
}

SpanCollector::SpanCollector(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

void SpanCollector::push(Span span) {
  if (spans_.size() >= capacity_) {
    spans_.pop_front();
    ++dropped_;
  }
  spans_.push_back(std::move(span));
}

SpanId SpanCollector::open(SpanKind kind, std::uint64_t begin,
                           std::uint32_t tid, SpanId parent, SpanId wave,
                           std::string detail, std::uint32_t peer) {
  Span s;
  s.id = next_id_++;
  s.parent = parent;
  s.wave = kind == SpanKind::kWave ? s.id : wave;
  s.kind = kind;
  s.begin = begin;
  s.end = begin;
  s.tid = tid;
  s.peer = peer;
  s.detail = std::move(detail);
  const SpanId id = s.id;
  push(std::move(s));
  return id;
}

void SpanCollector::close(SpanId id, std::uint64_t end) {
  if (id == 0 || spans_.empty()) {
    return;
  }
  // Ids are minted (and merged) sequentially and evicted from the front, so
  // the retained range is contiguous: direct index, no search.
  const SpanId first = spans_.front().id;
  if (id < first || id >= next_id_) {
    return;
  }
  Span& s = spans_[static_cast<std::size_t>(id - first)];
  SNAPPIF_ASSERT(s.id == id);
  if (end > s.begin) {
    s.end = end;
  }
}

SpanId SpanCollector::instant(SpanKind kind, std::uint64_t ts,
                              std::uint32_t tid, SpanId parent, SpanId wave,
                              std::string detail, std::uint32_t peer) {
  return open(kind, ts, tid, parent, wave, std::move(detail), peer);
}

const Span* SpanCollector::find(SpanId id) const noexcept {
  if (id == 0 || spans_.empty()) {
    return nullptr;
  }
  const SpanId first = spans_.front().id;
  if (id < first || id >= next_id_) {
    return nullptr;
  }
  return &spans_[static_cast<std::size_t>(id - first)];
}

void SpanCollector::clear() {
  spans_.clear();
  next_id_ = 1;
  dropped_ = 0;
}

void SpanCollector::merge(const SpanCollector& other) {
  // Offset-remap keeps every causal link (parent/wave) intact and keeps the
  // merged id sequence contiguous, so close()/find() indexing still works.
  const SpanId offset = next_id_ - 1;
  for (const Span& s : other.spans_) {
    Span copy = s;
    copy.id += offset;
    if (copy.parent != 0) {
      copy.parent += offset;
    }
    if (copy.wave != 0) {
      copy.wave += offset;
    }
    push(std::move(copy));
  }
  next_id_ += other.next_id_ - 1;
  dropped_ += other.dropped_;
}

TraceEvent span_to_event(const Span& s) {
  TraceEvent e;
  e.name = span_kind_name(s.kind);
  e.cat = "trace";
  e.ts = s.begin;
  e.tid = s.tid;
  if (s.end > s.begin) {
    e.ph = 'X';
    e.dur = s.end - s.begin;
  } else {
    e.ph = 'i';
  }
  e.args.emplace_back("id", json_number(static_cast<double>(s.id)));
  if (s.parent != 0) {
    e.args.emplace_back("parent", json_number(static_cast<double>(s.parent)));
  }
  if (s.wave != 0) {
    e.args.emplace_back("wave", json_number(static_cast<double>(s.wave)));
  }
  if (s.peer != 0 || s.kind == SpanKind::kLinkSend ||
      s.kind == SpanKind::kLinkRetransmit || s.kind == SpanKind::kLinkDeliver ||
      s.kind == SpanKind::kLinkPeerReset) {
    e.args.emplace_back("peer", json_number(static_cast<double>(s.peer)));
  }
  if (!s.detail.empty()) {
    e.args.emplace_back("detail", '"' + json_escape(s.detail) + '"');
  }
  return e;
}

void SpanCollector::to_events(EventLog& log) const {
  for (const Span& s : spans_) {
    log.emit(span_to_event(s));
  }
}

}  // namespace snappif::obs
