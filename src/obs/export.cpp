#include "obs/export.hpp"

#include <cstdio>

#include "obs/json.hpp"
#include "util/log.hpp"

namespace snappif::obs {

TraceEvent&& TraceEvent::arg(std::string_view key, double value) && {
  args.emplace_back(std::string(key), json_number(value));
  return std::move(*this);
}

TraceEvent&& TraceEvent::arg(std::string_view key, std::uint64_t value) && {
  args.emplace_back(std::string(key), json_number(static_cast<double>(value)));
  return std::move(*this);
}

TraceEvent&& TraceEvent::arg(std::string_view key, std::string_view value) && {
  args.emplace_back(std::string(key), '"' + json_escape(value) + '"');
  return std::move(*this);
}

EventLog::EventLog(std::size_t max_events) : max_events_(max_events) {}

void EventLog::emit(TraceEvent event) {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

void EventLog::clear() {
  events_.clear();
  dropped_ = 0;
}

std::string event_json(const TraceEvent& event) {
  std::string out = "{\"name\":\"";
  out += json_escape(event.name);
  out += "\",\"cat\":\"";
  out += json_escape(event.cat);
  out += "\",\"ph\":\"";
  out += json_escape(std::string_view(&event.ph, 1));
  out += "\",\"ts\":";
  out += json_number(static_cast<double>(event.ts));
  if (event.ph == 'X') {
    out += ",\"dur\":";
    out += json_number(static_cast<double>(event.dur));
  }
  out += ",\"pid\":0,\"tid\":";
  out += json_number(static_cast<double>(event.tid));
  if (!event.args.empty()) {
    out += ",\"args\":{";
    bool first = true;
    for (const auto& [key, value] : event.args) {
      if (!first) {
        out += ',';
      }
      first = false;
      out += '"';
      out += json_escape(key);
      out += "\":";
      out += value;
    }
    out += '}';
  }
  out += '}';
  return out;
}

std::string EventLog::render_jsonl() const {
  std::string out;
  for (const TraceEvent& event : events_) {
    out += event_json(event);
    out += '\n';
  }
  return out;
}

std::string EventLog::render_chrome_trace() const {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& event : events_) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += event_json(event);
  }
  out += "],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

bool write_text_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    SNAPPIF_LOG_ERROR("cannot open %s for writing", path.c_str());
    return false;
  }
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const bool closed = std::fclose(f) == 0;
  const bool ok = written == content.size() && closed;
  if (!ok) {
    SNAPPIF_LOG_ERROR("short write to %s", path.c_str());
  }
  return ok;
}

bool EventLog::write_jsonl(const std::string& path) const {
  return write_text_file(path, render_jsonl());
}

bool EventLog::write_chrome_trace(const std::string& path) const {
  return write_text_file(path, render_chrome_trace());
}

}  // namespace snappif::obs
