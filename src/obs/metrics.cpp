#include "obs/metrics.hpp"

#include "obs/json.hpp"

namespace snappif::obs {

Counter& Registry::counter(std::string_view name) {
  const auto it = counters_.find(name);
  if (it != counters_.end()) {
    return it->second;
  }
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const auto it = gauges_.find(name);
  if (it != gauges_.end()) {
    return it->second;
  }
  return gauges_.try_emplace(std::string(name)).first->second;
}

util::OnlineStats& Registry::stats(std::string_view name) {
  const auto it = stats_.find(name);
  if (it != stats_.end()) {
    return it->second;
  }
  return stats_.try_emplace(std::string(name)).first->second;
}

util::Histogram& Registry::histogram(std::string_view name,
                                     std::size_t bucket_count,
                                     double bucket_width) {
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) {
    return it->second;
  }
  return histograms_
      .try_emplace(std::string(name), bucket_count, bucket_width)
      .first->second;
}

void Registry::merge(const Registry& other) {
  for (const auto& [name, c] : other.counters_) {
    counter(name).inc(c.value());
  }
  for (const auto& [name, g] : other.gauges_) {
    gauge(name).set(g.value());
  }
  for (const auto& [name, s] : other.stats_) {
    stats(name).merge(s);
  }
  for (const auto& [name, h] : other.histograms_) {
    histogram(name, h.bucket_count(), h.bucket_width()).merge(h);
  }
}

util::Table Registry::summary_table() const {
  util::Table table({"metric", "kind", "count", "value/mean", "min", "max"});
  for (const auto& [name, c] : counters_) {
    table.add_row({name, "counter", "", util::fmt(c.value()), "", ""});
  }
  for (const auto& [name, g] : gauges_) {
    table.add_row({name, "gauge", "", util::fmt(g.value()), "", ""});
  }
  for (const auto& [name, s] : stats_) {
    if (s.empty()) {
      table.add_row({name, "stats", "0", "", "", ""});
      continue;
    }
    table.add_row({name, "stats", util::fmt(s.count()), util::fmt(s.mean()),
                   util::fmt(s.min()), util::fmt(s.max())});
  }
  for (const auto& [name, h] : histograms_) {
    table.add_row({name, "histogram", util::fmt(h.total()), "", "", ""});
  }
  return table;
}

std::string Registry::json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"';
    out += json_escape(name);
    out += "\":";
    out += json_number(static_cast<double>(c.value()));
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"';
    out += json_escape(name);
    out += "\":";
    out += json_number(g.value());
  }
  out += "},\"stats\":{";
  first = true;
  for (const auto& [name, s] : stats_) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"';
    out += json_escape(name);
    out += "\":{\"count\":";
    out += json_number(static_cast<double>(s.count()));
    out += ",\"mean\":";
    out += json_number(s.empty() ? 0.0 : s.mean());
    out += ",\"min\":";
    out += json_number(s.empty() ? 0.0 : s.min());
    out += ",\"max\":";
    out += json_number(s.empty() ? 0.0 : s.max());
    out += ",\"stddev\":";
    out += json_number(s.stddev());
    out += '}';
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += '"';
    out += json_escape(name);
    out += "\":{\"total\":";
    out += json_number(static_cast<double>(h.total()));
    out += ",\"buckets\":[";
    bool first_bucket = true;
    for (std::size_t i = 0; i < h.bucket_count(); ++i) {
      if (h.bucket(i) == 0) {
        continue;  // sparse: empty buckets omitted
      }
      if (!first_bucket) {
        out += ',';
      }
      first_bucket = false;
      out += "{\"lo\":";
      out += json_number(h.bucket_lo(i));
      out += ",\"count\":";
      out += json_number(static_cast<double>(h.bucket(i)));
      out += '}';
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

}  // namespace snappif::obs
