// Small work-stealing thread pool for the embarrassingly-parallel harness
// paths: fuzz iteration shards, chaos campaign soaks, and model-check
// configuration-space partitions.
//
// Design:
//   * per-worker deques — a worker pushes/pops the *bottom* of its own deque
//     and steals from the *top* of a victim's when its own runs dry, so
//     coarse shards stay where they were placed and only imbalance migrates;
//   * batch execution — run_all() submits a closed set of tasks, participates
//     with the calling thread, and returns when every task finished.  A task
//     that throws has its exception captured; after the batch completes the
//     exception of the LOWEST-indexed failing task is rethrown (deterministic
//     regardless of scheduling);
//   * the pool is scheduling-nondeterministic by nature.  Determinism of
//     *results* is the sharding layer's contract (par/shard.hpp): work is cut
//     into shards whose outputs depend only on (master_seed, shard_index),
//     and joins fold results in shard-index order.
//
// Tasks must not call run_all() on the same pool (no nested batches); the
// simulator stack never needs it and the constraint keeps shutdown trivial.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace snappif::par {

class ThreadPool {
 public:
  /// Spawns `workers` threads; 0 picks hardware_concurrency (at least 1).
  explicit ThreadPool(unsigned workers = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] unsigned worker_count() const noexcept {
    return static_cast<unsigned>(threads_.size());
  }

  /// Runs every task to completion (the calling thread participates) and
  /// returns when all are done.  If any task threw, rethrows the exception
  /// of the lowest-indexed failing task.  One batch at a time; tasks must
  /// not recursively call run_all on this pool.
  void run_all(std::vector<std::function<void()>> tasks);

  /// std::thread::hardware_concurrency with a floor of 1 (the standard
  /// allows it to report 0).
  [[nodiscard]] static unsigned hardware_workers() noexcept;

 private:
  struct WorkerDeque {
    std::mutex mutex;
    std::deque<std::size_t> tasks;  // indices into batch_
  };

  void worker_main(std::size_t self);
  /// Own deque bottom first, then steal the top of each victim in turn.
  bool try_take(std::size_t self, std::size_t* out);
  void run_task(std::size_t index);

  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<WorkerDeque>> deques_;

  std::mutex mutex_;                 // guards generation_/stop_ waits
  std::condition_variable wake_cv_;  // workers: new batch or shutdown
  std::condition_variable done_cv_;  // caller: batch drained
  std::uint64_t generation_ = 0;
  bool stop_ = false;

  std::mutex batch_mutex_;  // serializes run_all callers
  std::vector<std::function<void()>> batch_;
  std::vector<std::exception_ptr> errors_;
  std::atomic<std::size_t> unfinished_{0};
};

}  // namespace snappif::par
