// Deterministic seeded sharding: the contract that makes the parallel
// fuzz/chaos/model-check runs bit-identical to sequential ones.
//
//   * shard_seed(master, i) derives shard i's seed by a SplitMix64 jump:
//     it equals the (i+1)-th output of the SplitMix64 stream seeded with
//     `master`, computed in O(1).  A shard's RNG stream therefore depends
//     only on (master_seed, shard_index) — never on worker count, scheduling
//     order, or which thread ran it.
//
//   * run_shards(master_seed, n_shards, fn, pool) evaluates `fn` once per
//     shard — on the pool when one is given, inline in index order otherwise
//     — and returns the results indexed by shard.  Reductions applied to
//     that vector in index order are deterministic, and "first failure" is
//     well-defined as the lowest failing shard index, no matter how the
//     shards interleaved.
//
// Shared-state audit (what makes `fn` safe to run concurrently): every
// worker owns its Simulator/Network fork — both are copyable value types
// since PR 1 with no global state — and pif::PifProtocol is const-stateless
// (no mutable members), so sharing one across shards is read-only.  The one
// process-global the harness owns, util::log, emits line-atomic writes
// (util/log.hpp).  Telemetry goes to per-shard obs::Registry instances
// folded with Registry::merge at join, in shard order.  Trace spans follow
// the same discipline: each shard streams into its own obs::SpanCollector /
// obs::FlightRecorder and the join folds them with merge() in shard-index
// order, which re-bases span ids by a per-shard offset — so the merged span
// stream, the Chrome trace rendered from it, and any flight dump are
// byte-identical for every worker count (tests/obs/test_export_golden.cpp
// holds this line).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <type_traits>
#include <vector>

#include "par/pool.hpp"
#include "util/rng.hpp"

namespace snappif::par {

/// Everything a shard body may depend on.  Draw randomness ONLY from `rng`
/// (or generators seeded from `seed`) to keep the determinism contract.
struct ShardContext {
  std::size_t index = 0;
  std::size_t shard_count = 1;
  std::uint64_t seed = 0;  // splitmix-derived; see shard_seed()
  util::Rng rng;           // pre-seeded with `seed`
};

/// Shard i's seed: the (i+1)-th output of the SplitMix64 stream seeded with
/// `master_seed` (the additive constant is SplitMix64's own odd gamma, so
/// the O(1) jump lands exactly on the sequential stream).
[[nodiscard]] constexpr std::uint64_t shard_seed(
    std::uint64_t master_seed, std::uint64_t shard_index) noexcept {
  std::uint64_t state = master_seed + shard_index * 0x9e3779b97f4a7c15ULL;
  return util::splitmix64(state);
}

/// Runs `fn(ShardContext&) -> Result` for every shard and returns results
/// in shard-index order.  With a pool, shards run concurrently; without one
/// (or with a single shard) they run inline — the outputs are identical by
/// construction.  Exceptions propagate from the lowest-throwing shard after
/// every shard has finished (ThreadPool::run_all).
template <typename Fn>
[[nodiscard]] auto run_shards(std::uint64_t master_seed, std::size_t n_shards,
                              Fn&& fn, ThreadPool* pool = nullptr) {
  using Result = std::invoke_result_t<Fn&, ShardContext&>;
  static_assert(!std::is_void_v<Result>,
                "shard bodies must return a result (merged at join)");
  std::vector<Result> results(n_shards);
  auto run_one = [&](std::size_t i) {
    ShardContext ctx{i, n_shards, shard_seed(master_seed, i),
                     util::Rng(shard_seed(master_seed, i))};
    results[i] = fn(ctx);
  };
  if (pool == nullptr || n_shards <= 1) {
    for (std::size_t i = 0; i < n_shards; ++i) {
      run_one(i);
    }
    return results;
  }
  std::vector<std::function<void()>> tasks;
  tasks.reserve(n_shards);
  for (std::size_t i = 0; i < n_shards; ++i) {
    tasks.emplace_back([&run_one, i] { run_one(i); });
  }
  pool->run_all(std::move(tasks));
  return results;
}

}  // namespace snappif::par
