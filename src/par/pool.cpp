#include "par/pool.hpp"

#include "util/assert.hpp"

namespace snappif::par {

unsigned ThreadPool::hardware_workers() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

ThreadPool::ThreadPool(unsigned workers) {
  const unsigned count = workers == 0 ? hardware_workers() : workers;
  deques_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    deques_.push_back(std::make_unique<WorkerDeque>());
  }
  threads_.reserve(count);
  for (unsigned i = 0; i < count; ++i) {
    threads_.emplace_back([this, i] { worker_main(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

bool ThreadPool::try_take(std::size_t self, std::size_t* out) {
  const std::size_t w = deques_.size();
  if (self < w) {
    WorkerDeque& own = *deques_[self];
    const std::lock_guard<std::mutex> lock(own.mutex);
    if (!own.tasks.empty()) {
      *out = own.tasks.back();  // own work: LIFO bottom
      own.tasks.pop_back();
      return true;
    }
  }
  for (std::size_t k = 0; k < w; ++k) {
    const std::size_t victim = self < w ? (self + 1 + k) % w : k;
    if (victim == self) {
      continue;
    }
    WorkerDeque& d = *deques_[victim];
    const std::lock_guard<std::mutex> lock(d.mutex);
    if (!d.tasks.empty()) {
      *out = d.tasks.front();  // stolen work: FIFO top
      d.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::run_task(std::size_t index) {
  try {
    batch_[index]();
  } catch (...) {
    errors_[index] = std::current_exception();
  }
  if (unfinished_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    const std::lock_guard<std::mutex> lock(mutex_);
    done_cv_.notify_all();
  }
}

void ThreadPool::worker_main(std::size_t self) {
  std::uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_cv_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) {
        return;
      }
      seen = generation_;
    }
    std::size_t index = 0;
    while (try_take(self, &index)) {
      run_task(index);
    }
  }
}

void ThreadPool::run_all(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) {
    return;
  }
  const std::lock_guard<std::mutex> batch_lock(batch_mutex_);
  batch_ = std::move(tasks);
  errors_.assign(batch_.size(), nullptr);
  unfinished_.store(batch_.size(), std::memory_order_relaxed);

  // Batch state is published before any index becomes visible in a deque:
  // a worker (or the caller) only learns an index under the deque mutex the
  // distributor pushed it under, which carries the happens-before edge.
  const std::size_t w = deques_.size();
  SNAPPIF_ASSERT(w > 0);
  for (std::size_t i = 0; i < batch_.size(); ++i) {
    WorkerDeque& d = *deques_[i % w];
    const std::lock_guard<std::mutex> lock(d.mutex);
    d.tasks.push_back(i);
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    ++generation_;
  }
  wake_cv_.notify_all();

  // The caller participates as a pure thief (it owns no deque).
  std::size_t index = 0;
  while (try_take(w, &index)) {
    run_task(index);
  }
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] {
      return unfinished_.load(std::memory_order_acquire) == 0;
    });
  }

  std::exception_ptr first;
  for (const std::exception_ptr& e : errors_) {
    if (e) {
      first = e;
      break;
    }
  }
  batch_.clear();
  errors_.clear();
  if (first) {
    std::rethrow_exception(first);
  }
}

}  // namespace snappif::par
