// Campaign engine + recovery oracle for the shared-memory PIF.
//
// run_campaign() subjects one Simulator<PifProtocol> run to a FaultSchedule:
// events fire at their scheduled global rounds (bursts, structured
// corruptions, daemon swaps, connectivity-preserving link churn), and once
// the schedule is exhausted — the *quiet point*, the paper's "after the last
// transient fault" — the recovery oracle takes over and mechanically checks
// the claims of Theorems 1 and 4:
//
//   1. every processor returns to Normal within the round budget
//      (Theorem 1: <= 3·Lmax + 3 rounds from any configuration);
//   2. the first root-initiated cycle after the quiet point satisfies
//      [PIF1] and [PIF2] and is never aborted (snap-stabilization: a cycle
//      already in flight at the quiet point is excused — it *started* under
//      faults — but the next one is not).
//
// Timekeeping: fault injection rewrites states, which restarts the engine's
// Dolev-Israeli-Moran round tracker, and link churn rebuilds the simulator
// outright.  The campaign therefore carries its own monotone round clock — a
// RoundClock probe that counts on_round_complete callbacks and survives both
// resets — and every event round / recovery measurement is stated on that
// clock.  (The partial round in progress when a fault lands is discarded;
// faults do not get to *speed up* the clock.)
//
// Link churn and the paper's model: removing an edge can leave Par_p
// pointing at a non-neighbor, which is outside the variable's domain
// (Par_p ∈ Neig_p).  The engine re-draws such states uniformly on the new
// topology — the churn itself is the transient fault, but every variable
// stays inside its domain, so the theorems (stated over in-domain
// configurations of the *current* graph) remain applicable and the oracle
// stays sound.  N is fixed throughout (the root's exact-N knowledge is the
// snap linchpin); only edges churn, and kills that would disconnect the
// graph are skipped and reported.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "chaos/schedule.hpp"
#include "graph/graph.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "pif/params.hpp"
#include "pif/protocol.hpp"
#include "sim/engine.hpp"
#include "sim/probe.hpp"
#include "sim/simulator.hpp"

namespace snappif::chaos {

/// Monotone campaign clock: counts completed rounds across the round-tracker
/// resets caused by fault injection and across simulator rebuilds caused by
/// link churn (re-attach the same instance to the new simulator).
class RoundClock final : public sim::IProbe<pif::PifProtocol> {
 public:
  void on_round_complete(std::uint64_t /*rounds*/, const sim::StepEvent& /*ev*/,
                         const Config& /*config*/) override {
    ++total_;
  }
  [[nodiscard]] std::uint64_t rounds() const noexcept { return total_; }

 private:
  std::uint64_t total_ = 0;
};

struct CampaignOptions {
  /// Execution engine, applied at every (re)build point — including the
  /// simulator rebuilds link churn causes.  Engines are trajectory-
  /// equivalent, so campaigns find the same failures on either.
  sim::EngineKind engine = sim::EngineKind::kMask;
  sim::ProcessorId root = 0;
  sim::DaemonKind daemon = sim::DaemonKind::kDistributedRandom;
  sim::ActionPolicy policy = sim::ActionPolicy::kFirstEnabled;
  std::uint64_t seed = 1;
  /// Global step ceiling for the whole campaign (fault phase + recovery).
  std::uint64_t max_steps = 4'000'000;
  /// Rounds allowed after the quiet point for each oracle milestone
  /// (all-normal, then first-clean-cycle close).  0 = automatic:
  /// 20·Lmax + 50, generous against Theorem 1's 3·Lmax + 3 and the
  /// SBN + cycle budgets (9·Lmax + 8, 5h + 5) plus an in-flight cycle.
  std::uint64_t recovery_round_budget = 0;
  /// Hook for deliberately broken protocol variants (shrinker tests, guard
  /// ablation campaigns).  Called on the canonical Params before each
  /// protocol construction.
  std::function<void(pif::Params&)> tweak_params;
  /// Optional telemetry sink; see src/chaos/README.md for the metric names.
  obs::Registry* registry = nullptr;
  /// Optional always-on flight recorder.  While set, a pif::WaveTraceProbe
  /// streams wave/phase/correction spans into its bounded ring (re-attached
  /// across the simulator rebuilds link churn causes, so span timestamps
  /// stay monotone on the campaign clock); on any campaign failure the
  /// engine stamps the oracle diagnosis and a packed pif::StateCodec
  /// snapshot of the final configuration into it.
  obs::FlightRecorder* flight = nullptr;
};

struct CampaignResult {
  // --- fault phase ---
  bool completed = false;  // schedule fully applied within the step budget
  std::uint64_t events_applied = 0;
  std::uint64_t events_skipped = 0;   // mp-only kinds, un-killable edges
  std::uint64_t faults_injected = 0;  // processor states rewritten
  std::uint64_t links_killed = 0;
  std::uint64_t links_restored = 0;
  std::uint64_t quiet_round = 0;  // campaign clock at the quiet point

  // --- recovery oracle ---
  bool recovered = false;  // both milestones inside the round budget
  std::uint64_t rounds_to_normal = 0;       // quiet -> all Normal
  std::uint64_t rounds_to_cycle_close = 0;  // quiet -> first clean cycle closed
  bool snap_ok = false;  // that cycle: pif1 && pif2 && !aborted
  bool pif1 = false;
  bool pif2 = false;
  bool aborted = false;

  std::uint64_t steps = 0;  // total steps executed
  /// Human-readable diagnosis when !ok(); empty otherwise.
  std::string failure;

  [[nodiscard]] bool ok() const noexcept {
    return completed && recovered && snap_ok;
  }
};

/// Runs one campaign of `schedule` against the PIF on `g`.  Deterministic in
/// (g, schedule, opts.seed).
[[nodiscard]] CampaignResult run_campaign(const graph::Graph& g,
                                          const FaultSchedule& schedule,
                                          const CampaignOptions& opts);

}  // namespace snappif::chaos
